file(REMOVE_RECURSE
  "CMakeFiles/mtat_mem.dir/tiered_memory.cc.o"
  "CMakeFiles/mtat_mem.dir/tiered_memory.cc.o.d"
  "libmtat_mem.a"
  "libmtat_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mtat_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
