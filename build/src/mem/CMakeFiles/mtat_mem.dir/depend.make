# Empty dependencies file for mtat_mem.
# This may be replaced when dependencies are built.
