file(REMOVE_RECURSE
  "libmtat_mem.a"
)
