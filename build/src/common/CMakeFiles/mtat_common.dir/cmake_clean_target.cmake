file(REMOVE_RECURSE
  "libmtat_common.a"
)
