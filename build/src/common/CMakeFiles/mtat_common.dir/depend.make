# Empty dependencies file for mtat_common.
# This may be replaced when dependencies are built.
