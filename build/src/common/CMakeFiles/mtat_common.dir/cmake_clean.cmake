file(REMOVE_RECURSE
  "CMakeFiles/mtat_common.dir/latency_histogram.cc.o"
  "CMakeFiles/mtat_common.dir/latency_histogram.cc.o.d"
  "CMakeFiles/mtat_common.dir/rng.cc.o"
  "CMakeFiles/mtat_common.dir/rng.cc.o.d"
  "libmtat_common.a"
  "libmtat_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mtat_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
