
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/telemetry/page_hotness.cc" "src/telemetry/CMakeFiles/mtat_telemetry.dir/page_hotness.cc.o" "gcc" "src/telemetry/CMakeFiles/mtat_telemetry.dir/page_hotness.cc.o.d"
  "/root/repo/src/telemetry/region_monitor.cc" "src/telemetry/CMakeFiles/mtat_telemetry.dir/region_monitor.cc.o" "gcc" "src/telemetry/CMakeFiles/mtat_telemetry.dir/region_monitor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mem/CMakeFiles/mtat_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mtat_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
