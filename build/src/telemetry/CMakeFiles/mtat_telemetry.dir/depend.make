# Empty dependencies file for mtat_telemetry.
# This may be replaced when dependencies are built.
