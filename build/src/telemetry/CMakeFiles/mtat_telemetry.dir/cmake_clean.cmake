file(REMOVE_RECURSE
  "CMakeFiles/mtat_telemetry.dir/page_hotness.cc.o"
  "CMakeFiles/mtat_telemetry.dir/page_hotness.cc.o.d"
  "CMakeFiles/mtat_telemetry.dir/region_monitor.cc.o"
  "CMakeFiles/mtat_telemetry.dir/region_monitor.cc.o.d"
  "libmtat_telemetry.a"
  "libmtat_telemetry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mtat_telemetry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
