file(REMOVE_RECURSE
  "libmtat_telemetry.a"
)
