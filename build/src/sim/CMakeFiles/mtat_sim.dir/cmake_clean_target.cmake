file(REMOVE_RECURSE
  "libmtat_sim.a"
)
