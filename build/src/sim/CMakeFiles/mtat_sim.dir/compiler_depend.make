# Empty compiler generated dependencies file for mtat_sim.
# This may be replaced when dependencies are built.
