
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/colocation_sim.cc" "src/sim/CMakeFiles/mtat_sim.dir/colocation_sim.cc.o" "gcc" "src/sim/CMakeFiles/mtat_sim.dir/colocation_sim.cc.o.d"
  "/root/repo/src/sim/experiments.cc" "src/sim/CMakeFiles/mtat_sim.dir/experiments.cc.o" "gcc" "src/sim/CMakeFiles/mtat_sim.dir/experiments.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mtat_core.dir/DependInfo.cmake"
  "/root/repo/build/src/policy/CMakeFiles/mtat_policy.dir/DependInfo.cmake"
  "/root/repo/build/src/loadgen/CMakeFiles/mtat_loadgen.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/mtat_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/rl/CMakeFiles/mtat_rl.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/mtat_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/mtat_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mtat_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
