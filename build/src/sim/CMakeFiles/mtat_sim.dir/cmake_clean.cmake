file(REMOVE_RECURSE
  "CMakeFiles/mtat_sim.dir/colocation_sim.cc.o"
  "CMakeFiles/mtat_sim.dir/colocation_sim.cc.o.d"
  "CMakeFiles/mtat_sim.dir/experiments.cc.o"
  "CMakeFiles/mtat_sim.dir/experiments.cc.o.d"
  "libmtat_sim.a"
  "libmtat_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mtat_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
