file(REMOVE_RECURSE
  "libmtat_rl.a"
)
