file(REMOVE_RECURSE
  "CMakeFiles/mtat_rl.dir/mlp.cc.o"
  "CMakeFiles/mtat_rl.dir/mlp.cc.o.d"
  "CMakeFiles/mtat_rl.dir/sac.cc.o"
  "CMakeFiles/mtat_rl.dir/sac.cc.o.d"
  "libmtat_rl.a"
  "libmtat_rl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mtat_rl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
