# Empty dependencies file for mtat_rl.
# This may be replaced when dependencies are built.
