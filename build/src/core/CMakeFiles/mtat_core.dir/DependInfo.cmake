
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/policy/vtmm_policy.cc" "src/core/CMakeFiles/mtat_core.dir/__/policy/vtmm_policy.cc.o" "gcc" "src/core/CMakeFiles/mtat_core.dir/__/policy/vtmm_policy.cc.o.d"
  "/root/repo/src/core/mtat_policy.cc" "src/core/CMakeFiles/mtat_core.dir/mtat_policy.cc.o" "gcc" "src/core/CMakeFiles/mtat_core.dir/mtat_policy.cc.o.d"
  "/root/repo/src/core/multi_lc_mtat.cc" "src/core/CMakeFiles/mtat_core.dir/multi_lc_mtat.cc.o" "gcc" "src/core/CMakeFiles/mtat_core.dir/multi_lc_mtat.cc.o.d"
  "/root/repo/src/core/ppe.cc" "src/core/CMakeFiles/mtat_core.dir/ppe.cc.o" "gcc" "src/core/CMakeFiles/mtat_core.dir/ppe.cc.o.d"
  "/root/repo/src/core/ppm.cc" "src/core/CMakeFiles/mtat_core.dir/ppm.cc.o" "gcc" "src/core/CMakeFiles/mtat_core.dir/ppm.cc.o.d"
  "/root/repo/src/core/sa_partitioner.cc" "src/core/CMakeFiles/mtat_core.dir/sa_partitioner.cc.o" "gcc" "src/core/CMakeFiles/mtat_core.dir/sa_partitioner.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/policy/CMakeFiles/mtat_policy.dir/DependInfo.cmake"
  "/root/repo/build/src/rl/CMakeFiles/mtat_rl.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/mtat_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/mtat_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mtat_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
