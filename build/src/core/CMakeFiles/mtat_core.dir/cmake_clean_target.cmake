file(REMOVE_RECURSE
  "libmtat_core.a"
)
