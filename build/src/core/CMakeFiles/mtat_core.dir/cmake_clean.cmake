file(REMOVE_RECURSE
  "CMakeFiles/mtat_core.dir/__/policy/vtmm_policy.cc.o"
  "CMakeFiles/mtat_core.dir/__/policy/vtmm_policy.cc.o.d"
  "CMakeFiles/mtat_core.dir/mtat_policy.cc.o"
  "CMakeFiles/mtat_core.dir/mtat_policy.cc.o.d"
  "CMakeFiles/mtat_core.dir/multi_lc_mtat.cc.o"
  "CMakeFiles/mtat_core.dir/multi_lc_mtat.cc.o.d"
  "CMakeFiles/mtat_core.dir/ppe.cc.o"
  "CMakeFiles/mtat_core.dir/ppe.cc.o.d"
  "CMakeFiles/mtat_core.dir/ppm.cc.o"
  "CMakeFiles/mtat_core.dir/ppm.cc.o.d"
  "CMakeFiles/mtat_core.dir/sa_partitioner.cc.o"
  "CMakeFiles/mtat_core.dir/sa_partitioner.cc.o.d"
  "libmtat_core.a"
  "libmtat_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mtat_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
