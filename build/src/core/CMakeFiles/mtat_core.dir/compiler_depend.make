# Empty compiler generated dependencies file for mtat_core.
# This may be replaced when dependencies are built.
