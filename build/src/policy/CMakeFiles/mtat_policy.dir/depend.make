# Empty dependencies file for mtat_policy.
# This may be replaced when dependencies are built.
