file(REMOVE_RECURSE
  "CMakeFiles/mtat_policy.dir/damon_policy.cc.o"
  "CMakeFiles/mtat_policy.dir/damon_policy.cc.o.d"
  "CMakeFiles/mtat_policy.dir/memtis_hp_policy.cc.o"
  "CMakeFiles/mtat_policy.dir/memtis_hp_policy.cc.o.d"
  "CMakeFiles/mtat_policy.dir/memtis_policy.cc.o"
  "CMakeFiles/mtat_policy.dir/memtis_policy.cc.o.d"
  "CMakeFiles/mtat_policy.dir/tpp_policy.cc.o"
  "CMakeFiles/mtat_policy.dir/tpp_policy.cc.o.d"
  "libmtat_policy.a"
  "libmtat_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mtat_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
