
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/policy/damon_policy.cc" "src/policy/CMakeFiles/mtat_policy.dir/damon_policy.cc.o" "gcc" "src/policy/CMakeFiles/mtat_policy.dir/damon_policy.cc.o.d"
  "/root/repo/src/policy/memtis_hp_policy.cc" "src/policy/CMakeFiles/mtat_policy.dir/memtis_hp_policy.cc.o" "gcc" "src/policy/CMakeFiles/mtat_policy.dir/memtis_hp_policy.cc.o.d"
  "/root/repo/src/policy/memtis_policy.cc" "src/policy/CMakeFiles/mtat_policy.dir/memtis_policy.cc.o" "gcc" "src/policy/CMakeFiles/mtat_policy.dir/memtis_policy.cc.o.d"
  "/root/repo/src/policy/tpp_policy.cc" "src/policy/CMakeFiles/mtat_policy.dir/tpp_policy.cc.o" "gcc" "src/policy/CMakeFiles/mtat_policy.dir/tpp_policy.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/telemetry/CMakeFiles/mtat_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/mtat_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mtat_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
