file(REMOVE_RECURSE
  "libmtat_policy.a"
)
