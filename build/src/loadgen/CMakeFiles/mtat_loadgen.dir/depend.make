# Empty dependencies file for mtat_loadgen.
# This may be replaced when dependencies are built.
