file(REMOVE_RECURSE
  "libmtat_loadgen.a"
)
