file(REMOVE_RECURSE
  "CMakeFiles/mtat_loadgen.dir/load_pattern.cc.o"
  "CMakeFiles/mtat_loadgen.dir/load_pattern.cc.o.d"
  "libmtat_loadgen.a"
  "libmtat_loadgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mtat_loadgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
