
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/be/be_suite.cc" "src/workloads/CMakeFiles/mtat_workloads.dir/be/be_suite.cc.o" "gcc" "src/workloads/CMakeFiles/mtat_workloads.dir/be/be_suite.cc.o.d"
  "/root/repo/src/workloads/be/be_workload.cc" "src/workloads/CMakeFiles/mtat_workloads.dir/be/be_workload.cc.o" "gcc" "src/workloads/CMakeFiles/mtat_workloads.dir/be/be_workload.cc.o.d"
  "/root/repo/src/workloads/be/page_profile.cc" "src/workloads/CMakeFiles/mtat_workloads.dir/be/page_profile.cc.o" "gcc" "src/workloads/CMakeFiles/mtat_workloads.dir/be/page_profile.cc.o.d"
  "/root/repo/src/workloads/graph/graph.cc" "src/workloads/CMakeFiles/mtat_workloads.dir/graph/graph.cc.o" "gcc" "src/workloads/CMakeFiles/mtat_workloads.dir/graph/graph.cc.o.d"
  "/root/repo/src/workloads/graph/kernels.cc" "src/workloads/CMakeFiles/mtat_workloads.dir/graph/kernels.cc.o" "gcc" "src/workloads/CMakeFiles/mtat_workloads.dir/graph/kernels.cc.o.d"
  "/root/repo/src/workloads/kv/btree_store.cc" "src/workloads/CMakeFiles/mtat_workloads.dir/kv/btree_store.cc.o" "gcc" "src/workloads/CMakeFiles/mtat_workloads.dir/kv/btree_store.cc.o.d"
  "/root/repo/src/workloads/kv/hash_store.cc" "src/workloads/CMakeFiles/mtat_workloads.dir/kv/hash_store.cc.o" "gcc" "src/workloads/CMakeFiles/mtat_workloads.dir/kv/hash_store.cc.o.d"
  "/root/repo/src/workloads/lc/lc_workload.cc" "src/workloads/CMakeFiles/mtat_workloads.dir/lc/lc_workload.cc.o" "gcc" "src/workloads/CMakeFiles/mtat_workloads.dir/lc/lc_workload.cc.o.d"
  "/root/repo/src/workloads/trace/trace_io.cc" "src/workloads/CMakeFiles/mtat_workloads.dir/trace/trace_io.cc.o" "gcc" "src/workloads/CMakeFiles/mtat_workloads.dir/trace/trace_io.cc.o.d"
  "/root/repo/src/workloads/xsbench/xsbench.cc" "src/workloads/CMakeFiles/mtat_workloads.dir/xsbench/xsbench.cc.o" "gcc" "src/workloads/CMakeFiles/mtat_workloads.dir/xsbench/xsbench.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mem/CMakeFiles/mtat_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mtat_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
