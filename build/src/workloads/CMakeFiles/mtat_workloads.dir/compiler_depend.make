# Empty compiler generated dependencies file for mtat_workloads.
# This may be replaced when dependencies are built.
