file(REMOVE_RECURSE
  "CMakeFiles/mtat_workloads.dir/be/be_suite.cc.o"
  "CMakeFiles/mtat_workloads.dir/be/be_suite.cc.o.d"
  "CMakeFiles/mtat_workloads.dir/be/be_workload.cc.o"
  "CMakeFiles/mtat_workloads.dir/be/be_workload.cc.o.d"
  "CMakeFiles/mtat_workloads.dir/be/page_profile.cc.o"
  "CMakeFiles/mtat_workloads.dir/be/page_profile.cc.o.d"
  "CMakeFiles/mtat_workloads.dir/graph/graph.cc.o"
  "CMakeFiles/mtat_workloads.dir/graph/graph.cc.o.d"
  "CMakeFiles/mtat_workloads.dir/graph/kernels.cc.o"
  "CMakeFiles/mtat_workloads.dir/graph/kernels.cc.o.d"
  "CMakeFiles/mtat_workloads.dir/kv/btree_store.cc.o"
  "CMakeFiles/mtat_workloads.dir/kv/btree_store.cc.o.d"
  "CMakeFiles/mtat_workloads.dir/kv/hash_store.cc.o"
  "CMakeFiles/mtat_workloads.dir/kv/hash_store.cc.o.d"
  "CMakeFiles/mtat_workloads.dir/lc/lc_workload.cc.o"
  "CMakeFiles/mtat_workloads.dir/lc/lc_workload.cc.o.d"
  "CMakeFiles/mtat_workloads.dir/trace/trace_io.cc.o"
  "CMakeFiles/mtat_workloads.dir/trace/trace_io.cc.o.d"
  "CMakeFiles/mtat_workloads.dir/xsbench/xsbench.cc.o"
  "CMakeFiles/mtat_workloads.dir/xsbench/xsbench.cc.o.d"
  "libmtat_workloads.a"
  "libmtat_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mtat_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
