file(REMOVE_RECURSE
  "libmtat_workloads.a"
)
