file(REMOVE_RECURSE
  "CMakeFiles/mtat_sim_cli.dir/mtat_sim.cc.o"
  "CMakeFiles/mtat_sim_cli.dir/mtat_sim.cc.o.d"
  "mtat_sim"
  "mtat_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mtat_sim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
