# Empty dependencies file for mtat_sim_cli.
# This may be replaced when dependencies are built.
