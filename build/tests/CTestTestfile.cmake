# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/mtat_tests[1]_include.cmake")
add_test(mtat_sim_cli_help "/root/repo/build/tools/mtat_sim" "--help")
set_tests_properties(mtat_sim_cli_help PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;25;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(mtat_sim_cli_smoke "/root/repo/build/tools/mtat_sim" "--policy=fmem_all" "--lc=redis" "--be=1" "--pattern=constant" "--load=0.3" "--seconds=5" "--fmem-mib=32" "--smem-mib=512" "--no-bandwidth")
set_tests_properties(mtat_sim_cli_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;26;add_test;/root/repo/tests/CMakeLists.txt;0;")
