
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/common_test.cc" "tests/CMakeFiles/mtat_tests.dir/common_test.cc.o" "gcc" "tests/CMakeFiles/mtat_tests.dir/common_test.cc.o.d"
  "/root/repo/tests/core_test.cc" "tests/CMakeFiles/mtat_tests.dir/core_test.cc.o" "gcc" "tests/CMakeFiles/mtat_tests.dir/core_test.cc.o.d"
  "/root/repo/tests/graph_test.cc" "tests/CMakeFiles/mtat_tests.dir/graph_test.cc.o" "gcc" "tests/CMakeFiles/mtat_tests.dir/graph_test.cc.o.d"
  "/root/repo/tests/kv_test.cc" "tests/CMakeFiles/mtat_tests.dir/kv_test.cc.o" "gcc" "tests/CMakeFiles/mtat_tests.dir/kv_test.cc.o.d"
  "/root/repo/tests/loadgen_test.cc" "tests/CMakeFiles/mtat_tests.dir/loadgen_test.cc.o" "gcc" "tests/CMakeFiles/mtat_tests.dir/loadgen_test.cc.o.d"
  "/root/repo/tests/mem_test.cc" "tests/CMakeFiles/mtat_tests.dir/mem_test.cc.o" "gcc" "tests/CMakeFiles/mtat_tests.dir/mem_test.cc.o.d"
  "/root/repo/tests/multi_lc_test.cc" "tests/CMakeFiles/mtat_tests.dir/multi_lc_test.cc.o" "gcc" "tests/CMakeFiles/mtat_tests.dir/multi_lc_test.cc.o.d"
  "/root/repo/tests/policy_test.cc" "tests/CMakeFiles/mtat_tests.dir/policy_test.cc.o" "gcc" "tests/CMakeFiles/mtat_tests.dir/policy_test.cc.o.d"
  "/root/repo/tests/property_test.cc" "tests/CMakeFiles/mtat_tests.dir/property_test.cc.o" "gcc" "tests/CMakeFiles/mtat_tests.dir/property_test.cc.o.d"
  "/root/repo/tests/region_monitor_test.cc" "tests/CMakeFiles/mtat_tests.dir/region_monitor_test.cc.o" "gcc" "tests/CMakeFiles/mtat_tests.dir/region_monitor_test.cc.o.d"
  "/root/repo/tests/rl_test.cc" "tests/CMakeFiles/mtat_tests.dir/rl_test.cc.o" "gcc" "tests/CMakeFiles/mtat_tests.dir/rl_test.cc.o.d"
  "/root/repo/tests/sim_test.cc" "tests/CMakeFiles/mtat_tests.dir/sim_test.cc.o" "gcc" "tests/CMakeFiles/mtat_tests.dir/sim_test.cc.o.d"
  "/root/repo/tests/telemetry_test.cc" "tests/CMakeFiles/mtat_tests.dir/telemetry_test.cc.o" "gcc" "tests/CMakeFiles/mtat_tests.dir/telemetry_test.cc.o.d"
  "/root/repo/tests/trace_test.cc" "tests/CMakeFiles/mtat_tests.dir/trace_test.cc.o" "gcc" "tests/CMakeFiles/mtat_tests.dir/trace_test.cc.o.d"
  "/root/repo/tests/workloads_test.cc" "tests/CMakeFiles/mtat_tests.dir/workloads_test.cc.o" "gcc" "tests/CMakeFiles/mtat_tests.dir/workloads_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/mtat_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/mtat_core.dir/DependInfo.cmake"
  "/root/repo/build/src/policy/CMakeFiles/mtat_policy.dir/DependInfo.cmake"
  "/root/repo/build/src/loadgen/CMakeFiles/mtat_loadgen.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/mtat_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/rl/CMakeFiles/mtat_rl.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/mtat_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/mtat_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mtat_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
