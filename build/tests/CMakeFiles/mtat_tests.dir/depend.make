# Empty dependencies file for mtat_tests.
# This may be replaced when dependencies are built.
