# Empty compiler generated dependencies file for rl_playground.
# This may be replaced when dependencies are built.
