file(REMOVE_RECURSE
  "CMakeFiles/rl_playground.dir/rl_playground.cpp.o"
  "CMakeFiles/rl_playground.dir/rl_playground.cpp.o.d"
  "rl_playground"
  "rl_playground.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rl_playground.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
