file(REMOVE_RECURSE
  "CMakeFiles/multi_lc_colocation.dir/multi_lc_colocation.cpp.o"
  "CMakeFiles/multi_lc_colocation.dir/multi_lc_colocation.cpp.o.d"
  "multi_lc_colocation"
  "multi_lc_colocation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_lc_colocation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
