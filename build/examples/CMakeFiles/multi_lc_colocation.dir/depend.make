# Empty dependencies file for multi_lc_colocation.
# This may be replaced when dependencies are built.
