# Empty dependencies file for fig7_load_pattern.
# This may be replaced when dependencies are built.
