file(REMOVE_RECURSE
  "CMakeFiles/fig7_load_pattern.dir/fig7_load_pattern.cc.o"
  "CMakeFiles/fig7_load_pattern.dir/fig7_load_pattern.cc.o.d"
  "fig7_load_pattern"
  "fig7_load_pattern.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_load_pattern.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
