# Empty compiler generated dependencies file for fig1_lc_latency_curves.
# This may be replaced when dependencies are built.
