file(REMOVE_RECURSE
  "CMakeFiles/fig1_lc_latency_curves.dir/fig1_lc_latency_curves.cc.o"
  "CMakeFiles/fig1_lc_latency_curves.dir/fig1_lc_latency_curves.cc.o.d"
  "fig1_lc_latency_curves"
  "fig1_lc_latency_curves.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_lc_latency_curves.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
