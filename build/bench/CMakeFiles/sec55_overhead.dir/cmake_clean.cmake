file(REMOVE_RECURSE
  "CMakeFiles/sec55_overhead.dir/sec55_overhead.cc.o"
  "CMakeFiles/sec55_overhead.dir/sec55_overhead.cc.o.d"
  "sec55_overhead"
  "sec55_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec55_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
