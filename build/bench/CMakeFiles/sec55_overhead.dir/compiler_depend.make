# Empty compiler generated dependencies file for sec55_overhead.
# This may be replaced when dependencies are built.
