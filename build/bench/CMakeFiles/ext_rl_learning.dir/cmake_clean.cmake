file(REMOVE_RECURSE
  "CMakeFiles/ext_rl_learning.dir/ext_rl_learning.cc.o"
  "CMakeFiles/ext_rl_learning.dir/ext_rl_learning.cc.o.d"
  "ext_rl_learning"
  "ext_rl_learning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_rl_learning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
