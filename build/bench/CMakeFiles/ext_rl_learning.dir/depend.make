# Empty dependencies file for ext_rl_learning.
# This may be replaced when dependencies are built.
