# Empty dependencies file for table2_be_characteristics.
# This may be replaced when dependencies are built.
