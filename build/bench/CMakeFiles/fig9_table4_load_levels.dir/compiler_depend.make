# Empty compiler generated dependencies file for fig9_table4_load_levels.
# This may be replaced when dependencies are built.
