file(REMOVE_RECURSE
  "CMakeFiles/fig9_table4_load_levels.dir/fig9_table4_load_levels.cc.o"
  "CMakeFiles/fig9_table4_load_levels.dir/fig9_table4_load_levels.cc.o.d"
  "fig9_table4_load_levels"
  "fig9_table4_load_levels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_table4_load_levels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
