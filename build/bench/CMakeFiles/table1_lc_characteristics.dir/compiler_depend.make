# Empty compiler generated dependencies file for table1_lc_characteristics.
# This may be replaced when dependencies are built.
