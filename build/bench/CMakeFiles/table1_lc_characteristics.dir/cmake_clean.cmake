file(REMOVE_RECURSE
  "CMakeFiles/table1_lc_characteristics.dir/table1_lc_characteristics.cc.o"
  "CMakeFiles/table1_lc_characteristics.dir/table1_lc_characteristics.cc.o.d"
  "table1_lc_characteristics"
  "table1_lc_characteristics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_lc_characteristics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
