# Empty dependencies file for fig5_fig6_dynamic_load.
# This may be replaced when dependencies are built.
