file(REMOVE_RECURSE
  "CMakeFiles/fig5_fig6_dynamic_load.dir/fig5_fig6_dynamic_load.cc.o"
  "CMakeFiles/fig5_fig6_dynamic_load.dir/fig5_fig6_dynamic_load.cc.o.d"
  "fig5_fig6_dynamic_load"
  "fig5_fig6_dynamic_load.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_fig6_dynamic_load.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
