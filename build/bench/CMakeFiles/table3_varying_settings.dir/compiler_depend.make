# Empty compiler generated dependencies file for table3_varying_settings.
# This may be replaced when dependencies are built.
