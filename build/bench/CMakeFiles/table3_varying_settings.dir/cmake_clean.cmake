file(REMOVE_RECURSE
  "CMakeFiles/table3_varying_settings.dir/table3_varying_settings.cc.o"
  "CMakeFiles/table3_varying_settings.dir/table3_varying_settings.cc.o.d"
  "table3_varying_settings"
  "table3_varying_settings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_varying_settings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
