file(REMOVE_RECURSE
  "CMakeFiles/fig2_memtis_colocation.dir/fig2_memtis_colocation.cc.o"
  "CMakeFiles/fig2_memtis_colocation.dir/fig2_memtis_colocation.cc.o.d"
  "fig2_memtis_colocation"
  "fig2_memtis_colocation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_memtis_colocation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
