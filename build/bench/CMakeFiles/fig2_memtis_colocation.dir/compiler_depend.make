# Empty compiler generated dependencies file for fig2_memtis_colocation.
# This may be replaced when dependencies are built.
