# Empty compiler generated dependencies file for fig8_max_load.
# This may be replaced when dependencies are built.
