file(REMOVE_RECURSE
  "CMakeFiles/fig8_max_load.dir/fig8_max_load.cc.o"
  "CMakeFiles/fig8_max_load.dir/fig8_max_load.cc.o.d"
  "fig8_max_load"
  "fig8_max_load.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_max_load.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
