file(REMOVE_RECURSE
  "CMakeFiles/ablation_mtat.dir/ablation_mtat.cc.o"
  "CMakeFiles/ablation_mtat.dir/ablation_mtat.cc.o.d"
  "ablation_mtat"
  "ablation_mtat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_mtat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
