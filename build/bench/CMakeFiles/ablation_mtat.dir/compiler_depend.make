# Empty compiler generated dependencies file for ablation_mtat.
# This may be replaced when dependencies are built.
