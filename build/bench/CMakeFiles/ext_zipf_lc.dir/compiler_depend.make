# Empty compiler generated dependencies file for ext_zipf_lc.
# This may be replaced when dependencies are built.
