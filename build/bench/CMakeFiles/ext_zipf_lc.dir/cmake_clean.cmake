file(REMOVE_RECURSE
  "CMakeFiles/ext_zipf_lc.dir/ext_zipf_lc.cc.o"
  "CMakeFiles/ext_zipf_lc.dir/ext_zipf_lc.cc.o.d"
  "ext_zipf_lc"
  "ext_zipf_lc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_zipf_lc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
