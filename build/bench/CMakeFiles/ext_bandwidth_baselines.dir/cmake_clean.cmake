file(REMOVE_RECURSE
  "CMakeFiles/ext_bandwidth_baselines.dir/ext_bandwidth_baselines.cc.o"
  "CMakeFiles/ext_bandwidth_baselines.dir/ext_bandwidth_baselines.cc.o.d"
  "ext_bandwidth_baselines"
  "ext_bandwidth_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_bandwidth_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
