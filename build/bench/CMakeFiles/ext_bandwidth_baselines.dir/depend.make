# Empty dependencies file for ext_bandwidth_baselines.
# This may be replaced when dependencies are built.
