// Fault-injection subsystem tests (DESIGN.md §12): plan parsing and windows,
// injector determinism and stream independence, each injection site
// (telemetry, migration engine, RL agent, simulator), the graceful-
// degradation machinery (backoff/retry/rollback, the watchdog ladder), and
// the two headline guarantees — an empty plan changes nothing, and a faulted
// run is bit-identical for the same seed and plan.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/mtat_policy.h"
#include "faults/fault_injector.h"
#include "faults/fault_plan.h"
#include "mem/migration_engine.h"
#include "mem/tiered_memory.h"
#include "obs/names.h"
#include "obs/run_context.h"
#include "rl/sac.h"
#include "sim/colocation_sim.h"
#include "telemetry/access_sampler.h"
#include "workloads/be/be_suite.h"

namespace mtat {
namespace {

using faults::FaultInjector;
using faults::FaultPlan;
using faults::FaultWindow;

double counter_value(const obs::RunContext& ctx, const char* name) {
  const obs::Counter* c = ctx.metrics().find_counter(name);
  return c != nullptr ? c->value() : 0.0;
}

// ---------------------------------------------------------------- FaultPlan --

TEST(FaultWindowTest, OneShotAndPeriodicContainment) {
  const FaultWindow once{seconds(10), seconds(5), 0};
  EXPECT_FALSE(once.contains(seconds(9)));
  EXPECT_TRUE(once.contains(seconds(10)));
  EXPECT_TRUE(once.contains(seconds(14)));
  EXPECT_FALSE(once.contains(seconds(15)));

  const FaultWindow periodic{seconds(10), seconds(5), seconds(30)};
  EXPECT_TRUE(periodic.contains(seconds(40)));   // second cycle
  EXPECT_FALSE(periodic.contains(seconds(45)));  // past the window
  EXPECT_TRUE(periodic.contains(seconds(70)));   // third cycle

  const FaultWindow empty{seconds(10), 0, 0};
  EXPECT_FALSE(empty.contains(seconds(10)));
}

TEST(FaultPlanTest, DefaultPlanInjectsNothing) {
  const FaultPlan plan;
  EXPECT_FALSE(plan.any());
}

TEST(FaultPlanTest, StormScalesWithIntensityAndValidates) {
  EXPECT_FALSE(FaultPlan::storm(0.0).any());
  const FaultPlan half = FaultPlan::storm(0.5);
  const FaultPlan full = FaultPlan::storm(1.0);
  EXPECT_TRUE(half.any());
  EXPECT_DOUBLE_EQ(full.sample_loss_prob, 2.0 * half.sample_loss_prob);
  EXPECT_DOUBLE_EQ(full.burst_failure_prob, 1.0);  // total outage at 1.0
  EXPECT_LT(full.bandwidth_collapse_factor, half.bandwidth_collapse_factor);
  EXPECT_FALSE(full.telemetry_blackouts.empty());
  EXPECT_THROW(FaultPlan::storm(-0.1), std::invalid_argument);
  EXPECT_THROW(FaultPlan::storm(1.1), std::invalid_argument);
}

TEST(FaultPlanTest, FromSpecParsesPresetAndIntensity) {
  const auto bare = FaultPlan::from_spec("storm");
  ASSERT_TRUE(bare.has_value());
  EXPECT_DOUBLE_EQ(bare->burst_failure_prob, 1.0);
  const auto scaled = FaultPlan::from_spec("storm:0.5");
  ASSERT_TRUE(scaled.has_value());
  EXPECT_DOUBLE_EQ(scaled->burst_failure_prob, 0.5);
  EXPECT_FALSE(FaultPlan::from_spec("hurricane").has_value());
  EXPECT_FALSE(FaultPlan::from_spec("storm:abc").has_value());
  EXPECT_FALSE(FaultPlan::from_spec("storm:1.5").has_value());
  EXPECT_FALSE(FaultPlan::from_spec("storm:-1").has_value());
}

TEST(FaultPlanTest, NormalizeDropsZeroLengthWindows) {
  FaultPlan plan;
  plan.telemetry_blackouts = {{seconds(10), 0, 0}, {seconds(20), 0, seconds(30)}};
  // Raw, the schedule looks armed — normalization reveals it injects nothing.
  EXPECT_TRUE(plan.any());
  const FaultPlan canon = plan.normalized();
  EXPECT_TRUE(canon.telemetry_blackouts.empty());
  EXPECT_FALSE(canon.any());
}

TEST(FaultPlanTest, NormalizeMergesOverlappingAndAbuttingOneShots) {
  std::vector<FaultWindow> windows = {{seconds(8), seconds(2), 0},
                                      {seconds(0), seconds(4), 0},
                                      {seconds(3), seconds(5), 0}};
  faults::normalize_windows(windows);
  // (0,4) overlaps (3,5) -> (0,8), which abuts (8,2) -> one window (0,10).
  ASSERT_EQ(windows.size(), 1u);
  EXPECT_EQ(windows[0].start, seconds(0));
  EXPECT_EQ(windows[0].length, seconds(10));
  EXPECT_EQ(windows[0].period, Duration{0});
}

TEST(FaultPlanTest, NormalizeMergesSamePeriodAndKeepsPeriodsApart) {
  std::vector<FaultWindow> windows = {{seconds(4), seconds(8), seconds(10)},
                                      {seconds(0), seconds(6), seconds(10)},
                                      {seconds(0), seconds(3), seconds(20)}};
  faults::normalize_windows(windows);
  ASSERT_EQ(windows.size(), 2u);
  // Same-period pair merges and clamps to the full cycle; the 20 s window is
  // untouched — cross-period overlap varies per cycle, so no merge there.
  EXPECT_EQ(windows[0].start, seconds(0));
  EXPECT_EQ(windows[0].length, seconds(10));
  EXPECT_EQ(windows[0].period, seconds(10));
  EXPECT_EQ(windows[1].start, seconds(0));
  EXPECT_EQ(windows[1].length, seconds(3));
  EXPECT_EQ(windows[1].period, seconds(20));
}

TEST(FaultPlanTest, NormalizeRejectsInvertedPeriodicWindows) {
  FaultPlan plan;
  plan.migration_failure_bursts = {{seconds(0), seconds(11), seconds(10)}};
  EXPECT_THROW(plan.normalized(), std::invalid_argument);
  std::vector<FaultWindow> windows = {{seconds(0), seconds(11), seconds(10)}};
  EXPECT_THROW(faults::normalize_windows(windows), std::invalid_argument);
}

TEST(FaultPlanTest, InjectorExecutesTheNormalizedSchedule) {
  FaultPlan plan;
  plan.telemetry_blackouts = {{seconds(5), 0, 0},  // dead weight: dropped
                              {seconds(0), seconds(4), 0},
                              {seconds(3), seconds(5), 0}};
  const FaultInjector injector(plan);
  ASSERT_EQ(injector.plan().telemetry_blackouts.size(), 1u);
  EXPECT_EQ(injector.plan().telemetry_blackouts[0].start, seconds(0));
  EXPECT_EQ(injector.plan().telemetry_blackouts[0].length, seconds(8));
}

TEST(FaultPlanTest, DefaultPlanReachesNewRunContexts) {
  ASSERT_EQ(faults::default_plan(), nullptr);  // tests run without MTAT_FAULTS
  faults::set_default_plan(FaultPlan::storm(0.25));
  {
    obs::RunContext ctx;
    ASSERT_NE(ctx.faults(), nullptr);
    EXPECT_DOUBLE_EQ(ctx.faults()->plan().burst_failure_prob, 0.25);
  }
  faults::clear_default_plan();
  obs::RunContext clean;
  EXPECT_EQ(clean.faults(), nullptr);
}

// ------------------------------------------------------------ FaultInjector --

TEST(FaultInjectorTest, SamePlanSameDrawSequence) {
  FaultPlan plan;
  plan.sample_loss_prob = 0.5;
  plan.migration_failure_prob = 0.5;
  FaultInjector a(plan), b(plan);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(a.drop_sample(), b.drop_sample());
    EXPECT_EQ(a.fail_migration(), b.fail_migration());
  }
}

TEST(FaultInjectorTest, CategoriesDrawFromIndependentStreams) {
  FaultPlan plan;
  plan.sample_loss_prob = 0.5;
  plan.migration_failure_prob = 0.5;
  FaultInjector plain(plan), interleaved(plan);
  std::vector<bool> expect;
  for (int i = 0; i < 100; ++i) expect.push_back(plain.fail_migration());
  for (int i = 0; i < 100; ++i) {
    interleaved.drop_sample();  // telemetry draws must not shift migration's
    EXPECT_EQ(interleaved.fail_migration(), expect[static_cast<std::size_t>(i)]) << i;
  }
}

TEST(FaultInjectorTest, ZeroProbabilityQueriesConsumeNoRandomness) {
  FaultPlan plan;
  plan.sample_loss_prob = 0.5;  // corruption stays 0 on the same stream
  FaultInjector plain(plan), interleaved(plan);
  for (int i = 0; i < 100; ++i) {
    interleaved.corrupt_sample();  // zero-probability: must be a pure no-op
    EXPECT_EQ(interleaved.drop_sample(), plain.drop_sample()) << i;
  }
}

TEST(FaultInjectorTest, WindowQueriesFollowSetNow) {
  FaultPlan plan;
  plan.telemetry_blackouts = {{seconds(10), seconds(5), 0}};
  plan.smem_latency_spikes = {{seconds(20), seconds(5), 0}};
  plan.smem_spike_factor = 3.0;
  FaultInjector inj(plan);
  EXPECT_FALSE(inj.telemetry_blackout());
  EXPECT_DOUBLE_EQ(inj.smem_latency_factor(), 1.0);
  inj.set_now(seconds(12));
  EXPECT_TRUE(inj.telemetry_blackout());
  EXPECT_TRUE(inj.drop_sample());  // blackout drops without a draw
  inj.set_now(seconds(22));
  EXPECT_FALSE(inj.telemetry_blackout());
  EXPECT_DOUBLE_EQ(inj.smem_latency_factor(), 3.0);
}

// ------------------------------------------------------------- AccessSampler --

TEST(FaultSamplerTest, BlackoutDropsEverySampleAndCounts) {
  TieredMemory::Config mc =
      TieredMemory::Config::two_tier(16, 64);
  TieredMemory mem(mc);
  const auto pages = mem.allocate(0, 8, kFastestFirst);
  obs::RunContext ctx;
  FaultPlan plan;
  plan.telemetry_blackouts = {{0, seconds(100), 0}};
  ctx.install_faults(plan);
  AccessSampler sampler(mem);
  sampler.set_faults(ctx.faults(), ctx);
  for (int i = 0; i < 10; ++i) sampler.on_sampled_access(0, pages[0], AccessKind::kRead);
  EXPECT_EQ(sampler.collect(0).total(), 0u);
  EXPECT_DOUBLE_EQ(counter_value(ctx, obs::names::kFaultSamplesDropped), 10.0);
}

TEST(FaultSamplerTest, CorruptionMisattributesWithinTheWorkload) {
  TieredMemory::Config mc =
      TieredMemory::Config::two_tier(4, 64);
  TieredMemory mem(mc);
  // 4 pages land in FMem, 28 spill to SMem: a corrupted sample of an FMem
  // page will mostly be misattributed to an SMem one.
  mem.allocate(0, 32, kFastestFirst);
  const PageId fmem_page = mem.pages_of(0)[0];
  ASSERT_EQ(mem.tier_of(fmem_page), Tier::kFMem);
  obs::RunContext ctx;
  FaultPlan plan;
  plan.sample_corruption_prob = 1.0;
  ctx.install_faults(plan);
  AccessSampler sampler(mem);
  sampler.set_faults(ctx.faults(), ctx);
  for (int i = 0; i < 64; ++i) sampler.on_sampled_access(0, fmem_page, AccessKind::kRead);
  const IntervalCounters c = sampler.collect(0);
  EXPECT_EQ(c.total(), 64u);       // corrupted samples still count...
  EXPECT_GT(c.smem_accesses, 0u);  // ...but against the wrong pages/tiers
  EXPECT_DOUBLE_EQ(counter_value(ctx, obs::names::kFaultSamplesCorrupted), 64.0);
}

// ---------------------------------------------------------- MigrationEngine --

/// 100 pages/s of budget, an FMem/SMem split population, and a one-shot
/// total-failure burst over [0, 5 s).
struct EngineFixture {
  TieredMemory mem;
  obs::RunContext ctx;
  MigrationEngine engine;
  std::vector<PageId> fmem_pages, smem_pages;

  explicit EngineFixture(FaultPlan plan)
      : mem([] {
          TieredMemory::Config mc =
              TieredMemory::Config::two_tier(32, 64);
          return mc;
        }()),
        engine(mem, {100.0 * static_cast<double>(kPageSize)}) {
    fmem_pages = mem.allocate(0, 8, kTierOnly(Tier::kFMem));
    smem_pages = mem.allocate(1, 8, kTierOnly(Tier::kSMem));
    ctx.install_faults(plan);
    engine.set_run_context(&ctx);
    engine.begin_interval(seconds(1));
  }
};

FaultPlan burst_plan() {
  FaultPlan plan;
  plan.migration_failure_bursts = {{0, seconds(5), 0}};
  plan.burst_failure_prob = 1.0;
  return plan;
}

TEST(FaultEngineTest, InjectedAbortBurnsBudgetWithoutMoving) {
  EngineFixture f(burst_plan());
  const std::uint64_t budget = f.engine.budget_pages();
  EXPECT_FALSE(f.engine.promote(f.smem_pages[0]));
  EXPECT_EQ(f.mem.tier_of(f.smem_pages[0]), Tier::kSMem);
  EXPECT_EQ(f.engine.budget_pages(), budget - 1);  // the wasted copy
  EXPECT_EQ(f.engine.total_pages_moved(), 0u);
  EXPECT_DOUBLE_EQ(counter_value(f.ctx, obs::names::kFaultMigrationFailures), 1.0);
}

TEST(FaultEngineTest, FailureStreakOpensBackoffThatFailsFast) {
  EngineFixture f(burst_plan());
  for (int i = 0; i < 4; ++i) EXPECT_FALSE(f.engine.promote(f.smem_pages[0]));
  EXPECT_TRUE(f.engine.in_backoff());
  EXPECT_DOUBLE_EQ(counter_value(f.ctx, obs::names::kFaultMigrationFailures), 4.0);
  // Fail-fast: attempts during the window neither draw nor burn budget.
  const std::uint64_t budget = f.engine.budget_pages();
  EXPECT_FALSE(f.engine.promote(f.smem_pages[1]));
  EXPECT_EQ(f.engine.budget_pages(), budget);
  EXPECT_DOUBLE_EQ(counter_value(f.ctx, obs::names::kFaultMigrationFailures), 4.0);
}

TEST(FaultEngineTest, RetryAfterBackoffIsCountedAndCanSucceed) {
  EngineFixture f(burst_plan());
  for (int i = 0; i < 4; ++i) f.engine.promote(f.smem_pages[0]);
  ASSERT_TRUE(f.engine.in_backoff());
  // Drain the 2-tick window; each tick is counted.
  f.engine.begin_interval(seconds(1));
  f.engine.begin_interval(seconds(1));
  EXPECT_FALSE(f.engine.in_backoff());
  EXPECT_DOUBLE_EQ(counter_value(f.ctx, obs::names::kMigrationBackoffTicks), 2.0);
  // Past the burst window the retry goes through — and is counted as one.
  f.ctx.faults()->set_now(seconds(6));
  EXPECT_TRUE(f.engine.promote(f.smem_pages[0]));
  EXPECT_EQ(f.mem.tier_of(f.smem_pages[0]), Tier::kFMem);
  EXPECT_DOUBLE_EQ(counter_value(f.ctx, obs::names::kMigrationRetries), 1.0);
}

TEST(FaultEngineTest, AbortedExchangeRollsBackBothPages) {
  EngineFixture f(burst_plan());
  const std::uint64_t budget = f.engine.budget_pages();
  EXPECT_FALSE(f.engine.exchange(f.smem_pages[0], f.fmem_pages[0]));
  EXPECT_EQ(f.mem.tier_of(f.smem_pages[0]), Tier::kSMem);
  EXPECT_EQ(f.mem.tier_of(f.fmem_pages[0]), Tier::kFMem);
  EXPECT_EQ(f.engine.budget_pages(), budget - 2);  // both half-copies wasted
  EXPECT_DOUBLE_EQ(counter_value(f.ctx, obs::names::kFaultMigrationRollbacks), 1.0);
}

TEST(FaultEngineTest, BandwidthCollapseScalesTheRefill) {
  FaultPlan plan;
  plan.bandwidth_collapses = {{0, seconds(10), 0}};
  plan.bandwidth_collapse_factor = 0.25;
  EngineFixture f(plan);
  EXPECT_EQ(f.engine.budget_pages(), 25u);  // 100 pages/s collapsed to a quarter
  f.ctx.faults()->set_now(seconds(11));
  f.engine.begin_interval(seconds(1));
  EXPECT_EQ(f.engine.budget_pages(), 100u);  // full refill outside the window
}

// --------------------------------------------------------------------- SAC --

TEST(FaultSacTest, InjectedNanActionsAreProducedAndCounted) {
  obs::RunContext ctx;
  FaultPlan plan;
  plan.rl_nan_action_prob = 1.0;
  ctx.install_faults(plan);
  SacAgent agent{SacConfig{}};
  agent.set_run_context(&ctx);
  const std::vector<double> action = agent.act({0.5, 0.5, 0.1}, /*deterministic=*/true);
  ASSERT_FALSE(action.empty());
  for (double a : action) EXPECT_TRUE(std::isnan(a));
  EXPECT_DOUBLE_EQ(counter_value(ctx, obs::names::kFaultRlActionsCorrupted), 1.0);
}

TEST(FaultSacTest, InjectedDivergentActionsLeaveTheActionBox) {
  obs::RunContext ctx;
  FaultPlan plan;
  plan.rl_divergent_action_prob = 1.0;
  ctx.install_faults(plan);
  SacAgent agent{SacConfig{}};
  agent.set_run_context(&ctx);
  const std::vector<double> action = agent.act({0.5, 0.5, 0.1}, /*deterministic=*/true);
  ASSERT_FALSE(action.empty());
  for (double a : action) EXPECT_GT(std::abs(a), 1.0);
}

TEST(FaultSacTest, CorruptedTransitionsNeverReachTheReplayBuffer) {
  obs::RunContext ctx;
  SacAgent agent{SacConfig{}};
  agent.set_run_context(&ctx);
  const std::vector<double> s{0.5, 0.5, 0.1};
  const std::vector<double> a{0.0};
  agent.observe(s, a, std::nan(""), s, false);
  agent.observe({std::nan(""), 0.0, 0.0}, a, 0.5, s, false);
  EXPECT_EQ(agent.buffer_size(), 0u);
  EXPECT_DOUBLE_EQ(counter_value(ctx, obs::names::kRlRejectedTransitions), 2.0);
  agent.observe(s, a, 0.5, s, false);  // a healthy transition still lands
  EXPECT_EQ(agent.buffer_size(), 1u);
}

// ----------------------------------------------------------- ColocationSim --

SimConfig tiny_config(PolicyKind policy) {
  SimConfig cfg;
  cfg.fmem = 32_MiB;
  cfg.smem = 512_MiB;
  cfg.lc = redis_config();
  cfg.lc.n_records = 30'000;
  cfg.be = be_suite(BEScale::kTest, 36_MiB, 4, 2);
  cfg.policy = policy;
  cfg.bandwidth.enabled = true;
  cfg.seed = 20260806;
  return cfg;
}

SimResult run_sim(const SimConfig& cfg, obs::RunContext* ctx, double load_frac = 0.5,
                  Duration dur = seconds(8)) {
  ColocationSim sim(cfg, ctx);
  const LoadPattern pat = LoadPattern::constant(cfg.lc.max_load_krps * 1000.0 * load_frac);
  sim.run(pat, dur);
  return sim.result();
}

void expect_identical(const SimResult& a, const SimResult& b) {
  ASSERT_EQ(a.series.size(), b.series.size());
  for (std::size_t i = 0; i < a.series.size(); ++i) {
    EXPECT_EQ(a.series[i].lc_p99_ms, b.series[i].lc_p99_ms) << "interval " << i;
    EXPECT_EQ(a.series[i].lc_fmem_ratio, b.series[i].lc_fmem_ratio) << "interval " << i;
    EXPECT_EQ(a.series[i].be_throughput, b.series[i].be_throughput) << "interval " << i;
  }
  EXPECT_EQ(a.lc_p99_ms, b.lc_p99_ms);
  EXPECT_EQ(a.slo_violation_rate, b.slo_violation_rate);
  EXPECT_EQ(a.lc_completed, b.lc_completed);
  EXPECT_EQ(a.be_rate, b.be_rate);
  EXPECT_EQ(a.fairness, b.fairness);
  EXPECT_EQ(a.migration_bytes_per_sec, b.migration_bytes_per_sec);
}

TEST(FaultSimTest, EmptyPlanIsBehaviourIdenticalToNoPlan) {
  // The injector is attached but every query is a no-op: results must be
  // bit-identical to a run with no injector at all.
  const SimConfig cfg = tiny_config(PolicyKind::kMemtis);
  const SimResult clean = run_sim(cfg, nullptr);
  obs::RunContext ctx;
  ctx.install_faults(FaultPlan{});
  expect_identical(clean, run_sim(cfg, &ctx));
}

TEST(FaultSimTest, EmptyPlanIsBehaviourIdenticalForMtatWithWatchdogOff) {
  SimConfig cfg = tiny_config(PolicyKind::kMtatFull);
  cfg.mtat.watchdog.mode = MtatPolicy::Options::Watchdog::Mode::kOff;
  const SimResult clean = run_sim(cfg, nullptr);
  obs::RunContext ctx;
  ctx.install_faults(FaultPlan{});
  expect_identical(clean, run_sim(cfg, &ctx));
}

TEST(FaultSimTest, SameSeedSamePlanIsBitIdentical) {
  const SimConfig cfg = tiny_config(PolicyKind::kMtatFull);
  obs::RunContext ctx_a, ctx_b;
  ctx_a.install_faults(FaultPlan::storm(0.7));
  ctx_b.install_faults(FaultPlan::storm(0.7));
  const SimResult a = run_sim(cfg, &ctx_a);
  const SimResult b = run_sim(cfg, &ctx_b);
  expect_identical(a, b);
  for (const char* name : obs::names::kAllMetricNames) {
    if (obs::names::is_wall_time_metric(name)) continue;
    SCOPED_TRACE(name);
    const obs::Counter* ca = ctx_a.metrics().find_counter(name);
    const obs::Counter* cb = ctx_b.metrics().find_counter(name);
    ASSERT_EQ(ca == nullptr, cb == nullptr);
    if (ca != nullptr) {
      EXPECT_EQ(ca->value(), cb->value());
    }
  }
}

TEST(FaultSimTest, SmemLatencySpikeInflatesTailLatency) {
  SimConfig cfg = tiny_config(PolicyKind::kSmemAll);  // LC pinned to SMem
  cfg.bandwidth.enabled = false;  // exercise the direct spike path
  const SimResult clean = run_sim(cfg, nullptr, 0.4, seconds(5));
  FaultPlan plan;
  plan.smem_latency_spikes = {{0, seconds(1000), 0}};
  plan.smem_spike_factor = 4.0;
  obs::RunContext ctx;
  ctx.install_faults(plan);
  const SimResult spiked = run_sim(cfg, &ctx, 0.4, seconds(5));
  EXPECT_GT(spiked.lc_p99_ms, clean.lc_p99_ms);
}

TEST(FaultSimTest, TotalBlackoutTripsTheWatchdogLadder) {
  const SimConfig cfg = tiny_config(PolicyKind::kMtatFull);
  FaultPlan plan;
  plan.telemetry_blackouts = {{0, seconds(1000), 0}};
  obs::RunContext ctx;
  ctx.install_faults(plan);
  ColocationSim sim(cfg, &ctx);
  auto* mtat = dynamic_cast<MtatPolicy*>(&sim.policy());
  ASSERT_NE(mtat, nullptr);
  EXPECT_TRUE(mtat->watchdog_active());  // kAuto arms because faults are on
  const LoadPattern pat = LoadPattern::constant(cfg.lc.max_load_krps * 1000.0 * 0.5);
  sim.run(pat, seconds(8));
  // Telemetry never comes back, so the controller must have left the RL rung
  // (trip_after = 3 consecutive dark intervals) — and kept serving.
  EXPECT_NE(mtat->control_mode(), MtatPolicy::ControlMode::kRl);
  EXPECT_GE(counter_value(ctx, obs::names::kMtatModeTransitions), 1.0);
  EXPECT_GT(sim.result().lc_completed, 0u);
}

TEST(FaultSimTest, FullStormIsSurvivedByEveryPolicy) {
  // The acceptance scenario: 100% migration-failure bursts plus total
  // telemetry blackouts. Nothing may crash, hang, or stop serving.
  for (PolicyKind policy : {PolicyKind::kMtatFull, PolicyKind::kMemtis, PolicyKind::kTpp}) {
    SCOPED_TRACE(policy_name(policy));
    obs::RunContext ctx;
    ctx.install_faults(FaultPlan::storm(1.0));
    const SimResult r = run_sim(tiny_config(policy), &ctx, 0.5, seconds(12));
    EXPECT_GT(r.lc_completed, 0u);
  }
}

}  // namespace
}  // namespace mtat
