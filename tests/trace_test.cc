// Tests for access-trace capture, serialization, and profile replay.
#include <gtest/gtest.h>

#include <fstream>

#include "common/rng.h"
#include "workloads/kv/hash_store.h"
#include "workloads/trace/trace_io.h"

namespace mtat {
namespace {

std::string temp_path(const char* name) { return ::testing::TempDir() + "/" + name; }

TEST(TraceIo, RoundTripsSamples) {
  const std::string path = temp_path("roundtrip.trace");
  std::vector<TraceSample> samples = {{0, AccessKind::kRead},
                                      {99, AccessKind::kWrite},
                                      {5, AccessKind::kRead}};
  write_trace(path, 100, samples);
  const Trace t = read_trace(path);
  EXPECT_EQ(t.footprint_pages, 100u);
  ASSERT_EQ(t.samples.size(), 3u);
  EXPECT_EQ(t.samples[1].vpage, 99u);
  EXPECT_EQ(t.samples[1].kind, AccessKind::kWrite);
  EXPECT_EQ(t.samples[2].vpage, 5u);
  EXPECT_EQ(t.samples[2].kind, AccessKind::kRead);
}

TEST(TraceIo, RejectsMissingAndCorruptFiles) {
  EXPECT_THROW(read_trace(temp_path("nonexistent.trace")), std::runtime_error);
  const std::string path = temp_path("corrupt.trace");
  {
    std::ofstream out(path, std::ios::binary);
    out << "not a trace";
  }
  EXPECT_THROW(read_trace(path), std::runtime_error);
}

TEST(TraceIo, RejectsOutOfFootprintSamples) {
  const std::string path = temp_path("oob.trace");
  write_trace(path, 10, {{10, AccessKind::kRead}});  // vpage == footprint: invalid
  EXPECT_THROW(read_trace(path), std::runtime_error);
}

TEST(TraceProfile, WeightsMatchSampleFrequencies) {
  Trace t;
  t.footprint_pages = 4;
  t.samples = {{0, AccessKind::kRead}, {0, AccessKind::kRead}, {1, AccessKind::kRead},
               {3, AccessKind::kWrite}};
  const PageProfile p = profile_from_trace(t, 2.5);
  EXPECT_DOUBLE_EQ(p.weight[0], 0.5);
  EXPECT_DOUBLE_EQ(p.weight[1], 0.25);
  EXPECT_DOUBLE_EQ(p.weight[2], 0.0);
  EXPECT_DOUBLE_EQ(p.weight[3], 0.25);
  EXPECT_DOUBLE_EQ(p.accesses_per_iteration, 2.5);
  EXPECT_THROW(profile_from_trace(Trace{4, {}}, 1.0), std::invalid_argument);
}

TEST(TraceRecorder, CapturesARealWorkloadsAccesses) {
  // Record a hash-store tenant, write/read the trace, and check the rebuilt
  // profile concentrates where the accesses actually went.
  TieredMemory::Config mc =
      TieredMemory::Config::two_tier(1, 1 << 16);
  TieredMemory mem(mc);
  HashStore::Config hc;
  hc.n_records = 2000;
  AddressSpace space(mem, 0, HashStore::required_bytes(hc), kTierOnly(Tier::kSMem),
                     /*sample_period=*/1);
  TraceRecorder rec(space);
  space.set_observer(&rec);
  HashStore store(space, hc);
  Rng rng(3);
  for (int i = 0; i < 2000; ++i) store.get(rng.next_below(hc.n_records));
  ASSERT_GT(rec.size(), 2000u);  // probes + record touches

  const std::string path = temp_path("kv.trace");
  const auto samples = rec.take();
  write_trace(path, space.num_pages(), samples);
  const Trace t = read_trace(path);
  EXPECT_EQ(t.samples.size(), samples.size());

  const PageProfile prof = profile_from_trace(t, 16.0);
  double sum = 0;
  for (double w : prof.weight) sum += w;
  EXPECT_NEAR(sum, 1.0, 1e-9);
  // Bucket-array pages (front of the space) are touched every request, so
  // the profile's hottest page must sit in that region.
  const std::uint64_t bucket_pages =
      store.n_buckets() * HashStore::kBucketBytes / kPageSize + 1;
  std::uint64_t hottest = 0;
  for (std::uint64_t i = 1; i < prof.num_pages(); ++i)
    if (prof.weight[i] > prof.weight[hottest]) hottest = i;
  EXPECT_LT(hottest, bucket_pages);
}

TEST(TraceRecorder, IgnoresOtherTenants) {
  TieredMemory::Config mc =
      TieredMemory::Config::two_tier(1, 1 << 12);
  TieredMemory mem(mc);
  AddressSpace a(mem, 0, 16 * kPageSize, kTierOnly(Tier::kSMem), 1);
  AddressSpace b(mem, 1, 16 * kPageSize, kTierOnly(Tier::kSMem), 1);
  TraceRecorder rec(a);
  a.set_observer(&rec);
  b.set_observer(&rec);  // misdirected feed: recorder must filter it out
  a.access(0);
  b.access(0);
  b.access(kPageSize);
  EXPECT_EQ(rec.size(), 1u);
}

}  // namespace
}  // namespace mtat
