// Tests for the KV storage engines under the LC workload models.
#include <gtest/gtest.h>

#include "workloads/kv/btree_store.h"
#include "workloads/kv/hash_store.h"

namespace mtat {
namespace {

TieredMemory::Config big(std::uint64_t fmem = 0) {
  TieredMemory::Config c =
      TieredMemory::Config::two_tier(fmem == 0 ? 1 : fmem, 1 << 18);  // 1 GiB
  return c;
}

// ------------------------------------------------------------ HashStore ----

TEST(HashStore, RejectsBadConfig) {
  TieredMemory mem(big());
  HashStore::Config hc;
  hc.n_records = 0;
  AddressSpace space(mem, 0, 1_MiB, kTierOnly(Tier::kSMem));
  EXPECT_THROW(HashStore(space, hc), std::invalid_argument);
  hc.n_records = 100;
  hc.fill_factor = 1.5;
  EXPECT_THROW(HashStore(space, hc), std::invalid_argument);
}

TEST(HashStore, RejectsUndersizedSpace) {
  TieredMemory mem(big());
  HashStore::Config hc;
  hc.n_records = 10000;
  AddressSpace space(mem, 0, kPageSize, kTierOnly(Tier::kSMem));
  EXPECT_THROW(HashStore(space, hc), std::invalid_argument);
}

TEST(HashStore, EveryInsertedKeyIsFound) {
  TieredMemory mem(big());
  HashStore::Config hc;
  hc.n_records = 5000;
  hc.record_size = 128;
  AddressSpace space(mem, 0, HashStore::required_bytes(hc), kTierOnly(Tier::kSMem));
  HashStore store(space, hc);
  for (std::uint64_t k = 0; k < hc.n_records; ++k)
    EXPECT_GT(store.get(k), 0u) << "key " << k;  // would throw if missing
}

TEST(HashStore, MeanProbesNearTheory) {
  TieredMemory mem(big());
  HashStore::Config hc;
  hc.n_records = 20000;
  hc.fill_factor = 0.7;
  AddressSpace space(mem, 0, HashStore::required_bytes(hc), kTierOnly(Tier::kSMem));
  HashStore store(space, hc);
  // Linear probing successful search: ~0.5 * (1 + 1/(1-a)) = 2.17 at a=0.7.
  EXPECT_GT(store.mean_probes(), 1.2);
  EXPECT_LT(store.mean_probes(), 3.5);
}

TEST(HashStore, GetLatencyReflectsTier) {
  TieredMemory mem(big(1 << 18));
  HashStore::Config hc;
  hc.n_records = 1000;
  hc.record_misses = 10;
  // Two identical stores, one per tier.
  AddressSpace fmem_space(mem, 0, HashStore::required_bytes(hc), kTierOnly(Tier::kFMem));
  AddressSpace smem_space(mem, 1, HashStore::required_bytes(hc), kTierOnly(Tier::kSMem));
  HashStore fast(fmem_space, hc), slow(smem_space, hc);
  for (std::uint64_t k = 0; k < 50; ++k) EXPECT_LT(fast.get(k), slow.get(k));
}

TEST(HashStore, RecordMissBudgetFullyCharged) {
  TieredMemory mem(big());
  HashStore::Config hc;
  hc.n_records = 16;
  hc.record_size = 3 * kPageSize;  // record spans 4 pages
  hc.record_misses = 21;
  hc.probe_misses = 0;  // isolate the record charge
  AddressSpace space(mem, 0, HashStore::required_bytes(hc), kTierOnly(Tier::kSMem));
  HashStore store(space, hc);
  EXPECT_EQ(store.get(3), 21u * 202u);
}

TEST(HashStore, PutWritesRecord) {
  TieredMemory mem(big());
  HashStore::Config hc;
  hc.n_records = 100;
  AddressSpace space(mem, 0, HashStore::required_bytes(hc), kTierOnly(Tier::kSMem));
  HashStore store(space, hc);
  EXPECT_GT(store.put(42), 0u);
}

TEST(HashStore, MissingKeyThrows) {
  TieredMemory mem(big());
  HashStore::Config hc;
  hc.n_records = 100;
  AddressSpace space(mem, 0, HashStore::required_bytes(hc), kTierOnly(Tier::kSMem));
  HashStore store(space, hc);
  EXPECT_THROW(store.get(100), std::logic_error);
}

// ------------------------------------------------------------ BTreeStore ----

TEST(BTreeStore, LevelCountMatchesFanout) {
  TieredMemory mem(big());
  BTreeStore::Config bc;
  bc.n_records = 200;  // < 256 -> 1 level
  AddressSpace s1(mem, 0, BTreeStore::required_bytes(bc), kTierOnly(Tier::kSMem));
  EXPECT_EQ(BTreeStore(s1, bc).levels(), 1);
  bc.n_records = 300;  // 2 levels
  AddressSpace s2(mem, 1, BTreeStore::required_bytes(bc), kTierOnly(Tier::kSMem));
  EXPECT_EQ(BTreeStore(s2, bc).levels(), 2);
  bc.n_records = 100'000;  // 256^2 = 65536 < 100000 -> 3 levels
  AddressSpace s3(mem, 2, BTreeStore::required_bytes(bc), kTierOnly(Tier::kSMem));
  EXPECT_EQ(BTreeStore(s3, bc).levels(), 3);
}

TEST(BTreeStore, LookupChargesNodesAndRecord) {
  TieredMemory mem(big());
  BTreeStore::Config bc;
  bc.n_records = 100'000;
  bc.node_misses = 2;
  bc.record_misses = 8;
  AddressSpace space(mem, 0, BTreeStore::required_bytes(bc), kTierOnly(Tier::kSMem));
  BTreeStore store(space, bc);
  // 3 levels x 2 + 8 record misses, all at SMem latency, 1 KiB record fits a page.
  EXPECT_EQ(store.get(12345), (3 * 2 + 8) * 202u);
}

TEST(BTreeStore, KeyOutOfRangeThrows) {
  TieredMemory mem(big());
  BTreeStore::Config bc;
  bc.n_records = 100;
  AddressSpace space(mem, 0, BTreeStore::required_bytes(bc), kTierOnly(Tier::kSMem));
  BTreeStore store(space, bc);
  EXPECT_THROW(store.get(100), std::out_of_range);
}

TEST(BTreeStore, MultipleTablesShareSpace) {
  TieredMemory mem(big());
  BTreeStore::Config bc;
  bc.n_records = 1000;
  const Bytes per_table = BTreeStore::required_bytes(bc);
  AddressSpace space(mem, 0, per_table * 3, kTierOnly(Tier::kSMem));
  BTreeStore t0(space, bc, 0), t1(space, bc, per_table), t2(space, bc, per_table * 2);
  EXPECT_GT(t0.get(0), 0u);
  EXPECT_GT(t2.get(999), 0u);
  // A fourth table would overflow the space.
  EXPECT_THROW(BTreeStore(space, bc, per_table * 3), std::invalid_argument);
}

TEST(BTreeStore, DistinctKeysTouchDistinctLeaves) {
  TieredMemory mem(big());
  BTreeStore::Config bc;
  bc.n_records = 100'000;
  AddressSpace space(mem, 0, BTreeStore::required_bytes(bc), kTierOnly(Tier::kSMem));
  BTreeStore store(space, bc);
  // Keys far apart must produce some different page accesses: check via the
  // total access counter after touching each.
  const auto before = space.total_accesses();
  store.get(0);
  const auto mid = space.total_accesses();
  store.get(99'999);
  EXPECT_EQ(space.total_accesses() - mid, mid - before);  // same path length
}

}  // namespace
}  // namespace mtat
