// ClusterSim tests: placement-policy unit behaviour on hand-built node
// states, the fleet determinism contract — bit-identical ClusterResults and
// per-node metric dumps for MTAT_JOBS-style 1 vs 4 worker pools and across
// reruns — and the cluster-level aggregation/telemetry plumbing.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "cluster/cluster_sim.h"
#include "obs/names.h"
#include "workloads/be/be_suite.h"

namespace mtat::cluster {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

/// A hand-built fleet view: `n` identical empty nodes, FMem 100 MiB,
/// capacity 10 KRPS, no telemetry yet.
std::vector<NodeState> blank_nodes(int n) {
  std::vector<NodeState> nodes(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    NodeState& s = nodes[static_cast<std::size_t>(i)];
    s.node_id = i;
    s.fmem_capacity = 100_MiB;
    s.capacity_krps = 10.0;
    s.p99_ms = kNan;
    s.slo_violation_pct = kNan;
    s.fmem_util_pct = kNan;
  }
  return nodes;
}

TenantStream tenant(double krps, Bytes footprint) {
  // Assigned from a std::string, not a char*: GCC 12's -Wrestrict false
  // positive (bug 105329) fires on the inlined char* replace path under ASan.
  static const std::string kTenantName = "t";
  TenantStream t;
  t.name = kTenantName;
  t.demand_krps = krps;
  t.footprint = footprint;
  return t;
}

// ------------------------------------------------------- placement policies --

TEST(Placement, FactoryRoundTripsEveryNameAndRejectsUnknown) {
  for (const std::string& name : all_placement_names())
    EXPECT_EQ(make_placement(name)->name(), name);
  EXPECT_THROW(make_placement("powersoftwo"), std::invalid_argument);
}

TEST(Placement, RandomStaysInRangeAndFollowsTheRngStream) {
  const auto policy = make_random_placement();
  const auto nodes = blank_nodes(7);
  Rng a(99), b(99);
  for (int i = 0; i < 200; ++i) {
    const std::size_t pick = policy->place(tenant(1.0, 1_MiB), nodes, a);
    ASSERT_LT(pick, nodes.size());
    // Same seed, same draw sequence: the policy is a pure function of the rng.
    EXPECT_EQ(pick, policy->place(tenant(1.0, 1_MiB), nodes, b));
  }
}

TEST(Placement, BinPackingPrefersTightestFit) {
  const auto policy = make_bin_packing_placement();
  auto nodes = blank_nodes(3);
  nodes[0].assigned_footprint = 40_MiB;  // 60 MiB room
  nodes[1].assigned_footprint = 90_MiB;  // 10 MiB room — tightest that fits
  nodes[2].assigned_footprint = 0;       // 100 MiB room
  Rng rng(1);
  EXPECT_EQ(policy->place(tenant(1.0, 8_MiB), nodes, rng), 1u);
  // Too big for node 1's slack: node 0 is now the tightest fit.
  EXPECT_EQ(policy->place(tenant(1.0, 50_MiB), nodes, rng), 0u);
}

TEST(Placement, BinPackingOverflowFallsBackToMostRoom) {
  const auto policy = make_bin_packing_placement();
  auto nodes = blank_nodes(3);
  nodes[0].assigned_footprint = 95_MiB;
  nodes[1].assigned_footprint = 60_MiB;  // most room: 40 MiB
  nodes[2].assigned_footprint = 80_MiB;
  Rng rng(1);
  // Nothing can host 200 MiB; overflow goes where it hurts least.
  EXPECT_EQ(policy->place(tenant(1.0, 200_MiB), nodes, rng), 1u);
}

TEST(Placement, BinPackingTiesResolveToLowestNodeId) {
  const auto policy = make_bin_packing_placement();
  const auto nodes = blank_nodes(5);  // identical rooms, identical slacks
  Rng rng(1);
  EXPECT_EQ(policy->place(tenant(1.0, 8_MiB), nodes, rng), 0u);
}

TEST(Placement, TelemetryBalancesProjectedUtilizationBeforeTelemetryExists) {
  const auto policy = make_telemetry_placement();
  auto nodes = blank_nodes(3);
  nodes[0].assigned_krps = 6.0;
  nodes[1].assigned_krps = 2.0;  // least loaded
  nodes[2].assigned_krps = 4.0;
  Rng rng(1);
  EXPECT_EQ(policy->place(tenant(1.0, 1_MiB), nodes, rng), 1u);
}

TEST(Placement, TelemetrySteersAwayFromViolatingNodes) {
  const auto policy = make_telemetry_placement();
  auto nodes = blank_nodes(2);
  // Equal assigned load, but node 0 reported heavy SLO violations and a fat
  // P99 last round; the telemetry policy must route to node 1, which the
  // utilization-only view would have tied.
  nodes[0].assigned_krps = nodes[1].assigned_krps = 5.0;
  nodes[0].p99_ms = 40.0;
  nodes[0].slo_violation_pct = 80.0;
  nodes[0].fmem_util_pct = 100.0;
  nodes[1].p99_ms = 1.0;
  nodes[1].slo_violation_pct = 0.0;
  nodes[1].fmem_util_pct = 60.0;
  Rng rng(1);
  EXPECT_EQ(policy->place(tenant(1.0, 1_MiB), nodes, rng), 1u);
}

// ---------------------------------------------------------- cluster harness --

/// A deliberately tiny fleet: the determinism contract is about merge order,
/// not scale, and CI pays for every simulated second.
ClusterConfig tiny_cluster(int nodes = 6) {
  ClusterConfig cc;
  cc.nodes = nodes;
  cc.tenants = 3 * nodes;
  cc.node.fmem = 32_MiB;
  cc.node.smem = 512_MiB;
  cc.node.lc = redis_config();
  cc.node.lc.n_records = 30'000;
  cc.node.be = be_suite(BEScale::kTest, 36_MiB, 4, 1);
  cc.node.policy = PolicyKind::kMemtis;
  cc.node_capacity_krps = 6.0;
  cc.settle = milliseconds(500);
  cc.probe_window = seconds(1);
  cc.measure_window = seconds(1);
  cc.keep_node_metrics = true;
  return cc;
}

TEST(ClusterSim, RejectsDegenerateConfigs) {
  ClusterConfig cc = tiny_cluster();
  cc.nodes = 0;
  EXPECT_THROW(ClusterSim sim(cc), std::invalid_argument);
  cc = tiny_cluster();
  cc.tenants = -1;
  EXPECT_THROW(ClusterSim sim(cc), std::invalid_argument);
}

TEST(ClusterSim, TenantPopulationMatchesConfigAndSeed) {
  const ClusterConfig cc = tiny_cluster();
  ClusterSim a(cc), b(cc);
  ASSERT_EQ(a.tenants().size(), static_cast<std::size_t>(cc.tenants));
  double total = 0;
  for (std::size_t i = 0; i < a.tenants().size(); ++i) {
    // Same seed, same population — demands, footprints, names.
    EXPECT_EQ(a.tenants()[i].demand_krps, b.tenants()[i].demand_krps) << i;
    EXPECT_EQ(a.tenants()[i].footprint, b.tenants()[i].footprint) << i;
    total += a.tenants()[i].demand_krps;
  }
  // Demands normalize to fleet capacity x target utilization.
  const double want = cc.target_utilization * cc.nodes * cc.node_capacity_krps;
  EXPECT_NEAR(total, want, 1e-9 * want);
}

/// Drops rows measuring host wall time from a node metrics dump — they time
/// real execution and vary run to run even serially, so they are explicitly
/// outside the determinism contract (obs::names::is_wall_time_metric).
std::string drop_wall_metrics(const std::string& csv) {
  std::istringstream in(csv);
  std::ostringstream out;
  std::string line;
  while (std::getline(in, line))
    if (line.find("wall") == std::string::npos) out << line << '\n';
  return out.str();
}

/// Serializes everything a ClusterResult reports — fleet aggregates, every
/// per-node field, and every node's full metrics dump — at full precision.
std::string fingerprint(const ClusterResult& r) {
  std::ostringstream ss;
  ss.precision(17);
  ss << r.offered_krps << ',' << r.completed_krps << ',' << r.slo_compliance_pct << ','
     << r.max_p99_ms << ',' << r.p99_of_p99_ms << ',' << r.fmem_util_pct << ','
     << r.overloaded_nodes << ',' << r.rebalanced_tenants << ',' << r.sim_steps << '\n';
  for (const NodeResult& n : r.nodes) {
    ss << n.node_id << ',' << n.tenants << ',' << n.offered_krps << ',' << n.p99_ms << ','
       << n.slo_violation_pct << ',' << n.fmem_util_pct << ',' << n.sim.lc_completed << '\n'
       << drop_wall_metrics(n.metrics_csv);
  }
  return ss.str();
}

std::string run_fingerprint(const PlacementPolicy& policy, int jobs) {
  const ClusterConfig cc = tiny_cluster();
  ClusterSim sim(cc);
  if (jobs == 0) return fingerprint(sim.run(policy));  // serial reference path
  experiments::ParallelRunner runner(jobs);
  return fingerprint(sim.run(policy, &runner));
}

TEST(ClusterSim, BitIdenticalAcrossJobCountsAndReruns) {
  // The acceptance bar of the fleet layer: same config + policy => the same
  // bytes, whether the shards run serially, on one worker, or on four — and
  // again on a rerun (no hidden process state). Node metric dumps ride along
  // in the fingerprint, so per-node registries are covered too.
  for (const std::string& name : all_placement_names()) {
    const auto policy = make_placement(name);
    const std::string serial = run_fingerprint(*policy, 0);
    EXPECT_EQ(serial, run_fingerprint(*policy, 1)) << name;
    EXPECT_EQ(serial, run_fingerprint(*policy, 4)) << name;
    EXPECT_EQ(serial, run_fingerprint(*policy, 4)) << name << " rerun";
  }
}

TEST(ClusterSim, AggregatesAndClusterGaugesAreConsistent) {
  const ClusterConfig cc = tiny_cluster();
  obs::RunContext ctx;
  ClusterSim sim(cc, &ctx);
  experiments::ParallelRunner runner(2);
  const auto policy = make_bin_packing_placement();
  const ClusterResult r = sim.run(*policy, &runner);

  ASSERT_EQ(r.nodes.size(), static_cast<std::size_t>(cc.nodes));
  int tenants = 0;
  double offered = 0, worst = 0;
  for (const NodeResult& n : r.nodes) {
    tenants += n.tenants;
    offered += n.offered_krps;
    worst = std::max(worst, n.p99_ms);
    EXPECT_FALSE(n.metrics_csv.empty()) << n.node_id;
    // The telemetry fields were read back from the node's own registry.
    EXPECT_TRUE(std::isfinite(n.p99_ms)) << n.node_id;
  }
  EXPECT_EQ(tenants, cc.tenants);
  EXPECT_NEAR(offered, r.offered_krps, 1e-9);
  EXPECT_EQ(worst, r.max_p99_ms);
  EXPECT_GE(r.slo_compliance_pct, 0.0);
  EXPECT_LE(r.slo_compliance_pct, 100.0);
  EXPECT_GT(r.completed_krps, 0.0);
  EXPECT_GT(r.sim_steps, 0u);

  // Fleet gauges and counters mirror the returned aggregates.
  const obs::MetricsRegistry& reg = ctx.metrics();
  EXPECT_EQ(reg.find_gauge(obs::names::kClusterNodes)->value(), cc.nodes);
  EXPECT_EQ(reg.find_gauge(obs::names::kClusterTenants)->value(), cc.tenants);
  EXPECT_EQ(reg.find_gauge(obs::names::kClusterSloCompliancePct)->value(),
            r.slo_compliance_pct);
  EXPECT_EQ(reg.find_gauge(obs::names::kClusterTailP99Ms)->value(), r.max_p99_ms);
  EXPECT_EQ(reg.find_counter(obs::names::kClusterRounds)->value(), 2.0);  // probe + measured
  EXPECT_EQ(reg.find_counter(obs::names::kClusterPlacements)->value(), 2.0 * cc.tenants);
  EXPECT_EQ(reg.find_counter(obs::names::kClusterRebalancedTenants)->value(),
            r.rebalanced_tenants);
}

TEST(ClusterSim, BinPackingNeverRebalancesWithoutTelemetryInItsScore) {
  // bin_packing ignores telemetry entirely, so its round-2 routing replays
  // round 1 exactly: zero moves, by construction not by accident.
  const ClusterConfig cc = tiny_cluster();
  ClusterSim sim(cc);
  const ClusterResult r = sim.run(*make_bin_packing_placement());
  EXPECT_EQ(r.rebalanced_tenants, 0);
}

}  // namespace
}  // namespace mtat::cluster
