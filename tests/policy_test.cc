// Tests for the baseline policies: MEMTIS-like displacement behaviour (the
// §2.2 phenomenon), TPP-like fault-driven promotion and watermark demotion,
// and the static pins.
#include <gtest/gtest.h>

#include "policy/memtis_policy.h"
#include "policy/memtis_hp_policy.h"
#include "policy/damon_policy.h"
#include "policy/static_policy.h"
#include "policy/tpp_policy.h"

namespace mtat {
namespace {

struct Harness {
  TieredMemory mem;
  MigrationEngine engine;
  AccessSampler sampler;
  PolicyContext ctx;

  explicit Harness(std::uint64_t fmem = 64, std::uint64_t smem = 512)
      : mem([&] {
          TieredMemory::Config c =
              TieredMemory::Config::two_tier(fmem, smem);
          return c;
        }()),
        engine(mem, {1e12}),
        sampler(mem) {
    ctx.mem = &mem;
    ctx.engine = &engine;
    ctx.sampler = &sampler;
  }

  void add_tenant(WorkloadId id, bool lc, std::uint64_t pages, AllocPolicy alloc) {
    mem.allocate(id, pages, alloc);
    ctx.tenants.push_back(TenantInfo{id, lc});
  }

  void tick(TieringPolicy& p) {
    engine.begin_interval(milliseconds(10));
    p.on_tick(0, milliseconds(10));
  }
};

// --------------------------------------------------------------- MEMTIS ----

TEST(Memtis, HotBePagesDisplaceColdLcPages) {
  // The paper's core phenomenon: LC fills FMem first, BE pages become hot,
  // frequency-blind management swaps the idle LC data out.
  Harness h;
  h.add_tenant(0, true, 64, kFastestFirst);   // LC owns all of FMem
  h.add_tenant(1, false, 200, kTierOnly(Tier::kSMem));  // BE in SMem
  MemtisPolicy memtis(h.ctx);
  const auto& be_pages = h.mem.pages_of(1);
  for (int round = 0; round < 4; ++round)
    for (int i = 0; i < 64; ++i)
      h.sampler.on_sampled_access(1, be_pages[static_cast<std::size_t>(i)], AccessKind::kRead);
  h.tick(memtis);
  EXPECT_EQ(h.mem.workload_pages(1, Tier::kFMem), 64u);
  EXPECT_EQ(h.mem.workload_pages(0, Tier::kFMem), 0u);
}

TEST(Memtis, DoesNotSwapEquallyColdPages) {
  Harness h;
  h.add_tenant(0, true, 64, kFastestFirst);
  h.add_tenant(1, false, 64, kTierOnly(Tier::kSMem));
  MemtisPolicy memtis(h.ctx);
  h.tick(memtis);  // nobody is hot: nothing should move
  EXPECT_EQ(h.mem.workload_pages(0, Tier::kFMem), 64u);
  EXPECT_EQ(h.mem.total_migrations(), 0u);
}

TEST(Memtis, FillsFreeFMemWithHottestPages) {
  Harness h;
  h.add_tenant(0, false, 100, kTierOnly(Tier::kSMem));
  MemtisPolicy memtis(h.ctx);
  const auto& pages = h.mem.pages_of(0);
  for (int i = 0; i < 10; ++i) h.sampler.on_sampled_access(0, pages[5], AccessKind::kRead);
  h.tick(memtis);
  EXPECT_EQ(h.mem.tier_of(pages[5]), Tier::kFMem);
}

TEST(Memtis, CoolingHalvesCounts) {
  Harness h;
  h.add_tenant(0, false, 10, kTierOnly(Tier::kSMem));
  MemtisPolicy::Options opt;
  opt.cooling_period_intervals = 2;
  MemtisPolicy memtis(h.ctx, opt);
  const PageId p = h.mem.pages_of(0)[0];
  for (int i = 0; i < 8; ++i) h.sampler.on_sampled_access(0, p, AccessKind::kRead);
  memtis.on_interval(0, seconds(1), 0);  // 1 of 2: no cooling yet
  EXPECT_EQ(memtis.histogram().count_of(p), 8u);
  memtis.on_interval(0, seconds(1), 0);  // cooling fires
  EXPECT_EQ(memtis.histogram().count_of(p), 4u);
}

TEST(Memtis, RespectsMigrationBudget) {
  Harness h;
  h.mem.allocate(0, 64, kFastestFirst);
  h.ctx.tenants.push_back(TenantInfo{0, true});
  h.add_tenant(1, false, 200, kTierOnly(Tier::kSMem));
  MemtisPolicy memtis(h.ctx);
  const auto& be = h.mem.pages_of(1);
  for (int r = 0; r < 4; ++r)
    for (int i = 0; i < 64; ++i)
      h.sampler.on_sampled_access(1, be[static_cast<std::size_t>(i)], AccessKind::kRead);
  // Budget of 8 pages -> at most 4 exchanges this tick.
  MigrationEngine tight(h.mem, {static_cast<double>(kPageSize) * 8});
  h.ctx.engine = &tight;
  MemtisPolicy throttled(h.ctx);
  for (int r = 0; r < 4; ++r)
    for (int i = 0; i < 64; ++i)
      h.sampler.on_sampled_access(1, be[static_cast<std::size_t>(i)], AccessKind::kRead);
  tight.begin_interval(seconds(1));
  throttled.on_tick(0, seconds(1));
  EXPECT_LE(tight.pages_moved_this_interval(), 8u);
}

// ------------------------------------------------------------------ TPP ----

TEST(Tpp, TwoTouchPromotes) {
  Harness h;
  h.add_tenant(0, false, 100, kTierOnly(Tier::kSMem));
  TppPolicy tpp(h.ctx);
  const PageId p = h.mem.pages_of(0)[3];
  h.sampler.on_sampled_access(0, p, AccessKind::kRead);  // first touch: shadow list
  h.tick(tpp);
  EXPECT_EQ(h.mem.tier_of(p), Tier::kSMem);  // one touch is not enough
  h.sampler.on_sampled_access(0, p, AccessKind::kRead);  // second touch: fault
  h.tick(tpp);
  EXPECT_EQ(h.mem.tier_of(p), Tier::kFMem);
}

TEST(Tpp, SecondTouchOutsideWindowDoesNotPromote) {
  Harness h;
  h.add_tenant(0, false, 100, kTierOnly(Tier::kSMem));
  TppPolicy::Options opt;
  opt.active_window_ticks = 2;
  TppPolicy tpp(h.ctx, opt);
  const PageId p = h.mem.pages_of(0)[0];
  h.sampler.on_sampled_access(0, p, AccessKind::kRead);
  for (int i = 0; i < 5; ++i) h.tick(tpp);  // let the window lapse
  h.sampler.on_sampled_access(0, p, AccessKind::kRead);
  h.tick(tpp);
  EXPECT_EQ(h.mem.tier_of(p), Tier::kSMem);
}

TEST(Tpp, WatermarkDemotionKeepsHeadroom) {
  Harness h(100, 1000);
  h.add_tenant(0, false, 100, kTierOnly(Tier::kFMem));  // FMem completely full
  TppPolicy::Options opt;
  opt.free_watermark = 0.10;
  TppPolicy tpp(h.ctx, opt);
  for (int i = 0; i < 10; ++i) h.tick(tpp);
  EXPECT_GE(h.mem.free_pages(Tier::kFMem), 10u);
}

TEST(Tpp, ReferencedPagesSurviveTheClock) {
  Harness h(100, 1000);
  h.add_tenant(0, false, 100, kTierOnly(Tier::kFMem));
  TppPolicy::Options opt;
  opt.free_watermark = 0.05;
  TppPolicy tpp(h.ctx, opt);
  // Keep pages 0..49 referenced every tick; victims must come from 50..99.
  const auto& pages = h.mem.pages_of(0);
  for (int round = 0; round < 20; ++round) {
    for (int i = 0; i < 50; ++i)
      h.sampler.on_sampled_access(0, pages[static_cast<std::size_t>(i)], AccessKind::kRead);
    h.tick(tpp);
  }
  for (int i = 0; i < 50; ++i)
    EXPECT_EQ(h.mem.tier_of(pages[static_cast<std::size_t>(i)]), Tier::kFMem) << i;
}

TEST(Tpp, PromotionWaitsForFreeHeadroom) {
  Harness h(10, 100);
  h.add_tenant(0, false, 10, kTierOnly(Tier::kFMem));
  h.add_tenant(1, false, 50, kTierOnly(Tier::kSMem));
  TppPolicy tpp(h.ctx);
  const PageId hot = h.mem.pages_of(1)[0];
  h.sampler.on_sampled_access(1, hot, AccessKind::kRead);
  h.sampler.on_sampled_access(1, hot, AccessKind::kRead);
  // Tick: watermark demotion frees a slot (tenant 0's pages are unreferenced),
  // then the queued promotion lands.
  for (int i = 0; i < 3; ++i) h.tick(tpp);
  EXPECT_EQ(h.mem.tier_of(hot), Tier::kFMem);
}

// --------------------------------------------------------------- static ----

TEST(StaticPolicy, NamesAndNoops) {
  StaticPolicy f(StaticPolicy::Kind::kFMemAll), s(StaticPolicy::Kind::kSMemAll);
  EXPECT_EQ(f.name(), "fmem_all");
  EXPECT_EQ(s.name(), "smem_all");
  f.on_tick(0, 1);
  s.on_interval(0, 1, 0);  // must not crash or move anything
}

}  // namespace
}  // namespace mtat

namespace mtat {
namespace {

// ----------------------------------------------------------------- DAMON ----

TEST(Damon, PromotesDenseRegionsWholesale) {
  Harness h(64, 1024);
  h.add_tenant(0, false, 512, kTierOnly(Tier::kSMem));
  DamonPolicy damon(h.ctx);
  // Hammer a 16-page range; after an aggregation the policy should pull the
  // covering region into FMem.
  Rng rng(3);
  for (int w = 0; w < 6; ++w) {
    for (int i = 0; i < 4000; ++i)
      h.sampler.on_sampled_access(0, h.mem.pages_of(0)[100 + rng.next_below(16)],
                                  AccessKind::kRead);
    damon.on_interval(0, seconds(1), 0);
    for (int t = 0; t < 10; ++t) h.tick(damon);
  }
  int resident = 0;
  for (int i = 0; i < 16; ++i)
    resident += h.mem.tier_of(h.mem.pages_of(0)[static_cast<std::size_t>(100 + i)]) ==
                Tier::kFMem;
  EXPECT_GE(resident, 14);  // the hot range lives in FMem (region edges may spill)
}

TEST(Damon, SparseLcLosesToDenseBe) {
  // The failure mode this baseline exists to demonstrate: an LC tenant whose
  // accesses are spread thin measures low region density everywhere and is
  // displaced by a BE tenant with a dense core.
  Harness h(64, 2048);
  h.add_tenant(0, true, 256, kFastestFirst);   // LC holds FMem first
  h.add_tenant(1, false, 256, kTierOnly(Tier::kSMem));
  DamonPolicy damon(h.ctx);
  Rng rng(5);
  for (int w = 0; w < 8; ++w) {
    for (int i = 0; i < 200; ++i)  // LC: sparse, uniform
      h.sampler.on_sampled_access(0, h.mem.pages_of(0)[rng.next_below(256)],
                                  AccessKind::kRead);
    for (int i = 0; i < 4000; ++i)  // BE: dense 32-page core
      h.sampler.on_sampled_access(1, h.mem.pages_of(1)[rng.next_below(32)],
                                  AccessKind::kRead);
    damon.on_interval(0, seconds(1), 0);
    for (int t = 0; t < 10; ++t) h.tick(damon);
  }
  EXPECT_GT(h.mem.workload_pages(1, Tier::kFMem), 24u);
  EXPECT_LT(h.mem.fmem_usage_ratio(0), 0.2);
}

}  // namespace
}  // namespace mtat

namespace mtat {
namespace {

// ------------------------------------------------------------- MEMTIS-HP ----

TEST(MemtisHp, WellUtilizedHotBlockPromotesWholesale) {
  Harness h(2048, 8192);
  h.add_tenant(0, false, 512, kFastestFirst);   // fills 1 block's worth
  h.add_tenant(1, false, 2048, kTierOnly(Tier::kSMem));   // 4 blocks in SMem
  MemtisHpPolicy::Options opt;
  opt.util_threshold = 0.5;
  MemtisHpPolicy hp(h.ctx, opt);
  // Touch >half the frames of tenant 1's second block, once each: no frame
  // is individually hot, but the block aggregate is.
  const auto& pages = h.mem.pages_of(1);
  const std::size_t block_start = 512 - (pages[0] % 512);  // first aligned block
  for (std::size_t i = 0; i < 400; ++i)
    h.sampler.on_sampled_access(1, pages[block_start + i], AccessKind::kRead);
  hp.on_interval(0, seconds(1), 0);
  for (int t = 0; t < 5; ++t) h.tick(hp);
  EXPECT_GE(hp.block_promotions(), 1u);
  // Every frame of that block — touched or not — must now be in FMem.
  std::size_t resident = 0;
  for (std::size_t i = 0; i < 512 && block_start + i < pages.size(); ++i)
    resident += h.mem.tier_of(pages[block_start + i]) == Tier::kFMem;
  EXPECT_EQ(resident, 512u);
}

TEST(MemtisHp, SkewedBlockIsSplitNotBulkMoved) {
  Harness h(2048, 8192);
  h.add_tenant(0, false, 2048, kTierOnly(Tier::kSMem));
  MemtisHpPolicy::Options opt;
  opt.util_threshold = 0.5;
  MemtisHpPolicy hp(h.ctx, opt);
  // Hammer 10 frames of one block hard: high count, low utilization.
  const auto& pages = h.mem.pages_of(0);
  for (int rep = 0; rep < 50; ++rep)
    for (std::size_t i = 0; i < 10; ++i)
      h.sampler.on_sampled_access(0, pages[600 + i], AccessKind::kRead);
  hp.on_interval(0, seconds(1), 0);
  for (int t = 0; t < 5; ++t) h.tick(hp);
  EXPECT_EQ(hp.block_promotions(), 0u);  // not huge-managed
  // ...but the hot frames themselves moved via the page-granular path.
  for (std::size_t i = 0; i < 10; ++i)
    EXPECT_EQ(h.mem.tier_of(pages[600 + i]), Tier::kFMem) << i;
}

TEST(MemtisHp, WindowStateResetsEachInterval) {
  Harness h(2048, 8192);
  h.add_tenant(0, false, 1024, kTierOnly(Tier::kSMem));
  MemtisHpPolicy hp(h.ctx);
  for (std::size_t i = 0; i < 300; ++i)
    h.sampler.on_sampled_access(0, h.mem.pages_of(0)[i], AccessKind::kRead);
  hp.on_interval(0, seconds(1), 0);
  for (int t = 0; t < 5; ++t) h.tick(hp);
  const auto bulk_after_first = hp.block_promotions();
  // A silent window must schedule no further block work.
  hp.on_interval(0, seconds(1), 0);
  for (int t = 0; t < 5; ++t) h.tick(hp);
  EXPECT_EQ(hp.block_promotions(), bulk_after_first);
}

}  // namespace
}  // namespace mtat
