// Integration tests: the co-location simulator end-to-end under every policy,
// the experiment drivers, and cross-module invariants (page conservation,
// metric consistency).
#include <gtest/gtest.h>

#include <cmath>

#include "sim/colocation_sim.h"
#include "sim/experiments.h"
#include "workloads/be/be_suite.h"

namespace mtat {
namespace {

SimConfig tiny_config(PolicyKind policy, int n_be = 2) {
  SimConfig cfg;
  cfg.fmem = 32_MiB;
  cfg.smem = 512_MiB;
  cfg.lc = redis_config();
  cfg.lc.n_records = 30'000;
  cfg.be = be_suite(BEScale::kTest, 36_MiB, 4, n_be);
  cfg.policy = policy;
  return cfg;
}

class AllPolicies : public ::testing::TestWithParam<PolicyKind> {};

TEST_P(AllPolicies, RunsAndProducesConsistentMetrics) {
  SimConfig cfg = tiny_config(GetParam());
  ColocationSim sim(cfg);
  const LoadPattern pat = LoadPattern::constant(cfg.lc.max_load_krps * 1000.0 * 0.5);
  sim.run(pat, seconds(10));
  const SimResult r = sim.result();
  // 10 intervals of series, each internally consistent.
  ASSERT_EQ(r.series.size(), 10u);
  for (const auto& tp : r.series) {
    EXPECT_GE(tp.lc_fmem_ratio, 0.0);
    EXPECT_LE(tp.lc_fmem_ratio, 1.0);
    double share = tp.lc_fmem_share;
    for (double s : tp.be_fmem_share) share += s;
    EXPECT_LE(share, 1.0 + 1e-9);
    ASSERT_EQ(tp.be_throughput.size(), sim.be_count());
  }
  // LC served roughly the offered load (half of max: no policy saturates).
  EXPECT_NEAR(static_cast<double>(r.lc_completed),
              0.5 * cfg.lc.max_load_krps * 1000.0 * 10.0, 0.1 * r.lc_completed + 500);
  // BE metrics populated and bounded.
  ASSERT_EQ(r.be_np.size(), sim.be_count());
  for (double np : r.be_np) {
    EXPECT_GT(np, 0.0);
    EXPECT_LE(np, 1.05);
  }
  EXPECT_GT(r.fairness, 0.0);
  EXPECT_GT(r.be_total_throughput, 0.0);
  // Page conservation after all the churn.
  EXPECT_EQ(sim.mem().used(Tier::kFMem) + sim.mem().used(Tier::kSMem),
            sim.mem().page_count());
}

INSTANTIATE_TEST_SUITE_P(Policies, AllPolicies,
                         ::testing::Values(PolicyKind::kMtatFull, PolicyKind::kMtatLcOnly,
                                           PolicyKind::kMemtis, PolicyKind::kTpp,
                                           PolicyKind::kFmemAll, PolicyKind::kSmemAll,
                                           PolicyKind::kVtmm, PolicyKind::kDamon,
                                           PolicyKind::kMemtisHp),
                         [](const auto& info) { return policy_name(info.param); });

TEST(ColocationSim, StaticPinsPlaceAsConfigured) {
  {
    ColocationSim sim(tiny_config(PolicyKind::kFmemAll));
    EXPECT_GT(sim.mem().fmem_usage_ratio(0), 0.9);
    EXPECT_EQ(sim.mem().workload_pages(1, Tier::kFMem), 0u);
  }
  {
    ColocationSim sim(tiny_config(PolicyKind::kSmemAll));
    EXPECT_EQ(sim.mem().workload_pages(0, Tier::kFMem), 0u);
    EXPECT_GT(sim.mem().workload_pages(1, Tier::kFMem), 0u);
  }
}

TEST(ColocationSim, MemtisDisplacesIdleLcUnderBePressure) {
  // Figure 2's opening phenomenon at miniature scale.
  SimConfig cfg = tiny_config(PolicyKind::kMemtis);
  ColocationSim sim(cfg);
  EXPECT_GT(sim.mem().fmem_usage_ratio(0), 0.9);  // LC starts resident
  const LoadPattern pat = LoadPattern::constant(cfg.lc.max_load_krps * 100.0);  // 10% load
  sim.run(pat, seconds(10));
  EXPECT_LT(sim.mem().fmem_usage_ratio(0), 0.15);  // ... and gets evicted
}

TEST(ColocationSim, ResetStatsClearsMeasurementOnly) {
  SimConfig cfg = tiny_config(PolicyKind::kMemtis);
  ColocationSim sim(cfg);
  const LoadPattern pat = LoadPattern::constant(1000.0);
  sim.run(pat, seconds(3));
  EXPECT_FALSE(sim.result().series.empty());
  const SimTime t = sim.now();
  sim.reset_stats();
  EXPECT_TRUE(sim.result().series.empty());
  EXPECT_EQ(sim.result().lc_completed, 0u);
  EXPECT_EQ(sim.now(), t);  // simulation state untouched
  sim.run(pat, seconds(2));
  EXPECT_EQ(sim.result().series.size(), 2u);
}

TEST(ColocationSim, UnmeasuredRunRecordsNothing) {
  SimConfig cfg = tiny_config(PolicyKind::kMemtis);
  ColocationSim sim(cfg);
  const LoadPattern pat = LoadPattern::constant(1000.0);
  sim.run(pat, seconds(3), /*measure=*/false);
  EXPECT_TRUE(sim.result().series.empty());
}

TEST(ColocationSim, MtatSharedAgentPersistsLearning) {
  SacConfig sc;
  SacAgent agent(sc);
  SimConfig cfg = tiny_config(PolicyKind::kMtatFull);
  cfg.shared_agent = &agent;
  {
    ColocationSim sim(cfg);
    sim.run(LoadPattern::constant(2000.0), seconds(5), false);
  }
  EXPECT_GE(agent.buffer_size(), 4u);  // transitions outlive the sim
}

TEST(ColocationSim, MigrationBandwidthIsBounded) {
  SimConfig cfg = tiny_config(PolicyKind::kMemtis);
  cfg.migration_bandwidth = 64.0 * 1024 * 1024;  // 64 MB/s
  ColocationSim sim(cfg);
  sim.run(LoadPattern::constant(2000.0), seconds(5));
  EXPECT_LE(sim.result().migration_bytes_per_sec, 64.0 * 1024 * 1024 * 1.05);
}

// -------------------------------------------------------- experiments ----

TEST(Experiments, LatencyCurveShowsTheKnee) {
  LCConfig lc = redis_config();
  lc.n_records = 30'000;
  const auto curve =
      experiments::lc_latency_curve(lc, 1.0, {0.5, 0.9, 1.3}, seconds(10), 3);
  ASSERT_EQ(curve.size(), 3u);
  // Below the knee: low latency, achieved ~= offered. Above: divergence.
  EXPECT_LT(curve[0].p99_ms, static_cast<double>(lc.slo) / 1e6);
  EXPECT_GT(curve[2].p99_ms, curve[0].p99_ms * 10);
  EXPECT_NEAR(curve[0].achieved_krps, curve[0].offered_krps, 0.4);
  EXPECT_LT(curve[2].achieved_krps, curve[2].offered_krps);
}

TEST(Experiments, LessFMemMeansEarlierKnee) {
  LCConfig lc = redis_config();
  lc.n_records = 30'000;
  const std::vector<double> loads = {0.95};
  const auto full = experiments::lc_latency_curve(lc, 1.0, loads, seconds(10), 4);
  const auto none = experiments::lc_latency_curve(lc, 0.0, loads, seconds(10), 4);
  // 95% of max load: fine with full FMem, saturated with none.
  EXPECT_LT(full[0].p99_ms, static_cast<double>(lc.slo) / 1e6);
  EXPECT_GT(none[0].p99_ms, full[0].p99_ms * 3);
}

TEST(Experiments, FindMaxLoadBisectsMonotonePredicate) {
  const double knee = 7.3;
  const double found =
      experiments::find_max_load([&](double krps) { return krps <= knee; }, 1.0, 16.0, 20);
  EXPECT_NEAR(found, knee, 0.01);
  // Unsustainable even at the floor: returns the floor.
  EXPECT_DOUBLE_EQ(experiments::find_max_load([](double) { return false; }, 2.0, 16.0), 2.0);
}

TEST(Experiments, ProbeSloSustainableAgreesWithCapacity) {
  SimConfig cfg = tiny_config(PolicyKind::kFmemAll);
  ColocationSim sim(cfg);
  EXPECT_TRUE(experiments::probe_slo_sustainable(sim, cfg.lc.max_load_krps * 0.5, seconds(2), seconds(6)));
  SimConfig cfg2 = tiny_config(PolicyKind::kFmemAll);
  ColocationSim sim2(cfg2);
  EXPECT_FALSE(
      experiments::probe_slo_sustainable(sim2, cfg.lc.max_load_krps * 1.4, seconds(2), seconds(6)));
}

TEST(ColocationSim, VtmmAllocatesProportionallyToHotSets) {
  // vTMM extension: a busy BE tenant measures a large hot set and receives a
  // correspondingly large partition; the near-idle LC tenant keeps only the
  // floor share even though it allocated FMem first.
  SimConfig cfg = tiny_config(PolicyKind::kVtmm);
  ColocationSim sim(cfg);
  const LoadPattern pat = LoadPattern::constant(cfg.lc.max_load_krps * 100.0);  // 10% load
  sim.run(pat, seconds(10));
  const SimResult r = sim.result();
  const auto& last = r.series.back();
  double be_total = 0;
  for (double s : last.be_fmem_share) be_total += s;
  EXPECT_GT(be_total, 0.5);            // BE hot sets dominate
  EXPECT_LT(last.lc_fmem_share, 0.3);  // LC measured nearly cold
}

TEST(BandwidthModel, SaturationInflatesLatency) {
  // §7 extension: with the tier-bandwidth model enabled and SMem capacity set
  // far below the BE demand, SMem accesses slow down and BE throughput drops
  // versus the uncontended run.
  SimConfig cfg = tiny_config(PolicyKind::kSmemAll);
  const LoadPattern pat = LoadPattern::constant(500.0);
  ColocationSim baseline(cfg);
  baseline.run(pat, seconds(5));
  cfg.bandwidth.enabled = true;
  cfg.bandwidth.smem_accesses_per_sec = 1e6;  // well under BE demand
  ColocationSim contended(cfg);
  contended.run(pat, seconds(5));
  EXPECT_GT(contended.mem().contention_factor(Tier::kSMem), 1.5);
  EXPECT_LT(contended.result().be_total_throughput,
            0.8 * baseline.result().be_total_throughput);
  // LC requests also slow down: its P99 must be higher under contention.
  EXPECT_GT(contended.result().lc_p99_ms, baseline.result().lc_p99_ms);
}

TEST(BandwidthModel, FactorEdgeCases) {
  BandwidthModel bw;  // saturation 0.8, max_factor 4.0
  EXPECT_DOUBLE_EQ(bandwidth_factor(bw, 0.0), 1.0);
  // Monotone non-decreasing in utilization.
  double prev = 1.0;
  for (double rho = 0.05; rho <= 0.95; rho += 0.05) {
    const double f = bandwidth_factor(bw, rho);
    EXPECT_GE(f, prev);
    EXPECT_LE(f, bw.max_factor);
    prev = f;
  }
  // rho >= 1 clamps at r=0.999: 1/(1-0.8*0.999) ~ 4.98, capped at max_factor.
  EXPECT_DOUBLE_EQ(bandwidth_factor(bw, 1.0), bw.max_factor);
  EXPECT_DOUBLE_EQ(bandwidth_factor(bw, 100.0), bw.max_factor);
  // With a higher cap the clamp itself becomes visible.
  bw.max_factor = 10.0;
  EXPECT_NEAR(bandwidth_factor(bw, 1.0), 1.0 / (1.0 - 0.8 * 0.999), 1e-12);
  EXPECT_DOUBLE_EQ(bandwidth_factor(bw, 1.0), bandwidth_factor(bw, 2.0));
  // saturation = 0 disables inflation at any utilization; the factor is also
  // floored at 1 so it can never *speed up* a tier.
  bw.saturation = 0.0;
  EXPECT_DOUBLE_EQ(bandwidth_factor(bw, 0.9), 1.0);
  bw.saturation = 0.8;
  EXPECT_DOUBLE_EQ(bandwidth_factor(bw, -0.5), 1.0);
}

TEST(BandwidthModel, EwmaFactorConvergesUnderConstantLoad) {
  // The per-tick EWMA (damping 0.1) must approach the contention fixed point
  // smoothly: sampled via the "bw.smem_factor" gauge, successive steps shrink
  // and the factor stays inside [1, max_factor].
  SimConfig cfg = tiny_config(PolicyKind::kSmemAll);
  cfg.bandwidth.enabled = true;
  cfg.bandwidth.smem_accesses_per_sec = 1e6;  // well under BE demand
  ColocationSim sim(cfg);
  const LoadPattern pat = LoadPattern::constant(500.0);
  std::vector<double> samples;
  for (int i = 0; i < 10; ++i) {
    sim.run(pat, milliseconds(50), /*measure=*/false);  // 5 ticks per sample
    const obs::Gauge* g = sim.metrics().find_gauge("bw.smem_factor");
    ASSERT_NE(g, nullptr);
    samples.push_back(g->value());
  }
  for (double v : samples) {
    EXPECT_GE(v, 1.0);
    EXPECT_LE(v, cfg.bandwidth.max_factor);
  }
  EXPECT_GT(samples.back(), 1.5);  // saturated tier really inflates
  // Damped convergence: the first step dominates, later steps die out.
  // (Demand is elastic in latency, so the tail keeps drifting slightly — the
  // fixed point moves with the inflated demand; bound it loosely.)
  const double first_step = std::abs(samples[1] - samples[0]);
  const double last_step = std::abs(samples[9] - samples[8]);
  EXPECT_LT(last_step, 0.5 * first_step);
  EXPECT_LT(last_step, 0.05);
  // ... and the tail is settled: last three samples agree to within 2%.
  EXPECT_NEAR(samples[9], samples[7], 0.02 * samples[9]);
}

TEST(BandwidthModel, UncontendedTiersKeepBaseLatency) {
  SimConfig cfg = tiny_config(PolicyKind::kFmemAll);
  cfg.bandwidth.enabled = true;  // generous default capacities
  cfg.bandwidth.fmem_accesses_per_sec = 1e12;
  cfg.bandwidth.smem_accesses_per_sec = 1e12;
  ColocationSim sim(cfg);
  sim.run(LoadPattern::constant(500.0), seconds(3));
  EXPECT_NEAR(sim.mem().contention_factor(Tier::kFMem), 1.0, 1e-3);
  EXPECT_NEAR(sim.mem().contention_factor(Tier::kSMem), 1.0, 1e-3);
}

TEST(PolicyName, CoversAllKinds) {
  EXPECT_STREQ(policy_name(PolicyKind::kMtatFull), "mtat_full");
  EXPECT_STREQ(policy_name(PolicyKind::kMtatLcOnly), "mtat_lc_only");
  EXPECT_STREQ(policy_name(PolicyKind::kMemtis), "memtis");
  EXPECT_STREQ(policy_name(PolicyKind::kTpp), "tpp");
  EXPECT_STREQ(policy_name(PolicyKind::kFmemAll), "fmem_all");
  EXPECT_STREQ(policy_name(PolicyKind::kSmemAll), "smem_all");
  EXPECT_STREQ(policy_name(PolicyKind::kVtmm), "vtmm");
  EXPECT_STREQ(policy_name(PolicyKind::kDamon), "damon");
  EXPECT_STREQ(policy_name(PolicyKind::kMemtisHp), "memtis_hp");
}

}  // namespace
}  // namespace mtat
