// Tests for the DAMON-style adaptive region monitor.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "telemetry/region_monitor.h"

namespace mtat {
namespace {

RegionMonitor::Options opts(std::size_t min_r = 5, std::size_t max_r = 40) {
  RegionMonitor::Options o;
  o.min_regions = min_r;
  o.max_regions = max_r;
  return o;
}

/// Regions must always tile [0, footprint) exactly, in order, without gaps.
void expect_tiling(const RegionMonitor& m) {
  std::uint64_t cursor = 0;
  for (const auto& r : m.regions()) {
    ASSERT_EQ(r.begin, cursor);
    ASSERT_GT(r.end, r.begin);
    cursor = r.end;
  }
  ASSERT_EQ(cursor, m.footprint_pages());
}

TEST(RegionMonitor, RejectsBadConfig) {
  EXPECT_THROW(RegionMonitor(0, opts()), std::invalid_argument);
  EXPECT_THROW(RegionMonitor(100, opts(0, 10)), std::invalid_argument);
  EXPECT_THROW(RegionMonitor(100, opts(20, 10)), std::invalid_argument);
}

TEST(RegionMonitor, InitialEvenPartition) {
  RegionMonitor m(1000, opts(5, 40));
  EXPECT_EQ(m.regions().size(), 5u);
  expect_tiling(m);
}

TEST(RegionMonitor, TinyFootprintClampsRegionCount) {
  RegionMonitor m(3, opts(10, 40));
  EXPECT_LE(m.regions().size(), 3u);
  expect_tiling(m);
}

TEST(RegionMonitor, RecordAttributesToContainingRegion) {
  RegionMonitor m(1000, opts(5, 40));
  m.record(0);
  m.record(999);
  EXPECT_EQ(m.regions().front().count, 1u);
  EXPECT_EQ(m.regions().back().count, 1u);
  EXPECT_THROW(m.record(1000), std::out_of_range);
}

TEST(RegionMonitor, HotRegionSplitsOverWindows) {
  // All traffic into a 20-page hot range of a 10k-page footprint: after a few
  // aggregation windows the monitor's hottest region should have shrunk to
  // the vicinity of that range.
  RegionMonitor m(10'000, opts(5, 60));
  Rng rng(5);
  for (int window = 0; window < 30; ++window) {
    for (int i = 0; i < 2000; ++i) m.record(4000 + rng.next_below(20));
    m.aggregate();
    expect_tiling(m);
    ASSERT_LE(m.regions().size(), 60u);
    ASSERT_GE(m.regions().size(), 5u);
  }
  // One more window to get a fresh snapshot of the refined layout.
  for (int i = 0; i < 2000; ++i) m.record(4000 + rng.next_below(20));
  const auto snapshot = m.aggregate();
  const auto& hottest = snapshot.front();
  EXPECT_LE(hottest.begin, 4000u);
  EXPECT_GE(hottest.end, 4001u);          // overlaps the hot range
  EXPECT_LE(hottest.pages(), 2000u);      // dramatically sharper than 1/5 split
  EXPECT_GT(hottest.density(), 1.0);
}

TEST(RegionMonitor, ColdRegionsMergeBackDown) {
  RegionMonitor m(10'000, opts(5, 60));
  Rng rng(7);
  // Heat a range to force splits...
  for (int w = 0; w < 10; ++w) {
    for (int i = 0; i < 2000; ++i) m.record(2000 + rng.next_below(50));
    m.aggregate();
  }
  const std::size_t grown = m.regions().size();
  EXPECT_GT(grown, 5u);
  // ...then go fully idle: uniform-zero densities merge toward the floor.
  for (int w = 0; w < 20; ++w) m.aggregate();
  EXPECT_LE(m.regions().size(), grown);
  EXPECT_GE(m.regions().size(), 5u);
  expect_tiling(m);
}

TEST(RegionMonitor, AggregateResetsCountsAndSorts) {
  RegionMonitor m(100, opts(2, 10));
  for (int i = 0; i < 10; ++i) m.record(99);
  const auto snap = m.aggregate();
  EXPECT_GE(snap.front().density(), snap.back().density());
  for (const auto& r : m.regions()) EXPECT_EQ(r.count, 0u);
}

TEST(RegionMonitor, BoundedOverheadUnderAdversarialTraffic) {
  // Uniform random traffic (worst case for split/merge churn) must keep the
  // region count inside [min, max] forever.
  RegionMonitor m(50'000, opts(10, 100));
  Rng rng(11);
  for (int w = 0; w < 50; ++w) {
    for (int i = 0; i < 5000; ++i) m.record(rng.next_below(50'000));
    m.aggregate();
    ASSERT_GE(m.regions().size(), 10u);
    ASSERT_LE(m.regions().size(), 100u);
    expect_tiling(m);
  }
}

}  // namespace
}  // namespace mtat

namespace mtat {
namespace {

TEST(RegionMonitor, DeterministicForSameSeed) {
  const auto run = [] {
    RegionMonitor m(5000, opts(5, 50));
    Rng rng(21);
    for (int w = 0; w < 10; ++w) {
      for (int i = 0; i < 1000; ++i) m.record(1000 + rng.next_below(100));
      m.aggregate();
    }
    return m.regions();
  };
  const auto a = run();
  const auto b = run();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].begin, b[i].begin);
    EXPECT_EQ(a[i].end, b[i].end);
  }
}

}  // namespace
}  // namespace mtat
