// Tests for XSBench, the LC workload models, profile extraction, and the BE
// workload engine.
#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

#include "telemetry/access_sampler.h"
#include "workloads/be/be_suite.h"
#include "workloads/be/be_workload.h"
#include "workloads/lc/lc_workload.h"
#include "workloads/xsbench/xsbench.h"

namespace mtat {
namespace {

TieredMemory::Config big(std::uint64_t fmem_pages = 1) {
  TieredMemory::Config c =
      TieredMemory::Config::two_tier(fmem_pages, 1 << 19);  // 2 GiB
  return c;
}

// -------------------------------------------------------------- XSBench ----

TEST(XSBench, LookupAccessCountNearBinarySearchDepth) {
  TieredMemory mem(big());
  XSBenchKernel::Config xc;
  xc.n_gridpoints = 4096;
  xc.n_nuclides = 8;
  xc.points_per_nuclide = 128;
  xc.avg_nuclides_per_material = 5;
  AddressSpace space(mem, 0, XSBenchKernel::required_bytes(xc), kTierOnly(Tier::kSMem));
  XSBenchKernel kernel(space, xc, 1);
  const auto stats = kernel.run(1000);
  // log2(4096) = 12 probes + 1 row read + 5 gathers = ~18 per lookup.
  const double per_lookup = static_cast<double>(stats.accesses) / 1000.0;
  EXPECT_GT(per_lookup, 14.0);
  EXPECT_LT(per_lookup, 20.0);
  EXPECT_EQ(stats.lookups, 1000u);
  EXPECT_EQ(stats.memory_latency, stats.accesses * 202u);
}

TEST(XSBench, RejectsDegenerateConfig) {
  TieredMemory mem(big());
  XSBenchKernel::Config xc;
  xc.n_gridpoints = 1;
  AddressSpace space(mem, 0, 1_MiB, kTierOnly(Tier::kSMem));
  EXPECT_THROW(XSBenchKernel(space, xc, 1), std::invalid_argument);
}

TEST(XSBench, GridRegionIsHotterThanNuclideData) {
  // The binary search concentrates accesses on the unionized grid.
  TieredMemory mem(big());
  XSBenchKernel::Config xc;
  xc.n_gridpoints = 1024;
  xc.n_nuclides = 8;
  xc.points_per_nuclide = 2048;
  AddressSpace space(mem, 0, XSBenchKernel::required_bytes(xc), kTierOnly(Tier::kSMem));
  XSBenchKernel kernel(space, xc, 2);
  const auto stats = kernel.run(2000);
  // 10 binary probes + 1 vs 10 gathers: grid gets ~11/21 of accesses on a
  // much smaller region.
  const Bytes grid_bytes = xc.n_gridpoints * (8 + 8 * 4);
  EXPECT_LT(grid_bytes * 3, XSBenchKernel::required_bytes(xc));
  EXPECT_GT(stats.accesses, 0u);
}

// ---------------------------------------------------------- LC workloads ----

TEST(LCWorkload, ConfigsCoverPaperTable1) {
  const auto configs = all_lc_configs();
  ASSERT_EQ(configs.size(), 4u);
  EXPECT_EQ(configs[0].name, "redis");
  EXPECT_EQ(configs[1].name, "memcached");
  EXPECT_EQ(configs[2].name, "mongodb");
  EXPECT_EQ(configs[3].name, "silo");
  EXPECT_EQ(configs[0].threads, 1);
  EXPECT_EQ(configs[1].threads, 8);
  EXPECT_EQ(configs[3].slo, milliseconds(15));
}

LCConfig small_redis() {
  LCConfig c = redis_config();
  c.n_records = 20'000;
  return c;
}

TEST(LCWorkload, CalibrationHitsThroughputTargets) {
  TieredMemory mem(big());
  LCWorkload wl(mem, 0, small_redis(), kTierOnly(Tier::kSMem), 1);
  // Service times must order FMem < SMem with ratio ~= smem_throughput_ratio.
  const auto s_f = static_cast<double>(wl.ideal_service_time(Tier::kFMem));
  const auto s_s = static_cast<double>(wl.ideal_service_time(Tier::kSMem));
  EXPECT_LT(s_f, s_s);
  EXPECT_NEAR(s_f / s_s, wl.config().smem_throughput_ratio, 0.02);
  // Saturation throughput at full FMem must exceed the configured max load
  // (the knee is just above it) but not by a large factor.
  const double sat_krps = 1e6 * wl.config().threads / s_f;
  EXPECT_GT(sat_krps, wl.config().max_load_krps);
  EXPECT_LT(sat_krps, wl.config().max_load_krps * 1.5);
}

class LCServeSweep : public ::testing::TestWithParam<int> {};

TEST_P(LCServeSweep, ServiceTimesWithinIdealEnvelope) {
  // Property over all four workload kinds: measured service times stay inside
  // the all-FMem .. all-SMem envelope and average close to the pure-SMem
  // ideal when everything is in SMem.
  TieredMemory mem(big());
  LCConfig cfg = all_lc_configs()[static_cast<std::size_t>(GetParam())];
  cfg.n_records = 20'000;
  LCWorkload wl(mem, 0, cfg, kTierOnly(Tier::kSMem), 42);
  const Duration lo = wl.ideal_service_time(Tier::kFMem);
  const Duration hi = wl.ideal_service_time(Tier::kSMem);
  double sum = 0;
  const int kReqs = 2000;
  for (int i = 0; i < kReqs; ++i) {
    const Duration s = wl.serve();
    ASSERT_GE(s, lo);
    ASSERT_LE(s, hi + hi / 5);  // probe-count variance can exceed the mean model
    sum += static_cast<double>(s);
  }
  EXPECT_NEAR(sum / kReqs, static_cast<double>(hi), 0.1 * static_cast<double>(hi));
  EXPECT_EQ(wl.requests_served(), static_cast<std::uint64_t>(kReqs));
}

INSTANTIATE_TEST_SUITE_P(AllKinds, LCServeSweep, ::testing::Values(0, 1, 2, 3));

TEST(LCWorkload, FasterWhenResidentInFMem) {
  TieredMemory mem(big(1 << 19));
  LCWorkload fast(mem, 0, small_redis(), kTierOnly(Tier::kFMem), 7);
  LCWorkload slow(mem, 1, small_redis(), kTierOnly(Tier::kSMem), 7);
  double f = 0, s = 0;
  for (int i = 0; i < 500; ++i) {
    f += static_cast<double>(fast.serve());
    s += static_cast<double>(slow.serve());
  }
  EXPECT_LT(f, s * 0.9);
}

TEST(LCWorkload, ZipfianRequestsSkewTelemetry) {
  TieredMemory mem(big());
  LCConfig cfg = small_redis();
  cfg.dist = RequestDist::kZipfian;
  cfg.sample_period = 1;
  LCWorkload wl(mem, 0, cfg, kTierOnly(Tier::kSMem), 9);
  AccessSampler sampler(mem);
  PageHotness hist(mem);
  sampler.add_sink(&hist);
  wl.space().set_observer(&sampler);
  for (int i = 0; i < 3000; ++i) wl.serve();
  // Under zipf some record pages must be far hotter than the median page.
  const auto hot = hist.hottest_in_tier(Tier::kSMem, 1);
  ASSERT_FALSE(hot.empty());
  EXPECT_GE(hist.bin_of_page(hot[0]), 4);
}

TEST(LCWorkload, SiloTouchesMultipleTables) {
  TieredMemory mem(big());
  LCConfig cfg = silo_config();
  cfg.n_records = 18'000;
  LCWorkload wl(mem, 0, cfg, kTierOnly(Tier::kSMem), 11);
  // A transaction must cost much more than a single-record workload request.
  TieredMemory mem2(big());
  LCWorkload redis(mem2, 0, small_redis(), kTierOnly(Tier::kSMem), 11);
  EXPECT_GT(wl.serve(), redis.serve());
}

TEST(LCWorkload, BadCalibrationRejected) {
  TieredMemory mem(big());
  LCConfig cfg = small_redis();
  cfg.smem_throughput_ratio = 0.05;  // impossible: base CPU would go negative
  EXPECT_THROW(LCWorkload(mem, 0, cfg, kTierOnly(Tier::kSMem), 1), std::invalid_argument);
}

// ------------------------------------------------------ profile / BE ----

TEST(PageProfile, ExtractionNormalizes) {
  const PageProfile prof = extract_profile(64 * kPageSize, [](AddressSpace& space) {
    for (std::uint64_t i = 0; i < 640; ++i) space.access_page(i % 64);
    return std::uint64_t{64};
  });
  double sum = 0;
  for (double w : prof.weight) sum += w;
  EXPECT_NEAR(sum, 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(prof.accesses_per_iteration, 10.0);
}

TEST(PageProfile, ExtractionRejectsZeroWork) {
  EXPECT_THROW(extract_profile(kPageSize, [](AddressSpace&) { return std::uint64_t{0}; }),
               std::runtime_error);
}

TEST(PageProfile, StretchPreservesMassAndShape) {
  PageProfile p;
  p.weight = {0.5, 0.3, 0.2};
  p.accesses_per_iteration = 2.0;
  const PageProfile q = p.stretched_to(9);
  ASSERT_EQ(q.num_pages(), 9u);
  double sum = 0;
  for (double w : q.weight) sum += w;
  EXPECT_NEAR(sum, 1.0, 1e-9);
  // First three stretched pages inherit source page 0's mass evenly.
  EXPECT_NEAR(q.weight[0], 0.5 / 3, 1e-9);
  EXPECT_NEAR(q.weight[8], 0.2 / 3, 1e-9);
  EXPECT_EQ(q.accesses_per_iteration, 2.0);
}

TEST(PageProfile, BestPlacementPrefixIsMonotoneConcave) {
  PageProfile p;
  p.weight = {0.1, 0.4, 0.2, 0.3};
  const auto prefix = p.best_placement_prefix();
  ASSERT_EQ(prefix.size(), 5u);
  EXPECT_DOUBLE_EQ(prefix[0], 0.0);
  EXPECT_NEAR(prefix[4], 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(prefix[1], 0.4);  // hottest first
  for (std::size_t i = 1; i < prefix.size(); ++i) {
    EXPECT_GE(prefix[i], prefix[i - 1]);
    if (i >= 2) {  // marginal gains shrink
      EXPECT_LE(prefix[i] - prefix[i - 1], prefix[i - 1] - prefix[i - 2] + 1e-12);
    }
  }
}

TEST(BEWorkload, RateMonotoneInFMemPages) {
  TieredMemory mem(big());
  BEConfig cfg = xsbench_config(BEScale::kTest, 8_MiB, 4);
  BEWorkload be(mem, 1, cfg, kTierOnly(Tier::kSMem), nullptr, 1);
  double prev = 0;
  for (std::uint64_t g : {0ull, 256ull, 1024ull, 2048ull}) {
    const double r = be.rate_at_pages(g);
    EXPECT_GE(r, prev);
    prev = r;
  }
  EXPECT_DOUBLE_EQ(be.perf_full(), be.rate_at_pages(be.space().num_pages()));
  EXPECT_GT(be.perf_full(), be.rate_at_pages(0) * 1.5);
}

TEST(BEWorkload, TickAccruesIterations) {
  TieredMemory mem(big());
  BEConfig cfg = pr_config(BEScale::kTest, 8_MiB, 4);
  BEWorkload be(mem, 1, cfg, kTierOnly(Tier::kSMem), nullptr, 1);
  be.tick(milliseconds(100));
  const double first = be.take_interval_iterations();
  EXPECT_NEAR(first, be.current_rate() * 0.1, first * 0.01);
  EXPECT_DOUBLE_EQ(be.take_interval_iterations(), 0.0);  // drained
  EXPECT_GT(be.total_iterations(), 0.0);
}

TEST(BEWorkload, FmemWeightTracksMigrations) {
  TieredMemory mem(big(4096));
  BEConfig cfg = sssp_config(BEScale::kTest, 8_MiB, 4);
  BEWorkload be(mem, 1, cfg, kTierOnly(Tier::kSMem), nullptr, 1);
  EXPECT_DOUBLE_EQ(be.fmem_weight(), 0.0);
  // Promote 200 pages and cross-check against a recomputation.
  const auto& pages = be.space().pages();
  for (int i = 0; i < 200; ++i) mem.migrate(pages[static_cast<std::size_t>(i * 7)], Tier::kFMem);
  double expect = 0;
  for (std::size_t i = 0; i < pages.size(); ++i)
    if (mem.tier_of(pages[i]) == Tier::kFMem) expect += cfg.profile.weight[i];
  EXPECT_NEAR(be.fmem_weight(), expect, 1e-12);
  EXPECT_GT(be.current_rate(), be.rate_at_pages(0));
}

TEST(BEWorkload, EmitsSampledTelemetry) {
  TieredMemory mem(big());
  BEConfig cfg = bfs_config(BEScale::kTest, 8_MiB, 4);
  cfg.sample_period = 512;
  AccessSampler sampler(mem, cfg.sample_period);
  BEWorkload be(mem, 1, cfg, kTierOnly(Tier::kSMem), &sampler, 1);
  be.tick(milliseconds(100));
  const auto c = sampler.collect(1);
  const double expected =
      be.total_iterations() * cfg.profile.accesses_per_iteration / 512.0;
  EXPECT_NEAR(static_cast<double>(c.total()), expected, expected * 0.05 + 2);
  EXPECT_EQ(c.fmem_accesses, 0u);  // everything lives in SMem here
}

TEST(BEWorkload, MigrationChurnCostsThroughput) {
  TieredMemory mem(big(4096));
  BEConfig cfg = pr_config(BEScale::kTest, 8_MiB, 4);
  cfg.migration_stall = milliseconds(1);  // exaggerated for visibility
  BEWorkload be(mem, 1, cfg, kTierOnly(Tier::kSMem), nullptr, 1);
  be.tick(milliseconds(10));
  const double clean = be.take_interval_iterations();
  for (int i = 0; i < 5; ++i) mem.migrate(be.space().pages()[static_cast<std::size_t>(i)], Tier::kFMem);
  be.tick(milliseconds(10));
  const double churned = be.take_interval_iterations();
  EXPECT_LT(churned, clean * 0.7);  // 5 ms of stall in a 10 ms tick
}

TEST(BESuite, CoversPaperTable2) {
  const auto suite = be_suite(BEScale::kTest, 8_MiB, 4, 4);
  ASSERT_EQ(suite.size(), 4u);
  EXPECT_EQ(suite[0].name, "sssp");
  EXPECT_EQ(suite[1].name, "bfs");
  EXPECT_EQ(suite[2].name, "pr");
  EXPECT_EQ(suite[3].name, "xsbench");
  for (const auto& c : suite) {
    EXPECT_FALSE(c.description.empty());
    EXPECT_EQ(c.profile.num_pages(), bytes_to_pages(c.rss));
    EXPECT_GT(c.profile.accesses_per_iteration, 0.0);
  }
}

TEST(BESuite, ProfileMemoIsThreadSafeAndDeterministic) {
  // The per-process profile memo (BEProfileCache in be_suite.cc) is shared
  // across parallel-runner workers. Hammer it from several threads — first
  // touch races included — and every caller must see bit-identical profiles,
  // equal to a serially built reference.
  const BEConfig ref = sssp_config(BEScale::kTest, 8_MiB, 4);
  constexpr int kThreads = 4;
  std::vector<BEConfig> got(kThreads);
  {
    std::vector<std::thread> pool;
    pool.reserve(kThreads);
    for (int i = 0; i < kThreads; ++i)
      pool.emplace_back([&got, i] { got[static_cast<std::size_t>(i)] =
                                        sssp_config(BEScale::kTest, 8_MiB, 4); });
    for (std::thread& t : pool) t.join();
  }
  for (const BEConfig& c : got) {
    EXPECT_EQ(c.profile.accesses_per_iteration, ref.profile.accesses_per_iteration);
    ASSERT_EQ(c.profile.weight.size(), ref.profile.weight.size());
    EXPECT_TRUE(c.profile.weight == ref.profile.weight);  // bitwise, no tolerance
  }
}

TEST(BESuite, TwoWorkloadSettingIsSsspAndPr) {
  const auto suite = be_suite(BEScale::kTest, 8_MiB, 4, 2);
  ASSERT_EQ(suite.size(), 2u);
  EXPECT_EQ(suite[0].name, "sssp");
  EXPECT_EQ(suite[1].name, "pr");
  EXPECT_THROW(be_suite(BEScale::kTest, 8_MiB, 4, 5), std::invalid_argument);
}

}  // namespace
}  // namespace mtat

namespace mtat {
namespace {

TEST(BEWorkload, RateUnderMatchesCurrentRateAtBaseLatencies) {
  TieredMemory::Config mc =
      TieredMemory::Config::two_tier(4096, 1 << 19);
  TieredMemory mem(mc);
  BEConfig cfg = pr_config(BEScale::kTest, 8_MiB, 4);
  BEWorkload be(mem, 1, cfg, kFastestFirst, nullptr, 1);
  // With no contention, the hypothetical-rate hook at the live placement's
  // hit fraction and base latencies must agree with current_rate().
  const double via_hook = be.rate_under(be.fmem_weight(), 73.0, 202.0);
  EXPECT_NEAR(via_hook, be.current_rate(), 1e-6 * be.current_rate());
  // And it must fall monotonically as the slow-tier latency inflates.
  EXPECT_GT(via_hook, be.rate_under(be.fmem_weight(), 73.0, 404.0));
}

TEST(BEWorkload, HitFractionMatchesPrefix) {
  TieredMemory::Config mc =
      TieredMemory::Config::two_tier(1, 1 << 19);
  TieredMemory mem(mc);
  BEConfig cfg = sssp_config(BEScale::kTest, 8_MiB, 4);
  BEWorkload be(mem, 1, cfg, kTierOnly(Tier::kSMem), nullptr, 1);
  EXPECT_DOUBLE_EQ(be.hit_fraction_at_pages(0), 0.0);
  EXPECT_NEAR(be.hit_fraction_at_pages(be.space().num_pages()), 1.0, 1e-9);
  // Monotone and concave-ish in between.
  double prev = 0;
  for (std::uint64_t g = 0; g <= be.space().num_pages(); g += 200) {
    const double h = be.hit_fraction_at_pages(g);
    EXPECT_GE(h, prev);
    prev = h;
  }
}

}  // namespace
}  // namespace mtat

namespace mtat {
namespace {

TEST(PageProfile, StretchRejectsShrinking) {
  PageProfile p;
  p.weight = {0.5, 0.3, 0.2};
  p.accesses_per_iteration = 1.0;
  EXPECT_THROW(p.stretched_to(1), std::invalid_argument);
  EXPECT_EQ(p.stretched_to(3).num_pages(), 3u);  // identity expansion is fine
}

TEST(PageProfile, AliasSamplerOverStretchedProfileMatchesWeights) {
  PageProfile p;
  p.weight = {0.7, 0.2, 0.1};
  p.accesses_per_iteration = 1.0;
  const PageProfile q = p.stretched_to(30);
  AliasSampler alias(q.weight);
  Rng rng(17);
  std::vector<int> hits(30, 0);
  for (int i = 0; i < 90000; ++i) hits[alias(rng)]++;
  // First third of the stretched pages carries 70% of the draws.
  int first_third = 0;
  for (int i = 0; i < 10; ++i) first_third += hits[i];
  EXPECT_NEAR(first_third, 63000, 1500);
}

}  // namespace
}  // namespace mtat
