// Tests for the multi-LC extension: per-tenant reservations, proportional
// scale-down, BE residual split, and guard behaviour per tenant.
#include <gtest/gtest.h>

#include "core/multi_lc_mtat.h"

namespace mtat {
namespace {

struct Harness {
  TieredMemory mem;
  MigrationEngine engine;
  AccessSampler sampler;
  PolicyContext ctx;

  Harness()
      : mem([] {
          TieredMemory::Config c =
              TieredMemory::Config::two_tier(1000, 8000);
          return c;
        }()),
        engine(mem, {1e12}),
        sampler(mem) {
    ctx.mem = &mem;
    ctx.engine = &engine;
    ctx.sampler = &sampler;
    mem.allocate(0, 1500, kTierOnly(Tier::kSMem));  // LC A
    mem.allocate(1, 1500, kTierOnly(Tier::kSMem));  // LC B
    mem.allocate(2, 1500, kFastestFirst); // BE
    ctx.tenants = {{0, true}, {1, true}, {2, false}};
  }

  MultiLcMtatPolicy::Options opts() {
    MultiLcMtatPolicy::Options o;
    o.ppm.sac.min_buffer_for_update = 1000000;  // deterministic: no training
    return o;
  }

  std::vector<MultiLcMtatPolicy::LcSpec> specs() {
    return {{0, milliseconds(20)}, {1, milliseconds(20)}};
  }

  std::vector<BEPerfModel> be_models() {
    return {BEPerfModel{[](std::uint64_t p) { return 0.4 + 1e-4 * static_cast<double>(p); },
                        1500}};
  }

  void settle(MultiLcMtatPolicy& p, int ticks = 50) {
    for (int i = 0; i < ticks; ++i) {
      engine.begin_interval(milliseconds(10));
      p.on_tick(0, milliseconds(10));
    }
  }
};

TEST(MultiLcMtat, RejectsEmptyOrBadSpecs) {
  Harness h;
  EXPECT_THROW(MultiLcMtatPolicy(h.ctx, seconds(1), {}, h.be_models(), h.opts()),
               std::invalid_argument);
  EXPECT_THROW(
      MultiLcMtatPolicy(h.ctx, seconds(1), {{9, milliseconds(1)}}, h.be_models(), h.opts()),
      std::invalid_argument);
}

TEST(MultiLcMtat, ViolatingTenantExpandsIndependently) {
  Harness h;
  MultiLcMtatPolicy p(h.ctx, seconds(1), h.specs(), h.be_models(), h.opts());
  // Prime both agents, then report a violation for LC B only.
  p.on_interval(0, seconds(1), milliseconds(1));
  p.report_lc_p99(1, milliseconds(1));
  p.on_interval(0, seconds(1), milliseconds(1));
  p.report_lc_p99(1, milliseconds(100));  // B violates
  p.on_interval(0, seconds(1), milliseconds(1));  // A compliant
  // B's guard demands the maximum expansion; whatever A's (untrained) agent
  // asked for is at most that, and proportional scale-down preserves the
  // ordering. The plan must also stay feasible.
  EXPECT_GE(p.lc_quota(1), p.lc_quota(0));
  EXPECT_LE(p.lc_quota(0) + p.lc_quota(1), 1000u);
  EXPECT_GT(p.lc_quota(1), 0u);
}

TEST(MultiLcMtat, CombinedDemandIsScaledToCapacity) {
  Harness h;
  MultiLcMtatPolicy p(h.ctx, seconds(1), h.specs(), h.be_models(), h.opts());
  // Drive both tenants into violation repeatedly: both guards demand full
  // capacity; the scale-down must keep the plan feasible.
  for (int round = 0; round < 5; ++round) {
    p.report_lc_p99(0, milliseconds(100));
    p.report_lc_p99(1, milliseconds(100));
    p.on_interval(0, seconds(1), milliseconds(100));
    h.settle(p);
  }
  const std::uint64_t total = p.lc_quota(0) + p.lc_quota(1);
  EXPECT_LE(total, 1000u);
  EXPECT_GT(total, 900u);  // nearly everything reserved for the two LCs
  // And both received comparable shares (proportional, not winner-take-all).
  const double ratio = static_cast<double>(p.lc_quota(0)) /
                       static_cast<double>(std::max<std::uint64_t>(1, p.lc_quota(1)));
  EXPECT_GT(ratio, 0.5);
  EXPECT_LT(ratio, 2.0);
}

TEST(MultiLcMtat, ResidualGoesToBe) {
  Harness h;
  MultiLcMtatPolicy p(h.ctx, seconds(1), h.specs(), h.be_models(), h.opts());
  p.on_interval(0, seconds(1), milliseconds(1));  // both near-idle
  h.settle(p);
  // BE quota = capacity - LC reservations (single BE model takes it all).
  const std::uint64_t be_quota = p.ppe().quota(2);
  EXPECT_EQ(be_quota + p.lc_quota(0) + p.lc_quota(1), 1000u);
  EXPECT_GT(be_quota, 0u);
}

TEST(MultiLcMtat, EnforcementReachesQuotas) {
  Harness h;
  MultiLcMtatPolicy p(h.ctx, seconds(1), h.specs(), h.be_models(), h.opts());
  p.report_lc_p99(0, milliseconds(100));  // A violates -> big reservation
  p.on_interval(0, seconds(1), milliseconds(100));
  h.settle(p, 200);
  EXPECT_EQ(h.mem.workload_pages(0, Tier::kFMem), p.lc_quota(0));
  EXPECT_EQ(h.mem.workload_pages(1, Tier::kFMem), p.lc_quota(1));
}

}  // namespace
}  // namespace mtat
