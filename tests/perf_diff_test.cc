// Tests for tools/perf_diff — the BENCH_*.json regression gate.
//
// Drives the library directly (the tools/lint pattern): parsing/schema
// validation, the higher-is-better regression rule, the strict metric-key-set
// check, and the report. The rules here are what keeps the CI gate honest:
// a malformed trajectory or a silently renamed metric must be a loud error,
// never a pass.
#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "obs/names.h"
#include "perf_diff.h"

namespace mtat::perf_diff {
namespace {

std::string write_temp(const char* name, const std::string& body) {
  const std::string path = ::testing::TempDir() + "/" + name;
  std::ofstream out(path, std::ios::trunc);
  out << body;
  EXPECT_TRUE(out.good());
  return path;
}

Entry entry(const char* label,
            std::vector<std::pair<std::string, double>> metrics) {
  Entry e;
  e.label = label;
  e.scale = "small";
  e.metrics = std::move(metrics);
  return e;
}

// ------------------------------------------------------------ parsing ----

TEST(PerfDiffLoad, ParsesAWellFormedTrajectory) {
  // Real metric names come from obs::names constants — string literals in
  // the perf. domain are a lint error everywhere, including tests.
  const std::string path = write_temp("ok.json", std::string(R"({
    "bench": "perf_core",
    "entries": [
      {"label": "a", "scale": "small", "metrics": {")") +
        obs::names::kPerfSimStepsPerSec + R"(": 100.0}},
      {"label": "b", "scale": "small", "metrics": {")" +
        obs::names::kPerfSimStepsPerSec + R"(": 150.0}}
    ]
  })");
  const BenchFile f = load_bench_file(path);
  EXPECT_EQ(f.bench, "perf_core");
  ASSERT_EQ(f.entries.size(), 2u);
  EXPECT_EQ(f.entries[0].label, "a");
  EXPECT_EQ(f.entries[1].label, "b");
  ASSERT_EQ(f.entries[1].metrics.size(), 1u);
  EXPECT_EQ(f.entries[1].metrics[0].first, obs::names::kPerfSimStepsPerSec);
  EXPECT_DOUBLE_EQ(f.entries[1].metrics[0].second, 150.0);
}

TEST(PerfDiffLoad, MalformedJsonIsALoudErrorNamingThePath) {
  const std::string path = write_temp("bad.json", "{\"bench\": \"x\", \"entries\": [");
  try {
    load_bench_file(path);
    FAIL() << "expected a parse error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find(path), std::string::npos)
        << "error must name the offending file: " << e.what();
  }
}

TEST(PerfDiffLoad, MissingFileThrows) {
  EXPECT_THROW(load_bench_file(::testing::TempDir() + "/does_not_exist.json"),
               std::runtime_error);
}

TEST(PerfDiffLoad, SchemaViolationsThrow) {
  // Fake metric names are fine here: perf_diff is domain-agnostic, and the
  // schema rules are what is under test.
  EXPECT_THROW(load_bench_file(write_temp("s1.json", R"({"entries": []})")),
               std::runtime_error);  // no "bench"
  EXPECT_THROW(load_bench_file(write_temp("s2.json", R"({"bench": "x"})")),
               std::runtime_error);  // no "entries"
  EXPECT_THROW(
      load_bench_file(write_temp("s3.json", R"({"bench": "x", "entries": [{}]})")),
      std::runtime_error);  // entry without label/metrics
  EXPECT_THROW(
      load_bench_file(write_temp(
          "s4.json",
          R"({"bench": "x", "entries": [{"label": "a", "scale": "s", "metrics": {}}]})")),
      std::runtime_error);  // empty metrics
  EXPECT_THROW(
      load_bench_file(write_temp(
          "s5.json",
          R"({"bench": "x", "entries": [{"label": "a", "scale": "s", "metrics": {"m": -1.0}}]})")),
      std::runtime_error);  // negative ops/s
  EXPECT_THROW(
      load_bench_file(write_temp(
          "s6.json",
          R"({"bench": "x", "entries": [{"label": "a", "scale": "s", "metrics": {"m": "fast"}}]})")),
      std::runtime_error);  // non-numeric metric
}

// --------------------------------------------------------- comparison ----

TEST(PerfDiffCompare, ImprovementPasses) {
  const Comparison c = compare(entry("before", {{"widgets", 100.0}, {"gadgets", 50.0}}),
                               entry("after", {{"widgets", 180.0}, {"gadgets", 50.0}}));
  EXPECT_FALSE(c.any_regression(0.15));
  ASSERT_EQ(c.deltas.size(), 2u);
  EXPECT_DOUBLE_EQ(c.deltas[0].ratio(), 1.8);
  EXPECT_FALSE(c.deltas[0].regressed(0.15));
}

TEST(PerfDiffCompare, RegressionBeyondThresholdFails) {
  const Comparison c = compare(entry("before", {{"widgets", 100.0}}),
                               entry("after", {{"widgets", 84.0}}));
  EXPECT_TRUE(c.deltas[0].regressed(0.15));   // 16% down
  EXPECT_FALSE(c.deltas[0].regressed(0.20));  // looser gate tolerates it
  EXPECT_TRUE(c.any_regression(0.15));
}

TEST(PerfDiffCompare, DipWithinTheNoiseThresholdPasses) {
  const Comparison c = compare(entry("before", {{"widgets", 100.0}}),
                               entry("after", {{"widgets", 90.0}}));
  EXPECT_FALSE(c.any_regression(0.15));
}

TEST(PerfDiffCompare, MissingAndExtraMetricKeysAreLoudErrors) {
  const Entry before = entry("before", {{"widgets", 1.0}, {"gadgets", 2.0}});
  const Entry after = entry("after", {{"widgets", 1.0}, {"sprockets", 3.0}});
  try {
    compare(before, after);
    FAIL() << "expected a key-set mismatch error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("gadgets"), std::string::npos) << what;
    EXPECT_NE(what.find("sprockets"), std::string::npos) << what;
  }
}

TEST(PerfDiffCompare, ZeroBaselines) {
  const Comparison c = compare(entry("before", {{"a", 0.0}, {"b", 0.0}}),
                               entry("after", {{"a", 5.0}, {"b", 0.0}}));
  EXPECT_TRUE(std::isinf(c.deltas[0].ratio()));
  EXPECT_DOUBLE_EQ(c.deltas[1].ratio(), 1.0);  // 0 -> 0 is "unchanged"
  EXPECT_FALSE(c.any_regression(0.15));
}

// ------------------------------------------------------------- report ----

TEST(PerfDiffReport, MarksRegressionsAndStatesTheVerdict) {
  const Comparison c = compare(entry("before", {{"widgets", 100.0}, {"gadgets", 100.0}}),
                               entry("after", {{"widgets", 40.0}, {"gadgets", 120.0}}));
  std::ostringstream os;
  print_report(os, c, 0.15);
  const std::string report = os.str();
  EXPECT_NE(report.find("REGRESSED"), std::string::npos) << report;
  EXPECT_NE(report.find("REGRESSION"), std::string::npos) << report;
  EXPECT_NE(report.find("widgets"), std::string::npos) << report;

  std::ostringstream ok;
  print_report(ok, compare(entry("b", {{"w", 1.0}}), entry("a", {{"w", 2.0}})), 0.15);
  EXPECT_NE(ok.str().find("verdict: ok"), std::string::npos) << ok.str();
  EXPECT_EQ(ok.str().find("REGRESSED"), std::string::npos) << ok.str();
}

// The committed repo-root trajectory must always satisfy its own gate — this
// is the same check the perf_diff_trajectory ctest runs via the CLI.
TEST(PerfDiffReport, CommittedTrajectoryHasNoAdjacentRegression) {
  const BenchFile f = load_bench_file(std::string(MTAT_SOURCE_DIR) + "/BENCH_core.json");
  ASSERT_GE(f.entries.size(), 2u) << "BENCH_core.json must carry before/after entries";
  for (std::size_t i = 0; i + 1 < f.entries.size(); ++i) {
    const Comparison c = compare(f.entries[i], f.entries[i + 1]);
    EXPECT_FALSE(c.any_regression(0.15))
        << f.entries[i].label << " -> " << f.entries[i + 1].label;
  }
}

}  // namespace
}  // namespace mtat::perf_diff
