// N-tier topology tests for the tier-vector memory API: allocation spill
// order beyond two tiers, cascaded (link-by-link) demotion, independent
// per-link migration budgets, multi-link exchange rollback under an
// MTAT_FAULTS=storm-style plan, and the MTAT_TOPOLOGY spec parser's
// rejection of malformed inputs. The two-tier behavior these generalize is
// covered by mem_test.cc and page_hotness_equivalence_test.cc; everything
// here needs at least a third tier to be observable.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "faults/fault_plan.h"
#include "mem/migration_engine.h"
#include "mem/tiered_memory.h"
#include "mem/topology.h"
#include "obs/names.h"
#include "obs/run_context.h"

namespace mtat {
namespace {

/// DRAM/CXL/NVM with tiny capacities (pages: 8/16/32) and distinct per-link
/// bandwidths so link accounting is distinguishable.
TieredMemory::Config three_tier_config() {
  TieredMemory::Config cfg;
  cfg.tiers = {{"dram", 8, 73, 4096.0 * kPageSize},
               {"cxl", 16, 202, 4096.0 * kPageSize},
               {"nvm", 32, 450, 4096.0 * kPageSize}};
  return cfg;
}

double counter_value(const obs::RunContext& ctx, const char* name) {
  const obs::Counter* c = ctx.metrics().find_counter(name);
  return c != nullptr ? c->value() : 0.0;
}

// ------------------------------------------------------------- allocation --

TEST(NTierAlloc, FastestFirstSpillsTierByTier) {
  TieredMemory mem(three_tier_config());
  // 8 + 16 + 4: fills dram, fills cxl, spills 4 into nvm.
  const auto pages = mem.allocate(0, 28, kFastestFirst);
  ASSERT_EQ(pages.size(), 28u);
  for (std::size_t i = 0; i < 8; ++i) EXPECT_EQ(mem.tier_of(pages[i]), 0);
  for (std::size_t i = 8; i < 24; ++i) EXPECT_EQ(mem.tier_of(pages[i]), 1);
  for (std::size_t i = 24; i < 28; ++i) EXPECT_EQ(mem.tier_of(pages[i]), 2);
  EXPECT_EQ(mem.free_pages(0), 0u);
  EXPECT_EQ(mem.free_pages(1), 0u);
  EXPECT_EQ(mem.free_pages(2), 28u);
}

TEST(NTierAlloc, FourTierSpillReachesTheTail) {
  TieredMemory::Config cfg;
  cfg.tiers = {{"dram", 4, 73}, {"cxl", 4, 202}, {"nvm", 4, 450}, {"remote", 64, 900}};
  TieredMemory mem(cfg);
  const auto pages = mem.allocate(0, 14, kFastestFirst);
  EXPECT_EQ(mem.tier_of(pages[0]), 0);
  EXPECT_EQ(mem.tier_of(pages[5]), 1);
  EXPECT_EQ(mem.tier_of(pages[9]), 2);
  EXPECT_EQ(mem.tier_of(pages[13]), 3);
  EXPECT_EQ(mem.slowest_tier(), 3);
  EXPECT_EQ(mem.link_count(), 3u);
}

TEST(NTierAlloc, TierOnlyPinsToAMiddleTier) {
  TieredMemory mem(three_tier_config());
  const auto pages = mem.allocate(0, 5, kTierOnly(1));
  for (const PageId p : pages) EXPECT_EQ(mem.tier_of(p), 1);
  EXPECT_THROW(mem.allocate(1, 12, kTierOnly(1)), std::runtime_error);  // 11 left in cxl
}

// -------------------------------------------------------------- migration --

TEST(NTierMigration, DemotionCascadesLinkByLink) {
  TieredMemory mem(three_tier_config());
  const PageId p = mem.allocate(0, 1, kTierOnly(0))[0];
  MigrationEngine::Config ec;
  ec.bandwidth_bytes_per_sec = 100.0 * static_cast<double>(kPageSize);
  MigrationEngine engine(mem, ec);
  engine.begin_interval(seconds(1));

  ASSERT_TRUE(engine.demote(p));  // dram -> cxl, spends link 0
  EXPECT_EQ(mem.tier_of(p), 1);
  EXPECT_EQ(engine.link_budget_pages(0), 99u);
  EXPECT_EQ(engine.link_budget_pages(1), 100u);

  ASSERT_TRUE(engine.demote(p));  // cxl -> nvm, spends link 1
  EXPECT_EQ(mem.tier_of(p), 2);
  EXPECT_EQ(engine.link_budget_pages(0), 99u);
  EXPECT_EQ(engine.link_budget_pages(1), 99u);

  EXPECT_FALSE(engine.demote(p));  // already in the slowest tier
  EXPECT_TRUE(engine.promote_to_fastest(p));
  EXPECT_EQ(mem.tier_of(p), 0);
  EXPECT_EQ(engine.link_budget_pages(0), 98u);
  EXPECT_EQ(engine.link_budget_pages(1), 98u);
}

TEST(NTierMigration, PerLinkBudgetsRefillFromPerLinkBandwidth) {
  TieredMemory mem(three_tier_config());
  MigrationEngine::Config ec;
  ec.bandwidth_bytes_per_sec = 100.0 * static_cast<double>(kPageSize);
  ec.link_bandwidth_bytes_per_sec = {100.0 * static_cast<double>(kPageSize),
                                     25.0 * static_cast<double>(kPageSize)};
  MigrationEngine engine(mem, ec);
  EXPECT_EQ(engine.link_count(), 2u);
  engine.begin_interval(seconds(1));
  EXPECT_EQ(engine.link_budget_pages(0), 100u);
  EXPECT_EQ(engine.link_budget_pages(1), 25u);
  // budget_pages() is link 0's budget — the two-tier API surface unchanged.
  EXPECT_EQ(engine.budget_pages(), 100u);
}

TEST(NTierMigration, ExhaustedSlowLinkBlocksOnlyThatLink) {
  TieredMemory mem(three_tier_config());
  const auto cxl = mem.allocate(0, 4, kTierOnly(1));
  MigrationEngine::Config ec;
  ec.bandwidth_bytes_per_sec = 100.0 * static_cast<double>(kPageSize);
  ec.link_bandwidth_bytes_per_sec = {100.0 * static_cast<double>(kPageSize),
                                     2.0 * static_cast<double>(kPageSize)};
  MigrationEngine engine(mem, ec);
  engine.begin_interval(seconds(1));
  ASSERT_TRUE(engine.demote(cxl[0]));
  ASSERT_TRUE(engine.demote(cxl[1]));
  EXPECT_FALSE(engine.demote(cxl[2]));  // link 1 dry
  EXPECT_TRUE(engine.promote(cxl[2]));  // link 0 still has budget
  EXPECT_EQ(mem.tier_of(cxl[2]), 0);
}

TEST(NTierMigration, MultiLinkExchangeSpendsEveryLinkItCrosses) {
  TieredMemory mem(three_tier_config());
  const PageId fast = mem.allocate(0, 1, kTierOnly(0))[0];
  const PageId slow = mem.allocate(1, 1, kTierOnly(2))[0];
  obs::RunContext ctx;
  MigrationEngine::Config ec;
  ec.bandwidth_bytes_per_sec = 100.0 * static_cast<double>(kPageSize);
  MigrationEngine engine(mem, ec);
  engine.set_run_context(&ctx);
  engine.begin_interval(seconds(1));
  ASSERT_TRUE(engine.exchange(slow, fast));  // two links apart
  EXPECT_EQ(mem.tier_of(slow), 0);
  EXPECT_EQ(mem.tier_of(fast), 2);
  EXPECT_EQ(engine.link_budget_pages(0), 98u);
  EXPECT_EQ(engine.link_budget_pages(1), 98u);
  EXPECT_DOUBLE_EQ(counter_value(ctx, obs::names::kMigrationLink0PagesMoved), 2.0);
  EXPECT_DOUBLE_EQ(counter_value(ctx, obs::names::kMigrationLink1PagesMoved), 2.0);
}

TEST(NTierMigration, NonAdjacentExchangeRollsBackUnderStorm) {
  TieredMemory mem(three_tier_config());
  const PageId fast = mem.allocate(0, 1, kTierOnly(0))[0];
  const PageId slow = mem.allocate(1, 1, kTierOnly(2))[0];
  obs::RunContext ctx;
  // The MTAT_FAULTS=storm preset at full intensity: its migration-failure
  // burst window ([10 s, 15 s) each 30 s cycle) aborts every attempt.
  ctx.install_faults(faults::FaultPlan::storm(1.0));
  ctx.faults()->set_now(seconds(12));
  MigrationEngine::Config ec;
  ec.bandwidth_bytes_per_sec = 100.0 * static_cast<double>(kPageSize);
  MigrationEngine engine(mem, ec);
  engine.set_run_context(&ctx);
  engine.begin_interval(seconds(1));

  EXPECT_FALSE(engine.exchange(slow, fast));
  // Rolled back: nothing moved, but the half-copy burned both links' budget.
  EXPECT_EQ(mem.tier_of(slow), 2);
  EXPECT_EQ(mem.tier_of(fast), 0);
  EXPECT_EQ(engine.link_budget_pages(0), 98u);
  EXPECT_EQ(engine.link_budget_pages(1), 98u);
  EXPECT_EQ(engine.total_pages_moved(), 0u);
  EXPECT_DOUBLE_EQ(counter_value(ctx, obs::names::kFaultMigrationRollbacks), 1.0);
  EXPECT_DOUBLE_EQ(counter_value(ctx, obs::names::kFaultMigrationFailures), 1.0);
}

// --------------------------------------------------------- topology parser --

TEST(TopologyParse, ThreeTierSpecRoundTrips) {
  std::string error;
  const auto tiers = parse_topology("dram:8G:73;cxl:64G:202;nvm:256G:450", &error);
  ASSERT_TRUE(tiers.has_value()) << error;
  ASSERT_EQ(tiers->size(), 3u);
  EXPECT_EQ((*tiers)[0].name, "dram");
  EXPECT_EQ((*tiers)[0].capacity_pages, bytes_to_pages(8ull << 30));
  EXPECT_EQ((*tiers)[0].latency, 73);
  EXPECT_EQ((*tiers)[2].name, "nvm");
  EXPECT_EQ((*tiers)[2].latency, 450);
  // Default link bandwidth when the optional fourth field is omitted.
  EXPECT_DOUBLE_EQ((*tiers)[0].link_bandwidth_bytes_per_sec, 4.0 * 1024 * 1024 * 1024);
  EXPECT_EQ(topology_to_string(*tiers), "dram:8192M:73;cxl:65536M:202;nvm:262144M:450");
}

TEST(TopologyParse, ExplicitLinkBandwidthIsParsed) {
  const auto tiers = parse_topology("dram:1G:73:8G;cxl:4G:202:512M");
  ASSERT_TRUE(tiers.has_value());
  EXPECT_DOUBLE_EQ((*tiers)[0].link_bandwidth_bytes_per_sec,
                   static_cast<double>(8ull << 30));
  EXPECT_DOUBLE_EQ((*tiers)[1].link_bandwidth_bytes_per_sec,
                   static_cast<double>(512ull << 20));
}

TEST(TopologyParse, MalformedSpecsAreRejectedWithSpecificErrors) {
  const struct {
    const char* spec;
    const char* expect_in_error;
  } cases[] = {
      {"dram:1G:73", "at least two tiers"},
      {"", "empty tier entry"},
      {"dram:1G:73;;nvm:4G:450", "empty tier entry"},
      {"dram:1G;nvm:4G:450", "expected name:capacity:latency"},
      {"dram:1G:73:4G:extra;nvm:4G:450", "expected name:capacity:latency"},
      {":1G:73;nvm:4G:450", "empty name"},
      {"dram:zero:73;nvm:4G:450", "bad capacity"},
      {"dram:0:73;nvm:4G:450", "bad capacity"},
      {"dram:1G:fast;nvm:4G:450", "bad latency"},
      {"dram:1G:0;nvm:4G:450", "bad latency"},
      {"dram:1G:73:none;nvm:4G:450", "bad link bandwidth"},
      {"dram:1G:73:0;nvm:4G:450", "bad link bandwidth"},
      {"dram:1G:202;nvm:4G:73", "fastest first"},
  };
  for (const auto& c : cases) {
    std::string error;
    EXPECT_FALSE(parse_topology(c.spec, &error).has_value()) << c.spec;
    EXPECT_NE(error.find(c.expect_in_error), std::string::npos)
        << "spec \"" << c.spec << "\" gave error \"" << error << "\"";
  }
}

TEST(TopologyParse, TierCountIsBoundedByKMaxTiers) {
  std::string spec;
  for (int t = 0; t < kMaxTiers + 1; ++t) {
    if (t > 0) spec += ';';
    spec += "t";
    spec += std::to_string(t);
    spec += ":1G:";
    spec += std::to_string(73 + t);
  }
  std::string error;
  EXPECT_FALSE(parse_topology(spec, &error).has_value());
  EXPECT_NE(error.find("kMaxTiers"), std::string::npos) << error;
  // One fewer parses fine.
  const std::size_t last = spec.rfind(';');
  EXPECT_TRUE(parse_topology(spec.substr(0, last)).has_value());
}

}  // namespace
}  // namespace mtat
