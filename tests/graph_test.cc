// Tests for the graph substrate: CSR integrity, generators, and kernel
// correctness (BFS/SSSP validated against a reference Dijkstra; PageRank
// against its invariants), plus the access-accounting contract.
#include <gtest/gtest.h>

#include <queue>

#include "workloads/graph/graph_layout.h"
#include "workloads/graph/kernels.h"

namespace mtat {
namespace {

TieredMemory::Config big() {
  TieredMemory::Config c =
      TieredMemory::Config::two_tier(1, 1 << 18);
  return c;
}

/// Reference shortest paths (Dijkstra over the same CSR).
std::vector<std::uint64_t> dijkstra(const Graph& g, Graph::Vertex src, bool unit_weights) {
  std::vector<std::uint64_t> dist(g.num_vertices(), kUnreached);
  using Item = std::pair<std::uint64_t, Graph::Vertex>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  dist[src] = 0;
  pq.push({0, src});
  while (!pq.empty()) {
    const auto [d, u] = pq.top();
    pq.pop();
    if (d != dist[u]) continue;
    for (std::uint64_t e = g.out_begin(u); e < g.out_end(u); ++e) {
      const Graph::Vertex v = g.target(e);
      const std::uint64_t nd = d + (unit_weights ? 1 : g.weight(e));
      if (nd < dist[v]) {
        dist[v] = nd;
        pq.push({nd, v});
      }
    }
  }
  return dist;
}

// ---------------------------------------------------------------- Graph ----

TEST(Graph, CsrDegreesSumToEdgeCount) {
  Rng rng(1);
  const Graph g = make_uniform_graph(100, 500, rng);
  EXPECT_EQ(g.num_vertices(), 100u);
  EXPECT_EQ(g.num_edges(), 1000u);  // symmetrized
  std::uint64_t total = 0;
  for (Graph::Vertex v = 0; v < g.num_vertices(); ++v) total += g.degree(v);
  EXPECT_EQ(total, g.num_edges());
}

TEST(Graph, SymmetrizationAddsReverseEdges) {
  Graph g(3, {{0, 1}, {1, 2}}, /*symmetrize=*/true);
  bool found = false;
  for (std::uint64_t e = g.out_begin(1); e < g.out_end(1); ++e)
    found |= g.target(e) == 0;
  EXPECT_TRUE(found);
}

TEST(Graph, RejectsBadInput) {
  EXPECT_THROW(Graph(0, {}, false), std::invalid_argument);
  EXPECT_THROW(Graph(2, {{0, 5}}, false), std::invalid_argument);
  Rng rng(2);
  EXPECT_THROW(make_rmat_graph(0, 4, rng), std::invalid_argument);
}

TEST(Graph, WeightsInSsspRange) {
  Rng rng(3);
  const Graph g = make_uniform_graph(50, 200, rng);
  for (std::uint64_t e = 0; e < g.num_edges(); ++e) {
    EXPECT_GE(g.weight(e), 1);
    EXPECT_LE(g.weight(e), 64);
  }
}

TEST(Graph, RmatIsSkewed) {
  Rng rng(4);
  const Graph g = make_rmat_graph(10, 8, rng);
  std::uint64_t dmax = 0;
  for (Graph::Vertex v = 0; v < g.num_vertices(); ++v) dmax = std::max(dmax, g.degree(v));
  const double avg = static_cast<double>(g.num_edges()) / static_cast<double>(g.num_vertices());
  EXPECT_GT(static_cast<double>(dmax), 8.0 * avg);  // heavy-tailed degrees
}

// -------------------------------------------------------------- kernels ----

class KernelCorrectness : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(KernelCorrectness, BfsMatchesUnitDijkstra) {
  Rng rng(GetParam());
  const Graph g = make_uniform_graph(200, 800, rng);
  TieredMemory mem(big());
  AddressSpace space(mem, 0, GraphLayout::required_bytes(g), kTierOnly(Tier::kSMem));
  GraphLayout layout(space, g);
  std::vector<std::uint64_t> dist;
  const KernelStats stats = bfs(layout, 0, dist);
  EXPECT_EQ(dist, dijkstra(g, 0, /*unit_weights=*/true));
  EXPECT_GT(stats.edges_processed, 0u);
  EXPECT_GT(stats.accesses, stats.edges_processed);
}

TEST_P(KernelCorrectness, SsspMatchesDijkstra) {
  Rng rng(GetParam() + 100);
  const Graph g = make_uniform_graph(150, 600, rng);
  TieredMemory mem(big());
  AddressSpace space(mem, 0, GraphLayout::required_bytes(g), kTierOnly(Tier::kSMem));
  GraphLayout layout(space, g);
  std::vector<std::uint64_t> dist;
  sssp(layout, 0, /*delta=*/8, dist);
  EXPECT_EQ(dist, dijkstra(g, 0, /*unit_weights=*/false));
}

INSTANTIATE_TEST_SUITE_P(Seeds, KernelCorrectness, ::testing::Values(11, 22, 33, 44, 55));

class SsspDeltaSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SsspDeltaSweep, DeltaInvariant) {
  // Property: delta-stepping gives the same distances for any delta.
  Rng rng(77);
  const Graph g = make_rmat_graph(8, 8, rng);
  TieredMemory mem(big());
  AddressSpace space(mem, 0, GraphLayout::required_bytes(g), kTierOnly(Tier::kSMem));
  GraphLayout layout(space, g);
  std::vector<std::uint64_t> dist;
  sssp(layout, 3, GetParam(), dist);
  EXPECT_EQ(dist, dijkstra(g, 3, false));
}

INSTANTIATE_TEST_SUITE_P(Deltas, SsspDeltaSweep, ::testing::Values(1, 2, 8, 64, 1000));

TEST(Sssp, RejectsZeroDelta) {
  Rng rng(5);
  const Graph g = make_uniform_graph(10, 20, rng);
  TieredMemory mem(big());
  AddressSpace space(mem, 0, GraphLayout::required_bytes(g), kTierOnly(Tier::kSMem));
  GraphLayout layout(space, g);
  std::vector<std::uint64_t> dist;
  EXPECT_THROW(sssp(layout, 0, 0, dist), std::invalid_argument);
}

TEST(Bfs, UnreachableVerticesStayUnreached) {
  // Two disconnected edges: 0-1 and 2-3.
  Graph g(4, {{0, 1}, {2, 3}}, true);
  TieredMemory mem(big());
  AddressSpace space(mem, 0, GraphLayout::required_bytes(g), kTierOnly(Tier::kSMem));
  GraphLayout layout(space, g);
  std::vector<std::uint64_t> dist;
  bfs(layout, 0, dist);
  EXPECT_EQ(dist[1], 1u);
  EXPECT_EQ(dist[2], kUnreached);
}

TEST(PageRank, MassIsConserved) {
  Rng rng(6);
  const Graph g = make_uniform_graph(300, 3000, rng);
  TieredMemory mem(big());
  AddressSpace space(mem, 0, GraphLayout::required_bytes(g), kTierOnly(Tier::kSMem));
  GraphLayout layout(space, g);
  std::vector<double> rank;
  pagerank(layout, 10, rank);
  double sum = 0;
  for (double r : rank) {
    EXPECT_GT(r, 0.0);
    sum += r;
  }
  // Symmetrized random graphs have no dangling nodes, so mass ~1.
  EXPECT_NEAR(sum, 1.0, 0.01);
}

TEST(PageRank, HighDegreeVerticesRankHigher) {
  // Star graph: vertex 0 connected to everyone.
  std::vector<std::pair<Graph::Vertex, Graph::Vertex>> edges;
  for (Graph::Vertex v = 1; v < 50; ++v) edges.push_back({0, v});
  Graph g(50, std::move(edges), true);
  TieredMemory mem(big());
  AddressSpace space(mem, 0, GraphLayout::required_bytes(g), kTierOnly(Tier::kSMem));
  GraphLayout layout(space, g);
  std::vector<double> rank;
  pagerank(layout, 20, rank);
  for (Graph::Vertex v = 1; v < 50; ++v) EXPECT_GT(rank[0], rank[v]);
}

TEST(Kernels, MemoryChargeMatchesAccessCount) {
  // All pages in SMem -> charged latency must be exactly accesses x 202.
  Rng rng(7);
  const Graph g = make_uniform_graph(100, 400, rng);
  TieredMemory mem(big());
  AddressSpace space(mem, 0, GraphLayout::required_bytes(g), kTierOnly(Tier::kSMem));
  GraphLayout layout(space, g);
  std::vector<std::uint64_t> dist;
  const KernelStats stats = bfs(layout, 0, dist);
  EXPECT_EQ(stats.memory_latency, stats.accesses * 202u);
}

TEST(GraphLayout, RejectsUndersizedSpace) {
  Rng rng(8);
  const Graph g = make_uniform_graph(100, 400, rng);
  TieredMemory mem(big());
  AddressSpace space(mem, 0, kPageSize, kTierOnly(Tier::kSMem));
  EXPECT_THROW(GraphLayout(space, g), std::invalid_argument);
}

}  // namespace
}  // namespace mtat
