#!/usr/bin/env bash
# Golden-output regression gate: run a bench binary at smoke scale in a
# scratch directory and byte-compare one of its output files against a
# golden committed under tests/goldens/. Guards the tier-vector memory API's
# two-tier contract — on the classic topology the refactored substrate must
# reproduce the pre-refactor numbers exactly, not approximately.
#
# usage: golden_cmp.sh <bench-binary> <golden-file> <produced-filename>
set -euo pipefail

bench=$1
golden=$2
produced=$3

scratch=$(mktemp -d "${TMPDIR:-/tmp}/mtat_golden.XXXXXX")
trap 'rm -rf "$scratch"' EXIT

(cd "$scratch" && MTAT_SCALE=smoke "$bench" >stdout.txt 2>stderr.txt) || {
  echo "golden_cmp: $bench failed:" >&2
  cat "$scratch/stderr.txt" >&2
  exit 1
}

if ! cmp "$golden" "$scratch/$produced"; then
  echo "golden_cmp: $produced differs from $golden" >&2
  echo "--- diff (golden vs produced) ---" >&2
  diff "$golden" "$scratch/$produced" >&2 || true
  exit 1
fi
echo "golden_cmp: $produced is byte-identical to $(basename "$golden")"
