// Cross-module property tests and failure injection: determinism, page
// conservation under arbitrary policy churn, quota convergence under random
// plans, SA vs. brute force on random instances, and degenerate-platform
// robustness (zero migration bandwidth, one-page FMem, unattainable SLO).
#include <gtest/gtest.h>

#include "core/ppe.h"
#include "core/sa_partitioner.h"
#include "sim/colocation_sim.h"
#include "workloads/be/be_suite.h"

namespace mtat {
namespace {

SimConfig tiny(PolicyKind policy, std::uint64_t seed = 42) {
  SimConfig cfg;
  cfg.fmem = 32_MiB;
  cfg.smem = 512_MiB;
  cfg.lc = redis_config();
  cfg.lc.n_records = 30'000;
  cfg.be = be_suite(BEScale::kTest, 36_MiB, 4, 2);
  cfg.policy = policy;
  cfg.seed = seed;
  return cfg;
}

// ----------------------------------------------------------- determinism ----

class DeterminismSweep : public ::testing::TestWithParam<PolicyKind> {};

TEST_P(DeterminismSweep, SameSeedSameResult) {
  // The whole simulation is seeded PRNG + integer bookkeeping: two runs with
  // identical configuration must agree bit-for-bit on every reported metric.
  const auto run_once = [&] {
    SimConfig cfg = tiny(GetParam());
    ColocationSim sim(cfg);
    sim.run(LoadPattern::figure7(cfg.lc.max_load_krps * 1000.0), seconds(40));
    return sim.result();
  };
  const SimResult a = run_once();
  const SimResult b = run_once();
  EXPECT_EQ(a.lc_completed, b.lc_completed);
  EXPECT_DOUBLE_EQ(a.lc_p99_ms, b.lc_p99_ms);
  EXPECT_DOUBLE_EQ(a.slo_violation_rate, b.slo_violation_rate);
  EXPECT_DOUBLE_EQ(a.fairness, b.fairness);
  ASSERT_EQ(a.series.size(), b.series.size());
  for (std::size_t i = 0; i < a.series.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.series[i].lc_fmem_share, b.series[i].lc_fmem_share) << i;
    EXPECT_DOUBLE_EQ(a.series[i].lc_p99_ms, b.series[i].lc_p99_ms) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Policies, DeterminismSweep,
                         ::testing::Values(PolicyKind::kMtatFull, PolicyKind::kMemtis,
                                           PolicyKind::kTpp, PolicyKind::kVtmm),
                         [](const auto& info) { return policy_name(info.param); });

TEST(Determinism, DifferentSeedsDiffer) {
  SimConfig a_cfg = tiny(PolicyKind::kMemtis, 1), b_cfg = tiny(PolicyKind::kMemtis, 2);
  ColocationSim a(a_cfg), b(b_cfg);
  const LoadPattern pat = LoadPattern::constant(4000.0);
  a.run(pat, seconds(5));
  b.run(pat, seconds(5));
  EXPECT_NE(a.result().lc_completed, b.result().lc_completed);
}

// ----------------------------------------------- conservation properties ----

class ChurnSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChurnSweep, InvariantsHoldUnderRandomQuotaPlans) {
  // Fire arbitrary (valid) quota plans at PP-E while telemetry streams in;
  // after every settling period the fast tier must be exactly quota-shaped
  // and global page accounting intact.
  TieredMemory::Config mc =
      TieredMemory::Config::two_tier(128, 2048);
  TieredMemory mem(mc);
  MigrationEngine engine(mem, {1e12});
  AccessSampler sampler(mem);
  PolicyContext ctx;
  ctx.mem = &mem;
  ctx.engine = &engine;
  ctx.sampler = &sampler;
  mem.allocate(0, 300, kFastestFirst);
  mem.allocate(1, 300, kFastestFirst);
  mem.allocate(2, 300, kTierOnly(Tier::kSMem));
  ctx.tenants = {{0, true}, {1, false}, {2, false}};
  PartitionEnforcer ppe(ctx, {});
  Rng rng(GetParam());
  for (int round = 0; round < 30; ++round) {
    // Random plan summing to <= capacity, each tenant capped by its RSS.
    std::uint64_t left = 128;
    std::vector<std::uint64_t> quotas(3);
    for (int i = 0; i < 3; ++i) {
      const std::uint64_t q = rng.next_below(std::min<std::uint64_t>(left, 128) + 1);
      quotas[static_cast<std::size_t>(i)] = q;
      left -= q;
    }
    ppe.set_plan(quotas);
    // Random telemetry while the plan executes.
    for (int tick = 0; tick < 40; ++tick) {
      engine.begin_interval(milliseconds(10));
      for (int s = 0; s < 20; ++s) {
        const WorkloadId w = static_cast<WorkloadId>(rng.next_below(3));
        const auto& pages = mem.pages_of(w);
        sampler.on_sampled_access(w, pages[rng.next_below(pages.size())], AccessKind::kRead);
      }
      ppe.on_tick();
    }
    ASSERT_FALSE(ppe.plan_active()) << "round " << round;
    for (int i = 0; i < 3; ++i)
      ASSERT_EQ(mem.workload_pages(static_cast<WorkloadId>(i), Tier::kFMem),
                quotas[static_cast<std::size_t>(i)])
          << "round " << round << " tenant " << i;
    ASSERT_EQ(mem.used(Tier::kFMem) + mem.used(Tier::kSMem), mem.page_count());
    if (round % 7 == 0) ppe.age_histograms();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChurnSweep, ::testing::Values(1u, 7u, 13u, 99u, 12345u));

// ----------------------------------------------------- SA vs brute force ----

class SaRandomInstances : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SaRandomInstances, WithinFivePercentOfBruteForce) {
  Rng rng(GetParam());
  // Random 3-workload piecewise-linear NP curves.
  std::vector<double> base(3), slope(3);
  for (int i = 0; i < 3; ++i) {
    base[static_cast<std::size_t>(i)] = 0.2 + 0.3 * rng.next_double();
    slope[static_cast<std::size_t>(i)] = (0.3 + rng.next_double()) / 400.0;
  }
  const auto np = [&](int i, std::uint64_t p) {
    return std::min(1.0, base[static_cast<std::size_t>(i)] +
                             slope[static_cast<std::size_t>(i)] * static_cast<double>(p));
  };
  std::vector<BEPerfModel> models;
  for (int i = 0; i < 3; ++i)
    models.push_back({[&np, i](std::uint64_t p) { return np(i, p); }, 400});
  const std::uint64_t total = 300, unit = 10;
  double brute = 0;
  for (std::uint64_t a = 0; a <= total; a += unit)
    for (std::uint64_t b = 0; a + b <= total; b += unit)
      brute = std::max(brute, std::min({np(0, a), np(1, b), np(2, total - a - b)}));
  SAOptions opt;
  opt.unit_pages = unit;
  opt.max_iterations = 6000;
  Rng sa_rng(GetParam() + 1);
  const SAResult r = anneal_be_partition(models, total, opt, sa_rng);
  EXPECT_GE(r.objective, brute * 0.95) << "brute " << brute;
  std::uint64_t sum = 0;
  for (auto v : r.allocation) sum += v;
  EXPECT_EQ(sum, total);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SaRandomInstances,
                         ::testing::Values(3u, 17u, 23u, 31u, 47u, 101u));

// ------------------------------------------------------ failure injection ----

TEST(FailureInjection, ZeroMigrationBudgetFreezesPlacementNotTheSim) {
  // (MTAT itself refuses to construct with a zero action range — Eq. 1's
  // bound would be empty — so the frozen-platform case uses MEMTIS.)
  SimConfig cfg = tiny(PolicyKind::kMemtis);
  cfg.migration_bandwidth = 1.0;  // ~0 pages/s: nothing can ever move
  ColocationSim sim(cfg);
  const auto before = sim.mem().workload_pages(0, Tier::kFMem);
  sim.run(LoadPattern::constant(2000.0), seconds(5));
  EXPECT_EQ(sim.mem().workload_pages(0, Tier::kFMem), before);
  EXPECT_GT(sim.result().lc_completed, 0u);  // requests still served
}

TEST(FailureInjection, OnePageFMemPlatform) {
  TieredMemory::Config mc =
      TieredMemory::Config::two_tier(1, 1 << 16);
  TieredMemory mem(mc);
  MigrationEngine engine(mem, {1e12});
  AccessSampler sampler(mem);
  PolicyContext ctx;
  ctx.mem = &mem;
  ctx.engine = &engine;
  ctx.sampler = &sampler;
  mem.allocate(0, 100, kFastestFirst);
  mem.allocate(1, 100, kTierOnly(Tier::kSMem));
  ctx.tenants = {{0, true}, {1, false}};
  MemtisPolicy memtis(ctx);
  for (int i = 0; i < 50; ++i) {
    sampler.on_sampled_access(1, mem.pages_of(1)[0], AccessKind::kRead);
    engine.begin_interval(milliseconds(10));
    memtis.on_tick(0, milliseconds(10));
    memtis.on_interval(0, seconds(1), 0);
  }
  EXPECT_EQ(mem.used(Tier::kFMem), 1u);  // never over capacity
}

TEST(FailureInjection, PermanentOverloadKeepsGuardPegged) {
  // Load far beyond any placement's capacity: everything violates, the guard
  // pins the LC reservation at capacity, and the sim stays alive throughout.
  SimConfig cfg = tiny(PolicyKind::kMtatFull);
  ColocationSim sim(cfg);
  sim.run(LoadPattern::constant(cfg.lc.max_load_krps * 3000.0), seconds(10));
  const SimResult r = sim.result();
  EXPECT_GT(r.slo_violation_rate, 0.9);
  EXPECT_GT(r.series.back().lc_fmem_share, 0.9);  // guard pegged at max
}

TEST(FailureInjection, PatternWithIdleGaps) {
  SimConfig cfg = tiny(PolicyKind::kMemtis);
  const LoadPattern pat({{seconds(2), 2000.0}, {seconds(3), 0.0}, {seconds(2), 2000.0}});
  ColocationSim sim(cfg);
  sim.run(pat, seconds(7));
  const SimResult r = sim.result();
  // The idle window serves nothing but the run completes and resumes.
  EXPECT_NEAR(static_cast<double>(r.lc_completed), 8000.0, 600.0);
}

TEST(FailureInjection, BeOnlyPlatformHasNoLcTenantToBreak) {
  // PolicyContext without an LC tenant: lc_tenant() must throw rather than
  // return garbage.
  PolicyContext ctx;
  ctx.tenants = {{0, false}, {1, false}};
  EXPECT_THROW(ctx.lc_tenant(), std::logic_error);
}

}  // namespace
}  // namespace mtat
