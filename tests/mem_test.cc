// Tests for the tiered-memory substrate: page allocation, placement
// primitives, migration budgets, and the address-space translation layer.
#include <gtest/gtest.h>

#include <functional>

#include "common/rng.h"
#include "mem/address_space.h"
#include "mem/migration_engine.h"
#include "mem/tiered_memory.h"

namespace mtat {
namespace {

TieredMemory::Config small_config(std::uint64_t fmem = 16, std::uint64_t smem = 64) {
  TieredMemory::Config c =
      TieredMemory::Config::two_tier(fmem, smem);
  return c;
}

// -------------------------------------------------------- TieredMemory ----

TEST(TieredMemory, RejectsDegenerateConfigs) {
  TieredMemory::Config c;  // no tiers at all
  EXPECT_THROW(TieredMemory{c}, std::invalid_argument);
  c = TieredMemory::Config::two_tier(0, 0);  // zero capacity
  EXPECT_THROW(TieredMemory{c}, std::invalid_argument);
  c = TieredMemory::Config::two_tier(1, 1, /*fmem_latency=*/300,
                                     /*smem_latency=*/100);  // inverted tiers
  EXPECT_THROW(TieredMemory{c}, std::invalid_argument);
  c = TieredMemory::Config::two_tier(1, 1);
  c.tiers.push_back(c.tiers.back());  // one tier per slot up to the cap...
  for (TierId t = 3; t < kMaxTiers; ++t) c.tiers.push_back(c.tiers.back());
  EXPECT_NO_THROW(TieredMemory{c});
  c.tiers.push_back(c.tiers.back());  // ...and one past it
  EXPECT_THROW(TieredMemory{c}, std::invalid_argument);
}

TEST(TieredMemory, FMemFirstFillsFastTierThenSpills) {
  TieredMemory mem(small_config());
  const auto pages = mem.allocate(0, 20, kFastestFirst);
  EXPECT_EQ(pages.size(), 20u);
  EXPECT_EQ(mem.workload_pages(0, Tier::kFMem), 16u);
  EXPECT_EQ(mem.workload_pages(0, Tier::kSMem), 4u);
  EXPECT_EQ(mem.free_pages(Tier::kFMem), 0u);
}

TEST(TieredMemory, SMemOnlyNeverTouchesFMem) {
  TieredMemory mem(small_config());
  mem.allocate(1, 10, kTierOnly(Tier::kSMem));
  EXPECT_EQ(mem.workload_pages(1, Tier::kFMem), 0u);
  EXPECT_EQ(mem.used(Tier::kFMem), 0u);
}

TEST(TieredMemory, FMemOnlyThrowsWhenFull) {
  TieredMemory mem(small_config());
  mem.allocate(0, 10, kTierOnly(Tier::kFMem));
  EXPECT_THROW(mem.allocate(1, 10, kTierOnly(Tier::kFMem)), std::runtime_error);
}

TEST(TieredMemory, AllocationBeyondTotalCapacityThrows) {
  TieredMemory mem(small_config(4, 4));
  EXPECT_THROW(mem.allocate(0, 9, kFastestFirst), std::runtime_error);
}

TEST(TieredMemory, TierAndOwnerQueries) {
  TieredMemory mem(small_config());
  const auto a = mem.allocate(2, 3, kFastestFirst);
  EXPECT_EQ(mem.owner_of(a[0]), 2);
  EXPECT_EQ(mem.tier_of(a[0]), Tier::kFMem);
  EXPECT_THROW(mem.tier_of(999), std::out_of_range);
}

TEST(TieredMemory, LatencyPerTier) {
  TieredMemory mem(small_config());
  EXPECT_EQ(mem.latency(Tier::kFMem), 73u);
  EXPECT_EQ(mem.latency(Tier::kSMem), 202u);
  const auto p = mem.allocate(0, 1, kTierOnly(Tier::kSMem));
  EXPECT_EQ(mem.access_latency(p[0]), 202u);
}

TEST(TieredMemory, MigrateMovesAndCounts) {
  TieredMemory mem(small_config());
  const auto p = mem.allocate(0, 1, kTierOnly(Tier::kSMem));
  EXPECT_TRUE(mem.migrate(p[0], Tier::kFMem));
  EXPECT_EQ(mem.tier_of(p[0]), Tier::kFMem);
  EXPECT_EQ(mem.total_migrations(), 1u);
  EXPECT_EQ(mem.bytes_migrated(), kPageSize);
  // No-op when already there.
  EXPECT_FALSE(mem.migrate(p[0], Tier::kFMem));
  EXPECT_EQ(mem.total_migrations(), 1u);
}

TEST(TieredMemory, MigrateFailsWhenDestinationFull) {
  TieredMemory mem(small_config(2, 8));
  mem.allocate(0, 2, kTierOnly(Tier::kFMem));
  const auto p = mem.allocate(1, 1, kTierOnly(Tier::kSMem));
  EXPECT_FALSE(mem.migrate(p[0], Tier::kFMem));
  EXPECT_EQ(mem.tier_of(p[0]), Tier::kSMem);
}

TEST(TieredMemory, ExchangeSwapsAcrossFullTiers) {
  TieredMemory mem(small_config(1, 1));
  const auto f = mem.allocate(0, 1, kTierOnly(Tier::kFMem));
  const auto s = mem.allocate(1, 1, kTierOnly(Tier::kSMem));
  mem.exchange(s[0], f[0]);
  EXPECT_EQ(mem.tier_of(s[0]), Tier::kFMem);
  EXPECT_EQ(mem.tier_of(f[0]), Tier::kSMem);
  EXPECT_EQ(mem.total_migrations(), 2u);
}

TEST(TieredMemory, ExchangeSameTierThrows) {
  TieredMemory mem(small_config());
  const auto p = mem.allocate(0, 2, kTierOnly(Tier::kSMem));
  EXPECT_THROW(mem.exchange(p[0], p[1]), std::logic_error);
}

TEST(TieredMemory, UsageRatioTracksPlacement) {
  TieredMemory mem(small_config(5, 100));
  mem.allocate(0, 10, kFastestFirst);
  EXPECT_DOUBLE_EQ(mem.fmem_usage_ratio(0), 0.5);
  mem.migrate(mem.pages_of(0)[0], Tier::kSMem);
  EXPECT_DOUBLE_EQ(mem.fmem_usage_ratio(0), 0.4);
}

/// Test adapter: a MigrationListener that forwards to a lambda.
struct FnListener : MigrationListener {
  std::function<void(PageId, TierId, TierId)> fn;
  explicit FnListener(std::function<void(PageId, TierId, TierId)> f) : fn(std::move(f)) {}
  void on_migration(PageId p, TierId from, TierId to) override { fn(p, from, to); }
};

TEST(TieredMemory, MigrationListenerFires) {
  TieredMemory mem(small_config());
  const auto p = mem.allocate(0, 1, kTierOnly(Tier::kSMem));
  int calls = 0;
  FnListener listener([&](PageId pid, TierId from, TierId to) {
    ++calls;
    EXPECT_EQ(pid, p[0]);
    EXPECT_EQ(from, Tier::kSMem);
    EXPECT_EQ(to, Tier::kFMem);
  });
  mem.add_migration_listener(&listener);
  mem.migrate(p[0], Tier::kFMem);
  EXPECT_EQ(calls, 1);
}

TEST(TieredMemory, CapacityConservationUnderRandomChurn) {
  TieredMemory mem(small_config(32, 128));
  mem.allocate(0, 64, kFastestFirst);
  mem.allocate(1, 64, kTierOnly(Tier::kSMem));
  Rng rng(5);
  for (int i = 0; i < 5000; ++i) {
    const auto p = static_cast<PageId>(rng.next_below(mem.page_count()));
    mem.migrate(p, rng.next_bool(0.5) ? Tier::kFMem : Tier::kSMem);
    ASSERT_LE(mem.used(Tier::kFMem), mem.capacity(Tier::kFMem));
    ASSERT_LE(mem.used(Tier::kSMem), mem.capacity(Tier::kSMem));
    ASSERT_EQ(mem.used(Tier::kFMem) + mem.used(Tier::kSMem), mem.page_count());
  }
  // Per-workload tier counts must agree with a full recount.
  for (WorkloadId w : {WorkloadId{0}, WorkloadId{1}}) {
    std::uint64_t fmem = 0;
    for (PageId p : mem.pages_of(w)) fmem += mem.tier_of(p) == Tier::kFMem;
    EXPECT_EQ(mem.workload_pages(w, Tier::kFMem), fmem);
  }
}

TEST(TieredMemory, ContentionFactorScalesLatency) {
  TieredMemory mem(small_config());
  mem.set_contention_factor(Tier::kSMem, 2.5);
  EXPECT_EQ(mem.latency(Tier::kSMem), 505u);
  EXPECT_EQ(mem.base_latency(Tier::kSMem), 202u);
  EXPECT_EQ(mem.latency(Tier::kFMem), 73u);  // other tier untouched
  EXPECT_THROW(mem.set_contention_factor(Tier::kFMem, 0.5), std::invalid_argument);
}

// ------------------------------------------------------ MigrationEngine ----

TEST(MigrationEngine, RejectsNonPositiveBandwidth) {
  TieredMemory mem(small_config());
  EXPECT_THROW(MigrationEngine(mem, {0.0}), std::invalid_argument);
}

TEST(MigrationEngine, BudgetMatchesBandwidth) {
  TieredMemory mem(small_config());
  MigrationEngine eng(mem, {static_cast<double>(kPageSize) * 100});  // 100 pages/s
  eng.begin_interval(seconds(1));
  EXPECT_EQ(eng.budget_pages(), 100u);
  eng.begin_interval(milliseconds(10));
  EXPECT_EQ(eng.budget_pages(), 1u);
}

TEST(MigrationEngine, FractionalBudgetCarriesOver) {
  TieredMemory mem(small_config());
  MigrationEngine eng(mem, {static_cast<double>(kPageSize) * 10});  // 10 pages/s
  std::uint64_t total = 0;
  for (int i = 0; i < 100; ++i) {  // 100 x 25 ms = 2.5 s -> 25 pages exactly
    eng.begin_interval(milliseconds(25));
    total += eng.budget_pages();
  }
  EXPECT_EQ(total, 25u);
}

TEST(MigrationEngine, Eq1BoundIsHalfBandwidth) {
  TieredMemory mem(small_config());
  MigrationEngine eng(mem, {static_cast<double>(kPageSize) * 1000});
  EXPECT_EQ(eng.max_pages_per_direction(seconds(1)), 500u);
  EXPECT_EQ(eng.max_pages_per_direction(seconds(2)), 1000u);
}

TEST(MigrationEngine, MovesDebitBudget) {
  TieredMemory mem(small_config());
  const auto s = mem.allocate(0, 4, kTierOnly(Tier::kSMem));
  MigrationEngine eng(mem, {static_cast<double>(kPageSize) * 3});
  eng.begin_interval(seconds(1));  // 3 pages of budget
  EXPECT_TRUE(eng.promote(s[0]));
  EXPECT_TRUE(eng.promote(s[1]));
  EXPECT_TRUE(eng.promote(s[2]));
  EXPECT_FALSE(eng.promote(s[3]));  // out of budget
  EXPECT_EQ(eng.pages_moved_this_interval(), 3u);
  EXPECT_EQ(eng.total_pages_moved(), 3u);
}

TEST(MigrationEngine, ExchangeCostsTwoPages) {
  TieredMemory mem(small_config(1, 4));
  const auto f = mem.allocate(0, 1, kTierOnly(Tier::kFMem));
  const auto s = mem.allocate(1, 2, kTierOnly(Tier::kSMem));
  MigrationEngine eng(mem, {static_cast<double>(kPageSize) * 3});
  eng.begin_interval(seconds(1));
  EXPECT_TRUE(eng.exchange(s[0], f[0]));
  EXPECT_EQ(eng.budget_pages(), 1u);
  EXPECT_FALSE(eng.exchange(f[0], s[0]));  // needs 2, only 1 left
}

TEST(MigrationEngine, ExchangeValidatesTiers) {
  TieredMemory mem(small_config());
  const auto s = mem.allocate(0, 2, kTierOnly(Tier::kSMem));
  MigrationEngine eng(mem, {1e9});
  eng.begin_interval(seconds(1));
  EXPECT_FALSE(eng.exchange(s[0], s[1]));  // demote target not in FMem
}

TEST(MigrationEngine, DemoteSymmetric) {
  TieredMemory mem(small_config());
  const auto f = mem.allocate(0, 1, kTierOnly(Tier::kFMem));
  MigrationEngine eng(mem, {1e9});
  eng.begin_interval(seconds(1));
  EXPECT_TRUE(eng.demote(f[0]));
  EXPECT_EQ(mem.tier_of(f[0]), Tier::kSMem);
}

// --------------------------------------------------------- AddressSpace ----

TEST(AddressSpace, RejectsZeroSize) {
  TieredMemory mem(small_config());
  EXPECT_THROW(AddressSpace(mem, 0, 0, kTierOnly(Tier::kSMem)), std::invalid_argument);
}

TEST(AddressSpace, TranslationIsPageGranular) {
  TieredMemory mem(small_config(16, 64));
  AddressSpace space(mem, 0, 3 * kPageSize, kTierOnly(Tier::kSMem));
  EXPECT_EQ(space.num_pages(), 3u);
  EXPECT_EQ(space.page_at(0), space.page_at(kPageSize - 1));
  EXPECT_NE(space.page_at(0), space.page_at(kPageSize));
  EXPECT_THROW(space.page_at(3 * kPageSize), std::out_of_range);
}

TEST(AddressSpace, AccessChargesTierLatency) {
  TieredMemory mem(small_config(1, 64));
  AddressSpace space(mem, 0, 2 * kPageSize, kFastestFirst);
  EXPECT_EQ(space.access(0), 73u);           // page 0 in FMem
  EXPECT_EQ(space.access(kPageSize), 202u);  // page 1 spilled to SMem
}

TEST(AddressSpace, AccessPageNScalesLatency) {
  TieredMemory mem(small_config(0, 64));
  AddressSpace space(mem, 0, kPageSize, kTierOnly(Tier::kSMem));
  EXPECT_EQ(space.access_page_n(0, 10), 2020u);
  EXPECT_EQ(space.total_accesses(), 10u);
}

TEST(AddressSpace, RangeAccessTouchesOverlappingPages) {
  TieredMemory mem(small_config(0, 64));
  AddressSpace space(mem, 0, 4 * kPageSize, kTierOnly(Tier::kSMem));
  // Range spanning two pages charges both.
  EXPECT_EQ(space.access_range(kPageSize - 10, 20), 2 * 202u);
  // Zero-length range touches the single containing page.
  EXPECT_EQ(space.access_range(0, 0), 202u);
}

class CountingObserver : public AccessObserver {
 public:
  int count = 0;
  WorkloadId last_w = kInvalidWorkload;
  void on_sampled_access(WorkloadId w, PageId, AccessKind) override {
    ++count;
    last_w = w;
  }
};

TEST(AddressSpace, SamplingPeriodThins) {
  TieredMemory mem(small_config(0, 64));
  AddressSpace space(mem, 3, 8 * kPageSize, kTierOnly(Tier::kSMem), /*sample_period=*/4);
  CountingObserver obs;
  space.set_observer(&obs);
  for (int i = 0; i < 100; ++i) space.access(0);
  EXPECT_EQ(obs.count, 25);
  EXPECT_EQ(obs.last_w, 3);
}

TEST(AddressSpace, AccessPageNEmitsProportionalSamples) {
  TieredMemory mem(small_config(0, 64));
  AddressSpace space(mem, 0, kPageSize, kTierOnly(Tier::kSMem), /*sample_period=*/10);
  CountingObserver obs;
  space.set_observer(&obs);
  space.access_page_n(0, 95);
  EXPECT_EQ(obs.count, 9);
  space.access_page_n(0, 5);  // crosses the 100th access
  EXPECT_EQ(obs.count, 10);
}

}  // namespace
}  // namespace mtat

namespace mtat {
namespace {

TEST(TieredMemory, ExchangeNotifiesBothPages) {
  TieredMemory mem(small_config(1, 1));
  const auto f = mem.allocate(0, 1, kTierOnly(Tier::kFMem));
  const auto s = mem.allocate(1, 1, kTierOnly(Tier::kSMem));
  std::vector<std::pair<PageId, TierId>> events;
  FnListener listener([&](PageId p, TierId, TierId to) { events.push_back({p, to}); });
  mem.add_migration_listener(&listener);
  mem.exchange(s[0], f[0]);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0], (std::pair<PageId, TierId>{s[0], Tier::kFMem}));
  EXPECT_EQ(events[1], (std::pair<PageId, TierId>{f[0], Tier::kSMem}));
}

TEST(MigrationEngine, BudgetPersistsAcrossFailedMoves) {
  // A refused move (destination full) must not burn budget.
  TieredMemory mem(small_config(1, 8));
  mem.allocate(0, 1, kTierOnly(Tier::kFMem));
  const auto s = mem.allocate(1, 2, kTierOnly(Tier::kSMem));
  MigrationEngine eng(mem, {static_cast<double>(kPageSize) * 10});
  eng.begin_interval(seconds(1));
  EXPECT_FALSE(eng.promote(s[0]));  // FMem full
  EXPECT_EQ(eng.budget_pages(), 10u);
  EXPECT_TRUE(eng.demote(mem.pages_of(0)[0]));
  EXPECT_EQ(eng.budget_pages(), 9u);
}

}  // namespace
}  // namespace mtat
