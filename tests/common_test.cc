// Tests for the common substrate: RNG + distributions, latency histogram,
// running statistics, CSV writer, alias sampler.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <set>

#include "common/alias_sampler.h"
#include "common/csv.h"
#include "common/latency_histogram.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/units.h"

namespace mtat {
namespace {

// ---------------------------------------------------------------- Rng ----

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_LT(same, 2);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = r.next_double();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
  }
}

TEST(Rng, NextBelowRespectsBound) {
  Rng r(9);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 1000; ++i) ASSERT_LT(r.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowIsRoughlyUniform) {
  Rng r(11);
  const int kBuckets = 8, kDraws = 80000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kDraws; ++i) counts[r.next_below(kBuckets)]++;
  for (int c : counts) {
    EXPECT_GT(c, kDraws / kBuckets * 0.9);
    EXPECT_LT(c, kDraws / kBuckets * 1.1);
  }
}

TEST(Rng, NextBetweenInclusive) {
  Rng r(13);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = r.next_between(-2, 2);
    ASSERT_GE(v, -2);
    ASSERT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all values reachable
}

TEST(Rng, GaussianMoments) {
  Rng r(17);
  RunningStat s;
  for (int i = 0; i < 200000; ++i) s.add(r.next_gaussian());
  EXPECT_NEAR(s.mean(), 0.0, 0.02);
  EXPECT_NEAR(s.stddev(), 1.0, 0.02);
}

TEST(Rng, ExponentialMean) {
  Rng r(19);
  RunningStat s;
  const double rate = 4.0;
  for (int i = 0; i < 200000; ++i) s.add(r.next_exponential(rate));
  EXPECT_NEAR(s.mean(), 1.0 / rate, 0.01);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(23);
  Rng child = a.split();
  EXPECT_NE(a.next_u64(), child.next_u64());
}

// ------------------------------------------------------------- Zipfian ----

TEST(Zipfian, RejectsBadParameters) {
  EXPECT_THROW(ZipfianGenerator(0, 0.9), std::invalid_argument);
  EXPECT_THROW(ZipfianGenerator(10, 0.0), std::invalid_argument);
  EXPECT_THROW(ZipfianGenerator(10, 1.0), std::invalid_argument);
}

TEST(Zipfian, StaysInRange) {
  ZipfianGenerator z(1000, 0.99);
  Rng r(29);
  for (int i = 0; i < 10000; ++i) ASSERT_LT(z(r), 1000u);
}

TEST(Zipfian, RankZeroIsMostFrequent) {
  ZipfianGenerator z(1000, 0.99);
  Rng r(31);
  int zero = 0, hundred = 0;
  for (int i = 0; i < 50000; ++i) {
    const auto v = z(r);
    zero += v == 0;
    hundred += v == 100;
  }
  EXPECT_GT(zero, 10 * (hundred + 1));
}

TEST(ScrambledZipfian, ScattersHotKeys) {
  ScrambledZipfianGenerator z(1000, 0.99);
  Rng r(37);
  // The two most frequent scrambled keys should not be adjacent ranks.
  std::vector<int> counts(1000, 0);
  for (int i = 0; i < 50000; ++i) counts[z(r)]++;
  int best = 0, second = 0;
  for (int i = 0; i < 1000; ++i)
    if (counts[i] > counts[best]) {
      second = best;
      best = i;
    } else if (counts[i] > counts[second]) {
      second = i;
    }
  EXPECT_GT(std::abs(best - second), 1);
}

// ---------------------------------------------------- LatencyHistogram ----

TEST(LatencyHistogram, ExactForSmallValues) {
  for (Duration v : {0ull, 1ull, 5ull, 63ull})
    EXPECT_EQ(LatencyHistogram::value_for(LatencyHistogram::index_for(v)), v);
}

TEST(LatencyHistogram, BucketBoundsContainValue) {
  // For any value, the bucket's representative must be >= the value and
  // within ~3.2% relative error.
  Rng r(41);
  for (int i = 0; i < 10000; ++i) {
    const Duration v = r.next_u64() >> (r.next_below(40) + 4);
    const Duration rep = LatencyHistogram::value_for(LatencyHistogram::index_for(v));
    ASSERT_GE(rep, v);
    if (v >= 64) {
      ASSERT_LE(static_cast<double>(rep - v), 0.033 * static_cast<double>(v));
    }
  }
}

TEST(LatencyHistogram, IndexIsMonotone) {
  std::size_t prev = 0;
  for (Duration v = 0; v < 100000; v += 7) {
    const std::size_t idx = LatencyHistogram::index_for(v);
    ASSERT_GE(idx, prev);
    prev = idx;
  }
}

TEST(LatencyHistogram, PercentileOnUniformData) {
  LatencyHistogram h;
  for (Duration v = 1; v <= 10000; ++v) h.record(v);
  EXPECT_NEAR(static_cast<double>(h.percentile(50)), 5000, 5000 * 0.04);
  EXPECT_NEAR(static_cast<double>(h.percentile(99)), 9900, 9900 * 0.04);
  EXPECT_EQ(h.percentile(100), 10000u);
  EXPECT_EQ(h.percentile(0), 1u);
}

TEST(LatencyHistogram, CountMinMaxMean) {
  LatencyHistogram h;
  h.record(10);
  h.record(20);
  h.record(30);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.min(), 10u);
  EXPECT_EQ(h.max(), 30u);
  EXPECT_DOUBLE_EQ(h.mean(), 20.0);
}

TEST(LatencyHistogram, RecordNEquivalentToLoop) {
  LatencyHistogram a, b;
  a.record_n(777, 5);
  for (int i = 0; i < 5; ++i) b.record(777);
  EXPECT_EQ(a.count(), b.count());
  EXPECT_EQ(a.percentile(50), b.percentile(50));
  EXPECT_DOUBLE_EQ(a.mean(), b.mean());
}

TEST(LatencyHistogram, MergeCombines) {
  LatencyHistogram a, b;
  for (int i = 0; i < 100; ++i) a.record(100);
  for (int i = 0; i < 100; ++i) b.record(10000);
  a.merge(b);
  EXPECT_EQ(a.count(), 200u);
  EXPECT_EQ(a.min(), 100u);
  EXPECT_EQ(a.max(), 10000u);
  EXPECT_LE(a.percentile(40), 110u);
  EXPECT_GE(a.percentile(60), 9000u);
}

TEST(LatencyHistogram, ResetClears) {
  LatencyHistogram h;
  h.record(5);
  h.reset();
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.percentile(99), 0u);
  EXPECT_EQ(h.min(), 0u);
}

TEST(LatencyHistogram, EmptyPercentileIsZero) {
  LatencyHistogram h;
  EXPECT_EQ(h.percentile(99), 0u);
}

// Property sweep: P99 of a known exponential sample is close to the exact
// empirical order statistic across scales.
class HistogramPercentileSweep : public ::testing::TestWithParam<double> {};

TEST_P(HistogramPercentileSweep, MatchesExactOrderStatistic) {
  const double scale = GetParam();
  Rng r(43);
  LatencyHistogram h;
  std::vector<Duration> exact;
  for (int i = 0; i < 20000; ++i) {
    const auto v = static_cast<Duration>(r.next_exponential(1.0 / scale)) + 1;
    h.record(v);
    exact.push_back(v);
  }
  std::sort(exact.begin(), exact.end());
  const Duration truth = exact[static_cast<std::size_t>(0.99 * exact.size())];
  EXPECT_NEAR(static_cast<double>(h.percentile(99)), static_cast<double>(truth),
              0.05 * static_cast<double>(truth));
}

INSTANTIATE_TEST_SUITE_P(Scales, HistogramPercentileSweep,
                         ::testing::Values(1e3, 1e5, 1e7, 1e9));

// ---------------------------------------------------------------- Stats ----

TEST(RunningStat, MatchesClosedForm) {
  RunningStat s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_EQ(s.count(), 8u);
}

TEST(Ewma, ConvergesToConstant) {
  Ewma e(0.3);
  for (int i = 0; i < 100; ++i) e.add(42.0);
  EXPECT_NEAR(e.value(), 42.0, 1e-9);
}

TEST(Ewma, FirstSamplePrimes) {
  Ewma e(0.1);
  EXPECT_FALSE(e.primed());
  e.add(10.0);
  EXPECT_TRUE(e.primed());
  EXPECT_DOUBLE_EQ(e.value(), 10.0);
}

TEST(Ewma, RejectsBadAlpha) {
  EXPECT_THROW(Ewma(0.0), std::invalid_argument);
  EXPECT_THROW(Ewma(1.5), std::invalid_argument);
}

TEST(SlidingWindow, EvictsOldest) {
  SlidingWindow w(3);
  w.add(1);
  w.add(2);
  w.add(3);
  EXPECT_TRUE(w.full());
  EXPECT_DOUBLE_EQ(w.mean(), 2.0);
  w.add(10);
  EXPECT_DOUBLE_EQ(w.mean(), 5.0);  // {2,3,10}
  EXPECT_DOUBLE_EQ(w.back(), 10.0);
}

// ------------------------------------------------------------------ Csv ----

TEST(CsvWriter, WritesHeaderAndRows) {
  const std::string path = ::testing::TempDir() + "/csv_test.csv";
  {
    CsvWriter csv(path, {"a", "b"});
    csv.row({1.0, 2.5});
    csv.row("label", {3.0});
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
  std::getline(in, line);
  EXPECT_EQ(line, "1,2.5");
  std::getline(in, line);
  EXPECT_EQ(line, "label,3");
}

TEST(CsvWriter, RejectsColumnMismatch) {
  CsvWriter csv(::testing::TempDir() + "/csv_test2.csv", {"a", "b"});
  EXPECT_THROW(csv.row({1.0}), std::invalid_argument);
  EXPECT_THROW(csv.row("x", {1.0, 2.0}), std::invalid_argument);
}

TEST(CsvWriter, ThrowsWhenTheStreamFails) {
  // /dev/full opens fine but fails every write with ENOSPC — the silent-
  // truncation case the writer must surface as an exception, not swallow.
  std::ofstream probe("/dev/full");
  if (!probe.is_open()) GTEST_SKIP() << "/dev/full not available on this host";
  probe.close();
  EXPECT_THROW(CsvWriter("/dev/full", {"a", "b"}), std::runtime_error);
}

// ----------------------------------------------------------- Alias ----

TEST(AliasSampler, RejectsDegenerateInput) {
  EXPECT_THROW(AliasSampler({}), std::invalid_argument);
  EXPECT_THROW(AliasSampler({0.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(AliasSampler({1.0, -0.5}), std::invalid_argument);
}

TEST(AliasSampler, MatchesDistribution) {
  const std::vector<double> w = {1.0, 2.0, 4.0, 8.0, 0.0, 1.0};
  AliasSampler s(w);
  Rng r(47);
  std::vector<int> counts(w.size(), 0);
  const int kDraws = 160000;
  for (int i = 0; i < kDraws; ++i) counts[s(r)]++;
  const double total = 16.0;
  for (std::size_t i = 0; i < w.size(); ++i) {
    const double expected = kDraws * w[i] / total;
    EXPECT_NEAR(counts[i], expected, kDraws * 0.01) << "index " << i;
  }
  EXPECT_EQ(counts[4], 0);  // zero weight never drawn
}

TEST(AliasSampler, SingleElement) {
  AliasSampler s({3.0});
  Rng r(53);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(s(r), 0u);
}

// ---------------------------------------------------------------- Units ----

TEST(Units, Conversions) {
  EXPECT_EQ(seconds(2), 2'000'000'000ull);
  EXPECT_EQ(milliseconds(3), 3'000'000ull);
  EXPECT_DOUBLE_EQ(to_seconds(seconds(5)), 5.0);
  EXPECT_EQ(bytes_to_pages(1), 1ull);
  EXPECT_EQ(bytes_to_pages(4096), 1ull);
  EXPECT_EQ(bytes_to_pages(4097), 2ull);
  EXPECT_EQ(pages_to_bytes(3), 12288ull);
  EXPECT_EQ(2_MiB, 2ull * 1024 * 1024);
}

}  // namespace
}  // namespace mtat
