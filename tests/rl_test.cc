// Tests for the RL substrate: MLP forward/backward (pinned by numerical
// gradient checks), Adam, the replay buffer, and SAC end-to-end learning on
// closed-form bandit environments.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "rl/mlp.h"
#include "rl/replay_buffer.h"
#include "rl/sac.h"

namespace mtat {
namespace {

// ------------------------------------------------------------------ Mlp ----

TEST(Mlp, RejectsBadShapes) {
  Rng rng(1);
  EXPECT_THROW(Mlp({3}, rng), std::invalid_argument);
  EXPECT_THROW(Mlp({3, 0, 1}, rng), std::invalid_argument);
  Mlp net({3, 4, 2}, rng);
  EXPECT_THROW(net.forward({1.0, 2.0}), std::invalid_argument);
}

TEST(Mlp, ForwardMatchesHandComputation) {
  Rng rng(2);
  Mlp net({2, 2, 1}, rng);
  // Overwrite parameters with known values:
  // hidden: W=[[1,2],[3,4]], b=[0.5,-10]; out: W=[[1,1]], b=[0.25].
  auto& p = net.parameters();
  p = {1, 2, 3, 4, 0.5, -10, 1, 1, 0.25};
  // x=(1,1): h = relu(1+2+0.5, 3+4-10) = (3.5, 0); y = 3.5 + 0 + 0.25.
  const auto y = net.forward({1.0, 1.0});
  ASSERT_EQ(y.size(), 1u);
  EXPECT_DOUBLE_EQ(y[0], 3.75);
}

TEST(Mlp, ParameterCount) {
  Rng rng(3);
  Mlp net({3, 64, 64, 2}, rng);
  EXPECT_EQ(net.parameter_count(), 3u * 64 + 64 + 64u * 64 + 64 + 64u * 2 + 2);
  EXPECT_EQ(net.input_dim(), 3);
  EXPECT_EQ(net.output_dim(), 2);
}

TEST(Mlp, NumericalGradientCheck) {
  // dLoss/dparam from backward() must match central finite differences for
  // a scalar loss L = sum(output^2).
  Rng rng(5);
  Mlp net({3, 8, 8, 2}, rng);
  const std::vector<double> x = {0.3, -0.7, 1.1};
  Mlp::Cache cache;
  const auto y = net.forward_cached(x, cache);
  std::vector<double> dout(y.size());
  for (std::size_t i = 0; i < y.size(); ++i) dout[i] = 2.0 * y[i];
  net.backward(cache, dout);
  const std::vector<double> analytic = net.gradients();
  net.zero_grad();

  auto loss = [&]() {
    const auto out = net.forward(x);
    double l = 0;
    for (double v : out) l += v * v;
    return l;
  };
  const double eps = 1e-6;
  Rng pick(6);
  for (int trial = 0; trial < 64; ++trial) {
    const std::size_t i = pick.next_below(net.parameter_count());
    const double orig = net.parameters()[i];
    net.parameters()[i] = orig + eps;
    const double lp = loss();
    net.parameters()[i] = orig - eps;
    const double lm = loss();
    net.parameters()[i] = orig;
    const double numeric = (lp - lm) / (2 * eps);
    EXPECT_NEAR(analytic[i], numeric, 1e-4 * std::max(1.0, std::abs(numeric)))
        << "param " << i;
  }
}

TEST(Mlp, InputGradientCheck) {
  Rng rng(7);
  Mlp net({4, 8, 1}, rng);
  std::vector<double> x = {0.1, 0.2, -0.3, 0.4};
  Mlp::Cache cache;
  net.forward_cached(x, cache);
  const auto din = net.backward(cache, {1.0});
  net.zero_grad();
  const double eps = 1e-6;
  for (std::size_t i = 0; i < x.size(); ++i) {
    auto xp = x, xm = x;
    xp[i] += eps;
    xm[i] -= eps;
    const double numeric = (net.forward(xp)[0] - net.forward(xm)[0]) / (2 * eps);
    EXPECT_NEAR(din[i], numeric, 1e-6 * std::max(1.0, std::abs(numeric)));
  }
}

TEST(Mlp, BackwardScaleAppliesEverywhere) {
  Rng rng(8);
  Mlp a({2, 4, 1}, rng);
  Rng rng2(8);
  Mlp b({2, 4, 1}, rng2);
  Mlp::Cache ca, cb;
  a.forward_cached({1.0, -1.0}, ca);
  b.forward_cached({1.0, -1.0}, cb);
  const auto da = a.backward(ca, {1.0}, 0.5);
  const auto db = b.backward(cb, {1.0}, 1.0);
  for (std::size_t i = 0; i < a.parameter_count(); ++i)
    EXPECT_NEAR(a.gradients()[i], 0.5 * b.gradients()[i], 1e-12);
  for (std::size_t i = 0; i < da.size(); ++i) EXPECT_NEAR(da[i], 0.5 * db[i], 1e-12);
}

TEST(Mlp, AdamMinimizesQuadratic) {
  // Fit y = net(x) to y* = 3 on a fixed input: loss should collapse.
  Rng rng(9);
  Mlp net({1, 8, 1}, rng);
  for (int step = 0; step < 2000; ++step) {
    Mlp::Cache c;
    const double y = net.forward_cached({1.0}, c)[0];
    net.backward(c, {2.0 * (y - 3.0)});
    net.adam_step(1e-2);
  }
  EXPECT_NEAR(net.forward({1.0})[0], 3.0, 1e-3);
}

TEST(Mlp, SoftUpdateBlends) {
  Rng rng(10);
  Mlp a({2, 3, 1}, rng), b({2, 3, 1}, rng);
  const double a0 = a.parameters()[0], b0 = b.parameters()[0];
  a.soft_update_from(b, 0.25);
  EXPECT_NEAR(a.parameters()[0], 0.75 * a0 + 0.25 * b0, 1e-12);
  a.copy_parameters_from(b);
  EXPECT_EQ(a.parameters(), b.parameters());
}

// ----------------------------------------------------------- ReplayBuffer ----

TEST(ReplayBuffer, RingOverwritesOldest) {
  ReplayBuffer buf(3);
  for (int i = 0; i < 5; ++i) buf.store(Transition{{}, {}, static_cast<double>(i), {}, false});
  EXPECT_EQ(buf.size(), 3u);
  Rng rng(11);
  // Only rewards 2, 3, 4 should remain.
  for (int i = 0; i < 50; ++i) EXPECT_GE(buf.sample(rng).reward, 2.0);
}

TEST(ReplayBuffer, EmptySampleThrows) {
  ReplayBuffer buf(3);
  Rng rng(12);
  EXPECT_THROW(buf.sample(rng), std::logic_error);
  EXPECT_THROW(ReplayBuffer(0), std::invalid_argument);
}

// -------------------------------------------------------------------- SAC ----

SacConfig small_sac(std::uint64_t seed) {
  SacConfig c;
  c.state_dim = 2;
  c.action_dim = 1;
  c.hidden = {32, 32};
  c.seed = seed;
  c.min_buffer_for_update = 32;
  return c;
}

TEST(Sac, ActionsAreBounded) {
  SacAgent agent(small_sac(1));
  for (int i = 0; i < 200; ++i) {
    const auto a = agent.act({0.5, -0.5});
    ASSERT_EQ(a.size(), 1u);
    ASSERT_GE(a[0], -1.0);
    ASSERT_LE(a[0], 1.0);
  }
  const auto d1 = agent.act({0.5, -0.5}, /*deterministic=*/true);
  const auto d2 = agent.act({0.5, -0.5}, /*deterministic=*/true);
  EXPECT_DOUBLE_EQ(d1[0], d2[0]);  // deterministic mode is stable
}

TEST(Sac, ObserveRejectsNonFiniteTransitions) {
  // Corrupted observations must never reach a gradient update: any non-finite
  // component — reward, state, action, or next state — drops the transition.
  SacAgent agent(small_sac(3));
  const std::vector<double> s{0.5, -0.5};
  const std::vector<double> a{0.1};
  const double inf = std::numeric_limits<double>::infinity();
  agent.observe(s, a, std::nan(""), s, false);
  agent.observe(s, a, inf, s, false);
  agent.observe({std::nan(""), 0.0}, a, 0.0, s, false);
  agent.observe(s, {std::nan("")}, 0.0, s, false);
  agent.observe(s, a, 0.0, {0.0, -inf}, false);
  EXPECT_EQ(agent.buffer_size(), 0u);
  agent.observe(s, a, 1.0, s, false);  // a healthy transition still lands
  EXPECT_EQ(agent.buffer_size(), 1u);
}

TEST(Sac, UpdateRequiresMinimumBuffer) {
  SacAgent agent(small_sac(2));
  EXPECT_FALSE(agent.ready_to_update());
  agent.update();  // harmless no-op
  EXPECT_EQ(agent.updates_performed(), 0u);
}

TEST(Sac, LearnsPositiveActionBandit) {
  // One-step environment: reward = action. The policy mean must drift
  // strongly positive.
  SacAgent agent(small_sac(3));
  const std::vector<double> s = {0.0, 0.0};
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const auto a = agent.act(s);
    agent.observe(s, a, a[0], s, /*done=*/true);
    agent.update(2);
  }
  // SAC's entropy bonus keeps the optimum stochastic; the deterministic mean
  // must still be clearly positive.
  EXPECT_GT(agent.act(s, /*deterministic=*/true)[0], 0.25);
  // Q must reflect the reward structure: Q(+1) > Q(-1).
  EXPECT_GT(agent.q_value(s, {1.0}), agent.q_value(s, {-1.0}));
}

TEST(Sac, LearnsStateDependentPolicy) {
  // reward = state[0] * action: optimal action flips sign with the state.
  SacAgent agent(small_sac(4));
  Rng rng(14);
  for (int i = 0; i < 1500; ++i) {
    const double sv = rng.next_bool(0.5) ? 1.0 : -1.0;
    const std::vector<double> s = {sv, 0.0};
    const auto a = agent.act(s);
    agent.observe(s, a, sv * a[0], s, true);
    agent.update(2);
  }
  EXPECT_GT(agent.act({1.0, 0.0}, true)[0], 0.3);
  EXPECT_LT(agent.act({-1.0, 0.0}, true)[0], -0.3);
}

TEST(Sac, CriticLossFallsOnStationaryProblem) {
  SacAgent agent(small_sac(5));
  const std::vector<double> s = {0.2, 0.8};
  Rng rng(15);
  for (int i = 0; i < 100; ++i) {
    const auto a = agent.act(s);
    agent.observe(s, a, 1.0, s, true);
  }
  agent.update(50);
  const double early = agent.last_critic_loss();
  agent.update(400);
  EXPECT_LT(agent.last_critic_loss(), early);
}

TEST(Sac, AlphaStaysPositive) {
  SacAgent agent(small_sac(6));
  const std::vector<double> s = {0.0, 1.0};
  for (int i = 0; i < 200; ++i) {
    const auto a = agent.act(s);
    agent.observe(s, a, a[0], s, true);
    agent.update();
  }
  EXPECT_GT(agent.alpha(), 0.0);
  EXPECT_TRUE(std::isfinite(agent.alpha()));
}

TEST(Sac, RejectsBadDims) {
  SacConfig c;
  c.state_dim = 0;
  EXPECT_THROW(SacAgent{c}, std::invalid_argument);
}

}  // namespace
}  // namespace mtat

namespace mtat {
namespace {

TEST(Sac, TargetNetworksLagBehindCritics) {
  // After updates, the Polyak-averaged targets must have moved toward — but
  // not onto — the online critics.
  SacAgent agent(small_sac(7));
  const std::vector<double> s = {0.1, 0.9};
  for (int i = 0; i < 64; ++i) {
    const auto a = agent.act(s);
    agent.observe(s, a, 1.0, s, false);
  }
  agent.update(100);
  // Q-estimates on a fixed reward stream with gamma=0.95 head toward
  // r/(1-gamma) = 20; targets follow more slowly but must be finite and
  // nonzero after 100 updates.
  const double q = agent.q_value(s, {0.0});
  EXPECT_GT(q, 0.5);
  EXPECT_LT(q, 40.0);
}

TEST(Sac, BufferRespectsCapacity) {
  SacConfig c = small_sac(8);
  c.buffer_capacity = 16;
  SacAgent agent(c);
  const std::vector<double> s = {0.0, 0.0};
  for (int i = 0; i < 100; ++i) agent.observe(s, {0.0}, 0.0, s, false);
  EXPECT_EQ(agent.buffer_size(), 16u);
}

}  // namespace
}  // namespace mtat
