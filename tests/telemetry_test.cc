// Tests for telemetry: the exponential-bin page-hotness histogram (bin rule,
// aging exactness, tier segregation) and the PEBS-like access sampler.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "telemetry/access_sampler.h"
#include "telemetry/page_hotness.h"

namespace mtat {
namespace {

TieredMemory::Config cfg(std::uint64_t f = 8, std::uint64_t s = 64) {
  TieredMemory::Config c =
      TieredMemory::Config::two_tier(f, s);
  return c;
}

// ----------------------------------------------------------- bin rule ----

TEST(PageHotnessBinRule, ExponentialBoundaries) {
  EXPECT_EQ(PageHotness::bin_of(0), 0);
  EXPECT_EQ(PageHotness::bin_of(1), 1);
  EXPECT_EQ(PageHotness::bin_of(2), 2);
  EXPECT_EQ(PageHotness::bin_of(3), 2);
  EXPECT_EQ(PageHotness::bin_of(4), 3);
  EXPECT_EQ(PageHotness::bin_of(7), 3);
  EXPECT_EQ(PageHotness::bin_of(8), 4);
  EXPECT_EQ(PageHotness::bin_of(1u << 30), 31);
}

TEST(PageHotnessBinRule, HalvingShiftsExactlyOneBin) {
  for (std::uint32_t c = 1; c < 100000; c = c * 3 + 1)
    EXPECT_EQ(PageHotness::bin_of(c / 2), std::max(0, PageHotness::bin_of(c) - 1)) << c;
}

// ------------------------------------------------------------ recording ----

TEST(PageHotness, CountsAccumulate) {
  TieredMemory mem(cfg());
  const auto p = mem.allocate(0, 1, kTierOnly(Tier::kSMem));
  PageHotness h(mem);
  for (int i = 0; i < 5; ++i) h.record_access(0, p[0]);
  EXPECT_EQ(h.count_of(p[0]), 5u);
  EXPECT_EQ(h.bin_of_page(p[0]), 3);
  EXPECT_EQ(h.count_of(p[0] + 100), 0u);  // unknown page
}

TEST(PageHotness, WorkloadFilterIgnoresOthers) {
  TieredMemory mem(cfg());
  const auto a = mem.allocate(0, 1, kTierOnly(Tier::kSMem));
  const auto b = mem.allocate(1, 1, kTierOnly(Tier::kSMem));
  PageHotness h(mem, /*workload_filter=*/1);
  h.record_access(0, a[0]);
  h.record_access(1, b[0]);
  EXPECT_EQ(h.count_of(a[0]), 0u);
  EXPECT_EQ(h.count_of(b[0]), 1u);
}

TEST(PageHotness, SeedPutsAllPagesInBinZero) {
  TieredMemory mem(cfg(4, 16));
  mem.allocate(0, 6, kFastestFirst);
  PageHotness h(mem);
  h.seed_allocated_pages();
  EXPECT_EQ(h.tracked_pages(), 6u);
  EXPECT_EQ(h.bin_size(Tier::kFMem, 0), 4u);
  EXPECT_EQ(h.bin_size(Tier::kSMem, 0), 2u);
}

TEST(PageHotness, SeedRespectsFilter) {
  TieredMemory mem(cfg());
  mem.allocate(0, 3, kTierOnly(Tier::kSMem));
  mem.allocate(1, 2, kTierOnly(Tier::kSMem));
  PageHotness h(mem, 1);
  h.seed_allocated_pages();
  EXPECT_EQ(h.tracked_pages(), 2u);
}

// ---------------------------------------------------------------- aging ----

TEST(PageHotness, AgingHalvesCounts) {
  TieredMemory mem(cfg());
  const auto p = mem.allocate(0, 1, kTierOnly(Tier::kSMem));
  PageHotness h(mem);
  for (int i = 0; i < 12; ++i) h.record_access(0, p[0]);
  h.age();
  EXPECT_EQ(h.count_of(p[0]), 6u);
  h.age();
  EXPECT_EQ(h.count_of(p[0]), 3u);
}

TEST(PageHotness, AgingMatchesRecomputedBins) {
  // Property: after arbitrary record/age interleavings, each page's physical
  // bin equals bin_of(effective count) — the rotation trick is exact.
  TieredMemory mem(cfg(16, 128));
  const auto pages = mem.allocate(0, 100, kFastestFirst);
  PageHotness h(mem);
  Rng rng(3);
  for (int step = 0; step < 2000; ++step) {
    if (rng.next_bool(0.01)) {
      h.age();
    } else {
      h.record_access(0, pages[rng.next_below(pages.size())]);
    }
  }
  // Cross-check: hottest_in_tier returns pages in non-increasing bin order.
  const auto hot = h.hottest_in_tier(Tier::kSMem, 100);
  for (std::size_t i = 1; i < hot.size(); ++i)
    EXPECT_GE(h.bin_of_page(hot[i - 1]), h.bin_of_page(hot[i]));
  const auto cold = h.coldest_in_tier(Tier::kFMem, 100);
  for (std::size_t i = 1; i < cold.size(); ++i)
    EXPECT_LE(h.bin_of_page(cold[i - 1]), h.bin_of_page(cold[i]));
  // And every returned page is actually resident where claimed.
  for (PageId p : hot) EXPECT_EQ(mem.tier_of(p), Tier::kSMem);
  for (PageId p : cold) EXPECT_EQ(mem.tier_of(p), Tier::kFMem);
}

TEST(PageHotness, AgedOutPagesReachBinZero) {
  TieredMemory mem(cfg());
  const auto p = mem.allocate(0, 1, kTierOnly(Tier::kSMem));
  PageHotness h(mem);
  h.record_access(0, p[0]);
  for (int i = 0; i < 40; ++i) h.age();  // beyond the 32-bit shift horizon
  EXPECT_EQ(h.count_of(p[0]), 0u);
  EXPECT_EQ(h.bin_of_page(p[0]), 0);
  // A fresh access re-enters bin 1 cleanly.
  h.record_access(0, p[0]);
  EXPECT_EQ(h.count_of(p[0]), 1u);
  EXPECT_EQ(h.bin_of_page(p[0]), 1);
}

// --------------------------------------------------- tier segregation ----

TEST(PageHotness, MigrationMovesPageBetweenTierBins) {
  TieredMemory mem(cfg());
  const auto p = mem.allocate(0, 1, kTierOnly(Tier::kSMem));
  PageHotness h(mem);
  h.record_access(0, p[0]);
  EXPECT_EQ(h.hottest_in_tier(Tier::kSMem, 1).size(), 1u);
  mem.migrate(p[0], Tier::kFMem);
  EXPECT_TRUE(h.hottest_in_tier(Tier::kSMem, 1).empty());
  const auto hot_f = h.hottest_in_tier(Tier::kFMem, 1);
  ASSERT_EQ(hot_f.size(), 1u);
  EXPECT_EQ(hot_f[0], p[0]);
  EXPECT_EQ(h.count_of(p[0]), 1u);  // count survives the move
}

TEST(PageHotness, HottestExcludesZeroCountPages) {
  TieredMemory mem(cfg());
  mem.allocate(0, 5, kTierOnly(Tier::kSMem));
  PageHotness h(mem);
  h.seed_allocated_pages();
  EXPECT_TRUE(h.hottest_in_tier(Tier::kSMem, 10).empty());
  EXPECT_EQ(h.coldest_in_tier(Tier::kSMem, 10).size(), 5u);
}

TEST(PageHotness, PagesAtOrAboveCounts) {
  TieredMemory mem(cfg());
  const auto p = mem.allocate(0, 3, kTierOnly(Tier::kSMem));
  PageHotness h(mem);
  h.record_access(0, p[0]);  // bin 1
  h.record_access(0, p[1]);
  h.record_access(0, p[1]);  // bin 2
  EXPECT_EQ(h.pages_at_or_above(Tier::kSMem, 1), 2u);
  EXPECT_EQ(h.pages_at_or_above(Tier::kSMem, 2), 1u);
  EXPECT_EQ(h.pages_at_or_above(Tier::kFMem, 1), 0u);
}

TEST(PageHotness, ScanHonorsMaxN) {
  TieredMemory mem(cfg(0, 64));
  const auto p = mem.allocate(0, 10, kTierOnly(Tier::kSMem));
  PageHotness h(mem);
  for (PageId pid : p) h.record_access(0, pid);
  EXPECT_EQ(h.hottest_in_tier(Tier::kSMem, 4).size(), 4u);
  EXPECT_TRUE(h.hottest_in_tier(Tier::kSMem, 0).empty());
}

// -------------------------------------------------------- AccessSampler ----

TEST(AccessSampler, ClassifiesByTier) {
  TieredMemory mem(cfg(1, 8));
  const auto p = mem.allocate(0, 2, kFastestFirst);
  AccessSampler sampler(mem);
  sampler.on_sampled_access(0, p[0], AccessKind::kRead);
  sampler.on_sampled_access(0, p[1], AccessKind::kWrite);
  const auto c = sampler.peek(0);
  EXPECT_EQ(c.fmem_accesses, 1u);
  EXPECT_EQ(c.smem_accesses, 1u);
  EXPECT_EQ(c.reads, 1u);
  EXPECT_EQ(c.writes, 1u);
  EXPECT_DOUBLE_EQ(c.fmem_access_ratio(), 0.5);
}

TEST(AccessSampler, CollectResetsIntervalButAccumulates) {
  TieredMemory mem(cfg());
  const auto p = mem.allocate(2, 1, kTierOnly(Tier::kSMem));
  AccessSampler sampler(mem);
  sampler.on_sampled_access(2, p[0], AccessKind::kRead);
  const auto first = sampler.collect(2);
  EXPECT_EQ(first.total(), 1u);
  EXPECT_EQ(sampler.peek(2).total(), 0u);
  sampler.on_sampled_access(2, p[0], AccessKind::kRead);
  sampler.collect(2);
  EXPECT_EQ(sampler.cumulative(2).total(), 2u);
}

TEST(AccessSampler, IdleIntervalRatioIsOne) {
  TieredMemory mem(cfg());
  AccessSampler sampler(mem);
  EXPECT_DOUBLE_EQ(sampler.collect(0).fmem_access_ratio(), 1.0);
}

TEST(AccessSampler, FansOutToSinksAndCallbacks) {
  TieredMemory mem(cfg());
  const auto p = mem.allocate(0, 1, kTierOnly(Tier::kSMem));
  AccessSampler sampler(mem);
  PageHotness h(mem);
  sampler.add_sink(&h);
  int cb = 0;
  sampler.add_callback([&](WorkloadId, PageId, AccessKind) { ++cb; });
  sampler.on_sampled_access(0, p[0], AccessKind::kRead);
  EXPECT_EQ(h.count_of(p[0]), 1u);
  EXPECT_EQ(cb, 1);
}

TEST(AccessSampler, TrueCountScaling) {
  TieredMemory mem(cfg());
  AccessSampler sampler(mem, /*sample_period=*/256);
  EXPECT_EQ(sampler.to_true_count(10), 2560u);
}

}  // namespace
}  // namespace mtat
