// mtat_lint unit tests: every rule driven over the seeded fixtures in
// tools/lint/fixtures/, the suppression mechanisms, the names-header and
// DESIGN.md table parsers — and the real tree, which must lint clean.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "lint.h"

namespace mtat::lint {
namespace {

namespace fs = std::filesystem;

const fs::path kRepoRoot = MTAT_SOURCE_DIR;
const fs::path kFixtures = kRepoRoot / "tools" / "lint" / "fixtures";

std::string slurp(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << "missing fixture " << p;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

NameTable real_table() {
  std::vector<Finding> findings;
  NameTable t = load_name_table(kRepoRoot / "src" / "obs" / "names.h", findings);
  EXPECT_TRUE(findings.empty());
  return t;
}

/// Lint one fixture file against the real name table.
std::vector<Finding> lint_fixture(const std::string& name, const Allowlist& allow = {}) {
  std::vector<Finding> out;
  lint_source(name, slurp(kFixtures / name), real_table(), allow, out);
  return out;
}

bool has(const std::vector<Finding>& fs, const std::string& rule, int line,
         const std::string& msg_substr) {
  return std::any_of(fs.begin(), fs.end(), [&](const Finding& f) {
    return f.rule == rule && f.line == line &&
           f.message.find(msg_substr) != std::string::npos;
  });
}

std::string dump(const std::vector<Finding>& fs) {
  std::ostringstream ss;
  for (const Finding& f : fs) ss << f.file << ':' << f.line << ": [" << f.rule << "] "
                                 << f.message << '\n';
  return ss.str();
}

// ---------------------------------------------------------------- unit rule --

TEST(UnitSuffix, MapsNonCanonicalSuffixesToCanonical) {
  EXPECT_STREQ(bad_unit_suffix("policy.wall_usec"), "us");
  EXPECT_STREQ(bad_unit_suffix("x.lat_msec"), "ms");
  EXPECT_STREQ(bad_unit_suffix("x.lat_nanos"), "ns");
  EXPECT_STREQ(bad_unit_suffix("migration.moved_kb"), "bytes");
  EXPECT_STREQ(bad_unit_suffix("mem.size_mib"), "bytes");
  EXPECT_STREQ(bad_unit_suffix("lc.violation_percent"), "pct");
  EXPECT_STREQ(bad_unit_suffix("net.rate_bps"), "bytes_per_sec");
}

TEST(UnitSuffix, HistTailIsTransparent) {
  EXPECT_STREQ(bad_unit_suffix("policy.wall_usec_hist"), "us");
  EXPECT_EQ(bad_unit_suffix("policy.wall_us_hist"), nullptr);
}

TEST(UnitSuffix, CanonicalNamesPass) {
  EXPECT_EQ(bad_unit_suffix("policy.wall_us"), nullptr);
  EXPECT_EQ(bad_unit_suffix("derived.migration_bytes_per_sec"), nullptr);
  EXPECT_EQ(bad_unit_suffix("mtat.lc_quota_pages"), nullptr);
  EXPECT_EQ(bad_unit_suffix("queue.arrivals"), nullptr);
}

// --------------------------------------------------------------- name table --

TEST(NameTable, ParsesRealHeaderWithoutFindings) {
  std::vector<Finding> findings;
  const NameTable t = load_name_table(kRepoRoot / "src" / "obs" / "names.h", findings);
  EXPECT_TRUE(findings.empty()) << dump(findings);
  EXPECT_TRUE(t.metrics.count("queue.arrivals"));
  EXPECT_TRUE(t.metrics.count("migration.pages_moved"));
  // This declaration wraps onto a continuation line in names.h — the parser
  // must still pick it up.
  EXPECT_TRUE(t.metrics.count("derived.policy_wall_us_per_interval"));
  EXPECT_TRUE(t.trace_events.count("ppm.decide"));
  EXPECT_TRUE(t.categories.count("sim"));
  EXPECT_FALSE(t.metrics.count("wall"));  // helper-function literal, not a name
}

TEST(NameTable, FixtureHeaderReportsStrayDupeAndBadSuffix) {
  std::vector<Finding> findings;
  const NameTable t = load_name_table(kFixtures / "names_fixture.h", findings);
  EXPECT_TRUE(t.metrics.count("queue.arrivals"));
  EXPECT_TRUE(t.metrics.count("policy.wall_usec"));
  EXPECT_TRUE(t.trace_events.count("queue.overload"));
  EXPECT_TRUE(t.categories.count("queue"));
  EXPECT_TRUE(has(findings, "doc-sync", 6, "outside a mtat-lint section")) << dump(findings);
  EXPECT_TRUE(has(findings, "unit-suffix", 11, "use _us")) << dump(findings);
  EXPECT_TRUE(has(findings, "doc-sync", 12, "duplicate name")) << dump(findings);
  EXPECT_EQ(findings.size(), 3u) << dump(findings);
}

// ------------------------------------------------------------- source rules --

TEST(LintSource, GoodFixtureIsClean) {
  const auto findings = lint_fixture("good.cc");
  EXPECT_TRUE(findings.empty()) << dump(findings);
}

TEST(LintSource, UnknownMetricNameIsReportedAsTypo) {
  const auto findings = lint_fixture("bad_unknown_metric.cc");
  ASSERT_EQ(findings.size(), 1u) << dump(findings);
  EXPECT_TRUE(has(findings, "metric-name", 5, "unknown metric/trace name \"queue.arivals\""));
}

TEST(LintSource, KnownNameSpelledInlineMustUseConstant) {
  const auto findings = lint_fixture("bad_inline_literal.cc");
  EXPECT_TRUE(has(findings, "metric-name", 4, "use the obs::names:: constant"))
      << dump(findings);
  EXPECT_TRUE(has(findings, "metric-name", 5, "use the obs::names:: constant"))
      << dump(findings);
  EXPECT_EQ(findings.size(), 2u) << dump(findings);
}

TEST(LintSource, FaultDomainLiteralsFlaggedAnywhereOnALine) {
  const auto findings = lint_fixture("bad_fault_literal.cc");
  // A known fault.* name at a call site: both the call-site rule and the
  // stricter anywhere-rule fire.
  EXPECT_TRUE(has(findings, "fault-name", 6, "use the obs::names:: constant"))
      << dump(findings);
  // A known fault.* name in a bare comparison — no registry call, so only
  // fault-name can catch it.
  EXPECT_TRUE(has(findings, "fault-name", 7, "use the obs::names:: constant"))
      << dump(findings);
  EXPECT_FALSE(has(findings, "metric-name", 7, "")) << dump(findings);
  // A typo'd fault.* name reads as an unknown to declare.
  EXPECT_TRUE(has(findings, "fault-name", 8, "unknown fault-domain name"))
      << dump(findings);
}

TEST(LintSource, ClusterDomainLiteralsFlaggedAnywhereOnALine) {
  const auto findings = lint_fixture("bad_cluster_literal.cc");
  // A known cluster.* name at a call site: both the call-site rule and the
  // stricter anywhere-rule fire.
  EXPECT_TRUE(has(findings, "cluster-name", 6, "use the obs::names:: constant"))
      << dump(findings);
  // A known cluster.* name in a bare comparison — no registry call, so only
  // cluster-name can catch it.
  EXPECT_TRUE(has(findings, "cluster-name", 7, "use the obs::names:: constant"))
      << dump(findings);
  EXPECT_FALSE(has(findings, "metric-name", 7, "")) << dump(findings);
  // A typo'd cluster.* name reads as an unknown to declare.
  EXPECT_TRUE(has(findings, "cluster-name", 8, "unknown cluster-domain name"))
      << dump(findings);
}

TEST(LintSource, NodeFaultSubFamilyReportsUnderItsOwnRule) {
  const auto findings = lint_fixture("bad_node_fault_literal.cc");
  // First-wins prefix matching: fault.node_* literals report as
  // node-fault-name, never as the parent fault-name rule.
  EXPECT_TRUE(has(findings, "node-fault-name", 6, "use the obs::names:: constant"))
      << dump(findings);
  EXPECT_TRUE(has(findings, "node-fault-name", 7, "use the obs::names:: constant"))
      << dump(findings);
  EXPECT_FALSE(has(findings, "fault-name", 6, "")) << dump(findings);
  EXPECT_FALSE(has(findings, "fault-name", 7, "")) << dump(findings);
  // A typo'd fault.node_* name reads as an unknown to declare.
  EXPECT_TRUE(has(findings, "node-fault-name", 8, "unknown node-fault-domain name"))
      << dump(findings);
}

TEST(LintSource, FailoverSubFamilyReportsUnderItsOwnRule) {
  const auto findings = lint_fixture("bad_failover_literal.cc");
  EXPECT_TRUE(has(findings, "failover-name", 6, "use the obs::names:: constant"))
      << dump(findings);
  EXPECT_TRUE(has(findings, "failover-name", 7, "use the obs::names:: constant"))
      << dump(findings);
  EXPECT_FALSE(has(findings, "cluster-name", 6, "")) << dump(findings);
  EXPECT_FALSE(has(findings, "cluster-name", 7, "")) << dump(findings);
  EXPECT_TRUE(has(findings, "failover-name", 8, "unknown failover-domain name"))
      << dump(findings);
}

TEST(LintSource, PerfDomainLiteralsFlaggedAnywhereOnALine) {
  const auto findings = lint_fixture("bad_perf_literal.cc");
  // A known perf.* name at a call site: both the call-site rule and the
  // stricter anywhere-rule fire.
  EXPECT_TRUE(has(findings, "perf-name", 6, "use the obs::names:: constant"))
      << dump(findings);
  // A known perf.* name in a bare comparison — no registry call, so only
  // perf-name can catch it.
  EXPECT_TRUE(has(findings, "perf-name", 7, "use the obs::names:: constant"))
      << dump(findings);
  EXPECT_FALSE(has(findings, "metric-name", 7, "")) << dump(findings);
  // A typo'd perf.* name reads as an unknown to declare.
  EXPECT_TRUE(has(findings, "perf-name", 8, "unknown perf-domain name"))
      << dump(findings);
}

TEST(LintSource, NonCanonicalUnitSuffixesAtCallSites) {
  const auto findings = lint_fixture("bad_unit_suffix.cc");
  EXPECT_TRUE(has(findings, "unit-suffix", 4, "use _us")) << dump(findings);
  EXPECT_TRUE(has(findings, "unit-suffix", 5, "use _pct")) << dump(findings);
  EXPECT_TRUE(has(findings, "unit-suffix", 6, "use _bytes")) << dump(findings);
}

TEST(LintSource, NondeterminismSourcesAreBanned) {
  const auto findings = lint_fixture("bad_nondet.cc");
  EXPECT_TRUE(has(findings, "nondet", 9, "std::random_device")) << dump(findings);
  EXPECT_TRUE(has(findings, "nondet", 14, "system_clock")) << dump(findings);
  EXPECT_TRUE(has(findings, "nondet", 15, "time()")) << dump(findings);
  EXPECT_TRUE(has(findings, "nondet", 15, "rand()")) << dump(findings);
  EXPECT_EQ(findings.size(), 4u) << dump(findings);
}

TEST(LintSource, UncheckedParsesAreBanned) {
  const auto findings = lint_fixture("bad_parse.cc");
  for (int line : {7, 8, 9, 10})
    EXPECT_TRUE(has(findings, "unsafe-parse", line, "parse")) << dump(findings);
  EXPECT_EQ(findings.size(), 4u) << dump(findings);
}

TEST(LintSource, DirectGetenvIsBanned) {
  const auto findings = lint_fixture("bad_getenv.cc");
  EXPECT_TRUE(has(findings, "getenv", 7, "bench::Env")) << dump(findings);
  EXPECT_TRUE(has(findings, "getenv", 12, "bench::Env")) << dump(findings);
  EXPECT_EQ(findings.size(), 2u) << dump(findings);
}

TEST(LintSource, UsingNamespaceOnlyFlaggedInHeaders) {
  const std::string contents = slurp(kFixtures / "bad_using_namespace.h");
  std::vector<Finding> header_findings;
  lint_source("bad_using_namespace.h", contents, real_table(), {}, header_findings);
  EXPECT_TRUE(has(header_findings, "ns-header", 5, "using namespace"))
      << dump(header_findings);
  // The same directive in a .cc file is fine.
  std::vector<Finding> cc_findings;
  lint_source("same_content.cc", contents, real_table(), {}, cc_findings);
  EXPECT_TRUE(cc_findings.empty()) << dump(cc_findings);
}

TEST(LintSource, GlobalTraceContextIsAnEscape) {
  const auto findings = lint_fixture("bad_context_escape.cc");
  EXPECT_TRUE(has(findings, "context-escape", 6, "trace context trace()")) << dump(findings);
  EXPECT_TRUE(has(findings, "context-escape", 8, "trace context default_trace()"))
      << dump(findings);
  EXPECT_EQ(findings.size(), 2u) << dump(findings);
}

TEST(LintSource, MutableSharedStateIsReportedPerScope) {
  const auto findings = lint_fixture("bad_shared_state.cc");
  EXPECT_TRUE(has(findings, "shared-mutable", 4, "'g_calls' (namespace scope)"))
      << dump(findings);
  EXPECT_TRUE(has(findings, "shared-mutable", 9, "'count' (function-local static)"))
      << dump(findings);
  EXPECT_TRUE(has(findings, "shared-mutable", 14, "'live' (static data member)"))
      << dump(findings);
  // The const namespace-scope constant on line 5 must NOT be flagged.
  EXPECT_EQ(findings.size(), 3u) << dump(findings);
}

TEST(LintSource, UnorderedIterationOrderLeaks) {
  const auto findings = lint_fixture("bad_unordered_iter.cc");
  // Both spellings: the range-for and the explicit .begin() iterator loop.
  EXPECT_TRUE(has(findings, "unordered-iter", 10, "'scores'")) << dump(findings);
  EXPECT_TRUE(has(findings, "unordered-iter", 11, "'scores'")) << dump(findings);
  EXPECT_EQ(findings.size(), 2u) << dump(findings);
}

TEST(LintSource, PointerKeyedOrderIsNondeterministic) {
  const auto findings = lint_fixture("bad_pointer_order.cc");
  EXPECT_TRUE(has(findings, "pointer-order", 10, "std::set with a pointer key"))
      << dump(findings);
  EXPECT_TRUE(has(findings, "pointer-order", 11, "std::map with a pointer key"))
      << dump(findings);
  EXPECT_TRUE(has(findings, "pointer-order", 12, "uintptr_t")) << dump(findings);
  EXPECT_EQ(findings.size(), 3u) << dump(findings);
}

TEST(LintSource, UnannotatedMutexMemberIsReported) {
  const auto findings = lint_fixture("bad_guarded_by.cc");
  EXPECT_TRUE(has(findings, "guarded-by", 14, "mutex member 'mu_' of BadLocked"))
      << dump(findings);
  EXPECT_EQ(findings.size(), 1u) << dump(findings);
}

TEST(LintSource, TierLiteralsOutsideMemAndTestsAreReported) {
  const auto findings = lint_fixture("bad_tier_literal.cc");
  EXPECT_TRUE(has(findings, "tier-literal", 6, "Tier::kFMem")) << dump(findings);
  EXPECT_TRUE(has(findings, "tier-literal", 7, "Tier::kSMem")) << dump(findings);
  EXPECT_EQ(findings.size(), 2u) << dump(findings);
}

TEST(LintSource, TierLiteralsAllowedInMemSubstrateAndTests) {
  // The same contents are clean when the file lives under src/mem/ (where
  // the aliases are defined) or tests/ (two-tier fixtures are deliberate).
  const std::string contents = slurp(kFixtures / "bad_tier_literal.cc");
  for (const char* rel : {"src/mem/some_file.cc", "tests/some_test.cc"}) {
    std::vector<Finding> out;
    lint_source(rel, contents, real_table(), {}, out);
    EXPECT_TRUE(out.empty()) << rel << ":\n" << dump(out);
  }
}

TEST(LintSource, StaleInlineAllowMarkerIsReported) {
  const auto findings = lint_fixture("bad_stale_allow.cc");
  EXPECT_TRUE(has(findings, "stale-suppression", 4, "allow(nondet)")) << dump(findings);
  EXPECT_EQ(findings.size(), 1u) << dump(findings);
}

// -------------------------------------------------------------- suppression --

TEST(Suppression, InlineAllowMarkersSuppressEachRule) {
  const auto findings = lint_fixture("allowed.cc");
  EXPECT_TRUE(findings.empty()) << dump(findings);
}

TEST(Suppression, AllowlistExemptsWholeFilePerRule) {
  Allowlist allow;
  allow.files_by_rule["metric-name"].insert("bad_unknown_metric.cc");
  const auto findings = lint_fixture("bad_unknown_metric.cc", allow);
  EXPECT_TRUE(findings.empty()) << dump(findings);
  // The exemption is per-rule: it does not cover other rules in the file.
  Allowlist wrong_rule;
  wrong_rule.files_by_rule["nondet"].insert("bad_unknown_metric.cc");
  EXPECT_EQ(lint_fixture("bad_unknown_metric.cc", wrong_rule).size(), 1u);
}

TEST(Suppression, RealAllowlistParses) {
  std::vector<Finding> findings;
  const Allowlist allow =
      load_allowlist(kRepoRoot / "tools" / "lint" / "allowlist.txt", findings);
  EXPECT_TRUE(findings.empty()) << dump(findings);
  EXPECT_TRUE(allow.allows("metric-name", "tests/obs_test.cc"));
  EXPECT_FALSE(allow.allows("nondet", "tests/obs_test.cc"));
  EXPECT_TRUE(allow.allows("getenv", "bench/env.h"));
  EXPECT_FALSE(allow.allows("getenv", "bench/harness.h"));
  EXPECT_TRUE(allow.allows("fault-name", "src/obs/names.h"));
  EXPECT_FALSE(allow.allows("fault-name", "src/faults/fault_plan.h"));
  EXPECT_TRUE(allow.allows("cluster-name", "src/obs/names.h"));
  EXPECT_FALSE(allow.allows("cluster-name", "src/cluster/cluster_sim.cc"));
  EXPECT_TRUE(allow.allows("perf-name", "src/obs/names.h"));
  EXPECT_FALSE(allow.allows("perf-name", "bench/perf_core.cc"));
}

// ----------------------------------------------------------------- doc sync --

TEST(DocSync, FixtureDriftIsReportedBothDirections) {
  NameTable t;
  t.metrics = {"queue.arrivals", "policy.wall_usec"};
  t.trace_events = {"queue.overload"};
  std::vector<Finding> findings;
  crosscheck_design(kFixtures / "design_fixture.md", "design_fixture.md", t, findings);
  EXPECT_TRUE(has(findings, "doc-sync", 0,
                  "\"policy.wall_usec\" is declared in src/obs/names.h but missing"))
      << dump(findings);
  EXPECT_TRUE(has(findings, "doc-sync", 0,
                  "\"queue.departures\" but src/obs/names.h does not declare it"))
      << dump(findings);
  EXPECT_EQ(findings.size(), 2u) << dump(findings);
}

TEST(DocSync, RealDesignDocMatchesRealNamesHeader) {
  std::vector<Finding> findings;
  crosscheck_design(kRepoRoot / "DESIGN.md", "DESIGN.md", real_table(), findings);
  EXPECT_TRUE(findings.empty()) << dump(findings);
}

TEST(DocSync, MissingMarkerIsAFinding) {
  NameTable t;
  t.metrics = {"queue.arrivals"};
  std::vector<Finding> findings;
  // good.cc has no markdown markers at all.
  crosscheck_design(kFixtures / "good.cc", "good.cc", t, findings);
  EXPECT_TRUE(has(findings, "doc-sync", 0, "metric-table begin")) << dump(findings);
}

// ------------------------------------------------------------------ run() ----

TEST(Run, FixtureTreeProducesEveryRule) {
  Options opt;
  opt.root = kRepoRoot / "tools" / "lint";
  opt.dirs = {"fixtures"};
  opt.names_header = "../../src/obs/names.h";
  opt.allowlist_file = "no_such_allowlist.txt";
  opt.check_docs = false;
  const std::vector<Finding> findings = run(opt);
  ASSERT_FALSE(findings.empty());
  for (const char* rule :
       {"metric-name", "fault-name", "cluster-name", "perf-name", "node-fault-name",
        "failover-name", "unit-suffix", "nondet",
        "unsafe-parse", "getenv", "ns-header", "context-escape", "shared-mutable",
        "unordered-iter", "pointer-order", "tier-literal", "guarded-by",
        "stale-suppression"}) {
    EXPECT_TRUE(std::any_of(findings.begin(), findings.end(),
                            [&](const Finding& f) { return f.rule == rule; }))
        << "rule " << rule << " never fired:\n" << dump(findings);
  }
  for (const Finding& f : findings) {
    EXPECT_EQ(f.file.find("good.cc"), std::string::npos) << dump(findings);
    EXPECT_EQ(f.file.find("allowed.cc"), std::string::npos) << dump(findings);
    EXPECT_GT(f.line, 0);  // every source finding carries a line number
  }
}

TEST(Run, StaleAllowlistEntriesAreReported) {
  Options opt;
  opt.root = kRepoRoot / "tools" / "lint";
  opt.dirs = {"fixtures"};
  opt.names_header = "../../src/obs/names.h";
  opt.allowlist_file = "fixtures/stale_allowlist.txt";
  opt.check_docs = false;
  const std::vector<Finding> findings = run(opt);
  const bool stale_entry_reported =
      std::any_of(findings.begin(), findings.end(), [](const Finding& f) {
        return f.rule == "stale-suppression" &&
               f.file == "fixtures/stale_allowlist.txt" && f.line == 3 &&
               f.message.find("stale allowlist entry `nondet fixtures/good.cc`") !=
                   std::string::npos;
      });
  EXPECT_TRUE(stale_entry_reported) << dump(findings);
}

TEST(Run, RealTreeIsClean) {
  Options opt;
  opt.root = kRepoRoot;
  const std::vector<Finding> findings = run(opt);
  EXPECT_TRUE(findings.empty()) << dump(findings);
}

}  // namespace
}  // namespace mtat::lint
