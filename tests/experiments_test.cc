// Experiment driver tests: find_max_load edge cases (failure at lo, a
// degenerate bracket, the non-monotone guard), ParallelRunner mechanics
// (every spec exactly once, exception propagation, spec-order trace merging)
// and the determinism contract — jobs=1 and jobs=4 must produce bit-identical
// results and metric values for the same seeds.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <limits>
#include <mutex>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/names.h"
#include "obs/run_context.h"
#include "obs/trace.h"
#include "sim/colocation_sim.h"
#include "sim/experiments.h"
#include "workloads/be/be_suite.h"

namespace mtat::experiments {
namespace {

SimConfig tiny_config(PolicyKind policy, int n_be = 2) {
  SimConfig cfg;
  cfg.fmem = 32_MiB;
  cfg.smem = 512_MiB;
  cfg.lc = redis_config();
  cfg.lc.n_records = 30'000;
  cfg.be = be_suite(BEScale::kTest, 36_MiB, 4, n_be);
  cfg.policy = policy;
  return cfg;
}

// ---------------------------------------------------- find_max_load, serial --

TEST(FindMaxLoad, PredicateFalseEverywhereReturnsLoAfterOneProbe) {
  int calls = 0;
  const double r = find_max_load(
      [&](double) {
        ++calls;
        return false;
      },
      2.0, 16.0, 7);
  EXPECT_DOUBLE_EQ(r, 2.0);
  EXPECT_EQ(calls, 1);  // infeasible at lo: no bisection probes at all
}

TEST(FindMaxLoad, DegenerateBracketLoEqualsHi) {
  EXPECT_DOUBLE_EQ(find_max_load([](double) { return true; }, 4.0, 4.0, 7), 4.0);
  EXPECT_DOUBLE_EQ(find_max_load([](double) { return false; }, 4.0, 4.0, 7), 4.0);
}

TEST(FindMaxLoad, NonFiniteOrInvertedBracketThrows) {
  // A NaN bound would otherwise poison every bisection midpoint and return
  // silently wrong capacities; both overloads must refuse up front.
  const auto yes = [](double) { return true; };
  const double nan = std::nan("");
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_THROW(find_max_load(yes, nan, 16.0, 7), std::invalid_argument);
  EXPECT_THROW(find_max_load(yes, 1.0, inf, 7), std::invalid_argument);
  EXPECT_THROW(find_max_load(yes, 8.0, 4.0, 7), std::invalid_argument);
  ParallelRunner runner(2);
  const auto yes_ctx = [](double, obs::RunContext&) { return true; };
  EXPECT_THROW(find_max_load(yes_ctx, nan, 16.0, 7, runner), std::invalid_argument);
  EXPECT_THROW(find_max_load(yes_ctx, 1.0, inf, 7, runner), std::invalid_argument);
  EXPECT_THROW(find_max_load(yes_ctx, 8.0, 4.0, 7, runner), std::invalid_argument);
}

TEST(FindMaxLoad, ZeroItersProbesLoOnly) {
  int calls = 0;
  const double r = find_max_load(
      [&](double) {
        ++calls;
        return true;
      },
      3.0, 16.0, 0);
  EXPECT_DOUBLE_EQ(r, 3.0);
  EXPECT_EQ(calls, 1);
}

TEST(FindMaxLoad, NonMonotoneGuardOnlyReturnsAcceptedValues) {
  // A non-monotone "island" predicate: feasible below 5, infeasible in
  // (5, 9), feasible again on [9, 10]. The documented guard is that the
  // result (beyond lo itself) is always a value the predicate actually
  // accepted during the search — never an interpolation into the gap.
  const auto island = [](double k) { return k <= 5.0 || (k >= 9.0 && k <= 10.0); };
  for (int iters : {1, 3, 6, 10}) {
    const double r = find_max_load(island, 1.0, 16.0, iters);
    EXPECT_TRUE(island(r)) << "iters=" << iters << " returned unaccepted " << r;
  }
}

// -------------------------------------------------- find_max_load, parallel --

TEST(FindMaxLoad, ParallelMatchesSerialBitForBitAtEveryJobCount) {
  const auto pure = [](double k) { return k <= 6.283; };
  for (int iters : {0, 1, 2, 3, 5, 8}) {
    const double serial = find_max_load(pure, 1.0, 16.0, iters);
    for (int jobs : {1, 4}) {
      ParallelRunner runner(jobs);
      const double par = find_max_load(
          [&](double k, obs::RunContext&) { return pure(k); }, 1.0, 16.0, iters, runner);
      // Exact ==, not near: the contract is bit-identical doubles.
      EXPECT_EQ(serial, par) << "iters=" << iters << " jobs=" << jobs;
    }
  }
}

TEST(FindMaxLoad, ParallelProbeSetIsJobsInvariant) {
  const auto probed_points = [](int jobs) {
    std::set<double> points;
    std::mutex mu;
    ParallelRunner runner(jobs);
    find_max_load(
        [&](double k, obs::RunContext&) {
          std::lock_guard<std::mutex> lock(mu);
          points.insert(k);
          return k <= 11.5;
        },
        1.0, 16.0, 6, runner);
    return points;
  };
  // The speculative frontier depends only on [lo, hi] and iters — jobs=1 and
  // jobs=4 must evaluate the predicate at exactly the same set of loads.
  EXPECT_EQ(probed_points(1), probed_points(4));
}

TEST(FindMaxLoad, ParallelInfeasibleAtLoReturnsLo) {
  ParallelRunner runner(4);
  const double r = find_max_load([](double, obs::RunContext&) { return false; }, 2.0,
                                 16.0, 5, runner);
  EXPECT_DOUBLE_EQ(r, 2.0);
}

TEST(FindMaxLoad, ParallelDegenerateBracketLoEqualsHi) {
  ParallelRunner runner(4);
  const double r =
      find_max_load([](double, obs::RunContext&) { return true; }, 4.0, 4.0, 7, runner);
  EXPECT_DOUBLE_EQ(r, 4.0);
}

// ------------------------------------------------- ParallelRunner mechanics --

TEST(ParallelRunner, JobsDefaultToHardwareConcurrencyFloorOne) {
  EXPECT_GE(ParallelRunner(0).jobs(), 1);
  EXPECT_GE(ParallelRunner(-3).jobs(), 1);
  EXPECT_EQ(ParallelRunner(4).jobs(), 4);
}

TEST(ParallelRunner, RunsEverySpecExactlyOnce) {
  ParallelRunner runner(4);
  constexpr int kSpecs = 17;
  std::vector<int> hits(kSpecs, 0);  // disjoint slots, one writer each
  std::atomic<int> total{0};
  std::vector<RunSpec> specs;
  for (int i = 0; i < kSpecs; ++i)
    specs.push_back({"spec" + std::to_string(i), [&hits, &total, i](obs::RunContext&) {
                       ++hits[static_cast<std::size_t>(i)];
                       total.fetch_add(1);
                     }});
  runner.run_all(specs);
  EXPECT_EQ(total.load(), kSpecs);
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ParallelRunner, EmptySpecListIsANoOp) {
  ParallelRunner runner(4);
  runner.run_all({});
}

TEST(ParallelRunner, SpecExceptionPropagatesToCaller) {
  for (int jobs : {1, 3}) {
    ParallelRunner runner(jobs);
    std::vector<RunSpec> specs;
    specs.push_back({"ok", [](obs::RunContext&) {}});
    specs.push_back(
        {"boom", [](obs::RunContext&) { throw std::runtime_error("boom"); }});
    EXPECT_THROW(runner.run_all(specs), std::runtime_error) << "jobs=" << jobs;
  }
}

TEST(ParallelRunner, NestedRunAllThrowsLogicError) {
  // Reentrancy is an explicit error: a spec that drives another run_all —
  // through the same runner or a different instance — gets std::logic_error
  // from the inner call, and the outer run_all rethrows it like any spec
  // failure. Without the guard, a one-worker pool would deadlock here.
  for (int jobs : {1, 3}) {
    ParallelRunner outer(jobs);
    ParallelRunner inner(1);
    std::atomic<int> inner_ran{0};
    std::vector<RunSpec> specs;
    specs.push_back({"nests", [&inner, &inner_ran](obs::RunContext&) {
                       std::vector<RunSpec> nested;
                       nested.push_back({"never", [&inner_ran](obs::RunContext&) {
                                           inner_ran.fetch_add(1);
                                         }});
                       inner.run_all(nested);
                     }});
    EXPECT_THROW(outer.run_all(specs), std::logic_error) << "jobs=" << jobs;
    EXPECT_EQ(inner_ran.load(), 0) << "jobs=" << jobs;
    // The guard must release on the error path: a fresh top-level run_all
    // right after the failure works normally.
    std::atomic<int> ran{0};
    std::vector<RunSpec> ok;
    ok.push_back({"after", [&ran](obs::RunContext&) { ran.fetch_add(1); }});
    outer.run_all(ok);
    EXPECT_EQ(ran.load(), 1) << "jobs=" << jobs;
  }
}

TEST(ParallelRunner, SpecsGetPrivateTraceContexts) {
  ParallelRunner runner(2);
  std::vector<RunSpec> specs;
  std::vector<int> owns(3, 0);
  for (int i = 0; i < 3; ++i)
    specs.push_back({"ctx" + std::to_string(i), [&owns, i](obs::RunContext& ctx) {
                       owns[static_cast<std::size_t>(i)] = ctx.owns_trace() ? 1 : 0;
                     }});
  runner.run_all(specs);
  for (int o : owns) EXPECT_EQ(o, 1);
}

TEST(ParallelRunner, MergesPrivateTracesInSpecOrderWithDistinctTracks) {
  obs::TraceRecorder& global = obs::default_trace();
  global.enable(1024);
  global.clear();
  ParallelRunner runner(2);
  std::vector<RunSpec> specs;
  for (int i = 0; i < 3; ++i)
    specs.push_back({"trace" + std::to_string(i), [i](obs::RunContext& ctx) {
                       ctx.trace().set_now(SimTime{1000} * (i + 1));
                       ctx.trace().instant(obs::names::kEvInterval, obs::names::kCatSim);
                     }});
  runner.run_all(specs);
  const std::vector<obs::TraceEvent> events = global.snapshot();
  ASSERT_EQ(events.size(), 3u);
  std::set<std::uint32_t> tracks;
  for (std::size_t i = 0; i < events.size(); ++i) {
    // Merge happens in spec order: event i carries spec i's timestamp.
    EXPECT_EQ(events[i].ts, SimTime{1000} * (static_cast<int>(i) + 1));
    tracks.insert(events[i].track);
  }
  EXPECT_EQ(tracks.size(), 3u);  // one distinct track per merged context
  global.clear();
  global.disable();
}

// --------------------------------------- determinism across the job counts --

/// Drops metric rows measuring host wall time (policy.wall_us and friends):
/// they time real execution with steady_clock, so they vary run to run even
/// serially and are explicitly outside the determinism contract.
std::string drop_wall_metrics(const std::string& csv) {
  std::istringstream in(csv);
  std::ostringstream out;
  std::string line;
  while (std::getline(in, line))
    if (line.find("wall_us") == std::string::npos) out << line << '\n';
  return out.str();
}

/// Runs a small grid of independent sims through a runner and captures every
/// result field and the full per-context metrics dump at full precision.
std::vector<std::string> sim_grid_fingerprints(int jobs) {
  const std::vector<PolicyKind> policies = {PolicyKind::kFmemAll, PolicyKind::kMemtis};
  std::vector<std::string> rows(policies.size());
  ParallelRunner runner(jobs);
  std::vector<RunSpec> specs;
  for (std::size_t i = 0; i < policies.size(); ++i) {
    const PolicyKind policy = policies[i];
    specs.push_back({"grid" + std::to_string(i), [&rows, i, policy](obs::RunContext& ctx) {
                       SimConfig cfg = tiny_config(policy);
                       ColocationSim sim(cfg, &ctx);
                       const LoadPattern pat =
                           LoadPattern::constant(cfg.lc.max_load_krps * 1000.0 * 0.5);
                       sim.run(pat, seconds(5));
                       const SimResult r = sim.result();
                       std::ostringstream ss;
                       ss.precision(17);
                       ss << r.fairness << ',' << r.be_total_throughput << ','
                          << r.slo_violation_rate << ',' << r.lc_completed << '\n';
                       ctx.metrics().write_csv(ss);
                       rows[i] = drop_wall_metrics(ss.str());
                     }});
  }
  runner.run_all(specs);
  return rows;
}

TEST(ParallelRunner, SimResultsAndMetricsBitIdenticalAcrossJobCounts) {
  const std::vector<std::string> serial = sim_grid_fingerprints(1);
  const std::vector<std::string> parallel = sim_grid_fingerprints(4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) EXPECT_EQ(serial[i], parallel[i]) << i;
}

TEST(LatencyCurve, SerialAndParallelPointsBitIdentical) {
  LCConfig lc = redis_config();
  lc.n_records = 30'000;
  const std::vector<double> loads = {0.4, 0.9};
  const auto serial = experiments::lc_latency_curve(lc, 0.5, loads, seconds(5), 7);
  ParallelRunner runner(4);
  const auto parallel = experiments::lc_latency_curve(lc, 0.5, loads, seconds(5), 7, &runner);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].offered_krps, parallel[i].offered_krps) << i;
    EXPECT_EQ(serial[i].p99_ms, parallel[i].p99_ms) << i;
    EXPECT_EQ(serial[i].achieved_krps, parallel[i].achieved_krps) << i;
  }
}

}  // namespace
}  // namespace mtat::experiments
