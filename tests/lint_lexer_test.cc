// Tokenizer unit tests for mtat_lint pass 1 (tools/lint/lexer.h): the edge
// cases the v1 line-oriented scanner got wrong, pinned down one by one so the
// lexer can never quietly regress to line-level heuristics.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "lexer.h"

namespace mtat::lint {
namespace {

std::vector<Token> toks(const std::string& text) { return lex(text).tokens; }

/// The token texts of a given kind, in stream order.
std::vector<std::string> texts_of(const std::vector<Token>& ts, Token::Kind kind) {
  std::vector<std::string> out;
  for (const Token& t : ts)
    if (t.kind == kind) out.push_back(t.text);
  return out;
}

const Token* find_ident(const std::vector<Token>& ts, const std::string& name) {
  const auto it = std::find_if(ts.begin(), ts.end(), [&](const Token& t) {
    return t.kind == Token::Kind::kIdent && t.text == name;
  });
  return it == ts.end() ? nullptr : &*it;
}

// ---------------------------------------------------------------- raw strings --

TEST(Lexer, RawStringContentsAreOpaque) {
  // rand() inside a raw string must not become tokens; the delimiter makes a
  // bare `)"` inside the contents harmless.
  const auto ts = toks("const char* s = R\"x(call rand() and )\" here)x\";");
  EXPECT_EQ(find_ident(ts, "rand"), nullptr);
  const auto strings = texts_of(ts, Token::Kind::kString);
  ASSERT_EQ(strings.size(), 1u);
  EXPECT_EQ(strings[0], "call rand() and )\" here");
}

TEST(Lexer, RawStringEncodingPrefixes) {
  for (const char* prefix : {"R", "u8R", "uR", "UR", "LR"}) {
    const auto ts = toks(std::string(prefix) + "\"(time(0))\";");
    EXPECT_EQ(find_ident(ts, "time"), nullptr) << prefix;
    const auto strings = texts_of(ts, Token::Kind::kString);
    ASSERT_EQ(strings.size(), 1u) << prefix;
    EXPECT_EQ(strings[0], "time(0)") << prefix;
  }
}

TEST(Lexer, SpliceInsideRawStringIsLiteral) {
  // Inside a raw string nothing is special — a backslash-newline stays two
  // characters of content, it is not a line splice.
  const auto ts = toks("auto s = R\"(a\\\nb)\";");
  const auto strings = texts_of(ts, Token::Kind::kString);
  ASSERT_EQ(strings.size(), 1u);
  EXPECT_EQ(strings[0], "a\\\nb");
}

// --------------------------------------------------------------- line splices --

TEST(Lexer, SplicedLineCommentSwallowsContinuation) {
  // The backslash-newline splices the next physical line into the comment, so
  // rand() there is commented out — v1 treated it as live code.
  const auto ts = toks("int x = 1; // comment \\\nrand();\nint y = 2;");
  EXPECT_EQ(find_ident(ts, "rand"), nullptr);
  const Token* y = find_ident(ts, "y");
  ASSERT_NE(y, nullptr);
  EXPECT_EQ(y->line, 3);  // physical line numbers, not logical
}

TEST(Lexer, SplicedIdentifierIsOneToken) {
  const auto ts = toks("int ra\\\nnd = 0;");
  const Token* t = find_ident(ts, "rand");
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->line, 1);  // the token starts on the first physical line
}

// -------------------------------------------------------------- block comments --

TEST(Lexer, BlockCommentsDoNotNest) {
  // C++ block comments end at the FIRST `*/`: `c` below is code. Pinned so
  // nobody "fixes" the lexer into nonstandard nesting.
  const auto ts = toks("/* a /* b */ int c = 0;");
  EXPECT_NE(find_ident(ts, "c"), nullptr);
  EXPECT_EQ(find_ident(ts, "a"), nullptr);
  EXPECT_EQ(find_ident(ts, "b"), nullptr);
}

TEST(Lexer, MultiLineBlockCommentTracksLines) {
  const auto ts = toks("/* one\ntwo\nthree */ int after = 0;");
  const Token* t = find_ident(ts, "after");
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->line, 3);
}

// ------------------------------------------------------------------- literals --

TEST(Lexer, DigitSeparatorsStayOneNumberToken) {
  // v1 opened a bogus char literal at the first `'`; the lexer must produce
  // exactly one number token and no char token.
  const auto ts = toks("long n = 1'000'000;");
  const auto numbers = texts_of(ts, Token::Kind::kNumber);
  ASSERT_EQ(numbers.size(), 1u);
  EXPECT_EQ(numbers[0], "1'000'000");
  EXPECT_TRUE(texts_of(ts, Token::Kind::kChar).empty());
}

TEST(Lexer, AdjacentStringLiteralsStaySeparateTokens) {
  const auto strings = texts_of(toks("auto s = \"a\" \"b\";"), Token::Kind::kString);
  ASSERT_EQ(strings.size(), 2u);
  EXPECT_EQ(strings[0], "a");
  EXPECT_EQ(strings[1], "b");
}

TEST(Lexer, UdlSuffixLexesAsStringThenIdent) {
  const auto ts = toks("auto p = \"pages\"_suffix;");
  const auto strings = texts_of(ts, Token::Kind::kString);
  ASSERT_EQ(strings.size(), 1u);
  EXPECT_EQ(strings[0], "pages");
  EXPECT_NE(find_ident(ts, "_suffix"), nullptr);
}

TEST(Lexer, EscapesInsideStringsAndChars) {
  // String token text is the DECODED contents: `\"` becomes a plain quote.
  const auto ts = toks("auto s = \"a\\\"b\"; char c = '\\'';");
  const auto strings = texts_of(ts, Token::Kind::kString);
  ASSERT_EQ(strings.size(), 1u);
  EXPECT_EQ(strings[0], "a\"b");
  EXPECT_EQ(texts_of(ts, Token::Kind::kChar).size(), 1u);
}

// ------------------------------------------------------------------ operators --

TEST(Lexer, CompoundOperatorsAreSingleTokens) {
  // `<=` must never lex as `<` + `=`: the model's template-angle heuristic
  // would see a template-argument list opening in `a <= b`.
  const auto punct = texts_of(toks("if (a <= b && c >= d) x += y;"), Token::Kind::kPunct);
  EXPECT_NE(std::find(punct.begin(), punct.end(), "<="), punct.end());
  EXPECT_NE(std::find(punct.begin(), punct.end(), ">="), punct.end());
  EXPECT_NE(std::find(punct.begin(), punct.end(), "+="), punct.end());
  EXPECT_EQ(std::find(punct.begin(), punct.end(), "<"), punct.end());
  EXPECT_EQ(std::find(punct.begin(), punct.end(), "="), punct.end());
}

// --------------------------------------------------------------- preprocessor --

TEST(Lexer, PreprocessorTokensAreKeptAndMarked) {
  // A banned call hidden in a macro body must still be visible to token
  // rules, but flagged `pp` so scope tracking skips the directive.
  const auto ts = toks("#define SEED() rand()\nint x = SEED();");
  const Token* r = find_ident(ts, "rand");
  ASSERT_NE(r, nullptr);
  EXPECT_TRUE(r->pp);
  const Token* x = find_ident(ts, "x");
  ASSERT_NE(x, nullptr);
  EXPECT_FALSE(x->pp);
}

TEST(Lexer, QuotedIncludeEdgesAreExtracted) {
  const LexedFile f = lex("#include <vector>\n#include \"obs/names.h\"\n");
  ASSERT_EQ(f.includes.size(), 1u);  // only quoted (local) includes are edges
  EXPECT_EQ(f.includes[0].path, "obs/names.h");
  EXPECT_EQ(f.includes[0].line, 2);
}

// -------------------------------------------------------------- allow markers --

TEST(Lexer, AllowMarkersHarvestedPerLine) {
  // Every marker carries the full prefix — a trailing bare "allow(x)" is
  // prose, not a second suppression.
  const LexedFile f = lex(
      "int a = rand();  // mtat-lint: allow(nondet)\n"
      "int b = 0;\n"
      "int c = atoi(\"4\");  // mtat-lint: allow(unsafe-parse) mtat-lint: allow(nondet)\n");
  ASSERT_EQ(f.allows.count(1), 1u);
  EXPECT_TRUE(f.allows.at(1).count("nondet"));
  EXPECT_EQ(f.allows.count(2), 0u);
  ASSERT_EQ(f.allows.count(3), 1u);
  EXPECT_TRUE(f.allows.at(3).count("unsafe-parse"));
  EXPECT_TRUE(f.allows.at(3).count("nondet"));
}

TEST(Lexer, BlockCommentMarkersAttachToTheirPhysicalLine) {
  // A multi-line block comment harvests each marker on the line it appears
  // on — not on every line the comment spans.
  const LexedFile f = lex(
      "/* docs\n"
      " * mtat-lint: allow(nondet)\n"
      " * more docs */\n"
      "int x = 0;\n");
  EXPECT_EQ(f.allows.count(1), 0u);
  ASSERT_EQ(f.allows.count(2), 1u);
  EXPECT_TRUE(f.allows.at(2).count("nondet"));
  EXPECT_EQ(f.allows.count(3), 0u);
}

TEST(Lexer, ProseMentionOfAllowWithoutMarkerPrefixIsIgnored) {
  // Only the exact marker form `mtat-lint: allow(<rule>)` harvests; a bare
  // "allow(x)" in prose (or a rule id with bad characters) is not one.
  const LexedFile f = lex("// we should allow(nondet) here someday\n");
  EXPECT_TRUE(f.allows.empty());
}

TEST(Lexer, MarkersInsideStringsAreNotHarvested) {
  const LexedFile f = lex("const char* s = \"mtat-lint: allow(nondet)\";\n");
  EXPECT_TRUE(f.allows.empty());
}

// ------------------------------------------------------------------ resilience --

TEST(Lexer, UnterminatedLiteralsDegradeGracefully) {
  // Malformed input must not throw or loop: best-effort tokens, keep going.
  EXPECT_NO_THROW(toks("auto s = \"unterminated"));
  EXPECT_NO_THROW(toks("auto s = R\"x(never closed"));
  EXPECT_NO_THROW(toks("/* never closed"));
}

}  // namespace
}  // namespace mtat::lint
