// Fleet-level failure domain tests (DESIGN.md §17): ClusterFaultPlan presets
// and spec parsing, the ClusterFaultInjector determinism contract (per-
// category streams, storm gating, draw-free degenerate probabilities), and
// ClusterSim's failure-domain behaviour — an inert plan is byte-identical to
// no plan, a faulted run is bit-identical across job counts and reruns,
// demand is conserved every epoch (queued and dead-node demand is charged,
// never dropped), total blackouts trip the watchdog without wedging
// placement, certain crashes take the fleet down and bring it back, and warm
// and cold restarts produce genuinely different fleets.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "cluster/cluster_sim.h"
#include "faults/cluster_fault_plan.h"
#include "obs/names.h"
#include "workloads/be/be_suite.h"

namespace mtat::cluster {
namespace {

using faults::ClusterFaultInjector;
using faults::ClusterFaultPlan;

// ---------------------------------------------------------- plan + injector --

TEST(ClusterFaultPlan, StormScalesWithIntensityAndValidates) {
  EXPECT_FALSE(ClusterFaultPlan::storm(0.0).any());
  const ClusterFaultPlan half = ClusterFaultPlan::storm(0.5);
  const ClusterFaultPlan full = ClusterFaultPlan::storm(1.0);
  EXPECT_TRUE(half.any());
  EXPECT_DOUBLE_EQ(full.node_crash_prob, 2.0 * half.node_crash_prob);
  EXPECT_DOUBLE_EQ(full.node_blackout_prob, 2.0 * half.node_blackout_prob);
  EXPECT_DOUBLE_EQ(full.straggler_intensity, 1.0);
  EXPECT_THROW(ClusterFaultPlan::storm(-0.1), std::invalid_argument);
  EXPECT_THROW(ClusterFaultPlan::storm(1.1), std::invalid_argument);
}

TEST(ClusterFaultPlan, FromSpecParsesIntensityAndRestartMode) {
  const auto bare = ClusterFaultPlan::from_spec("storm");
  ASSERT_TRUE(bare.has_value());
  EXPECT_TRUE(bare->warm_restart);
  EXPECT_DOUBLE_EQ(bare->node_crash_prob, 0.08);
  const auto cold = ClusterFaultPlan::from_spec("storm:0.5:cold");
  ASSERT_TRUE(cold.has_value());
  EXPECT_FALSE(cold->warm_restart);
  EXPECT_DOUBLE_EQ(cold->node_crash_prob, 0.04);
  EXPECT_TRUE(ClusterFaultPlan::from_spec("storm:1.0:warm")->warm_restart);
  EXPECT_FALSE(ClusterFaultPlan::from_spec("breeze").has_value());
  EXPECT_FALSE(ClusterFaultPlan::from_spec("storm:2").has_value());
  EXPECT_FALSE(ClusterFaultPlan::from_spec("storm:abc").has_value());
  EXPECT_FALSE(ClusterFaultPlan::from_spec("storm:0.5:tepid").has_value());
}

TEST(ClusterFaultInjector, SamePlanSameDrawSequence) {
  ClusterFaultPlan plan;
  plan.node_crash_prob = 0.5;
  plan.node_blackout_prob = 0.5;
  ClusterFaultInjector a(plan), b(plan);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(a.crash_node(0), b.crash_node(0)) << i;
    EXPECT_EQ(a.blackout_node(0), b.blackout_node(0)) << i;
  }
}

TEST(ClusterFaultInjector, CategoriesDrawFromIndependentStreams) {
  // Turning blackouts on must not shift which nodes crash: the crash draw
  // sequence is a pure function of (seed, crash probability).
  ClusterFaultPlan crashes_only;
  crashes_only.node_crash_prob = 0.5;
  ClusterFaultPlan both = crashes_only;
  both.node_blackout_prob = 0.5;
  ClusterFaultInjector a(crashes_only), b(both);
  for (int i = 0; i < 200; ++i) {
    b.blackout_node(0);  // interleave draws on the other stream
    EXPECT_EQ(a.crash_node(0), b.crash_node(0)) << i;
  }
}

TEST(ClusterFaultInjector, NothingFiresOutsideTheStormPhase) {
  ClusterFaultPlan plan;
  plan.storm_epochs = 2;
  plan.node_crash_prob = 1.0;
  plan.node_straggler_prob = 1.0;
  plan.node_blackout_prob = 1.0;
  ClusterFaultInjector inj(plan);
  EXPECT_TRUE(inj.in_storm(0));
  EXPECT_TRUE(inj.crash_node(1));
  EXPECT_FALSE(inj.in_storm(2));
  EXPECT_FALSE(inj.crash_node(2));
  EXPECT_FALSE(inj.straggle_node(2));
  EXPECT_FALSE(inj.blackout_node(2));
}

TEST(ClusterFaultInjector, DegenerateProbabilitiesResolveWithoutDraws) {
  // p = 0 and p = 1 must not consume randomness: two injectors whose only
  // difference is interleaved degenerate queries stay in lockstep.
  ClusterFaultPlan plan;
  plan.node_crash_prob = 0.5;
  plan.node_blackout_prob = 1.0;
  ClusterFaultInjector a(plan), b(plan);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(b.blackout_node(0));   // p = 1: true, draw-free
    EXPECT_FALSE(b.straggle_node(0));  // p = 0: false, draw-free
    EXPECT_EQ(a.crash_node(0), b.crash_node(0)) << i;
  }
}

// ------------------------------------------------------------- cluster sims --

/// Same deliberately tiny fleet as cluster_test.cc: the failure domain is
/// about event ordering and merge determinism, not scale.
ClusterConfig tiny_cluster(int nodes = 6) {
  ClusterConfig cc;
  cc.nodes = nodes;
  cc.tenants = 3 * nodes;
  cc.node.fmem = 32_MiB;
  cc.node.smem = 512_MiB;
  cc.node.lc = redis_config();
  cc.node.lc.n_records = 30'000;
  cc.node.be = be_suite(BEScale::kTest, 36_MiB, 4, 1);
  cc.node.policy = PolicyKind::kMemtis;
  cc.node_capacity_krps = 6.0;
  cc.settle = milliseconds(500);
  cc.probe_window = seconds(1);
  cc.measure_window = seconds(1);
  cc.keep_node_metrics = true;
  return cc;
}

std::string drop_wall_metrics(const std::string& csv) {
  std::istringstream in(csv);
  std::ostringstream out;
  std::string line;
  while (std::getline(in, line))
    if (line.find("wall") == std::string::npos) out << line << '\n';
  return out.str();
}

/// Serializes everything a ClusterResult reports — the per-epoch series and
/// failover counters included — at full precision.
std::string fingerprint(const ClusterResult& r) {
  std::ostringstream ss;
  ss.precision(17);
  ss << r.offered_krps << ',' << r.completed_krps << ',' << r.slo_compliance_pct << ','
     << r.max_p99_ms << ',' << r.p99_of_p99_ms << ',' << r.fmem_util_pct << ','
     << r.overloaded_nodes << ',' << r.rebalanced_tenants << ',' << r.sim_steps << ','
     << r.node_sim_seconds << '\n'
     << r.node_crashes << ',' << r.node_stragglers << ',' << r.node_blackouts << ','
     << r.warm_restarts << ',' << r.cold_restarts << ',' << r.evacuations << ','
     << r.failover_retries << ',' << r.unplaced_tenants << '\n';
  for (const EpochStats& e : r.epochs)
    ss << e.epoch << ',' << e.window_s << ',' << e.alive_nodes << ',' << e.crashed_nodes
       << ',' << e.straggler_nodes << ',' << e.blackout_nodes << ',' << e.suspected_nodes
       << ',' << e.evacuated_tenants << ',' << e.queued_tenants << ',' << e.placement_mode
       << ',' << e.offered_krps << ',' << e.completed_krps << ',' << e.slo_compliance_pct
       << '\n';
  for (const NodeResult& n : r.nodes) {
    ss << n.node_id << ',' << n.tenants << ',' << n.offered_krps << ',' << n.ran << ','
       << n.p99_ms << ',' << n.slo_violation_pct << ',' << n.fmem_util_pct << ','
       << n.sim.lc_completed << '\n'
       << drop_wall_metrics(n.metrics_csv);
  }
  return ss.str();
}

TEST(ClusterFaultSim, InertPlanIsByteIdenticalToNoPlan) {
  // An all-zero plan must not even arm the failure domain: no injector, no
  // extra RNG draws, no watchdog — the classic two-epoch run, byte for byte.
  const auto policy = make_telemetry_placement();
  ClusterConfig healthy = tiny_cluster();
  ClusterSim a(healthy);
  ClusterConfig inert = tiny_cluster();
  inert.faults = ClusterFaultPlan{};  // present but !any()
  ClusterSim b(inert);
  const ClusterResult ra = a.run(*policy);
  const ClusterResult rb = b.run(*policy);
  EXPECT_EQ(fingerprint(ra), fingerprint(rb));
  EXPECT_EQ(ra.epochs.size(), 2u);  // probe + measured
  EXPECT_EQ(rb.node_crashes + rb.node_stragglers + rb.node_blackouts, 0);
  EXPECT_EQ(rb.warm_restarts + rb.cold_restarts + rb.evacuations, 0);
}

std::string faulted_fingerprint(const PlacementPolicy& policy, int jobs) {
  ClusterConfig cc = tiny_cluster();
  cc.faults = ClusterFaultPlan::storm(1.0);
  ClusterSim sim(cc);
  if (jobs == 0) return fingerprint(sim.run(policy));  // serial reference path
  experiments::ParallelRunner runner(jobs);
  return fingerprint(sim.run(policy, &runner));
}

TEST(ClusterFaultSim, FaultedRunIsBitIdenticalAcrossJobCountsAndReruns) {
  // The determinism contract extended to the failure domain: the storm, the
  // watchdog, evacuations, and restarts all replay identically whether the
  // shards run serially or on four workers — and again on a rerun.
  const auto policy = make_telemetry_placement();
  const std::string serial = faulted_fingerprint(*policy, 0);
  EXPECT_EQ(serial, faulted_fingerprint(*policy, 4));
  EXPECT_EQ(serial, faulted_fingerprint(*policy, 4)) << "rerun";
}

TEST(ClusterFaultSim, EveryEpochConservesTenantDemand) {
  // Dead-node and queued demand is charged, never dropped: each epoch's
  // offered load is exactly the tenant population's total demand.
  ClusterConfig cc = tiny_cluster();
  cc.faults = ClusterFaultPlan::storm(1.0);
  ClusterSim sim(cc);
  double total = 0;
  for (const TenantStream& t : sim.tenants()) total += t.demand_krps;
  const ClusterResult r = sim.run(*make_telemetry_placement());
  ASSERT_EQ(r.epochs.size(), static_cast<std::size_t>(cc.faults->epochs));
  for (const EpochStats& e : r.epochs)
    EXPECT_NEAR(e.offered_krps, total, 1e-9 * total) << "epoch " << e.epoch;
}

TEST(ClusterFaultSim, TotalBlackoutSuspectsTheFleetWithoutWedgingPlacement) {
  ClusterConfig cc = tiny_cluster();
  ClusterFaultPlan plan;
  plan.node_blackout_prob = 1.0;  // every node dark, every storm epoch
  plan.epochs = 6;
  plan.storm_epochs = 4;
  cc.faults = plan;
  obs::RunContext ctx;
  ClusterSim sim(cc, &ctx);
  const ClusterResult r = sim.run(*make_telemetry_placement());
  EXPECT_EQ(r.node_blackouts, cc.nodes * plan.storm_epochs);
  // After suspect_after consecutive missed exports the whole fleet is
  // suspected; the fence-all fallback must keep placing tenants anyway.
  int max_suspected = 0;
  for (const EpochStats& e : r.epochs) {
    max_suspected = std::max(max_suspected, e.suspected_nodes);
    EXPECT_EQ(e.alive_nodes, cc.nodes) << "blackouts only blind, never kill";
    EXPECT_GT(e.offered_krps, 0.0);
  }
  EXPECT_EQ(max_suspected, cc.nodes);
  EXPECT_GT(r.completed_krps, 0.0);
  // The epochs counter reflects the full faulted loop.
  EXPECT_EQ(ctx.metrics().find_counter(obs::names::kClusterEpochs)->value(),
            static_cast<double>(plan.epochs));
  EXPECT_EQ(ctx.metrics().find_counter(obs::names::kFaultNodeBlackouts)->value(),
            static_cast<double>(r.node_blackouts));
}

TEST(ClusterFaultSim, CertainCrashTakesTheFleetDownAndBringsItBack) {
  ClusterConfig cc = tiny_cluster();
  ClusterFaultPlan plan;
  plan.node_crash_prob = 1.0;
  plan.storm_epochs = 1;
  plan.outage_epochs = 1;
  plan.epochs = 4;
  plan.warm_restart = false;  // epoch-0 crashes have no checkpoint anyway
  cc.faults = plan;
  ClusterSim sim(cc);
  const ClusterResult r = sim.run(*make_random_placement());
  EXPECT_EQ(r.node_crashes, cc.nodes);
  EXPECT_EQ(r.cold_restarts, cc.nodes);
  ASSERT_EQ(r.epochs.size(), 4u);
  // Epoch 0: everything is down; every request routed there is violated.
  EXPECT_EQ(r.epochs[0].alive_nodes, 0);
  EXPECT_EQ(r.epochs[0].crashed_nodes, cc.nodes);
  EXPECT_EQ(r.epochs[0].slo_compliance_pct, 0.0);
  // After the outage the whole fleet is back and serving again.
  for (std::size_t e = 1; e < r.epochs.size(); ++e) {
    EXPECT_EQ(r.epochs[e].alive_nodes, cc.nodes) << "epoch " << e;
    EXPECT_GT(r.epochs[e].completed_krps, 0.0) << "epoch " << e;
  }
  EXPECT_GT(r.slo_compliance_pct, 0.0);
}

TEST(ClusterFaultSim, WarmAndColdRestartsDivergeOnceCheckpointsExist) {
  // Crashes in later storm epochs hit nodes that have completed an epoch and
  // therefore hold a checkpoint: warm restarts replay it, cold ones boot
  // from scratch. The two modes must produce different fleets — same storm,
  // same crash schedule, different recovered state.
  const auto run_mode = [](bool warm) {
    ClusterConfig cc = tiny_cluster();
    ClusterFaultPlan plan;
    plan.node_crash_prob = 0.5;
    plan.storm_epochs = 3;
    plan.outage_epochs = 1;
    plan.epochs = 5;
    plan.warm_restart = warm;
    cc.faults = plan;
    ClusterSim sim(cc);
    return sim.run(*make_bin_packing_placement());
  };
  const ClusterResult warm = run_mode(true);
  const ClusterResult cold = run_mode(false);
  // The storm itself is mode-independent: identical crash schedules.
  EXPECT_EQ(warm.node_crashes, cold.node_crashes);
  EXPECT_GT(warm.node_crashes, 0);
  EXPECT_GT(warm.warm_restarts, 0);
  EXPECT_EQ(cold.warm_restarts, 0);
  EXPECT_GT(cold.cold_restarts, 0);
  EXPECT_NE(fingerprint(warm), fingerprint(cold));
}

}  // namespace
}  // namespace mtat::cluster
