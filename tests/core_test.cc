// Tests for MTAT's core: the SA partitioner (Algorithm 2), PP-E (Algorithm 3
// plan execution + refinement), and PP-M (state/reward/guard mechanics).
#include <gtest/gtest.h>

#include "core/mtat_policy.h"
#include "core/ppe.h"
#include "core/ppm.h"
#include "core/sa_partitioner.h"

namespace mtat {
namespace {

// -------------------------------------------------------- SA partitioner ----

BEPerfModel linear_model(double slope, std::uint64_t max_pages) {
  return BEPerfModel{[slope, max_pages](std::uint64_t pages) {
                       const double p = std::min(pages, max_pages);
                       return 0.4 + slope * static_cast<double>(p);
                     },
                     max_pages};
}

TEST(SaPartitioner, RejectsEmptyOrZeroUnit) {
  Rng rng(1);
  SAOptions opt;
  EXPECT_THROW(anneal_be_partition({}, 100, opt, rng), std::invalid_argument);
  opt.unit_pages = 0;
  EXPECT_THROW(anneal_be_partition({linear_model(0.001, 100)}, 100, opt, rng),
               std::invalid_argument);
}

TEST(SaPartitioner, SingleWorkloadGetsEverything) {
  Rng rng(2);
  const auto r = anneal_be_partition({linear_model(0.001, 1000)}, 500, SAOptions{}, rng);
  ASSERT_EQ(r.allocation.size(), 1u);
  EXPECT_EQ(r.allocation[0], 500u);
}

TEST(SaPartitioner, SymmetricWorkloadsSplitEvenly) {
  Rng rng(3);
  std::vector<BEPerfModel> models = {linear_model(0.001, 10000), linear_model(0.001, 10000)};
  SAOptions opt;
  opt.unit_pages = 10;
  const auto r = anneal_be_partition(models, 1000, opt, rng);
  // Even split is optimal for identical concave-ish models; SA should stay
  // near it.
  EXPECT_NEAR(static_cast<double>(r.allocation[0]), 500.0, 150.0);
  EXPECT_EQ(r.allocation[0] + r.allocation[1], 1000u);
}

TEST(SaPartitioner, FavorsTheWorstOffWorkload) {
  // Workload 0 gains 10x more per page: max-min is achieved by equalizing
  // NPs, which needs most pages on the slow-gaining workload 1.
  Rng rng(4);
  std::vector<BEPerfModel> models = {linear_model(0.0010, 100000),
                                     linear_model(0.0001, 100000)};
  SAOptions opt;
  opt.unit_pages = 16;
  opt.max_iterations = 8000;
  const auto r = anneal_be_partition(models, 2000, opt, rng);
  EXPECT_GT(r.allocation[1], r.allocation[0]);
  // And the SA objective must beat the even split's.
  const double even = std::min(models[0].np_at_pages(1000), models[1].np_at_pages(1000));
  EXPECT_GE(r.objective, even);
}

TEST(SaPartitioner, RespectsMaxUsefulPages) {
  Rng rng(5);
  std::vector<BEPerfModel> models = {linear_model(0.001, 100), linear_model(0.001, 100000)};
  SAOptions opt;
  opt.unit_pages = 10;
  opt.max_iterations = 5000;
  const auto r = anneal_be_partition(models, 2000, opt, rng);
  EXPECT_LE(r.allocation[0], 110u);  // cap + at most one unit of slack
}

TEST(SaPartitioner, ObjectiveNearExhaustiveOptimum) {
  // Three workloads with different curves; compare against brute force on a
  // coarse grid of the same unit.
  Rng rng(6);
  const auto np0 = [](std::uint64_t p) { return 0.3 + 0.002 * static_cast<double>(p); };
  const auto np1 = [](std::uint64_t p) { return 0.5 + 0.0005 * static_cast<double>(p); };
  const auto np2 = [](std::uint64_t p) { return 0.4 + 0.001 * static_cast<double>(p); };
  std::vector<BEPerfModel> models = {{np0, 1000}, {np1, 1000}, {np2, 1000}};
  const std::uint64_t total = 600, unit = 20;
  double best = 0;
  for (std::uint64_t a = 0; a <= total; a += unit)
    for (std::uint64_t b = 0; a + b <= total; b += unit)
      best = std::max(best, std::min({np0(a), np1(b), np2(total - a - b)}));
  SAOptions opt;
  opt.unit_pages = unit;
  opt.max_iterations = 6000;
  const auto r = anneal_be_partition(models, total, opt, rng);
  EXPECT_GE(r.objective, best * 0.97);
}

// ------------------------------------------------------------------ PP-E ----

struct PpeHarness {
  TieredMemory mem;
  MigrationEngine engine;
  AccessSampler sampler;
  PolicyContext ctx;

  explicit PpeHarness(std::uint64_t fmem = 64, std::uint64_t smem = 512)
      : mem([&] {
          TieredMemory::Config c =
              TieredMemory::Config::two_tier(fmem, smem);
          return c;
        }()),
        engine(mem, {1e12}),  // effectively unlimited per-interval bandwidth
        sampler(mem) {
    ctx.mem = &mem;
    ctx.engine = &engine;
    ctx.sampler = &sampler;
  }

  void add_tenant(WorkloadId id, bool lc, std::uint64_t pages, AllocPolicy alloc) {
    mem.allocate(id, pages, alloc);
    ctx.tenants.push_back(TenantInfo{id, lc});
  }
};

TEST(Ppe, InitialQuotasMatchResidency) {
  PpeHarness h;
  h.add_tenant(0, true, 40, kFastestFirst);
  h.add_tenant(1, false, 100, kFastestFirst);  // 24 in FMem, rest spill
  PartitionEnforcer ppe(h.ctx, {});
  EXPECT_EQ(ppe.quota(0), 40u);
  EXPECT_EQ(ppe.quota(1), 24u);
  EXPECT_FALSE(ppe.plan_active());
}

TEST(Ppe, PlanExecutesToTargets) {
  PpeHarness h;
  h.add_tenant(0, true, 40, kFastestFirst);
  h.add_tenant(1, false, 100, kFastestFirst);
  PartitionEnforcer ppe(h.ctx, {});
  // Shrink LC to 10, give BE 54.
  ppe.set_plan({10, 54});
  EXPECT_TRUE(ppe.plan_active());
  for (int i = 0; i < 50 && ppe.plan_active(); ++i) {
    h.engine.begin_interval(milliseconds(10));
    ppe.on_tick();
  }
  EXPECT_FALSE(ppe.plan_active());
  EXPECT_EQ(h.mem.workload_pages(0, Tier::kFMem), 10u);
  EXPECT_EQ(h.mem.workload_pages(1, Tier::kFMem), 54u);
}

TEST(Ppe, LcExpansionEvictsBeProportionally) {
  PpeHarness h;
  h.add_tenant(0, true, 100, kTierOnly(Tier::kSMem));
  h.add_tenant(1, false, 40, kFastestFirst);
  h.add_tenant(2, false, 40, kFastestFirst);  // 24 in FMem
  PartitionEnforcer ppe(h.ctx, {});
  ppe.set_plan({64, 0, 0});  // LC takes the whole fast tier
  for (int i = 0; i < 50 && ppe.plan_active(); ++i) {
    h.engine.begin_interval(milliseconds(10));
    ppe.on_tick();
  }
  EXPECT_EQ(h.mem.workload_pages(0, Tier::kFMem), 64u);
  EXPECT_EQ(h.mem.workload_pages(1, Tier::kFMem), 0u);
  EXPECT_EQ(h.mem.workload_pages(2, Tier::kFMem), 0u);
}

TEST(Ppe, PMaxBoundsPerSliceMovement) {
  PpeHarness h;
  h.add_tenant(0, true, 100, kTierOnly(Tier::kSMem));
  h.add_tenant(1, false, 64, kTierOnly(Tier::kFMem));
  PartitionEnforcer::Options opt;
  opt.p_max = 8;
  PartitionEnforcer ppe(h.ctx, opt);
  ppe.set_plan({64, 0});
  h.engine.begin_interval(seconds(1));
  ppe.on_tick();
  EXPECT_EQ(h.mem.workload_pages(0, Tier::kFMem), 8u);  // one slice only
  EXPECT_TRUE(ppe.plan_active());
}

TEST(Ppe, PlanPrefersHotPagesForPromotion) {
  PpeHarness h;
  h.add_tenant(0, true, 100, kTierOnly(Tier::kSMem));
  h.add_tenant(1, false, 64, kTierOnly(Tier::kFMem));
  PartitionEnforcer ppe(h.ctx, {});
  // Mark ten LC pages hot via the sampler (PP-E's histograms are sinks).
  const auto& pages = h.mem.pages_of(0);
  for (int rep = 0; rep < 4; ++rep)
    for (int i = 0; i < 10; ++i)
      h.sampler.on_sampled_access(0, pages[static_cast<std::size_t>(i)], AccessKind::kRead);
  ppe.set_plan({10, 54});
  for (int i = 0; i < 20 && ppe.plan_active(); ++i) {
    h.engine.begin_interval(milliseconds(10));
    ppe.on_tick();
  }
  for (int i = 0; i < 10; ++i)
    EXPECT_EQ(h.mem.tier_of(pages[static_cast<std::size_t>(i)]), Tier::kFMem) << i;
}

TEST(Ppe, RefinementSwapsHotForColdWithinPartition) {
  PpeHarness h;
  h.add_tenant(0, true, 100, kFastestFirst);  // 64 in FMem, 36 in SMem
  PartitionEnforcer ppe(h.ctx, {});
  const auto& pages = h.mem.pages_of(0);
  // Make one SMem-resident page very hot.
  const PageId hot = pages[80];
  ASSERT_EQ(h.mem.tier_of(hot), Tier::kSMem);
  for (int i = 0; i < 8; ++i) h.sampler.on_sampled_access(0, hot, AccessKind::kRead);
  h.engine.begin_interval(milliseconds(10));
  ppe.on_tick();  // no plan -> refinement
  EXPECT_EQ(h.mem.tier_of(hot), Tier::kFMem);
  // Quota unchanged: refinement exchanges preserve partition sizes.
  EXPECT_EQ(h.mem.workload_pages(0, Tier::kFMem), 64u);
}

TEST(Ppe, FullModeIsolatesBePartitions) {
  PpeHarness h;
  h.add_tenant(0, true, 10, kTierOnly(Tier::kSMem));
  h.add_tenant(1, false, 60, kFastestFirst);
  h.add_tenant(2, false, 60, kTierOnly(Tier::kSMem));
  PartitionEnforcer ppe(h.ctx, {});
  // Tenant 2 is screaming hot in SMem, but full mode must not let it displace
  // tenant 1 beyond its quota.
  for (int i = 0; i < 20; ++i)
    h.sampler.on_sampled_access(2, h.mem.pages_of(2)[0], AccessKind::kRead);
  const auto before = h.mem.workload_pages(1, Tier::kFMem);
  for (int i = 0; i < 10; ++i) {
    h.engine.begin_interval(milliseconds(10));
    ppe.on_tick();
  }
  EXPECT_EQ(h.mem.workload_pages(1, Tier::kFMem), before);
  EXPECT_EQ(h.mem.workload_pages(2, Tier::kFMem), 0u);
}

TEST(Ppe, LcOnlyModeLetsBeCompete) {
  PpeHarness h;
  h.add_tenant(0, true, 10, kTierOnly(Tier::kSMem));
  h.add_tenant(1, false, 60, kFastestFirst);
  h.add_tenant(2, false, 60, kTierOnly(Tier::kSMem));
  PartitionEnforcer::Options opt;
  opt.isolate_be = false;
  PartitionEnforcer ppe(h.ctx, opt);
  for (int i = 0; i < 20; ++i)
    h.sampler.on_sampled_access(2, h.mem.pages_of(2)[0], AccessKind::kRead);
  for (int i = 0; i < 10; ++i) {
    h.engine.begin_interval(milliseconds(10));
    ppe.on_tick();
  }
  EXPECT_EQ(h.mem.workload_pages(2, Tier::kFMem), 1u);  // the hot page moved in
}

TEST(Ppe, AgeHalvesHistogramsOnItsCadence) {
  PpeHarness h;
  h.add_tenant(0, true, 10, kTierOnly(Tier::kSMem));
  PartitionEnforcer::Options opt;
  opt.age_every_intervals = 3;
  PartitionEnforcer ppe(h.ctx, opt);
  const PageId p = h.mem.pages_of(0)[0];
  for (int i = 0; i < 8; ++i) h.sampler.on_sampled_access(0, p, AccessKind::kRead);
  EXPECT_EQ(ppe.histogram(0).count_of(p), 8u);
  ppe.age_histograms();  // interval 1 of 3: no halving yet
  ppe.age_histograms();  // interval 2 of 3
  EXPECT_EQ(ppe.histogram(0).count_of(p), 8u);
  ppe.age_histograms();  // interval 3: halving fires
  EXPECT_EQ(ppe.histogram(0).count_of(p), 4u);
}

TEST(Ppe, RejectsMismatchedPlan) {
  PpeHarness h;
  h.add_tenant(0, true, 10, kTierOnly(Tier::kSMem));
  PartitionEnforcer ppe(h.ctx, {});
  EXPECT_THROW(ppe.set_plan({1, 2, 3}), std::invalid_argument);
}

// ------------------------------------------------------------------ PP-M ----

PartitionPolicyMaker::Options ppm_opt(bool guard = true) {
  PartitionPolicyMaker::Options o;
  o.slo_guard = guard;
  o.manage_be = true;
  o.sac.min_buffer_for_update = 1000000;  // keep tests deterministic: no training
  return o;
}

IntervalCounters counters(std::uint64_t fmem, std::uint64_t smem) {
  IntervalCounters c;
  c.fmem_accesses = fmem;
  c.smem_accesses = smem;
  c.reads = fmem + smem;
  return c;
}

TEST(Ppm, GuardForcesFullExpansionOnViolation) {
  PartitionPolicyMaker ppm(1000, 200, milliseconds(20), {linear_model(0.001, 2000)},
                           ppm_opt());
  // First decision primes state; second carries a violating p99.
  ppm.decide(100, 0.1, counters(10, 90), milliseconds(1));
  const auto d = ppm.decide(100, 0.1, counters(10, 90), milliseconds(50));
  EXPECT_EQ(d.lc_pages, 300u);  // current + full +alpha (200)
}

TEST(Ppm, GuardHoldVetoesShrinkNearSlo) {
  PartitionPolicyMaker ppm(1000, 200, milliseconds(20), {linear_model(0.001, 2000)},
                           ppm_opt());
  ppm.decide(500, 0.5, counters(50, 50), milliseconds(1));
  // p99 at 60% of SLO: shrink must be vetoed regardless of the agent's whim.
  const auto d = ppm.decide(500, 0.5, counters(50, 50), milliseconds(12));
  EXPECT_GE(d.lc_pages, 500u);
}

TEST(Ppm, ShrinkIsRateLimited) {
  auto opt = ppm_opt(/*guard=*/false);
  opt.max_shrink_fraction = 0.1;
  PartitionPolicyMaker ppm(1000, 200, milliseconds(20), {linear_model(0.001, 2000)}, opt);
  ppm.decide(500, 0.5, counters(100, 0), milliseconds(1));
  for (int i = 0; i < 20; ++i) {
    const auto d = ppm.decide(500, 0.5, counters(100, 0), milliseconds(1));
    EXPECT_GE(d.lc_pages, 480u);  // at most 0.1 * 200 pages released per step
  }
}

TEST(Ppm, ReservationStaysWithinBounds) {
  auto opt = ppm_opt();
  opt.min_lc_pages = 50;
  PartitionPolicyMaker ppm(1000, 5000, milliseconds(20), {linear_model(0.001, 2000)}, opt);
  for (int i = 0; i < 30; ++i) {
    const auto d = ppm.decide(i % 2 ? 50 : 1000, 0.5, counters(50, 50),
                              i % 3 ? milliseconds(1) : milliseconds(100));
    EXPECT_GE(d.lc_pages, 50u);
    EXPECT_LE(d.lc_pages, 1000u);
    EXPECT_LE(d.lc_pages + [&] {
      std::uint64_t s = 0;
      for (auto b : d.be_pages) s += b;
      return s;
    }(), 1000u);
  }
}

TEST(Ppm, RewardFollowsEq2) {
  PartitionPolicyMaker ppm(1000, 200, milliseconds(20), {}, ppm_opt());
  ppm.decide(100, 0.25, counters(10, 10), milliseconds(1));
  ppm.decide(100, 0.25, counters(10, 10), milliseconds(1));   // compliant
  ppm.decide(100, 0.40, counters(10, 10), milliseconds(99));  // violation
  const auto& rewards = ppm.reward_history();
  ASSERT_EQ(rewards.size(), 2u);
  EXPECT_DOUBLE_EQ(rewards[0], 1.0 - 0.25);
  EXPECT_DOUBLE_EQ(rewards[1], PartitionPolicyMaker::Options{}.violation_penalty);
}

TEST(Ppm, BeSplitSumsToRemainder) {
  PartitionPolicyMaker ppm(1000, 100, milliseconds(20),
                           {linear_model(0.001, 2000), linear_model(0.0005, 2000)},
                           ppm_opt());
  const auto d = ppm.decide(300, 0.3, counters(10, 10), milliseconds(1));
  std::uint64_t sum = 0;
  for (auto b : d.be_pages) sum += b;
  EXPECT_EQ(sum, 1000u - d.lc_pages);
}

TEST(Ppm, LcOnlySkipsBeSplit) {
  auto opt = ppm_opt();
  opt.manage_be = false;
  PartitionPolicyMaker ppm(1000, 100, milliseconds(20), {linear_model(0.001, 2000)}, opt);
  const auto d = ppm.decide(300, 0.3, counters(10, 10), milliseconds(1));
  EXPECT_TRUE(d.be_pages.empty());
}

}  // namespace
}  // namespace mtat

namespace mtat {
namespace {

// ---------------------------------------------- joint-objective annealing ----

TEST(SaPartitioner, JointObjectiveSeesCoupledAllocations) {
  // Coupled metric: workload 0's performance *degrades* as workload 1 gets
  // pages (e.g. shared-bandwidth pressure). The per-workload API cannot
  // express this; the joint API must still optimize it.
  Rng rng(71);
  const auto joint = [](const std::vector<std::uint64_t>& alloc) {
    const double np0 = 0.3 + 1e-3 * static_cast<double>(alloc[0]) -
                       5e-4 * static_cast<double>(alloc[1]);
    const double np1 = 0.3 + 1e-3 * static_cast<double>(alloc[1]);
    return std::min(np0, np1);
  };
  SAOptions opt;
  opt.unit_pages = 10;
  opt.max_iterations = 6000;
  const SAResult r = anneal_partition(joint, {1000, 1000}, 600, opt, rng);
  // Optimum gives workload 0 substantially more than an uncoupled max-min
  // would (its NP is taxed by 1's allocation). Brute-force for reference:
  double best = 0;
  std::uint64_t best_a = 0;
  for (std::uint64_t a = 0; a <= 600; a += 10) {
    const double v = joint({a, 600 - a});
    if (v > best) {
      best = v;
      best_a = a;
    }
  }
  EXPECT_GE(r.objective, best * 0.97);
  EXPECT_NEAR(static_cast<double>(r.allocation[0]), static_cast<double>(best_a), 60.0);
}

TEST(SaPartitioner, JointObjectiveRespectsCaps) {
  Rng rng(72);
  SAOptions opt;
  opt.unit_pages = 5;
  const auto sum_np = [](const std::vector<std::uint64_t>& a) {
    return 1e-3 * static_cast<double>(a[0]);  // only workload 0 matters
  };
  const SAResult r = anneal_partition(sum_np, {50, 1000}, 600, opt, rng);
  EXPECT_LE(r.allocation[0], 55u);  // capped despite being the only useful slot
  EXPECT_THROW(anneal_partition(sum_np, {}, 10, opt, rng), std::invalid_argument);
}

}  // namespace
}  // namespace mtat

namespace mtat {
namespace {

TEST(Ppe, BandwidthBackoffPausesRefinement) {
  // §7 extension: with FMem's contention factor above the backoff threshold,
  // refinement must stop promoting into the saturated tier; below it, the
  // same exchange fires.
  PpeHarness h;
  h.add_tenant(0, true, 100, kFastestFirst);  // 64 FMem + 36 SMem
  PartitionEnforcer::Options opt;
  opt.bandwidth_backoff_factor = 1.5;
  PartitionEnforcer ppe(h.ctx, opt);
  const PageId hot = h.mem.pages_of(0)[80];
  for (int i = 0; i < 8; ++i) h.sampler.on_sampled_access(0, hot, AccessKind::kRead);
  h.mem.set_contention_factor(Tier::kFMem, 2.0);  // saturated
  h.engine.begin_interval(milliseconds(10));
  ppe.on_tick();
  EXPECT_EQ(h.mem.tier_of(hot), Tier::kSMem);  // promotion held back
  h.mem.set_contention_factor(Tier::kFMem, 1.0);  // pressure gone
  h.engine.begin_interval(milliseconds(10));
  ppe.on_tick();
  EXPECT_EQ(h.mem.tier_of(hot), Tier::kFMem);
}

}  // namespace
}  // namespace mtat
