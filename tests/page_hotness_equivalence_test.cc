// Differential test for the SoA PageHotness rewrite.
//
// RefHotness below is a direct transcription of the pre-SoA implementation:
// AoS entries (count/epoch/pos/tier/tracked), one std::vector per (tier, bin),
// aging by physically rotating the bin arrays, and a tier lookup through
// TieredMemory on every record. It is the executable spec of the old bin/list
// semantics — including the structural details that define pull ORDER:
// swap-remove on exit, append on entry, bin-1-into-bin-0 merge order on age.
//
// Both histograms listen on the same TieredMemory and ingest identical seeded
// access/migrate/age sequences; after every phase the SoA implementation must
// match the reference exactly — counts, bins, per-bin page order, pull order,
// and aggregate queries. Any divergence here would surface as a behavior
// change in every policy built on the histogram.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "telemetry/page_hotness.h"

namespace mtat {
namespace {

class RefHotness : public MigrationListener {
 public:
  static constexpr int kBins = PageHotness::kBins;

  explicit RefHotness(TieredMemory& mem, WorkloadId filter = kInvalidWorkload)
      : mem_(&mem), filter_(filter) {
    mem.add_migration_listener(this);
  }

  void seed_allocated_pages() {
    const auto seed_one = [this](PageId p) {
      ensure(p);
      Entry& e = entries_[p];
      if (e.tracked) return;
      e.tracked = true;
      e.count = 0;
      e.epoch = epoch_;
      push(p, static_cast<int>(mem_->tier_of(p)), 0);
      ++tracked_;
    };
    if (filter_ != kInvalidWorkload) {
      for (PageId p : mem_->pages_of(filter_)) seed_one(p);
    } else {
      for (PageId p = 0; p < mem_->page_count(); ++p) seed_one(p);
    }
  }

  void record_access(WorkloadId w, PageId p) {
    if (filter_ != kInvalidWorkload && w != filter_) return;
    ensure(p);
    Entry& e = entries_[p];
    const int tier = static_cast<int>(mem_->tier_of(p));
    const std::uint32_t eff = e.tracked ? effective(e) : 0;
    const int old_bin = PageHotness::bin_of(eff);
    const int new_bin = PageHotness::bin_of(eff + 1);
    if (!e.tracked) {
      e.tracked = true;
      ++tracked_;
      e.count = 1;
      e.epoch = epoch_;
      push(p, tier, new_bin);
      return;
    }
    e.count = eff + 1;
    e.epoch = epoch_;
    if (new_bin != old_bin || static_cast<int>(e.tier) != tier) {
      remove(p, e.tier, old_bin);
      push(p, tier, new_bin);
    }
  }

  void age() {
    ++epoch_;
    for (auto& tier_bins : bins_) {
      auto& b0 = tier_bins[0];
      for (PageId p : tier_bins[1]) {
        entries_[p].pos = static_cast<std::uint32_t>(b0.size());
        b0.push_back(p);
      }
      for (int b = 1; b + 1 < kBins; ++b) tier_bins[b] = std::move(tier_bins[b + 1]);
      tier_bins[kBins - 1].clear();
    }
  }

  std::uint32_t count_of(PageId p) const {
    return p < entries_.size() && entries_[p].tracked ? effective(entries_[p]) : 0;
  }
  int bin_of_page(PageId p) const {
    return p < entries_.size() && entries_[p].tracked
               ? PageHotness::bin_of(effective(entries_[p]))
               : -1;
  }

  std::vector<PageId> pull(TierId tier, std::size_t max_n, bool from_hot) const {
    std::vector<PageId> out;
    const auto& tier_bins = bins_[static_cast<int>(tier)];
    const auto collect = [&](int b) {
      for (PageId p : tier_bins[b]) {
        out.push_back(p);
        if (out.size() == max_n) return true;
      }
      return false;
    };
    if (max_n == 0) return out;
    if (from_hot) {
      for (int b = kBins - 1; b >= 1; --b)
        if (collect(b)) break;
    } else {
      for (int b = 0; b < kBins; ++b)
        if (collect(b)) break;
    }
    return out;
  }

  const std::vector<PageId>& bin_pages(TierId tier, int b) const {
    return bins_[static_cast<int>(tier)][b];
  }
  std::size_t tracked_pages() const { return tracked_; }
  std::uint32_t age_epoch() const { return epoch_; }

 private:
  struct Entry {
    std::uint32_t count = 0;
    std::uint32_t epoch = 0;
    std::uint32_t pos = 0;
    std::uint8_t tier = 0;
    bool tracked = false;
  };

  std::uint32_t effective(const Entry& e) const {
    const std::uint32_t shift = epoch_ - e.epoch;
    return shift >= 32 ? 0 : e.count >> shift;
  }
  void ensure(PageId p) {
    if (p >= entries_.size()) entries_.resize(static_cast<std::size_t>(p) + 1);
  }
  void push(PageId p, int tier, int bin) {
    auto& v = bins_[tier][bin];
    entries_[p].pos = static_cast<std::uint32_t>(v.size());
    entries_[p].tier = static_cast<std::uint8_t>(tier);
    v.push_back(p);
  }
  void remove(PageId p, int tier, int bin) {
    auto& v = bins_[tier][bin];
    const std::uint32_t pos = entries_[p].pos;
    v[pos] = v.back();
    entries_[v[pos]].pos = pos;
    v.pop_back();
  }
  void on_migration(PageId p, TierId, TierId to) override {
    if (p >= entries_.size()) return;
    Entry& e = entries_[p];
    if (!e.tracked) return;
    const int bin = PageHotness::bin_of(effective(e));
    remove(p, e.tier, bin);
    push(p, static_cast<int>(to), bin);
  }

  TieredMemory* mem_;
  WorkloadId filter_;
  std::vector<Entry> entries_;
  std::vector<PageId> bins_[2][kBins];
  std::size_t tracked_ = 0;
  std::uint32_t epoch_ = 0;
};

constexpr TierId kTiers[2] = {Tier::kFMem, Tier::kSMem};

void expect_equivalent(const RefHotness& ref, const PageHotness& soa, std::uint64_t page_count,
                       const char* where) {
  SCOPED_TRACE(where);
  ASSERT_EQ(ref.tracked_pages(), soa.tracked_pages());
  ASSERT_EQ(ref.age_epoch(), soa.age_epoch());
  for (TierId t : kTiers) {
    for (int b = 0; b < PageHotness::kBins; ++b) {
      SCOPED_TRACE(testing::Message() << "tier " << static_cast<int>(t) << " bin " << b);
      ASSERT_EQ(ref.bin_pages(t, b), soa.bin_pages(t, b));
      ASSERT_EQ(ref.bin_pages(t, b).size(), soa.bin_size(t, b));
    }
    // Pull ORDER must match, at every batch size shape: single page, small
    // batch (within the hottest/coldest bin), large batch (spans bins).
    for (std::size_t n : {std::size_t{1}, std::size_t{7}, std::size_t{256}, std::size_t{100000}}) {
      ASSERT_EQ(ref.pull(t, n, true), soa.hottest_in_tier(t, n));
      ASSERT_EQ(ref.pull(t, n, false), soa.coldest_in_tier(t, n));
    }
    const auto ref_hot = ref.pull(t, 1, true);
    ASSERT_EQ(ref_hot.empty() ? kInvalidPage : ref_hot.front(), soa.hottest_page(t));
    const auto ref_cold = ref.pull(t, 1, false);
    ASSERT_EQ(ref_cold.empty() ? kInvalidPage : ref_cold.front(), soa.coldest_page(t));
    std::uint64_t above = 0;
    for (int b = PageHotness::kBins - 1; b >= 0; --b) {
      above += ref.bin_pages(t, b).size();
      ASSERT_EQ(above, soa.pages_at_or_above(t, b));
    }
  }
  for (PageId p = 0; p < page_count; ++p) {
    ASSERT_EQ(ref.count_of(p), soa.count_of(p)) << "page " << p;
    ASSERT_EQ(ref.bin_of_page(p), soa.bin_of_page(p)) << "page " << p;
  }
}

struct Harness {
  static constexpr std::uint64_t kPages = 4096;

  Harness(WorkloadId filter, std::uint64_t seed)
      : mem(config()), ref(mem, filter), soa(mem, filter), rng(seed) {
    mem.allocate(0, kPages / 2, kFastestFirst);
    mem.allocate(1, kPages / 2, kFastestFirst);
  }

  static TieredMemory::Config config() {
    TieredMemory::Config c =
        TieredMemory::Config::two_tier(kPages / 4, kPages);
    return c;
  }

  void step() {
    const std::uint32_t op = rng.next_below(100);
    if (op < 78) {
      // Skewed accesses: most records hit a small hot set so counts climb
      // through many bins; the rest sweep the full range (bin 0 <-> 1 churn).
      const PageId p = op < 60 ? static_cast<PageId>(rng.next_below(kPages / 32))
                               : static_cast<PageId>(rng.next_below(kPages));
      const WorkloadId w = static_cast<WorkloadId>(rng.next_below(2));
      ref.record_access(w, p);
      soa.record_access(w, p);
    } else if (op < 90) {
      const PageId p = static_cast<PageId>(rng.next_below(kPages));
      const TierId to = rng.next_below(2) == 0 ? Tier::kFMem : Tier::kSMem;
      mem.migrate(p, to);  // both histograms observe via the listener
    } else if (op < 96) {
      // Exchange two pages in different tiers, when such a pair exists.
      const PageId a = static_cast<PageId>(rng.next_below(kPages));
      const PageId b = static_cast<PageId>(rng.next_below(kPages));
      if (mem.tier_of(a) != mem.tier_of(b)) mem.exchange(a, b);
    } else {
      ref.age();
      soa.age();
    }
  }

  TieredMemory mem;
  RefHotness ref;
  PageHotness soa;
  Rng rng;
};

TEST(PageHotnessEquivalence, RandomizedGlobalHistogram) {
  for (std::uint64_t seed : {11u, 222u, 3333u}) {
    Harness h(kInvalidWorkload, seed);
    h.ref.seed_allocated_pages();
    h.soa.seed_allocated_pages();
    expect_equivalent(h.ref, h.soa, Harness::kPages, "after seed");
    for (int round = 0; round < 8; ++round) {
      for (int i = 0; i < 4000; ++i) h.step();
      expect_equivalent(h.ref, h.soa, Harness::kPages, "after round");
    }
  }
}

TEST(PageHotnessEquivalence, RandomizedFilteredHistogram) {
  // Workload-filtered (PP-E style) histograms: records from the other
  // workload must be invisible, migrations of untracked pages ignored.
  Harness h(/*filter=*/1, 99);
  h.ref.seed_allocated_pages();
  h.soa.seed_allocated_pages();
  for (int round = 0; round < 6; ++round) {
    for (int i = 0; i < 4000; ++i) h.step();
    expect_equivalent(h.ref, h.soa, Harness::kPages, "after round");
  }
  EXPECT_EQ(h.soa.workload_filter(), 1);
}

TEST(PageHotnessEquivalence, LazyTrackingWithoutSeeding) {
  // No seed_allocated_pages: pages become tracked on first record only.
  Harness h(kInvalidWorkload, 7);
  for (int round = 0; round < 6; ++round) {
    for (int i = 0; i < 3000; ++i) h.step();
    expect_equivalent(h.ref, h.soa, Harness::kPages, "after round");
  }
  EXPECT_LE(h.soa.tracked_pages(), Harness::kPages);
}

TEST(PageHotnessEquivalence, DeepAgingCrossesTheRenormalizationSweep) {
  // The SoA layout stores 24-bit epochs and renormalizes every 2^16 ages;
  // the reference keeps full 32-bit epochs and never renormalizes. Drive
  // both through > 2^16 ages with records sprinkled in: effective counts,
  // bin structure, and pull order must stay identical across the sweep.
  Harness h(kInvalidWorkload, 1234);
  h.ref.seed_allocated_pages();
  h.soa.seed_allocated_pages();
  Rng rng(5);
  const int kAges = (1 << 16) + 50;
  for (int a = 0; a < kAges; ++a) {
    if (a % 512 == 0) {
      for (int i = 0; i < 64; ++i) {
        const PageId p = static_cast<PageId>(rng.next_below(Harness::kPages / 8));
        h.ref.record_access(0, p);
        h.soa.record_access(0, p);
      }
    }
    h.ref.age();
    h.soa.age();
    if (a == (1 << 16) - 2 || a == (1 << 16) + 49)
      expect_equivalent(h.ref, h.soa, Harness::kPages, "around renorm boundary");
  }
  EXPECT_EQ(h.soa.age_epoch(), static_cast<std::uint32_t>(kAges));
}

TEST(PageHotnessEquivalence, AgedOutPagesReadAsZeroInBothLayouts) {
  Harness h(kInvalidWorkload, 8);
  h.ref.seed_allocated_pages();
  h.soa.seed_allocated_pages();
  const PageId p = 3;
  for (int i = 0; i < 1000; ++i) {
    h.ref.record_access(0, p);
    h.soa.record_access(0, p);
  }
  ASSERT_GT(h.soa.count_of(p), 0u);
  for (int i = 0; i < 40; ++i) {  // shift >= 32: lazy halving bottoms out
    h.ref.age();
    h.soa.age();
  }
  EXPECT_EQ(h.soa.count_of(p), 0u);
  expect_equivalent(h.ref, h.soa, Harness::kPages, "after deep aging");
}

}  // namespace
}  // namespace mtat
