// Observability subsystem: metrics registry, trace recorder + Chrome export,
// run manifests, and the sim integration (registry-derived SimResult fields,
// trace events emitted by an instrumented run).
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.h"
#include "obs/manifest.h"
#include "obs/metrics.h"
#include "obs/names.h"
#include "obs/trace.h"
#include "sim/colocation_sim.h"
#include "sim/experiments.h"
#include "workloads/be/be_suite.h"

namespace mtat {
namespace {

bool contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

// ---------------------------------------------------------------- metrics --

TEST(Metrics, CounterAccumulatesFractionsAndResets) {
  obs::Counter c;
  EXPECT_EQ(c.value(), 0.0);
  c.inc();
  c.inc(2.5);
  EXPECT_DOUBLE_EQ(c.value(), 3.5);
  c.reset();
  EXPECT_EQ(c.value(), 0.0);
}

TEST(Metrics, GaugeLastWriteAndWatermark) {
  obs::Gauge g;
  g.set(5.0);
  g.set(2.0);
  EXPECT_EQ(g.value(), 2.0);  // last write wins
  g.set_max(1.0);
  EXPECT_EQ(g.value(), 2.0);  // watermark keeps the max
  g.set_max(9.0);
  EXPECT_EQ(g.value(), 9.0);
}

TEST(Metrics, HistogramRecordsDistribution) {
  obs::Histogram h;
  for (std::uint64_t v = 1; v <= 100; ++v) h.record(v);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_GT(h.mean(), 0.0);
  EXPECT_LE(h.min(), h.max());
  EXPECT_LE(h.percentile(50.0), h.percentile(99.0));
}

TEST(Metrics, RegistryReferencesAreStable) {
  obs::MetricsRegistry reg;
  obs::Counter& c = reg.counter("pages");
  obs::Gauge& g = reg.gauge("factor");
  // Registering many more metrics must not invalidate earlier references.
  // (Built with += rather than operator+: GCC 12's -Wrestrict false-positives
  // on inlined string operator+ chains at -O3.)
  for (int i = 0; i < 200; ++i) {
    std::string name = "c";
    name += std::to_string(i);
    reg.counter(name);
  }
  c.inc(7.0);
  g.set(3.0);
  EXPECT_EQ(reg.find_counter("pages")->value(), 7.0);
  EXPECT_EQ(reg.find_gauge("factor")->value(), 3.0);
  EXPECT_EQ(&reg.counter("pages"), &c);  // same object on re-lookup
}

TEST(Metrics, FindReturnsNullWhenMissing) {
  obs::MetricsRegistry reg;
  reg.counter("exists");
  EXPECT_NE(reg.find_counter("exists"), nullptr);
  EXPECT_EQ(reg.find_counter("missing"), nullptr);
  EXPECT_EQ(reg.find_gauge("exists"), nullptr);  // wrong kind
  EXPECT_EQ(reg.find_histogram("exists"), nullptr);
}

TEST(Metrics, WriteJsonCoversAllKinds) {
  obs::MetricsRegistry reg;
  reg.counter(obs::names::kMigrationPagesMoved).inc(42.0);
  reg.gauge(obs::names::kBwFmemFactor).set(1.5);
  reg.histogram(obs::names::kPpmDecideWallUs).record(10);
  std::ostringstream os;
  reg.write_json(os);
  const std::string s = os.str();
  EXPECT_TRUE(contains(s, "\"counters\""));
  EXPECT_TRUE(contains(s, "\"migration.pages_moved\":42"));
  EXPECT_TRUE(contains(s, "\"gauges\""));
  EXPECT_TRUE(contains(s, "\"bw.fmem_factor\":1.5"));
  EXPECT_TRUE(contains(s, "\"histograms\""));
  EXPECT_TRUE(contains(s, "\"count\":1"));
  EXPECT_TRUE(contains(s, "\"p99\""));
}

TEST(Metrics, WriteCsvOneRowPerScalar) {
  obs::MetricsRegistry reg;
  reg.counter("a").inc(1.0);
  reg.gauge("b").set(2.0);
  std::ostringstream os;
  reg.write_csv(os);
  const std::string s = os.str();
  EXPECT_TRUE(contains(s, "kind,name,field,value"));
  EXPECT_TRUE(contains(s, "counter,a,value,1"));
  EXPECT_TRUE(contains(s, "gauge,b,value,2"));
}

TEST(Json, EscapesSpecialCharacters) {
  EXPECT_EQ(obs::json_escape("a\"b\\c\n"), "a\\\"b\\\\c\\n");
  std::ostringstream os;
  obs::json_number(os, std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(os.str(), "null");  // NaN must not produce invalid JSON
}

// ------------------------------------------------------------------ trace --

// The recorder is a process-wide singleton; every test starts from a clean
// enabled state and leaves it disabled so the rest of the suite (and the
// MTAT_TRACE env hook) see no leftover events.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::trace().enable(64);
    obs::trace().clear();
    obs::trace().set_now(0);
    obs::trace().set_track(0);
  }
  void TearDown() override {
    obs::trace().clear();
    obs::trace().disable();
  }
};

TEST_F(TraceTest, DisabledTracingRecordsNoEvents) {
  obs::trace().disable();
  obs::trace().instant("a", "t");
  obs::trace().complete("b", "t", 0, 100);
  obs::trace().counter("c", "t", "k", 1.0);
  { obs::WallSpan span(&obs::trace(), "d", "t"); }
  EXPECT_EQ(obs::trace().size(), 0u);
  EXPECT_EQ(obs::trace().dropped(), 0u);
}

TEST_F(TraceTest, RecordsTypedEventsWithSimTimestamps) {
  obs::trace().set_now(1000);
  obs::trace().instant("tick", "sim", "k", 3.0);
  obs::trace().complete("span", "sim", 2000, 500, "pages", 7.0);
  obs::trace().counter("load", "sim", "rps", 12.0);
  ASSERT_EQ(obs::trace().size(), 3u);
  const auto events = obs::trace().snapshot();
  EXPECT_EQ(events[0].phase, 'i');
  EXPECT_EQ(events[0].ts, 1000u);
  EXPECT_EQ(events[0].arg1, 3.0);
  EXPECT_EQ(events[1].phase, 'X');
  EXPECT_EQ(events[1].ts, 2000u);
  EXPECT_EQ(events[1].dur, 500u);
  EXPECT_STREQ(events[1].arg1_name, "pages");
  EXPECT_EQ(events[2].phase, 'C');
}

TEST_F(TraceTest, RingOverwritesOldestAndCountsDropped) {
  obs::trace().enable(8);  // shrink the ring
  obs::trace().clear();
  for (int i = 0; i < 20; ++i)
    obs::trace().instant("e", "t", "i", static_cast<double>(i));
  EXPECT_EQ(obs::trace().size(), 8u);
  EXPECT_EQ(obs::trace().capacity(), 8u);
  EXPECT_EQ(obs::trace().dropped(), 12u);
  const auto events = obs::trace().snapshot();
  ASSERT_EQ(events.size(), 8u);
  for (std::size_t i = 0; i < events.size(); ++i)  // oldest survivor first
    EXPECT_EQ(events[i].arg1, static_cast<double>(12 + i));
}

TEST_F(TraceTest, ConcurrentRecordersClaimDistinctSlots) {
  // Record calls are the one TraceRecorder operation documented as
  // thread-safe: each push claims a distinct ring slot via the atomic write
  // cursor. Run under TSan (tools/check.sh tsan lane) this is the regression
  // test for that contract.
  constexpr int kThreads = 4;
  constexpr int kPerThread = 1000;
  obs::trace().enable(kThreads * kPerThread);  // no wrap: every event survives
  obs::trace().clear();
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kPerThread; ++i)
        obs::trace().instant("e", "t", "thread", static_cast<double>(t));
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(obs::trace().size(), static_cast<std::size_t>(kThreads * kPerThread));
  EXPECT_EQ(obs::trace().dropped(), 0u);
  // Every thread's events all landed: no slot was lost to a torn index.
  std::array<int, kThreads> per_thread{};
  for (const auto& e : obs::trace().snapshot())
    ++per_thread[static_cast<int>(e.arg1)];
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(per_thread[t], kPerThread);
}

TEST_F(TraceTest, ChromeJsonUsesMicrosecondTimestamps) {
  obs::trace().complete("mig", "mem", /*ts=*/2000, /*dur=*/3000, "pages", 4.0);
  obs::trace().set_now(5000);
  obs::trace().instant("dec", "policy");
  std::ostringstream os;
  obs::trace().write_chrome_json(os);
  const std::string s = os.str();
  EXPECT_TRUE(contains(s, "\"traceEvents\""));
  EXPECT_TRUE(contains(s, "\"name\":\"mig\""));
  EXPECT_TRUE(contains(s, "\"ph\":\"X\""));
  EXPECT_TRUE(contains(s, "\"ts\":2"));   // 2000 ns -> 2 us
  EXPECT_TRUE(contains(s, "\"dur\":3"));  // 3000 ns -> 3 us
  EXPECT_TRUE(contains(s, "\"ph\":\"i\""));
  EXPECT_TRUE(contains(s, "\"pages\":4"));
  EXPECT_TRUE(contains(s, "\"displayTimeUnit\""));
}

TEST_F(TraceTest, WallSpanFeedsMetricsAndTrace) {
  obs::MetricsRegistry reg;
  obs::Counter& sum = reg.counter(obs::names::kPolicyWallUs);
  obs::Histogram& hist = reg.histogram(obs::names::kPolicyWallUsHist);
  obs::trace().set_now(7000);
  { obs::WallSpan span(&obs::trace(), "work", "policy", &sum, &hist); }
  EXPECT_GT(sum.value(), 0.0);
  EXPECT_EQ(hist.count(), 1u);
  ASSERT_EQ(obs::trace().size(), 1u);
  const auto events = obs::trace().snapshot();
  EXPECT_EQ(events[0].phase, 'X');
  EXPECT_EQ(events[0].ts, 7000u);  // placed at sim time, wall duration
  EXPECT_STREQ(events[0].arg1_name, "wall_us");
}

// --------------------------------------------------------------- manifest --

TEST(Manifest, WritesSchemaAndFields) {
  obs::RunManifest m;
  m.tool = "unit_test";
  m.scale = "small";
  m.seed = 42;
  m.train_epochs = 5;
  m.add("policy", "mtat");
  std::ostringstream os;
  m.write_json(os);
  const std::string s = os.str();
  EXPECT_TRUE(contains(s, "\"schema\":\"mtat.run_manifest/1\""));
  EXPECT_TRUE(contains(s, "\"tool\":\"unit_test\""));
  EXPECT_TRUE(contains(s, "\"git_sha\""));
  EXPECT_TRUE(contains(s, "\"scale\":\"small\""));
  EXPECT_TRUE(contains(s, "\"seed\":42"));
  EXPECT_TRUE(contains(s, "\"train_epochs\":5"));
  EXPECT_TRUE(contains(s, "\"policy\":\"mtat\""));
  EXPECT_STRNE(obs::build_git_sha(), "");
}

TEST(Manifest, EmptyScaleReportsCustom) {
  obs::RunManifest m;
  m.tool = "cli";
  std::ostringstream os;
  m.write_json(os);
  EXPECT_TRUE(contains(os.str(), "\"scale\":\"custom\""));
}

// -------------------------------------------------------- sim integration --

SimConfig obs_tiny_config(PolicyKind policy) {
  SimConfig cfg;
  cfg.fmem = 32_MiB;
  cfg.smem = 512_MiB;
  cfg.lc = redis_config();
  cfg.lc.n_records = 30'000;
  cfg.be = be_suite(BEScale::kTest, 36_MiB, 4, 2);
  cfg.policy = policy;
  return cfg;
}

TEST(SimObservability, RegistryDerivedValuesMatchSimResult) {
  SimConfig cfg = obs_tiny_config(PolicyKind::kMemtis);
  ColocationSim sim(cfg);
  sim.run(LoadPattern::constant(cfg.lc.max_load_krps * 100.0), seconds(5));
  const SimResult r = sim.result();
  const obs::MetricsRegistry& reg = sim.metrics();
  // The SimResult overhead fields are views over the registry: the derived.*
  // gauges must carry exactly the same numbers.
  ASSERT_NE(reg.find_gauge(obs::names::kDerivedMigrationBytesPerSec), nullptr);
  ASSERT_NE(reg.find_gauge(obs::names::kDerivedPolicyWallUsPerInterval), nullptr);
  EXPECT_DOUBLE_EQ(reg.find_gauge(obs::names::kDerivedMigrationBytesPerSec)->value(),
                   r.migration_bytes_per_sec);
  EXPECT_DOUBLE_EQ(reg.find_gauge(obs::names::kDerivedPolicyWallUsPerInterval)->value(),
                   r.policy_wall_us_per_interval);
  // And the raw signals behind them are populated.
  ASSERT_NE(reg.find_counter(obs::names::kSimIntervals), nullptr);
  EXPECT_EQ(reg.find_counter(obs::names::kSimIntervals)->value(), 5.0);
  EXPECT_EQ(reg.find_counter(obs::names::kSimMeasuredIntervals)->value(), 5.0);
  EXPECT_GT(reg.find_counter(obs::names::kPolicyWallUs)->value(), 0.0);
  EXPECT_GT(reg.find_counter(obs::names::kMigrationPagesMoved)->value(), 0.0);  // displacement
  EXPECT_GT(reg.find_counter(obs::names::kQueueArrivals)->value(), 0.0);
  EXPECT_GT(r.policy_wall_us_per_interval, 0.0);
}

TEST(SimObservability, ResetStatsRebasesDerivedMetrics) {
  SimConfig cfg = obs_tiny_config(PolicyKind::kMemtis);
  ColocationSim sim(cfg);
  sim.run(LoadPattern::constant(cfg.lc.max_load_krps * 100.0), seconds(3), /*measure=*/false);
  sim.reset_stats();
  sim.run(LoadPattern::constant(cfg.lc.max_load_krps * 100.0), seconds(3));
  const SimResult r = sim.result();
  // Counters keep the warmup, but the derived per-interval view is rebased to
  // the measured phase: 3 measured intervals out of 6 total.
  EXPECT_EQ(sim.metrics().find_counter(obs::names::kSimIntervals)->value(), 6.0);
  EXPECT_EQ(sim.metrics().find_counter(obs::names::kSimMeasuredIntervals)->value(), 3.0);
  EXPECT_GT(r.policy_wall_us_per_interval, 0.0);
  EXPECT_DOUBLE_EQ(sim.metrics().find_gauge(obs::names::kDerivedPolicyWallUsPerInterval)->value(),
                   r.policy_wall_us_per_interval);
}

TEST(SimObservability, MtatPolicyPublishesRlAndPpmMetrics) {
  SimConfig cfg = obs_tiny_config(PolicyKind::kMtatFull);
  ColocationSim sim(cfg);
  // The SAC agent only starts updating once its replay buffer holds 50
  // samples (one per interval), so run past that warmup.
  sim.run(LoadPattern::constant(cfg.lc.max_load_krps * 200.0), seconds(55));
  const obs::MetricsRegistry& reg = sim.metrics();
  ASSERT_NE(reg.find_counter(obs::names::kPpmDecisions), nullptr);
  EXPECT_GT(reg.find_counter(obs::names::kPpmDecisions)->value(), 0.0);
  ASSERT_NE(reg.find_counter(obs::names::kPpePlans), nullptr);
  EXPECT_GT(reg.find_counter(obs::names::kPpePlans)->value(), 0.0);
  ASSERT_NE(reg.find_counter(obs::names::kRlUpdates), nullptr);
  EXPECT_GT(reg.find_counter(obs::names::kRlUpdates)->value(), 0.0);
  ASSERT_NE(reg.find_histogram(obs::names::kPpmDecideWallUs), nullptr);
  EXPECT_GT(reg.find_histogram(obs::names::kPpmDecideWallUs)->count(), 0u);
  ASSERT_NE(reg.find_gauge(obs::names::kMtatLcQuotaPages), nullptr);
}

TEST_F(TraceTest, InstrumentedRunEmitsMigrationPolicyAndIntervalSpans) {
  // The acceptance scenario: a traced run must contain migration spans,
  // policy-decision events, and interval spans.
  SimConfig cfg = obs_tiny_config(PolicyKind::kMemtis);
  obs::trace().enable();  // default capacity; TraceTest shrank it to 64
  obs::trace().clear();
  ColocationSim sim(cfg);
  sim.run(LoadPattern::constant(cfg.lc.max_load_krps * 100.0), seconds(5));
  const auto events = obs::trace().snapshot();
  auto count_named = [&](const char* name) {
    return std::count_if(events.begin(), events.end(), [&](const obs::TraceEvent& e) {
      return std::string(e.name) == name;
    });
  };
  EXPECT_GE(count_named(obs::names::kEvInterval), 5);           // one 'X' span per interval
  EXPECT_GE(count_named(obs::names::kEvPolicyOnInterval), 5); // wall span per rollover
  EXPECT_GT(count_named(obs::names::kEvMigration), 0);          // displacement moved pages
  // And the export of a real run is well-formed Chrome JSON.
  std::ostringstream os;
  obs::trace().write_chrome_json(os);
  EXPECT_TRUE(contains(os.str(), "\"traceEvents\""));
  EXPECT_TRUE(contains(os.str(), "\"name\":\"interval\""));
}

TEST(SimObservability, UntracedRunRecordsNoEvents) {
  // Tracing is default-off: a full instrumented run must leave the global
  // recorder empty (the near-zero disabled cost contract).
  obs::trace().clear();
  obs::trace().disable();
  SimConfig cfg = obs_tiny_config(PolicyKind::kMemtis);
  ColocationSim sim(cfg);
  sim.run(LoadPattern::constant(cfg.lc.max_load_krps * 100.0), seconds(3));
  EXPECT_EQ(obs::trace().size(), 0u);
}

}  // namespace
}  // namespace mtat
