// Tests for load patterns, latency recording, and the M/G/k queueing engine —
// including a property check of the queue against M/M/1 theory, which is the
// mechanism every latency figure in the reproduction rests on.
#include <gtest/gtest.h>

#include <cmath>

#include "loadgen/load_pattern.h"
#include "loadgen/queue_sim.h"

namespace mtat {
namespace {

// ------------------------------------------------------------ patterns ----

TEST(LoadPattern, RejectsBadSteps) {
  EXPECT_THROW(LoadPattern({}), std::invalid_argument);
  EXPECT_THROW(LoadPattern({{0, 5.0}}), std::invalid_argument);
  EXPECT_THROW(LoadPattern({{seconds(1), -1.0}}), std::invalid_argument);
}

TEST(LoadPattern, StepLookup) {
  LoadPattern p({{seconds(10), 100.0}, {seconds(5), 200.0}});
  EXPECT_DOUBLE_EQ(p.rate_at(0), 100.0);
  EXPECT_DOUBLE_EQ(p.rate_at(seconds(10) - 1), 100.0);
  EXPECT_DOUBLE_EQ(p.rate_at(seconds(10)), 200.0);
  EXPECT_DOUBLE_EQ(p.rate_at(seconds(100)), 200.0);  // persists past the end
  EXPECT_EQ(p.total_length(), seconds(15));
}

TEST(LoadPattern, Figure7Shape) {
  const LoadPattern p = LoadPattern::figure7(1000.0);
  EXPECT_EQ(p.total_length(), seconds(240));
  EXPECT_DOUBLE_EQ(p.rate_at(seconds(10)), 200.0);   // 20%
  EXPECT_DOUBLE_EQ(p.rate_at(seconds(70)), 800.0);   // 80%
  EXPECT_DOUBLE_EQ(p.rate_at(seconds(100)), 1000.0); // plateau 80..140
  EXPECT_DOUBLE_EQ(p.rate_at(seconds(139)), 1000.0);
  EXPECT_DOUBLE_EQ(p.rate_at(seconds(150)), 800.0);
  EXPECT_DOUBLE_EQ(p.rate_at(seconds(230)), 200.0);
}

TEST(LoadPattern, StaircaseAndConstant) {
  const LoadPattern s = LoadPattern::staircase(100.0, {0.25, 0.5, 1.0}, seconds(2));
  EXPECT_DOUBLE_EQ(s.rate_at(seconds(1)), 25.0);
  EXPECT_DOUBLE_EQ(s.rate_at(seconds(3)), 50.0);
  EXPECT_DOUBLE_EQ(s.rate_at(seconds(5)), 100.0);
  EXPECT_DOUBLE_EQ(LoadPattern::constant(42.0).rate_at(seconds(99)), 42.0);
}

// ------------------------------------------------------ LatencyRecorder ----

TEST(LatencyRecorder, WindowsByArrivalTime) {
  LatencyRecorder rec(seconds(1), milliseconds(10));
  rec.record(milliseconds(500), microseconds(100));
  rec.record(seconds(1) + 1, microseconds(200));
  rec.record(seconds(2) + 1, microseconds(300));
  const auto p99 = rec.p99_series();
  ASSERT_EQ(p99.size(), 3u);
  EXPECT_NEAR(static_cast<double>(p99[0]), 100'000, 4000);
  EXPECT_NEAR(static_cast<double>(p99[2]), 300'000, 11000);
}

TEST(LatencyRecorder, ViolationAccounting) {
  LatencyRecorder rec(seconds(1), milliseconds(1));
  rec.record(0, microseconds(900));
  rec.record(0, microseconds(1100));
  rec.record(0, microseconds(1200));
  EXPECT_EQ(rec.total_requests(), 3u);
  EXPECT_EQ(rec.slo_violations(), 2u);
  EXPECT_NEAR(rec.violation_rate(), 2.0 / 3.0, 1e-12);
}

TEST(LatencyRecorder, CollectIntervalResets) {
  LatencyRecorder rec(seconds(1), milliseconds(1));
  rec.record(0, 1000);
  EXPECT_EQ(rec.collect_interval().count(), 1u);
  EXPECT_EQ(rec.collect_interval().count(), 0u);
}

// -------------------------------------------------------------- QueueSim ----

LCConfig queue_test_config(int threads) {
  LCConfig c = redis_config();
  c.n_records = 20'000;
  c.threads = threads;
  return c;
}

TEST(QueueSim, RequiresPattern) {
  TieredMemory::Config mc =
      TieredMemory::Config::two_tier(1, 1 << 16);
  TieredMemory mem(mc);
  LCWorkload wl(mem, 0, queue_test_config(1), kTierOnly(Tier::kSMem), 1);
  QueueSim q(wl, seconds(1), 1);
  EXPECT_THROW(q.run_until(seconds(1)), std::logic_error);
}

TEST(QueueSim, ThroughputMatchesOfferedLoadBelowSaturation) {
  TieredMemory::Config mc =
      TieredMemory::Config::two_tier(1, 1 << 16);
  TieredMemory mem(mc);
  LCWorkload wl(mem, 0, queue_test_config(1), kTierOnly(Tier::kSMem), 2);
  QueueSim q(wl, seconds(1), 3);
  const LoadPattern pat = LoadPattern::constant(2000.0);
  q.set_pattern(&pat, 0);
  q.run_until(seconds(10));
  EXPECT_NEAR(static_cast<double>(q.completed()), 20000.0, 600.0);
}

// Property: open-loop M/M/1-ish sojourn time follows ~S/(1-u) scaling. Our
// service times are nearly deterministic (M/D/1), whose mean wait is half
// M/M/1's, so check the band between the two.
class QueueUtilizationSweep : public ::testing::TestWithParam<double> {};

TEST_P(QueueUtilizationSweep, MeanSojournWithinTheoryBand) {
  const double u = GetParam();
  TieredMemory::Config mc =
      TieredMemory::Config::two_tier(1, 1 << 16);
  TieredMemory mem(mc);
  LCWorkload wl(mem, 0, queue_test_config(1), kTierOnly(Tier::kSMem), 4);
  const double s = static_cast<double>(wl.ideal_service_time(Tier::kSMem));  // ns
  const double lambda = u * 1e9 / s;
  QueueSim q(wl, seconds(100), 5);
  const LoadPattern pat = LoadPattern::constant(lambda);
  q.set_pattern(&pat, 0);
  q.run_until(seconds(40));
  const auto& windows = q.recorder().windows();
  ASSERT_FALSE(windows.empty());
  const double mean = windows[0].mean();
  const double mm1 = s / (1.0 - u);
  const double md1 = s * (1.0 + u / (2.0 * (1.0 - u)));
  EXPECT_GT(mean, md1 * 0.8) << "u=" << u;
  EXPECT_LT(mean, mm1 * 1.2) << "u=" << u;
}

INSTANTIATE_TEST_SUITE_P(Utilizations, QueueUtilizationSweep,
                         ::testing::Values(0.3, 0.5, 0.7, 0.9));

TEST(QueueSim, LatencyDivergesAboveSaturation) {
  TieredMemory::Config mc =
      TieredMemory::Config::two_tier(1, 1 << 16);
  TieredMemory mem(mc);
  LCWorkload wl(mem, 0, queue_test_config(1), kTierOnly(Tier::kSMem), 6);
  const double s = static_cast<double>(wl.ideal_service_time(Tier::kSMem));
  QueueSim q(wl, seconds(1), 7);
  const LoadPattern pat = LoadPattern::constant(1.3 * 1e9 / s);  // 130% load
  q.set_pattern(&pat, 0);
  q.run_until(seconds(20));
  const auto p99 = q.recorder().p99_series();
  // Sojourn must grow roughly linearly with time under overload.
  EXPECT_GT(p99.back(), 10 * p99.front());
  EXPECT_GT(p99.back(), seconds(1));  // seconds of backlog after 20 s at 130%
}

TEST(QueueSim, MultiServerOutpacesSingleServer) {
  TieredMemory::Config mc =
      TieredMemory::Config::two_tier(1, 1 << 17);
  TieredMemory mem(mc);
  LCWorkload wl1(mem, 0, queue_test_config(1), kTierOnly(Tier::kSMem), 8);
  // Same per-request service time (max load scaled with the thread count),
  // eight servers instead of one.
  LCConfig cfg8 = queue_test_config(8);
  cfg8.max_load_krps *= 8;
  LCWorkload wl8(mem, 1, cfg8, kTierOnly(Tier::kSMem), 8);
  // Same offered load near single-server saturation.
  const double s = static_cast<double>(wl1.ideal_service_time(Tier::kSMem));
  const double lambda = 0.95 * 1e9 / s;
  QueueSim q1(wl1, seconds(1), 9), q8(wl8, seconds(1), 9);
  const LoadPattern pat = LoadPattern::constant(lambda);
  q1.set_pattern(&pat, 0);
  q8.set_pattern(&pat, 0);
  q1.run_until(seconds(10));
  q8.run_until(seconds(10));
  EXPECT_LT(q8.recorder().windows()[5].mean(), q1.recorder().windows()[5].mean());
}

TEST(QueueSim, IntervalCompletionCounter) {
  TieredMemory::Config mc =
      TieredMemory::Config::two_tier(1, 1 << 16);
  TieredMemory mem(mc);
  LCWorkload wl(mem, 0, queue_test_config(1), kTierOnly(Tier::kSMem), 10);
  QueueSim q(wl, seconds(1), 11);
  const LoadPattern pat = LoadPattern::constant(1000.0);
  q.set_pattern(&pat, 0);
  q.run_until(seconds(1));
  const auto first = q.take_interval_completed();
  EXPECT_NEAR(static_cast<double>(first), 1000.0, 150.0);
  EXPECT_EQ(q.take_interval_completed(), 0u);
}

TEST(QueueSim, ZeroRatePatternServesNothing) {
  TieredMemory::Config mc =
      TieredMemory::Config::two_tier(1, 1 << 16);
  TieredMemory mem(mc);
  LCWorkload wl(mem, 0, queue_test_config(1), kTierOnly(Tier::kSMem), 12);
  QueueSim q(wl, seconds(1), 13);
  const LoadPattern pat = LoadPattern::constant(0.0);
  q.set_pattern(&pat, 0);
  q.run_until(seconds(5));
  EXPECT_EQ(q.completed(), 0u);
}

}  // namespace
}  // namespace mtat

namespace mtat {
namespace {

TEST(QueueSim, PatternSwapMidRunTakesEffect) {
  TieredMemory::Config mc =
      TieredMemory::Config::two_tier(1, 1 << 16);
  TieredMemory mem(mc);
  LCWorkload wl(mem, 0, queue_test_config(1), kTierOnly(Tier::kSMem), 30);
  QueueSim q(wl, seconds(1), 31);
  const LoadPattern slow = LoadPattern::constant(500.0);
  const LoadPattern fast = LoadPattern::constant(4000.0);
  q.set_pattern(&slow, 0);
  q.run_until(seconds(4));
  const auto at_slow = q.completed();
  q.set_pattern(&fast, seconds(4));
  q.run_until(seconds(8));
  const auto in_fast = q.completed() - at_slow;
  EXPECT_NEAR(static_cast<double>(at_slow), 2000.0, 300.0);
  EXPECT_NEAR(static_cast<double>(in_fast), 16000.0, 900.0);
}

}  // namespace
}  // namespace mtat
