// Seed-determinism regression: two ColocationSim runs with identical configs
// and seeds must be bit-identical — same SimResult, same metric registries.
// This is the property the mtat_lint `nondet` rule exists to protect; the test
// catches what a banned-token scan cannot (e.g. iteration over a container
// with nondeterministic order feeding a decision).
//
// The only sanctioned exception is the wall-clock domain: policy wall time is
// measured with steady_clock on the host, so "*wall*" metrics (and the
// SimResult field derived from them) legitimately differ between runs.
// obs::names::is_wall_time_metric() names exactly that set.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/mtat_policy.h"
#include "obs/names.h"
#include "policy/memtis_policy.h"
#include "sim/colocation_sim.h"
#include "sim/experiments.h"
#include "telemetry/page_hotness.h"
#include "workloads/be/be_suite.h"

namespace mtat {
namespace {

SimConfig tiny_config(PolicyKind policy) {
  SimConfig cfg;
  cfg.fmem = 32_MiB;
  cfg.smem = 512_MiB;
  cfg.lc = redis_config();
  cfg.lc.n_records = 30'000;
  cfg.be = be_suite(BEScale::kTest, 36_MiB, 4, 2);
  cfg.policy = policy;
  cfg.bandwidth.enabled = true;  // the contention fixed point must replay too
  cfg.seed = 20240806;
  return cfg;
}

SimResult run_once(const SimConfig& cfg, obs::MetricsRegistry** registry_out,
                   ColocationSim& sim) {
  const LoadPattern pat = LoadPattern::constant(cfg.lc.max_load_krps * 1000.0 * 0.5);
  sim.run(pat, seconds(8));
  *registry_out = &sim.metrics();
  return sim.result();
}

void expect_identical_results(const SimResult& a, const SimResult& b) {
  ASSERT_EQ(a.series.size(), b.series.size());
  for (std::size_t i = 0; i < a.series.size(); ++i) {
    const TimePoint& x = a.series[i];
    const TimePoint& y = b.series[i];
    EXPECT_EQ(x.t_sec, y.t_sec) << "interval " << i;
    EXPECT_EQ(x.offered_rps, y.offered_rps) << "interval " << i;
    EXPECT_EQ(x.lc_p99_ms, y.lc_p99_ms) << "interval " << i;
    EXPECT_EQ(x.lc_throughput_rps, y.lc_throughput_rps) << "interval " << i;
    EXPECT_EQ(x.lc_fmem_ratio, y.lc_fmem_ratio) << "interval " << i;
    EXPECT_EQ(x.lc_fmem_share, y.lc_fmem_share) << "interval " << i;
    EXPECT_EQ(x.be_fmem_share, y.be_fmem_share) << "interval " << i;
    EXPECT_EQ(x.be_throughput, y.be_throughput) << "interval " << i;
  }
  EXPECT_EQ(a.lc_p99_ms, b.lc_p99_ms);
  EXPECT_EQ(a.slo_violation_rate, b.slo_violation_rate);
  EXPECT_EQ(a.lc_completed, b.lc_completed);
  EXPECT_EQ(a.be_rate, b.be_rate);
  EXPECT_EQ(a.be_np, b.be_np);
  EXPECT_EQ(a.fairness, b.fairness);
  EXPECT_EQ(a.be_total_throughput, b.be_total_throughput);
  EXPECT_EQ(a.be_mean_np, b.be_mean_np);
  EXPECT_EQ(a.migration_bytes_per_sec, b.migration_bytes_per_sec);
  // a.policy_wall_us_per_interval is host wall time — exempt by design.
}

void expect_identical_registries(const obs::MetricsRegistry& a,
                                 const obs::MetricsRegistry& b) {
  for (const char* name : obs::names::kAllMetricNames) {
    if (obs::names::is_wall_time_metric(name)) continue;
    SCOPED_TRACE(name);
    const obs::Counter* ca = a.find_counter(name);
    const obs::Counter* cb = b.find_counter(name);
    ASSERT_EQ(ca == nullptr, cb == nullptr);
    if (ca != nullptr) {
      EXPECT_EQ(ca->value(), cb->value());
    }
    const obs::Gauge* ga = a.find_gauge(name);
    const obs::Gauge* gb = b.find_gauge(name);
    ASSERT_EQ(ga == nullptr, gb == nullptr);
    if (ga != nullptr) {
      EXPECT_EQ(ga->value(), gb->value());
    }
    const obs::Histogram* ha = a.find_histogram(name);
    const obs::Histogram* hb = b.find_histogram(name);
    ASSERT_EQ(ha == nullptr, hb == nullptr);
    if (ha != nullptr) {
      EXPECT_EQ(ha->count(), hb->count());
      EXPECT_EQ(ha->mean(), hb->mean());
      EXPECT_EQ(ha->min(), hb->min());
      EXPECT_EQ(ha->max(), hb->max());
      EXPECT_EQ(ha->percentile(99.0), hb->percentile(99.0));
    }
  }
}

// Full structural dump of one histogram: tracked/epoch plus every (tier, bin)
// page sequence in bin order. Comparing the *sequences* — not just sizes —
// is what catches iteration-order nondeterminism in the SoA bin vectors:
// pulls and aging observe pages in exactly this order, so any divergence here
// eventually becomes a divergent migration decision.
std::string hotness_fingerprint(const PageHotness& h) {
  std::ostringstream os;
  os << "tracked=" << h.tracked_pages() << " epoch=" << h.age_epoch();
  for (std::size_t t = 0; t < h.tier_count(); ++t) {
    for (int b = 0; b < PageHotness::kBins; ++b) {
      const std::vector<PageId>& v = h.bin_pages(static_cast<TierId>(t), b);
      if (v.empty()) continue;
      os << " " << t << ":" << b << "=";
      for (PageId p : v) os << p << ",";
    }
  }
  return os.str();
}

// Every histogram a sim's policy maintains, in a fixed order. MemtisPolicy
// holds one unified histogram; MtatPolicy holds one per tenant inside PP-E.
std::vector<std::string> sim_hotness_fingerprints(ColocationSim& sim) {
  std::vector<std::string> out;
  if (auto* memtis = dynamic_cast<MemtisPolicy*>(&sim.policy())) {
    out.push_back(hotness_fingerprint(memtis->histogram()));
  } else if (auto* mtat = dynamic_cast<MtatPolicy*>(&sim.policy())) {
    PartitionEnforcer& ppe = mtat->ppe();
    for (std::size_t i = 0; i < ppe.histogram_count(); ++i) {
      out.push_back(hotness_fingerprint(ppe.histogram(i)));
    }
  }
  return out;
}

class SameSeedRuns : public ::testing::TestWithParam<PolicyKind> {};

TEST_P(SameSeedRuns, AreBitIdentical) {
  const SimConfig cfg = tiny_config(GetParam());
  ColocationSim sim1(cfg);
  ColocationSim sim2(cfg);
  obs::MetricsRegistry* reg1 = nullptr;
  obs::MetricsRegistry* reg2 = nullptr;
  const SimResult r1 = run_once(cfg, &reg1, sim1);
  const SimResult r2 = run_once(cfg, &reg2, sim2);
  expect_identical_results(r1, r2);
  expect_identical_registries(*reg1, *reg2);

  // The histogram internals must replay too — identical end results with
  // divergent bin state would mean a latent nondeterminism waiting for a
  // longer run to surface it.
  const std::vector<std::string> fp1 = sim_hotness_fingerprints(sim1);
  const std::vector<std::string> fp2 = sim_hotness_fingerprints(sim2);
  ASSERT_FALSE(fp1.empty()) << "policy exposes no histogram to fingerprint";
  EXPECT_EQ(fp1, fp2);
}

// kMtatFull exercises the full stack (SAC updates, PP-M/PP-E, migration);
// kMemtis covers the frequency-threshold baseline path.
INSTANTIATE_TEST_SUITE_P(Policies, SameSeedRuns,
                         ::testing::Values(PolicyKind::kMtatFull, PolicyKind::kMemtis),
                         [](const auto& info) { return policy_name(info.param); });

// A different seed must actually change behaviour — otherwise the test above
// would pass trivially with the seed being ignored.
TEST(SameSeedRuns, DifferentSeedDiverges) {
  SimConfig cfg = tiny_config(PolicyKind::kMtatFull);
  ColocationSim sim1(cfg);
  cfg.seed = 999;
  ColocationSim sim2(cfg);
  const LoadPattern pat = LoadPattern::constant(cfg.lc.max_load_krps * 1000.0 * 0.5);
  sim1.run(pat, seconds(8));
  sim2.run(pat, seconds(8));
  EXPECT_NE(sim1.result().lc_p99_ms, sim2.result().lc_p99_ms);
}

// The ParallelRunner determinism contract (DESIGN.md §11) extended down to
// histogram internals: a fleet of sims run with jobs=1 (the serial reference
// path, MTAT_JOBS=1) and jobs=4 must produce bit-identical results AND
// bit-identical bin-occupancy dumps. Worker scheduling must never leak into
// the SoA bin order.
TEST(JobCountInvariance, HotnessStateMatchesAcrossJobsOneAndFour) {
  struct Probe {
    SimResult result;
    std::vector<std::string> hotness;
  };
  const auto run_fleet = [](int jobs) {
    const PolicyKind kinds[] = {PolicyKind::kMemtis, PolicyKind::kMtatFull};
    std::vector<Probe> probes(std::size(kinds));
    std::vector<experiments::RunSpec> specs;
    for (std::size_t i = 0; i < std::size(kinds); ++i) {
      specs.push_back({policy_name(kinds[i]), [&probes, &kinds, i](obs::RunContext& ctx) {
                         SimConfig cfg = tiny_config(kinds[i]);
                         ColocationSim sim(cfg, &ctx);
                         const LoadPattern pat =
                             LoadPattern::constant(cfg.lc.max_load_krps * 1000.0 * 0.5);
                         sim.run(pat, seconds(4));
                         probes[i] = {sim.result(), sim_hotness_fingerprints(sim)};
                       }});
    }
    experiments::ParallelRunner runner(jobs);
    runner.run_all(specs);
    return probes;
  };
  const std::vector<Probe> serial = run_fleet(1);
  const std::vector<Probe> parallel = run_fleet(4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    SCOPED_TRACE("spec " + std::to_string(i));
    expect_identical_results(serial[i].result, parallel[i].result);
    ASSERT_FALSE(serial[i].hotness.empty());
    EXPECT_EQ(serial[i].hotness, parallel[i].hotness);
  }
}

}  // namespace
}  // namespace mtat
