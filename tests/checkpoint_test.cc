// Checkpoint/restore determinism (DESIGN.md §17): a ColocationSim snapshot is
// its config plus the op journal, and restore() replays that journal into a
// fresh instance. Under the determinism contract the replay must reconstruct
// the sim bit-exactly: continuing a restored sim produces the same SimResult,
// the same metric registry (minus wall-time metrics), the same structural
// fingerprint, and the same PageHotness bin-page sequences as the original
// running uninterrupted. This is the property the cluster warm-restart path
// leans on — a crashed node replays its checkpoint and must rejoin the fleet
// indistinguishable from a node that never crashed.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/mtat_policy.h"
#include "obs/names.h"
#include "policy/memtis_policy.h"
#include "sim/colocation_sim.h"
#include "telemetry/page_hotness.h"
#include "workloads/be/be_suite.h"

namespace mtat {
namespace {

SimConfig tiny_config(PolicyKind policy) {
  SimConfig cfg;
  cfg.fmem = 32_MiB;
  cfg.smem = 512_MiB;
  cfg.lc = redis_config();
  cfg.lc.n_records = 30'000;
  cfg.be = be_suite(BEScale::kTest, 36_MiB, 4, 2);
  cfg.policy = policy;
  cfg.bandwidth.enabled = true;  // the contention fixed point must replay too
  cfg.seed = 20240807;
  return cfg;
}

void expect_identical_results(const SimResult& a, const SimResult& b) {
  ASSERT_EQ(a.series.size(), b.series.size());
  for (std::size_t i = 0; i < a.series.size(); ++i) {
    const TimePoint& x = a.series[i];
    const TimePoint& y = b.series[i];
    EXPECT_EQ(x.t_sec, y.t_sec) << "interval " << i;
    EXPECT_EQ(x.offered_rps, y.offered_rps) << "interval " << i;
    EXPECT_EQ(x.lc_p99_ms, y.lc_p99_ms) << "interval " << i;
    EXPECT_EQ(x.lc_throughput_rps, y.lc_throughput_rps) << "interval " << i;
    EXPECT_EQ(x.lc_fmem_ratio, y.lc_fmem_ratio) << "interval " << i;
    EXPECT_EQ(x.lc_fmem_share, y.lc_fmem_share) << "interval " << i;
    EXPECT_EQ(x.be_fmem_share, y.be_fmem_share) << "interval " << i;
    EXPECT_EQ(x.be_throughput, y.be_throughput) << "interval " << i;
  }
  EXPECT_EQ(a.lc_p99_ms, b.lc_p99_ms);
  EXPECT_EQ(a.slo_violation_rate, b.slo_violation_rate);
  EXPECT_EQ(a.lc_completed, b.lc_completed);
  EXPECT_EQ(a.be_rate, b.be_rate);
  EXPECT_EQ(a.be_np, b.be_np);
  EXPECT_EQ(a.fairness, b.fairness);
  EXPECT_EQ(a.be_total_throughput, b.be_total_throughput);
  EXPECT_EQ(a.be_mean_np, b.be_mean_np);
  EXPECT_EQ(a.migration_bytes_per_sec, b.migration_bytes_per_sec);
  // a.policy_wall_us_per_interval is host wall time — exempt by design.
}

void expect_identical_registries(const obs::MetricsRegistry& a,
                                 const obs::MetricsRegistry& b) {
  for (const char* name : obs::names::kAllMetricNames) {
    if (obs::names::is_wall_time_metric(name)) continue;
    SCOPED_TRACE(name);
    const obs::Counter* ca = a.find_counter(name);
    const obs::Counter* cb = b.find_counter(name);
    ASSERT_EQ(ca == nullptr, cb == nullptr);
    if (ca != nullptr) {
      EXPECT_EQ(ca->value(), cb->value());
    }
    const obs::Gauge* ga = a.find_gauge(name);
    const obs::Gauge* gb = b.find_gauge(name);
    ASSERT_EQ(ga == nullptr, gb == nullptr);
    if (ga != nullptr) {
      EXPECT_EQ(ga->value(), gb->value());
    }
    const obs::Histogram* ha = a.find_histogram(name);
    const obs::Histogram* hb = b.find_histogram(name);
    ASSERT_EQ(ha == nullptr, hb == nullptr);
    if (ha != nullptr) {
      EXPECT_EQ(ha->count(), hb->count());
      EXPECT_EQ(ha->mean(), hb->mean());
      EXPECT_EQ(ha->min(), hb->min());
      EXPECT_EQ(ha->max(), hb->max());
      EXPECT_EQ(ha->percentile(99.0), hb->percentile(99.0));
    }
  }
}

// Same structural dump as determinism_test.cc: comparing bin-page *sequences*
// catches iteration-order divergence that identical aggregates would hide.
std::string hotness_fingerprint(const PageHotness& h) {
  std::ostringstream os;
  os << "tracked=" << h.tracked_pages() << " epoch=" << h.age_epoch();
  for (std::size_t t = 0; t < h.tier_count(); ++t) {
    for (int b = 0; b < PageHotness::kBins; ++b) {
      const std::vector<PageId>& v = h.bin_pages(static_cast<TierId>(t), b);
      if (v.empty()) continue;
      os << " " << t << ":" << b << "=";
      for (PageId p : v) os << p << ",";
    }
  }
  return os.str();
}

std::vector<std::string> sim_hotness_fingerprints(ColocationSim& sim) {
  std::vector<std::string> out;
  if (auto* memtis = dynamic_cast<MemtisPolicy*>(&sim.policy())) {
    out.push_back(hotness_fingerprint(memtis->histogram()));
  } else if (auto* mtat = dynamic_cast<MtatPolicy*>(&sim.policy())) {
    PartitionEnforcer& ppe = mtat->ppe();
    for (std::size_t i = 0; i < ppe.histogram_count(); ++i) {
      out.push_back(hotness_fingerprint(ppe.histogram(i)));
    }
  }
  return out;
}

void expect_identical_checkpoints(const SimCheckpoint& a, const SimCheckpoint& b) {
  EXPECT_EQ(a.config.seed, b.config.seed);
  EXPECT_EQ(a.config.policy, b.config.policy);
  ASSERT_EQ(a.ops.size(), b.ops.size());
  for (std::size_t i = 0; i < a.ops.size(); ++i) {
    SCOPED_TRACE("op " + std::to_string(i));
    EXPECT_EQ(a.ops[i].kind, b.ops[i].kind);
    EXPECT_EQ(a.ops[i].duration, b.ops[i].duration);
    EXPECT_EQ(a.ops[i].measure, b.ops[i].measure);
  }
  EXPECT_EQ(a.replay_time(), b.replay_time());
}

class CheckpointRestore : public ::testing::TestWithParam<PolicyKind> {};

// The headline guarantee: settle -> reset -> snapshot -> restore -> measure
// equals the same history run uninterrupted in one instance. Everything is
// compared — results, registries, structural fingerprint, bin sequences.
TEST_P(CheckpointRestore, ContinuationIsBitIdenticalToUninterruptedRun) {
  const SimConfig cfg = tiny_config(GetParam());
  const LoadPattern pat = LoadPattern::constant(cfg.lc.max_load_krps * 1000.0 * 0.5);

  ColocationSim uninterrupted(cfg);
  uninterrupted.run(pat, seconds(6), /*measure=*/false);
  uninterrupted.reset_stats();
  uninterrupted.run(pat, seconds(8));

  ColocationSim original(cfg);
  original.run(pat, seconds(6), /*measure=*/false);
  original.reset_stats();
  const SimCheckpoint cp = original.snapshot();
  const std::unique_ptr<ColocationSim> restored = ColocationSim::restore(cp);
  // The restored instance must already match the snapshotted one...
  EXPECT_EQ(original.fingerprint(), restored->fingerprint());
  // ...and continuing it must match the uninterrupted reference bit for bit.
  restored->run(pat, seconds(8));
  expect_identical_results(uninterrupted.result(), restored->result());
  expect_identical_registries(uninterrupted.metrics(), restored->metrics());
  EXPECT_EQ(uninterrupted.fingerprint(), restored->fingerprint());
  const std::vector<std::string> fp_a = sim_hotness_fingerprints(uninterrupted);
  const std::vector<std::string> fp_b = sim_hotness_fingerprints(*restored);
  ASSERT_FALSE(fp_a.empty()) << "policy exposes no histogram to fingerprint";
  EXPECT_EQ(fp_a, fp_b);
}

INSTANTIATE_TEST_SUITE_P(Policies, CheckpointRestore,
                         ::testing::Values(PolicyKind::kMtatFull, PolicyKind::kMemtis),
                         [](const auto& info) { return policy_name(info.param); });

// Replayed ops re-enter the new journal, so checkpoints survive repeated
// crash/restore cycles without drifting: snapshot(restore(cp)) == cp.
TEST(CheckpointTest, RestoredSimsOwnSnapshotEqualsTheOriginal) {
  const SimConfig cfg = tiny_config(PolicyKind::kMemtis);
  const LoadPattern pat = LoadPattern::constant(cfg.lc.max_load_krps * 1000.0 * 0.4);
  ColocationSim sim(cfg);
  sim.run(pat, seconds(3), /*measure=*/false);
  sim.reset_stats();
  sim.run(pat, seconds(4));
  const SimCheckpoint cp = sim.snapshot();
  const std::unique_ptr<ColocationSim> restored = ColocationSim::restore(cp);
  expect_identical_checkpoints(cp, restored->snapshot());
}

TEST(CheckpointTest, JournalRecordsEveryOpAndReplayTimeSumsRuns) {
  const SimConfig cfg = tiny_config(PolicyKind::kMemtis);
  const LoadPattern pat = LoadPattern::constant(cfg.lc.max_load_krps * 1000.0 * 0.4);
  ColocationSim sim(cfg);
  EXPECT_TRUE(sim.snapshot().ops.empty());  // construction is not journaled
  sim.run(pat, seconds(3), /*measure=*/false);
  sim.reset_stats();
  sim.run(pat, seconds(4));
  const SimCheckpoint cp = sim.snapshot();
  ASSERT_EQ(cp.ops.size(), 3u);
  EXPECT_EQ(cp.ops[0].kind, SimCheckpoint::Op::Kind::kRun);
  EXPECT_FALSE(cp.ops[0].measure);
  EXPECT_EQ(cp.ops[1].kind, SimCheckpoint::Op::Kind::kResetStats);
  EXPECT_EQ(cp.ops[2].kind, SimCheckpoint::Op::Kind::kRun);
  EXPECT_TRUE(cp.ops[2].measure);
  EXPECT_EQ(cp.replay_time(), seconds(7));  // reset_stats costs no sim time
}

// The cluster bench's warm-vs-cold distinction only means something if a
// replayed checkpoint is actually different from a cold boot: the warm node
// resumes with its hot pages promoted, the cold one pays the flood.
TEST(CheckpointTest, WarmRestoreIsDistinguishableFromColdBoot) {
  const SimConfig cfg = tiny_config(PolicyKind::kMemtis);
  const LoadPattern pat = LoadPattern::constant(cfg.lc.max_load_krps * 1000.0 * 0.5);

  ColocationSim warmed(cfg);
  warmed.run(pat, seconds(6), /*measure=*/false);
  warmed.reset_stats();
  const std::unique_ptr<ColocationSim> warm = ColocationSim::restore(warmed.snapshot());

  ColocationSim cold(cfg);  // straight into traffic, no settle
  EXPECT_NE(warm->fingerprint(), cold.fingerprint());
  warm->run(pat, seconds(8));
  cold.run(pat, seconds(8));
  // The flood is literal: the cold node spends the measured window promoting
  // the hot set the warm node already holds, and serves less because of it.
  EXPECT_GT(cold.result().migration_bytes_per_sec,
            warm->result().migration_bytes_per_sec);
  EXPECT_NE(warm->result().lc_completed, cold.result().lc_completed);
  EXPECT_NE(warm->fingerprint(), cold.fingerprint());
}

}  // namespace
}  // namespace mtat
