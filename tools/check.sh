#!/usr/bin/env bash
# Full pre-merge check: build and run the test suite in Release and under
# ASan and UBSan (via the MTAT_SANITIZE cache option in the top-level
# CMakeLists.txt). Build trees live under build-check/ so the default ./build
# tree is left alone.
#
# Usage: tools/check.sh [extra ctest args...]
set -euo pipefail

cd "$(dirname "$0")/.."
jobs=$(nproc 2>/dev/null || echo 4)

run_config() {
  local name="$1" sanitize="$2"
  shift 2
  local dir="build-check/${name}"
  echo "==== ${name} (MTAT_SANITIZE='${sanitize}') ===="
  cmake -B "${dir}" -S . -DCMAKE_BUILD_TYPE=Release \
        -DMTAT_SANITIZE="${sanitize}" >/dev/null
  cmake --build "${dir}" -j "${jobs}"
  ctest --test-dir "${dir}" --output-on-failure -j "${jobs}" "$@"
}

run_config release "" "$@"
run_config asan address "$@"
run_config ubsan undefined "$@"

echo "==== all checks passed ===="
