#!/usr/bin/env bash
# Full pre-merge check: build and run the test suite in Release and under
# ASan, UBSan, and TSan (via the MTAT_SANITIZE cache option in the top-level
# CMakeLists.txt), all with -Werror (MTAT_WERROR=ON). Every lane's ctest run
# includes the mtat_lint tree scan (the `lint_tree` test), so a lint
# violation fails the suite the same way a broken test does. When clang-tidy
# is installed, a tidy pass over src/ runs as a final lane; when it is not
# (e.g. the minimal CI container), that lane is skipped with a notice.
#
# Build trees live under build-check/ so the default ./build tree is left
# alone.
#
# Usage: tools/check.sh [extra ctest args...]
set -euo pipefail

cd "$(dirname "$0")/.."
jobs=$(nproc 2>/dev/null || echo 4)

# Determinism/ownership gates (including the old obs::trace() grep) live in
# mtat_lint now: the context-escape rule polices the process-global recorder
# tree-wide (DESIGN.md §11/§15), with the sanctioned construction sites
# allowlisted. Run it first, standalone, so a finding fails fast before any
# full lane builds.
echo "==== mtat_lint (tree-wide static analysis) ===="
cmake -B build-check/release -S . -DCMAKE_BUILD_TYPE=Release \
      -DMTAT_SANITIZE= -DMTAT_WERROR=ON >/dev/null
cmake --build build-check/release -j "${jobs}" --target mtat_lint >/dev/null
build-check/release/tools/lint/mtat_lint --root="$PWD"

run_config() {
  local name="$1" sanitize="$2"
  shift 2
  local dir="build-check/${name}"
  echo "==== ${name} (MTAT_SANITIZE='${sanitize}', MTAT_WERROR=ON) ===="
  cmake -B "${dir}" -S . -DCMAKE_BUILD_TYPE=Release \
        -DMTAT_SANITIZE="${sanitize}" -DMTAT_WERROR=ON >/dev/null
  cmake --build "${dir}" -j "${jobs}"
  ctest --test-dir "${dir}" --output-on-failure -j "${jobs}" "$@"
}

run_config release "" "$@"
run_config asan address "$@"
run_config ubsan undefined "$@"
run_config tsan thread "$@"

# One real bench end-to-end on a worker pool under TSan: the smoke preset
# keeps it to seconds of simulated work while still fanning twelve
# (policy, load) cells plus the bisection probes across two threads.
echo "==== parallel bench smoke (TSan, MTAT_SCALE=smoke, MTAT_JOBS=2) ===="
repo_root=$PWD
smoke_dir=$(mktemp -d)
(cd "${smoke_dir}" &&
 MTAT_SCALE=smoke MTAT_JOBS=2 "${repo_root}/build-check/tsan/bench/fig9_table4_load_levels")
rm -rf "${smoke_dir}"

# The fault-tolerance sweep end-to-end under ASan and UBSan: a full-intensity
# storm drives every degradation path — migration rollback/backoff, telemetry
# blackout, the watchdog ladder — exactly where lifetime and UB bugs in the
# recovery code would hide (DESIGN.md §12).
for lane in asan ubsan; do
  echo "==== fault-injection bench smoke (${lane}, MTAT_SCALE=smoke, MTAT_JOBS=2) ===="
  smoke_dir=$(mktemp -d)
  (cd "${smoke_dir}" &&
   MTAT_SCALE=smoke MTAT_JOBS=2 "${repo_root}/build-check/${lane}/bench/ext_fault_tolerance")
  rm -rf "${smoke_dir}"
done

# The fleet-scale cluster bench end-to-end: a hundred-plus node shards fanned
# across a worker pool, in release and again under ASan — the shard
# closures copy results out of contexts run_all destroys on return, which is
# exactly where lifetime bugs would hide (DESIGN.md §13).
for lane in release asan; do
  echo "==== cluster bench smoke (${lane}, MTAT_SCALE=smoke, MTAT_JOBS=2) ===="
  smoke_dir=$(mktemp -d)
  (cd "${smoke_dir}" &&
   MTAT_SCALE=smoke MTAT_JOBS=2 "${repo_root}/build-check/${lane}/bench/ext_cluster_slo")
  rm -rf "${smoke_dir}"
done

# The fleet failure domain end-to-end: the fault-tolerance sweep drives the
# epoch loop's every path — injected crashes and blackouts, the watchdog,
# tenant evacuation with backoff, checkpoint replay on warm restarts — in
# release and again under ASan, where the checkpoint/restore and
# node-teardown code would hide lifetime bugs (DESIGN.md §17). MTAT_NODES=8
# bounds the quadratic warm-replay cost in the sanitizer lane.
for lane in release asan; do
  echo "==== cluster fault-tolerance bench smoke (${lane}, MTAT_SCALE=smoke, MTAT_JOBS=2) ===="
  smoke_dir=$(mktemp -d)
  (cd "${smoke_dir}" &&
   MTAT_SCALE=smoke MTAT_JOBS=2 MTAT_NODES=8 \
   "${repo_root}/build-check/${lane}/bench/ext_cluster_fault_tolerance")
  rm -rf "${smoke_dir}"
done

# An N-tier topology end-to-end, in release and again under ASan: the
# three-tier spec exercises the tier-vector paths two-tier runs leave cold —
# per-link budgets, cascaded demotion, the slower-aggregate telemetry — and
# ASan watches the per-link vectors and spill loops for off-by-one indexing
# (DESIGN.md §16).
for lane in release asan; do
  echo "==== 3-tier topology bench smoke (${lane}, MTAT_SCALE=smoke, MTAT_JOBS=2) ===="
  smoke_dir=$(mktemp -d)
  (cd "${smoke_dir}" &&
   MTAT_SCALE=smoke MTAT_JOBS=2 \
   MTAT_TOPOLOGY="dram:32M:73;cxl:256M:202:2G;nvm:512M:450:1G" \
   "${repo_root}/build-check/${lane}/bench/fig9_table4_load_levels")
  rm -rf "${smoke_dir}"
done

# The perf lane end-to-end: gate the committed trajectory (same check the
# perf_diff_trajectory ctest runs in every lane), then append a fresh
# smoke-scale entry to a scratch copy and report it against the committed
# tail. The report is informational (--report-only): absolute ops/s from
# this machine are not comparable to the committed entries' machine.
echo "==== perf regression gate (perf_diff --trajectory BENCH_core.json) ===="
"${repo_root}/build-check/release/tools/perf_diff/perf_diff" --trajectory BENCH_core.json
echo "==== perf regression gate (perf_diff --trajectory BENCH_cluster.json) ===="
"${repo_root}/build-check/release/tools/perf_diff/perf_diff" --trajectory BENCH_cluster.json
echo "==== perf lane smoke (release, MTAT_SCALE=smoke, fresh entry report) ===="
smoke_dir=$(mktemp -d)
cp BENCH_core.json "${smoke_dir}/"
(cd "${smoke_dir}" &&
 MTAT_SCALE=smoke MTAT_PERF_LABEL=check-smoke "${repo_root}/build-check/release/bench/perf_core" &&
 "${repo_root}/build-check/release/tools/perf_diff/perf_diff" --report-only --trajectory BENCH_core.json)
rm -rf "${smoke_dir}"

# Thread-safety lane: clang's -Wthread-safety *proves* the GUARDED_BY /
# REQUIRES / EXCLUDES contracts from src/common/thread_annotations.h (the
# mtat_lint guarded-by rule only enforces that annotations exist — GCC
# compiles them away). Build-only: the annotated code is identical, so the
# test suites above already cover its behavior.
if command -v clang++ >/dev/null 2>&1; then
  echo "==== clang -Wthread-safety lane (MTAT_THREAD_SAFETY=ON, build only) ===="
  cmake -B build-check/thread-safety -S . -DCMAKE_BUILD_TYPE=Release \
        -DCMAKE_CXX_COMPILER=clang++ -DMTAT_THREAD_SAFETY=ON >/dev/null
  cmake --build build-check/thread-safety -j "${jobs}"
else
  echo "==== clang++ not installed; skipping thread-safety lane ===="
fi

if command -v clang-tidy >/dev/null 2>&1; then
  echo "==== clang-tidy (src/) ===="
  # The release lane's compile_commands.json drives the tidy pass.
  cmake -B build-check/release -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
  find src -name '*.cc' -print0 |
    xargs -0 -P "${jobs}" -n 4 clang-tidy -p build-check/release --quiet \
      --warnings-as-errors='*'
else
  echo "==== clang-tidy not installed; skipping tidy lane ===="
fi

echo "==== all checks passed ===="
