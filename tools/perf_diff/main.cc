// perf_diff CLI — see perf_diff.h for the rules.
//
// Usage:
//   perf_diff [--threshold=X] [--report-only] BEFORE.json AFTER.json
//       Compare the last entry of each trajectory file.
//   perf_diff [--threshold=X] [--report-only] --trajectory FILE.json
//       Compare every adjacent entry pair within one trajectory file — the
//       deterministic gate tools/check.sh and CI run on the committed
//       BENCH_core.json, whose entries were produced on one machine.
//
// --threshold=X     noise tolerance as a fraction (default 0.15: a metric
//                   may lose up to 15% before the gate trips)
// --report-only     print the comparison but always exit 0 on a successful
//                   parse — for cross-machine comparisons (fresh run vs the
//                   committed file) where absolute ops/s are not comparable
//
// Exit codes: 0 ok / report-only, 1 regression past the threshold,
// 2 usage error or malformed input (never conflated with a regression).
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "common/parse.h"
#include "perf_diff.h"

namespace {

constexpr double kDefaultThreshold = 0.15;

int usage() {
  std::fprintf(stderr,
               "usage: perf_diff [--threshold=X] [--report-only] BEFORE.json AFTER.json\n"
               "       perf_diff [--threshold=X] [--report-only] --trajectory FILE.json\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  double threshold = kDefaultThreshold;
  bool report_only = false;
  bool trajectory = false;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--threshold=", 0) == 0) {
      const auto v = mtat::parse_double(arg.substr(12));
      if (!v || *v < 0.0 || *v >= 1.0) {
        std::fprintf(stderr, "perf_diff: invalid --threshold (expected a fraction in [0,1))\n");
        return 2;
      }
      threshold = *v;
    } else if (arg == "--report-only") {
      report_only = true;
    } else if (arg == "--trajectory") {
      trajectory = true;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "perf_diff: unknown flag %s\n", arg.c_str());
      return usage();
    } else {
      files.push_back(arg);
    }
  }
  if (files.size() != (trajectory ? 1u : 2u)) return usage();

  try {
    std::vector<mtat::perf_diff::Comparison> comparisons;
    if (trajectory) {
      const mtat::perf_diff::BenchFile f = mtat::perf_diff::load_bench_file(files[0]);
      if (f.entries.size() < 2) {
        std::printf("perf_diff: %s has %zu entr%s — nothing to compare\n", files[0].c_str(),
                    f.entries.size(), f.entries.size() == 1 ? "y" : "ies");
        return 0;
      }
      for (std::size_t i = 0; i + 1 < f.entries.size(); ++i)
        comparisons.push_back(mtat::perf_diff::compare(f.entries[i], f.entries[i + 1]));
    } else {
      const mtat::perf_diff::BenchFile before = mtat::perf_diff::load_bench_file(files[0]);
      const mtat::perf_diff::BenchFile after = mtat::perf_diff::load_bench_file(files[1]);
      if (before.entries.empty() || after.entries.empty())
        throw std::runtime_error("both files must contain at least one entry");
      comparisons.push_back(
          mtat::perf_diff::compare(before.entries.back(), after.entries.back()));
    }
    bool regressed = false;
    for (const auto& c : comparisons) {
      mtat::perf_diff::print_report(std::cout, c, threshold);
      regressed = regressed || c.any_regression(threshold);
    }
    if (!std::cout.flush()) {
      std::fprintf(stderr, "perf_diff: failed writing report to stdout\n");
      return 2;
    }
    if (report_only) return 0;
    return regressed ? 1 : 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "perf_diff: %s\n", e.what());
    return 2;
  }
}
