// perf_diff — the BENCH_*.json regression gate (see DESIGN.md §14).
//
// bench/perf_core (and any future perf_* lane) appends one entry per run to
// a BENCH_*.json trajectory file: a label, the scale preset, and a flat map
// of ops/s series. This library compares entries and decides "regression or
// not", and the CLI wraps it for tools/check.sh and CI:
//
//  * every metric is higher-is-better ops/s — an entry B regresses from A on
//    metric m when B[m] < A[m] * (1 - threshold);
//  * the two entries must carry exactly the same metric keys. A missing or
//    extra key is an error, not a skip: a renamed series would otherwise
//    drop silently out of the gate;
//  * malformed JSON, schema violations, and unreadable files all throw — the
//    CLI maps them to exit code 2, distinct from exit 1 (regression), so a
//    broken gate can never pass for a clean one.
//
// Built as a small library so tests/perf_diff_test.cc drives the rules
// directly (the tools/lint pattern), plus the CLI binary.
#pragma once

#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

namespace mtat::perf_diff {

/// One run's worth of a BENCH trajectory: `{"label": ..., "scale": ...,
/// "metrics": {name: ops_per_sec, ...}}`. Metric order is document order.
struct Entry {
  std::string label;
  std::string scale;
  std::vector<std::pair<std::string, double>> metrics;
};

/// A parsed BENCH_*.json: `{"bench": ..., "entries": [Entry, ...]}`.
struct BenchFile {
  std::string bench;
  std::vector<Entry> entries;
};

/// Parse and validate a BENCH trajectory file. Throws std::runtime_error
/// (naming the path and the violated requirement) on unreadable input,
/// malformed JSON, or schema violations — including non-finite or negative
/// metric values and an entry with no metrics at all.
BenchFile load_bench_file(const std::string& path);

/// One metric's before/after pair.
struct Delta {
  std::string metric;
  double before = 0.0;
  double after = 0.0;

  /// after/before speedup; an improvement reads > 1. Defined as +inf when
  /// before is zero and after is not.
  double ratio() const;

  /// Higher-is-better: regressed iff after < before * (1 - threshold).
  bool regressed(double threshold) const { return after < before * (1.0 - threshold); }
};

struct Comparison {
  std::string before_label;
  std::string after_label;
  std::vector<Delta> deltas;  ///< in `before`'s metric order

  bool any_regression(double threshold) const;
};

/// Pair up the two entries' metrics. Throws std::runtime_error when the key
/// sets differ (reporting every missing/extra key by name).
Comparison compare(const Entry& before, const Entry& after);

/// Human-readable table: one line per metric with before/after/speedup and a
/// REGRESSED marker past the threshold, plus a verdict line.
void print_report(std::ostream& os, const Comparison& c, double threshold);

}  // namespace mtat::perf_diff
