#include "perf_diff.h"

#include <cmath>
#include <cstdio>
#include <limits>
#include <ostream>
#include <set>
#include <stdexcept>

#include "obs/json_parse.h"

namespace mtat::perf_diff {
namespace {

[[noreturn]] void schema_error(const std::string& origin, const std::string& what) {
  throw std::runtime_error(origin + ": " + what);
}

Entry parse_entry(const obs::JsonValue& v, const std::string& origin, std::size_t index) {
  const std::string where = origin + ": entries[" + std::to_string(index) + "]";
  if (!v.is_object()) schema_error(where, "must be an object");
  Entry e;
  const obs::JsonValue* label = v.find("label");
  if (label == nullptr || !label->is_string() || label->str.empty())
    schema_error(where, "requires a non-empty string \"label\"");
  e.label = label->str;
  const obs::JsonValue* scale = v.find("scale");
  if (scale == nullptr || !scale->is_string())
    schema_error(where, "requires a string \"scale\"");
  e.scale = scale->str;
  const obs::JsonValue* metrics = v.find("metrics");
  if (metrics == nullptr || !metrics->is_object())
    schema_error(where, "requires an object \"metrics\"");
  if (metrics->object.empty()) schema_error(where, "\"metrics\" must not be empty");
  for (const auto& [name, val] : metrics->object) {
    if (!val.is_number())
      schema_error(where, "metric \"" + name + "\" must be a number");
    if (!std::isfinite(val.number) || val.number < 0.0)
      schema_error(where, "metric \"" + name + "\" must be finite and non-negative");
    e.metrics.emplace_back(name, val.number);
  }
  return e;
}

}  // namespace

BenchFile load_bench_file(const std::string& path) {
  obs::JsonValue doc;
  try {
    doc = obs::json_parse_file(path);
  } catch (const obs::JsonParseError& e) {
    throw std::runtime_error(e.what());
  }
  if (!doc.is_object()) schema_error(path, "top level must be an object");
  BenchFile out;
  const obs::JsonValue* bench = doc.find("bench");
  if (bench == nullptr || !bench->is_string() || bench->str.empty())
    schema_error(path, "requires a non-empty string \"bench\"");
  out.bench = bench->str;
  const obs::JsonValue* entries = doc.find("entries");
  if (entries == nullptr || !entries->is_array())
    schema_error(path, "requires an array \"entries\"");
  for (std::size_t i = 0; i < entries->array.size(); ++i)
    out.entries.push_back(parse_entry(entries->array[i], path, i));
  return out;
}

double Delta::ratio() const {
  if (before <= 0.0)
    return after <= 0.0 ? 1.0 : std::numeric_limits<double>::infinity();
  return after / before;
}

bool Comparison::any_regression(double threshold) const {
  for (const Delta& d : deltas)
    if (d.regressed(threshold)) return true;
  return false;
}

Comparison compare(const Entry& before, const Entry& after) {
  std::set<std::string> before_keys, after_keys;
  for (const auto& [k, v] : before.metrics) before_keys.insert(k);
  for (const auto& [k, v] : after.metrics) after_keys.insert(k);
  std::string mismatch;
  for (const std::string& k : before_keys)
    if (after_keys.count(k) == 0)
      mismatch += " metric \"" + k + "\" present in \"" + before.label +
                  "\" but missing from \"" + after.label + "\";";
  for (const std::string& k : after_keys)
    if (before_keys.count(k) == 0)
      mismatch += " metric \"" + k + "\" present in \"" + after.label +
                  "\" but missing from \"" + before.label + "\";";
  if (!mismatch.empty())
    throw std::runtime_error("metric key sets differ:" + mismatch +
                             " entries must carry identical metric keys");
  Comparison c;
  c.before_label = before.label;
  c.after_label = after.label;
  for (const auto& [name, before_v] : before.metrics) {
    Delta d;
    d.metric = name;
    d.before = before_v;
    for (const auto& [k, after_v] : after.metrics)
      if (k == name) d.after = after_v;
    c.deltas.push_back(std::move(d));
  }
  return c;
}

void print_report(std::ostream& os, const Comparison& c, double threshold) {
  os << "perf_diff: \"" << c.before_label << "\" -> \"" << c.after_label
     << "\" (regression threshold " << threshold * 100.0 << "%)\n";
  bool any = false;
  for (const Delta& d : c.deltas) {
    const bool bad = d.regressed(threshold);
    any = any || bad;
    char line[256];
    std::snprintf(line, sizeof(line), "  %-36s %14.4g %14.4g %9.2fx%s\n", d.metric.c_str(),
                  d.before, d.after, d.ratio(), bad ? "  REGRESSED" : "");
    os << line;
  }
  os << (any ? "verdict: REGRESSION\n" : "verdict: ok\n");
}

}  // namespace mtat::perf_diff
