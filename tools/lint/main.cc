// mtat_lint CLI — see lint.h for the rule set.
//
//   mtat_lint --root=/path/to/repo              lint the whole tree
//   mtat_lint --root=. src tools                lint a subset of directories
//   mtat_lint --root=. --no-doc-sync bad_dir    skip the DESIGN.md cross-check
//   mtat_lint --root=. --time-budget-ms=20000   also fail if the run is slow
//
// Exit status: 0 clean, 1 findings, 2 usage error, 3 over time budget.
// Findings print as `file:line: [rule] message`, one per line, compiler-style.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "lint.h"

namespace {

[[noreturn]] void usage(int code) {
  std::printf(
      "mtat_lint — MTAT repo-specific static analysis\n\n"
      "  --root=DIR       repo root (default: current directory)\n"
      "  --names=FILE     name table header, relative to root (default src/obs/names.h)\n"
      "  --design=FILE    design doc for the doc-sync rule (default DESIGN.md)\n"
      "  --allowlist=FILE per-rule file exemptions (default tools/lint/allowlist.txt)\n"
      "  --no-doc-sync    skip the DESIGN.md name-table cross-check\n"
      "  --time-budget-ms=N  exit 3 when the full run takes longer than N ms\n"
      "                   (the ctest lane's guard against the linter crawling)\n"
      "  [DIR...]         directories to scan, relative to root\n"
      "                   (default: src bench tests tools examples)\n");
  std::exit(code);
}

}  // namespace

int main(int argc, char** argv) {
  mtat::lint::Options opt;
  opt.root = ".";
  long budget_ms = 0;
  std::vector<std::string> dirs;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto eq = arg.find('=');
    const std::string key = arg.substr(0, eq);
    const std::string val = eq == std::string::npos ? "" : arg.substr(eq + 1);
    if (key == "--help" || key == "-h") usage(0);
    else if (key == "--root") opt.root = val;
    else if (key == "--names") opt.names_header = val;
    else if (key == "--design") opt.design_doc = val;
    else if (key == "--allowlist") opt.allowlist_file = val;
    else if (key == "--no-doc-sync") opt.check_docs = false;
    else if (key == "--time-budget-ms") {
      char* end = nullptr;
      budget_ms = std::strtol(val.c_str(), &end, 10);
      if (end == nullptr || *end != '\0' || budget_ms <= 0) {
        std::fprintf(stderr, "bad --time-budget-ms value: %s\n\n", val.c_str());
        usage(2);
      }
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown flag: %s\n\n", arg.c_str());
      usage(2);
    } else {
      dirs.push_back(arg);
    }
  }
  if (!dirs.empty()) opt.dirs = dirs;
  const auto t0 = std::chrono::steady_clock::now();
  const int findings = mtat::lint::run_and_report(opt, std::cout);
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
  if (budget_ms > 0 && elapsed > budget_ms) {
    std::fprintf(stderr, "mtat_lint: run took %lld ms, over the %ld ms budget\n",
                 static_cast<long long>(elapsed), budget_ms);
    return 3;
  }
  return findings == 0 ? 0 : 1;
}
