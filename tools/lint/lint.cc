#include "lint.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <ostream>
#include <regex>
#include <sstream>

namespace mtat::lint {

namespace {

// ------------------------------------------------------------- file reading --

bool read_file(const std::filesystem::path& p, std::string& out) {
  std::ifstream in(p, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

// ------------------------------------------------------- comment/string strip --
//
// One pass over the file produces two same-shape views (comments and literal
// contents are replaced by spaces so column offsets line up between them):
//   code: comments blanked, string/char literals kept verbatim
//   scan: comments blanked AND literal contents blanked
// Token rules run on `scan` (so a banned word inside a comment or a string
// never fires); call-site name extraction finds the call in `scan` and reads
// the literal out of `code` at the same offset.

struct StrippedFile {
  std::vector<std::string> raw;
  std::vector<std::string> code;
  std::vector<std::string> scan;
};

StrippedFile strip(const std::string& text) {
  enum class St { kNormal, kLine, kBlock, kString, kChar, kRaw };
  St st = St::kNormal;
  std::string code, scan, raw_delim;
  code.reserve(text.size());
  scan.reserve(text.size());
  std::size_t i = 0;
  const std::size_t n = text.size();
  auto put = [&](char c, char s) {
    code.push_back(c);
    scan.push_back(s);
  };
  while (i < n) {
    const char c = text[i];
    if (c == '\n') {
      // Newlines always pass through so line numbers stay aligned; a line
      // comment ends here, everything else continues.
      if (st == St::kLine) st = St::kNormal;
      put('\n', '\n');
      ++i;
      continue;
    }
    switch (st) {
      case St::kNormal:
        if (c == '/' && i + 1 < n && text[i + 1] == '/') {
          st = St::kLine;
          put(' ', ' ');
        } else if (c == '/' && i + 1 < n && text[i + 1] == '*') {
          st = St::kBlock;
          put(' ', ' ');
          put(' ', ' ');
          ++i;
        } else if (c == '"' && i > 0 && text[i - 1] == 'R') {
          // Raw string literal R"delim( ... )delim".
          raw_delim = ")";
          std::size_t j = i + 1;
          while (j < n && text[j] != '(') raw_delim.push_back(text[j++]);
          raw_delim.push_back('"');
          st = St::kRaw;
          put('"', '"');
        } else if (c == '"') {
          st = St::kString;
          put('"', '"');
        } else if (c == '\'') {
          st = St::kChar;
          put('\'', '\'');
        } else {
          put(c, c);
        }
        ++i;
        break;
      case St::kLine:
        put(' ', ' ');
        ++i;
        break;
      case St::kBlock:
        if (c == '*' && i + 1 < n && text[i + 1] == '/') {
          put(' ', ' ');
          put(' ', ' ');
          i += 2;
          st = St::kNormal;
        } else {
          put(' ', ' ');
          ++i;
        }
        break;
      case St::kString:
        if (c == '\\' && i + 1 < n) {
          put(c, ' ');
          put(text[i + 1], ' ');
          i += 2;
        } else if (c == '"') {
          put('"', '"');
          ++i;
          st = St::kNormal;
        } else {
          put(c, ' ');
          ++i;
        }
        break;
      case St::kChar:
        if (c == '\\' && i + 1 < n) {
          put(c, ' ');
          put(text[i + 1], ' ');
          i += 2;
        } else if (c == '\'') {
          put('\'', '\'');
          ++i;
          st = St::kNormal;
        } else {
          put(c, ' ');
          ++i;
        }
        break;
      case St::kRaw:
        if (text.compare(i, raw_delim.size(), raw_delim) == 0) {
          for (char d : raw_delim) {
            put(d, d == '"' ? '"' : ' ');
          }
          i += raw_delim.size();
          st = St::kNormal;
        } else {
          put(c, ' ');
          ++i;
        }
        break;
    }
  }

  StrippedFile out;
  auto split = [](const std::string& s, std::vector<std::string>& lines) {
    std::size_t start = 0;
    for (std::size_t p = 0; p <= s.size(); ++p) {
      if (p == s.size() || s[p] == '\n') {
        lines.push_back(s.substr(start, p - start));
        start = p + 1;
      }
    }
  };
  split(text, out.raw);
  split(code, out.code);
  split(scan, out.scan);
  return out;
}

// ------------------------------------------------------------------- helpers --

bool inline_allowed(const std::string& raw_line, const std::string& rule) {
  return raw_line.find("mtat-lint: allow(" + rule + ")") != std::string::npos;
}

bool is_header(const std::string& path) {
  return path.ends_with(".h") || path.ends_with(".hpp");
}

/// Extract the string literal starting at code[pos] (which must be '"').
/// Returns false when the literal does not close on this line.
bool extract_literal(const std::string& code_line, std::size_t pos, std::string& out) {
  if (pos >= code_line.size() || code_line[pos] != '"') return false;
  out.clear();
  for (std::size_t i = pos + 1; i < code_line.size(); ++i) {
    const char c = code_line[i];
    if (c == '\\' && i + 1 < code_line.size()) {
      out.push_back(code_line[i + 1]);
      ++i;
    } else if (c == '"') {
      return true;
    } else {
      out.push_back(c);
    }
  }
  return false;
}

const std::regex& call_token_re() {
  static const std::regex re(R"(\b(counter|gauge|histogram|instant|complete|WallSpan)\b)");
  return re;
}

struct TokenRule {
  const char* rule;
  std::regex re;
  const char* what;
};

const std::vector<TokenRule>& nondet_rules() {
  // Determinism wall: every one of these either reads the host environment or
  // wall clock. Simulation randomness must come from the seeded common/rng.h;
  // wall timing from std::chrono::steady_clock (obs::WallSpan).
  static const std::vector<TokenRule> rules = [] {
    std::vector<TokenRule> v;
    v.push_back({"nondet", std::regex(R"(\brand\s*\()"), "rand()"});
    v.push_back({"nondet", std::regex(R"(\bsrand\s*\()"), "srand()"});
    v.push_back({"nondet", std::regex(R"(\brandom_device\b)"), "std::random_device"});
    v.push_back({"nondet", std::regex(R"(\bsystem_clock\b)"), "std::chrono::system_clock"});
    v.push_back({"nondet", std::regex(R"(\btime\s*\()"), "time()"});
    v.push_back({"nondet", std::regex(R"(\bclock\s*\()"), "clock()"});
    v.push_back({"nondet", std::regex(R"(\bgettimeofday\s*\()"), "gettimeofday()"});
    v.push_back({"nondet", std::regex(R"(\blocaltime\b)"), "localtime"});
    v.push_back({"nondet", std::regex(R"(\bgmtime\b)"), "gmtime"});
    return v;
  }();
  return rules;
}

const std::vector<TokenRule>& parse_rules() {
  static const std::vector<TokenRule> rules = [] {
    std::vector<TokenRule> v;
    v.push_back({"unsafe-parse", std::regex(R"(\bato(?:i|f|l|ll)\s*\()"),
                 "atoi/atof family (errors collapse to 0)"});
    v.push_back({"unsafe-parse", std::regex(R"(\bsto(?:i|l|ul|ll|ull|f|d|ld)\s*\()"),
                 "std::sto* family (throws on bad input)"});
    return v;
  }();
  return rules;
}

const std::vector<TokenRule>& env_rules() {
  // Environment knobs are parsed exactly once, with validation, by bench::Env
  // (bench/env.h — the allowlisted construction site). A scattered getenv
  // re-reads the knob unvalidated and invisibly to the Env documentation.
  static const std::vector<TokenRule> rules = [] {
    std::vector<TokenRule> v;
    v.push_back({"getenv", std::regex(R"(\bgetenv\s*\()"), "std::getenv"});
    return v;
  }();
  return rules;
}

}  // namespace

// --------------------------------------------------------------- unit suffix --

const char* bad_unit_suffix(const std::string& name) {
  static const std::map<std::string, const char*> kBad = {
      {"usec", "us"},         {"micros", "us"},       {"microsecs", "us"},
      {"microseconds", "us"}, {"msec", "ms"},         {"millis", "ms"},
      {"milliseconds", "ms"}, {"nsec", "ns"},         {"nanos", "ns"},
      {"nanoseconds", "ns"},  {"secs", "us"},         {"seconds", "us"},
      {"byte", "bytes"},      {"kb", "bytes"},        {"mb", "bytes"},
      {"gb", "bytes"},        {"kib", "bytes"},       {"mib", "bytes"},
      {"gib", "bytes"},       {"percent", "pct"},     {"percentage", "pct"},
      {"bps", "bytes_per_sec"}};
  // Examine the final _token of the last dot-component; a structural "_hist"
  // tail is transparent ("x.wall_usec_hist" is judged on "usec").
  const std::size_t dot = name.rfind('.');
  std::string last = dot == std::string::npos ? name : name.substr(dot + 1);
  std::vector<std::string> tokens;
  std::size_t start = 0;
  for (std::size_t p = 0; p <= last.size(); ++p) {
    if (p == last.size() || last[p] == '_') {
      tokens.push_back(last.substr(start, p - start));
      start = p + 1;
    }
  }
  if (tokens.empty()) return nullptr;
  std::string tail = tokens.back();
  if (tail == "hist" && tokens.size() >= 2) tail = tokens[tokens.size() - 2];
  const auto it = kBad.find(tail);
  return it == kBad.end() ? nullptr : it->second;
}

// ---------------------------------------------------------------- name table --

NameTable load_name_table(const std::filesystem::path& header, std::vector<Finding>& out) {
  NameTable table;
  std::string text;
  const std::string rel = header.generic_string();
  if (!read_file(header, text)) {
    out.push_back({rel, 0, "doc-sync", "cannot read names header " + rel});
    return table;
  }
  static const std::regex section_re(R"(mtat-lint:\s*section=([a-z-]+))");
  static const std::regex literal_re(R"re("([^"]*)")re");
  std::string section;
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  bool pending = false;  // previous line was a `constexpr ... =` continuation
  while (std::getline(in, line)) {
    ++lineno;
    std::smatch m;
    if (std::regex_search(line, m, section_re)) {
      section = m[1];
      pending = false;
      continue;
    }
    const bool declares = line.find("constexpr") != std::string::npos;
    if (!std::regex_search(line, m, literal_re)) {
      // `constexpr const char* kVeryLongName =` with the literal wrapped to
      // the next line.
      const auto last = line.find_last_not_of(" \t\r");
      pending = declares && last != std::string::npos && line[last] == '=';
      continue;
    }
    if (!declares && !pending) continue;
    pending = false;
    const std::string name = m[1];
    if (section.empty() || section == "end") {
      out.push_back({rel, lineno, "doc-sync",
                     "name literal \"" + name + "\" outside a mtat-lint section marker"});
      continue;
    }
    std::set<std::string>* dest = nullptr;
    if (section == "metric") dest = &table.metrics;
    else if (section == "trace-event") dest = &table.trace_events;
    else if (section == "trace-category") dest = &table.categories;
    if (dest == nullptr) {
      out.push_back({rel, lineno, "doc-sync", "unknown mtat-lint section \"" + section + "\""});
      continue;
    }
    if (!dest->insert(name).second)
      out.push_back({rel, lineno, "doc-sync", "duplicate name \"" + name + "\""});
    if (section == "metric") {
      if (const char* canon = bad_unit_suffix(name))
        out.push_back({rel, lineno, "unit-suffix",
                       "metric name \"" + name + "\" uses a non-canonical unit suffix; use _" +
                           canon});
    }
  }
  return table;
}

// ----------------------------------------------------------------- allowlist --

Allowlist load_allowlist(const std::filesystem::path& file, std::vector<Finding>& out) {
  Allowlist allow;
  std::string text;
  if (!read_file(file, text)) return allow;  // optional file
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ls(line);
    std::string rule, path;
    if (!(ls >> rule)) continue;  // blank line
    if (!(ls >> path)) {
      out.push_back({file.generic_string(), lineno, "doc-sync",
                     "allowlist entry needs `<rule> <path>`"});
      continue;
    }
    std::replace(path.begin(), path.end(), '\\', '/');
    allow.files_by_rule[rule].insert(path);
  }
  return allow;
}

// --------------------------------------------------------------- lint_source --

void lint_source(const std::string& rel_path, const std::string& contents,
                 const NameTable& names, const Allowlist& allow, std::vector<Finding>& out) {
  const StrippedFile f = strip(contents);
  const bool header = is_header(rel_path);

  auto report = [&](int line, const std::string& rule, const std::string& msg) {
    if (allow.allows(rule, rel_path)) return;
    if (inline_allowed(f.raw[static_cast<std::size_t>(line - 1)], rule)) return;
    out.push_back({rel_path, line, rule, msg});
  };

  for (std::size_t li = 0; li < f.scan.size(); ++li) {
    const std::string& scan = f.scan[li];
    const std::string& code = f.code[li];
    const int lineno = static_cast<int>(li) + 1;

    // -- metric/trace name call sites ---------------------------------------
    for (auto it = std::sregex_iterator(scan.begin(), scan.end(), call_token_re());
         it != std::sregex_iterator(); ++it) {
      std::size_t pos = static_cast<std::size_t>(it->position()) + it->length();
      const bool wallspan = (*it)[1] == "WallSpan";
      auto skip_ws = [&] {
        while (pos < scan.size() && std::isspace(static_cast<unsigned char>(scan[pos]))) ++pos;
      };
      skip_ws();
      if (wallspan && pos < scan.size() &&
          (std::isalpha(static_cast<unsigned char>(scan[pos])) || scan[pos] == '_')) {
        // `obs::WallSpan span(...)` — skip the variable name.
        while (pos < scan.size() &&
               (std::isalnum(static_cast<unsigned char>(scan[pos])) || scan[pos] == '_'))
          ++pos;
        skip_ws();
      }
      if (pos >= scan.size() || scan[pos] != '(') continue;
      ++pos;
      skip_ws();
      std::string name;
      if (!extract_literal(code, pos, name)) continue;
      if (!names.contains(name)) {
        report(lineno, "metric-name",
               "unknown metric/trace name \"" + name +
                   "\": not declared in src/obs/names.h (declare it there and add it to the "
                   "DESIGN.md name table)");
      } else {
        report(lineno, "metric-name",
               "metric/trace name literal \"" + name +
                   "\": use the obs::names:: constant from src/obs/names.h");
      }
      if (const char* canon = bad_unit_suffix(name))
        report(lineno, "unit-suffix",
               "metric name \"" + name + "\" uses a non-canonical unit suffix; use _" + canon);
    }

    // -- strict-domain name literals anywhere -------------------------------
    //
    // Some name families get a stricter rule than the call-site-only
    // metric-name check: a literal in one of these namespaces is flagged
    // wherever it appears (comparisons, map keys, test expectations
    // included) — the only blessed spelling is the obs::names:: constant,
    // declared in names.h. The fault.* counters are how resilience claims
    // are audited; the cluster.* gauges are what the fleet's telemetry-aware
    // placement decides on, so a forked spelling would silently blind the
    // balancer; the perf.* series are what tools/perf_diff gates on, so a
    // forked spelling would fork the performance trajectory.
    struct StrictDomain {
      const char* prefix;
      const char* rule;
      const char* what;
    };
    static const StrictDomain kStrictDomains[] = {
        {"fault.", "fault-name", "fault-domain"},        // mtat-lint: allow(fault-name)
        {"cluster.", "cluster-name", "cluster-domain"},  // mtat-lint: allow(cluster-name)
        {"perf.", "perf-name", "perf-domain"},           // mtat-lint: allow(perf-name)
    };
    for (std::size_t pos = scan.find('"'); pos != std::string::npos;
         pos = scan.find('"', pos + 1)) {
      std::string lit;
      if (!extract_literal(code, pos, lit)) break;  // unclosed on this line
      const std::size_t close = scan.find('"', pos + 1);
      if (close == std::string::npos) break;
      pos = close;
      for (const StrictDomain& d : kStrictDomains) {
        if (lit.rfind(d.prefix, 0) != 0) continue;
        if (names.contains(lit)) {
          report(lineno, d.rule,
                 std::string(d.what) + " name literal \"" + lit +
                     "\": use the obs::names:: constant from src/obs/names.h");
        } else {
          report(lineno, d.rule,
                 std::string("unknown ") + d.what + " name \"" + lit + "\": every " + d.prefix +
                     "* metric/trace name must be declared in src/obs/names.h "
                     "and referenced via its obs::names:: constant");
        }
        break;
      }
    }

    // -- banned tokens ------------------------------------------------------
    for (const TokenRule& r : nondet_rules())
      if (std::regex_search(scan, r.re))
        report(lineno, r.rule,
               std::string("nondeterminism source ") + r.what +
                   ": use the seeded common/rng.h (randomness) or steady_clock (wall time)");
    for (const TokenRule& r : parse_rules())
      if (std::regex_search(scan, r.re))
        report(lineno, r.rule,
               std::string("unchecked number parse ") + r.what +
                   ": use common/parse.h or a checked strtol/strtoull pattern");
    for (const TokenRule& r : env_rules())
      if (std::regex_search(scan, r.re))
        report(lineno, r.rule,
               std::string("direct environment read ") + r.what +
                   ": MTAT_* knobs are parsed once by bench::Env (bench/env.h); read the "
                   "parsed struct instead");

    // -- using namespace in headers -----------------------------------------
    static const std::regex using_ns_re(R"(^\s*using\s+namespace\b)");
    if (header && std::regex_search(scan, using_ns_re))
      report(lineno, "ns-header",
             "`using namespace` in a header leaks into every includer; qualify names or move "
             "the directive into a .cc file");
  }
}

// ------------------------------------------------------------------ doc sync --

namespace {

/// Backticked names from the first column of the marker-delimited table.
std::set<std::string> doc_table_names(const std::vector<std::string>& lines,
                                      const std::string& table, const std::string& doc_rel,
                                      std::vector<Finding>& out) {
  const std::string begin_marker = "<!-- mtat-lint: " + table + " begin -->";
  const std::string end_marker = "<!-- mtat-lint: " + table + " end -->";
  std::set<std::string> found;
  static const std::regex name_re(R"(`([a-z][a-z0-9_.]*)`)");
  bool inside = false, seen = false;
  for (const std::string& line : lines) {
    if (line.find(begin_marker) != std::string::npos) {
      inside = seen = true;
      continue;
    }
    if (line.find(end_marker) != std::string::npos) inside = false;
    if (!inside || line.empty() || line[0] != '|') continue;
    const std::size_t second_bar = line.find('|', 1);
    if (second_bar == std::string::npos) continue;
    const std::string first_cell = line.substr(0, second_bar);
    for (auto it = std::sregex_iterator(first_cell.begin(), first_cell.end(), name_re);
         it != std::sregex_iterator(); ++it)
      found.insert((*it)[1]);
  }
  if (!seen)
    out.push_back({doc_rel, 0, "doc-sync", "marker `" + begin_marker + "` not found"});
  return found;
}

}  // namespace

void crosscheck_design(const std::filesystem::path& design_doc, const std::string& doc_rel_path,
                       const NameTable& names, std::vector<Finding>& out) {
  std::string text;
  if (!read_file(design_doc, text)) {
    out.push_back({doc_rel_path, 0, "doc-sync", "cannot read " + doc_rel_path});
    return;
  }
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);

  const std::set<std::string> doc_metrics =
      doc_table_names(lines, "metric-table", doc_rel_path, out);
  const std::set<std::string> doc_traces =
      doc_table_names(lines, "trace-table", doc_rel_path, out);

  auto diff = [&](const std::set<std::string>& code, const std::set<std::string>& doc,
                  const char* kind) {
    for (const std::string& n : code)
      if (doc.count(n) == 0)
        out.push_back({doc_rel_path, 0, "doc-sync",
                       std::string(kind) + " \"" + n +
                           "\" is declared in src/obs/names.h but missing from the DESIGN.md " +
                           "table"});
    for (const std::string& n : doc)
      if (code.count(n) == 0)
        out.push_back({doc_rel_path, 0, "doc-sync",
                       std::string("DESIGN.md lists ") + kind + " \"" + n +
                           "\" but src/obs/names.h does not declare it"});
  };
  diff(names.metrics, doc_metrics, "metric");
  diff(names.trace_events, doc_traces, "trace event");
}

// ------------------------------------------------------------------ tree run --

std::vector<Finding> run(const Options& opt) {
  std::vector<Finding> out;
  const NameTable names = load_name_table(opt.root / opt.names_header, out);
  if (names.empty())
    out.push_back({opt.names_header, 0, "doc-sync",
                   "no names parsed from " + opt.names_header + " (missing section markers?)"});
  const Allowlist allow = load_allowlist(opt.root / opt.allowlist_file, out);

  const std::set<std::string> exts = {".h", ".hpp", ".cc", ".cpp"};
  for (const std::string& dir : opt.dirs) {
    const std::filesystem::path base = opt.root / dir;
    if (!std::filesystem::exists(base)) continue;
    for (auto it = std::filesystem::recursive_directory_iterator(base);
         it != std::filesystem::recursive_directory_iterator(); ++it) {
      const std::filesystem::path& p = it->path();
      const std::string fname = p.filename().string();
      if (it->is_directory()) {
        // Lint fixtures are violations by design; build trees are generated.
        if (fname == "fixtures" || fname.rfind("build", 0) == 0 || fname.front() == '.')
          it.disable_recursion_pending();
        continue;
      }
      if (exts.count(p.extension().string()) == 0) continue;
      std::string contents;
      if (!read_file(p, contents)) continue;
      const std::string rel =
          std::filesystem::relative(p, opt.root).generic_string();
      lint_source(rel, contents, names, allow, out);
    }
  }
  if (opt.check_docs)
    crosscheck_design(opt.root / opt.design_doc, opt.design_doc, names, out);

  std::sort(out.begin(), out.end(), [](const Finding& a, const Finding& b) {
    if (a.file != b.file) return a.file < b.file;
    if (a.line != b.line) return a.line < b.line;
    return a.message < b.message;
  });
  return out;
}

int run_and_report(const Options& opt, std::ostream& diag) {
  const std::vector<Finding> findings = run(opt);
  for (const Finding& f : findings)
    diag << f.file << ':' << f.line << ": [" << f.rule << "] " << f.message << '\n';
  if (findings.empty())
    diag << "mtat_lint: clean\n";
  else
    diag << "mtat_lint: " << findings.size() << " finding(s)\n";
  return static_cast<int>(findings.size());
}

}  // namespace mtat::lint
