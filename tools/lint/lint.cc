#include "lint.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <ostream>
#include <regex>
#include <sstream>

#include "lexer.h"
#include "model.h"

namespace mtat::lint {

namespace {

// ------------------------------------------------------------- file reading --

bool read_file(const std::filesystem::path& p, std::string& out) {
  std::ifstream in(p, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

bool is_header(const std::string& path) {
  return path.ends_with(".h") || path.ends_with(".hpp");
}

bool is_ident(const Token& t, const char* text) {
  return t.kind == Token::Kind::kIdent && t.text == text;
}
bool is_punct(const Token& t, const char* text) {
  return t.kind == Token::Kind::kPunct && t.text == text;
}

bool in_set(const std::string& s, const std::set<std::string>& set) {
  return set.count(s) != 0;
}

}  // namespace

// --------------------------------------------------------------- unit suffix --

const char* bad_unit_suffix(const std::string& name) {
  static const std::map<std::string, const char*> kBad = {
      {"usec", "us"},         {"micros", "us"},       {"microsecs", "us"},
      {"microseconds", "us"}, {"msec", "ms"},         {"millis", "ms"},
      {"milliseconds", "ms"}, {"nsec", "ns"},         {"nanos", "ns"},
      {"nanoseconds", "ns"},  {"secs", "us"},         {"seconds", "us"},
      {"byte", "bytes"},      {"kb", "bytes"},        {"mb", "bytes"},
      {"gb", "bytes"},        {"kib", "bytes"},       {"mib", "bytes"},
      {"gib", "bytes"},       {"percent", "pct"},     {"percentage", "pct"},
      {"bps", "bytes_per_sec"}};
  // Examine the final _token of the last dot-component; a structural "_hist"
  // tail is transparent ("x.wall_usec_hist" is judged on "usec").
  const std::size_t dot = name.rfind('.');
  std::string last = dot == std::string::npos ? name : name.substr(dot + 1);
  std::vector<std::string> tokens;
  std::size_t start = 0;
  for (std::size_t p = 0; p <= last.size(); ++p) {
    if (p == last.size() || last[p] == '_') {
      tokens.push_back(last.substr(start, p - start));
      start = p + 1;
    }
  }
  if (tokens.empty()) return nullptr;
  std::string tail = tokens.back();
  if (tail == "hist" && tokens.size() >= 2) tail = tokens[tokens.size() - 2];
  const auto it = kBad.find(tail);
  return it == kBad.end() ? nullptr : it->second;
}

// ---------------------------------------------------------------- name table --

NameTable load_name_table(const std::filesystem::path& header, std::vector<Finding>& out) {
  NameTable table;
  std::string text;
  const std::string rel = header.generic_string();
  if (!read_file(header, text)) {
    out.push_back({rel, 0, "doc-sync", "cannot read names header " + rel});
    return table;
  }
  static const std::regex section_re(R"(mtat-lint:\s*section=([a-z-]+))");
  static const std::regex literal_re(R"re("([^"]*)")re");
  std::string section;
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  bool pending = false;  // previous line was a `constexpr ... =` continuation
  while (std::getline(in, line)) {
    ++lineno;
    std::smatch m;
    if (std::regex_search(line, m, section_re)) {
      section = m[1];
      pending = false;
      continue;
    }
    const bool declares = line.find("constexpr") != std::string::npos;
    if (!std::regex_search(line, m, literal_re)) {
      // `constexpr const char* kVeryLongName =` with the literal wrapped to
      // the next line.
      const auto last = line.find_last_not_of(" \t\r");
      pending = declares && last != std::string::npos && line[last] == '=';
      continue;
    }
    if (!declares && !pending) continue;
    pending = false;
    const std::string name = m[1];
    if (section.empty() || section == "end") {
      out.push_back({rel, lineno, "doc-sync",
                     "name literal \"" + name + "\" outside a mtat-lint section marker"});
      continue;
    }
    std::set<std::string>* dest = nullptr;
    if (section == "metric") dest = &table.metrics;
    else if (section == "trace-event") dest = &table.trace_events;
    else if (section == "trace-category") dest = &table.categories;
    if (dest == nullptr) {
      out.push_back({rel, lineno, "doc-sync", "unknown mtat-lint section \"" + section + "\""});
      continue;
    }
    if (!dest->insert(name).second)
      out.push_back({rel, lineno, "doc-sync", "duplicate name \"" + name + "\""});
    if (section == "metric") {
      if (const char* canon = bad_unit_suffix(name))
        out.push_back({rel, lineno, "unit-suffix",
                       "metric name \"" + name + "\" uses a non-canonical unit suffix; use _" +
                           canon});
    }
  }
  return table;
}

// ----------------------------------------------------------------- allowlist --

Allowlist load_allowlist(const std::filesystem::path& file, std::vector<Finding>& out) {
  Allowlist allow;
  std::string text;
  if (!read_file(file, text)) return allow;  // optional file
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ls(line);
    std::string rule, path;
    if (!(ls >> rule)) continue;  // blank line
    if (!(ls >> path)) {
      out.push_back({file.generic_string(), lineno, "doc-sync",
                     "allowlist entry needs `<rule> <path>`"});
      continue;
    }
    std::replace(path.begin(), path.end(), '\\', '/');
    allow.entries.push_back({lineno, rule, path});
    allow.files_by_rule[rule].insert(path);
  }
  return allow;
}

// --------------------------------------------------------------- lint_source --

namespace {

/// Rule engine for one lexed translation unit. Each check_* method walks the
/// token stream or the file model and calls report(), which applies the
/// suppression machinery (inline markers first, then the file allowlist) and
/// tracks which suppressions fired.
class SourceLinter {
 public:
  SourceLinter(const std::string& rel_path, const LexedFile& lexed, const FileModel& model,
               const NameTable& names, const Allowlist& allow, std::vector<Finding>& out,
               SuppressionUsage* usage)
      : rel_(rel_path),
        lexed_(lexed),
        model_(model),
        names_(names),
        allow_(allow),
        out_(out),
        usage_(usage) {}

  void run() {
    check_tokens();
    check_shared_mutable();
    check_unordered_iter();
    check_guarded_by();
    check_stale_inline();  // must run last: it needs the full usage picture
  }

 private:
  void report(int line, const std::string& rule, const std::string& msg) {
    const auto it = lexed_.allows.find(line);
    if (it != lexed_.allows.end() && it->second.count(rule) != 0) {
      inline_used_.insert({line, rule});
      return;
    }
    if (allow_.allows(rule, rel_)) {
      if (usage_ != nullptr) usage_->allowlist_entries.insert({rule, rel_});
      return;
    }
    out_.push_back({rel_, line, rule, msg});
  }

  const Token* tok(std::size_t i) const {
    return i < lexed_.tokens.size() ? &lexed_.tokens[i] : nullptr;
  }

  // -- token rules ----------------------------------------------------------

  void check_tokens() {
    const bool header = is_header(rel_);
    const std::vector<Token>& toks = lexed_.tokens;
    for (std::size_t i = 0; i < toks.size(); ++i) {
      const Token& t = toks[i];
      if (t.kind == Token::Kind::kString) {
        check_strict_domains(t);
        continue;
      }
      if (t.kind != Token::Kind::kIdent) continue;
      const Token* next = tok(i + 1);
      const bool call = next != nullptr && is_punct(*next, "(");

      check_banned_idents(t, call);
      if (header && t.text == "using" && next != nullptr && is_ident(*next, "namespace"))
        report(t.line, "ns-header",
               "`using namespace` in a header leaks into every includer; qualify names or "
               "move the directive into a .cc file");
      check_metric_call(i);
      check_context_escape(i);
      check_pointer_order(i);
      check_unordered_begin(i);
      check_tier_literal(i);
    }
  }

  void check_banned_idents(const Token& t, bool call) {
    // Map an ident to its display spelling; call-style entries (value ends
    // in "()") only fire when the ident is followed by `(`.
    static const std::map<std::string, const char*> kNondet = {
        {"rand", "rand()"},
        {"srand", "srand()"},
        {"time", "time()"},
        {"clock", "clock()"},
        {"gettimeofday", "gettimeofday()"},
        {"random_device", "std::random_device"},
        {"system_clock", "std::chrono::system_clock"},
        {"localtime", "localtime"},
        {"gmtime", "gmtime"}};
    static const std::set<std::string> kAtoi = {"atoi", "atof", "atol", "atoll"};
    static const std::set<std::string> kSto = {"stoi", "stol",   "stoul", "stoll",
                                               "stoull", "stof", "stod",  "stold"};
    const auto nd = kNondet.find(t.text);
    if (nd != kNondet.end()) {
      const std::string what = nd->second;
      if (call || !what.ends_with("()"))
        report(t.line, "nondet",
               "nondeterminism source " + what +
                   ": use the seeded common/rng.h (randomness) or steady_clock (wall time)");
    }
    if (call && (in_set(t.text, kAtoi) || in_set(t.text, kSto)))
      report(t.line, "unsafe-parse",
             std::string("unchecked number parse ") +
                 (in_set(t.text, kAtoi) ? "atoi/atof family (errors collapse to 0)"
                                        : "std::sto* family (throws on bad input)") +
                 ": use common/parse.h or a checked strtol/strtoull pattern");
    if (call && t.text == "getenv")
      report(t.line, "getenv",
             "direct environment read std::getenv: MTAT_* knobs are parsed once by bench::Env "
             "(bench/env.h); read the parsed struct instead");
  }

  /// counter("x")/gauge/histogram/instant/complete, and WallSpan — the first
  /// argument must be an obs::names:: constant, never a literal. Token-based,
  /// so a literal that opens on the line after the `(` is caught too.
  void check_metric_call(std::size_t i) {
    static const std::set<std::string> kCalls = {"counter", "gauge", "histogram", "instant",
                                                 "complete"};
    const Token& t = lexed_.tokens[i];
    std::size_t open = i + 1;
    if (t.text == "WallSpan") {
      // `obs::WallSpan span(name, ...)` — skip the variable name if present.
      const Token* n = tok(open);
      if (n != nullptr && n->kind == Token::Kind::kIdent) ++open;
    } else if (!in_set(t.text, kCalls)) {
      return;
    }
    const Token* paren = tok(open);
    const Token* arg = tok(open + 1);
    if (paren == nullptr || !is_punct(*paren, "(") || arg == nullptr ||
        arg->kind != Token::Kind::kString)
      return;
    const std::string& name = arg->text;
    if (!names_.contains(name)) {
      report(arg->line, "metric-name",
             "unknown metric/trace name \"" + name +
                 "\": not declared in src/obs/names.h (declare it there and add it to the "
                 "DESIGN.md name table)");
    } else {
      report(arg->line, "metric-name",
             "metric/trace name literal \"" + name +
                 "\": use the obs::names:: constant from src/obs/names.h");
    }
    if (const char* canon = bad_unit_suffix(name))
      report(arg->line, "unit-suffix",
             "metric name \"" + name + "\" uses a non-canonical unit suffix; use _" + canon);
  }

  /// fault.* / cluster.* / perf.* literals are banned anywhere on any line —
  /// comparisons, map keys, and test expectations included. Those families
  /// are audited across tools (perf_diff, the placement policy, resilience
  /// claims), so the only blessed spelling is the obs::names:: constant.
  void check_strict_domains(const Token& t) {
    struct StrictDomain {
      const char* prefix;
      const char* rule;
      const char* what;
    };
    // Matching is first-wins, so sub-family rows precede their parents: a
    // failure-domain literal reports under its own rule, which lets the
    // allowlist bless names.h for the sub-family without widening the
    // parent-domain grant.
    static const StrictDomain kStrictDomains[] = {
        {"fault.node_", "node-fault-name", "node-fault-domain"},    // mtat-lint: allow(node-fault-name)
        {"fault.", "fault-name", "fault-domain"},        // mtat-lint: allow(fault-name)
        {"cluster.failover_", "failover-name", "failover-domain"},  // mtat-lint: allow(failover-name)
        {"cluster.", "cluster-name", "cluster-domain"},  // mtat-lint: allow(cluster-name)
        {"perf.", "perf-name", "perf-domain"},           // mtat-lint: allow(perf-name)
    };
    for (const StrictDomain& d : kStrictDomains) {
      if (t.text.rfind(d.prefix, 0) != 0) continue;
      if (names_.contains(t.text)) {
        report(t.line, d.rule,
               std::string(d.what) + " name literal \"" + t.text +
                   "\": use the obs::names:: constant from src/obs/names.h");
      } else {
        report(t.line, d.rule,
               std::string("unknown ") + d.what + " name \"" + t.text + "\": every " +
                   d.prefix +
                   "* metric/trace name must be declared in src/obs/names.h "
                   "and referenced via its obs::names:: constant");
      }
      return;
    }
  }

  /// obs::trace() / obs::default_trace() (and bare default_trace()) reach for
  /// the process-global trace context. This is the lint form of the old
  /// check.sh grep gate, generalized: thread a RunContext / TraceRecorder&
  /// through the call chain instead. Sanctioned sites are allowlisted.
  void check_context_escape(std::size_t i) {
    const Token& t = lexed_.tokens[i];
    if (t.text != "trace" && t.text != "default_trace") return;
    const Token* open = tok(i + 1);
    const Token* close = tok(i + 2);
    if (open == nullptr || close == nullptr || !is_punct(*open, "(") || !is_punct(*close, ")"))
      return;
    const bool obs_qualified = i >= 2 && is_punct(lexed_.tokens[i - 1], "::") &&
                               is_ident(lexed_.tokens[i - 2], "obs");
    if (!obs_qualified && t.text != "default_trace") return;
    report(t.line, "context-escape",
           "process-global trace context " + t.text +
               "(): thread the RunContext (or a TraceRecorder&) through the call chain; "
               "sanctioned construction/merge sites carry an explicit suppression");
  }

  /// std::map/std::set (or their unordered cousins) keyed by a pointer type,
  /// and pointer-to-integer types: both order or key by allocation address.
  void check_pointer_order(std::size_t i) {
    const Token& t = lexed_.tokens[i];
    if (t.text == "uintptr_t" || t.text == "intptr_t") {
      report(t.line, "pointer-order",
             "pointer-to-integer type " + t.text +
                 ": ordering, keying, or hashing by address is allocation-dependent and "
                 "differs run to run; derive a stable id instead");
      return;
    }
    static const std::set<std::string> kKeyed = {"map",           "set",
                                                 "multimap",      "multiset",
                                                 "unordered_map", "unordered_set"};
    if (!in_set(t.text, kKeyed)) return;
    const Token* open = tok(i + 1);
    if (open == nullptr || !is_punct(*open, "<")) return;
    // Walk the key type (up to the first top-level `,` or the closing `>`);
    // a `*` there means the container is keyed by pointer value.
    int depth = 1;
    for (std::size_t j = i + 2; j < lexed_.tokens.size() && j < i + 64; ++j) {
      const Token& u = lexed_.tokens[j];
      if (u.kind != Token::Kind::kPunct) continue;
      if (u.text == "<") ++depth;
      else if (u.text == ">") --depth;
      else if (u.text == ">>") depth -= 2;
      else if (u.text == "(") return;  // not a template-argument list after all
      if (depth <= 0) return;
      if (depth == 1 && u.text == ",") return;  // key type ended cleanly
      if (depth == 1 && u.text == "*") {
        report(t.line, "pointer-order",
               "container keyed by pointer value (std::" + t.text +
                   " with a pointer key): iteration and compare order follow allocation "
                   "addresses, which differ run to run; key by a stable id instead");
        return;
      }
    }
  }

  /// `x.begin()` on a name declared with an unordered container type: the
  /// iterator-loop spelling of unordered-iter (range-for is handled from the
  /// model).
  void check_unordered_begin(std::size_t i) {
    const Token& t = lexed_.tokens[i];
    if (model_.unordered_names.count(t.text) == 0) return;
    const Token* dot = tok(i + 1);
    const Token* method = tok(i + 2);
    if (dot == nullptr || method == nullptr) return;
    if (!is_punct(*dot, ".") && !is_punct(*dot, "->")) return;
    if (!is_ident(*method, "begin") && !is_ident(*method, "cbegin")) return;
    report(t.line, "unordered-iter",
           "iteration over unordered container '" + t.text +
               "': visit order is hash/bucket-dependent and can leak into results, metrics, "
               "or trace order; use std::map/std::set or drain into a sorted vector first");
  }

  /// Raw two-tier aliases `Tier::kFMem` / `Tier::kSMem` outside the memory
  /// substrate and the tests: code that names the two classic tiers directly
  /// silently stops generalizing to N-tier topologies. Spell the fast tier
  /// as kFastestTier, derive others with TierId arithmetic, or use the
  /// slower-aggregate telemetry queries.
  void check_tier_literal(std::size_t i) {
    if (rel_.rfind("src/mem/", 0) == 0 || rel_.rfind("tests/", 0) == 0) return;
    const Token& t = lexed_.tokens[i];
    if (t.text != "Tier") return;
    const Token* colons = tok(i + 1);
    const Token* member = tok(i + 2);
    if (colons == nullptr || member == nullptr || !is_punct(*colons, "::")) return;
    if (member->kind != Token::Kind::kIdent ||
        (member->text != "kFMem" && member->text != "kSMem"))
      return;
    report(member->line, "tier-literal",
           "two-tier literal Tier::" + member->text +
               " outside src/mem/ and tests/: use kFastestTier / TierId arithmetic (or the "
               "slower-aggregate PageHotness queries) so the code works on N-tier topologies");
  }

  // -- model rules ----------------------------------------------------------

  void check_shared_mutable() {
    for (const StateDecl& d : model_.state_decls) {
      if (d.is_const) continue;
      const char* where = "namespace scope";
      if (d.where == StateDecl::Where::kLocalStatic)
        where = d.is_thread_local ? "function-local thread_local" : "function-local static";
      else if (d.where == StateDecl::Where::kStaticMember)
        where = "static data member";
      report(d.line, "shared-mutable",
             "mutable shared state '" + d.name + "' (" + where +
                 "): shared across threads and calls, so writes are schedule-dependent; pass "
                 "the state through explicitly, or document single-owner initialization with "
                 "an inline suppression and an ownership note");
    }
  }

  void check_unordered_iter() {
    for (const RangeForStmt& rf : model_.range_fors) {
      for (const std::string& id : rf.range_idents) {
        if (model_.unordered_names.count(id) == 0) continue;
        report(rf.line, "unordered-iter",
               "iteration over unordered container '" + id +
                   "': visit order is hash/bucket-dependent and can leak into results, "
                   "metrics, or trace order; use std::map/std::set or drain into a sorted "
                   "vector first");
        break;
      }
    }
  }

  void check_guarded_by() {
    for (const ClassModel& c : model_.classes) {
      for (const MemberDecl& m : c.members) {
        if (!m.is_mutex || c.annotation_targets.count(m.name) != 0) continue;
        report(m.line, "guarded-by",
               "mutex member '" + m.name + "' of " + c.name +
                   " is not referenced by any thread-safety annotation; mark the state it "
                   "guards with GUARDED_BY(" + m.name + ") and lock-holding methods with "
                   "REQUIRES(" + m.name + ") (src/common/thread_annotations.h)");
      }
    }
  }

  // -- stale inline suppressions --------------------------------------------

  void check_stale_inline() {
    for (const auto& [line, rules] : lexed_.allows) {
      for (const std::string& r : rules) {
        if (r == "stale-suppression") continue;  // meta-markers never rot
        if (inline_used_.count({line, r}) != 0) continue;
        report(line, "stale-suppression",
               "stale suppression: no " + r +
                   " finding on this line is suppressed by `mtat-lint: allow(" + r +
                   ")`; remove the marker");
      }
    }
  }

  const std::string& rel_;
  const LexedFile& lexed_;
  const FileModel& model_;
  const NameTable& names_;
  const Allowlist& allow_;
  std::vector<Finding>& out_;
  SuppressionUsage* usage_;
  std::set<std::pair<int, std::string>> inline_used_;
};

}  // namespace

void lint_source(const std::string& rel_path, const std::string& contents,
                 const NameTable& names, const Allowlist& allow, std::vector<Finding>& out,
                 SuppressionUsage* usage) {
  const LexedFile lexed = lex(contents);
  const FileModel model = build_model(lexed);
  SourceLinter(rel_path, lexed, model, names, allow, out, usage).run();
}

// ------------------------------------------------------------------ doc sync --

namespace {

/// Backticked names from the first column of the marker-delimited table.
std::set<std::string> doc_table_names(const std::vector<std::string>& lines,
                                      const std::string& table, const std::string& doc_rel,
                                      std::vector<Finding>& out) {
  const std::string begin_marker = "<!-- mtat-lint: " + table + " begin -->";
  const std::string end_marker = "<!-- mtat-lint: " + table + " end -->";
  std::set<std::string> found;
  static const std::regex name_re(R"(`([a-z][a-z0-9_.]*)`)");
  bool inside = false, seen = false;
  for (const std::string& line : lines) {
    if (line.find(begin_marker) != std::string::npos) {
      inside = seen = true;
      continue;
    }
    if (line.find(end_marker) != std::string::npos) inside = false;
    if (!inside || line.empty() || line[0] != '|') continue;
    const std::size_t second_bar = line.find('|', 1);
    if (second_bar == std::string::npos) continue;
    const std::string first_cell = line.substr(0, second_bar);
    for (auto it = std::sregex_iterator(first_cell.begin(), first_cell.end(), name_re);
         it != std::sregex_iterator(); ++it)
      found.insert((*it)[1]);
  }
  if (!seen)
    out.push_back({doc_rel, 0, "doc-sync", "marker `" + begin_marker + "` not found"});
  return found;
}

}  // namespace

void crosscheck_design(const std::filesystem::path& design_doc, const std::string& doc_rel_path,
                       const NameTable& names, std::vector<Finding>& out) {
  std::string text;
  if (!read_file(design_doc, text)) {
    out.push_back({doc_rel_path, 0, "doc-sync", "cannot read " + doc_rel_path});
    return;
  }
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);

  const std::set<std::string> doc_metrics =
      doc_table_names(lines, "metric-table", doc_rel_path, out);
  const std::set<std::string> doc_traces =
      doc_table_names(lines, "trace-table", doc_rel_path, out);

  auto diff = [&](const std::set<std::string>& code, const std::set<std::string>& doc,
                  const char* kind) {
    for (const std::string& n : code)
      if (doc.count(n) == 0)
        out.push_back({doc_rel_path, 0, "doc-sync",
                       std::string(kind) + " \"" + n +
                           "\" is declared in src/obs/names.h but missing from the DESIGN.md " +
                           "table"});
    for (const std::string& n : doc)
      if (code.count(n) == 0)
        out.push_back({doc_rel_path, 0, "doc-sync",
                       std::string("DESIGN.md lists ") + kind + " \"" + n +
                           "\" but src/obs/names.h does not declare it"});
  };
  diff(names.metrics, doc_metrics, "metric");
  diff(names.trace_events, doc_traces, "trace event");
}

// ------------------------------------------------------------------ tree run --

std::vector<Finding> run(const Options& opt) {
  std::vector<Finding> out;
  const NameTable names = load_name_table(opt.root / opt.names_header, out);
  if (names.empty())
    out.push_back({opt.names_header, 0, "doc-sync",
                   "no names parsed from " + opt.names_header + " (missing section markers?)"});
  const Allowlist allow = load_allowlist(opt.root / opt.allowlist_file, out);

  SuppressionUsage usage;
  std::set<std::string> scanned;
  const std::set<std::string> exts = {".h", ".hpp", ".cc", ".cpp"};
  for (const std::string& dir : opt.dirs) {
    const std::filesystem::path base = opt.root / dir;
    if (!std::filesystem::exists(base)) continue;
    for (auto it = std::filesystem::recursive_directory_iterator(base);
         it != std::filesystem::recursive_directory_iterator(); ++it) {
      const std::filesystem::path& p = it->path();
      const std::string fname = p.filename().string();
      if (it->is_directory()) {
        // Lint fixtures are violations by design; build trees are generated.
        if (fname == "fixtures" || fname.rfind("build", 0) == 0 || fname.front() == '.')
          it.disable_recursion_pending();
        continue;
      }
      if (exts.count(p.extension().string()) == 0) continue;
      std::string contents;
      if (!read_file(p, contents)) continue;
      const std::string rel =
          std::filesystem::relative(p, opt.root).generic_string();
      scanned.insert(rel);
      lint_source(rel, contents, names, allow, out, &usage);
    }
  }

  // Stale allowlist entries: the file was scanned this run, yet no finding of
  // that rule needed the exemption. Entries for files outside the scanned
  // dirs are left alone (a scoped run must not declare them dead).
  for (const Allowlist::Entry& e : allow.entries) {
    if (e.rule == "stale-suppression") continue;
    if (scanned.count(e.path) == 0) continue;
    if (usage.allowlist_entries.count({e.rule, e.path}) != 0) continue;
    out.push_back({opt.allowlist_file, e.line, "stale-suppression",
                   "stale allowlist entry `" + e.rule + " " + e.path +
                       "`: the file was scanned and produced no " + e.rule +
                       " finding; remove the entry"});
  }

  if (opt.check_docs)
    crosscheck_design(opt.root / opt.design_doc, opt.design_doc, names, out);

  std::sort(out.begin(), out.end(), [](const Finding& a, const Finding& b) {
    if (a.file != b.file) return a.file < b.file;
    if (a.line != b.line) return a.line < b.line;
    return a.message < b.message;
  });
  return out;
}

int run_and_report(const Options& opt, std::ostream& diag) {
  const std::vector<Finding> findings = run(opt);
  for (const Finding& f : findings)
    diag << f.file << ':' << f.line << ": [" << f.rule << "] " << f.message << '\n';
  if (findings.empty())
    diag << "mtat_lint: clean\n";
  else
    diag << "mtat_lint: " << findings.size() << " finding(s)\n";
  return static_cast<int>(findings.size());
}

}  // namespace mtat::lint
