#include "model.h"

#include <algorithm>

namespace mtat::lint {

namespace {

bool is_ident(const Token& t, const char* text) {
  return t.kind == Token::Kind::kIdent && t.text == text;
}
bool is_punct(const Token& t, const char* text) {
  return t.kind == Token::Kind::kPunct && t.text == text;
}

const std::set<std::string>& annotation_macros() {
  static const std::set<std::string> kMacros = {
      "GUARDED_BY",        "PT_GUARDED_BY",            "REQUIRES",
      "REQUIRES_SHARED",   "ACQUIRE",                  "ACQUIRE_SHARED",
      "RELEASE",           "RELEASE_SHARED",           "RELEASE_GENERIC",
      "TRY_ACQUIRE",       "TRY_ACQUIRE_SHARED",       "EXCLUDES",
      "ASSERT_CAPABILITY", "ASSERT_SHARED_CAPABILITY", "RETURN_CAPABILITY"};
  return kMacros;
}

bool is_unordered_ident(const std::string& s) {
  return s == "unordered_map" || s == "unordered_set" || s == "unordered_multimap" ||
         s == "unordered_multiset";
}

bool is_mutex_ident(const std::string& s) {
  return s == "mutex" || s == "shared_mutex" || s == "recursive_mutex" ||
         s == "timed_mutex" || s == "recursive_timed_mutex" || s == "shared_timed_mutex" ||
         s == "Mutex";
}

/// Heads that mean "this statement is not a variable declaration".
bool is_non_decl_head(const std::string& s) {
  static const std::set<std::string> kHeads = {
      "using",  "typedef", "namespace", "friend", "template", "static_assert",
      "public", "private", "protected", "return", "if",       "for",
      "while",  "do",      "switch",    "break",  "continue", "goto",
      "throw",  "case",    "default",   "else",   "try",      "catch",
      "asm",    "concept", "requires",  "operator"};
  return kHeads.count(s) != 0;
}

bool is_const_keyword(const std::string& s) {
  return s == "const" || s == "constexpr" || s == "constinit" || s == "consteval";
}

/// Does `<` at stmt[i] plausibly open a template argument list? (It follows
/// an identifier, `::`, or a closing `>`.)
bool opens_angle(const std::vector<Token>& stmt, std::size_t i) {
  if (i == 0) return false;
  const Token& prev = stmt[i - 1];
  return prev.kind == Token::Kind::kIdent || is_punct(prev, "::") || is_punct(prev, ">");
}

struct Scope {
  enum class Kind { kNamespace, kClass, kEnum, kFunction };
  Kind kind = Kind::kNamespace;
  int cls = -1;  ///< index into ModelBuilder::open_classes_ for kClass
};

class ModelBuilder {
 public:
  explicit ModelBuilder(const LexedFile& lexed) : lexed_(lexed) {}

  FileModel run() {
    model_.includes = lexed_.includes;
    scopes_.push_back({Scope::Kind::kNamespace, -1});
    for (const Token& t : lexed_.tokens) {
      if (t.pp) continue;  // directives never affect scope or declarations
      step(t);
    }
    // Unterminated bodies (malformed input): keep what was gathered.
    for (ClassModel& c : open_classes_) model_.classes.push_back(std::move(c));
    return std::move(model_);
  }

 private:
  // -- statement machinery ---------------------------------------------------
  //
  // Tokens accumulate into `stmt_` until a top-level `;` (classify) or `{`
  // (open a scope, or swallow an initializer list). "Top level" means paren
  // depth zero: a `;` inside `for (...)` or a `{` passed inside a call never
  // splits the statement. Template-argument depth is tracked heuristically
  // (`<` after an identifier/`::`/`>` opens, `>`/`>>` close) and resets with
  // the statement, so a stray comparison can never corrupt more than the
  // statement it appears in.

  void step(const Token& t) {
    if (paren_depth_ == 0 && t.kind == Token::Kind::kPunct) {
      // `;` / `{` / `}` always split, even when the angle heuristic thinks a
      // template-argument list is open: a plain comparison (`a < b`) bumps
      // the depth with nothing to close it, and must not be able to poison
      // scope tracking past its own statement.
      if (t.text == ";") {
        end_statement();
        return;
      }
      if (t.text == "{") {
        open_brace();
        return;
      }
      if (t.text == "}") {
        close_brace();
        return;
      }
      if (angle_depth_ == 0) {
        if (t.text == ":" && current_kind() == Scope::Kind::kClass && stmt_.size() == 1 &&
            is_non_decl_head(stmt_[0].text)) {
          stmt_.clear();  // access specifier `public:` etc.
          return;
        }
        if (t.text == "=") has_top_level_eq_ = true;
      }
    }
    if (t.kind == Token::Kind::kPunct) {
      if (t.text == "(" || t.text == "[") ++paren_depth_;
      if ((t.text == ")" || t.text == "]") && paren_depth_ > 0) --paren_depth_;
      if (paren_depth_ == 0) {
        if (t.text == "<" && opens_angle(stmt_, stmt_.size())) ++angle_depth_;
        if (t.text == ">" && angle_depth_ > 0) --angle_depth_;
        if (t.text == ">>" && angle_depth_ > 0) angle_depth_ = std::max(0, angle_depth_ - 2);
      }
    }
    stmt_.push_back(t);
  }

  void end_statement() {
    // `struct X {...};` seeds the statement with "X" so a trailing declarator
    // (`struct X {...} name;`) classifies — but the bare `};` spelling leaves
    // only the seed, which is not a declaration.
    if (!(seeded_ && stmt_.size() == 1)) classify(stmt_);
    stmt_.clear();
    angle_depth_ = 0;
    has_top_level_eq_ = false;
    seeded_ = false;
  }

  Scope::Kind current_kind() const { return scopes_.back().kind; }

  /// Inside any brace-initializer (which is where lambda bodies in
  /// initializers live), declarations behave like function-local ones.
  Scope::Kind effective_kind() const {
    return brace_init_depth_ > 0 ? Scope::Kind::kFunction : current_kind();
  }

  ClassModel* current_class() {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it)
      if (it->kind == Scope::Kind::kClass && it->cls >= 0)
        return &open_classes_[static_cast<std::size_t>(it->cls)];
    return nullptr;
  }

  bool stmt_has_top_level_paren() const {
    int angle = 0;
    for (std::size_t i = 0; i < stmt_.size(); ++i) {
      const Token& t = stmt_[i];
      if (t.kind != Token::Kind::kPunct) continue;
      if (t.text == "<" && opens_angle(stmt_, i)) ++angle;
      else if (t.text == ">" && angle > 0) --angle;
      else if (t.text == ">>" && angle > 0) angle = std::max(0, angle - 2);
      else if (t.text == "(" && angle == 0) return true;
    }
    return false;
  }

  /// Is the pending `{` a declarator's brace initializer (`Type name{...}`)
  /// rather than a scope? Functions end in `)` or a qualifier chain after
  /// parens; class/namespace/enum heads are recognized by head_kind().
  bool is_declarator_init() const {
    if (stmt_.empty()) return false;
    if (is_non_decl_head(stmt_.front().text)) return false;
    const Token& last = stmt_.back();
    const bool last_ok = last.kind == Token::Kind::kIdent || is_punct(last, ">") ||
                         is_punct(last, "]");
    return last_ok && head_kind() == Scope::Kind::kFunction && !stmt_has_top_level_paren();
  }

  void open_brace() {
    if (has_top_level_eq_ || brace_init_depth_ > 0 || is_declarator_init()) {
      ++brace_init_depth_;
      stmt_.push_back(Token{Token::Kind::kPunct, "{", 0, false});
      return;
    }
    const Scope::Kind kind = head_kind();
    if (kind == Scope::Kind::kClass) {
      ClassModel cls;
      cls.line = stmt_.empty() ? 0 : stmt_.front().line;
      cls.name = class_name_from_head();
      open_classes_.push_back(std::move(cls));
      scopes_.push_back({Scope::Kind::kClass, static_cast<int>(open_classes_.size()) - 1});
      pending_class_intro_.push_back(open_classes_.back().name);
    } else {
      if (current_kind() == Scope::Kind::kClass && !stmt_.empty())
        harvest_annotations(stmt_);  // method signature before its body
      harvest_range_for(stmt_);
      scopes_.push_back({kind, -1});
    }
    stmt_.clear();
    angle_depth_ = 0;
    has_top_level_eq_ = false;
    seeded_ = false;
  }

  void close_brace() {
    if (brace_init_depth_ > 0) {
      --brace_init_depth_;
      stmt_.push_back(Token{Token::Kind::kPunct, "}", 0, false});
      return;
    }
    if (!stmt_.empty()) end_statement();  // statement without `;` before `}`
    if (scopes_.size() > 1) {
      const Scope closed = scopes_.back();
      scopes_.pop_back();
      if (closed.kind == Scope::Kind::kClass && !open_classes_.empty()) {
        model_.classes.push_back(std::move(open_classes_.back()));
        open_classes_.pop_back();
        // `struct X {...} name;` — seed the next statement with the class
        // name so the trailing declarator classifies as a variable of it.
        if (!pending_class_intro_.empty()) {
          stmt_.push_back(Token{Token::Kind::kIdent, pending_class_intro_.back(),
                                model_.classes.back().line, false});
          pending_class_intro_.pop_back();
          seeded_ = stmt_.size() == 1;
        }
      }
    }
  }

  /// What does a `{` after the current statement head open?
  Scope::Kind head_kind() const {
    if (stmt_.empty()) return Scope::Kind::kFunction;  // bare block
    if (is_ident(stmt_.front(), "namespace")) return Scope::Kind::kNamespace;
    // `extern "C" {` reopens namespace scope.
    if (is_ident(stmt_.front(), "extern") && stmt_.size() >= 2 &&
        stmt_[1].kind == Token::Kind::kString)
      return Scope::Kind::kNamespace;
    bool saw_paren = false;
    int angle = 0;
    for (std::size_t i = 0; i < stmt_.size(); ++i) {
      const Token& t = stmt_[i];
      if (t.kind == Token::Kind::kPunct) {
        if (t.text == "<" && opens_angle(stmt_, i)) ++angle;
        else if (t.text == ">" && angle > 0) --angle;
        else if (t.text == ">>" && angle > 0) angle = std::max(0, angle - 2);
        else if (t.text == "(" && angle == 0) saw_paren = true;
        continue;
      }
      if (angle > 0 || t.kind != Token::Kind::kIdent) continue;
      if (t.text == "enum") return Scope::Kind::kEnum;
      if ((t.text == "class" || t.text == "struct" || t.text == "union") && !saw_paren)
        return Scope::Kind::kClass;
    }
    return Scope::Kind::kFunction;
  }

  std::string class_name_from_head() const {
    // Last identifier before any base-clause `:` — `class Foo : public Bar`.
    std::string name = "<anonymous>";
    for (const Token& t : stmt_) {
      if (is_punct(t, ":")) break;
      if (t.kind == Token::Kind::kIdent && t.text != "class" && t.text != "struct" &&
          t.text != "union" && t.text != "final" && t.text != "alignas")
        name = t.text;
    }
    return name;
  }

  // -- classification --------------------------------------------------------

  /// Drop thread-safety annotation spans (`GUARDED_BY(mu_)` etc.) so an
  /// annotated member (`std::map<K,V> cache_ GUARDED_BY(mu_);`) still
  /// classifies as a data member, not as a function declaration.
  static std::vector<Token> strip_annotations(const std::vector<Token>& stmt) {
    std::vector<Token> out;
    out.reserve(stmt.size());
    for (std::size_t i = 0; i < stmt.size(); ++i) {
      if (stmt[i].kind == Token::Kind::kIdent && annotation_macros().count(stmt[i].text) != 0 &&
          i + 1 < stmt.size() && is_punct(stmt[i + 1], "(")) {
        int depth = 0;
        std::size_t j = i + 1;
        for (; j < stmt.size(); ++j) {
          if (is_punct(stmt[j], "(")) ++depth;
          else if (is_punct(stmt[j], ")") && --depth == 0) break;
        }
        i = j;
        continue;
      }
      out.push_back(stmt[i]);
    }
    return out;
  }

  void classify(const std::vector<Token>& raw_stmt) {
    if (raw_stmt.empty()) return;
    harvest_range_for(raw_stmt);
    harvest_using_alias(raw_stmt);
    const Scope::Kind kind = effective_kind();
    if (kind == Scope::Kind::kClass) harvest_annotations(raw_stmt);
    const std::vector<Token> stmt = strip_annotations(raw_stmt);
    if (stmt.empty()) return;
    if (kind == Scope::Kind::kEnum) return;
    if (is_non_decl_head(stmt.front().text)) return;
    if (is_ident(stmt.front(), "extern") && stmt.size() >= 2 &&
        stmt[1].kind == Token::Kind::kString)
      return;  // linkage declaration
    // Forward declarations (`class Foo;`, `enum class E : int;`) and the
    // rare elaborated-type variable are not state declarations.
    for (const Token& t : stmt)
      if (t.kind == Token::Kind::kIdent &&
          (t.text == "class" || t.text == "struct" || t.text == "union" || t.text == "enum"))
        return;

    // One pass over the top level of the statement: storage/const keywords,
    // `(` before any initializer (function declaration), and the declarator
    // name — the last top-level identifier before `=` / `{` / `[`.
    bool has_static = false, has_tl = false, has_const = false;
    bool fn_paren = false, seen_init = false;
    int angle = 0;
    std::vector<std::size_t> top_idents;
    for (std::size_t i = 0; i < stmt.size() && !seen_init; ++i) {
      const Token& t = stmt[i];
      if (t.kind == Token::Kind::kPunct) {
        if (t.text == "<" && opens_angle(stmt, i)) ++angle;
        else if (t.text == ">" && angle > 0) --angle;
        else if (t.text == ">>" && angle > 0) angle = std::max(0, angle - 2);
        if (angle > 0) continue;
        if (t.text == "=" || t.text == "{" || t.text == "[") seen_init = true;
        if (t.text == "(") fn_paren = true;
        continue;
      }
      if (angle > 0 || t.kind != Token::Kind::kIdent) continue;
      if (t.text == "static") { has_static = true; continue; }
      if (t.text == "thread_local") { has_tl = true; continue; }
      if (is_const_keyword(t.text)) { has_const = true; continue; }
      if (t.text == "inline" || t.text == "extern" || t.text == "volatile" ||
          t.text == "mutable")
        continue;
      top_idents.push_back(i);
    }
    if (top_idents.empty() || fn_paren) return;

    const std::size_t name_idx = top_idents.back();
    const Token& name_tok = stmt[name_idx];
    // A declaration names a type before the declarator. An expression
    // statement (`x = y;`, `++x;`, `x += 1;`) has no identifier there.
    bool has_type_ident = false;
    for (std::size_t i = 0; i < name_idx && !has_type_ident; ++i)
      has_type_ident = stmt[i].kind == Token::Kind::kIdent;
    if (!has_type_ident) return;
    std::string type;
    for (std::size_t i = 0; i < name_idx; ++i) {
      if (!type.empty()) type += ' ';
      type += stmt[i].text;
    }
    const auto type_has = [&](auto&& pred) {
      return std::any_of(stmt.begin(), stmt.begin() + static_cast<std::ptrdiff_t>(name_idx),
                         [&](const Token& t) {
                           return t.kind == Token::Kind::kIdent && pred(t.text);
                         });
    };
    if (type_has([this](const std::string& s) {
          return is_unordered_ident(s) || unordered_aliases_.count(s) != 0;
        }))
      model_.unordered_names.insert(name_tok.text);

    switch (kind) {
      case Scope::Kind::kNamespace:
        record_state(StateDecl::Where::kNamespaceScope, name_tok, type, has_const, has_tl);
        break;
      case Scope::Kind::kClass: {
        if (ClassModel* cls = current_class()) {
          MemberDecl m;
          m.line = name_tok.line;
          m.name = name_tok.text;
          m.type = type;
          m.is_mutex = type_has(is_mutex_ident);
          cls->members.push_back(std::move(m));
        }
        if (has_static && !has_const)
          record_state(StateDecl::Where::kStaticMember, name_tok, type, has_const, has_tl);
        break;
      }
      case Scope::Kind::kFunction:
        if (has_static || has_tl)
          record_state(StateDecl::Where::kLocalStatic, name_tok, type, has_const, has_tl);
        break;
      case Scope::Kind::kEnum:
        break;
    }
  }

  void record_state(StateDecl::Where where, const Token& name_tok, const std::string& type,
                    bool is_const, bool is_tl) {
    StateDecl d;
    d.where = where;
    d.line = name_tok.line;
    d.name = name_tok.text;
    d.type = type;
    d.is_const = is_const;
    d.is_thread_local = is_tl;
    model_.state_decls.push_back(std::move(d));
  }

  // -- harvesters ------------------------------------------------------------

  void harvest_annotations(const std::vector<Token>& stmt) {
    ClassModel* cls = current_class();
    if (cls == nullptr) return;
    for (std::size_t i = 0; i + 1 < stmt.size(); ++i) {
      if (stmt[i].kind != Token::Kind::kIdent || annotation_macros().count(stmt[i].text) == 0)
        continue;
      if (!is_punct(stmt[i + 1], "(")) continue;
      int depth = 0;
      for (std::size_t j = i + 1; j < stmt.size(); ++j) {
        if (is_punct(stmt[j], "(")) {
          ++depth;
        } else if (is_punct(stmt[j], ")")) {
          if (--depth == 0) break;
        } else if (stmt[j].kind == Token::Kind::kIdent && depth == 1) {
          cls->annotation_targets.insert(stmt[j].text);
        }
      }
    }
  }

  void harvest_using_alias(const std::vector<Token>& stmt) {
    // `using Alias = ...unordered_map...;` — remember Alias as an unordered
    // type so declarations through it still register.
    if (stmt.size() < 4 || !is_ident(stmt.front(), "using")) return;
    if (stmt[1].kind != Token::Kind::kIdent || !is_punct(stmt[2], "=")) return;
    for (std::size_t i = 3; i < stmt.size(); ++i)
      if (stmt[i].kind == Token::Kind::kIdent &&
          (is_unordered_ident(stmt[i].text) || unordered_aliases_.count(stmt[i].text) != 0)) {
        unordered_aliases_.insert(stmt[1].text);
        return;
      }
  }

  void harvest_range_for(const std::vector<Token>& stmt) {
    for (std::size_t i = 0; i + 1 < stmt.size(); ++i) {
      if (!is_ident(stmt[i], "for") || !is_punct(stmt[i + 1], "(")) continue;
      int depth = 0;
      std::size_t colon = 0, close = 0;
      bool classic = false;
      for (std::size_t j = i + 1; j < stmt.size(); ++j) {
        if (is_punct(stmt[j], "(") || is_punct(stmt[j], "[")) {
          ++depth;
        } else if (is_punct(stmt[j], ")") || is_punct(stmt[j], "]")) {
          if (--depth == 0) {
            close = j;
            break;
          }
        } else if (depth == 1 && is_punct(stmt[j], ";")) {
          classic = true;  // `for (init; cond; step)`
        } else if (depth == 1 && is_punct(stmt[j], ":") && colon == 0) {
          colon = j;
        }
      }
      if (classic || colon == 0 || close == 0) continue;
      RangeForStmt rf;
      rf.line = stmt[i].line;
      for (std::size_t j = colon + 1; j < close; ++j)
        if (stmt[j].kind == Token::Kind::kIdent) rf.range_idents.push_back(stmt[j].text);
      model_.range_fors.push_back(std::move(rf));
    }
  }

  const LexedFile& lexed_;
  FileModel model_;
  std::vector<Scope> scopes_;
  std::vector<ClassModel> open_classes_;
  std::vector<std::string> pending_class_intro_;
  std::vector<Token> stmt_;
  std::set<std::string> unordered_aliases_;
  int paren_depth_ = 0;
  int angle_depth_ = 0;
  int brace_init_depth_ = 0;
  bool has_top_level_eq_ = false;
  bool seeded_ = false;  ///< stmt_ currently starts with a class-intro seed
};

}  // namespace

FileModel build_model(const LexedFile& lexed) { return ModelBuilder(lexed).run(); }

}  // namespace mtat::lint
