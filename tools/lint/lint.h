// mtat_lint — repo-specific static analysis for the MTAT reproduction.
//
// clang-tidy knows C++; it does not know that "queue.arivals" is a typo that
// silently forks a metric series, or that one std::random_device call breaks
// the seed-determinism every experiment in this repo depends on. mtat_lint
// encodes those domain invariants as a small line-oriented checker, built and
// tested in-tree, and run over the real tree as a ctest. Rules:
//
//  metric-name   String literals passed to MetricsRegistry::counter()/
//                gauge()/histogram(), TraceRecorder::instant()/complete()/
//                counter(), or WallSpan must not appear at call sites: names
//                live in src/obs/names.h and call sites use the constants.
//                A literal that is not even in the table is reported as an
//                unknown name (the typo case); a known name spelled inline is
//                reported as a literal to migrate.
//  unit-suffix   Metric names use the canonical unit suffixes (_us, _ms, _ns,
//                _bytes, _pages, _pct, _per_sec). Variants like _usec, _msec,
//                _percent, _kb are rejected with the canonical suggestion.
//                Checked for every names.h entry and every literal found.
//  fault-name    String literals in the fault.* namespace are banned
//                *anywhere* in a source line, not just at registry call
//                sites: the fault counters are how resilience claims are
//                audited, so every spelling (call site, comparison, test
//                expectation) must come from src/obs/names.h. Unknown
//                fault.* literals are reported as typos; known ones as
//                literals to migrate. names.h itself is the one allowlisted
//                declaration site.
//  cluster-name  Same anywhere-on-a-line strictness for the cluster.*
//                namespace: those gauges feed the fleet's telemetry-aware
//                placement policy, so a forked spelling silently blinds the
//                balancer. Unknown cluster.* literals are typos; known ones
//                are literals to migrate; names.h is the declaration site.
//  perf-name     Same anywhere-on-a-line strictness for the perf.*
//                namespace: those series are the BENCH_core.json keys that
//                tools/perf_diff compares across entries, so a forked
//                spelling shows up as a missing-metric error (or worse, an
//                ungated series) in the perf gate. names.h declares; every
//                other file uses the constants.
//  nondet        Nondeterminism sources are banned from simulation code:
//                rand(), srand(), std::random_device, std::chrono::
//                system_clock, time(), gettimeofday(), localtime/gmtime.
//                Randomness must come from the seeded common/rng.h; wall
//                timing from steady_clock (obs::WallSpan).
//  unsafe-parse  atoi/atof/atol/atoll and the throwing std::sto* family are
//                banned: they either hide errors (atoi("abc") == 0) or turn
//                bad input into exceptions. Use common/parse.h or the checked
//                strtol/strtoull pattern.
//  getenv        Direct std::getenv is banned: every MTAT_* knob is parsed
//                once, with validation, by bench::Env (bench/env.h — the one
//                allowlisted call site). Scattered reads skip validation and
//                drift from the documented knob set.
//  ns-header     `using namespace` in a header leaks into every includer.
//  doc-sync      The metric section of src/obs/names.h must match the
//                DESIGN.md §9 metric table name-for-name (and the trace-event
//                section the §9 trace table), so code, docs, and dumps
//                cannot drift.
//
// Suppression: a finding on a line containing `mtat-lint: allow(<rule>)` (in
// a comment) is suppressed; whole files are exempted per-rule in
// tools/lint/allowlist.txt (`<rule> <repo-relative-path>` lines).
//
// The scanner is line-oriented and token-based, not a C++ parser: comments
// and string/char literal contents are blanked before token rules run, and
// call-site name extraction only sees a literal when it opens on the same
// line as the call — which the one-name-per-line style of names.h call sites
// guarantees in this tree.
#pragma once

#include <filesystem>
#include <iosfwd>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace mtat::lint {

struct Finding {
  std::string file;     ///< repo-relative path (forward slashes)
  int line = 0;         ///< 1-based; 0 for file-level findings
  std::string rule;     ///< rule id, e.g. "metric-name"
  std::string message;  ///< human-readable, actionable
};

/// The name table parsed from src/obs/names.h's `mtat-lint: section=` blocks.
struct NameTable {
  std::set<std::string> metrics;
  std::set<std::string> trace_events;
  std::set<std::string> categories;

  bool contains(const std::string& name) const {
    return metrics.count(name) != 0 || trace_events.count(name) != 0 ||
           categories.count(name) != 0;
  }
  bool empty() const { return metrics.empty() && trace_events.empty() && categories.empty(); }
};

/// Per-rule file exemptions loaded from tools/lint/allowlist.txt.
struct Allowlist {
  std::map<std::string, std::set<std::string>> files_by_rule;

  bool allows(const std::string& rule, const std::string& rel_path) const {
    const auto it = files_by_rule.find(rule);
    return it != files_by_rule.end() && it->second.count(rel_path) != 0;
  }
};

struct Options {
  std::filesystem::path root;  ///< repo root; all defaults are relative to it
  std::vector<std::string> dirs = {"src", "bench", "tests", "tools", "examples"};
  std::string names_header = "src/obs/names.h";
  std::string design_doc = "DESIGN.md";
  std::string allowlist_file = "tools/lint/allowlist.txt";
  bool check_docs = true;
};

/// Canonical replacement for a non-canonical unit suffix on `name`, or
/// nullptr when the name is fine ("x.wall_usec" -> "us").
const char* bad_unit_suffix(const std::string& name);

/// Parse the `mtat-lint: section=` blocks of a names header. Parse errors
/// (missing file, literal outside a section) are appended to `out`.
NameTable load_name_table(const std::filesystem::path& header, std::vector<Finding>& out);

/// Parse an allowlist file; missing file is fine (empty allowlist).
Allowlist load_allowlist(const std::filesystem::path& file, std::vector<Finding>& out);

/// Lint one source file's contents. `rel_path` appears in findings and is
/// what allowlist entries match against.
void lint_source(const std::string& rel_path, const std::string& contents,
                 const NameTable& names, const Allowlist& allow, std::vector<Finding>& out);

/// Cross-check names.h against the DESIGN.md marker-delimited name tables.
void crosscheck_design(const std::filesystem::path& design_doc, const std::string& doc_rel_path,
                       const NameTable& names, std::vector<Finding>& out);

/// Walk `opt.dirs` under `opt.root`, lint every .h/.hpp/.cc/.cpp file
/// (skipping fixtures/, build trees, and hidden directories), and cross-check
/// the docs. Findings come back sorted by file then line.
std::vector<Finding> run(const Options& opt);

/// run() + print findings as `file:line: [rule] message` to `diag`.
/// Returns the number of findings (0 == clean).
int run_and_report(const Options& opt, std::ostream& diag);

}  // namespace mtat::lint
