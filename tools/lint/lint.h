// mtat_lint — repo-specific static analysis for the MTAT reproduction.
//
// clang-tidy knows C++; it does not know that "queue.arivals" is a typo that
// silently forks a metric series, or that one std::random_device call breaks
// the seed-determinism every experiment in this repo depends on. mtat_lint
// encodes those domain invariants as a small in-tree checker, run over the
// real tree as a ctest.
//
// v2 is a two-pass analyzer. Pass 1 lexes each translation unit into a real
// token stream (lexer.h: raw strings, splices, pp lines) and builds a
// lightweight file model (model.h: scopes, declarations, class members,
// range-for statements, include edges). Pass 2 runs the rules below over the
// tokens and the model — so a call whose name literal opens on the next line,
// or a declaration split across lines, is seen exactly like its one-line
// spelling.
//
// Token rules:
//  metric-name   String literals passed to MetricsRegistry::counter()/
//                gauge()/histogram(), TraceRecorder::instant()/complete()/
//                counter(), or WallSpan must not appear at call sites: names
//                live in src/obs/names.h and call sites use the constants.
//                A literal that is not even in the table is reported as an
//                unknown name (the typo case); a known name spelled inline is
//                reported as a literal to migrate.
//  unit-suffix   Metric names use the canonical unit suffixes (_us, _ms, _ns,
//                _bytes, _pages, _pct, _per_sec). Variants like _usec, _msec,
//                _percent, _kb are rejected with the canonical suggestion.
//  fault-name    String literals in the fault.* namespace are banned anywhere
//  cluster-name  (not just at call sites); same for cluster.* and perf.*.
//  perf-name     These families are audited across tools (perf_diff, the
//                placement policy, resilience claims), so the only blessed
//                spelling is the obs::names:: constant; names.h declares.
//  node-fault-name
//  failover-name The fleet failure domain's sub-families, split from their
//                parents (first-wins prefix match): fault.node_* (injected
//                node events) and cluster.failover_* (watchdog/evacuation/
//                restart outcomes) carry the §17 resilience claims, so they
//                get their own rules and their own allowlist rows.
//  nondet        Nondeterminism sources are banned: rand(), srand(),
//                std::random_device, system_clock, time(), clock(),
//                gettimeofday(), localtime/gmtime. Randomness comes from the
//                seeded common/rng.h; wall timing from steady_clock.
//  unsafe-parse  atoi/atof family and throwing std::sto* family are banned;
//                use common/parse.h or a checked strtol pattern.
//  getenv        Direct std::getenv is banned; bench::Env (bench/env.h) is
//                the one validated knob parser.
//  ns-header     `using namespace` in a header leaks into every includer.
//  context-escape
//                Reaching for the process-global trace context —
//                obs::trace() / obs::default_trace() — couples the callee to
//                ambient state and is how trace output forks between runs.
//                Thread a RunContext / TraceRecorder& through instead. The
//                sanctioned construction and merge sites are allowlisted.
//                (This rule replaces the old check.sh grep gate.)
//  pointer-order Ordering or keying by pointer value — std::map/std::set
//                keyed by a pointer type, or uintptr_t/intptr_t conversions —
//                follows allocation addresses, which differ run to run.
//  tier-literal  The two-tier aliases Tier::kFMem / Tier::kSMem are confined
//                to the memory substrate (src/mem/, where they are defined)
//                and to tests (which pin two-tier fixtures deliberately).
//                Everywhere else spells tiers as kFastestTier, TierId
//                arithmetic, or the slower-aggregate telemetry queries, so
//                the code keeps working on N-tier topologies.
//
// Model rules:
//  shared-mutable
//                Non-const namespace-scope variables, function-local
//                `static`s, and non-const static data members are mutable
//                state shared across threads and calls: writes are schedule-
//                dependent and initialization order is fragile. Pass state
//                through explicitly. Intentional process-globals (the default
//                trace recorder, an atomic reentrancy latch, a guarded memo
//                cache) carry an inline suppression with an ownership note.
//  unordered-iter
//                Iterating a std::unordered_map/set (range-for over it, or
//                walking its .begin()) visits elements in hash/bucket order,
//                which can leak into results, metrics, or trace order. Use an
//                ordered container or drain into a sorted vector first.
//  guarded-by    Every mutex data member must be referenced by at least one
//                thread-safety annotation (GUARDED_BY/REQUIRES/..., from
//                src/common/thread_annotations.h) in its class, so the
//                lock-to-data mapping is explicit even on GCC-only machines;
//                clang's -Wthread-safety lane then proves it.
//  stale-suppression
//                A `mtat-lint: allow(<rule>)` comment that suppresses nothing
//                on its line, or an allowlist.txt entry whose file produced
//                no finding of that rule, is reported: stale suppressions are
//                how rules rot.
//
// Doc rule:
//  doc-sync      The metric section of src/obs/names.h must match the
//                DESIGN.md §9 metric table name-for-name (and the trace-event
//                section the §9 trace table), so code, docs, and dumps
//                cannot drift.
//
// Suppression: a finding on a line whose *comment* contains
// `mtat-lint: allow(<rule>)` is suppressed (the marker must share the line
// with the finding — for a declaration that is the line of the declared
// name); whole files are exempted per-rule in tools/lint/allowlist.txt
// (`<rule> <repo-relative-path>` lines). Both forms are usage-tracked and
// reported by stale-suppression when dead.
#pragma once

#include <filesystem>
#include <iosfwd>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace mtat::lint {

struct Finding {
  std::string file;     ///< repo-relative path (forward slashes)
  int line = 0;         ///< 1-based; 0 for file-level findings
  std::string rule;     ///< rule id, e.g. "metric-name"
  std::string message;  ///< human-readable, actionable
};

/// The name table parsed from src/obs/names.h's `mtat-lint: section=` blocks.
struct NameTable {
  std::set<std::string> metrics;
  std::set<std::string> trace_events;
  std::set<std::string> categories;

  bool contains(const std::string& name) const {
    return metrics.count(name) != 0 || trace_events.count(name) != 0 ||
           categories.count(name) != 0;
  }
  bool empty() const { return metrics.empty() && trace_events.empty() && categories.empty(); }
};

/// Per-rule file exemptions loaded from tools/lint/allowlist.txt.
struct Allowlist {
  struct Entry {
    int line = 0;  ///< line in the allowlist file (for stale reports)
    std::string rule;
    std::string path;
  };
  std::vector<Entry> entries;
  std::map<std::string, std::set<std::string>> files_by_rule;

  bool allows(const std::string& rule, const std::string& rel_path) const {
    const auto it = files_by_rule.find(rule);
    return it != files_by_rule.end() && it->second.count(rel_path) != 0;
  }
};

/// Which suppressions fired, accumulated across lint_source() calls so run()
/// can report stale allowlist entries. (Stale *inline* markers are local to a
/// file and reported by lint_source itself.)
struct SuppressionUsage {
  std::set<std::pair<std::string, std::string>> allowlist_entries;  ///< (rule, path)
};

struct Options {
  std::filesystem::path root;  ///< repo root; all defaults are relative to it
  std::vector<std::string> dirs = {"src", "bench", "tests", "tools", "examples"};
  std::string names_header = "src/obs/names.h";
  std::string design_doc = "DESIGN.md";
  std::string allowlist_file = "tools/lint/allowlist.txt";
  bool check_docs = true;
};

/// Canonical replacement for a non-canonical unit suffix on `name`, or
/// nullptr when the name is fine ("x.wall_usec" -> "us").
const char* bad_unit_suffix(const std::string& name);

/// Parse the `mtat-lint: section=` blocks of a names header. Parse errors
/// (missing file, literal outside a section) are appended to `out`.
NameTable load_name_table(const std::filesystem::path& header, std::vector<Finding>& out);

/// Parse an allowlist file; missing file is fine (empty allowlist).
Allowlist load_allowlist(const std::filesystem::path& file, std::vector<Finding>& out);

/// Lint one source file's contents. `rel_path` appears in findings and is
/// what allowlist entries match against. Inline suppressions are checked
/// before allowlist entries; used allowlist suppressions are recorded in
/// `usage` when non-null.
void lint_source(const std::string& rel_path, const std::string& contents,
                 const NameTable& names, const Allowlist& allow, std::vector<Finding>& out,
                 SuppressionUsage* usage = nullptr);

/// Cross-check names.h against the DESIGN.md marker-delimited name tables.
void crosscheck_design(const std::filesystem::path& design_doc, const std::string& doc_rel_path,
                       const NameTable& names, std::vector<Finding>& out);

/// Walk `opt.dirs` under `opt.root`, lint every .h/.hpp/.cc/.cpp file
/// (skipping fixtures/, build trees, and hidden directories), report stale
/// allowlist entries for scanned files, and cross-check the docs. Findings
/// come back sorted by file then line.
std::vector<Finding> run(const Options& opt);

/// run() + print findings as `file:line: [rule] message` to `diag`.
/// Returns the number of findings (0 == clean).
int run_and_report(const Options& opt, std::ostream& diag);

}  // namespace mtat::lint
