#include "lexer.h"

#include <cctype>

namespace mtat::lint {

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Encoding prefixes that may glue onto a string literal. The trailing-R
/// forms open raw strings.
bool is_string_prefix(const std::string& s, bool& raw) {
  raw = s == "R" || s == "u8R" || s == "uR" || s == "UR" || s == "LR";
  return raw || s == "u8" || s == "u" || s == "U" || s == "L";
}

/// Harvest `mtat-lint: allow(<rule>)` markers from comment text. Rule ids
/// are [a-z0-9-]+ only, so prose like "allow(<rule>)" in documentation never
/// parses as a marker.
void harvest_allows(const std::string& comment, int line,
                    std::map<int, std::set<std::string>>& allows) {
  static const std::string kKey = "mtat-lint: allow(";
  std::size_t pos = 0;
  while ((pos = comment.find(kKey, pos)) != std::string::npos) {
    std::size_t p = pos + kKey.size();
    std::string rule;
    while (p < comment.size() &&
           (std::islower(static_cast<unsigned char>(comment[p])) ||
            std::isdigit(static_cast<unsigned char>(comment[p])) || comment[p] == '-'))
      rule.push_back(comment[p++]);
    if (p < comment.size() && comment[p] == ')' && !rule.empty())
      allows[line].insert(rule);
    pos = p;
  }
}

class Lexer {
 public:
  explicit Lexer(const std::string& text) : text_(text) {}

  LexedFile run() {
    split_lines();
    while (i_ < text_.size()) lex_one();
    return std::move(out_);
  }

 private:
  // -- low-level cursor ------------------------------------------------------
  //
  // peek()/get() see a *spliced* view of the input: a backslash immediately
  // followed by a newline (optionally \r\n) vanishes, joining physical lines
  // exactly as translation phase 2 does — so a line-spliced `//` comment
  // swallows its continuation line and a spliced string literal keeps
  // lexing. Raw strings bypass these accessors on purpose: inside
  // R"(...)" nothing is special, splices included.

  bool splice_at(std::size_t p) const {
    if (p + 1 >= text_.size() || text_[p] != '\\') return false;
    if (text_[p + 1] == '\n') return true;
    return p + 2 < text_.size() && text_[p + 1] == '\r' && text_[p + 2] == '\n';
  }

  void skip_splices() {
    while (splice_at(i_)) {
      i_ += text_[i_ + 1] == '\r' ? 3 : 2;
      ++line_;
    }
  }

  char peek() {
    skip_splices();
    return i_ < text_.size() ? text_[i_] : '\0';
  }

  char peek2() {
    skip_splices();
    std::size_t p = i_ + 1;
    while (splice_at(p)) p += text_[p + 1] == '\r' ? 3 : 2;
    return p < text_.size() ? text_[p] : '\0';
  }

  char get() {
    skip_splices();
    const char c = text_[i_++];
    if (c == '\n') {
      ++line_;
      at_line_start_ = true;
      in_pp_ = false;
    } else if (!std::isspace(static_cast<unsigned char>(c))) {
      at_line_start_ = false;
    }
    return c;
  }

  void emit(Token::Kind kind, std::string text, int line) {
    out_.tokens.push_back({kind, std::move(text), line, in_pp_});
  }

  // -- token-level scanners --------------------------------------------------

  void lex_one() {
    const char c = peek();
    if (c == '\0') {
      ++i_;
      return;
    }
    if (c == '\n' || std::isspace(static_cast<unsigned char>(c))) {
      get();
      return;
    }
    if (c == '#' && at_line_start_) {
      // Directive: mark everything to the logical end of line as pp tokens.
      // They stay in the stream (a banned call in a macro body must still
      // trip token rules) but the model's scope tracking ignores them.
      get();
      in_pp_ = true;
      emit(Token::Kind::kPunct, "#", line_);
      lex_pp_directive();
      return;
    }
    if (c == '/' && peek2() == '/') {
      lex_line_comment();
      return;
    }
    if (c == '/' && peek2() == '*') {
      lex_block_comment();
      return;
    }
    if (ident_start(c)) {
      lex_ident_or_prefixed_string();
      return;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && std::isdigit(static_cast<unsigned char>(peek2())))) {
      lex_number();
      return;
    }
    if (c == '"') {
      lex_string(/*raw=*/false);
      return;
    }
    if (c == '\'') {
      lex_char();
      return;
    }
    lex_punct();
  }

  void lex_pp_directive() {
    // Tokenize the directive body with the normal scanners (in_pp_ stays set
    // until the unspliced newline). `#include "x"` edges are harvested from
    // the token stream afterwards by watching for the include ident.
    while (true) {
      const char c = peek();
      if (c == '\0' || c == '\n') {
        if (c == '\n') get();
        break;
      }
      const std::size_t before = out_.tokens.size();
      lex_one();
      if (!in_pp_) break;  // a comment scanner consumed the newline
      if (out_.tokens.size() > before) {
        const Token& t = out_.tokens.back();
        if (t.kind == Token::Kind::kString && include_pending_) {
          out_.includes.push_back({t.line, t.text});
          include_pending_ = false;
        } else {
          include_pending_ = t.kind == Token::Kind::kIdent &&
                             (t.text == "include" || t.text == "include_next");
        }
      }
    }
    include_pending_ = false;
    in_pp_ = false;
  }

  void lex_line_comment() {
    const int start = line_;
    std::string body;
    get();  // '/'
    get();  // '/'
    // get() splices, so a `\`-continued comment swallows the next physical
    // line too — the case the v1 scanner treated as code.
    while (peek() != '\0' && peek() != '\n') body.push_back(get());
    for (int l = start; l <= line_; ++l) harvest_allows(body, l, out_.allows);
    if (peek() == '\n') get();
    in_pp_ = false;
  }

  void lex_block_comment() {
    int seg_line = line_;
    std::string segment;
    get();  // '/'
    get();  // '*'
    // Harvest markers per physical line, not per comment: a marker in a
    // multi-line comment suppresses only on the line it is written on.
    while (i_ < text_.size()) {
      if (peek() == '*' && peek2() == '/') {
        get();
        get();
        break;
      }
      const char c = get();
      if (c == '\n') {
        harvest_allows(segment, seg_line, out_.allows);
        segment.clear();
        seg_line = line_;
      } else {
        segment.push_back(c);
      }
    }
    harvest_allows(segment, seg_line, out_.allows);
  }

  void lex_ident_or_prefixed_string() {
    const int start = line_;
    std::string s;
    while (ident_char(peek())) s.push_back(get());
    bool raw = false;
    if (peek() == '"' && is_string_prefix(s, raw)) {
      lex_string(raw);
      return;
    }
    emit(Token::Kind::kIdent, std::move(s), start);
  }

  void lex_number() {
    // pp-number: digits, idents, dots, exponent signs, and digit separators.
    // Lexing `1'000'000` here is what keeps the `'` from opening a bogus
    // char literal (a v1 bug).
    const int start = line_;
    std::string s;
    s.push_back(get());
    while (true) {
      const char c = peek();
      if (ident_char(c) || c == '.') {
        s.push_back(get());
      } else if (c == '\'' && ident_char(peek2())) {
        s.push_back(get());
        s.push_back(get());
      } else if ((c == '+' || c == '-') && !s.empty() &&
                 (s.back() == 'e' || s.back() == 'E' || s.back() == 'p' || s.back() == 'P')) {
        s.push_back(get());
      } else {
        break;
      }
    }
    emit(Token::Kind::kNumber, std::move(s), start);
  }

  void lex_string(bool raw) {
    const int start = line_;
    std::string decoded;
    get();  // opening '"'
    if (raw) {
      // R"delim( ... )delim" — read the delimiter from the *unspliced* text:
      // inside a raw literal (delimiter included) no character is special.
      std::string delim;
      while (i_ < text_.size() && text_[i_] != '(' && text_[i_] != '\n') delim.push_back(text_[i_++]);
      if (i_ < text_.size()) ++i_;  // '('
      const std::string closer = ")" + delim + "\"";
      while (i_ < text_.size() && text_.compare(i_, closer.size(), closer) != 0) {
        if (text_[i_] == '\n') ++line_;
        decoded.push_back(text_[i_++]);
      }
      if (i_ < text_.size()) i_ += closer.size();
    } else {
      while (true) {
        const char c = peek();
        if (c == '\0' || c == '\n') break;  // unterminated: degrade gracefully
        if (c == '\\') {
          get();
          if (peek() != '\0') decoded.push_back(get());  // keep escaped char, drop '\'
          continue;
        }
        if (c == '"') {
          get();
          break;
        }
        decoded.push_back(get());
      }
    }
    emit(Token::Kind::kString, std::move(decoded), start);
  }

  void lex_char() {
    const int start = line_;
    std::string decoded;
    get();  // opening '\''
    while (true) {
      const char c = peek();
      if (c == '\0' || c == '\n') break;
      if (c == '\\') {
        get();
        if (peek() != '\0') decoded.push_back(get());
        continue;
      }
      if (c == '\'') {
        get();
        break;
      }
      decoded.push_back(get());
    }
    emit(Token::Kind::kChar, std::move(decoded), start);
  }

  void lex_punct() {
    const int start = line_;
    const char c = get();
    std::string s(1, c);
    // Merge the multi-char punctuators that matter downstream: "::"/"->" for
    // rules, and every compound/comparison operator ending in '=' — so a
    // `<=` never reads as a template-open `<`, and an `+=` never reads as a
    // declarator-initializing `=` to the model's statement splitter.
    const char n = peek();
    const bool compound_eq =
        n == '=' && (c == '<' || c == '>' || c == '+' || c == '-' || c == '*' ||
                     c == '/' || c == '%' || c == '&' || c == '|' || c == '^' ||
                     c == '!' || c == '=');
    if (compound_eq || (c == ':' && n == ':') || (c == '-' && n == '>') ||
        (c == '+' && n == '+') || (c == '-' && n == '-') || (c == '&' && n == '&') ||
        (c == '|' && n == '|') || (c == '<' && n == '<') || (c == '>' && n == '>'))
      s.push_back(get());
    emit(Token::Kind::kPunct, std::move(s), start);
  }

  void split_lines() {
    std::size_t start = 0;
    for (std::size_t p = 0; p <= text_.size(); ++p) {
      if (p == text_.size() || text_[p] == '\n') {
        out_.raw_lines.push_back(text_.substr(start, p - start));
        start = p + 1;
      }
    }
  }

  const std::string& text_;
  LexedFile out_;
  std::size_t i_ = 0;
  int line_ = 1;
  bool at_line_start_ = true;
  bool in_pp_ = false;
  bool include_pending_ = false;
};

}  // namespace

LexedFile lex(const std::string& text) { return Lexer(text).run(); }

}  // namespace mtat::lint
