// mtat_lint pass 1: a real C++ tokenizer (lint v2).
//
// The v1 scanner was line-oriented: it blanked comments and string contents
// in place and ran regexes over what was left. That model cannot see a call
// whose argument opens on the next line, silently mis-lexes digit separators
// (`1'000'000` opened a bogus char literal), and treats a line-spliced `//`
// comment's continuation as code. Lint v2 lexes each translation unit into a
// proper token stream once, and every rule — old and new — runs over tokens
// (or over the file model pass 1 also builds, see model.h).
//
// What the lexer handles, deliberately, because the v1 scanner did not:
//  * line splices (backslash-newline) everywhere, including inside `//`
//    comments and string literals, with line numbers tracking the physical
//    line a token starts on;
//  * raw string literals with arbitrary delimiters and encoding prefixes
//    (R"x(...)x", u8R"(...)", LR"(...)"), inside which nothing — not even a
//    splice — is special;
//  * pp-numbers with digit separators (`1'000'000` is one number token, not
//    a number and a char literal);
//  * adjacent string literals ("a" "b" stays two string tokens) and
//    string-adjacent identifiers ("pages"_suffix lexes as string + ident);
//  * preprocessor directives: their tokens are kept (marked `pp`) so token
//    rules still see a banned call hidden in a macro body, but the model's
//    scope tracking skips them, and `#include "..."` edges are extracted.
//
// Block comments do not nest in C++ and the lexer follows the language:
// `/* a /* b */ c` ends at the first `*/` and `c` is code. The tokenizer
// test pins this down so nobody "fixes" it into nonstandard nesting.
//
// Comments are not tokens, but two things are harvested from them while
// lexing: `mtat-lint: allow(<rule>)` suppression markers (per line, possibly
// several per comment) and nothing else — rule text in comments can never
// trip a rule.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

namespace mtat::lint {

struct Token {
  enum class Kind { kIdent, kNumber, kString, kChar, kPunct };
  Kind kind = Kind::kPunct;
  std::string text;  ///< identifiers/punct verbatim; strings: decoded contents
  int line = 0;      ///< 1-based physical line the token starts on
  bool pp = false;   ///< true when the token is part of a preprocessor line
};

/// A quoted `#include "path"` edge (the local-dependency graph of the file).
struct IncludeEdge {
  int line = 0;
  std::string path;
};

struct LexedFile {
  std::vector<Token> tokens;
  std::vector<std::string> raw_lines;  ///< physical lines, verbatim
  /// line -> rule ids allowed on that line via `mtat-lint: allow(<rule>)`.
  std::map<int, std::set<std::string>> allows;
  std::vector<IncludeEdge> includes;
};

/// Tokenize one translation unit. Never fails: malformed input (unterminated
/// literals, stray bytes) degrades to best-effort tokens, because a linter
/// must keep scanning the rest of the tree.
LexedFile lex(const std::string& text);

}  // namespace mtat::lint
