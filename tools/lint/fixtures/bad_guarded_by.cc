// Fixture: a mutex member with no thread-safety annotation anywhere in the
// class — nothing records what it guards, so the clang -Wthread-safety lane
// has nothing to prove.
#include <mutex>

class BadLocked {
 public:
  void set(int v) {
    std::lock_guard<std::mutex> lock(mu_);
    value_ = v;
  }

 private:
  std::mutex mu_;
  int value_;
};
