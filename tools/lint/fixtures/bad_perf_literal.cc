// Fixture: perf-domain names spelled as literals. The perf-name rule flags
// them anywhere on a line — a known name at a registry call site, a known
// name in a plain comparison (which metric-name would miss), and a typo'd
// perf.* name that names.h has never heard of.
void bad(mtat::obs::MetricsRegistry& reg, const std::string& key) {
  reg.gauge("perf.sim_steps_per_sec").set(1.0);
  if (key == "perf.hotness_record_age_per_sec") return;
  reg.gauge("perf.hotness_recordage_per_sec").set(0.0);
}
