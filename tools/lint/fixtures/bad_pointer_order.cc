// Fixture: ordering/keying by pointer value — allocation addresses differ
// run to run, so any order derived from them is nondeterministic.
#include <cstdint>
#include <map>
#include <set>

struct Node;

void bad_pointer_keys(Node* a) {
  std::set<Node*> keyed;
  std::map<const Node*, int> ranks;
  std::uintptr_t addr = 0;
  (void)a;
  (void)keyed;
  (void)ranks;
  (void)addr;
}
