// Fixture: the same violations as the bad_* files, each suppressed by an
// inline `mtat-lint: allow(<rule>)` marker — must lint clean.
#include <cstdlib>

void allowed(mtat::obs::MetricsRegistry& reg, mtat::TieredMemory& mem) {
  reg.counter("scratch.name").inc();          // mtat-lint: allow(metric-name)
  const int n = atoi("42");                   // mtat-lint: allow(unsafe-parse)
  (void)n;
  (void)rand();                               // mtat-lint: allow(nondet)
  static int reuse = 0;                       // mtat-lint: allow(shared-mutable)
  ++reuse;
  (void)mem.capacity(mtat::Tier::kFMem);      // mtat-lint: allow(tier-literal)
}
