// Fixture: node-fault names spelled as literals. The node-fault-name rule
// owns the fault.node_* sub-family (first-wins over fault-name) and flags
// them anywhere on a line — a known name at a registry call site, a known
// name in a plain comparison, and a typo'd fault.node_* name.
void bad(mtat::obs::MetricsRegistry& reg, const std::string& row) {
  reg.counter("fault.node_crashes").inc();
  if (row == "fault.node_stragglers") return;
  reg.counter("fault.node_crahses").inc();
}
