// Fixture: every banned nondeterminism source. Any one of these makes a
// same-seed rerun diverge.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

unsigned bad_seed() {
  std::random_device rd;
  return rd();
}

long bad_clocks() {
  const auto wall = std::chrono::system_clock::now().time_since_epoch().count();
  return wall + time(nullptr) + rand();
}
