// Fixture: namespace directive in a header.
#pragma once
#include <string>

using namespace std;

inline string shout(const string& s) { return s + "!"; }
