// Fixture: direct environment reads. MTAT_* knobs must go through bench::Env
// (bench/env.h) so they are parsed once, validated, and documented.
#include <cstdlib>
#include <string>

std::string bad_scale() {
  const char* s = std::getenv("MTAT_SCALE");
  return s != nullptr ? s : "small";
}

int bad_jobs() {
  const char* j = getenv("MTAT_JOBS");
  return j != nullptr ? j[0] - '0' : 0;
}
