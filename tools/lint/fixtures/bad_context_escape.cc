// Fixture: reaching for the process-global trace context instead of
// threading a RunContext / TraceRecorder& through the call chain.
#include "obs/trace.h"

void bad_escape() {
  mtat::obs::trace().instant(mtat::obs::names::kEvQueueOverload,
                             mtat::obs::names::kCatQueue, "backlog", 1.0);
  auto& rec = mtat::obs::default_trace();
  (void)rec;
}
