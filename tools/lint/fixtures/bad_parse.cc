// Fixture: unchecked number parsing. atoi collapses errors to 0; std::stoi
// throws on bad input.
#include <cstdlib>
#include <string>

int bad(const char* s) {
  const int a = atoi(s);
  const double b = std::atof(s);
  const int c = std::stoi(std::string(s));
  const unsigned long d = std::stoul(std::string(s));
  return a + static_cast<int>(b) + c + static_cast<int>(d);
}
