// Fixture: cluster-domain names spelled as literals. The cluster-name rule
// flags them anywhere on a line — a known name at a registry call site, a
// known name in a plain comparison (which metric-name would miss), and a
// typo'd cluster.* name that names.h has never heard of.
void bad(mtat::obs::MetricsRegistry& reg, const std::string& row) {
  reg.gauge("cluster.node_p99_ms").set(1.0);
  if (row == "cluster.slo_compliance_pct") return;
  reg.gauge("cluster.slo_complaince_pct").set(0.0);
}
