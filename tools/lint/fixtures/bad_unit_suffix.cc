// Fixture: non-canonical unit suffixes. _usec should be _us, _percent _pct,
// _kb _bytes.
void bad(mtat::obs::MetricsRegistry& reg) {
  reg.histogram("policy.wall_usec").record(1);
  reg.gauge("lc.violation_percent").set(0.1);
  reg.counter("migration.moved_kb").inc();
}
