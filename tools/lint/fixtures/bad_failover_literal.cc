// Fixture: failover names spelled as literals. The failover-name rule owns
// the cluster.failover_* sub-family (first-wins over cluster-name) and flags
// them anywhere on a line — a known name at a registry call site, a known
// name in a plain comparison, and a typo'd cluster.failover_* name.
void bad(mtat::obs::MetricsRegistry& reg, const std::string& row) {
  reg.counter("cluster.failover_evacuations").inc();
  if (row == "cluster.failover_suspected_nodes") return;
  reg.counter("cluster.failover_evacutions").inc();
}
