// Fixture: a correctly spelled name, but inline — call sites must use the
// obs::names constant so renames stay atomic.
void bad(mtat::obs::MetricsRegistry& reg, mtat::obs::TraceRecorder& rec) {
  reg.counter("queue.arrivals").inc();
  rec.instant("queue.overload", "queue", "backlog", 1.0);
}
