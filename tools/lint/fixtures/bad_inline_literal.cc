// Fixture: a correctly spelled name, but inline — call sites must use the
// obs::names constant so renames stay atomic.
void bad(mtat::obs::MetricsRegistry& reg) {
  reg.counter("queue.arrivals").inc();
  mtat::obs::trace().instant("queue.overload", "queue", "backlog", 1.0);
}
