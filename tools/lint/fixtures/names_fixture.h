// Fixture: a miniature names header for load_name_table tests — two metric
// sections' worth of constants, one with a bad unit suffix, one duplicate,
// and one literal outside any section.
#pragma once

inline constexpr const char* kStray = "stray.name";

namespace fixture {
// mtat-lint: section=metric
inline constexpr const char* kGood = "queue.arrivals";
inline constexpr const char* kBadSuffix = "policy.wall_usec";
inline constexpr const char* kDupe = "queue.arrivals";
// mtat-lint: section=trace-event
inline constexpr const char* kEv = "queue.overload";
// mtat-lint: section=trace-category
inline constexpr const char* kCat = "queue";
// mtat-lint: section=end
}  // namespace fixture
