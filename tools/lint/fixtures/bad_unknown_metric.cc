// Fixture: a typo'd metric name — the exact failure mode the metric-name rule
// exists for. "queue.arivals" is not in src/obs/names.h, so this registers a
// fresh series nobody reads.
void bad(mtat::obs::MetricsRegistry& reg) {
  reg.counter("queue.arivals").inc();
}
