// Clean fixture: every rule passes. Call sites use obs::names constants,
// randomness comes from the seeded Rng, parsing is checked.
#include <cstdlib>

#include "obs/names.h"

void good(mtat::obs::MetricsRegistry& reg) {
  reg.counter(mtat::obs::names::kQueueArrivals).inc();
  reg.gauge(mtat::obs::names::kBwFmemFactor).set(1.0);
  mtat::obs::trace().instant(mtat::obs::names::kEvQueueOverload,
                             mtat::obs::names::kCatQueue, "backlog", 3.0);
  // A string mentioning rand() or atoi( must not trip the token rules, and
  // neither must this comment: std::random_device, system_clock, time(0).
  const char* text = "calling rand() or atoi(x) inside a string is fine";
  (void)text;
  char* end = nullptr;
  (void)std::strtol("42", &end, 10);  // the checked primitive is allowed
}
