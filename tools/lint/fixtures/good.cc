// Clean fixture: every rule passes. Call sites use obs::names constants and
// a threaded TraceRecorder&, randomness comes from the seeded Rng, parsing
// is checked, the mutex is annotated, and iteration is over ordered maps.
#include <cstdlib>
#include <map>
#include <mutex>

#include "common/thread_annotations.h"
#include "obs/names.h"

class GoodCounter {
 public:
  void bump(int key) EXCLUDES(mu_) {
    std::lock_guard<std::mutex> lock(mu_);
    ++counts_[key];
  }

 private:
  std::mutex mu_;
  std::map<int, int> counts_ GUARDED_BY(mu_);
};

void good(mtat::obs::MetricsRegistry& reg, mtat::obs::TraceRecorder& rec) {
  reg.counter(mtat::obs::names::kQueueArrivals).inc();
  reg.gauge(mtat::obs::names::kBwFmemFactor).set(1.0);
  rec.instant(mtat::obs::names::kEvQueueOverload,
              mtat::obs::names::kCatQueue, "backlog", 3.0);
  // A string mentioning rand() or atoi( must not trip the token rules, and
  // neither must this comment: std::random_device, system_clock, time(0).
  const char* text = "calling rand() or atoi(x) inside a string is fine";
  (void)text;
  char* end = nullptr;
  (void)std::strtol("42", &end, 10);  // the checked primitive is allowed
  std::map<int, int> ordered{{1, 2}};
  for (const auto& [k, v] : ordered) (void)(k + v);
}
