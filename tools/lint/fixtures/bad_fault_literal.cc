// Fixture: fault-domain names spelled as literals. The fault-name rule flags
// them anywhere on a line — a known name at a registry call site, a known
// name in a plain comparison (which metric-name would miss), and a typo'd
// fault.* name that names.h has never heard of.
void bad(mtat::obs::MetricsRegistry& reg, const std::string& row) {
  reg.counter("fault.samples_dropped").inc();
  if (row == "fault.migration_failures") return;
  reg.counter("fault.sample_drops").inc();
}
