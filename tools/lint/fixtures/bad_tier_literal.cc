// Fixture: two-tier aliases outside src/mem/ and tests/. The tier-literal
// rule flags the classic Tier::kFMem / Tier::kSMem spellings wherever they
// appear in policy-layer code — qualified or not, comparisons and call
// arguments alike.
void bad(mtat::TieredMemory& mem, mtat::PageHotness& hist) {
  if (mem.tier_of(0) == mtat::Tier::kFMem) return;
  const auto cold = hist.coldest_page(Tier::kSMem);
  (void)cold;
  (void)mem;
}
