// Fixture: iteration order over unordered containers is hash/bucket
// dependent — anything accumulated in visit order differs run to run.
#include <string>
#include <unordered_map>

int bad_sum() {
  std::unordered_map<std::string, int> scores;
  scores["a"] = 1;
  int sum = 0;
  for (const auto& [name, score] : scores) sum = sum * 31 + score;
  auto it = scores.begin();
  (void)it;
  return sum;
}
