// Fixture: a suppression marker that no longer suppresses anything must be
// reported and removed — left in place it hides future regressions.
int stale_math(int x) {
  return x + 1;  // mtat-lint: allow(nondet)
}
