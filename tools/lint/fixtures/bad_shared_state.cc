// Fixture: mutable state shared across threads and calls — namespace scope,
// a function-local static, and a mutable static data member.
namespace fixture {
int g_calls = 0;
const int kLimit = 8;  // const namespace-scope state is fine
}  // namespace fixture

int counted() {
  static int count = 0;
  return ++count;
}

struct Holder {
  static int live;
};
