// mtat_lint pass 1b: a lightweight file model built from the token stream.
//
// Rules that only need to pattern-match tokens (banned calls, name literals)
// read the LexedFile directly; rules about *declarations* — where state
// lives, who owns it, what a loop iterates — need scope context a flat token
// stream cannot give. build_model() walks the tokens once with a scope stack
// (namespace / class / enum / function-or-block) and records:
//
//  * namespace-scope variable declarations, with const-ness — the raw
//    material of the shared-mutable rule;
//  * function-local `static` / `thread_local` declarations (the memo-cache
//    pattern) and non-const `static` data members;
//  * classes with their data members and any thread-safety-annotation
//    arguments seen in the class body (GUARDED_BY(mu_), REQUIRES(mu_), ...)
//    — the raw material of the guarded-by rule;
//  * names declared with an unordered container type (including through
//    local `using Alias = std::unordered_map<...>` aliases) and every
//    range-for statement's range-expression identifiers — the raw material
//    of the unordered-iter rule;
//  * local #include edges (from the lexer), exposed for completeness.
//
// This is a lexical model, not a compiler front end. The known, accepted
// approximations (each chosen to fail toward silence, not noise):
//  * a namespace-scope declaration that direct-initializes with parens
//    (`Foo x(1);`) reads as a function declaration (the vexing parse) and is
//    skipped — brace or `=` initialization, the tree's style, is modeled;
//  * `template<...>` declarations are skipped wholesale (no variable
//    templates in this tree);
//  * statements inside lambda bodies that appear in initializers are not
//    re-entered (a `static` inside such a lambda escapes the model);
//  * type aliases are resolved only within the same file.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "lexer.h"

namespace mtat::lint {

/// A variable declaration the shared-mutable rule cares about.
struct StateDecl {
  enum class Where {
    kNamespaceScope,  ///< namespace or global scope variable
    kLocalStatic,     ///< function-local `static` (or `thread_local`)
    kStaticMember,    ///< non-const `static` data member
  };
  Where where = Where::kNamespaceScope;
  int line = 0;
  std::string name;
  std::string type;       ///< joined declaration tokens before the name
  bool is_const = false;  ///< const / constexpr / constinit at the top level
  bool is_thread_local = false;
};

struct MemberDecl {
  int line = 0;
  std::string name;
  std::string type;
  bool is_mutex = false;  ///< type mentions mutex/shared_mutex/... or Mutex
};

struct ClassModel {
  int line = 0;
  std::string name;  ///< "<anonymous>" when unnamed
  std::vector<MemberDecl> members;
  /// Arguments of every thread-safety annotation in the class body
  /// (GUARDED_BY(mu_) contributes "mu_", EXCLUDES(!mu_) contributes "mu_").
  std::set<std::string> annotation_targets;
};

struct RangeForStmt {
  int line = 0;
  std::vector<std::string> range_idents;  ///< identifiers in the range expr
};

struct FileModel {
  std::vector<StateDecl> state_decls;
  std::vector<ClassModel> classes;
  std::vector<RangeForStmt> range_fors;
  std::set<std::string> unordered_names;  ///< vars/members of unordered type
  std::vector<IncludeEdge> includes;      ///< copied from the lexer
};

FileModel build_model(const LexedFile& lexed);

}  // namespace mtat::lint
