#!/usr/bin/env python3
"""Plot the CSV series the benchmark binaries emit.

Usage (from the directory containing the CSVs, typically build/bench):

    python3 tools/plot_results.py fig1   # P99-vs-load curves per workload
    python3 tools/plot_results.py fig2   # load / P99 / residency over time
    python3 tools/plot_results.py fig5   # per-policy P99 + FMem-share series
    python3 tools/plot_results.py fig8   # normalized max-load bars

Requires matplotlib (not needed by the build or the benches themselves);
figures are written as <name>.png next to the CSVs.
"""
import argparse
import collections
import csv
import sys


def read_csv(path):
    with open(path) as f:
        rows = list(csv.DictReader(f))
    if not rows:
        sys.exit(f"{path}: empty")
    return rows


def fig1(plt):
    rows = read_csv("fig1_lc_latency_curves.csv")
    by_wl = collections.defaultdict(lambda: collections.defaultdict(list))
    for r in rows:
        by_wl[r["workload"]][float(r["fmem_pct"])].append(
            (float(r["offered_krps"]), float(r["p99_ms"])))
    fig, axes = plt.subplots(1, len(by_wl), figsize=(4 * len(by_wl), 3.2), sharey=False)
    for ax, (wl, curves) in zip(axes, sorted(by_wl.items())):
        for pct in sorted(curves):
            pts = sorted(curves[pct])
            ax.plot([p[0] for p in pts], [p[1] for p in pts], marker="o",
                    label=f"FMem {pct:.0f}%")
        ax.set_yscale("log")
        ax.set_title(wl)
        ax.set_xlabel("offered KRPS")
        ax.set_ylabel("P99 (ms)")
        ax.legend(fontsize=7)
    fig.tight_layout()
    fig.savefig("fig1.png", dpi=150)
    print("wrote fig1.png")


def fig2(plt):
    rows = read_csv("fig2_memtis_colocation.csv")
    t = [float(r["t_sec"]) for r in rows]
    fig, axes = plt.subplots(3, 1, figsize=(7, 6), sharex=True)
    axes[0].plot(t, [float(r["offered_krps"]) for r in rows])
    axes[0].set_ylabel("load (KRPS)")
    axes[1].plot(t, [float(r["p99_ms"]) for r in rows])
    axes[1].set_yscale("log")
    axes[1].set_ylabel("P99 (ms)")
    axes[2].plot(t, [float(r["redis_fmem_ratio"]) for r in rows])
    axes[2].set_ylabel("Redis FMem ratio")
    axes[2].set_xlabel("time (s)")
    fig.tight_layout()
    fig.savefig("fig2.png", dpi=150)
    print("wrote fig2.png")


def fig5(plt):
    rows = read_csv("fig5_series.csv")
    workloads = sorted({r["lc"] for r in rows})
    policies = sorted({r["policy"] for r in rows})
    for wl in workloads:
        fig, axes = plt.subplots(2, 1, figsize=(8, 5), sharex=True)
        for pol in policies:
            series = [r for r in rows if r["lc"] == wl and r["policy"] == pol]
            t = [float(r["t_sec"]) for r in series]
            axes[0].plot(t, [float(r["p99_ms"]) for r in series], label=pol)
            axes[1].plot(t, [float(r["lc_fmem_share"]) for r in series], label=pol)
        axes[0].set_yscale("log")
        axes[0].set_ylabel("P99 (ms)")
        axes[0].legend(fontsize=7, ncol=3)
        axes[1].set_ylabel("LC share of FMem")
        axes[1].set_xlabel("time (s)")
        fig.suptitle(wl)
        fig.tight_layout()
        fig.savefig(f"fig5_{wl}.png", dpi=150)
        print(f"wrote fig5_{wl}.png")


def fig8(plt):
    rows = read_csv("fig8_max_load.csv")
    workloads = sorted({r["lc"] for r in rows})
    policies = [p for p in ["fmem_all", "mtat_full", "memtis", "tpp", "smem_all"]
                if any(r["policy"] == p for r in rows)]
    width = 0.8 / len(policies)
    fig, ax = plt.subplots(figsize=(7, 3.5))
    for i, pol in enumerate(policies):
        vals = []
        for wl in workloads:
            match = [r for r in rows if r["lc"] == wl and r["policy"] == pol]
            vals.append(float(match[0]["normalized_to_fmem_all"]) if match else 0.0)
        ax.bar([x + i * width for x in range(len(workloads))], vals, width, label=pol)
    ax.set_xticks([x + 0.4 for x in range(len(workloads))])
    ax.set_xticklabels(workloads)
    ax.set_ylabel("max load / FMEM_ALL")
    ax.legend(fontsize=7)
    fig.tight_layout()
    fig.savefig("fig8.png", dpi=150)
    print("wrote fig8.png")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("figure", choices=["fig1", "fig2", "fig5", "fig8"])
    args = parser.parse_args()
    try:
        import matplotlib
        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        sys.exit("matplotlib is required: pip install matplotlib")
    {"fig1": fig1, "fig2": fig2, "fig5": fig5, "fig8": fig8}[args.figure](plt)


if __name__ == "__main__":
    main()
