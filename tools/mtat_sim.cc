// mtat_sim — command-line co-location experiment runner.
//
// Configures an arbitrary tiered-memory co-location from flags, runs it, and
// emits the per-interval series as CSV (stdout or file) plus a summary. The
// scriptable entry point for explorations that don't warrant a bench binary:
//
//   mtat_sim --policy=mtat_full --lc=redis --be=4 --pattern=fig7 --seconds=240
//   mtat_sim --policy=memtis --lc=memcached --load=0.5 --fmem-mib=256
//   mtat_sim --policy=mtat_full --lc=silo --train-epochs=8 --csv=run.csv
//
// Run with --help for the full flag list.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <string>

#include "common/csv.h"
#include "common/parse.h"
#include "obs/json.h"
#include "obs/manifest.h"
#include "obs/trace.h"
#include "mem/topology.h"
#include "sim/colocation_sim.h"
#include "workloads/be/be_suite.h"

using namespace mtat;

namespace {

struct Args {
  std::string policy = "mtat_full";
  std::string lc = "redis";
  int n_be = 4;
  int be_cores = 4;
  std::string pattern = "fig7";  // fig7 | constant
  double load_fraction = 0.5;    // of max load, for --pattern=constant
  double seconds_total = 240;
  double fmem_mib = 128;
  double smem_mib = 2048;
  std::string topology;  // overrides --fmem-mib/--smem-mib when set
  int train_epochs = 5;
  bool bandwidth = true;
  bool zipf = false;
  std::string csv_path;
  std::string trace_path;
  std::string metrics_path;
  std::uint64_t seed = 42;
};

[[noreturn]] void usage(int code) {
  std::printf(
      "mtat_sim — tiered-memory co-location runner\n\n"
      "  --policy=P        mtat_full|mtat_lc_only|memtis|memtis_hp|tpp|vtmm|damon|fmem_all|smem_all\n"
      "  --lc=W            redis|memcached|mongodb|silo\n"
      "  --be=N            number of BE workloads (1-4, from {sssp,bfs,pr,xsbench})\n"
      "  --be-cores=N      cores per BE workload (default 4)\n"
      "  --pattern=T       fig7 (paper trapezoid) or constant\n"
      "  --load=F          fraction of LC max load for --pattern=constant\n"
      "  --seconds=S       simulated duration (default 240)\n"
      "  --fmem-mib=M      fast tier size (default 128)\n"
      "  --smem-mib=M      slow tier size (default 2048)\n"
      "  --topology=SPEC   tier vector, fastest first, overriding --fmem-mib/--smem-mib\n"
      "                    (name:capacity:latency_ns[:link_bw] entries joined by ';',\n"
      "                    e.g. 'dram:8G:73;cxl:64G:202;nvm:256G:450')\n"
      "  --train-epochs=N  RL training passes before measuring (MTAT only)\n"
      "  --no-bandwidth    disable the tier-bandwidth contention model\n"
      "  --zipf            zipfian LC requests instead of uniform\n"
      "  --csv=PATH        write the per-interval series to PATH\n"
      "  --trace-out=PATH  write a Chrome trace_event JSON (chrome://tracing, Perfetto)\n"
      "  --metrics-out=PATH  write the metrics registry + run manifest as JSON\n"
      "  --seed=N          simulation seed\n");
  std::exit(code);
}

// Parse a numeric flag value or die with usage(2) — a malformed count or
// duration should stop the run, not silently become 0 (the old atoi behaviour).
template <typename T, typename Parser>
T num_flag(const std::string& key, const std::string& val, Parser parse_fn) {
  const std::optional<T> v = parse_fn(val);
  if (!v) {
    std::fprintf(stderr, "bad value for %s: '%s'\n\n", key.c_str(), val.c_str());
    usage(2);
  }
  return *v;
}

Args parse(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto eq = arg.find('=');
    const std::string key = arg.substr(0, eq);
    const std::string val = eq == std::string::npos ? "" : arg.substr(eq + 1);
    if (key == "--help" || key == "-h") usage(0);
    else if (key == "--policy") a.policy = val;
    else if (key == "--lc") a.lc = val;
    else if (key == "--be") a.n_be = num_flag<int>(key, val, parse_int);
    else if (key == "--be-cores") a.be_cores = num_flag<int>(key, val, parse_int);
    else if (key == "--pattern") a.pattern = val;
    else if (key == "--load") a.load_fraction = num_flag<double>(key, val, parse_double);
    else if (key == "--seconds") a.seconds_total = num_flag<double>(key, val, parse_double);
    else if (key == "--fmem-mib") a.fmem_mib = num_flag<double>(key, val, parse_double);
    else if (key == "--smem-mib") a.smem_mib = num_flag<double>(key, val, parse_double);
    else if (key == "--topology") a.topology = val;
    else if (key == "--train-epochs") a.train_epochs = num_flag<int>(key, val, parse_int);
    else if (key == "--no-bandwidth") a.bandwidth = false;
    else if (key == "--zipf") a.zipf = true;
    else if (key == "--csv") a.csv_path = val;
    else if (key == "--trace-out") a.trace_path = val;
    else if (key == "--metrics-out") a.metrics_path = val;
    else if (key == "--seed") a.seed = num_flag<std::uint64_t>(key, val, parse_u64);
    else {
      std::fprintf(stderr, "unknown flag: %s\n\n", arg.c_str());
      usage(2);
    }
  }
  return a;
}

PolicyKind policy_from(const std::string& s) {
  static const std::map<std::string, PolicyKind> kMap = {
      {"mtat_full", PolicyKind::kMtatFull}, {"mtat_lc_only", PolicyKind::kMtatLcOnly},
      {"memtis", PolicyKind::kMemtis},      {"memtis_hp", PolicyKind::kMemtisHp},
      {"tpp", PolicyKind::kTpp},
      {"vtmm", PolicyKind::kVtmm},          {"damon", PolicyKind::kDamon},
      {"fmem_all", PolicyKind::kFmemAll},
      {"smem_all", PolicyKind::kSmemAll}};
  const auto it = kMap.find(s);
  if (it == kMap.end()) {
    std::fprintf(stderr, "unknown policy: %s\n", s.c_str());
    usage(2);
  }
  return it->second;
}

LCConfig lc_from(const Args& a) {
  LCConfig c;
  if (a.lc == "redis") c = redis_config();
  else if (a.lc == "memcached") c = memcached_config();
  else if (a.lc == "mongodb") c = mongodb_config();
  else if (a.lc == "silo") c = silo_config();
  else {
    std::fprintf(stderr, "unknown LC workload: %s\n", a.lc.c_str());
    usage(2);
  }
  // Size the footprint to ~1.05x FMem, as in the paper.
  const Bytes fmem = static_cast<Bytes>(a.fmem_mib * 1024 * 1024);
  c.n_records = static_cast<std::uint64_t>(1.05 * static_cast<double>(fmem) /
                                           static_cast<double>(c.record_size));
  if (a.zipf) c.dist = RequestDist::kZipfian;
  return c;
}

}  // namespace

int main(int argc, char** argv) {
  const Args a = parse(argc, argv);
  // Enable before the sim exists so construction-time events are captured.
  if (!a.trace_path.empty()) obs::trace().enable();

  SimConfig cfg;
  cfg.fmem = static_cast<Bytes>(a.fmem_mib * 1024 * 1024);
  cfg.smem = static_cast<Bytes>(a.smem_mib * 1024 * 1024);
  if (!a.topology.empty()) {
    // Flags fail hard on bad input (unlike MTAT_TOPOLOGY, which warns and
    // falls back): an explicit --topology the user typed must not be ignored.
    std::string error;
    const auto tiers = parse_topology(a.topology, &error);
    if (!tiers) {
      std::fprintf(stderr, "bad value for --topology: %s\n\n", error.c_str());
      usage(2);
    }
    cfg.tiers = *tiers;
  }
  cfg.lc = lc_from(a);
  cfg.be = be_suite(BEScale::kDefault, cfg.fmem + cfg.fmem / 10, a.be_cores, a.n_be);
  cfg.policy = policy_from(a.policy);
  cfg.seed = a.seed;
  if (a.bandwidth) {
    cfg.bandwidth.enabled = true;
    cfg.bandwidth.fmem_accesses_per_sec = 150e6 * a.n_be;
    cfg.bandwidth.smem_accesses_per_sec = 25e6 * a.n_be;
  }

  ColocationSim sim(cfg);
  const double max_rps = cfg.lc.max_load_krps * 1000.0;
  const LoadPattern pattern = a.pattern == "constant"
                                  ? LoadPattern::constant(a.load_fraction * max_rps)
                                  : LoadPattern::figure7(max_rps);
  const auto duration = static_cast<Duration>(a.seconds_total * 1e9);

  if (cfg.policy == PolicyKind::kMtatFull || cfg.policy == PolicyKind::kMtatLcOnly) {
    std::fprintf(stderr, "training %d epochs...\n", a.train_epochs);
    for (int e = 0; e < a.train_epochs; ++e)
      sim.run(pattern, pattern.total_length(), /*measure=*/false);
    sim.reset_stats();
  }
  std::fprintf(stderr, "measuring %.0f s under %s...\n", a.seconds_total, a.policy.c_str());
  const SimTime t0 = sim.now();
  sim.run(pattern, duration);
  const SimResult r = sim.result();

  // --- series ---------------------------------------------------------------
  std::vector<std::string> cols = {"t_sec", "offered_rps", "lc_p99_ms", "lc_tput_rps",
                                   "lc_fmem_share"};
  for (std::size_t i = 0; i < sim.be_count(); ++i) {
    cols.push_back(sim.be(i).config().name + "_share");
    cols.push_back(sim.be(i).config().name + "_rate");
  }
  std::unique_ptr<CsvWriter> csv;
  if (!a.csv_path.empty()) csv = std::make_unique<CsvWriter>(a.csv_path, cols);
  for (const TimePoint& tp : r.series) {
    std::vector<double> row = {tp.t_sec - to_seconds(t0), tp.offered_rps, tp.lc_p99_ms,
                               tp.lc_throughput_rps, tp.lc_fmem_share};
    for (std::size_t i = 0; i < sim.be_count(); ++i) {
      row.push_back(tp.be_fmem_share[i]);
      row.push_back(tp.be_throughput[i]);
    }
    if (csv) csv->row(row);
  }

  // --- summary ----------------------------------------------------------------
  std::printf("policy          %s\n", policy_name(cfg.policy));
  std::printf("lc              %s (%d threads, SLO %.0f ms, max %.1f KRPS)\n",
              cfg.lc.name.c_str(), cfg.lc.threads, static_cast<double>(cfg.lc.slo) / 1e6,
              cfg.lc.max_load_krps);
  std::printf("lc p99          %.2f ms\n", r.lc_p99_ms);
  std::printf("slo violations  %.2f %%\n", 100.0 * r.slo_violation_rate);
  std::printf("lc completed    %llu requests\n", (unsigned long long)r.lc_completed);
  for (std::size_t i = 0; i < sim.be_count(); ++i)
    std::printf("be %-9s    %.3e iters/s (NP %.3f)\n", sim.be(i).config().name.c_str(),
                r.be_rate[i], r.be_np[i]);
  std::printf("fairness        %.3f (min NP)\n", r.fairness);
  std::printf("migration       %.1f MB/s\n", r.migration_bytes_per_sec / 1e6);
  std::printf("policy wall     %.1f us/interval\n", r.policy_wall_us_per_interval);
  if (!a.csv_path.empty()) std::printf("series          %s\n", a.csv_path.c_str());

  // --- observability sidecars -------------------------------------------------
  int rc = 0;
  if (!a.trace_path.empty()) {
    std::ofstream out(a.trace_path);
    if (!out) {
      std::fprintf(stderr, "error: cannot open %s for writing\n", a.trace_path.c_str());
      rc = 1;
    } else {
      obs::trace().write_chrome_json(out);
      out << '\n';
      std::printf("trace           %s (%zu events, %llu dropped)\n", a.trace_path.c_str(),
                  obs::trace().size(), (unsigned long long)obs::trace().dropped());
    }
  }
  if (!a.metrics_path.empty()) {
    obs::RunManifest manifest;
    manifest.tool = "mtat_sim";
    manifest.seed = a.seed;
    const bool mtat = cfg.policy == PolicyKind::kMtatFull || cfg.policy == PolicyKind::kMtatLcOnly;
    manifest.train_epochs = mtat ? a.train_epochs : -1;
    manifest.add("policy", a.policy);
    manifest.add("lc", a.lc);
    manifest.add("n_be", std::to_string(a.n_be));
    manifest.add("be_cores", std::to_string(a.be_cores));
    manifest.add("pattern", a.pattern);
    manifest.add("load_fraction", std::to_string(a.load_fraction));
    manifest.add("seconds", std::to_string(a.seconds_total));
    manifest.add("fmem_mib", std::to_string(a.fmem_mib));
    manifest.add("smem_mib", std::to_string(a.smem_mib));
    if (!a.topology.empty()) manifest.add("topology", topology_to_string(cfg.tiers));
    manifest.add("bandwidth_model", a.bandwidth ? "on" : "off");
    manifest.add("zipf", a.zipf ? "on" : "off");
    std::ofstream out(a.metrics_path);
    if (!out) {
      std::fprintf(stderr, "error: cannot open %s for writing\n", a.metrics_path.c_str());
      return 1;
    }
    out << "{\"manifest\":";
    manifest.write_json(out);
    out << ",\"metrics\":";
    sim.metrics().write_json(out);
    // json_number keeps full precision so the summary values are bit-equal
    // to the registry's derived.* gauges (they are the same numbers).
    out << ",\"summary\":{\"lc_p99_ms\":";
    obs::json_number(out, r.lc_p99_ms);
    out << ",\"slo_violation_rate\":";
    obs::json_number(out, r.slo_violation_rate);
    out << ",\"lc_completed\":" << r.lc_completed << ",\"fairness\":";
    obs::json_number(out, r.fairness);
    out << ",\"be_total_throughput\":";
    obs::json_number(out, r.be_total_throughput);
    out << ",\"migration_bytes_per_sec\":";
    obs::json_number(out, r.migration_bytes_per_sec);
    out << ",\"policy_wall_us_per_interval\":";
    obs::json_number(out, r.policy_wall_us_per_interval);
    out << "}}\n";
    std::printf("metrics         %s\n", a.metrics_path.c_str());
  }
  return rc;
}
