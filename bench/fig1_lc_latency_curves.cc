// Figure 1: tail latency of the four LC workloads as offered load grows, at
// static FMem allocations of 0/25/50/75/100% of the working set. The paper's
// observation — throughput (the knee position) degrades monotonically as
// FMem shrinks — must hold for every workload.
#include "bench/harness.h"
#include "common/csv.h"

using namespace mtat;
using namespace mtat::bench;

int main() {
  const Scale sc = scale_from_env();
  banner("fig1_lc_latency_curves", "Figure 1");
  experiments::ParallelRunner runner = make_runner();
  CsvWriter csv("fig1_lc_latency_curves.csv",
                {"workload", "fmem_pct", "offered_krps", "p99_ms", "achieved_krps"});
  const std::vector<double> fractions = {0.0, 0.25, 0.5, 0.75, 1.0};
  const std::vector<double> loads = {0.4, 0.6, 0.7, 0.8, 0.85, 0.9, 0.95, 1.0, 1.05, 1.1};
  for (const LCConfig& lc : scaled_lc_configs(sc)) {
    std::printf("\n--- %s (SLO %.0f ms) ---\n", lc.name.c_str(),
                static_cast<double>(lc.slo) / 1e6);
    std::printf("%-9s", "FMem");
    for (double l : loads) std::printf(" %8.1fk", l * lc.max_load_krps);
    std::printf("\n");
    for (double f : fractions) {
      const auto curve = experiments::lc_latency_curve(lc, f, loads, seconds(20), 99, &runner);
      std::printf("%7.0f%% ", f * 100);
      for (const auto& pt : curve) {
        if (pt.p99_ms < 9999)
          std::printf(" %8.2fms", pt.p99_ms);
        else
          std::printf(" %8.0fms", pt.p99_ms);
        csv.row(lc.name,
                {f * 100, pt.offered_krps, pt.p99_ms, pt.achieved_krps});
      }
      std::printf("\n");
    }
  }
  std::printf("\nexpected shape: P99 diverges at lower offered load as the FMem share\n"
              "shrinks (knee at ~%.0f%% of max with FMem 0%%), monotone in between.\n",
              100.0 * 0.78);
  return 0;
}
