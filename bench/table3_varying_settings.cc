// Table 3: MTAT (Full) and MTAT (LC Only) across varying (x, y, z) settings —
// x cores for the LC workload (Memcached), y cores shared by z BE workloads.
// Reports LC max load normalized to FMEM_ALL and BE fairness/throughput at
// 20/50/80% of that max normalized to MEMTIS.
//
// Expected shape (paper §5.4): LC max load 0.98-0.99 everywhere; BE
// throughput ~0.85-1.0 of MEMTIS at 20/50% load, dropping to ~0.5-0.75 at
// 80%; MTAT (Full) fairness >= MEMTIS at every setting, growing with load.
#include "bench/harness.h"
#include "common/csv.h"

using namespace mtat;
using namespace mtat::bench;

namespace {

struct Setting {
  int lc_cores, be_cores_total, n_be;
};

struct LevelMetrics {
  double fairness = 0, tput = 0;
};

LevelMetrics measure_at_level(const Scale& sc, const LCConfig& lc, PolicyKind policy,
                              int n_be, int be_cores, double load_krps, SacAgent* agent) {
  SimConfig cfg = make_sim_config(sc, lc, policy, n_be, be_cores);
  cfg.shared_agent = agent;
  ColocationSim sim(cfg);
  const LoadPattern pattern = LoadPattern::constant(load_krps * 1000.0);
  sim.run(pattern, seconds(12), /*measure=*/false);
  sim.reset_stats();
  sim.run(pattern, seconds(20));
  const SimResult r = sim.result();
  return {r.fairness, r.be_total_throughput};
}

}  // namespace

int main() {
  const Scale sc = scale_from_env();
  banner("table3_varying_settings", "Table 3");
  CsvWriter csv("table3_varying_settings.csv",
                {"setting", "variant", "lc_max_norm", "fair20", "tput20", "fair50", "tput50",
                 "fair80", "tput80"});
  const std::vector<Setting> settings = {{4, 20, 2},  {4, 20, 4}, {10, 14, 2},
                                         {10, 14, 4}, {16, 8, 2}, {16, 8, 4}};
  std::printf("%-11s %-13s %8s | %6s %6s | %6s %6s | %6s %6s\n", "setting", "variant",
              "LC max", "f20", "t20", "f50", "t50", "f80", "t80");
  for (const Setting& st : settings) {
    // Memcached with the setting's core count; max load scales with cores.
    LCConfig lc = scaled_lc_config(memcached_config(), sc);
    lc.threads = st.lc_cores;
    lc.max_load_krps = memcached_config().max_load_krps * st.lc_cores / 8.0;
    const int be_cores = st.be_cores_total / st.n_be;

    // FMEM_ALL max load (normalization base).
    const auto max_for = [&](PolicyKind policy, SacAgent* agent) {
      return find_max_load(
          [&](double krps) {
            SimConfig cfg = make_sim_config(sc, lc, policy, st.n_be, be_cores);
            cfg.shared_agent = agent;
            ColocationSim sim(cfg);
            return probe_slo_sustainable(sim, krps, seconds(25), seconds(20));
          },
          0.2 * lc.max_load_krps, 1.3 * lc.max_load_krps, 5);
    };
    const double base_max = max_for(PolicyKind::kFmemAll, nullptr);

    // MEMTIS metrics at each level (normalization base for BE columns).
    LevelMetrics memtis[3];
    const double levels[3] = {0.2, 0.5, 0.8};
    for (int i = 0; i < 3; ++i)
      memtis[i] = measure_at_level(sc, lc, PolicyKind::kMemtis, st.n_be, be_cores,
                                   levels[i] * base_max, nullptr);

    for (PolicyKind variant : {PolicyKind::kMtatFull, PolicyKind::kMtatLcOnly}) {
      SacAgent agent{SacConfig{}};
      {
        SimConfig cfg = make_sim_config(sc, lc, variant, st.n_be, be_cores);
        cfg.shared_agent = &agent;
        ColocationSim trainer(cfg);
        train_if_mtat(trainer, sc.train_epochs, base_max);
      }
      const double lc_max = max_for(variant, &agent) / base_max;
      std::vector<double> row = {lc_max};
      char label[32];
      std::snprintf(label, sizeof label, "(%d;%d;%d)", st.lc_cores, st.be_cores_total,
                    st.n_be);
      std::printf("%-11s %-13s %8.3f |", label, policy_name(variant), lc_max);
      for (int i = 0; i < 3; ++i) {
        const LevelMetrics m = measure_at_level(sc, lc, variant, st.n_be, be_cores,
                                                levels[i] * base_max, &agent);
        const double f = memtis[i].fairness > 0 ? m.fairness / memtis[i].fairness : 0.0;
        const double t = memtis[i].tput > 0 ? m.tput / memtis[i].tput : 0.0;
        row.push_back(f);
        row.push_back(t);
        std::printf(" %6.2f %6.2f |", f, t);
      }
      std::printf("\n");
      csv.row({label, policy_name(variant)}, row);
    }
  }
  std::printf("\npaper: LC max 0.98-0.99 across all settings; fairness ratios 1.0-1.8,\n"
              "throughput 0.5-1.0 falling with load level.\n");
  return 0;
}
