// Table 3: MTAT (Full) and MTAT (LC Only) across varying (x, y, z) settings —
// x cores for the LC workload (Memcached), y cores shared by z BE workloads.
// Reports LC max load normalized to FMEM_ALL and BE fairness/throughput at
// 20/50/80% of that max normalized to MEMTIS.
//
// Expected shape (paper §5.4): LC max load 0.98-0.99 everywhere; BE
// throughput ~0.85-1.0 of MEMTIS at 20/50% load, dropping to ~0.5-0.75 at
// 80%; MTAT (Full) fairness >= MEMTIS at every setting, growing with load.
#include "bench/harness.h"
#include "common/csv.h"

using namespace mtat;
using namespace mtat::bench;

namespace {

struct Setting {
  int lc_cores, be_cores_total, n_be;
};

struct LevelMetrics {
  double fairness = 0, tput = 0;
};

LevelMetrics measure_at_level(const Scale& sc, const LCConfig& lc, PolicyKind policy,
                              int n_be, int be_cores, double load_krps, SacAgent* agent,
                              obs::RunContext& ctx) {
  SimConfig cfg = make_sim_config(sc, lc, policy, n_be, be_cores);
  cfg.shared_agent = agent;
  ColocationSim sim(cfg, &ctx);
  const LoadPattern pattern = LoadPattern::constant(load_krps * 1000.0);
  sim.run(pattern, seconds(12), /*measure=*/false);
  sim.reset_stats();
  sim.run(pattern, seconds(20));
  const SimResult r = sim.result();
  return {r.fairness, r.be_total_throughput};
}

}  // namespace

int main() {
  const Scale sc = scale_from_env();
  banner("table3_varying_settings", "Table 3");
  experiments::ParallelRunner runner = make_runner();
  CsvWriter csv("table3_varying_settings.csv",
                {"setting", "variant", "lc_max_norm", "fair20", "tput20", "fair50", "tput50",
                 "fair80", "tput80"});
  const std::vector<Setting> settings = {{4, 20, 2},  {4, 20, 4}, {10, 14, 2},
                                         {10, 14, 4}, {16, 8, 2}, {16, 8, 4}};
  std::printf("%-11s %-13s %8s | %6s %6s | %6s %6s | %6s %6s\n", "setting", "variant",
              "LC max", "f20", "t20", "f50", "t50", "f80", "t80");
  for (const Setting& st : settings) {
    // Memcached with the setting's core count; max load scales with cores.
    LCConfig lc = scaled_lc_config(memcached_config(), sc);
    lc.threads = st.lc_cores;
    lc.max_load_krps = memcached_config().max_load_krps * st.lc_cores / 8.0;
    const int be_cores = st.be_cores_total / st.n_be;

    // Serial bisection for a shared-agent variant: every probe advances the
    // agent, so probe order matters (the impure case the parallel
    // find_max_load overload documents); each probe sim still gets a private
    // observability context so the variant specs below can run concurrently.
    const auto max_for_serial = [&](PolicyKind policy, SacAgent* agent) {
      return experiments::find_max_load(
          [&](double krps) {
            SimConfig cfg = make_sim_config(sc, lc, policy, st.n_be, be_cores);
            cfg.shared_agent = agent;
            obs::RunContext ctx(obs::RunContext::TraceMode::kPrivate);
            ColocationSim sim(cfg, &ctx);
            return experiments::probe_slo_sustainable(sim, krps, seconds(25), seconds(20));
          },
          0.2 * lc.max_load_krps, 1.3 * lc.max_load_krps, 5);
    };

    // FMEM_ALL max load (normalization base): pure probe, parallel bisection.
    const double base_max = experiments::find_max_load(
        [&](double krps, obs::RunContext& ctx) {
          SimConfig cfg = make_sim_config(sc, lc, PolicyKind::kFmemAll, st.n_be, be_cores);
          ColocationSim sim(cfg, &ctx);
          return experiments::probe_slo_sustainable(sim, krps, seconds(25), seconds(20));
        },
        0.2 * lc.max_load_krps, 1.3 * lc.max_load_krps, 5, runner);

    // MEMTIS metrics at each level (normalization base for BE columns) —
    // independent runs, one spec each.
    const double levels[3] = {0.2, 0.5, 0.8};
    LevelMetrics memtis[3];
    {
      std::vector<experiments::RunSpec> specs;
      for (int i = 0; i < 3; ++i)
        specs.push_back({"memtis@level" + std::to_string(i),
                         [&, i](obs::RunContext& ctx) {
                           memtis[i] = measure_at_level(sc, lc, PolicyKind::kMemtis,
                                                        st.n_be, be_cores,
                                                        levels[i] * base_max, nullptr, ctx);
                         }});
      runner.run_all(specs);
    }

    // The two MTAT variants are independent of each other (own agent, own
    // training) but serial inside: the bisection and the per-level runs all
    // share the variant's agent.
    struct VariantRow {
      double lc_max = 0;
      LevelMetrics m[3];
    };
    const PolicyKind variants[2] = {PolicyKind::kMtatFull, PolicyKind::kMtatLcOnly};
    VariantRow rows[2];
    {
      std::vector<experiments::RunSpec> specs;
      for (int v = 0; v < 2; ++v)
        specs.push_back({policy_name(variants[v]), [&, v](obs::RunContext& ctx) {
                           const PolicyKind variant = variants[v];
                           SacAgent agent{SacConfig{}};
                           {
                             SimConfig cfg =
                                 make_sim_config(sc, lc, variant, st.n_be, be_cores);
                             cfg.shared_agent = &agent;
                             ColocationSim trainer(cfg, &ctx);
                             train_if_mtat(trainer, sc.train_epochs, base_max);
                           }
                           rows[v].lc_max = max_for_serial(variant, &agent) / base_max;
                           for (int i = 0; i < 3; ++i) {
                             obs::RunContext level_ctx(obs::RunContext::TraceMode::kPrivate);
                             rows[v].m[i] =
                                 measure_at_level(sc, lc, variant, st.n_be, be_cores,
                                                  levels[i] * base_max, &agent, level_ctx);
                           }
                         }});
      runner.run_all(specs);
    }

    for (int v = 0; v < 2; ++v) {
      std::vector<double> row = {rows[v].lc_max};
      char label[32];
      std::snprintf(label, sizeof label, "(%d;%d;%d)", st.lc_cores, st.be_cores_total,
                    st.n_be);
      std::printf("%-11s %-13s %8.3f |", label, policy_name(variants[v]), rows[v].lc_max);
      for (int i = 0; i < 3; ++i) {
        const double f = memtis[i].fairness > 0 ? rows[v].m[i].fairness / memtis[i].fairness
                                                : 0.0;
        const double t = memtis[i].tput > 0 ? rows[v].m[i].tput / memtis[i].tput : 0.0;
        row.push_back(f);
        row.push_back(t);
        std::printf(" %6.2f %6.2f |", f, t);
      }
      std::printf("\n");
      csv.row({label, policy_name(variants[v])}, row);
    }
  }
  std::printf("\npaper: LC max 0.98-0.99 across all settings; fairness ratios 1.0-1.8,\n"
              "throughput 0.5-1.0 falling with load level.\n");
  return 0;
}
