// Microbenchmark: single-node hot-path throughput (the perf trajectory).
//
// Rates the simulator's per-operation hot paths against host wall time:
// ColocationSim steps/s, AccessSampler sample-ingest/s, PageHotness
// record+age and hottest/coldest-pull ops/s, MigrationEngine migrations/s,
// and SAC inferences/s. Each microbench runs one untimed warmup repetition
// plus `reps` timed ones and reports the best repetition (min wall) — the
// standard guard against scheduler noise inflating a regression.
//
// Unlike the per-figure benches, results APPEND: every run adds one entry
// (label from MTAT_PERF_LABEL, default "run") to BENCH_core.json in the
// working directory, so the committed file is a same-machine trajectory of
// the tree's performance over time. tools/perf_diff compares entries and
// gates on regressions (DESIGN.md §14). An existing file that does not parse
// is a loud error, never overwritten.
//
// Wall timings use steady_clock and are machine-dependent — this bench
// tracks the simulator's own speed, not the paper's metrics.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "bench/perf_trajectory.h"
#include "mem/migration_engine.h"
#include "obs/names.h"
#include "rl/sac.h"
#include "telemetry/access_sampler.h"
#include "telemetry/page_hotness.h"

using namespace mtat;
using namespace mtat::bench;

namespace {

// Defeats dead-code elimination of the measured loops' results. Ownership:
// single-threaded bench driver, write-only, value never read back.
volatile std::uint64_t g_sink = 0;  // mtat-lint: allow(shared-mutable)

struct PerfSizes {
  std::uint64_t pages;       ///< tracked working set of the telemetry benches
  std::uint64_t records;     ///< record_access / sample-ingest ops per rep
  std::uint64_t pull_iters;  ///< hottest+coldest pull pairs per rep
  std::uint64_t migrations;  ///< promote/demote pairs per rep
  std::uint64_t inferences;  ///< SAC act() calls per rep
  Duration sim_len;          ///< simulated time per sim-steps rep
  int reps;                  ///< timed repetitions (best-of)
  int sim_reps;              ///< timed repetitions of the (slow) sim bench
};

PerfSizes sizes_for(const std::string& preset) {
  PerfSizes s;
  if (preset == "large") {
    s.pages = 1u << 20;
    s.records = 1u << 23;
    s.pull_iters = 1u << 16;
    s.migrations = 1u << 19;
    s.inferences = 1u << 15;
    s.sim_len = seconds(20);
    s.reps = 5;
    s.sim_reps = 2;
  } else if (preset == "smoke") {
    s.pages = 1u << 14;
    s.records = 1u << 18;
    s.pull_iters = 1u << 11;
    s.migrations = 1u << 14;
    s.inferences = 1u << 11;
    s.sim_len = seconds(2);
    s.reps = 2;
    s.sim_reps = 1;
  } else {
    s.pages = 1u << 17;
    s.records = 1u << 21;
    s.pull_iters = 1u << 14;
    s.migrations = 1u << 17;
    s.inferences = 1u << 14;
    s.sim_len = seconds(10);
    s.reps = 5;
    s.sim_reps = 2;
  }
  return s;
}

/// Best-of-reps ops/s for `fn` (one untimed warmup unless warmup == false).
double rate(std::uint64_t ops_per_rep, int reps, bool warmup,
            const std::function<void()>& fn) {
  if (warmup) fn();
  double best = std::numeric_limits<double>::infinity();
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return static_cast<double>(ops_per_rep) / best;
}

TieredMemory::Config mem_config(std::uint64_t pages) {
  TieredMemory::Config cfg =
      TieredMemory::Config::two_tier(pages / 2 + 1, pages);
  return cfg;
}

/// PageHotness record+age: skewed sampled accesses over a seeded working
/// set — 90% of records land on a pages/16 hot set, the rest are uniform —
/// with an aging pass every records/8 ops (so the aging rotation is part of
/// the measured mix, as it is in a real run). The skew matches what the
/// histogram actually ingests: PEBS-like sample streams follow the
/// workloads' concentrated access profiles, so hot pages accumulate counts
/// whose increments mostly stay within their (doubling-width) bin.
double bench_hotness_record_age(const PerfSizes& s) {
  TieredMemory mem(mem_config(s.pages));
  mem.allocate(0, s.pages, kFastestFirst);
  PageHotness hist(mem);
  hist.seed_allocated_pages();
  Rng rng(2024);
  std::vector<PageId> idx(s.records);
  const std::uint64_t hot_set = s.pages / 16;
  for (auto& p : idx)
    p = static_cast<PageId>(rng.next_below(10) < 9 ? rng.next_below(hot_set)
                                                   : rng.next_below(s.pages));
  const std::uint64_t age_every = s.records / 8;
  return rate(s.records, s.reps, true, [&] {
    // Countdown rather than `i % age_every`: a 64-bit modulo by a runtime
    // divisor costs more than the record itself and would dominate the loop.
    std::uint64_t until_age = age_every;
    for (std::uint64_t i = 0; i < s.records; ++i) {
      hist.record_access(0, idx[i]);
      if (--until_age == 0) {
        hist.age();
        until_age = age_every;
      }
    }
    g_sink = g_sink + hist.tracked_pages();
  });
}

/// Hottest/coldest pulls from a populated histogram (the per-tick policy
/// read path: MEMTIS pulls promotion/demotion candidate batches).
double bench_hotness_pull(const PerfSizes& s) {
  TieredMemory mem(mem_config(s.pages));
  mem.allocate(0, s.pages, kFastestFirst);
  PageHotness hist(mem);
  hist.seed_allocated_pages();
  Rng rng(7);
  for (std::uint64_t i = 0; i < s.pages * 4; ++i)
    hist.record_access(0, static_cast<PageId>(rng.next_below(s.pages)));
  const std::size_t batch = 64;
  // Pulls are const reads: every iteration returns the same page count, so
  // the op count per rep is fixed and computable up front.
  const std::uint64_t per_iter = hist.hottest_in_tier(kFastestTier + 1, batch).size() +
                                 hist.coldest_in_tier(kFastestTier, batch).size();
  return rate(s.pull_iters * per_iter, s.reps, true, [&] {
    for (std::uint64_t i = 0; i < s.pull_iters; ++i) {
      const auto hot = hist.hottest_in_tier(kFastestTier + 1, batch);
      const auto cold = hist.coldest_in_tier(kFastestTier, batch);
      g_sink = g_sink + hot.size() + cold.size();
    }
  });
}

/// AccessSampler ingest: the full per-sample path — tier classification,
/// interval counters, and the PageHotness sink fan-out.
double bench_sampler_ingest(const PerfSizes& s) {
  TieredMemory mem(mem_config(s.pages));
  mem.allocate(0, s.pages / 2, kFastestFirst);
  mem.allocate(1, s.pages / 2, kFastestFirst);
  AccessSampler sampler(mem, 199);
  PageHotness hist(mem);
  hist.seed_allocated_pages();
  sampler.add_sink(&hist);
  Rng rng(11);
  const std::uint64_t total = (s.pages / 2) * 2;
  std::vector<PageId> idx(s.records);
  for (auto& p : idx) p = static_cast<PageId>(rng.next_below(total));
  return rate(s.records, s.reps, true, [&] {
    for (std::uint64_t i = 0; i < s.records; ++i) {
      const PageId p = idx[i];
      sampler.on_sampled_access(mem.owner_of(p), p,
                                (i & 3) == 0 ? AccessKind::kWrite : AccessKind::kRead);
    }
    g_sink = g_sink + sampler.peek(0).total();
  });
}

/// MigrationEngine promote/demote round trips, with a PageHotness listener
/// attached so the measured path includes the telemetry's migration hook.
double bench_migrations(const PerfSizes& s) {
  TieredMemory mem(mem_config(s.pages));
  mem.allocate(0, s.pages, kTierOnly(kFastestTier + 1));
  PageHotness hist(mem);
  hist.seed_allocated_pages();
  MigrationEngine::Config eng_cfg;
  eng_cfg.bandwidth_bytes_per_sec = 64.0 * 1024 * 1024 * 1024;
  MigrationEngine eng(mem, eng_cfg);
  const std::vector<PageId>& all = mem.pages_of(0);
  const std::size_t ring = std::min<std::size_t>(all.size(), 1024);
  return rate(s.migrations * 2, s.reps, true, [&] {
    for (std::uint64_t i = 0; i < s.migrations; ++i) {
      if (eng.budget_pages() < 2) eng.begin_interval(seconds(1));
      const PageId p = all[i % ring];
      eng.promote(p);
      eng.demote(p);
    }
    g_sink = g_sink + mem.total_migrations();
  });
}

/// SAC actor inference (deterministic act()), the PP-M decide hot path.
double bench_sac_inference(const PerfSizes& s) {
  SacConfig cfg;
  SacAgent agent(cfg);
  const std::vector<double> state = {0.5, 0.6, 0.3};
  return rate(s.inferences, s.reps, true, [&] {
    double acc = 0;
    for (std::uint64_t i = 0; i < s.inferences; ++i)
      acc += agent.act(state, /*deterministic=*/true)[0];
    g_sink = g_sink + static_cast<std::uint64_t>(acc * 0);
  });
}

/// End-to-end simulator throughput: ticks/s of a co-located MEMTIS run (the
/// histogram-centric policy — every sample hits the PageHotness hot path).
double bench_sim_steps(const PerfSizes& s) {
  SimConfig cfg;
  cfg.fmem = 32_MiB;
  cfg.smem = 512_MiB;
  cfg.lc = redis_config();
  cfg.lc.n_records = 30'000;
  cfg.be = be_suite(BEScale::kTest, 36_MiB, 4, 2);
  cfg.policy = PolicyKind::kMemtis;
  cfg.bandwidth.enabled = true;
  cfg.seed = 20240806;
  ColocationSim sim(cfg);
  const LoadPattern pat = LoadPattern::constant(cfg.lc.max_load_krps * 1000.0 * 0.5);
  const std::uint64_t steps = s.sim_len / cfg.tick;
  return rate(steps, s.sim_reps, false, [&] { sim.run(pat, s.sim_len); });
}

}  // namespace

int main() {
  const std::string preset = scale_preset_from_env();
  banner("perf_core", "microbench: single-node hot-path ops/s trajectory");
  const PerfSizes s = sizes_for(preset);

  PerfEntry entry;
  entry.label = Env::get().perf_label;
  entry.scale = preset;
  std::printf("%-36s %14s\n", "metric", "ops/s");
  const auto run_one = [&](const char* name, double value) {
    entry.metrics.emplace_back(name, value);
    std::printf("%-36s %14.0f\n", name, value);
  };
  run_one(obs::names::kPerfHotnessRecordAgePerSec, bench_hotness_record_age(s));
  run_one(obs::names::kPerfHotnessPullPerSec, bench_hotness_pull(s));
  run_one(obs::names::kPerfSamplerIngestPerSec, bench_sampler_ingest(s));
  run_one(obs::names::kPerfMigrationsPerSec, bench_migrations(s));
  run_one(obs::names::kPerfSacInferencePerSec, bench_sac_inference(s));
  run_one(obs::names::kPerfSimStepsPerSec, bench_sim_steps(s));

  return append_perf_trajectory("BENCH_core.json", "perf_core", std::move(entry)) ? 0 : 1;
}
