// Extension: N-tier topologies through the tier-vector memory API.
//
// The paper's platform is the classic two-tier DRAM+CXL box; this bench
// exercises the same policies on deeper memory hierarchies:
//
//  1. A DRAM/CXL/NVM three-tier node vs the classic two-tier preset, same
//     LC/BE co-location and dynamic load — the slower-aggregate telemetry
//     and TierId-generalized policies must keep the LC tenant serviceable
//     when the "slow tier" is itself split by latency.
//  2. A four-tier topology (DRAM/CXL/NVM/remote) with the fast tier halved,
//     so watermark reclaim has to *cascade* cold pages link by link toward
//     the tail. The per-link traffic counters (migration.link0..2_pages_moved,
//     registered only beyond two tiers) are the receipts: nonzero link1/link2
//     traffic is movement the two-tier API could not even express.
//  3. A small ClusterSim fleet whose node template is the three-tier box,
//     placed by the telemetry-aware policy — fleet aggregates (the
//     cluster.* gauge family) flow through unchanged on N-tier nodes.
//
// Topologies here are spelled with the same TierSpec vectors MTAT_TOPOLOGY
// and mtat_sim --topology parse into; the two-tier rows double as a sanity
// anchor (they go through the identical tier-vector code path).
#include <algorithm>

#include "bench/cluster_env.h"
#include "common/csv.h"
#include "obs/names.h"

using namespace mtat;
using namespace mtat::bench;

namespace {

constexpr double kGiB = 1024.0 * 1024 * 1024;

/// DRAM/CXL/NVM: DRAM keeps the preset's fast-tier size, CXL takes a quarter
/// of the preset slow tier, NVM the rest; latencies follow the paper's DRAM
/// and CXL numbers with an NVM-class tail, and the NVM link gets half the
/// migration bandwidth.
std::vector<TierSpec> three_tier(const Scale& sc) {
  return {{"dram", bytes_to_pages(sc.fmem), 73, 4.0 * kGiB},
          {"cxl", bytes_to_pages(sc.smem / 4), 202, 4.0 * kGiB},
          {"nvm", bytes_to_pages(sc.smem), 450, 2.0 * kGiB}};
}

/// Four tiers, each of the first three only half the preset fast tier: the
/// LC footprint alone (sized ~1.05x the preset fast tier) overflows
/// DRAM+CXL, and with BE tenants on top even NVM stays at its watermark, so
/// cold pages must keep cascading remote-ward and every link sees traffic.
std::vector<TierSpec> four_tier(const Scale& sc) {
  return {{"dram", bytes_to_pages(sc.fmem / 2), 73, 4.0 * kGiB},
          {"cxl", bytes_to_pages(sc.fmem / 2), 202, 4.0 * kGiB},
          {"nvm", bytes_to_pages(sc.fmem / 2), 450, 2.0 * kGiB},
          {"remote", bytes_to_pages(sc.smem), 900, 1.0 * kGiB}};
}

struct Outcome {
  SimResult r;
  double link_pages[3] = {0, 0, 0};
  double demotions = 0;
};

}  // namespace

int main() {
  const Scale sc = scale_from_env();
  banner("ext_ntier_topologies", "extension: N-tier topologies (tier-vector API)");
  experiments::ParallelRunner runner = make_runner();
  const LCConfig redis = scaled_lc_config(redis_config(), sc);
  // The surge peak all patterns share; a fixed fraction of the calibrated
  // max load rather than a measured FMEM_ALL peak — the comparison here is
  // across topologies under one identical offered pattern, so the absolute
  // operating point only needs to be load-bearing, not calibrated per tier
  // vector.
  const double peak = 0.8 * redis.max_load_krps;
  CsvWriter csv("ext_ntier_topologies.csv",
                {"experiment", "topology", "policy", "p99_ms", "viol_pct", "fairness",
                 "be_tput", "link0_pages", "link1_pages", "link2_pages"});

  const auto run_one = [&sc, &redis, peak](PolicyKind policy,
                                           const std::vector<TierSpec>& tiers,
                                           Outcome& out, obs::RunContext& ctx) {
    SimConfig cfg = make_sim_config(sc, redis, policy);
    cfg.tiers = tiers;  // empty = the preset's classic two tiers
    ColocationSim sim(cfg, &ctx);
    train_if_mtat(sim, sc.train_epochs, peak);
    const LoadPattern pattern = LoadPattern::figure7(peak * 1000.0);
    sim.run(pattern, pattern.total_length());
    out.r = sim.result();
    const char* const kLinkNames[3] = {obs::names::kMigrationLink0PagesMoved,
                                       obs::names::kMigrationLink1PagesMoved,
                                       obs::names::kMigrationLink2PagesMoved};
    for (int k = 0; k < 3; ++k) {
      const obs::Counter* c = sim.metrics().find_counter(kLinkNames[k]);
      out.link_pages[k] = c != nullptr ? c->value() : 0.0;
    }
    const obs::Counter* d = sim.metrics().find_counter(obs::names::kMigrationDemotions);
    out.demotions = d != nullptr ? d->value() : 0.0;
  };

  // --- [1] three-tier DRAM/CXL/NVM vs the classic two-tier preset ----------
  const std::vector<PolicyKind> policies = {PolicyKind::kMtatFull, PolicyKind::kMemtis,
                                            PolicyKind::kTpp};
  struct Leg {
    const char* label;
    std::vector<TierSpec> tiers;
  };
  const Leg legs[2] = {{"2tier", {}}, {"3tier_dram_cxl_nvm", three_tier(sc)}};
  std::vector<Outcome> ext1(policies.size() * 2);
  {
    std::vector<experiments::RunSpec> specs;
    for (std::size_t l = 0; l < 2; ++l)
      for (std::size_t i = 0; i < policies.size(); ++i)
        specs.push_back({std::string(legs[l].label) + "/" + policy_name(policies[i]),
                         [&run_one, &legs, &policies, &ext1, l, i](obs::RunContext& ctx) {
                           run_one(policies[i], legs[l].tiers,
                                   ext1[l * policies.size() + i], ctx);
                         }});
    runner.run_all(specs);
  }
  std::printf("[1] three-tier DRAM/CXL/NVM vs classic two-tier (Figure-5 conditions)\n");
  std::printf("%-20s %-13s %10s %9s %10s %13s\n", "topology", "policy", "P99(ms)", "viol%",
              "fairness", "BE tput");
  for (std::size_t l = 0; l < 2; ++l)
    for (std::size_t i = 0; i < policies.size(); ++i) {
      const Outcome& o = ext1[l * policies.size() + i];
      std::printf("%-20s %-13s %10.2f %8.1f%% %10.3f %13.3e\n", legs[l].label,
                  policy_name(policies[i]), o.r.lc_p99_ms, 100.0 * o.r.slo_violation_rate,
                  o.r.fairness, o.r.be_total_throughput);
      csv.row(std::vector<std::string>{"three_tier", legs[l].label, policy_name(policies[i])},
              {o.r.lc_p99_ms, 100.0 * o.r.slo_violation_rate, o.r.fairness,
               o.r.be_total_throughput, o.link_pages[0], o.link_pages[1], o.link_pages[2]});
    }

  // --- [2] four-tier cascaded demotion, per-link traffic -------------------
  const std::vector<PolicyKind> cascade_policies = {PolicyKind::kTpp, PolicyKind::kMemtis};
  std::vector<Outcome> ext2(cascade_policies.size());
  {
    std::vector<experiments::RunSpec> specs;
    for (std::size_t i = 0; i < cascade_policies.size(); ++i)
      specs.push_back({std::string("4tier/") + policy_name(cascade_policies[i]),
                       [&run_one, &sc, &cascade_policies, &ext2, i](obs::RunContext& ctx) {
                         run_one(cascade_policies[i], four_tier(sc), ext2[i], ctx);
                       }});
    runner.run_all(specs);
  }
  std::printf("\n[2] four-tier cascade (DRAM/CXL/NVM/remote, fast tier halved)\n");
  std::printf("%-13s %10s %9s %12s %12s %12s %12s\n", "policy", "P99(ms)", "viol%",
              "demotions", "link0_pages", "link1_pages", "link2_pages");
  for (std::size_t i = 0; i < cascade_policies.size(); ++i) {
    const Outcome& o = ext2[i];
    std::printf("%-13s %10.2f %8.1f%% %12.0f %12.0f %12.0f %12.0f\n",
                policy_name(cascade_policies[i]), o.r.lc_p99_ms,
                100.0 * o.r.slo_violation_rate, o.demotions, o.link_pages[0], o.link_pages[1],
                o.link_pages[2]);
    csv.row(std::vector<std::string>{"four_tier_cascade", "4tier_dram_cxl_nvm_remote",
                                     policy_name(cascade_policies[i])},
            {o.r.lc_p99_ms, 100.0 * o.r.slo_violation_rate, o.r.fairness,
             o.r.be_total_throughput, o.link_pages[0], o.link_pages[1], o.link_pages[2]});
  }

  // --- [3] three-tier nodes at fleet scale ----------------------------------
  // A deliberately small fleet (this is an API exercise, not the placement
  // study — ext_cluster_slo owns that): three-tier nodes, telemetry-aware
  // placement, the standard cluster.* aggregate pipeline.
  {
    cluster::ClusterConfig cc = make_cluster_config(sc, redis, peak);
    cc.nodes = std::min(cc.nodes, 16);
    cc.node.tiers = three_tier(sc);
    const auto policy = cluster::make_placement("telemetry");
    cluster::ClusterSim sim(cc);
    const cluster::ClusterResult r = sim.run(*policy, &runner);
    std::printf("\n[3] three-tier fleet, telemetry placement (%d nodes, %zu tenants)\n",
                cc.nodes, sim.tenants().size());
    std::printf("offered %.1fk  completed %.1fk  slo %.2f%%  tail_p99 %.3fms  fmem %.1f%%  "
                "overloaded %d  moved %d\n",
                r.offered_krps, r.completed_krps, r.slo_compliance_pct, r.max_p99_ms,
                r.fmem_util_pct, r.overloaded_nodes, r.rebalanced_tenants);
    csv.row(std::vector<std::string>{"three_tier_fleet", "3tier_dram_cxl_nvm", "telemetry"},
            {r.max_p99_ms, 100.0 - r.slo_compliance_pct, 0.0, r.completed_krps, 0.0, 0.0,
             0.0});
  }

  std::printf("\nexpected: the 3-tier box tracks the 2-tier anchor (the CXL middle tier\n"
              "absorbs warm spillover), and the halved-DRAM 4-tier run shows nonzero\n"
              "link1/link2 traffic — demotion cascading the two-tier API had no words for.\n");
  return 0;
}
