// Extension: fleet-scale SLO compliance under tenant placement policies
// (DESIGN.md §13, beyond the paper's single-node evaluation). A ClusterSim
// fleet of tiered-memory nodes — each a full ColocationSim under a baseline
// tiering policy — serves the same seed-deterministic tenant population
// routed three ways: random (null hypothesis), FMem bin-packing (capacity-
// centric best-fit), and telemetry-aware (balances on the `cluster.node_*`
// gauges the previous round exported). Reports cluster-wide SLO compliance,
// the tail-of-tails LC P99 (worst node, and the 99th percentile across node
// P99s), and aggregate fast-tier utilization per policy.
//
// Expected shape: random strands demand on a few unlucky nodes (overloaded
// nodes, compliance drops); bin_packing fixes footprint spill but still
// ignores request rate; telemetry evens out both, buying the highest
// compliance and the flattest tail at the price of some rebalancing churn.
//
// Every policy is judged on the identical fleet, tenants, and node seeds,
// and pays the same two placement/simulation rounds — the comparison is
// simulate-time fair, and the whole report is bit-identical whatever
// MTAT_JOBS (DESIGN.md §11 discipline at fleet scale).
#include "bench/cluster_env.h"
#include "common/csv.h"

using namespace mtat;
using namespace mtat::bench;

int main() {
  const Scale sc = scale_from_env();
  banner("ext_cluster_slo", "extension: fleet-scale tenant placement (DESIGN.md §13)");
  experiments::ParallelRunner runner = make_runner();
  const LCConfig redis = scaled_lc_config(redis_config(), sc);
  // The static per-node capacity estimate the policies receive is FMEM_ALL's
  // measured peak for the node template's co-location setting — the same
  // calibration the single-node benches use.
  const double peak = fmem_all_peak_krps(sc, redis, &runner, /*n_be=*/2);
  const cluster::ClusterConfig cc = make_cluster_config(sc, redis, peak);
  std::printf("fleet: %d nodes x (1 LC + 2 BE), node capacity %.2f KRPS, %d tenants at %.0f%% "
              "fleet utilization\n",
              cc.nodes, peak, cc.tenants > 0 ? cc.tenants : 4 * cc.nodes,
              100.0 * cc.target_utilization);

  CsvWriter fleet_csv("ext_cluster_slo.csv",
                      {"placement", "nodes", "tenants", "offered_krps", "completed_krps",
                       "slo_compliance_pct", "tail_p99_ms", "p99_of_p99_ms", "fmem_util_pct",
                       "overloaded_nodes", "rebalanced_tenants"});
  CsvWriter node_csv("ext_cluster_slo_nodes.csv",
                     {"placement", "node", "tenants", "offered_krps", "p99_ms",
                      "slo_violation_pct", "fmem_util_pct"});

  std::printf("%-12s %9s %11s %7s %11s %13s %9s %6s %7s\n", "placement", "offered",
              "completed", "slo%", "tail_p99", "p99_of_p99", "fmem%", "over", "moved");
  // Policies run serially at the top level — ClusterSim::run drives the
  // shared runner's fan-out itself (run_all is non-reentrant) — and each one
  // gets a fresh ClusterSim built from the same config, hence the identical
  // tenant population and node seeds.
  for (const std::string& name : cluster::all_placement_names()) {
    const auto policy = cluster::make_placement(name);
    cluster::ClusterSim sim(cc);
    const cluster::ClusterResult r = sim.run(*policy, &runner);
    fleet_csv.row(name, {static_cast<double>(cc.nodes), static_cast<double>(sim.tenants().size()),
                         r.offered_krps, r.completed_krps, r.slo_compliance_pct, r.max_p99_ms,
                         r.p99_of_p99_ms, r.fmem_util_pct, static_cast<double>(r.overloaded_nodes),
                         static_cast<double>(r.rebalanced_tenants)});
    for (const cluster::NodeResult& nr : r.nodes)
      node_csv.row(name, {static_cast<double>(nr.node_id), static_cast<double>(nr.tenants),
                          nr.offered_krps, nr.p99_ms, nr.slo_violation_pct, nr.fmem_util_pct});
    std::printf("%-12s %8.1fk %10.1fk %6.2f%% %9.3fms %11.3fms %8.1f%% %6d %7d\n", name.c_str(),
                r.offered_krps, r.completed_krps, r.slo_compliance_pct, r.max_p99_ms,
                r.p99_of_p99_ms, r.fmem_util_pct, r.overloaded_nodes, r.rebalanced_tenants);
  }
  std::printf("\nexpected: telemetry >= bin_packing >= random on compliance; random shows the "
              "most overloaded nodes and the fattest tail of tails\n");
  return 0;
}
