// Figure 7: the dynamic load pattern itself — 20% of max load, stepping up
// 20% every 20 s to 100%, holding, then stepping back down.
#include "bench/harness.h"
#include "common/csv.h"

using namespace mtat;
using namespace mtat::bench;

int main() {
  banner("fig7_load_pattern", "Figure 7");
  const LoadPattern p = LoadPattern::figure7(100.0);  // in % of max load
  CsvWriter csv("fig7_load_pattern.csv", {"t_sec", "load_pct_of_max"});
  std::printf("%6s %6s   profile\n", "t(s)", "load%");
  for (int t = 0; t < 240; t += 5) {
    const double pct = p.rate_at(seconds(static_cast<std::uint64_t>(t)));
    csv.row({static_cast<double>(t), pct});
    if (t % 10 == 0) {
      std::printf("%6d %5.0f%%  |", t, pct);
      for (int i = 0; i < static_cast<int>(pct / 2); ++i) std::printf("#");
      std::printf("\n");
    }
  }
  return 0;
}
