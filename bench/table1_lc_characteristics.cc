// Table 1: LC benchmark characteristics — RSS, SLO, and max load.
//
// The paper's values are hardware-scale (RSS ~30-34 GB, loads up to 1220
// KRPS); this binary reports the simulator-scale equivalents and *measures*
// each workload's max load (largest rate sustained without SLO violations at
// 100% FMem) so the configured calibration targets can be checked against
// observed behaviour.
#include "bench/harness.h"
#include "common/csv.h"

using namespace mtat;
using namespace mtat::bench;

int main() {
  const Scale sc = scale_from_env();
  banner("table1_lc_characteristics", "Table 1");
  experiments::ParallelRunner runner = make_runner();
  CsvWriter csv("table1_lc_characteristics.csv",
                {"workload", "rss_gib", "slo_ms", "configured_max_krps", "measured_max_krps"});
  std::printf("%-10s %9s %8s %14s %14s\n", "workload", "RSS(GiB)", "SLO(ms)", "cfg max KRPS",
              "meas max KRPS");
  for (const LCConfig& lc : scaled_lc_configs(sc)) {
    // Measured max load: bisection over constant-rate runs of the workload
    // alone at 100% FMem, requiring < 1% SLO violations. The probe is pure
    // (fresh workload per curve call), so its bisection fans across the
    // runner's workers.
    const auto sustainable = [&](double krps, obs::RunContext&) {
      const auto curve = experiments::lc_latency_curve(lc, 1.0, {krps / lc.max_load_krps},
                                                       sc.measure_window, /*seed=*/1234);
      return curve[0].p99_ms <= static_cast<double>(lc.slo) / 1e6;
    };
    const double measured = experiments::find_max_load(
        sustainable, 0.3 * lc.max_load_krps, 1.6 * lc.max_load_krps, 6, runner);
    // RSS: rebuild once to read the true footprint.
    TieredMemory::Config mc =
        TieredMemory::Config::two_tier(1, bytes_to_pages(sc.smem) + bytes_to_pages(sc.fmem));
    TieredMemory mem(mc);
    LCWorkload wl(mem, 0, lc, kTierOnly(kFastestTier + 1), 1);
    const double rss_gib = static_cast<double>(wl.rss()) / (1024.0 * 1024.0 * 1024.0);
    const double slo_ms = static_cast<double>(lc.slo) / 1e6;
    std::printf("%-10s %9.3f %8.0f %14.2f %14.2f\n", lc.name.c_str(), rss_gib, slo_ms,
                lc.max_load_krps, measured);
    csv.row(lc.name, {rss_gib, slo_ms, lc.max_load_krps, measured});
  }
  std::printf("\npaper values (hardware scale): redis 33.6GB/20ms/80K, memcached "
              "31.4GB/20ms/1220K,\n  mongodb 33.2GB/30ms/125K, silo 30.4GB/15ms/11K "
              "(see EXPERIMENTS.md for the mapping)\n");
  return 0;
}
