// Figures 5 and 6: the headline dynamic-load experiment. Each of the four LC
// workloads is co-located with the four BE workloads; the offered load
// follows the Figure-7 trapezoid. For every policy the binary reports the
// P99-over-time and per-workload FMem-share series (Figure 5) plus the BE
// fairness (min NP) and total throughput of the same runs (Figure 6).
//
// Expected shapes (paper §5.1): MEMTIS/TPP/SMEM_ALL violate the SLO through
// the high-load phase; both MTAT variants track the load — small reservation
// at low load, nearly the whole FMem at the peak — and keep P99 under the
// SLO; MTAT (Full) posts the best BE fairness, MEMTIS the best raw BE
// throughput, with MTAT's throughput penalty bounded (paper: <=19%).
#include "bench/harness.h"
#include "common/csv.h"

using namespace mtat;
using namespace mtat::bench;

int main() {
  const Scale sc = scale_from_env();
  banner("fig5_fig6_dynamic_load", "Figures 5 and 6");
  CsvWriter series_csv("fig5_series.csv",
                       {"lc", "policy", "t_sec", "offered_krps", "p99_ms", "lc_fmem_share",
                        "be0_share", "be1_share", "be2_share", "be3_share"});
  CsvWriter metrics_csv("fig6_be_metrics.csv",
                        {"lc", "policy", "fairness_min_np", "be_total_throughput",
                         "slo_violation_rate", "lc_p99_ms"});

  for (const LCConfig& lc : scaled_lc_configs(sc)) {
    std::printf("\n===== LC workload: %s =====\n", lc.name.c_str());
    const double peak = fmem_all_peak_krps(sc, lc);
    std::printf("pattern peak = FMEM_ALL measured max = %.2f KRPS\n", peak);
    std::printf("%-13s %10s %9s %10s %13s\n", "policy", "P99(ms)", "viol%", "fairness",
                "BE tput");
    double memtis_tput = 0.0, memtis_fair = 0.0;
    for (PolicyKind policy : all_policies()) {
      SimConfig cfg = make_sim_config(sc, lc, policy);
      ColocationSim sim(cfg);
      train_if_mtat(sim, sc.train_epochs, peak);
      const LoadPattern pattern = LoadPattern::figure7(peak * 1000.0);
      const SimTime t0 = sim.now();
      sim.run(pattern, pattern.total_length());
      const SimResult r = sim.result();
      for (const auto& tp : r.series) {
        std::vector<double> row = {tp.t_sec - to_seconds(t0), tp.offered_rps / 1000.0,
                                   tp.lc_p99_ms, tp.lc_fmem_share};
        for (int b = 0; b < 4; ++b)
          row.push_back(b < static_cast<int>(tp.be_fmem_share.size()) ? tp.be_fmem_share[b]
                                                                      : 0.0);
        series_csv.row({lc.name, policy_name(policy)}, row);
      }
      metrics_csv.row({lc.name, policy_name(policy)},
                      {r.fairness, r.be_total_throughput, r.slo_violation_rate, r.lc_p99_ms});
      std::printf("%-13s %10.2f %8.1f%% %10.3f %13.3e\n", policy_name(policy), r.lc_p99_ms,
                  100.0 * r.slo_violation_rate, r.fairness, r.be_total_throughput);
      if (policy == PolicyKind::kMemtis) {
        memtis_tput = r.be_total_throughput;
        memtis_fair = r.fairness;
      }
      if (policy == PolicyKind::kTpp && memtis_fair > 0) {
        // nothing — ratios printed at the end of the workload block
      }
    }
    (void)memtis_tput;
  }
  std::printf("\nFigure 6 ratios are in fig6_be_metrics.csv; per-interval series for the\n"
              "Figure 5 panels are in fig5_series.csv.\n");
  return 0;
}
