// Figures 5 and 6: the headline dynamic-load experiment. Each of the four LC
// workloads is co-located with the four BE workloads; the offered load
// follows the Figure-7 trapezoid. For every policy the binary reports the
// P99-over-time and per-workload FMem-share series (Figure 5) plus the BE
// fairness (min NP) and total throughput of the same runs (Figure 6).
//
// Expected shapes (paper §5.1): MEMTIS/TPP/SMEM_ALL violate the SLO through
// the high-load phase; both MTAT variants track the load — small reservation
// at low load, nearly the whole FMem at the peak — and keep P99 under the
// SLO; MTAT (Full) posts the best BE fairness, MEMTIS the best raw BE
// throughput, with MTAT's throughput penalty bounded (paper: <=19%).
#include "bench/harness.h"
#include "common/csv.h"

using namespace mtat;
using namespace mtat::bench;

int main() {
  const Scale sc = scale_from_env();
  banner("fig5_fig6_dynamic_load", "Figures 5 and 6");
  experiments::ParallelRunner runner = make_runner();
  CsvWriter series_csv("fig5_series.csv",
                       {"lc", "policy", "t_sec", "offered_krps", "p99_ms", "lc_fmem_share",
                        "be0_share", "be1_share", "be2_share", "be3_share"});
  CsvWriter metrics_csv("fig6_be_metrics.csv",
                        {"lc", "policy", "fairness_min_np", "be_total_throughput",
                         "slo_violation_rate", "lc_p99_ms"});

  for (const LCConfig& lc : scaled_lc_configs(sc)) {
    std::printf("\n===== LC workload: %s =====\n", lc.name.c_str());
    const double peak = fmem_all_peak_krps(sc, lc, &runner);
    std::printf("pattern peak = FMEM_ALL measured max = %.2f KRPS\n", peak);

    // The six policies are independent runs over the same pattern — fan them
    // across the runner, then report in the paper's policy order.
    const std::vector<PolicyKind> policies = all_policies();
    struct Outcome {
      SimResult r;
      SimTime t0 = 0;
    };
    std::vector<Outcome> outcomes(policies.size());
    std::vector<experiments::RunSpec> specs;
    specs.reserve(policies.size());
    for (std::size_t i = 0; i < policies.size(); ++i) {
      specs.push_back({std::string(lc.name) + "/" + policy_name(policies[i]),
                       [&sc, &lc, peak, &policies, &outcomes, i](obs::RunContext& ctx) {
                         SimConfig cfg = make_sim_config(sc, lc, policies[i]);
                         ColocationSim sim(cfg, &ctx);
                         train_if_mtat(sim, sc.train_epochs, peak);
                         const LoadPattern pattern = LoadPattern::figure7(peak * 1000.0);
                         outcomes[i].t0 = sim.now();
                         sim.run(pattern, pattern.total_length());
                         outcomes[i].r = sim.result();
                       }});
    }
    runner.run_all(specs);

    std::printf("%-13s %10s %9s %10s %13s\n", "policy", "P99(ms)", "viol%", "fairness",
                "BE tput");
    for (std::size_t i = 0; i < policies.size(); ++i) {
      const PolicyKind policy = policies[i];
      const SimResult& r = outcomes[i].r;
      for (const auto& tp : r.series) {
        std::vector<double> row = {tp.t_sec - to_seconds(outcomes[i].t0),
                                   tp.offered_rps / 1000.0, tp.lc_p99_ms, tp.lc_fmem_share};
        for (int b = 0; b < 4; ++b)
          row.push_back(b < static_cast<int>(tp.be_fmem_share.size()) ? tp.be_fmem_share[b]
                                                                      : 0.0);
        series_csv.row({lc.name, policy_name(policy)}, row);
      }
      metrics_csv.row({lc.name, policy_name(policy)},
                      {r.fairness, r.be_total_throughput, r.slo_violation_rate, r.lc_p99_ms});
      std::printf("%-13s %10.2f %8.1f%% %10.3f %13.3e\n", policy_name(policy), r.lc_p99_ms,
                  100.0 * r.slo_violation_rate, r.fairness, r.be_total_throughput);
    }
  }
  std::printf("\nFigure 6 ratios are in fig6_be_metrics.csv; per-interval series for the\n"
              "Figure 5 panels are in fig5_series.csv.\n");
  return 0;
}
