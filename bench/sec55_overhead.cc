// §5.5: MTAT framework overhead, measured during the Redis overall-performance
// run — PP-M's decision cost (RL inference + SA search, reported per
// partitioning interval and as a fraction of one core at the paper's 60 s
// real-time interval) and PP-E's migration bandwidth consumption.
//
// Paper: PP-M + sampling below 7% of one core; PP-E averages ~4 GB/s of
// migration traffic against a 25.6 GB/s channel.
#include "bench/harness.h"
#include "common/csv.h"

using namespace mtat;
using namespace mtat::bench;

int main() {
  const Scale sc = scale_from_env();
  banner("sec55_overhead", "Section 5.5");
  experiments::ParallelRunner runner = make_runner();
  const LCConfig redis = scaled_lc_config(redis_config(), sc);
  const double peak = fmem_all_peak_krps(sc, redis, &runner);
  SimConfig cfg = make_sim_config(sc, redis, PolicyKind::kMtatFull);

  // The overhead numbers come from one sim, so only the peak bisection above
  // parallelizes; the measured run itself is a single spec.
  SimResult r;
  runner.run_all({{"sec55_overhead", [&sc, &cfg, peak, &r](obs::RunContext& ctx) {
                     ColocationSim sim(cfg, &ctx);
                     train_if_mtat(sim, sc.train_epochs, peak);
                     const LoadPattern pattern = LoadPattern::figure7(peak * 1000.0);
                     sim.run(pattern, pattern.total_length());
                     r = sim.result();
                   }}});

  // Our partitioning interval is time-compressed x60 (DESIGN.md §5): one
  // decision per simulated second stands for one per real minute, so the
  // CPU fraction at paper cadence is wall-us-per-decision / 60 s.
  const double ppm_core_fraction = r.policy_wall_us_per_interval / 60e6;
  const double mig_gbps = r.migration_bytes_per_sec / (1024.0 * 1024.0 * 1024.0);
  const double mig_cap_gbps = cfg.migration_bandwidth / (1024.0 * 1024.0 * 1024.0);

  CsvWriter csv("sec55_overhead.csv",
                {"ppm_us_per_interval", "ppm_core_pct_at_60s_interval",
                 "ppe_migration_gbps", "migration_cap_gbps", "pages_moved_per_sec"});
  csv.row({r.policy_wall_us_per_interval, 100.0 * ppm_core_fraction, mig_gbps, mig_cap_gbps,
           r.migration_bytes_per_sec / static_cast<double>(kPageSize)});

  std::printf("PP-M decision cost:    %8.0f us per partitioning interval\n",
              r.policy_wall_us_per_interval);
  std::printf("  at paper cadence:    %8.4f %% of one core  (paper: < 7%%)\n",
              100.0 * ppm_core_fraction);
  std::printf("PP-E migration:        %8.3f GB/s of %.1f GB/s budget  (paper: ~4 GB/s of "
              "25.6 GB/s)\n",
              mig_gbps, mig_cap_gbps);
  std::printf("LC P99 over the run:   %8.2f ms  (violations %.1f%%)\n", r.lc_p99_ms,
              100.0 * r.slo_violation_rate);
  return 0;
}
