// Extensions beyond the paper's evaluation (Discussion §7 + related work):
//
//  1. vTMM-like per-tenant hot-set-proportional allocation (Sha et al.,
//     EuroSys'23) added to the comparison — still frequency-driven, so the
//     bursty LC tenant should measure a small hot set and miss its SLO under
//     load, despite being partitioned.
//
//  2. The tier-bandwidth contention model with MTAT's bandwidth-aware PP-E
//     backoff: when FMem bandwidth saturates, refinement stops intensifying
//     the fast tier. Compared against plain MTAT on a bandwidth-constrained
//     platform.
#include "bench/harness.h"
#include "common/csv.h"

using namespace mtat;
using namespace mtat::bench;

int main() {
  const Scale sc = scale_from_env();
  banner("ext_bandwidth_baselines", "extensions (paper §7 / related work)");
  const LCConfig redis = scaled_lc_config(redis_config(), sc);
  const double peak = fmem_all_peak_krps(sc, redis);
  CsvWriter csv("ext_bandwidth_baselines.csv",
                {"experiment", "config", "p99_ms", "viol_pct", "fairness", "be_tput"});

  // --- Extension 1: related-work baselines on the dynamic-load experiment ---
  // vTMM-like (hot-set-proportional partitions), DAMON/Telescope-like
  // (region-granular), MEMTIS-HP (page-size determination) vs MTAT/MEMTIS.
  std::printf("[1] extended baseline set (Figure-5 conditions)\n");
  std::printf("%-13s %10s %9s %10s %13s\n", "policy", "P99(ms)", "viol%", "fairness",
              "BE tput");
  for (PolicyKind policy : {PolicyKind::kMtatFull, PolicyKind::kVtmm, PolicyKind::kDamon,
                            PolicyKind::kMemtisHp, PolicyKind::kMemtis}) {
    SimConfig cfg = make_sim_config(sc, redis, policy);
    ColocationSim sim(cfg);
    train_if_mtat(sim, sc.train_epochs, peak);
    const LoadPattern pattern = LoadPattern::figure7(peak * 1000.0);
    sim.run(pattern, pattern.total_length());
    const SimResult r = sim.result();
    std::printf("%-13s %10.2f %8.1f%% %10.3f %13.3e\n", policy_name(policy), r.lc_p99_ms,
                100.0 * r.slo_violation_rate, r.fairness, r.be_total_throughput);
    csv.row(std::vector<std::string>{"vtmm_comparison", policy_name(policy)},
            {r.lc_p99_ms, 100.0 * r.slo_violation_rate, r.fairness, r.be_total_throughput});
  }

  // --- Extension 2: bandwidth-aware PP-E under FMem bandwidth pressure ------
  std::printf("\n[2] bandwidth-aware PP-E backoff on a constrained platform\n");
  std::printf("%-22s %10s %9s %13s %9s\n", "config", "P99(ms)", "viol%", "BE tput",
              "fmem x");
  for (bool aware : {false, true}) {
    SimConfig cfg = make_sim_config(sc, redis, PolicyKind::kMtatFull);
    cfg.bandwidth.enabled = true;
    // Size FMem bandwidth so the BE fleet can saturate it when fully resident.
    cfg.bandwidth.fmem_accesses_per_sec = 120e6;
    cfg.bandwidth.smem_accesses_per_sec = 80e6;
    if (aware) cfg.mtat.ppe.bandwidth_backoff_factor = 1.3;
    ColocationSim sim(cfg);
    train_if_mtat(sim, sc.train_epochs, peak);
    const LoadPattern pattern = LoadPattern::figure7(peak * 1000.0);
    sim.run(pattern, pattern.total_length());
    const SimResult r = sim.result();
    const char* label = aware ? "mtat+bw_backoff" : "mtat (bw-blind)";
    std::printf("%-22s %10.2f %8.1f%% %13.3e %9.2f\n", label, r.lc_p99_ms,
                100.0 * r.slo_violation_rate, r.be_total_throughput,
                sim.mem().contention_factor(Tier::kFMem));
    csv.row(std::vector<std::string>{"bandwidth_backoff", label},
            {r.lc_p99_ms, 100.0 * r.slo_violation_rate, r.fairness, r.be_total_throughput});
  }
  std::printf("\nexpected: vTMM partitions per tenant but still sizes the LC partition\n"
              "by measured hotness, so it violates under surges like MEMTIS; the\n"
              "bandwidth backoff trades a little placement optimality for lower\n"
              "latency inflation when FMem bandwidth is the bottleneck.\n");
  return 0;
}
