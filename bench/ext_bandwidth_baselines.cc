// Extensions beyond the paper's evaluation (Discussion §7 + related work):
//
//  1. vTMM-like per-tenant hot-set-proportional allocation (Sha et al.,
//     EuroSys'23) added to the comparison — still frequency-driven, so the
//     bursty LC tenant should measure a small hot set and miss its SLO under
//     load, despite being partitioned.
//
//  2. The tier-bandwidth contention model with MTAT's bandwidth-aware PP-E
//     backoff: when FMem bandwidth saturates, refinement stops intensifying
//     the fast tier. Compared against plain MTAT on a bandwidth-constrained
//     platform.
#include "bench/harness.h"
#include "common/csv.h"

using namespace mtat;
using namespace mtat::bench;

int main() {
  const Scale sc = scale_from_env();
  banner("ext_bandwidth_baselines", "extensions (paper §7 / related work)");
  experiments::ParallelRunner runner = make_runner();
  const LCConfig redis = scaled_lc_config(redis_config(), sc);
  const double peak = fmem_all_peak_krps(sc, redis, &runner);
  CsvWriter csv("ext_bandwidth_baselines.csv",
                {"experiment", "config", "p99_ms", "viol_pct", "fairness", "be_tput"});

  // --- Extension 1: related-work baselines on the dynamic-load experiment ---
  // vTMM-like (hot-set-proportional partitions), DAMON/Telescope-like
  // (region-granular), MEMTIS-HP (page-size determination) vs MTAT/MEMTIS.
  // Independent runs — one spec per policy.
  const std::vector<PolicyKind> policies = {PolicyKind::kMtatFull, PolicyKind::kVtmm,
                                            PolicyKind::kDamon, PolicyKind::kMemtisHp,
                                            PolicyKind::kMemtis};
  std::vector<SimResult> ext1(policies.size());
  {
    std::vector<experiments::RunSpec> specs;
    for (std::size_t i = 0; i < policies.size(); ++i)
      specs.push_back({policy_name(policies[i]),
                       [&sc, &redis, peak, &policies, &ext1, i](obs::RunContext& ctx) {
                         SimConfig cfg = make_sim_config(sc, redis, policies[i]);
                         ColocationSim sim(cfg, &ctx);
                         train_if_mtat(sim, sc.train_epochs, peak);
                         const LoadPattern pattern = LoadPattern::figure7(peak * 1000.0);
                         sim.run(pattern, pattern.total_length());
                         ext1[i] = sim.result();
                       }});
    runner.run_all(specs);
  }
  std::printf("[1] extended baseline set (Figure-5 conditions)\n");
  std::printf("%-13s %10s %9s %10s %13s\n", "policy", "P99(ms)", "viol%", "fairness",
              "BE tput");
  for (std::size_t i = 0; i < policies.size(); ++i) {
    const SimResult& r = ext1[i];
    std::printf("%-13s %10.2f %8.1f%% %10.3f %13.3e\n", policy_name(policies[i]),
                r.lc_p99_ms, 100.0 * r.slo_violation_rate, r.fairness,
                r.be_total_throughput);
    csv.row(std::vector<std::string>{"vtmm_comparison", policy_name(policies[i])},
            {r.lc_p99_ms, 100.0 * r.slo_violation_rate, r.fairness, r.be_total_throughput});
  }

  // --- Extension 2: bandwidth-aware PP-E under FMem bandwidth pressure ------
  struct BwOutcome {
    SimResult r;
    double fmem_factor = 1.0;
  };
  BwOutcome ext2[2];
  {
    std::vector<experiments::RunSpec> specs;
    for (int a = 0; a < 2; ++a)
      specs.push_back({a != 0 ? "mtat+bw_backoff" : "mtat_bw_blind",
                       [&sc, &redis, peak, &ext2, a](obs::RunContext& ctx) {
                         SimConfig cfg = make_sim_config(sc, redis, PolicyKind::kMtatFull);
                         cfg.bandwidth.enabled = true;
                         // Size FMem bandwidth so the BE fleet can saturate
                         // it when fully resident.
                         cfg.bandwidth.fmem_accesses_per_sec = 120e6;
                         cfg.bandwidth.smem_accesses_per_sec = 80e6;
                         if (a != 0) cfg.mtat.ppe.bandwidth_backoff_factor = 1.3;
                         ColocationSim sim(cfg, &ctx);
                         train_if_mtat(sim, sc.train_epochs, peak);
                         const LoadPattern pattern = LoadPattern::figure7(peak * 1000.0);
                         sim.run(pattern, pattern.total_length());
                         ext2[a].r = sim.result();
                         ext2[a].fmem_factor = sim.mem().contention_factor(kFastestTier);
                       }});
    runner.run_all(specs);
  }
  std::printf("\n[2] bandwidth-aware PP-E backoff on a constrained platform\n");
  std::printf("%-22s %10s %9s %13s %9s\n", "config", "P99(ms)", "viol%", "BE tput",
              "fmem x");
  for (int a = 0; a < 2; ++a) {
    const SimResult& r = ext2[a].r;
    const char* label = a != 0 ? "mtat+bw_backoff" : "mtat (bw-blind)";
    std::printf("%-22s %10.2f %8.1f%% %13.3e %9.2f\n", label, r.lc_p99_ms,
                100.0 * r.slo_violation_rate, r.be_total_throughput, ext2[a].fmem_factor);
    csv.row(std::vector<std::string>{"bandwidth_backoff", label},
            {r.lc_p99_ms, 100.0 * r.slo_violation_rate, r.fairness, r.be_total_throughput});
  }
  std::printf("\nexpected: vTMM partitions per tenant but still sizes the LC partition\n"
              "by measured hotness, so it violates under surges like MEMTIS; the\n"
              "bandwidth backoff trades a little placement optimality for lower\n"
              "latency inflation when FMem bandwidth is the bottleneck.\n");
  return 0;
}
