// Google-benchmark microbenchmarks of the substrates: the per-operation costs
// behind the simulation's performance envelope (histogram ops, placement
// primitives, telemetry, storage engines, kernels, RL, SA, queueing).
#include <benchmark/benchmark.h>

#include "common/alias_sampler.h"
#include "common/latency_histogram.h"
#include "common/rng.h"
#include "core/sa_partitioner.h"
#include "loadgen/queue_sim.h"
#include "mem/migration_engine.h"
#include "rl/sac.h"
#include "telemetry/page_hotness.h"
#include "workloads/graph/graph_layout.h"
#include "workloads/graph/kernels.h"
#include "workloads/kv/btree_store.h"
#include "workloads/kv/hash_store.h"
#include "workloads/xsbench/xsbench.h"

namespace mtat {
namespace {

void BM_LatencyHistogramRecord(benchmark::State& state) {
  LatencyHistogram h;
  Rng rng(1);
  for (auto _ : state) h.record(rng.next_u64() >> 20);
}
BENCHMARK(BM_LatencyHistogramRecord);

void BM_LatencyHistogramP99(benchmark::State& state) {
  LatencyHistogram h;
  Rng rng(2);
  for (int i = 0; i < 100000; ++i) h.record(rng.next_u64() >> 20);
  for (auto _ : state) benchmark::DoNotOptimize(h.percentile(99.0));
}
BENCHMARK(BM_LatencyHistogramP99);

void BM_AliasSamplerDraw(benchmark::State& state) {
  Rng rng(3);
  std::vector<double> w(1 << 16);
  for (auto& v : w) v = rng.next_double();
  AliasSampler s(w);
  for (auto _ : state) benchmark::DoNotOptimize(s(rng));
}
BENCHMARK(BM_AliasSamplerDraw);

void BM_TieredMemoryMigrate(benchmark::State& state) {
  TieredMemory::Config c =
      TieredMemory::Config::two_tier(1 << 16, 1 << 18);
  TieredMemory mem(c);
  mem.allocate(0, 1 << 17, kFastestFirst);
  Rng rng(4);
  for (auto _ : state) {
    const auto p = static_cast<PageId>(rng.next_below(mem.page_count()));
    mem.migrate(p, rng.next_bool(0.5) ? kFastestTier : kFastestTier + 1);
  }
}
BENCHMARK(BM_TieredMemoryMigrate);

void BM_PageHotnessRecord(benchmark::State& state) {
  TieredMemory::Config c =
      TieredMemory::Config::two_tier(1 << 16, 1 << 18);
  TieredMemory mem(c);
  mem.allocate(0, 1 << 17, kFastestFirst);
  PageHotness h(mem);
  h.seed_allocated_pages();
  Rng rng(5);
  for (auto _ : state)
    h.record_access(0, static_cast<PageId>(rng.next_below(1 << 17)));
}
BENCHMARK(BM_PageHotnessRecord);

void BM_PageHotnessAge(benchmark::State& state) {
  TieredMemory::Config c =
      TieredMemory::Config::two_tier(1 << 16, 1 << 18);
  TieredMemory mem(c);
  mem.allocate(0, 1 << 17, kFastestFirst);
  PageHotness h(mem);
  h.seed_allocated_pages();
  Rng rng(6);
  for (int i = 0; i < 1 << 18; ++i)
    h.record_access(0, static_cast<PageId>(rng.next_below(1 << 17)));
  for (auto _ : state) h.age();
}
BENCHMARK(BM_PageHotnessAge);

void BM_HashStoreGet(benchmark::State& state) {
  TieredMemory::Config c =
      TieredMemory::Config::two_tier(1, 1 << 18);
  TieredMemory mem(c);
  HashStore::Config hc;
  hc.n_records = 100'000;
  AddressSpace space(mem, 0, HashStore::required_bytes(hc), kTierOnly(kFastestTier + 1), 1024);
  HashStore store(space, hc);
  Rng rng(7);
  for (auto _ : state) benchmark::DoNotOptimize(store.get(rng.next_below(hc.n_records)));
}
BENCHMARK(BM_HashStoreGet);

void BM_BTreeStoreGet(benchmark::State& state) {
  TieredMemory::Config c =
      TieredMemory::Config::two_tier(1, 1 << 18);
  TieredMemory mem(c);
  BTreeStore::Config bc;
  bc.n_records = 100'000;
  AddressSpace space(mem, 0, BTreeStore::required_bytes(bc), kTierOnly(kFastestTier + 1), 1024);
  BTreeStore store(space, bc);
  Rng rng(8);
  for (auto _ : state) benchmark::DoNotOptimize(store.get(rng.next_below(bc.n_records)));
}
BENCHMARK(BM_BTreeStoreGet);

void BM_BfsScale12(benchmark::State& state) {
  Rng rng(9);
  const Graph g = make_uniform_graph(1 << 12, 16 << 12, rng);
  TieredMemory::Config c =
      TieredMemory::Config::two_tier(1, 1 << 18);
  TieredMemory mem(c);
  AddressSpace space(mem, 0, GraphLayout::required_bytes(g), kTierOnly(kFastestTier + 1), 1 << 20);
  GraphLayout layout(space, g);
  std::vector<std::uint64_t> dist;
  for (auto _ : state) benchmark::DoNotOptimize(bfs(layout, 0, dist).edges_processed);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(g.num_edges()));
}
BENCHMARK(BM_BfsScale12);

void BM_XsbenchLookup(benchmark::State& state) {
  TieredMemory::Config c =
      TieredMemory::Config::two_tier(1, 1 << 18);
  TieredMemory mem(c);
  XSBenchKernel::Config xc;
  AddressSpace space(mem, 0, XSBenchKernel::required_bytes(xc), kTierOnly(kFastestTier + 1),
                     1 << 20);
  XSBenchKernel kernel(space, xc, 10);
  for (auto _ : state) benchmark::DoNotOptimize(kernel.lookup());
}
BENCHMARK(BM_XsbenchLookup);

void BM_SacInference(benchmark::State& state) {
  SacAgent agent{SacConfig{}};
  const std::vector<double> s = {0.5, 0.5, 0.5};
  for (auto _ : state) benchmark::DoNotOptimize(agent.act(s, true));
}
BENCHMARK(BM_SacInference);

void BM_SacUpdate(benchmark::State& state) {
  SacAgent agent{SacConfig{}};
  Rng rng(11);
  for (int i = 0; i < 256; ++i) {
    const std::vector<double> s = {rng.next_double(), rng.next_double(), rng.next_double()};
    agent.observe(s, {rng.next_double() * 2 - 1}, rng.next_double(), s, false);
  }
  for (auto _ : state) agent.update(1);
}
BENCHMARK(BM_SacUpdate);

void BM_SaPartitionSearch(benchmark::State& state) {
  Rng rng(12);
  std::vector<BEPerfModel> models;
  for (int i = 0; i < 4; ++i) {
    const double slope = 1e-5 * (i + 1);
    models.push_back({[slope](std::uint64_t p) { return 0.4 + slope * static_cast<double>(p); },
                      1 << 16});
  }
  SAOptions opt;
  for (auto _ : state)
    benchmark::DoNotOptimize(anneal_be_partition(models, 1 << 15, opt, rng).objective);
}
BENCHMARK(BM_SaPartitionSearch);

void BM_QueueSimSecond(benchmark::State& state) {
  TieredMemory::Config c =
      TieredMemory::Config::two_tier(1, 1 << 17);
  TieredMemory mem(c);
  LCConfig lc = redis_config();
  lc.n_records = 50'000;
  LCWorkload wl(mem, 0, lc, kTierOnly(kFastestTier + 1), 13);
  QueueSim q(wl, seconds(1), 14);
  const LoadPattern pat = LoadPattern::constant(4000.0);
  q.set_pattern(&pat, 0);
  SimTime t = 0;
  for (auto _ : state) {
    t += seconds(1);
    q.run_until(t);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(q.completed()));
}
BENCHMARK(BM_QueueSimSecond);

}  // namespace
}  // namespace mtat

BENCHMARK_MAIN();
