// Figure 2: Redis co-located with SSSP under MEMTIS-managed tiering. The
// offered load steps through the max throughputs achievable at FMem
// 0/25/50/75/100%; the plot shows (top) the load, (middle) P99 vs the SLO,
// (bottom) the fraction of Redis data resident in FMem.
//
// Expected reproduction of §2.2: SSSP's steady access stream promptly claims
// FMem (Redis residency collapses below 10%), and Redis's P99 blows through
// the SLO as soon as the load passes what its SMem-resident working set can
// serve — even though 25% of FMem would have sufficed.
#include "bench/harness.h"
#include "common/csv.h"

using namespace mtat;
using namespace mtat::bench;

int main() {
  const Scale sc = scale_from_env();
  banner("fig2_memtis_colocation", "Figure 2");
  experiments::ParallelRunner runner = make_runner();
  const LCConfig redis = scaled_lc_config(redis_config(), sc);

  // One sim, one spec: fig2 is a single time series, so the runner buys no
  // parallelism here — routing through it anyway keeps every bench on the
  // same RunContext/trace-merge path.
  SimResult r;
  runner.run_all({{"fig2_memtis_colocation", [&sc, &redis, &r](obs::RunContext& ctx) {
                     SimConfig cfg = make_sim_config(sc, redis, PolicyKind::kMemtis,
                                                     /*n_be=*/1);
                     ColocationSim sim(cfg, &ctx);

                     // Load staircase: the max sustainable throughput at each
                     // FMem level, estimated from the calibrated service-time
                     // interpolation S(f) = f*S_f + (1-f)*S_s, driven
                     // slightly below saturation.
                     const double s_f =
                         static_cast<double>(sim.lc().ideal_service_time(kFastestTier));
                     const double s_s =
                         static_cast<double>(sim.lc().ideal_service_time(kFastestTier + 1));
                     std::vector<double> fractions_of_max;
                     std::printf("load staircase (max tput at FMem level, KRPS):");
                     for (double f : {0.0, 0.25, 0.5, 0.75, 1.0}) {
                       const double sat = redis.threads * 1e9 / (f * s_f + (1.0 - f) * s_s);
                       fractions_of_max.push_back(0.97 * sat /
                                                  (redis.max_load_krps * 1000.0));
                       std::printf(" %.1f", 0.97 * sat / 1000.0);
                     }
                     std::printf("\n\n");
                     const LoadPattern pattern = LoadPattern::staircase(
                         redis.max_load_krps * 1000.0, fractions_of_max, seconds(40));

                     sim.run(pattern, pattern.total_length());
                     r = sim.result();
                   }}});

  CsvWriter csv("fig2_memtis_colocation.csv",
                {"t_sec", "offered_krps", "p99_ms", "redis_fmem_ratio"});
  std::printf("%6s %12s %12s %18s\n", "t(s)", "load(KRPS)", "P99(ms)", "Redis FMem ratio");
  for (std::size_t i = 0; i < r.series.size(); ++i) {
    const auto& tp = r.series[i];
    csv.row({tp.t_sec, tp.offered_rps / 1000.0, tp.lc_p99_ms, tp.lc_fmem_ratio});
    if (i % 5 == 0)
      std::printf("%6.0f %12.2f %12.2f %18.3f\n", tp.t_sec, tp.offered_rps / 1000.0,
                  tp.lc_p99_ms, tp.lc_fmem_ratio);
  }
  std::printf("\nSLO = %.0f ms; overall violation rate %.1f%%; final Redis FMem ratio %.3f\n",
              static_cast<double>(redis.slo) / 1e6, 100.0 * r.slo_violation_rate,
              r.series.back().lc_fmem_ratio);
  return 0;
}
