// The benchmark suite's environment knobs, parsed once.
//
// Every MTAT_* environment variable the bench binaries honour is read here —
// exactly once per process, through common/parse.h's checked parsers — and
// exposed as a plain struct. Malformed values are rejected with a stderr
// warning and the documented default, never silently coerced (bare atoi
// would turn MTAT_EPOCHS=abc into zero training epochs). This file is the
// only place in the tree allowed to call std::getenv (mtat_lint's `getenv`
// rule enforces that); everything else asks bench::Env.
//
// Knobs:
//   MTAT_SCALE        smoke|small|large scale preset (default small; smoke is
//                                      a seconds-long CI preset)
//   MTAT_EPOCHS       non-negative int RL training epochs override
//   MTAT_TRACE        path             write a Chrome trace_event file
//   MTAT_TRACE_EVENTS positive int     trace ring capacity override
//   MTAT_JOBS         non-negative int experiment parallelism; 0 = one job
//                                      per hardware thread (the default)
//   MTAT_NODES        positive int     cluster bench fleet size override
//                                      (default: the scale preset's node count)
//   MTAT_FAULTS       preset[:x]       fault-injection plan for every run in
//                                      the process (e.g. storm, storm:0.5);
//                                      validated against the known presets by
//                                      the harness hook (faults::FaultPlan)
//   MTAT_CLUSTER_FAULTS preset[:x][:warm|:cold] fleet-level fault plan for the
//                                      cluster benches (e.g. storm,
//                                      storm:0.5:cold); validated by
//                                      cluster_faults_from_env() via
//                                      faults::ClusterFaultPlan::from_spec
//   MTAT_PERF_LABEL   non-empty string label for the BENCH_*.json entry a
//                                      perf_* bench appends (default "run")
//   MTAT_TOPOLOGY     spec             tier topology override for the
//                                      co-location benches, fastest first
//                                      (e.g. dram:8G:73;cxl:64G:202;nvm:256G:450);
//                                      validated by the harness via
//                                      mtat::parse_topology
#pragma once

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>

#include "common/parse.h"
#include "obs/trace.h"

namespace mtat::bench {

struct Env {
  std::string scale = "small";        ///< MTAT_SCALE
  std::optional<int> epochs;          ///< MTAT_EPOCHS (unset: preset default)
  std::string trace_path;             ///< MTAT_TRACE (empty: tracing off)
  std::size_t trace_events =
      obs::TraceRecorder::kDefaultCapacity;  ///< MTAT_TRACE_EVENTS
  int jobs = 0;                       ///< MTAT_JOBS; 0 = hardware concurrency
  std::optional<int> nodes;           ///< MTAT_NODES (unset: preset default)
  /// MTAT_FAULTS, verbatim (empty: no faults). Kept as the raw spec so this
  /// header doesn't depend on the faults library; bench/harness.h's
  /// FaultsEnvHook parses it via faults::FaultPlan::from_spec and warns on
  /// anything malformed.
  std::string faults;
  /// MTAT_CLUSTER_FAULTS, verbatim (empty: healthy fleet). Raw for the same
  /// reason as `faults`; bench/cluster_env.h's cluster_faults_from_env()
  /// parses it via faults::ClusterFaultPlan::from_spec and warns on anything
  /// malformed.
  std::string cluster_faults;
  std::string perf_label = "run";     ///< MTAT_PERF_LABEL
  /// MTAT_TOPOLOGY, verbatim (empty: benches keep their two-tier default).
  /// Raw for the same reason as `faults`: parsing lives with mem/topology.h's
  /// parse_topology, and bench/harness.h's topology_from_env() warns and
  /// falls back on anything malformed.
  std::string topology;

  /// The process's parsed environment (parsed on first use, then cached).
  static const Env& get();
};

namespace internal {

inline std::optional<std::string> env_string(const char* name) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return std::nullopt;
  return std::string(v);
}

inline Env parse_env() {
  Env e;
  if (const auto s = env_string("MTAT_SCALE")) {
    if (*s == "smoke" || *s == "small" || *s == "large") {
      e.scale = *s;
    } else {
      std::fprintf(stderr,
                   "warning: invalid MTAT_SCALE=%s (expected smoke|small|large); "
                   "using small\n",
                   s->c_str());
    }
  }
  if (const auto s = env_string("MTAT_EPOCHS")) {
    const auto v = parse_int(*s);
    if (v && *v >= 0 && *v <= 1'000'000) {
      e.epochs = *v;
    } else {
      std::fprintf(stderr,
                   "warning: invalid MTAT_EPOCHS=%s (expected a non-negative integer); "
                   "using the preset default\n",
                   s->c_str());
    }
  }
  if (const auto s = env_string("MTAT_TRACE")) e.trace_path = *s;
  if (const auto s = env_string("MTAT_TRACE_EVENTS")) {
    const auto v = parse_u64(*s);
    if (v && *v > 0) {
      e.trace_events = static_cast<std::size_t>(*v);
    } else {
      std::fprintf(stderr,
                   "warning: invalid MTAT_TRACE_EVENTS=%s (expected a positive integer); "
                   "using default %zu\n",
                   s->c_str(), e.trace_events);
    }
  }
  if (const auto s = env_string("MTAT_FAULTS")) e.faults = *s;
  if (const auto s = env_string("MTAT_CLUSTER_FAULTS")) e.cluster_faults = *s;
  if (const auto s = env_string("MTAT_PERF_LABEL")) e.perf_label = *s;
  if (const auto s = env_string("MTAT_TOPOLOGY")) e.topology = *s;
  if (const auto s = env_string("MTAT_NODES")) {
    const auto v = parse_int(*s);
    if (v && *v > 0 && *v <= 100'000) {
      e.nodes = *v;
    } else {
      std::fprintf(stderr,
                   "warning: invalid MTAT_NODES=%s (expected a positive integer); "
                   "using the preset default\n",
                   s->c_str());
    }
  }
  if (const auto s = env_string("MTAT_JOBS")) {
    const auto v = parse_int(*s);
    if (v && *v >= 0 && *v <= 4096) {
      e.jobs = *v;
    } else {
      std::fprintf(stderr,
                   "warning: invalid MTAT_JOBS=%s (expected a non-negative integer); "
                   "using hardware concurrency\n",
                   s->c_str());
    }
  }
  return e;
}

}  // namespace internal

inline const Env& Env::get() {
  static const Env parsed = internal::parse_env();
  return parsed;
}

}  // namespace mtat::bench
