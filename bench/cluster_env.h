// Fleet-scale presets for the cluster benches (ext_cluster_slo, perf_cluster).
//
// Layers cluster geometry on top of the node-level Scale preset: how many
// simulated nodes, and how long the settle/probe/measure windows run. Sized
// so MTAT_SCALE=smoke still fields a hundreds-of-nodes fleet in CI-grade
// wall time (short windows, two BE tenants per node) while small/large grow
// the fleet and the windows together. MTAT_NODES overrides the node count at
// any scale (see bench/env.h).
#pragma once

#include "bench/harness.h"
#include "cluster/cluster_sim.h"

namespace mtat::bench {

/// Parse MTAT_CLUSTER_FAULTS into a fleet-level fault plan. Empty env means
/// a healthy fleet (nullopt); a malformed spec warns on stderr and also
/// returns nullopt — the bench then runs healthy rather than under a plan
/// the user didn't ask for.
inline std::optional<faults::ClusterFaultPlan> cluster_faults_from_env() {
  const std::string& spec = Env::get().cluster_faults;
  if (spec.empty()) return std::nullopt;
  auto plan = faults::ClusterFaultPlan::from_spec(spec);
  if (!plan.has_value())
    std::fprintf(stderr,
                 "warning: invalid MTAT_CLUSTER_FAULTS=%s (expected "
                 "storm[:intensity][:warm|:cold]); running healthy\n",
                 spec.c_str());
  return plan;
}

/// Cluster geometry for the scale preset in effect, with `lc` (already
/// scaled) as every node's LC tenant and `node_capacity_krps` as the static
/// serving-capacity estimate handed to the placement policies. The node
/// template runs a lightweight baseline tiering policy by default — the
/// cluster benches compare *placement* policies across a uniform fleet, not
/// node-level tiering, and an RL-policy fleet would need per-node training.
inline cluster::ClusterConfig make_cluster_config(const Scale& sc, const LCConfig& lc,
                                                  double node_capacity_krps,
                                                  PolicyKind node_policy = PolicyKind::kMemtis) {
  cluster::ClusterConfig cc;
  const std::string preset = scale_preset_from_env();
  if (preset == "smoke") {
    cc.nodes = 120;
    cc.settle = seconds(1);
    cc.probe_window = seconds(2);
    cc.measure_window = seconds(3);
  } else if (preset == "large") {
    cc.nodes = 400;
    cc.settle = seconds(2);
    cc.probe_window = seconds(5);
    cc.measure_window = seconds(10);
  } else {
    cc.nodes = 200;
    cc.settle = seconds(2);
    cc.probe_window = seconds(3);
    cc.measure_window = seconds(5);
  }
  if (const auto n = Env::get().nodes) cc.nodes = *n;
  cc.node = make_sim_config(sc, lc, node_policy, /*n_be=*/2);
  cc.node_capacity_krps = node_capacity_krps;
  cc.faults = cluster_faults_from_env();
  return cc;
}

}  // namespace mtat::bench
