// Extension: skewed LC request distributions (the paper drives its LC
// workloads with uniform requests; production KV traffic is zipfian).
//
// Under zipf, the LC workload has a genuinely hot core, which changes the
// game for every policy: frequency-based tiering can finally *see* part of
// the LC working set, and MTAT's PP-E refinement keeps the LC partition's
// hottest records resident so a smaller reservation satisfies the SLO.
#include "bench/harness.h"
#include "common/csv.h"

using namespace mtat;
using namespace mtat::bench;

int main() {
  const Scale sc = scale_from_env();
  banner("ext_zipf_lc", "extension (skewed LC requests; paper §5 uses uniform)");
  experiments::ParallelRunner runner = make_runner();
  CsvWriter csv("ext_zipf_lc.csv",
                {"dist", "policy", "p99_ms", "viol_pct", "mean_lc_share", "be_tput"});
  const std::vector<PolicyKind> policies = {PolicyKind::kMtatFull, PolicyKind::kMemtis,
                                            PolicyKind::kTpp};
  for (bool zipf : {false, true}) {
    LCConfig lc = scaled_lc_config(redis_config(), sc);
    if (zipf) lc.dist = RequestDist::kZipfian;
    const double peak = 0.9 * fmem_all_peak_krps(sc, lc, &runner);
    std::printf("\n--- %s requests (pattern peak = 0.9x FMEM_ALL max = %.2f KRPS) ---\n",
                zipf ? "zipfian(0.99)" : "uniform", peak);

    struct Outcome {
      SimResult r;
      double mean_share = 0;
    };
    std::vector<Outcome> outcomes(policies.size());
    std::vector<experiments::RunSpec> specs;
    for (std::size_t i = 0; i < policies.size(); ++i)
      specs.push_back({policy_name(policies[i]),
                       [&sc, &lc, peak, &policies, &outcomes, i](obs::RunContext& ctx) {
                         SimConfig cfg = make_sim_config(sc, lc, policies[i]);
                         ColocationSim sim(cfg, &ctx);
                         train_if_mtat(sim, sc.train_epochs, peak);
                         const LoadPattern pattern = LoadPattern::figure7(peak * 1000.0);
                         sim.run(pattern, pattern.total_length());
                         Outcome& o = outcomes[i];
                         o.r = sim.result();
                         for (const auto& tp : o.r.series) o.mean_share += tp.lc_fmem_share;
                         o.mean_share /= static_cast<double>(o.r.series.size());
                       }});
    runner.run_all(specs);

    std::printf("%-13s %10s %9s %14s %13s\n", "policy", "P99(ms)", "viol%", "mean LC share",
                "BE tput");
    for (std::size_t i = 0; i < policies.size(); ++i) {
      const Outcome& o = outcomes[i];
      std::printf("%-13s %10.2f %8.1f%% %14.3f %13.3e\n", policy_name(policies[i]),
                  o.r.lc_p99_ms, 100.0 * o.r.slo_violation_rate, o.mean_share,
                  o.r.be_total_throughput);
      csv.row(std::vector<std::string>{zipf ? "zipf" : "uniform", policy_name(policies[i])},
              {o.r.lc_p99_ms, 100.0 * o.r.slo_violation_rate, o.mean_share,
               o.r.be_total_throughput});
    }
  }
  std::printf(
      "\nnotes: the pattern peaks at 0.9x of FMEM_ALL's max. At 1.0x the zipf case\n"
      "exposes a real telemetry limit of the compressed-time setup: FMEM_ALL's\n"
      "address-ordered placement keeps the zipf tail (~0.5%% of traffic) in SMem\n"
      "for free, while sampled hotness cannot resolve warm-vs-tail pages inside\n"
      "one compressed aging window, so MTAT's composition gives up a few percent\n"
      "of capacity — enough to ride the knee when driven exactly at FMEM_ALL's\n"
      "edge. The frequency-based baselines violate massively either way.\n");
  return 0;
}
