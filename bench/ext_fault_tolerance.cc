// Extension: fault-tolerance sweep (DESIGN.md §12, beyond the paper's
// evaluation). Drives the standard Redis co-location at a fixed mid load
// while a seed-deterministic fault storm (faults::FaultPlan::storm) batters
// the platform: telemetry sample loss and total blackouts, migration aborts
// up to 100%-failure bursts, migration-bandwidth collapses, SMem latency
// spikes, and corrupted RL actions. Sweeps storm intensity x policy and
// reports LC tail latency, SLO compliance, and the fault/recovery counters.
//
// Expected shape: at intensity 0 every policy matches its ext-free numbers
// bit for bit (no injector, no watchdog). As intensity rises, MTAT's
// degradation ladder (RL -> waterline heuristic -> static safe placement)
// keeps it running — mode transitions appear, violations rise gracefully —
// while the baselines have no fallback and eat the storm as raw latency.
//
// A second leg repeats a bounded grid on a three-tier DRAM/CXL/NVM topology,
// so the storm's migration aborts and rollbacks exercise the multi-link
// cascade paths (per-link counters, partial-chain rollback), not just the
// single FMem<->SMem link. Skipped when MTAT_TOPOLOGY overrides the tier
// vector — the env then owns the topology for the whole grid.
#include "bench/harness.h"
#include "common/csv.h"
#include "obs/names.h"

using namespace mtat;
using namespace mtat::bench;

namespace {

double counter_value(const obs::RunContext& ctx, const char* name) {
  const obs::Counter* c = ctx.metrics().find_counter(name);
  return c != nullptr ? c->value() : 0.0;
}

constexpr double kGiB = 1024.0 * 1024 * 1024;

/// The same DRAM/CXL/NVM shape as ext_ntier_topologies: DRAM keeps the
/// preset fast tier, CXL a quarter of the slow tier, NVM the rest, with the
/// NVM link at half migration bandwidth (the link most likely to be
/// mid-transfer when an abort burst lands).
std::vector<TierSpec> three_tier(const Scale& sc) {
  return {{"dram", bytes_to_pages(sc.fmem), 73, 4.0 * kGiB},
          {"cxl", bytes_to_pages(sc.smem / 4), 202, 4.0 * kGiB},
          {"nvm", bytes_to_pages(sc.smem), 450, 2.0 * kGiB}};
}

}  // namespace

int main() {
  const Scale sc = scale_from_env();
  banner("ext_fault_tolerance", "extension: fault-injection resilience (DESIGN.md §12)");
  experiments::ParallelRunner runner = make_runner();
  const LCConfig redis = scaled_lc_config(redis_config(), sc);
  const double peak = fmem_all_peak_krps(sc, redis, &runner);
  std::printf("load fixed at 50%% of FMEM_ALL measured max = %.2f KRPS\n", peak);
  CsvWriter csv("ext_fault_tolerance.csv",
                {"policy", "topology", "intensity", "p99_ms", "slo_violation_pct",
                 "migration_failures", "migration_retries", "migration_rollbacks",
                 "samples_dropped", "mode_transitions"});

  const std::vector<double> intensities = {0.0, 0.5, 1.0};
  const std::vector<PolicyKind> policies = {PolicyKind::kMtatFull, PolicyKind::kMemtis,
                                            PolicyKind::kTpp};

  // Every (policy, topology, intensity) cell is independent — own agent, own
  // training, own sim, own fault plan — so the grid fans across the runner;
  // rows are reported in spec order regardless of completion order.
  struct Cell {
    PolicyKind policy = PolicyKind::kMtatFull;
    int topology = 0;  // index into the legs table
    double intensity = 0;
    double p99_ms = 0, viol_pct = 0;
    double failures = 0, retries = 0, rollbacks = 0, dropped = 0, transitions = 0;
  };
  struct Leg {
    const char* label;
    std::vector<TierSpec> tiers;  // empty = the preset (or MTAT_TOPOLOGY)
  };
  const bool env_topology = topology_from_env().has_value();
  std::vector<Leg> legs = {{env_topology ? "env" : "2tier", {}}};
  if (!env_topology) legs.push_back({"3tier_dram_cxl_nvm", three_tier(sc)});
  std::vector<Cell> cells;
  for (PolicyKind policy : policies)
    for (double intensity : intensities) {
      Cell cell;
      cell.policy = policy;
      cell.intensity = intensity;
      cells.push_back(cell);
    }
  // The multi-link leg is a bounded grid: storm endpoints only. What it
  // checks is that abort/rollback recovery survives the tier cascade, not
  // the full intensity response curve the two-tier leg already charts.
  if (legs.size() > 1)
    for (PolicyKind policy : policies)
      for (double intensity : {0.0, 1.0}) {
        Cell cell;
        cell.policy = policy;
        cell.topology = 1;
        cell.intensity = intensity;
        cells.push_back(cell);
      }

  std::vector<experiments::RunSpec> specs;
  specs.reserve(cells.size());
  for (Cell& cell : cells) {
    specs.push_back({std::string(policy_name(cell.policy)) + "@" + legs[cell.topology].label +
                         ":storm:" + std::to_string(cell.intensity).substr(0, 3),
                     [&sc, &redis, peak, &legs, &cell](obs::RunContext& ctx) {
                       // The injector must exist before any component caches
                       // its run context; intensity 0 installs none at all so
                       // the clean column keeps the exact no-faults codepath
                       // (DESIGN.md §12: presence of an injector is what arms
                       // the watchdog).
                       if (cell.intensity > 0)
                         ctx.install_faults(faults::FaultPlan::storm(cell.intensity));
                       SimConfig cfg = make_sim_config(sc, redis, cell.policy);
                       if (!legs[cell.topology].tiers.empty())
                         cfg.tiers = legs[cell.topology].tiers;
                       std::unique_ptr<SacAgent> agent;
                       if (is_mtat(cell.policy)) {
                         agent = std::make_unique<SacAgent>(SacConfig{});
                         cfg.shared_agent = agent.get();
                       }
                       ColocationSim sim(cfg, &ctx);
                       train_if_mtat(sim, sc.train_epochs, peak);
                       const LoadPattern pattern = LoadPattern::constant(0.5 * peak * 1000.0);
                       sim.run(pattern, seconds(10), /*measure=*/false);  // settle
                       sim.reset_stats();
                       sim.run(pattern, sc.measure_window);
                       const SimResult r = sim.result();
                       cell.p99_ms = r.lc_p99_ms;
                       cell.viol_pct = 100.0 * r.slo_violation_rate;
                       cell.failures = counter_value(ctx, obs::names::kFaultMigrationFailures);
                       cell.retries = counter_value(ctx, obs::names::kMigrationRetries);
                       cell.rollbacks = counter_value(ctx, obs::names::kFaultMigrationRollbacks);
                       cell.dropped = counter_value(ctx, obs::names::kFaultSamplesDropped);
                       cell.transitions = counter_value(ctx, obs::names::kMtatModeTransitions);
                     }});
  }
  runner.run_all(specs);

  std::printf("%-13s %-18s %9s %9s %7s %9s %8s %9s %9s %11s\n", "policy", "topology",
              "intensity", "p99_ms", "viol%", "mig_fail", "retries", "rollbacks", "dropped",
              "transitions");
  for (const Cell& cell : cells) {
    csv.row(std::vector<std::string>{policy_name(cell.policy), legs[cell.topology].label},
            {cell.intensity, cell.p99_ms, cell.viol_pct, cell.failures, cell.retries,
             cell.rollbacks, cell.dropped, cell.transitions});
    std::printf("%-13s %-18s %9.2f %9.3f %6.1f%% %9.0f %8.0f %9.0f %9.0f %11.0f\n",
                policy_name(cell.policy), legs[cell.topology].label, cell.intensity,
                cell.p99_ms, cell.viol_pct, cell.failures, cell.retries, cell.rollbacks,
                cell.dropped, cell.transitions);
  }
  std::printf(
      "\nexpected: intensity 0 matches the fault-free suite; under the storm MTAT degrades "
      "through its ladder (transitions > 0) instead of crashing\n");
  return 0;
}
