// Table 2: BE benchmark characteristics — RSS plus description, extended with
// the extracted profile statistics that drive the simulation (misses per
// iteration, access concentration, standalone throughput sensitivity).
#include "bench/harness.h"
#include "common/csv.h"

using namespace mtat;
using namespace mtat::bench;

int main() {
  const Scale sc = scale_from_env();
  banner("table2_be_characteristics", "Table 2");
  CsvWriter csv("table2_be_characteristics.csv",
                {"workload", "rss_gib", "acc_per_iter", "mlp", "hot10pct_mass",
                 "np_at_zero_fmem"});
  std::printf("%-9s %9s %12s %5s %13s %12s  %s\n", "workload", "RSS(GiB)", "acc/iter", "mlp",
              "hot10%mass", "NP@0 FMem", "description");
  TieredMemory::Config mc =
      TieredMemory::Config::two_tier(bytes_to_pages(sc.fmem), bytes_to_pages(sc.smem));
  TieredMemory mem(mc);
  WorkloadId id = 0;
  for (const BEConfig& cfg : be_suite(sc.be_scale, sc.be_rss, 4, 4)) {
    BEWorkload be(mem, id++, cfg, kTierOnly(kFastestTier + 1), nullptr, 1);
    const double rss_gib = static_cast<double>(cfg.rss) / (1024.0 * 1024.0 * 1024.0);
    // Concentration: share of accesses captured by the hottest 10% of pages.
    const auto prefix = cfg.profile.best_placement_prefix();
    const double hot10 = prefix[prefix.size() / 10];
    const double np0 = be.rate_at_pages(0) / be.perf_full();
    std::printf("%-9s %9.3f %12.2f %5.1f %12.1f%% %12.3f  %s\n", cfg.name.c_str(), rss_gib,
                cfg.profile.accesses_per_iteration, cfg.mlp, hot10 * 100.0, np0,
                cfg.description.c_str());
    csv.row(cfg.name, {rss_gib, cfg.profile.accesses_per_iteration, cfg.mlp, hot10, np0});
  }
  std::printf("\npaper RSS (hardware scale): sssp 35.5GB, bfs 35.2GB, pr 36.0GB, "
              "xsbench 31.7GB\n");
  return 0;
}
