// Extension: the RL partitioner's learning curve — SLO violations and mean
// reward on the measured pass as a function of training epochs. Shows the
// division of labor inside PP-M: the SLO guard bounds the damage from epoch
// zero, and the learned policy then takes over the anticipation (violations
// and needless reservation both fall as training proceeds).
#include "bench/harness.h"
#include "common/csv.h"
#include "core/mtat_policy.h"

using namespace mtat;
using namespace mtat::bench;

int main() {
  const Scale sc = scale_from_env();
  banner("ext_rl_learning", "extension (PP-M learning curve; Algorithm 1 in training)");
  const LCConfig redis = scaled_lc_config(redis_config(), sc);
  const double peak = fmem_all_peak_krps(sc, redis);
  CsvWriter csv("ext_rl_learning.csv",
                {"epochs", "viol_pct", "p99_ms", "mean_reward", "mean_lc_share",
                 "be_tput"});
  std::printf("%7s %9s %10s %12s %14s %13s\n", "epochs", "viol%", "P99(ms)", "mean reward",
              "mean LC share", "BE tput");
  for (int epochs : {0, 1, 2, 4, 8}) {
    SimConfig cfg = make_sim_config(sc, redis, PolicyKind::kMtatFull);
    ColocationSim sim(cfg);
    train_if_mtat(sim, epochs, peak);
    const LoadPattern pattern = LoadPattern::figure7(peak * 1000.0);
    sim.run(pattern, pattern.total_length());
    const SimResult r = sim.result();
    auto& mtat = dynamic_cast<MtatPolicy&>(sim.policy());
    const auto& rewards = mtat.ppm().reward_history();
    // Mean reward over the measured pass only (the trailing 240 intervals).
    double mean_reward = 0;
    const std::size_t n = std::min<std::size_t>(rewards.size(), 240);
    for (std::size_t i = rewards.size() - n; i < rewards.size(); ++i)
      mean_reward += rewards[i] / static_cast<double>(n);
    double mean_share = 0;
    for (const auto& tp : r.series) mean_share += tp.lc_fmem_share;
    mean_share /= static_cast<double>(r.series.size());
    std::printf("%7d %8.1f%% %10.2f %12.3f %14.3f %13.3e\n", epochs,
                100.0 * r.slo_violation_rate, r.lc_p99_ms, mean_reward, mean_share,
                r.be_total_throughput);
    csv.row({static_cast<double>(epochs), 100.0 * r.slo_violation_rate, r.lc_p99_ms,
             mean_reward, mean_share, r.be_total_throughput});
  }
  std::printf("\nexpected: epoch 0 leans on the guard (compliant but reactive, larger\n"
              "reservations); training raises mean reward by shedding FMem the SLO\n"
              "doesn't need and pre-positioning for the surges it does.\n");
  return 0;
}
