// Extension: the RL partitioner's learning curve — SLO violations and mean
// reward on the measured pass as a function of training epochs. Shows the
// division of labor inside PP-M: the SLO guard bounds the damage from epoch
// zero, and the learned policy then takes over the anticipation (violations
// and needless reservation both fall as training proceeds).
#include "bench/harness.h"
#include "common/csv.h"
#include "core/mtat_policy.h"

using namespace mtat;
using namespace mtat::bench;

int main() {
  const Scale sc = scale_from_env();
  banner("ext_rl_learning", "extension (PP-M learning curve; Algorithm 1 in training)");
  experiments::ParallelRunner runner = make_runner();
  const LCConfig redis = scaled_lc_config(redis_config(), sc);
  const double peak = fmem_all_peak_krps(sc, redis, &runner);
  CsvWriter csv("ext_rl_learning.csv",
                {"epochs", "viol_pct", "p99_ms", "mean_reward", "mean_lc_share",
                 "be_tput"});

  // Every epoch count is an independent training + measurement run; the
  // derived statistics need the live sim, so they are computed inside the
  // spec and only plain numbers cross back.
  const std::vector<int> epoch_counts = {0, 1, 2, 4, 8};
  struct Outcome {
    SimResult r;
    double mean_reward = 0, mean_share = 0;
  };
  std::vector<Outcome> outcomes(epoch_counts.size());
  std::vector<experiments::RunSpec> specs;
  for (std::size_t i = 0; i < epoch_counts.size(); ++i)
    specs.push_back({"epochs=" + std::to_string(epoch_counts[i]),
                     [&sc, &redis, peak, &epoch_counts, &outcomes, i](obs::RunContext& ctx) {
                       SimConfig cfg = make_sim_config(sc, redis, PolicyKind::kMtatFull);
                       ColocationSim sim(cfg, &ctx);
                       train_if_mtat(sim, epoch_counts[i], peak);
                       const LoadPattern pattern = LoadPattern::figure7(peak * 1000.0);
                       sim.run(pattern, pattern.total_length());
                       Outcome& o = outcomes[i];
                       o.r = sim.result();
                       auto& mtat = dynamic_cast<MtatPolicy&>(sim.policy());
                       const auto& rewards = mtat.ppm().reward_history();
                       // Mean reward over the measured pass only (the
                       // trailing 240 intervals).
                       const std::size_t n = std::min<std::size_t>(rewards.size(), 240);
                       for (std::size_t k = rewards.size() - n; k < rewards.size(); ++k)
                         o.mean_reward += rewards[k] / static_cast<double>(n);
                       for (const auto& tp : o.r.series) o.mean_share += tp.lc_fmem_share;
                       o.mean_share /= static_cast<double>(o.r.series.size());
                     }});
  runner.run_all(specs);

  std::printf("%7s %9s %10s %12s %14s %13s\n", "epochs", "viol%", "P99(ms)", "mean reward",
              "mean LC share", "BE tput");
  for (std::size_t i = 0; i < epoch_counts.size(); ++i) {
    const Outcome& o = outcomes[i];
    std::printf("%7d %8.1f%% %10.2f %12.3f %14.3f %13.3e\n", epoch_counts[i],
                100.0 * o.r.slo_violation_rate, o.r.lc_p99_ms, o.mean_reward, o.mean_share,
                o.r.be_total_throughput);
    csv.row({static_cast<double>(epoch_counts[i]), 100.0 * o.r.slo_violation_rate,
             o.r.lc_p99_ms, o.mean_reward, o.mean_share, o.r.be_total_throughput});
  }
  std::printf("\nexpected: epoch 0 leans on the guard (compliant but reactive, larger\n"
              "reservations); training raises mean reward by shedding FMem the SLO\n"
              "doesn't need and pre-positioning for the surges it does.\n");
  return 0;
}
