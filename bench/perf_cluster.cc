// Microbenchmark: ClusterSim throughput and shard fan-out scaling.
//
// Runs the fleet simulation at a ladder of node counts (quarter, half, full
// fleet for the scale preset; MTAT_NODES overrides the full count) under the
// bin-packing placement and rates the work done — simulated node-seconds and
// node ticks — against host wall time. Reported per point: sim-steps/s,
// simulated node-seconds per wall second, and the speedup over the ladder's
// smallest fleet normalized to fleet size (fan-out efficiency: 1.0 means a
// 4x fleet costs exactly 4x the wall time).
//
// Like perf_core, results APPEND: every run adds one entry (label from
// MTAT_PERF_LABEL) to BENCH_cluster.json in the working directory, with one
// sim-steps/s metric per ladder rung, so the committed file is a
// same-machine trajectory and tools/perf_diff gates adjacent entries
// (DESIGN.md §14). Wall timings use steady_clock and are inherently
// machine-dependent — this bench is for tracking the simulator's own
// performance, not the paper's metrics.
#include <chrono>

#include "bench/cluster_env.h"
#include "bench/perf_trajectory.h"
#include "obs/names.h"

using namespace mtat;
using namespace mtat::bench;

namespace {

struct Point {
  int nodes = 0;
  double wall_s = 0;
  double node_sim_seconds = 0;
  double sim_steps = 0;
};

}  // namespace

int main() {
  const Scale sc = scale_from_env();
  banner("perf_cluster", "microbench: cluster sim-steps/s and shard fan-out scaling");
  experiments::ParallelRunner runner = make_runner();
  const LCConfig redis = scaled_lc_config(redis_config(), sc);
  // Static capacity estimate only — a perf bench has no use for the
  // calibration bisection's extra minutes.
  cluster::ClusterConfig base = make_cluster_config(sc, redis, 0.6 * redis.max_load_krps);
  // Short windows: this measures simulator throughput, not tenant SLOs.
  base.settle = milliseconds(500);
  base.probe_window = seconds(1);
  base.measure_window = seconds(1);

  const auto policy = cluster::make_placement("bin_packing");
  const int full = base.nodes;
  const std::vector<int> ladder = {std::max(1, full / 4), std::max(1, full / 2), full};
  std::vector<Point> points;
  std::printf("%7s %9s %12s %14s %12s\n", "nodes", "wall_s", "sim_steps/s", "sim_s/wall_s",
              "fanout_eff");
  for (int n : ladder) {
    cluster::ClusterConfig cc = base;
    cc.nodes = n;
    cc.tenants = 4 * n;
    cluster::ClusterSim sim(cc);
    const auto t0 = std::chrono::steady_clock::now();
    const cluster::ClusterResult r = sim.run(*policy, &runner);
    const auto t1 = std::chrono::steady_clock::now();
    Point p;
    p.nodes = n;
    p.wall_s = std::chrono::duration<double>(t1 - t0).count();
    p.node_sim_seconds = r.node_sim_seconds;
    p.sim_steps = static_cast<double>(r.sim_steps);
    points.push_back(p);
    const Point& first = points.front();
    // Wall time per node, relative to the smallest fleet: 1.0 = linear.
    const double eff = (first.wall_s / static_cast<double>(first.nodes)) /
                       (p.wall_s / static_cast<double>(p.nodes));
    std::printf("%7d %9.2f %12.0f %14.1f %12.2f\n", n, p.wall_s, p.sim_steps / p.wall_s,
                p.node_sim_seconds / p.wall_s, eff);
  }

  PerfEntry entry;
  entry.label = Env::get().perf_label;
  entry.scale = scale_preset_from_env();
  // One rate per ladder rung, under fixed names so perf_diff can compare
  // adjacent entries metric-by-metric (the key set must match across runs).
  static const char* const kRungNames[] = {
      obs::names::kPerfClusterQuarterStepsPerSec,
      obs::names::kPerfClusterHalfStepsPerSec,
      obs::names::kPerfClusterFullStepsPerSec,
  };
  for (std::size_t i = 0; i < points.size(); ++i)
    entry.metrics.emplace_back(kRungNames[i], points[i].sim_steps / points[i].wall_s);

  return append_perf_trajectory("BENCH_cluster.json", "perf_cluster", std::move(entry))
             ? 0
             : 1;
}
