// Figure 9 + Table 4: Redis co-located with the four BE workloads at constant
// 20/50/80% of max load. Reports BE fairness and throughput with the FMem
// split across all tenants (the stacked-bar data of Figure 9) and the SLO
// violation rates of Table 4.
//
// Expected shape: MTAT variants sustain 0% violations at every level; MEMTIS
// violates at 50% (paper: 11.6%) and catastrophically at 80% (99%); TPP is
// worse still; MTAT (Full) has the best fairness at every level while MEMTIS
// keeps the highest raw BE throughput.
#include "bench/harness.h"
#include "common/csv.h"

using namespace mtat;
using namespace mtat::bench;

int main() {
  const Scale sc = scale_from_env();
  banner("fig9_table4_load_levels", "Figure 9 and Table 4");
  experiments::ParallelRunner runner = make_runner();
  const LCConfig redis = scaled_lc_config(redis_config(), sc);
  const double peak = fmem_all_peak_krps(sc, redis, &runner);
  std::printf("load levels relative to FMEM_ALL measured max = %.2f KRPS\n", peak);
  CsvWriter csv("fig9_table4_load_levels.csv",
                {"policy", "load_pct", "fairness_min_np", "be_total_throughput",
                 "slo_violation_pct", "fmem_lc", "fmem_be0", "fmem_be1", "fmem_be2",
                 "fmem_be3"});

  const std::vector<double> levels = {0.2, 0.5, 0.8};
  const std::vector<PolicyKind> policies = {PolicyKind::kMtatFull, PolicyKind::kMtatLcOnly,
                                            PolicyKind::kMemtis, PolicyKind::kTpp};

  // Every (policy, level) cell is independent — own agent, own training, own
  // sim — so the whole grid fans across the runner; rows are reported in the
  // deterministic spec order below regardless of which worker finishes first.
  struct Cell {
    PolicyKind policy = PolicyKind::kMtatFull;
    double level = 0;
    double fairness = 0, tput = 0, viol_pct = 0, fmem_lc = 0;
    std::vector<double> be_share;
  };
  std::vector<Cell> cells;
  for (PolicyKind policy : policies)
    for (double level : levels) {
      Cell cell;
      cell.policy = policy;
      cell.level = level;
      cells.push_back(cell);
    }

  std::vector<experiments::RunSpec> specs;
  specs.reserve(cells.size());
  for (Cell& cell : cells) {
    specs.push_back({std::string(policy_name(cell.policy)) + "@" +
                         std::to_string(static_cast<int>(cell.level * 100)) + "%",
                     [&sc, &redis, peak, &cell](obs::RunContext& ctx) {
                       SimConfig cfg = make_sim_config(sc, redis, cell.policy);
                       std::unique_ptr<SacAgent> agent;
                       if (is_mtat(cell.policy)) {
                         agent = std::make_unique<SacAgent>(SacConfig{});
                         cfg.shared_agent = agent.get();
                       }
                       ColocationSim sim(cfg, &ctx);
                       train_if_mtat(sim, sc.train_epochs, peak);
                       const LoadPattern pattern =
                           LoadPattern::constant(cell.level * peak * 1000.0);
                       sim.run(pattern, seconds(10), /*measure=*/false);  // settle
                       sim.reset_stats();
                       sim.run(pattern, sc.measure_window);
                       const SimResult r = sim.result();
                       cell.fairness = r.fairness;
                       cell.tput = r.be_total_throughput;
                       cell.viol_pct = 100.0 * r.slo_violation_rate;
                       cell.fmem_lc = r.series.back().lc_fmem_share;
                       cell.be_share = r.series.back().be_fmem_share;
                     }});
  }
  runner.run_all(specs);

  std::printf("%-13s %7s %10s %13s %8s   FMem split (lc|be...)\n", "policy", "load%",
              "fairness", "BE tput", "viol%");
  for (const Cell& cell : cells) {
    std::vector<double> row = {cell.level * 100, cell.fairness, cell.tput, cell.viol_pct,
                               cell.fmem_lc};
    for (int b = 0; b < 4; ++b)
      row.push_back(b < static_cast<int>(cell.be_share.size()) ? cell.be_share[b] : 0.0);
    csv.row(policy_name(cell.policy), row);
    std::printf("%-13s %6.0f%% %10.3f %13.3e %7.1f%%   %.2f |", policy_name(cell.policy),
                cell.level * 100, cell.fairness, cell.tput, cell.viol_pct, cell.fmem_lc);
    for (double s : cell.be_share) std::printf(" %.2f", s);
    std::printf("\n");
  }
  std::printf("\npaper Table 4 (viol%%): MTAT 0/0/0, MEMTIS 0/11.6/99, TPP 0/30.7/100\n");
  return 0;
}
