// Figure 8: maximum load of each LC workload (co-located with the four BE
// workloads) sustained without SLO violations, under MTAT, MEMTIS, TPP and
// SMEM_ALL, normalized to FMEM_ALL.
//
// Expected shape (paper §5.2): MTAT within ~1% of FMEM_ALL for every LC
// workload; MEMTIS ~0.85, TPP ~0.70 and at or below SMEM_ALL (geomean).
#include <cmath>

#include "bench/harness.h"
#include "common/csv.h"

using namespace mtat;
using namespace mtat::bench;

namespace {

/// Max sustainable load for one (LC, policy) pair: bisection over constant
/// loads; each probe runs on a fresh co-location (placement history from a
/// hotter probe must not leak into a cooler one). The MTAT agent is trained
/// once and shared across probes, which makes the predicate *impure* (each
/// probe advances the agent), so the bisection must stay on the serial
/// experiments::find_max_load overload — every probe sim still gets its own
/// private observability context so policy runs can execute on concurrent
/// runner workers.
double measure_max_load(const Scale& sc, const LCConfig& lc, PolicyKind policy,
                        SacAgent* agent) {
  const auto sustainable = [&](double krps) {
    SimConfig cfg = make_sim_config(sc, lc, policy);
    cfg.shared_agent = agent;
    obs::RunContext ctx(obs::RunContext::TraceMode::kPrivate);
    ColocationSim sim(cfg, &ctx);
    return experiments::probe_slo_sustainable(sim, krps, /*warm=*/seconds(25),
                                              sc.measure_window);
  };
  return experiments::find_max_load(sustainable, 0.2 * lc.max_load_krps,
                                    1.3 * lc.max_load_krps, 6);
}

}  // namespace

int main() {
  const Scale sc = scale_from_env();
  banner("fig8_max_load", "Figure 8");
  experiments::ParallelRunner runner = make_runner();
  CsvWriter csv("fig8_max_load.csv", {"lc", "policy", "max_krps", "normalized_to_fmem_all"});
  const std::vector<PolicyKind> policies = {PolicyKind::kMtatFull, PolicyKind::kMemtis,
                                            PolicyKind::kTpp, PolicyKind::kSmemAll};
  std::printf("%-10s %12s", "workload", "FMEM_ALL");
  for (PolicyKind p : policies) std::printf(" %12s", policy_name(p));
  std::printf("   (normalized)\n");

  std::vector<double> geomean(policies.size(), 1.0);
  int n_lc = 0;
  for (const LCConfig& lc : scaled_lc_configs(sc)) {
    // FMEM_ALL baseline: pure predicate (no shared agent), so its bisection
    // probes fan across the runner.
    const double base = experiments::find_max_load(
        [&](double krps, obs::RunContext& ctx) {
          SimConfig cfg = make_sim_config(sc, lc, PolicyKind::kFmemAll);
          ColocationSim sim(cfg, &ctx);
          return experiments::probe_slo_sustainable(sim, krps, /*warm=*/seconds(25),
                                                    sc.measure_window);
        },
        0.2 * lc.max_load_krps, 1.3 * lc.max_load_krps, 6, runner);
    csv.row({lc.name, "fmem_all"}, {base, 1.0});

    // Each policy column is independent (own agent, own training, own serial
    // bisection) — one runner spec per policy.
    std::vector<double> max_krps(policies.size(), 0.0);
    std::vector<experiments::RunSpec> specs;
    specs.reserve(policies.size());
    for (std::size_t i = 0; i < policies.size(); ++i) {
      specs.push_back({std::string(lc.name) + "/" + policy_name(policies[i]),
                       [&sc, &lc, &policies, base, &max_krps, i](obs::RunContext& ctx) {
                         std::unique_ptr<SacAgent> agent;
                         if (is_mtat(policies[i])) {
                           agent = std::make_unique<SacAgent>(SacConfig{});
                           SimConfig cfg = make_sim_config(sc, lc, policies[i]);
                           cfg.shared_agent = agent.get();
                           ColocationSim trainer(cfg, &ctx);
                           train_if_mtat(trainer, sc.train_epochs, base);
                         }
                         max_krps[i] = measure_max_load(sc, lc, policies[i], agent.get());
                       }});
    }
    runner.run_all(specs);

    std::printf("%-10s %9.2fK  ", lc.name.c_str(), base);
    for (std::size_t i = 0; i < policies.size(); ++i) {
      const double norm = max_krps[i] / base;
      geomean[i] *= norm;
      csv.row({lc.name, policy_name(policies[i])}, {max_krps[i], norm});
      std::printf(" %11.3f ", norm);
    }
    std::printf("\n");
    ++n_lc;
  }
  std::printf("%-10s %12s", "geomean", "1.000");
  for (std::size_t i = 0; i < policies.size(); ++i)
    std::printf(" %11.3f ", std::pow(geomean[i], 1.0 / n_lc));
  std::printf("\n\npaper (geomean, normalized): MTAT ~0.99, MEMTIS ~0.85, TPP ~0.70, "
              "SMEM_ALL between TPP and MEMTIS\n");
  return 0;
}
