// Ablation of MTAT's design choices (DESIGN.md §6), on the Redis + 4 BE
// dynamic-load experiment:
//   full          — MTAT (Full) as evaluated everywhere else
//   no_guard      — RL only, without the SLO guard's expansion override
//   even_split    — even BE split instead of the SA fairness search
//   no_lc_first   — Algorithm 3 without LC-priority slice ordering
//   no_aging      — histogram aging disabled in PP-E
#include "bench/harness.h"
#include "common/csv.h"

using namespace mtat;
using namespace mtat::bench;

int main() {
  const Scale sc = scale_from_env();
  banner("ablation_mtat", "DESIGN.md §6 (ablations of §3's design choices)");
  experiments::ParallelRunner runner = make_runner();
  const LCConfig redis = scaled_lc_config(redis_config(), sc);
  const double peak = fmem_all_peak_krps(sc, redis, &runner);

  struct Variant {
    const char* name;
    MtatPolicy::Options opt;
  };
  std::vector<Variant> variants;
  variants.push_back({"full", {}});
  {
    MtatPolicy::Options o;
    o.ppm.slo_guard = false;
    variants.push_back({"no_guard", o});
  }
  {
    MtatPolicy::Options o;
    o.ppm.be_even_split = true;
    variants.push_back({"even_split", o});
  }
  {
    MtatPolicy::Options o;
    o.ppe.lc_first = false;
    variants.push_back({"no_lc_first", o});
  }
  {
    MtatPolicy::Options o;
    o.ppe.enable_aging = false;
    variants.push_back({"no_aging", o});
  }

  CsvWriter csv("ablation_mtat.csv",
                {"variant", "p99_ms", "slo_violation_pct", "fairness", "be_throughput"});

  // One independent run per ablated variant — fan across the runner, report
  // in the variant list's order.
  std::vector<SimResult> results(variants.size());
  std::vector<experiments::RunSpec> specs;
  specs.reserve(variants.size());
  for (std::size_t i = 0; i < variants.size(); ++i) {
    specs.push_back({variants[i].name, [&sc, &redis, peak, &variants, &results,
                                        i](obs::RunContext& ctx) {
                       SimConfig cfg = make_sim_config(sc, redis, PolicyKind::kMtatFull);
                       cfg.mtat = variants[i].opt;
                       ColocationSim sim(cfg, &ctx);
                       train_if_mtat(sim, sc.train_epochs, peak);
                       const LoadPattern pattern = LoadPattern::figure7(peak * 1000.0);
                       sim.run(pattern, pattern.total_length());
                       results[i] = sim.result();
                     }});
  }
  runner.run_all(specs);

  std::printf("%-12s %10s %9s %10s %13s\n", "variant", "P99(ms)", "viol%", "fairness",
              "BE tput");
  for (std::size_t i = 0; i < variants.size(); ++i) {
    const SimResult& r = results[i];
    csv.row(variants[i].name, {r.lc_p99_ms, 100.0 * r.slo_violation_rate, r.fairness,
                               r.be_total_throughput});
    std::printf("%-12s %10.2f %8.1f%% %10.3f %13.3e\n", variants[i].name, r.lc_p99_ms,
                100.0 * r.slo_violation_rate, r.fairness, r.be_total_throughput);
  }
  std::printf("\nexpected: no_guard raises violations (slow surge response); even_split\n"
              "lowers fairness; no_lc_first delays LC expansion during repartitioning;\n"
              "no_aging lets stale hotness misplace pages after load shifts.\n");
  return 0;
}
