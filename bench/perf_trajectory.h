// Shared persistence for the perf-lane trajectories (DESIGN.md §14).
//
// A trajectory file (BENCH_core.json, BENCH_cluster.json) is an append-only
// same-machine series: every perf bench run adds one entry — label from
// MTAT_PERF_LABEL, the scale preset, and a flat metric map — and
// tools/perf_diff compares adjacent entries and gates on regressions. The
// loader refuses to append to a file it cannot parse: the trajectory is the
// deliverable, never clobber what we cannot read.
#pragma once

#include <cstdio>
#include <fstream>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "obs/json.h"
#include "obs/json_parse.h"

namespace mtat::bench {

struct PerfEntry {
  std::string label;
  std::string scale;
  std::vector<std::pair<std::string, double>> metrics;
};

/// Existing trajectory entries, to re-emit ahead of this run's entry. A
/// missing file is an empty trajectory; a malformed one sets *fatal (the
/// caller must bail without writing).
inline std::vector<PerfEntry> load_perf_trajectory(const std::string& path,
                                                   const char* tool, bool* fatal) {
  std::vector<PerfEntry> out;
  *fatal = false;
  if (!std::ifstream(path)) return out;
  try {
    const obs::JsonValue doc = obs::json_parse_file(path);
    const obs::JsonValue* entries = doc.find("entries");
    if (!doc.is_object() || entries == nullptr || !entries->is_array())
      throw obs::JsonParseError(path + ": expected {\"bench\": ..., \"entries\": [...]}");
    for (const obs::JsonValue& e : entries->array) {
      PerfEntry pe;
      const obs::JsonValue* label = e.find("label");
      const obs::JsonValue* scale = e.find("scale");
      const obs::JsonValue* metrics = e.find("metrics");
      if (label == nullptr || !label->is_string() || scale == nullptr ||
          !scale->is_string() || metrics == nullptr || !metrics->is_object())
        throw obs::JsonParseError(path + ": entry missing label/scale/metrics");
      pe.label = label->str;
      pe.scale = scale->str;
      for (const auto& [name, v] : metrics->object) {
        if (!v.is_number()) throw obs::JsonParseError(path + ": non-numeric metric");
        pe.metrics.emplace_back(name, v.number);
      }
      out.push_back(std::move(pe));
    }
  } catch (const obs::JsonParseError& err) {
    std::fprintf(stderr, "%s: refusing to append to unreadable trajectory: %s\n", tool,
                 err.what());
    *fatal = true;
  }
  return out;
}

inline void emit_perf_entry(std::ostream& os, const PerfEntry& e, bool last) {
  os << "    {\n      \"label\": ";
  obs::json_string(os, e.label);
  os << ",\n      \"scale\": ";
  obs::json_string(os, e.scale);
  os << ",\n      \"metrics\": {\n";
  for (std::size_t i = 0; i < e.metrics.size(); ++i) {
    os << "        ";
    obs::json_string(os, e.metrics[i].first);
    os << ": ";
    obs::json_number(os, e.metrics[i].second);
    os << (i + 1 < e.metrics.size() ? ",\n" : "\n");
  }
  os << "      }\n    }" << (last ? "\n" : ",\n");
}

/// Append `entry` to the trajectory at `path` (creating it if absent).
/// Returns false — with a message on stderr — on a malformed existing file
/// or a write failure.
inline bool append_perf_trajectory(const std::string& path, const char* bench,
                                   PerfEntry entry) {
  bool fatal = false;
  std::vector<PerfEntry> entries = load_perf_trajectory(path, bench, &fatal);
  if (fatal) return false;
  entries.push_back(std::move(entry));

  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "%s: cannot open %s\n", bench, path.c_str());
    return false;
  }
  out << "{\n  \"bench\": ";
  obs::json_string(out, bench);
  out << ",\n  \"entries\": [\n";
  for (std::size_t i = 0; i < entries.size(); ++i)
    emit_perf_entry(out, entries[i], i + 1 == entries.size());
  out << "  ]\n}\n";
  if (!out.flush()) {
    std::fprintf(stderr, "%s: failed writing %s\n", bench, path.c_str());
    return false;
  }
  std::printf("\nappended entry \"%s\" to %s (%zu entr%s)\n", entries.back().label.c_str(),
              path.c_str(), entries.size(), entries.size() == 1 ? "y" : "ies");
  return true;
}

}  // namespace mtat::bench
