// Extension: fleet-level fault tolerance (DESIGN.md §17). Sweeps placement
// policy x fleet fault-storm intensity x restart mode through ClusterSim's
// failure domain: per storm epoch the seed-deterministic injector crashes,
// straggles, and blacks out nodes; the health watchdog suspects silent nodes
// (3-down/5-up hysteresis); their tenants evacuate through the placement
// policy under admission control; and crashed nodes restart warm (replaying
// their deterministic ColocationSim checkpoint) or cold (fresh boot straight
// into traffic — the cold-page flood). Reports fleet SLO compliance during
// the storm, the post-storm time-to-recover, and the failover event counts.
//
// Expected shape: the intensity-0 rows are the healthy reference on the same
// reduced fleet (an inactive plan is the classic two-round run). Under
// the storm, telemetry-aware placement routes demand away from sick nodes and
// keeps the highest compliance, bin-packing is blind to health but still
// spreads load, and random eats the storm raw: telemetry >= bin_packing >=
// random. Warm restarts recover in fewer epochs than cold ones — a replayed
// checkpoint resumes with its hot pages already promoted, a cold boot pays
// the flood. The whole grid is bit-identical across MTAT_JOBS and reruns.
#include <algorithm>

#include "bench/cluster_env.h"
#include "common/csv.h"

using namespace mtat;
using namespace mtat::bench;

int main() {
  const Scale sc = scale_from_env();
  banner("ext_cluster_fault_tolerance",
         "extension: fleet-level failure domain (DESIGN.md §17)");
  experiments::ParallelRunner runner = make_runner();
  const LCConfig redis = scaled_lc_config(redis_config(), sc);
  const double peak = fmem_all_peak_krps(sc, redis, &runner, /*n_be=*/2);
  cluster::ClusterConfig cc = make_cluster_config(sc, redis, peak);
  // A faulted run costs several healthy runs (plan.epochs windows plus the
  // checkpoint replay each warm epoch pays), so the grid runs on a reduced
  // fleet with short windows; MTAT_NODES still overrides via the env.
  if (!Env::get().nodes) cc.nodes = std::max(8, cc.nodes / 10);
  cc.settle = seconds(1);
  cc.probe_window = seconds(1);
  cc.measure_window = seconds(2);
  std::printf("fleet: %d nodes x (1 LC + 2 BE), node capacity %.2f KRPS, %d tenants\n",
              cc.nodes, peak, cc.tenants > 0 ? cc.tenants : 4 * cc.nodes);

  struct Cell {
    std::string placement;
    double intensity = 0;   // 0 = healthy (no plan at all)
    bool warm = true;
  };
  std::vector<Cell> cells;
  for (const std::string& name : cluster::all_placement_names()) {
    cells.push_back({name, 0.0, true});
    for (double intensity : {0.6, 1.0})
      for (bool warm : {true, false}) cells.push_back({name, intensity, warm});
  }

  // `restart` is numeric: 1 = warm, 0 = cold, -1 = healthy row (no plan).
  CsvWriter csv("ext_cluster_fault_tolerance.csv",
                {"placement", "intensity", "restart", "storm_slo_pct", "final_slo_pct",
                 "recovery_epochs", "crashes", "stragglers", "blackouts", "evacuations",
                 "retries", "queued_final", "warm_restarts", "cold_restarts",
                 "rebalanced_tenants"});

  std::printf("%-12s %9s %7s %8s %8s %8s %7s %6s %6s %6s %6s\n", "placement", "intensity",
              "restart", "storm%", "final%", "recover", "crash", "strag", "black", "evac",
              "moved");
  // Cells run serially at the top level — ClusterSim::run drives the shared
  // runner's node fan-out itself (run_all is non-reentrant). Each cell gets a
  // fresh ClusterSim from the same geometry and seed, so every policy and
  // storm faces the identical tenant population and node seeds.
  for (const Cell& cell : cells) {
    cluster::ClusterConfig cfg = cc;
    if (cell.intensity > 0) {
      faults::ClusterFaultPlan plan = faults::ClusterFaultPlan::storm(cell.intensity);
      plan.warm_restart = cell.warm;
      // A longer horizon than the storm() default: four storm epochs spread
      // crashes past the first checkpoint (so warm restarts really replay
      // state — a node that dies before completing an epoch has nothing to
      // warm from), and six recovery epochs give the watchdog's 5-clean
      // readmission ladder room to finish, making time-to-recover
      // measurable. The default 2-epoch outage stays below the 3-miss
      // suspicion threshold, so a lone crash restarts into live traffic
      // (where warm vs cold shows) while blackout chains — boosted here —
      // drive the suspicion/evacuation path.
      plan.epochs = 10;
      plan.storm_epochs = 4;
      plan.node_blackout_prob = 0.4 * cell.intensity;
      cfg.faults = plan;
    } else {
      cfg.faults.reset();  // healthy reference row, whatever the env says
    }
    const auto policy = cluster::make_placement(cell.placement);
    cluster::ClusterSim sim(cfg);
    const cluster::ClusterResult r = sim.run(*policy, &runner);

    // Storm compliance: mean over the storm epochs; recovery: epochs after
    // the storm until compliance first reaches 99% of the final value.
    const int storm_epochs = cell.intensity > 0 ? cfg.faults->storm_epochs : 0;
    double storm_slo = r.slo_compliance_pct;
    int recovery = 0;
    if (cell.intensity > 0 && !r.epochs.empty()) {
      double sum = 0;
      int n = 0;
      for (const cluster::EpochStats& es : r.epochs)
        if (es.epoch < storm_epochs) {
          sum += es.slo_compliance_pct;
          ++n;
        }
      if (n > 0) storm_slo = sum / n;
      const double final_slo = r.epochs.back().slo_compliance_pct;
      recovery = -1;
      for (const cluster::EpochStats& es : r.epochs) {
        if (es.epoch < storm_epochs) continue;
        if (es.slo_compliance_pct >= 0.99 * final_slo) {
          recovery = es.epoch - storm_epochs;
          break;
        }
      }
    }

    const char* restart = cell.intensity > 0 ? (cell.warm ? "warm" : "cold") : "-";
    csv.row(cell.placement,
            {cell.intensity, cell.intensity > 0 ? (cell.warm ? 1.0 : 0.0) : -1.0,
             storm_slo, r.slo_compliance_pct, static_cast<double>(recovery),
             static_cast<double>(r.node_crashes), static_cast<double>(r.node_stragglers),
             static_cast<double>(r.node_blackouts), static_cast<double>(r.evacuations),
             static_cast<double>(r.failover_retries), static_cast<double>(r.unplaced_tenants),
             static_cast<double>(r.warm_restarts), static_cast<double>(r.cold_restarts),
             static_cast<double>(r.rebalanced_tenants)});
    std::printf("%-12s %9.2f %7s %7.2f%% %7.2f%% %8d %7d %6d %6d %6d %6d\n",
                cell.placement.c_str(), cell.intensity, restart, storm_slo,
                r.slo_compliance_pct, recovery, r.node_crashes, r.node_stragglers,
                r.node_blackouts, r.evacuations, r.rebalanced_tenants);
  }
  std::printf(
      "\nexpected: telemetry >= bin_packing >= random on storm compliance; warm and cold "
      "restarts diverge after the first post-checkpoint crash; intensity 0 is the healthy "
      "reference (no injector at all)\n");
  return 0;
}
