// Shared infrastructure for the per-figure/table benchmark binaries.
//
// Every binary reproduces one table or figure from the paper's evaluation:
// it prints the same rows/series the paper reports and writes the raw data
// as CSV into the working directory. Scale is selected with MTAT_SCALE=
// small (default; DESIGN.md's miniature preset, minutes for the whole suite)
// or large (the §5-scaled preset, substantially slower). MTAT_EPOCHS
// overrides the RL training epochs run before each measured MTAT phase.
// Observability (ISSUE: src/obs): setting MTAT_TRACE=path.json makes any
// bench binary record a Chrome trace_event file (open in chrome://tracing or
// Perfetto) without per-binary changes; MTAT_TRACE_EVENTS overrides the ring
// capacity. banner() additionally writes a `<experiment>.manifest.json`
// sidecar so every CSV in the working directory carries its provenance.
// Experiment parallelism (MTAT_JOBS, default one job per hardware thread) is
// exposed as make_runner(); see bench/env.h for all environment knobs.
#pragma once

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>

#include "bench/env.h"
#include "faults/fault_plan.h"
#include "mem/topology.h"
#include "obs/manifest.h"
#include "obs/trace.h"
#include "sim/colocation_sim.h"
#include "sim/experiments.h"
#include "workloads/be/be_suite.h"

namespace mtat::bench {

/// Process-lifetime hook: constructed before main() in every binary that
/// includes this header, it installs the MTAT_FAULTS plan as the process
/// default so every RunContext the binary creates (its own and the parallel
/// runner's) carries a fault injector. A bad spec warns and runs clean — the
/// fail-safe direction for a knob whose whole point is resilience testing.
struct FaultsEnvHook {
  FaultsEnvHook() {
    const std::string& spec = Env::get().faults;
    if (spec.empty()) return;
    if (const auto plan = faults::FaultPlan::from_spec(spec)) {
      faults::set_default_plan(*plan);
      std::fprintf(stderr, "MTAT_FAULTS: injecting plan %s (seed %llu)\n", spec.c_str(),
                   (unsigned long long)plan->seed);
    } else {
      std::fprintf(stderr,
                   "warning: invalid MTAT_FAULTS=%s (expected storm or storm:X with X in "
                   "[0,1]); running without fault injection\n",
                   spec.c_str());
    }
  }
};

// Ownership: zero-size tag object whose constructor runs once before
// main(); never touched again.
inline FaultsEnvHook g_faults_env_hook;  // mtat-lint: allow(shared-mutable)

/// Process-lifetime hook: constructed before main() in every binary that
/// includes this header, it enables tracing when MTAT_TRACE names an output
/// path and writes the file when the process exits normally.
struct TraceEnvHook {
  std::string path;

  TraceEnvHook() {
    const Env& env = Env::get();
    if (env.trace_path.empty()) return;
    path = env.trace_path;
    obs::trace().enable(env.trace_events);
  }

  ~TraceEnvHook() {
    if (path.empty()) return;
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "MTAT_TRACE: cannot open %s\n", path.c_str());
      return;
    }
    obs::trace().write_chrome_json(out);
    out << '\n';
    std::fprintf(stderr, "MTAT_TRACE: wrote %zu events to %s (%llu dropped)\n",
                 obs::trace().size(), path.c_str(),
                 (unsigned long long)obs::trace().dropped());
  }
};

// Ownership: constructed once before main() (enables tracing), destroyed
// once after main() (writes the file); never touched in between.
inline TraceEnvHook g_trace_env_hook;  // mtat-lint: allow(shared-mutable)

struct Scale {
  Bytes fmem;
  Bytes smem;
  Bytes be_rss;
  BEScale be_scale;
  double lc_oversubscription;  ///< LC RSS as a multiple of FMem (paper ~1.05)
  int train_epochs;            ///< fig-7 epochs of RL training per MTAT run
  Duration measure_window;     ///< measured span for steady-state probes
};

/// The scale preset in effect: "small" or "large" (MTAT_SCALE, validated by
/// bench::Env — unknown values warn and fall back to small).
inline std::string scale_preset_from_env() { return Env::get().scale; }

/// The experiment runner for this process: MTAT_JOBS workers, defaulting to
/// one per hardware thread. Benches fan their independent points through it;
/// results are deterministic whatever the job count (DESIGN.md §11).
inline experiments::ParallelRunner make_runner() {
  return experiments::ParallelRunner(Env::get().jobs);
}

inline Scale scale_from_env() {
  const std::string preset = scale_preset_from_env();
  Scale out;
  if (preset == "large") {
    out.fmem = Bytes{2} * 1024 * 1024 * 1024;
    out.smem = Bytes{16} * 1024 * 1024 * 1024;
    out.be_rss = Bytes{2252} * 1024 * 1024;
  } else if (preset == "smoke") {
    // CI preset: seconds of wall time per bench, small enough to run under
    // TSan; exercises the full pipeline, not the paper's operating point.
    out.fmem = Bytes{32} * 1024 * 1024;
    out.smem = Bytes{512} * 1024 * 1024;
    out.be_rss = Bytes{36} * 1024 * 1024;
  } else {
    out.fmem = Bytes{128} * 1024 * 1024;
    out.smem = Bytes{2} * 1024 * 1024 * 1024;
    out.be_rss = Bytes{140} * 1024 * 1024;
  }
  out.be_scale = preset == "smoke" ? BEScale::kTest : BEScale::kDefault;
  out.lc_oversubscription = 1.05;
  out.train_epochs = preset == "smoke" ? 1 : 5;
  out.measure_window = preset == "smoke" ? seconds(5) : seconds(30);
  if (const auto epochs = Env::get().epochs) out.train_epochs = *epochs;
  return out;
}

/// A paper LC config resized so its record heap is ~lc_oversubscription x
/// FMem (Table 1: LC RSS slightly exceeds the 32 GB fast tier).
inline LCConfig scaled_lc_config(const LCConfig& paper, const Scale& sc) {
  LCConfig c = paper;
  c.n_records = static_cast<std::uint64_t>(sc.lc_oversubscription *
                                           static_cast<double>(sc.fmem) /
                                           static_cast<double>(c.record_size));
  return c;
}

inline std::vector<LCConfig> scaled_lc_configs(const Scale& sc) {
  std::vector<LCConfig> out;
  for (const LCConfig& c : all_lc_configs()) out.push_back(scaled_lc_config(c, sc));
  return out;
}

/// The MTAT_TOPOLOGY tier vector, if one was given and parses. A malformed
/// spec warns and behaves as unset (benches keep their built-in two-tier
/// scale preset) — the same fail-safe direction as every other env knob.
inline std::optional<std::vector<TierSpec>> topology_from_env() {
  const std::string& spec = Env::get().topology;
  if (spec.empty()) return std::nullopt;
  std::string error;
  if (auto tiers = parse_topology(spec, &error)) return tiers;
  std::fprintf(stderr, "warning: invalid MTAT_TOPOLOGY=%s (%s); using the bench default\n",
               spec.c_str(), error.c_str());
  return std::nullopt;
}

/// Standard co-location SimConfig: one LC + n BE workloads under `policy`.
/// MTAT_TOPOLOGY, when set and valid, replaces the preset's two tiers with
/// the given tier vector (capacities, latencies, and link bandwidths).
inline SimConfig make_sim_config(const Scale& sc, const LCConfig& lc, PolicyKind policy,
                                 int n_be = 4, int be_cores = 4) {
  SimConfig cfg;
  cfg.fmem = sc.fmem;
  cfg.smem = sc.smem;
  if (const auto topo = topology_from_env()) cfg.tiers = *topo;
  cfg.lc = lc;
  cfg.be = be_suite(sc.be_scale, sc.be_rss, be_cores, n_be);
  cfg.policy = policy;
  // Tier-bandwidth contention is part of the standard co-location platform:
  // a BE fleet hammering SMem inflates its effective latency, which is how
  // a co-located, SMem-resident LC workload loses capacity it would have
  // standalone (Table 4's mid-load violations). Capacities scale with the
  // number of BE tenants sharing the slow tier.
  cfg.bandwidth.enabled = true;
  cfg.bandwidth.fmem_accesses_per_sec = 150e6 * n_be;
  cfg.bandwidth.smem_accesses_per_sec = 25e6 * n_be;
  return cfg;
}

inline bool is_mtat(PolicyKind k) {
  return k == PolicyKind::kMtatFull || k == PolicyKind::kMtatLcOnly;
}

/// The paper drives its dynamic pattern "until it reaches the maximum
/// capacity that FMEM_ALL can handle" (§5.1) — i.e., the peak is FMEM_ALL's
/// *measured* max under co-location (including tier-bandwidth contention
/// from the BE fleet), not the standalone calibration target. Measured by
/// bisection; one measurement per (LC workload, BE setting).
inline double fmem_all_peak_krps(const Scale& sc, const LCConfig& lc,
                                 experiments::ParallelRunner* runner = nullptr, int n_be = 4,
                                 int be_cores = 4, double max_violation_rate = 0.002) {
  // The strict violation criterion keeps the measured peak off the knee's
  // edge: at 1 % the bisection can land where P99 is already drifting, and a
  // trapezoid driven exactly there rides the knee for its whole plateau.
  // The probe is pure — a fresh sim per load, no shared agent — so with a
  // runner the bisection's probes fan out (same result as serial: the
  // speculative probe set is jobs-invariant, see experiments::find_max_load).
  const auto probe = [&](double krps, obs::RunContext& ctx) {
    SimConfig cfg = make_sim_config(sc, lc, PolicyKind::kFmemAll, n_be, be_cores);
    ColocationSim sim(cfg, &ctx);
    return experiments::probe_slo_sustainable(sim, krps, seconds(15), seconds(20),
                                              max_violation_rate);
  };
  const double lo = 0.3 * lc.max_load_krps, hi = 1.2 * lc.max_load_krps;
  if (runner != nullptr) return experiments::find_max_load(probe, lo, hi, 5, *runner);
  return experiments::find_max_load(
      [&](double krps) {
        obs::RunContext ctx;
        return probe(krps, ctx);
      },
      lo, hi, 5);
}

/// Train an MTAT sim's agent on `epochs` repetitions of the Figure-7 pattern
/// peaking at `peak_krps`, then clear measurement state. No-op for baselines.
inline void train_if_mtat(ColocationSim& sim, int epochs, double peak_krps) {
  if (!is_mtat(sim.config().policy)) return;
  const LoadPattern pattern = LoadPattern::figure7(peak_krps * 1000.0);
  for (int e = 0; e < epochs; ++e) sim.run(pattern, pattern.total_length(), /*measure=*/false);
  sim.reset_stats();
}

/// All six comparison points, in the paper's reporting order.
inline std::vector<PolicyKind> all_policies() {
  return {PolicyKind::kMtatFull, PolicyKind::kMtatLcOnly, PolicyKind::kMemtis,
          PolicyKind::kTpp,      PolicyKind::kFmemAll,    PolicyKind::kSmemAll};
}

inline void banner(const char* experiment, const char* paper_ref) {
  const std::string preset = scale_preset_from_env();
  std::printf("================================================================\n");
  std::printf("%s  —  reproduces %s\n", experiment, paper_ref);
  std::printf("scale: %s (MTAT_SCALE=small|large)\n", preset.c_str());
  std::printf("================================================================\n");
  // Provenance sidecar next to the CSVs this binary writes: which binary,
  // which scale preset, which build. See DESIGN.md "Observability".
  obs::RunManifest m;
  m.tool = experiment;
  m.scale = preset;
  m.train_epochs = scale_from_env().train_epochs;
  m.add("paper_ref", paper_ref);
  m.write_file(std::string(experiment) + ".manifest.json");
}

}  // namespace mtat::bench
