#include "cluster/cluster_sim.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "obs/names.h"

namespace mtat::cluster {

namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

double gauge_value(const obs::RunContext& ctx, const char* name) {
  const obs::Gauge* g = ctx.metrics().find_gauge(name);
  return g != nullptr ? g->value() : kNan;
}

/// Fast-tier occupancy of a measured node run, in percent of FMem capacity:
/// the LC share plus every BE share from the last recorded interval.
double node_fmem_util_pct(const SimResult& r) {
  if (r.series.empty()) return 0.0;
  const TimePoint& tp = r.series.back();
  double share = tp.lc_fmem_share;
  for (double s : tp.be_fmem_share) share += s;
  return 100.0 * share;
}

}  // namespace

ClusterSim::ClusterSim(const ClusterConfig& cfg, obs::RunContext* ctx) : cfg_(cfg) {
  if (cfg_.nodes <= 0) throw std::invalid_argument("ClusterSim: nodes must be positive");
  if (cfg_.tenants < 0) throw std::invalid_argument("ClusterSim: negative tenant count");
  if (cfg_.tenants == 0) cfg_.tenants = 4 * cfg_.nodes;
  if (ctx == nullptr) {
    owned_ctx_ = std::make_unique<obs::RunContext>();
    ctx_ = owned_ctx_.get();
  } else {
    ctx_ = ctx;
  }

  // Everything stochastic is drawn here, in a fixed order, from cfg.seed:
  // tenant demands and footprints (tenant order), per-node sim seeds (node
  // order), then the placement stream seed. Policies therefore compete on an
  // identical fleet and tenant population, and nothing downstream depends on
  // which worker simulates which shard.
  Rng seeder(cfg_.seed);
  const double fleet_capacity_krps =
      static_cast<double>(cfg_.nodes) * cfg_.node_capacity_krps;
  std::vector<double> weights(static_cast<std::size_t>(cfg_.tenants));
  double weight_sum = 0;
  for (double& w : weights) {
    w = seeder.next_exponential(1.0);  // heavy-ish spread: a few hot tenants
    weight_sum += w;
  }
  tenants_.reserve(weights.size());
  for (std::size_t i = 0; i < weights.size(); ++i) {
    TenantStream t;
    t.name = "tenant-" + std::to_string(i);
    t.demand_krps =
        cfg_.target_utilization * fleet_capacity_krps * weights[i] / weight_sum;
    const double spread = 0.25 + 1.5 * seeder.next_double();  // x0.25 .. x1.75
    t.footprint = static_cast<Bytes>(cfg_.footprint_mean_fraction * spread *
                                     static_cast<double>(cfg_.node.fmem));
    tenants_.push_back(std::move(t));
  }
  node_seeds_.reserve(static_cast<std::size_t>(cfg_.nodes));
  for (int n = 0; n < cfg_.nodes; ++n) node_seeds_.push_back(seeder.next_u64());
  placement_seed_ = seeder.next_u64();

  obs::MetricsRegistry& reg = ctx_->metrics();
  reg.gauge(obs::names::kClusterNodes).set(static_cast<double>(cfg_.nodes));
  reg.gauge(obs::names::kClusterTenants).set(static_cast<double>(cfg_.tenants));
}

std::vector<NodeState> ClusterSim::fresh_states() const {
  std::vector<NodeState> states(static_cast<std::size_t>(cfg_.nodes));
  for (int n = 0; n < cfg_.nodes; ++n) {
    NodeState& s = states[static_cast<std::size_t>(n)];
    s.node_id = n;
    s.fmem_capacity = cfg_.node.fmem;
    s.capacity_krps = cfg_.node_capacity_krps;
    s.p99_ms = kNan;
    s.slo_violation_pct = kNan;
    s.fmem_util_pct = kNan;
  }
  return states;
}

std::vector<std::size_t> ClusterSim::place_all(const PlacementPolicy& policy,
                                               std::vector<NodeState>& states,
                                               Rng& rng) const {
  std::vector<std::size_t> assignment;
  assignment.reserve(tenants_.size());
  for (const TenantStream& t : tenants_) {
    const std::size_t idx = policy.place(t, states, rng);
    if (idx >= states.size())
      throw std::logic_error(std::string("PlacementPolicy ") + policy.name() +
                             " returned node index out of range");
    NodeState& s = states[idx];
    s.assigned_krps += t.demand_krps;
    s.assigned_footprint += t.footprint;
    s.tenants += 1;
    assignment.push_back(idx);
  }
  ctx_->metrics().counter(obs::names::kClusterPlacements).inc(
      static_cast<double>(tenants_.size()));
  return assignment;
}

std::vector<NodeResult> ClusterSim::run_round(const std::vector<std::size_t>& assignment,
                                              Duration window,
                                              experiments::ParallelRunner* runner) {
  // Fold the routed tenants into per-node demand on the calling thread, in
  // tenant order, before any worker starts.
  std::vector<NodeResult> out(static_cast<std::size_t>(cfg_.nodes));
  for (int n = 0; n < cfg_.nodes; ++n) out[static_cast<std::size_t>(n)].node_id = n;
  for (std::size_t t = 0; t < assignment.size(); ++t) {
    NodeResult& nr = out[assignment[t]];
    nr.offered_krps += tenants_[t].demand_krps;
    nr.assigned_footprint += tenants_[t].footprint;
    nr.tenants += 1;
  }

  std::vector<experiments::RunSpec> specs;
  specs.reserve(out.size());
  const bool keep_metrics = cfg_.keep_node_metrics;
  const Duration settle = cfg_.settle;
  for (NodeResult& nr : out) {
    specs.push_back(
        {"node" + std::to_string(nr.node_id) + "@" + std::to_string(nr.offered_krps) + "krps",
         [this, &nr, settle, window, keep_metrics](obs::RunContext& ctx) {
           SimConfig ncfg = cfg_.node;
           ncfg.seed = node_seeds_[static_cast<std::size_t>(nr.node_id)];
           ColocationSim sim(ncfg, &ctx);
           const LoadPattern pattern = LoadPattern::constant(nr.offered_krps * 1000.0);
           if (settle > 0) sim.run(pattern, settle, /*measure=*/false);
           sim.reset_stats();
           sim.run(pattern, window, /*measure=*/true);
           nr.sim = sim.result();

           // Export the node's health through its own metrics registry —
           // these gauges are the telemetry the cluster-level balancer sees;
           // NodeResult reads them back from the registry rather than from
           // the SimResult so the flow is the one production would have.
           obs::MetricsRegistry& reg = ctx.metrics();
           reg.gauge(obs::names::kClusterNodeP99Ms).set(nr.sim.lc_p99_ms);
           reg.gauge(obs::names::kClusterNodeSloViolationPct)
               .set(100.0 * nr.sim.slo_violation_rate);
           reg.gauge(obs::names::kClusterNodeFmemUtilPct).set(node_fmem_util_pct(nr.sim));
           reg.gauge(obs::names::kClusterNodeOfferedRps).set(nr.offered_krps * 1000.0);
           reg.gauge(obs::names::kClusterNodeTenants).set(static_cast<double>(nr.tenants));
           nr.p99_ms = gauge_value(ctx, obs::names::kClusterNodeP99Ms);
           nr.slo_violation_pct = gauge_value(ctx, obs::names::kClusterNodeSloViolationPct);
           nr.fmem_util_pct = gauge_value(ctx, obs::names::kClusterNodeFmemUtilPct);
           if (keep_metrics) {
             std::ostringstream dump;
             ctx.metrics().write_csv(dump);
             nr.metrics_csv = dump.str();
           }
         }});
  }

  if (runner != nullptr) {
    runner->run_all(specs);
  } else {
    // Serial reference path: a one-job runner executes every spec inline on
    // this thread through the exact same private-context machinery, so the
    // serial and fanned paths cannot drift.
    experiments::ParallelRunner serial(1);
    serial.run_all(specs);
  }

  obs::MetricsRegistry& reg = ctx_->metrics();
  reg.counter(obs::names::kClusterRounds).inc();
  double offered = 0;
  for (const NodeResult& nr : out) offered += nr.offered_krps;
  ctx_->trace().instant(obs::names::kEvClusterRound, obs::names::kCatSim, "nodes",
                        static_cast<double>(cfg_.nodes), "offered_krps", offered);
  return out;
}

ClusterResult ClusterSim::run(const PlacementPolicy& policy,
                              experiments::ParallelRunner* runner) {
  // Round 1: static placement, probe window, telemetry harvest.
  std::vector<NodeState> states = fresh_states();
  Rng round1_rng(placement_seed_);
  const std::vector<std::size_t> first = place_all(policy, states, round1_rng);
  const std::vector<NodeResult> probe = run_round(first, cfg_.probe_window, runner);

  // Round 2: the same tenants re-placed with last round's node health
  // visible. Assignment state is rebuilt from scratch — the balancer routes
  // the full stream set each round — and moves are counted as rebalances.
  std::vector<NodeState> informed = fresh_states();
  for (const NodeResult& nr : probe) {
    NodeState& s = informed[static_cast<std::size_t>(nr.node_id)];
    s.p99_ms = nr.p99_ms;
    s.slo_violation_pct = nr.slo_violation_pct;
    s.fmem_util_pct = nr.fmem_util_pct;
  }
  Rng round2_rng(placement_seed_ ^ 0xC1D5'7E11'5EEDull);
  const std::vector<std::size_t> second = place_all(policy, informed, round2_rng);
  int moved = 0;
  for (std::size_t t = 0; t < tenants_.size(); ++t)
    if (first[t] != second[t]) ++moved;

  ClusterResult r;
  r.nodes = run_round(second, cfg_.measure_window, runner);
  r.rebalanced_tenants = moved;

  // Fleet aggregates, folded in node-id order.
  double requests = 0, violations = 0, completed = 0, util_sum = 0;
  std::vector<double> p99s;
  p99s.reserve(r.nodes.size());
  for (const NodeResult& nr : r.nodes) {
    r.offered_krps += nr.offered_krps;
    const double reqs = static_cast<double>(nr.sim.lc_completed);
    requests += reqs;
    violations += nr.sim.slo_violation_rate * reqs;
    completed += reqs;
    util_sum += nr.fmem_util_pct;
    r.max_p99_ms = std::max(r.max_p99_ms, nr.p99_ms);
    p99s.push_back(nr.p99_ms);
    if (nr.slo_violation_pct > 1.0) ++r.overloaded_nodes;
  }
  r.completed_krps = completed / to_seconds(cfg_.measure_window) / 1000.0;
  r.slo_compliance_pct = requests > 0 ? 100.0 * (1.0 - violations / requests) : 100.0;
  r.fmem_util_pct = util_sum / static_cast<double>(r.nodes.size());
  std::sort(p99s.begin(), p99s.end());
  const std::size_t idx = static_cast<std::size_t>(
      std::ceil(0.99 * static_cast<double>(p99s.size()))) - 1;
  r.p99_of_p99_ms = p99s[std::min(idx, p99s.size() - 1)];

  const double round_sim_seconds =
      to_seconds(cfg_.settle + cfg_.probe_window) + to_seconds(cfg_.settle + cfg_.measure_window);
  r.node_sim_seconds = static_cast<double>(cfg_.nodes) * round_sim_seconds;
  r.sim_steps = static_cast<std::uint64_t>(r.node_sim_seconds / to_seconds(cfg_.node.tick));

  obs::MetricsRegistry& reg = ctx_->metrics();
  reg.counter(obs::names::kClusterRebalancedTenants).inc(static_cast<double>(moved));
  reg.gauge(obs::names::kClusterOfferedRps).set(r.offered_krps * 1000.0);
  reg.gauge(obs::names::kClusterSloCompliancePct).set(r.slo_compliance_pct);
  reg.gauge(obs::names::kClusterTailP99Ms).set(r.max_p99_ms);
  reg.gauge(obs::names::kClusterFmemUtilPct).set(r.fmem_util_pct);
  return r;
}

}  // namespace mtat::cluster
