#include "cluster/cluster_sim.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "obs/names.h"

namespace mtat::cluster {

namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
/// Assignment sentinel for a tenant the failover machinery has queued (no
/// node this epoch). Healthy runs never produce it.
constexpr std::size_t kUnplaced = std::numeric_limits<std::size_t>::max();

double gauge_value(const obs::RunContext& ctx, const char* name) {
  const obs::Gauge* g = ctx.metrics().find_gauge(name);
  return g != nullptr ? g->value() : kNan;
}

/// Fast-tier occupancy of a measured node run, in percent of FMem capacity:
/// the LC share plus every BE share from the last recorded interval.
double node_fmem_util_pct(const SimResult& r) {
  if (r.series.empty()) return 0.0;
  const TimePoint& tp = r.series.back();
  double share = tp.lc_fmem_share;
  for (double s : tp.be_fmem_share) share += s;
  return 100.0 * share;
}

}  // namespace

/// Per-node fleet-side failover bookkeeping, owned by run() and touched by
/// the node shard only through its own disjoint entry (checkpoint read,
/// fresh_checkpoint write) — never across nodes, so shards stay shared-nothing.
struct ClusterSim::NodeFailover {
  // Outage state.
  bool down = false;
  int down_until = 0;         ///< epoch index at which the node restarts
  bool cold_pending = false;  ///< next boot skips settle (cold-page flood)
  // This epoch's injected condition (reset every epoch).
  bool straggler = false;
  bool blacked_out = false;
  // Deterministic checkpoint: the journal the node replays on a warm start.
  // A straggler epoch is never checkpointed — its history ran under an
  // in-node storm, so the node resumes from its last clean checkpoint.
  SimCheckpoint checkpoint;
  bool has_checkpoint = false;
  SimCheckpoint fresh_checkpoint;  ///< written by the shard this epoch
  bool fresh_valid = false;
  // Watchdog ladder (suspect_after misses down, readmit_after exports up).
  int missed_exports = 0;
  int clean_exports = 0;
  bool suspected = false;
  // Last telemetry the cluster actually received (stale across blackouts).
  double p99_ms = kNan;
  double slo_violation_pct = kNan;
  double fmem_util_pct = kNan;
};

/// Per-tenant failover bookkeeping: the evacuation/backoff protocol state.
struct ClusterSim::TenantFailover {
  bool queued = false;  ///< unplaceable last attempt; waiting out the backoff
  int backoff = 0;      ///< current backoff, epochs (doubles up to the cap)
  int retry_at = 0;     ///< first epoch the queued tenant may retry
  std::size_t last_node = kUnplaced;  ///< previous epoch's placement
};

ClusterSim::ClusterSim(const ClusterConfig& cfg, obs::RunContext* ctx) : cfg_(cfg) {
  if (cfg_.nodes <= 0) throw std::invalid_argument("ClusterSim: nodes must be positive");
  if (cfg_.tenants < 0) throw std::invalid_argument("ClusterSim: negative tenant count");
  if (cfg_.tenants == 0) cfg_.tenants = 4 * cfg_.nodes;
  if (ctx == nullptr) {
    owned_ctx_ = std::make_unique<obs::RunContext>();
    ctx_ = owned_ctx_.get();
  } else {
    ctx_ = ctx;
  }

  // Everything stochastic is drawn here, in a fixed order, from cfg.seed:
  // tenant demands and footprints (tenant order), per-node sim seeds (node
  // order), then the placement stream seed. Policies therefore compete on an
  // identical fleet and tenant population, and nothing downstream depends on
  // which worker simulates which shard.
  Rng seeder(cfg_.seed);
  const double fleet_capacity_krps =
      static_cast<double>(cfg_.nodes) * cfg_.node_capacity_krps;
  std::vector<double> weights(static_cast<std::size_t>(cfg_.tenants));
  double weight_sum = 0;
  for (double& w : weights) {
    w = seeder.next_exponential(1.0);  // heavy-ish spread: a few hot tenants
    weight_sum += w;
  }
  tenants_.reserve(weights.size());
  for (std::size_t i = 0; i < weights.size(); ++i) {
    TenantStream t;
    t.name = "tenant-" + std::to_string(i);
    t.demand_krps =
        cfg_.target_utilization * fleet_capacity_krps * weights[i] / weight_sum;
    const double spread = 0.25 + 1.5 * seeder.next_double();  // x0.25 .. x1.75
    t.footprint = static_cast<Bytes>(cfg_.footprint_mean_fraction * spread *
                                     static_cast<double>(cfg_.node.fmem));
    tenants_.push_back(std::move(t));
  }
  node_seeds_.reserve(static_cast<std::size_t>(cfg_.nodes));
  for (int n = 0; n < cfg_.nodes; ++n) node_seeds_.push_back(seeder.next_u64());
  placement_seed_ = seeder.next_u64();

  obs::MetricsRegistry& reg = ctx_->metrics();
  reg.gauge(obs::names::kClusterNodes).set(static_cast<double>(cfg_.nodes));
  reg.gauge(obs::names::kClusterTenants).set(static_cast<double>(cfg_.tenants));
}

std::vector<NodeState> ClusterSim::fresh_states() const {
  std::vector<NodeState> states(static_cast<std::size_t>(cfg_.nodes));
  for (int n = 0; n < cfg_.nodes; ++n) {
    NodeState& s = states[static_cast<std::size_t>(n)];
    s.node_id = n;
    s.fmem_capacity = cfg_.node.fmem;
    s.capacity_krps = cfg_.node_capacity_krps;
    s.p99_ms = kNan;
    s.slo_violation_pct = kNan;
    s.fmem_util_pct = kNan;
  }
  return states;
}

std::vector<NodeResult> ClusterSim::run_epoch(const std::vector<std::size_t>& assignment,
                                              Duration window,
                                              experiments::ParallelRunner* runner,
                                              std::vector<NodeFailover>* failover,
                                              const faults::ClusterFaultPlan* plan) {
  // Fold the routed tenants into per-node demand on the calling thread, in
  // tenant order, before any worker starts.
  std::vector<NodeResult> out(static_cast<std::size_t>(cfg_.nodes));
  for (int n = 0; n < cfg_.nodes; ++n) out[static_cast<std::size_t>(n)].node_id = n;
  for (std::size_t t = 0; t < assignment.size(); ++t) {
    if (assignment[t] == kUnplaced) continue;  // queued: routed nowhere this epoch
    NodeResult& nr = out[assignment[t]];
    nr.offered_krps += tenants_[t].demand_krps;
    nr.assigned_footprint += tenants_[t].footprint;
    nr.tenants += 1;
  }

  std::vector<experiments::RunSpec> specs;
  specs.reserve(out.size());
  const bool keep_metrics = cfg_.keep_node_metrics;
  const Duration settle = cfg_.settle;
  for (NodeResult& nr : out) {
    NodeFailover* f =
        failover != nullptr ? &(*failover)[static_cast<std::size_t>(nr.node_id)] : nullptr;
    if (f != nullptr && f->down) {
      // Crashed: no shard at all. The routed demand stays in the NodeResult
      // and is counted as violated by the aggregation.
      nr.ran = false;
      nr.p99_ms = kNan;
      nr.slo_violation_pct = kNan;
      nr.fmem_util_pct = kNan;
      continue;
    }
    const double straggle =
        (f != nullptr && f->straggler && plan != nullptr) ? plan->straggler_intensity : 0.0;
    specs.push_back(
        {"node" + std::to_string(nr.node_id) + "@" + std::to_string(nr.offered_krps) + "krps",
         [this, &nr, f, straggle, settle, window, keep_metrics](obs::RunContext& ctx) {
           // A straggler runs its whole epoch — checkpoint replay included —
           // under an in-node fault storm; the epoch is not checkpointed.
           if (straggle > 0.0) ctx.install_faults(faults::FaultPlan::storm(straggle));
           std::unique_ptr<ColocationSim> sim;
           bool bootstrap = true;
           if (f != nullptr && f->has_checkpoint) {
             // Continuing node or warm restart: bit-exact state replay.
             sim = ColocationSim::restore(f->checkpoint, &ctx);
             bootstrap = false;
           } else {
             SimConfig ncfg = cfg_.node;
             ncfg.seed = node_seeds_[static_cast<std::size_t>(nr.node_id)];
             sim = std::make_unique<ColocationSim>(ncfg, &ctx);
             // Cold restart: straight into traffic with every page cold.
             if (f != nullptr && f->cold_pending) bootstrap = false;
           }
           const LoadPattern pattern = LoadPattern::constant(nr.offered_krps * 1000.0);
           if (bootstrap && settle > 0) sim->run(pattern, settle, /*measure=*/false);
           sim->reset_stats();
           sim->run(pattern, window, /*measure=*/true);
           nr.sim = sim->result();

           // Export the node's health through its own metrics registry —
           // these gauges are the telemetry the cluster-level balancer sees;
           // NodeResult reads them back from the registry rather than from
           // the SimResult so the flow is the one production would have.
           obs::MetricsRegistry& reg = ctx.metrics();
           reg.gauge(obs::names::kClusterNodeP99Ms).set(nr.sim.lc_p99_ms);
           reg.gauge(obs::names::kClusterNodeSloViolationPct)
               .set(100.0 * nr.sim.slo_violation_rate);
           reg.gauge(obs::names::kClusterNodeFmemUtilPct).set(node_fmem_util_pct(nr.sim));
           reg.gauge(obs::names::kClusterNodeOfferedRps).set(nr.offered_krps * 1000.0);
           reg.gauge(obs::names::kClusterNodeTenants).set(static_cast<double>(nr.tenants));
           nr.p99_ms = gauge_value(ctx, obs::names::kClusterNodeP99Ms);
           nr.slo_violation_pct = gauge_value(ctx, obs::names::kClusterNodeSloViolationPct);
           nr.fmem_util_pct = gauge_value(ctx, obs::names::kClusterNodeFmemUtilPct);
           if (keep_metrics) {
             std::ostringstream dump;
             ctx.metrics().write_csv(dump);
             nr.metrics_csv = dump.str();
           }
           if (f != nullptr) {
             f->fresh_checkpoint = sim->snapshot();
             f->fresh_valid = true;
           }
         }});
  }

  if (runner != nullptr) {
    runner->run_all(specs);
  } else {
    // Serial reference path: a one-job runner executes every spec inline on
    // this thread through the exact same private-context machinery, so the
    // serial and fanned paths cannot drift.
    experiments::ParallelRunner serial(1);
    serial.run_all(specs);
  }

  obs::MetricsRegistry& reg = ctx_->metrics();
  reg.counter(obs::names::kClusterRounds).inc();
  double offered = 0;
  for (const NodeResult& nr : out) offered += nr.offered_krps;
  ctx_->trace().instant(obs::names::kEvClusterRound, obs::names::kCatSim, "nodes",
                        static_cast<double>(cfg_.nodes), "offered_krps", offered);
  return out;
}

ClusterResult ClusterSim::run(const PlacementPolicy& policy,
                              experiments::ParallelRunner* runner) {
  // An unset or inert plan keeps the classic structure: exactly two epochs
  // (probe then measured), every node boots fresh and settles, no failover
  // bookkeeping is even allocated, and — critically — no code below draws
  // from any RNG or touches any metric the two-round implementation did not,
  // so healthy output stays byte-identical to the pre-failure-domain sim.
  const bool active = cfg_.faults.has_value() && cfg_.faults->any();
  const faults::ClusterFaultPlan plan =
      active ? *cfg_.faults : faults::ClusterFaultPlan{};
  const int epochs = active ? std::max(2, plan.epochs) : 2;
  std::optional<faults::ClusterFaultInjector> injector;
  std::unique_ptr<PlacementPolicy> bin_rung;
  std::unique_ptr<PlacementPolicy> random_rung;
  std::vector<NodeFailover> fo;
  std::vector<TenantFailover> tf;
  if (active) {
    injector.emplace(plan);
    bin_rung = make_bin_packing_placement();
    random_rung = make_random_placement();
    fo.resize(static_cast<std::size_t>(cfg_.nodes));
    tf.resize(tenants_.size());
  }

  obs::MetricsRegistry& reg = ctx_->metrics();
  ClusterResult r;
  std::vector<std::size_t> prev_assignment;
  std::vector<NodeResult> prev_results;
  int total_moved = 0;
  int ladder_mode = 0;          // 0 native, 1 bin-packing, 2 random
  double epoch_sim_seconds = 0;  // active-plan node_sim_seconds accounting

  for (int e = 0; e < epochs; ++e) {
    const Duration window = e == epochs - 1 ? cfg_.measure_window : cfg_.probe_window;
    const double window_s = to_seconds(window);

    // --- fault injection (cluster thread, node-id order) ---------------------
    if (active) {
      for (int n = 0; n < cfg_.nodes; ++n) {
        NodeFailover& f = fo[static_cast<std::size_t>(n)];
        f.straggler = false;
        f.blacked_out = false;
        f.fresh_valid = false;
        if (f.down && e >= f.down_until) {
          f.down = false;
          if (plan.warm_restart && f.has_checkpoint) {
            ++r.warm_restarts;
            reg.counter(obs::names::kClusterFailoverWarmRestarts).inc();
          } else if (!plan.warm_restart) {
            // Cold restart: forget everything. The node boots fresh and goes
            // straight into traffic — the cold-page flood.
            f.checkpoint = SimCheckpoint{};
            f.has_checkpoint = false;
            f.cold_pending = true;
            ++r.cold_restarts;
            reg.counter(obs::names::kClusterFailoverColdRestarts).inc();
          }
          // Warm plan but no checkpoint yet (crashed before the first epoch
          // completed): a plain fresh boot with settle, counted as neither.
        }
        if (f.down) continue;  // still in the outage: no draws for this node
        if (injector->crash_node(e)) {
          f.down = true;
          f.down_until = e + std::max(1, plan.outage_epochs);
          ++r.node_crashes;
          reg.counter(obs::names::kFaultNodeCrashes).inc();
          ctx_->trace().instant(obs::names::kEvNodeFault, obs::names::kCatSim, "node",
                                static_cast<double>(n), "kind", /*crash=*/0.0);
          continue;  // crash wins: no straggler/blackout draw this epoch
        }
        if (injector->straggle_node(e)) {
          f.straggler = true;
          ++r.node_stragglers;
          reg.counter(obs::names::kFaultNodeStragglers).inc();
          ctx_->trace().instant(obs::names::kEvNodeFault, obs::names::kCatSim, "node",
                                static_cast<double>(n), "kind", /*straggler=*/1.0);
        }
        if (injector->blackout_node(e)) {
          f.blacked_out = true;
          ++r.node_blackouts;
          reg.counter(obs::names::kFaultNodeBlackouts).inc();
          ctx_->trace().instant(obs::names::kEvNodeFault, obs::names::kCatSim, "node",
                                static_cast<double>(n), "kind", /*blackout=*/2.0);
        }
      }
    }

    // --- candidate node states with last epoch's telemetry -------------------
    std::vector<NodeState> all = fresh_states();
    if (e > 0) {
      if (!active) {
        for (const NodeResult& nr : prev_results) {
          NodeState& s = all[static_cast<std::size_t>(nr.node_id)];
          s.p99_ms = nr.p99_ms;
          s.slo_violation_pct = nr.slo_violation_pct;
          s.fmem_util_pct = nr.fmem_util_pct;
        }
      } else {
        // Active path: the balancer sees what the watchdog received, which
        // goes stale across blackouts and outages rather than vanishing.
        for (int n = 0; n < cfg_.nodes; ++n) {
          NodeState& s = all[static_cast<std::size_t>(n)];
          const NodeFailover& f = fo[static_cast<std::size_t>(n)];
          s.p99_ms = f.p99_ms;
          s.slo_violation_pct = f.slo_violation_pct;
          s.fmem_util_pct = f.fmem_util_pct;
        }
      }
    }
    std::vector<NodeState> states;
    if (!active) {
      states = std::move(all);
    } else {
      // Suspected nodes are fenced out of placement — that is the evacuation
      // mechanism. If the watchdog suspects the whole fleet, fence nothing:
      // routing somewhere beats dropping everything.
      for (const NodeState& s : all)
        if (!fo[static_cast<std::size_t>(s.node_id)].suspected) states.push_back(s);
      if (states.empty()) states = std::move(all);
    }

    // --- degradation ladder (telemetry-aware placement only) -----------------
    const PlacementPolicy* effective = &policy;
    if (active && e > 0 && std::string(policy.name()) == "telemetry") {
      int blind = 0;
      for (const NodeState& s : states)
        if (fo[static_cast<std::size_t>(s.node_id)].missed_exports > 0) ++blind;
      const double coverage =
          states.empty() ? 0.0 : static_cast<double>(blind) / static_cast<double>(states.size());
      int mode = 0;
      if (coverage >= plan.degrade_random_coverage)
        mode = 2;
      else if (coverage >= plan.degrade_bin_packing_coverage)
        mode = 1;
      if (mode != ladder_mode) {
        ladder_mode = mode;
        reg.gauge(obs::names::kClusterFailoverPlacementMode)
            .set(static_cast<double>(ladder_mode));
        ctx_->trace().instant(obs::names::kEvClusterFailover, obs::names::kCatSim, "epoch",
                              static_cast<double>(e), "placement_mode",
                              static_cast<double>(ladder_mode));
      }
    }
    if (ladder_mode == 1) effective = bin_rung.get();
    if (ladder_mode == 2) effective = random_rung.get();

    // --- placement (tenant order) with admission control ---------------------
    Rng rng(e == 0 ? placement_seed_
                   : placement_seed_ ^ (0xC1D5'7E11'5EEDull * static_cast<std::uint64_t>(e)));
    std::vector<std::size_t> assignment(tenants_.size(), kUnplaced);
    double placed = 0;
    int queued_now = 0;
    int evacuated = 0;
    double queued_krps = 0;
    for (std::size_t t = 0; t < tenants_.size(); ++t) {
      const TenantStream& tenant = tenants_[t];
      if (active && tf[t].queued && e < tf[t].retry_at) {
        ++queued_now;  // still waiting out the backoff
        queued_krps += tenant.demand_krps;
        continue;
      }
      if (active && tf[t].queued) {
        ++r.failover_retries;
        reg.counter(obs::names::kClusterFailoverRetries).inc();
      }
      std::size_t chosen = effective->place(tenant, states, rng);
      if (chosen >= states.size())
        throw std::logic_error(std::string("PlacementPolicy ") + effective->name() +
                               " returned node index out of range");
      if (active) {
        TenantFailover& tfo = tf[t];
        if (states[chosen].projected_utilization(tenant.demand_krps) >
            plan.admission_max_utilization) {
          // Refused: fall back to the least-loaded candidate (ties to the
          // lowest node id via strict <).
          std::size_t best = 0;
          double best_util = std::numeric_limits<double>::infinity();
          for (std::size_t i = 0; i < states.size(); ++i) {
            const double u = states[i].projected_utilization(tenant.demand_krps);
            if (u < best_util) {
              best_util = u;
              best = i;
            }
          }
          if (best_util > plan.admission_max_utilization) {
            // Nowhere to land: queue with capped exponential backoff. Never
            // silently dropped — the lost demand is charged to compliance.
            const int cap = std::max(1, plan.max_backoff_epochs);
            tfo.backoff = tfo.backoff == 0 ? 1 : std::min(2 * tfo.backoff, cap);
            tfo.retry_at = e + tfo.backoff;
            if (tfo.last_node != kUnplaced &&
                fo[tfo.last_node].suspected) {
              ++evacuated;  // evacuated off a suspected node, landing pending
              ++r.evacuations;
              reg.counter(obs::names::kClusterFailoverEvacuations).inc();
            }
            tfo.queued = true;
            tfo.last_node = kUnplaced;
            ++queued_now;
            queued_krps += tenant.demand_krps;
            continue;
          }
          chosen = best;
        }
        const std::size_t node_id = static_cast<std::size_t>(states[chosen].node_id);
        if (tfo.last_node != kUnplaced && tfo.last_node != node_id &&
            fo[tfo.last_node].suspected) {
          ++evacuated;
          ++r.evacuations;
          reg.counter(obs::names::kClusterFailoverEvacuations).inc();
        }
        tfo.queued = false;
        tfo.backoff = 0;
        tfo.last_node = node_id;
        assignment[t] = node_id;
      } else {
        assignment[t] = static_cast<std::size_t>(states[chosen].node_id);
      }
      NodeState& s = states[chosen];
      s.assigned_krps += tenant.demand_krps;
      s.assigned_footprint += tenant.footprint;
      s.tenants += 1;
      placed += 1;
    }
    reg.counter(obs::names::kClusterPlacements).inc(placed);

    // --- rebalance accounting ------------------------------------------------
    if (e > 0) {
      for (std::size_t t = 0; t < assignment.size(); ++t)
        if (prev_assignment[t] != kUnplaced && assignment[t] != kUnplaced &&
            prev_assignment[t] != assignment[t])
          ++total_moved;
    }
    prev_assignment = assignment;

    // --- simulate the epoch --------------------------------------------------
    std::vector<NodeResult> results = run_epoch(assignment, window, runner,
                                                active ? &fo : nullptr,
                                                active ? &plan : nullptr);

    // --- checkpoint merge + simulated-time accounting (active only) ----------
    if (active) {
      for (int n = 0; n < cfg_.nodes; ++n) {
        NodeFailover& f = fo[static_cast<std::size_t>(n)];
        if (f.down) continue;
        // What this node actually simulated: checkpoint replay or settle
        // (cold restarts get neither), plus the epoch window.
        epoch_sim_seconds += window_s;
        if (f.has_checkpoint)
          epoch_sim_seconds += to_seconds(f.checkpoint.replay_time());
        else if (!f.cold_pending)
          epoch_sim_seconds += to_seconds(cfg_.settle);
        f.cold_pending = false;
        // A straggler epoch ran under an in-node storm; keep the last clean
        // checkpoint so a later warm restart replays uncontaminated history.
        if (f.fresh_valid && !f.straggler) {
          f.checkpoint = std::move(f.fresh_checkpoint);
          f.has_checkpoint = true;
        }
      }
    }

    // --- health watchdog (missed-export hysteresis) --------------------------
    int alive = cfg_.nodes;
    int crashed_now = 0, straggler_now = 0, blackout_now = 0, suspected_now = 0;
    if (active) {
      alive = 0;
      for (int n = 0; n < cfg_.nodes; ++n) {
        NodeFailover& f = fo[static_cast<std::size_t>(n)];
        const NodeResult& nr = results[static_cast<std::size_t>(n)];
        const bool exported = !f.down && !f.blacked_out;
        if (exported) {
          f.p99_ms = nr.p99_ms;
          f.slo_violation_pct = nr.slo_violation_pct;
          f.fmem_util_pct = nr.fmem_util_pct;
          f.missed_exports = 0;
          ++f.clean_exports;
          if (f.suspected && f.clean_exports >= plan.readmit_after) {
            f.suspected = false;
            ctx_->trace().instant(obs::names::kEvClusterFailover, obs::names::kCatSim,
                                  "node", static_cast<double>(n), "suspected", 0.0);
          }
        } else {
          f.clean_exports = 0;
          ++f.missed_exports;
          if (!f.suspected && f.missed_exports >= plan.suspect_after) {
            f.suspected = true;
            ctx_->trace().instant(obs::names::kEvClusterFailover, obs::names::kCatSim,
                                  "node", static_cast<double>(n), "suspected", 1.0);
          }
        }
        if (f.down)
          ++crashed_now;
        else
          ++alive;
        if (f.straggler) ++straggler_now;
        if (f.blacked_out) ++blackout_now;
        if (f.suspected) ++suspected_now;
      }
      reg.gauge(obs::names::kClusterFailoverSuspectedNodes)
          .set(static_cast<double>(suspected_now));
      reg.gauge(obs::names::kClusterFailoverQueuedTenants)
          .set(static_cast<double>(queued_now));
    }

    // --- per-epoch fleet series ----------------------------------------------
    EpochStats es;
    es.epoch = e;
    es.window_s = window_s;
    es.alive_nodes = alive;
    es.crashed_nodes = crashed_now;
    es.straggler_nodes = straggler_now;
    es.blackout_nodes = blackout_now;
    es.suspected_nodes = suspected_now;
    es.evacuated_tenants = evacuated;
    es.queued_tenants = queued_now;
    es.placement_mode = ladder_mode;
    double ereq = 0, eviol = 0, ecomp = 0;
    for (const NodeResult& nr : results) {
      es.offered_krps += nr.offered_krps;
      if (nr.ran) {
        const double reqs = static_cast<double>(nr.sim.lc_completed);
        ereq += reqs;
        eviol += nr.sim.slo_violation_rate * reqs;
        ecomp += reqs;
      } else {
        // Demand routed to a dead node: every one of those requests failed.
        const double lost = nr.offered_krps * 1000.0 * window_s;
        ereq += lost;
        eviol += lost;
      }
    }
    if (queued_krps > 0) {
      // Queued tenants' demand was never served; charge it as violated.
      es.offered_krps += queued_krps;
      const double lost = queued_krps * 1000.0 * window_s;
      ereq += lost;
      eviol += lost;
    }
    es.completed_krps = ecomp / window_s / 1000.0;
    es.slo_compliance_pct = ereq > 0 ? 100.0 * (1.0 - eviol / ereq) : 100.0;
    r.epochs.push_back(es);
    if (active)
      ctx_->trace().instant(obs::names::kEvClusterEpoch, obs::names::kCatSim, "epoch",
                            static_cast<double>(e), "slo_compliance_pct",
                            es.slo_compliance_pct);
    prev_results = std::move(results);
  }

  r.nodes = std::move(prev_results);
  r.rebalanced_tenants = total_moved;

  // Fleet aggregates over the final (measured) epoch, folded in node-id
  // order. Down-node and still-queued demand is charged as violated, so a
  // policy cannot improve its compliance by losing servers or tenants.
  double requests = 0, violations = 0, completed = 0, util_sum = 0;
  const double measure_s = to_seconds(cfg_.measure_window);
  int ran_nodes = 0;
  std::vector<double> p99s;
  p99s.reserve(r.nodes.size());
  for (const NodeResult& nr : r.nodes) {
    r.offered_krps += nr.offered_krps;
    if (!nr.ran) {
      const double lost = nr.offered_krps * 1000.0 * measure_s;
      requests += lost;
      violations += lost;
      continue;
    }
    ++ran_nodes;
    const double reqs = static_cast<double>(nr.sim.lc_completed);
    requests += reqs;
    violations += nr.sim.slo_violation_rate * reqs;
    completed += reqs;
    util_sum += nr.fmem_util_pct;
    r.max_p99_ms = std::max(r.max_p99_ms, nr.p99_ms);
    p99s.push_back(nr.p99_ms);
    if (nr.slo_violation_pct > 1.0) ++r.overloaded_nodes;
  }
  if (active) {
    for (std::size_t t = 0; t < tf.size(); ++t) {
      if (!tf[t].queued) continue;
      ++r.unplaced_tenants;
      r.offered_krps += tenants_[t].demand_krps;
      const double lost = tenants_[t].demand_krps * 1000.0 * measure_s;
      requests += lost;
      violations += lost;
    }
  }
  r.completed_krps = completed / measure_s / 1000.0;
  r.slo_compliance_pct = requests > 0 ? 100.0 * (1.0 - violations / requests) : 100.0;
  r.fmem_util_pct = ran_nodes > 0 ? util_sum / static_cast<double>(ran_nodes) : 0.0;
  if (!p99s.empty()) {
    std::sort(p99s.begin(), p99s.end());
    const std::size_t idx = static_cast<std::size_t>(
        std::ceil(0.99 * static_cast<double>(p99s.size()))) - 1;
    r.p99_of_p99_ms = p99s[std::min(idx, p99s.size() - 1)];
  }

  if (!active) {
    const double round_sim_seconds = to_seconds(cfg_.settle + cfg_.probe_window) +
                                     to_seconds(cfg_.settle + cfg_.measure_window);
    r.node_sim_seconds = static_cast<double>(cfg_.nodes) * round_sim_seconds;
  } else {
    r.node_sim_seconds = epoch_sim_seconds;
  }
  r.sim_steps = static_cast<std::uint64_t>(r.node_sim_seconds / to_seconds(cfg_.node.tick));

  reg.counter(obs::names::kClusterRebalancedTenants).inc(static_cast<double>(total_moved));
  reg.gauge(obs::names::kClusterOfferedRps).set(r.offered_krps * 1000.0);
  reg.gauge(obs::names::kClusterSloCompliancePct).set(r.slo_compliance_pct);
  reg.gauge(obs::names::kClusterTailP99Ms).set(r.max_p99_ms);
  reg.gauge(obs::names::kClusterFmemUtilPct).set(r.fmem_util_pct);
  if (active) reg.counter(obs::names::kClusterEpochs).inc(static_cast<double>(epochs));
  return r;
}

}  // namespace mtat::cluster
