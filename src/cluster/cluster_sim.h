// Fleet-scale simulation: N tiered-memory nodes behind a tenant load balancer.
//
// ClusterSim is the sharded layer above ColocationSim (ROADMAP item 2): each
// of cfg.nodes simulated servers wraps its own complete ColocationSim — own
// tiered memory, migration engine, telemetry, LC queue, BE fleet, and
// per-node placement policy — executed as one experiments::ParallelRunner
// spec with a pre-seeded private obs::RunContext, so shards run on however
// many workers MTAT_JOBS grants yet merge deterministically (bit-identical
// results for jobs=1 vs jobs=N, the PR 5/6 discipline).
//
// On top of the shards sits a cluster-level open-loop load balancer: the
// cluster's tenant request streams (scaled Poisson aggregates, generated
// once per seed so every placement policy is judged on the identical tenant
// population) are routed to nodes by a pluggable cluster::PlacementPolicy.
// run() executes an epoch loop: each epoch re-places the full tenant set
// (epoch 0 with static information only, later epochs with the
// `cluster.node_*` telemetry each node exported last epoch), simulates every
// node for the epoch window, and harvests telemetry. Without a fault plan
// the loop has exactly two epochs — the classic probe round then measured
// round, byte-identical to the pre-failure-domain ClusterSim — and the final
// epoch always runs cfg.measure_window to produce the reported aggregates.
//
// With an active ClusterFaultPlan (DESIGN.md §17) the loop becomes the
// fleet-level failure domain: a seed-deterministic injector may crash,
// degrade (straggler), or blind (telemetry blackout) nodes per epoch; a
// cluster health watchdog turns missed exports into suspicion with a
// 3-down/5-up hysteresis ladder mirroring MtatPolicy's; suspected nodes are
// excluded from placement so their tenants evacuate through the policy,
// under admission control with capped exponential backoff (unplaceable
// tenants queue and retry — never silently dropped); crashed nodes restart
// after the configured outage, warm from a deterministic
// ColocationSim::snapshot() checkpoint or cold into a cold-page flood; and
// telemetry-aware placement degrades bin-packing → random as blackout
// coverage rises.
//
// Every policy pays for every epoch whether or not it reads the telemetry,
// so the comparison in bench/ext_cluster_slo.cc is simulate-time fair.
//
// Determinism contract: tenant demands/footprints, per-node seeds, and the
// placement RNG stream are all drawn up front, in a fixed order, from
// cfg.seed; fault draws happen on the cluster thread in node-id order from
// the plan's own per-category streams; node specs write into disjoint result
// slots; every aggregate is folded in node-id order. Nothing consults worker
// scheduling, so the whole ClusterResult — including the per-node metric
// dumps — is a pure function of (config, policy).
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cluster/placement.h"
#include "faults/cluster_fault_plan.h"
#include "obs/run_context.h"
#include "sim/colocation_sim.h"
#include "sim/experiments.h"

namespace mtat::cluster {

struct ClusterConfig {
  int nodes = 100;
  /// Per-node platform template (memory geometry, LC workload, BE fleet,
  /// node-level tiering policy). Each node clones it and only the seed
  /// differs; the offered load comes from the tenants routed to the node.
  SimConfig node;
  /// Static per-node serving-capacity estimate handed to the placement
  /// policies (e.g. the measured FMEM_ALL peak of the node template).
  double node_capacity_krps = 8.0;
  /// Tenant streams to route; 0 selects four per node.
  int tenants = 0;
  /// Aggregate tenant demand as a fraction of total fleet capacity
  /// (nodes * node_capacity_krps). Per-tenant demands are exponential
  /// weights normalized to this total, so a fleet always carries the same
  /// load whatever the tenant count.
  double target_utilization = 0.6;
  /// Mean tenant FMem working-set estimate as a fraction of node FMem. The
  /// default makes the tenant population's total footprint roughly equal the
  /// fleet's total FMem at the default four tenants per node, so capacity
  /// packing has to spread across the whole fleet rather than degenerately
  /// piling every tenant onto the first few nodes.
  double footprint_mean_fraction = 0.25;
  Duration settle = seconds(2);         ///< unmeasured warmup before each round
  Duration probe_window = seconds(2);   ///< round-1 telemetry window
  Duration measure_window = seconds(5); ///< round-2 measured window
  /// Retain each node's full metrics registry as a CSV dump in
  /// NodeResult::metrics_csv (determinism tests); off by default — a
  /// hundreds-of-nodes fleet would otherwise carry hundreds of dumps.
  bool keep_node_metrics = false;
  /// Fleet-level failure domain (DESIGN.md §17). Unset or inert
  /// (!plan.any()): the classic two-epoch run, byte-identical to the
  /// pre-failure-domain ClusterSim. Active: run() loops plan.epochs epochs
  /// with node crash/straggler/blackout injection, the health watchdog,
  /// tenant evacuation, and checkpoint-based restarts.
  std::optional<faults::ClusterFaultPlan> faults;
  std::uint64_t seed = 42;
};

/// One node's slice of a measured round.
struct NodeResult {
  int node_id = 0;
  int tenants = 0;
  double offered_krps = 0;
  Bytes assigned_footprint = 0;
  SimResult sim;  ///< the node's full ColocationSim aggregates
  // The `cluster.node_*` gauges as read back from the node's registry.
  double p99_ms = 0;
  double slo_violation_pct = 0;
  double fmem_util_pct = 0;
  std::string metrics_csv;  ///< only when cfg.keep_node_metrics
  /// False when the node was down for the whole epoch (active fault plans
  /// only): its sim/telemetry fields are then meaningless (NaN gauges), and
  /// its routed demand counts as violated in the fleet aggregates.
  bool ran = true;
};

/// Per-epoch fleet aggregates — two entries for a healthy run (probe then
/// measured), plan.epochs entries under an active fault plan. The
/// fault-tolerance bench derives storm compliance and time-to-recover from
/// this series.
struct EpochStats {
  int epoch = 0;
  double window_s = 0;
  int alive_nodes = 0;       ///< nodes that simulated this epoch
  int crashed_nodes = 0;     ///< nodes down this epoch
  int straggler_nodes = 0;   ///< nodes degraded by an in-node fault storm
  int blackout_nodes = 0;    ///< nodes whose telemetry export was lost
  int suspected_nodes = 0;   ///< watchdog-suspected after this epoch
  int evacuated_tenants = 0; ///< tenants moved off suspected nodes
  int queued_tenants = 0;    ///< unplaceable tenants awaiting backoff retry
  int placement_mode = 0;    ///< ladder rung: 0 native, 1 bin-packing, 2 random
  double offered_krps = 0;   ///< total tenant demand, placed or queued
  double completed_krps = 0;
  /// Offered-weighted compliance: demand routed to dead nodes or left queued
  /// counts as violated, so losing nodes cannot improve the number.
  double slo_compliance_pct = 0;
};

/// Fleet aggregates over the measured round, all folded in node-id order.
struct ClusterResult {
  std::vector<NodeResult> nodes;
  double offered_krps = 0;         ///< total demand routed
  double completed_krps = 0;       ///< total completion rate observed
  double slo_compliance_pct = 0;   ///< request-weighted across the fleet
  double max_p99_ms = 0;           ///< worst node ("tail of tails")
  double p99_of_p99_ms = 0;        ///< 99th percentile across node P99s
  double fmem_util_pct = 0;        ///< mean node fast-tier utilization
  int overloaded_nodes = 0;        ///< nodes over 1% SLO violations
  int rebalanced_tenants = 0;      ///< placements that moved between rounds
  /// Simulated node-time the run consumed (every epoch, settle and
  /// checkpoint replay included): the denominator-free work measure
  /// bench/perf_cluster.cc rates against wall time.
  double node_sim_seconds = 0;
  std::uint64_t sim_steps = 0;     ///< total node ticks executed

  // --- failure-domain outcomes (zero for healthy runs) ---------------------
  std::vector<EpochStats> epochs;  ///< per-epoch fleet series, epoch order
  int node_crashes = 0;            ///< crash events injected
  int node_stragglers = 0;         ///< straggler epochs injected
  int node_blackouts = 0;          ///< blackout epochs injected
  int warm_restarts = 0;           ///< checkpoint-replay restarts
  int cold_restarts = 0;           ///< from-scratch restarts (cold-page flood)
  int evacuations = 0;             ///< tenants moved off suspected nodes
  int failover_retries = 0;        ///< queued-tenant placement retries
  int unplaced_tenants = 0;        ///< tenants still queued when the run ended
};

class ClusterSim {
 public:
  /// `ctx` is the cluster-level observability context (fleet gauges under
  /// `cluster.*`, round trace events); null makes the sim own one, exactly
  /// as ColocationSim does. Tenants are generated here, from cfg.seed, so
  /// several runs over the same ClusterSim see one tenant population.
  explicit ClusterSim(const ClusterConfig& cfg, obs::RunContext* ctx = nullptr);

  ClusterSim(const ClusterSim&) = delete;
  ClusterSim& operator=(const ClusterSim&) = delete;

  /// Execute the epoch loop under `policy` (two epochs healthy, plan.epochs
  /// under an active fault plan). `runner` fans the node shards across its
  /// workers; null runs them serially (the bit-identical reference path).
  /// run() drives `runner->run_all` itself, so it must be called from the
  /// top level, never from inside a RunSpec — run_all is non-reentrant and
  /// throws std::logic_error if nested.
  ClusterResult run(const PlacementPolicy& policy,
                    experiments::ParallelRunner* runner = nullptr);

  const ClusterConfig& config() const { return cfg_; }
  const std::vector<TenantStream>& tenants() const { return tenants_; }
  obs::RunContext& run_context() { return *ctx_; }

 private:
  struct NodeFailover;    // per-node outage/watchdog/checkpoint state (.cc)
  struct TenantFailover;  // per-tenant backoff/queue state (.cc)

  std::vector<NodeState> fresh_states() const;
  /// Simulate one epoch: every up node runs (settle | checkpoint replay) +
  /// `window` at its routed load and exports its `cluster.node_*` gauges;
  /// outcomes land in node-id-ordered NodeResults. `failover` null = healthy
  /// path (every node boots fresh and settles — the classic round); non-null
  /// = the failure domain (down nodes skip, warm restarts replay their
  /// checkpoint, cold restarts skip settle, stragglers run under an in-node
  /// storm, and each up node's fresh checkpoint is captured).
  std::vector<NodeResult> run_epoch(const std::vector<std::size_t>& assignment,
                                    Duration window,
                                    experiments::ParallelRunner* runner,
                                    std::vector<NodeFailover>* failover,
                                    const faults::ClusterFaultPlan* plan);

  ClusterConfig cfg_;
  std::unique_ptr<obs::RunContext> owned_ctx_;
  obs::RunContext* ctx_;
  std::vector<TenantStream> tenants_;
  std::vector<std::uint64_t> node_seeds_;
  std::uint64_t placement_seed_ = 0;
};

}  // namespace mtat::cluster
