#include "cluster/placement.h"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace mtat::cluster {

namespace {

class RandomPlacement final : public PlacementPolicy {
 public:
  const char* name() const override { return "random"; }

  std::size_t place(const TenantStream&, const std::vector<NodeState>& nodes,
                    Rng& rng) const override {
    return static_cast<std::size_t>(rng.next_below(nodes.size()));
  }
};

/// Best-fit on fast-tier slack: host the tenant on the node whose remaining
/// FMem after packing it is smallest but non-negative (tightest fit). When no
/// node can hold the footprint, fall back to the node with the most remaining
/// FMem — overflow lands where it hurts least. Request rate is deliberately
/// ignored: this is the capacity-centric placer the telemetry policy is
/// measured against.
class BinPackingPlacement final : public PlacementPolicy {
 public:
  const char* name() const override { return "bin_packing"; }

  std::size_t place(const TenantStream& tenant, const std::vector<NodeState>& nodes,
                    Rng&) const override {
    std::size_t best_fit = nodes.size();
    double best_slack = std::numeric_limits<double>::infinity();
    std::size_t most_room = 0;
    double max_room = -std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      const NodeState& n = nodes[i];
      const double room = static_cast<double>(n.fmem_capacity) -
                          static_cast<double>(n.assigned_footprint);
      if (room > max_room) {  // strict >: ties resolve to the lowest node id
        max_room = room;
        most_room = i;
      }
      const double slack = room - static_cast<double>(tenant.footprint);
      if (slack >= 0 && slack < best_slack) {
        best_slack = slack;
        best_fit = i;
      }
    }
    return best_fit < nodes.size() ? best_fit : most_room;
  }
};

/// Load-balance on observed node health. Score = projected utilization,
/// inflated by the violation fraction the node reported last round and by a
/// bounded P99 term, plus a mild fast-tier-pressure term; lowest score wins.
/// Before any telemetry exists (round one), the NaN fields contribute
/// nothing and the policy degrades to least-projected-utilization — already
/// a stronger baseline than either alternative, which is the point of
/// feeding the balancer from the node registries at all.
class TelemetryPlacement final : public PlacementPolicy {
 public:
  const char* name() const override { return "telemetry"; }

  std::size_t place(const TenantStream& tenant, const std::vector<NodeState>& nodes,
                    Rng&) const override {
    std::size_t best = 0;
    double best_score = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      const NodeState& n = nodes[i];
      double score = n.projected_utilization(tenant.demand_krps);
      if (std::isfinite(n.slo_violation_pct)) score *= 1.0 + n.slo_violation_pct / 100.0;
      if (std::isfinite(n.p99_ms)) score += n.p99_ms / (1.0 + n.p99_ms);
      if (std::isfinite(n.fmem_util_pct)) score += 0.1 * n.fmem_util_pct / 100.0;
      if (score < best_score) {  // strict <: ties resolve to the lowest node id
        best_score = score;
        best = i;
      }
    }
    return best;
  }
};

}  // namespace

std::unique_ptr<PlacementPolicy> make_random_placement() {
  return std::make_unique<RandomPlacement>();
}

std::unique_ptr<PlacementPolicy> make_bin_packing_placement() {
  return std::make_unique<BinPackingPlacement>();
}

std::unique_ptr<PlacementPolicy> make_telemetry_placement() {
  return std::make_unique<TelemetryPlacement>();
}

std::unique_ptr<PlacementPolicy> make_placement(const std::string& name) {
  if (name == "random") return make_random_placement();
  if (name == "bin_packing") return make_bin_packing_placement();
  if (name == "telemetry") return make_telemetry_placement();
  throw std::invalid_argument("make_placement: unknown policy \"" + name +
                              "\" (expected random|bin_packing|telemetry)");
}

std::vector<std::string> all_placement_names() {
  return {"random", "bin_packing", "telemetry"};
}

}  // namespace mtat::cluster
