// Tenant placement policies for the fleet-scale cluster simulation.
//
// A cluster-level load balancer routes tenant request streams (scaled Poisson
// aggregates — the load-scaling substitution of DESIGN.md §1 applied to a
// fleet) onto simulated tiered-memory nodes. PlacementPolicy is the pluggable
// routing decision: given one tenant stream and the current view of every
// node, pick the node that hosts it. Three implementations span the design
// space the ROADMAP names:
//
//  * random        — uniform pick; the null hypothesis every serious policy
//                    must beat, and the only one that consults the RNG.
//  * bin_packing   — best-fit decreasing slack on FMem footprint: packs
//                    tenant working sets into the fast tier tightly, blind to
//                    request rate (the classic capacity-centric placer).
//  * telemetry     — load-balances on the per-node `cluster.node_*` gauges
//                    the previous round exported from each node's metrics
//                    registry (P99, SLO violations, FMem utilization); falls
//                    back to least-projected-utilization before any telemetry
//                    exists.
//
// Determinism contract: place() must be a pure function of (tenant, nodes,
// rng) — the caller presents nodes in node-id order and resolves ties by the
// lowest id, so a placement round is bit-reproducible for a given seed
// whatever thread later simulates each node.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/units.h"

namespace mtat::cluster {

/// One tenant request stream: an aggregate of many end users against one
/// logical store shard, Poisson at `demand_krps` (aggregates of independent
/// Poisson user streams are Poisson, which is what legitimizes folding
/// millions of users into a few hundred streams).
struct TenantStream {
  std::string name;
  double demand_krps = 0;  ///< offered request rate routed with this tenant
  Bytes footprint = 0;     ///< working-set estimate used by capacity packing
};

/// The load balancer's view of one node while a placement round runs. The
/// assigned_* fields accumulate as tenants are placed; the telemetry fields
/// are NaN until a simulation round has populated the node's
/// `cluster.node_*` gauges (obs/names.h).
struct NodeState {
  int node_id = 0;
  Bytes fmem_capacity = 0;        ///< fast-tier size (static)
  double capacity_krps = 0;       ///< estimated sustainable LC load (static)
  double assigned_krps = 0;       ///< demand routed here so far this round
  Bytes assigned_footprint = 0;   ///< tenant working sets packed here so far
  int tenants = 0;
  // Telemetry from the previous round, NaN before the first round.
  double p99_ms = 0;
  double slo_violation_pct = 0;
  double fmem_util_pct = 0;

  /// Projected load fraction if a stream of `krps` were added here.
  double projected_utilization(double krps) const {
    return capacity_krps > 0 ? (assigned_krps + krps) / capacity_krps
                             : assigned_krps + krps;
  }
};

/// Routing decision interface. Implementations must not keep state across
/// place() calls (the caller owns all accumulation via NodeState) so a
/// policy object can be reused across rounds and clusters.
class PlacementPolicy {
 public:
  virtual ~PlacementPolicy() = default;

  virtual const char* name() const = 0;

  /// Pick the node (index into `nodes`, which is ordered by node_id) that
  /// hosts `tenant`. `nodes` reflects every placement made earlier in the
  /// current round. `rng` is the round's dedicated stream; only the random
  /// policy draws from it.
  virtual std::size_t place(const TenantStream& tenant, const std::vector<NodeState>& nodes,
                            Rng& rng) const = 0;
};

std::unique_ptr<PlacementPolicy> make_random_placement();
std::unique_ptr<PlacementPolicy> make_bin_packing_placement();
std::unique_ptr<PlacementPolicy> make_telemetry_placement();

/// Factory by name ("random", "bin_packing", "telemetry"); throws
/// std::invalid_argument for anything else.
std::unique_ptr<PlacementPolicy> make_placement(const std::string& name);

/// All three, in reporting order.
std::vector<std::string> all_placement_names();

}  // namespace mtat::cluster
