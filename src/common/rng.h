// Deterministic pseudo-random number generation and the distributions used by
// the workload models and search algorithms.
//
// We use xoshiro256** (Blackman & Vigna) rather than std::mt19937 because it is
// faster, has a tiny state, and gives us bit-for-bit reproducible experiments
// across standard libraries. Every stochastic component in the simulator takes
// an explicit Rng (or a seed) — there is no global RNG.
#pragma once

#include <cmath>
#include <cstdint>

namespace mtat {

/// xoshiro256** 1.0. Public-domain algorithm; all-zero state is invalid, so the
/// constructor seeds via splitmix64 which never produces it.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) {
    // splitmix64 seeding, as recommended by the xoshiro authors.
    std::uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9E3779B97F4A7C15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      s = z ^ (z >> 31);
    }
  }

  /// Uniform 64-bit value.
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound). bound must be > 0. Uses Lemire's
  /// multiply-shift rejection method (unbiased).
  std::uint64_t next_below(std::uint64_t bound) {
    // __uint128_t is supported by GCC/Clang on all 64-bit targets we build for.
    std::uint64_t x = next_u64();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = -bound % bound;
      while (lo < threshold) {
        x = next_u64();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t next_between(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(next_below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Bernoulli trial with probability p of returning true.
  bool next_bool(double p) { return next_double() < p; }

  /// Standard normal via Box–Muller (no cached spare; simplicity over speed).
  double next_gaussian() {
    double u1 = next_double();
    while (u1 <= 1e-300) u1 = next_double();
    const double u2 = next_double();
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  }

  /// Exponentially distributed value with the given rate (mean 1/rate).
  double next_exponential(double rate) {
    double u = next_double();
    while (u <= 1e-300) u = next_double();
    return -std::log(u) / rate;
  }

  /// Split off an independently-seeded child generator (for per-component RNGs).
  Rng split() { return Rng(next_u64() ^ 0xA5A5A5A5A5A5A5A5ull); }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  std::uint64_t state_[4];
};

/// Zipfian generator over [0, n) with parameter theta, using the
/// Gray et al. "quickly generating billion-record synthetic databases"
/// method (the same generator YCSB uses). theta in (0, 1); theta -> 0 is
/// uniform-ish, 0.99 is the YCSB default "zipfian".
class ZipfianGenerator {
 public:
  ZipfianGenerator(std::uint64_t n, double theta);

  std::uint64_t operator()(Rng& rng) const;

  std::uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  static double zeta(std::uint64_t n, double theta);

  std::uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
};

/// Scrambled Zipfian: Zipf ranks hashed over the keyspace so the "hot" items
/// are scattered rather than clustered at low ids (matches YCSB's
/// ScrambledZipfianGenerator, which matters for page-locality realism).
class ScrambledZipfianGenerator {
 public:
  ScrambledZipfianGenerator(std::uint64_t n, double theta) : zipf_(n, theta), n_(n) {}

  std::uint64_t operator()(Rng& rng) const {
    const std::uint64_t rank = zipf_(rng);
    return fnv1a64(rank) % n_;
  }

 private:
  static std::uint64_t fnv1a64(std::uint64_t v) {
    std::uint64_t h = 0xCBF29CE484222325ull;
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (i * 8)) & 0xFF;
      h *= 0x100000001B3ull;
    }
    return h;
  }

  ZipfianGenerator zipf_;
  std::uint64_t n_;
};

}  // namespace mtat
