// Walker alias method: O(1) sampling from an arbitrary discrete distribution.
//
// Used by the BE workload engine to draw telemetry samples from a kernel's
// page-access profile at simulation time (hundreds of thousands of draws per
// simulated second, so O(log n) inversion sampling would dominate the run).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "common/rng.h"

namespace mtat {

class AliasSampler {
 public:
  /// Builds the alias table from (unnormalized, non-negative) weights.
  /// At least one weight must be positive.
  explicit AliasSampler(const std::vector<double>& weights) {
    const std::size_t n = weights.size();
    if (n == 0) throw std::invalid_argument("AliasSampler: empty weights");
    double total = 0.0;
    for (double w : weights) {
      if (w < 0.0) throw std::invalid_argument("AliasSampler: negative weight");
      total += w;
    }
    if (total <= 0.0) throw std::invalid_argument("AliasSampler: all weights zero");
    prob_.resize(n);
    alias_.resize(n);
    // Scale to mean 1 and split into under/over-full columns.
    std::vector<double> scaled(n);
    std::vector<std::uint32_t> small, large;
    for (std::size_t i = 0; i < n; ++i) {
      scaled[i] = weights[i] * static_cast<double>(n) / total;
      (scaled[i] < 1.0 ? small : large).push_back(static_cast<std::uint32_t>(i));
    }
    while (!small.empty() && !large.empty()) {
      const std::uint32_t s = small.back();
      small.pop_back();
      const std::uint32_t l = large.back();
      prob_[s] = scaled[s];
      alias_[s] = l;
      scaled[l] -= 1.0 - scaled[s];
      if (scaled[l] < 1.0) {
        large.pop_back();
        small.push_back(l);
      }
    }
    for (std::uint32_t i : large) prob_[i] = 1.0;
    for (std::uint32_t i : small) prob_[i] = 1.0;  // numerical leftovers
    for (std::size_t i = 0; i < n; ++i)
      if (prob_[i] >= 1.0) alias_[i] = static_cast<std::uint32_t>(i);
  }

  /// Draw one index distributed according to the weights.
  std::uint32_t operator()(Rng& rng) const {
    const std::uint32_t col = static_cast<std::uint32_t>(rng.next_below(prob_.size()));
    return rng.next_double() < prob_[col] ? col : alias_[col];
  }

  std::size_t size() const { return prob_.size(); }

 private:
  std::vector<double> prob_;
  std::vector<std::uint32_t> alias_;
};

}  // namespace mtat
