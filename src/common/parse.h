// Checked string-to-number parsing.
//
// The atoi/atof family collapses every error to 0 ("--be=four" silently runs
// zero BE workloads) and std::sto* throws on bad input; both are banned by
// mtat_lint's unsafe-parse rule. These helpers wrap strtol/strtoull/strtod
// with full-string and range validation and return std::nullopt on anything
// that is not exactly one number.
#pragma once

#include <cerrno>
#include <cstdlib>
#include <limits>
#include <optional>
#include <string>

namespace mtat {

/// Parse `s` as a base-10 signed integer. The whole string must be consumed;
/// empty strings, trailing junk ("12x"), and out-of-range values fail.
inline std::optional<long long> parse_i64(const std::string& s) {
  if (s.empty()) return std::nullopt;
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(s.c_str(), &end, 10);
  if (errno == ERANGE || end != s.c_str() + s.size()) return std::nullopt;
  return v;
}

/// Parse `s` as a base-10 unsigned integer. Rejects a leading '-' (strtoull
/// would happily wrap it) as well as partial parses and overflow.
inline std::optional<unsigned long long> parse_u64(const std::string& s) {
  if (s.empty() || s[0] == '-') return std::nullopt;
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (errno == ERANGE || end != s.c_str() + s.size()) return std::nullopt;
  return v;
}

/// Parse `s` as an int, additionally checking the long long fits.
inline std::optional<int> parse_int(const std::string& s) {
  const auto v = parse_i64(s);
  if (!v || *v < std::numeric_limits<int>::min() || *v > std::numeric_limits<int>::max())
    return std::nullopt;
  return static_cast<int>(*v);
}

/// Parse `s` as a double. The whole string must be consumed; inf/nan spellings
/// are accepted (strtod semantics), overflow to ±HUGE_VAL fails.
inline std::optional<double> parse_double(const std::string& s) {
  if (s.empty()) return std::nullopt;
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (errno == ERANGE || end != s.c_str() + s.size()) return std::nullopt;
  return v;
}

}  // namespace mtat
