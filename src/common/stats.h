// Small statistics helpers: running mean/variance (Welford), EWMA, and a
// fixed-capacity sliding window used by controllers that react to recent
// telemetry.
#pragma once

#include <cmath>
#include <cstddef>
#include <deque>
#include <stdexcept>

namespace mtat {

/// Welford online mean/variance accumulator.
class RunningStat {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (n_ == 1 || x < min_) min_ = x;
    if (n_ == 1 || x > max_) max_ = x;
  }

  std::size_t count() const { return n_; }
  double mean() const { return mean_; }
  double variance() const { return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0; }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return min_; }
  double max() const { return max_; }

  void reset() { *this = RunningStat{}; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Exponentially weighted moving average. alpha is the weight of the newest
/// sample; the first sample initializes the average directly.
class Ewma {
 public:
  explicit Ewma(double alpha) : alpha_(alpha) {
    if (alpha <= 0.0 || alpha > 1.0) throw std::invalid_argument("Ewma: alpha in (0,1]");
  }

  void add(double x) {
    value_ = primed_ ? alpha_ * x + (1.0 - alpha_) * value_ : x;
    primed_ = true;
  }

  bool primed() const { return primed_; }
  double value() const { return value_; }
  void reset() { primed_ = false; value_ = 0.0; }

 private:
  double alpha_;
  double value_ = 0.0;
  bool primed_ = false;
};

/// Sliding window of the most recent N samples with O(1) mean queries.
class SlidingWindow {
 public:
  explicit SlidingWindow(std::size_t capacity) : capacity_(capacity) {
    if (capacity == 0) throw std::invalid_argument("SlidingWindow: capacity > 0");
  }

  void add(double x) {
    window_.push_back(x);
    sum_ += x;
    if (window_.size() > capacity_) {
      sum_ -= window_.front();
      window_.pop_front();
    }
  }

  std::size_t size() const { return window_.size(); }
  bool full() const { return window_.size() == capacity_; }
  double mean() const { return window_.empty() ? 0.0 : sum_ / static_cast<double>(window_.size()); }
  double back() const { return window_.back(); }

 private:
  std::size_t capacity_;
  std::deque<double> window_;
  double sum_ = 0.0;
};

}  // namespace mtat
