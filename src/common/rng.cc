#include "common/rng.h"

#include <stdexcept>

namespace mtat {

ZipfianGenerator::ZipfianGenerator(std::uint64_t n, double theta)
    : n_(n), theta_(theta) {
  if (n == 0) throw std::invalid_argument("ZipfianGenerator: n must be > 0");
  if (theta <= 0.0 || theta >= 1.0)
    throw std::invalid_argument("ZipfianGenerator: theta must be in (0, 1)");
  alpha_ = 1.0 / (1.0 - theta);
  zetan_ = zeta(n, theta);
  const double zeta2 = zeta(2, theta);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
         (1.0 - zeta2 / zetan_);
}

double ZipfianGenerator::zeta(std::uint64_t n, double theta) {
  double sum = 0.0;
  for (std::uint64_t i = 1; i <= n; ++i) sum += 1.0 / std::pow(static_cast<double>(i), theta);
  return sum;
}

std::uint64_t ZipfianGenerator::operator()(Rng& rng) const {
  const double u = rng.next_double();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  const auto v = static_cast<std::uint64_t>(
      static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return v >= n_ ? n_ - 1 : v;
}

}  // namespace mtat
