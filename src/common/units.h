// Time and size units used throughout the MTAT simulator.
//
// Simulated time is an integer count of nanoseconds (`SimTime`). All modules
// share this timebase; there is deliberately no wall-clock anywhere in the
// simulation so experiments are deterministic and arbitrarily compressible.
#pragma once

#include <cstdint>

namespace mtat {

/// Simulated time in nanoseconds since experiment start.
using SimTime = std::uint64_t;
/// A span of simulated time, in nanoseconds.
using Duration = std::uint64_t;

namespace time_literals {
constexpr Duration kNanosecond = 1;
constexpr Duration kMicrosecond = 1000 * kNanosecond;
constexpr Duration kMillisecond = 1000 * kMicrosecond;
constexpr Duration kSecond = 1000 * kMillisecond;
}  // namespace time_literals

constexpr Duration nanoseconds(std::uint64_t n) { return n; }
constexpr Duration microseconds(std::uint64_t n) { return n * time_literals::kMicrosecond; }
constexpr Duration milliseconds(std::uint64_t n) { return n * time_literals::kMillisecond; }
constexpr Duration seconds(std::uint64_t n) { return n * time_literals::kSecond; }

/// Convert a simulated duration to (floating) seconds, for rate math.
constexpr double to_seconds(Duration d) {
  return static_cast<double>(d) / static_cast<double>(time_literals::kSecond);
}

/// Byte-count type for memory capacities.
using Bytes = std::uint64_t;

constexpr Bytes operator""_KiB(unsigned long long n) { return n * 1024ull; }
constexpr Bytes operator""_MiB(unsigned long long n) { return n * 1024ull * 1024ull; }
constexpr Bytes operator""_GiB(unsigned long long n) { return n * 1024ull * 1024ull * 1024ull; }

/// The simulator's page size. 4 KiB mirrors the paper's base-page management
/// (the MEMTIS huge-page split/collapse machinery is out of scope; see DESIGN.md).
constexpr Bytes kPageSize = 4096;

constexpr std::uint64_t bytes_to_pages(Bytes b) { return (b + kPageSize - 1) / kPageSize; }
constexpr Bytes pages_to_bytes(std::uint64_t pages) { return pages * kPageSize; }

}  // namespace mtat
