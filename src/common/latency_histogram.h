// HDR-style log-linear latency histogram.
//
// Records nanosecond latencies with bounded (~3%) relative error and answers
// percentile queries (P50/P99/...) in O(#buckets). This is the measurement
// instrument behind every P99 number in the reproduction, standing in for the
// client-side latency measurement of YCSB/Mutilate/TailBench.
//
// Layout: values 0..63 get exact buckets; every octave above that is split
// into 32 linear sub-buckets keyed by the 5 bits below the most-significant
// bit, giving monotone boundaries and O(1) indexing via bit ops.
#pragma once

#include <cstdint>
#include <vector>

#include "common/units.h"

namespace mtat {

class LatencyHistogram {
 public:
  static constexpr int kExactValues = 64;       // values [0, 64) are exact
  static constexpr int kBucketsPerOctave = 32;  // linear sub-buckets per octave
  static constexpr int kNumBuckets = kExactValues + (64 - 6) * kBucketsPerOctave;

  LatencyHistogram() : counts_(kNumBuckets, 0) {}

  /// Record one latency observation (in nanoseconds).
  void record(Duration latency_ns) { record_n(latency_ns, 1); }

  /// Record `count` identical observations.
  void record_n(Duration latency_ns, std::uint64_t count) {
    if (count == 0) return;
    counts_[index_for(latency_ns)] += count;
    if (total_ == 0 || latency_ns < min_) min_ = latency_ns;
    if (latency_ns > max_) max_ = latency_ns;
    total_ += count;
    sum_ += latency_ns * count;
  }

  /// Value at the given percentile in [0, 100]. Returns 0 for an empty
  /// histogram. The returned value is the upper edge of the bucket containing
  /// the requested rank, so error is bounded by the bucket width (~3%).
  Duration percentile(double pct) const;

  /// Merge another histogram into this one.
  void merge(const LatencyHistogram& other);

  void reset();

  std::uint64_t count() const { return total_; }
  bool empty() const { return total_ == 0; }
  Duration max() const { return max_; }
  Duration min() const { return total_ ? min_ : 0; }
  double mean() const {
    return total_ ? static_cast<double>(sum_) / static_cast<double>(total_) : 0.0;
  }

  /// Bucket index for a value — exposed for tests.
  static std::size_t index_for(Duration v) {
    if (v < kExactValues) return static_cast<std::size_t>(v);
    const int msb = 63 - __builtin_clzll(v);
    return static_cast<std::size_t>(kExactValues) +
           static_cast<std::size_t>(msb - 6) * kBucketsPerOctave +
           ((v >> (msb - 5)) & (kBucketsPerOctave - 1));
  }

  /// Upper-edge representative value of a bucket — exposed for tests.
  static Duration value_for(std::size_t idx);

 private:
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
  std::uint64_t sum_ = 0;
  Duration max_ = 0;
  Duration min_ = 0;
};

}  // namespace mtat
