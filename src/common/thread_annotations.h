// Clang thread-safety analysis macros (lint v2 guarded-by support).
//
// Two enforcement layers share these annotations:
//  * clang builds with -Wthread-safety (the MTAT_THREAD_SAFETY CMake option,
//    run as its own CI lane) *prove* that every GUARDED_BY member is only
//    touched with its mutex held and every REQUIRES method is called under
//    the right lock;
//  * mtat_lint's guarded-by rule runs everywhere — GCC-only machines
//    included — and enforces the structural half: every mutex data member
//    must be referenced by at least one annotation in its class, so the
//    lock-to-data mapping is always written down.
//
// On compilers without the attributes (GCC) the macros compile away, so
// annotating costs nothing outside the clang lane.
//
// Usage:
//   class Cache {
//    public:
//     Value get(Key k) EXCLUDES(mu_);
//    private:
//     std::mutex mu_;
//     std::map<Key, Value> entries_ GUARDED_BY(mu_);
//   };
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define MTAT_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef MTAT_THREAD_ANNOTATION
#define MTAT_THREAD_ANNOTATION(x)  // not supported by this compiler
#endif

#define CAPABILITY(x) MTAT_THREAD_ANNOTATION(capability(x))
#define SCOPED_CAPABILITY MTAT_THREAD_ANNOTATION(scoped_lockable)
#define GUARDED_BY(x) MTAT_THREAD_ANNOTATION(guarded_by(x))
#define PT_GUARDED_BY(x) MTAT_THREAD_ANNOTATION(pt_guarded_by(x))
#define ACQUIRED_BEFORE(...) MTAT_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) MTAT_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
#define REQUIRES(...) MTAT_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) MTAT_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
#define ACQUIRE(...) MTAT_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) MTAT_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) MTAT_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) MTAT_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define RELEASE_GENERIC(...) MTAT_THREAD_ANNOTATION(release_generic_capability(__VA_ARGS__))
#define TRY_ACQUIRE(...) MTAT_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define TRY_ACQUIRE_SHARED(...) \
  MTAT_THREAD_ANNOTATION(try_acquire_shared_capability(__VA_ARGS__))
#define EXCLUDES(...) MTAT_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define ASSERT_CAPABILITY(x) MTAT_THREAD_ANNOTATION(assert_capability(x))
#define ASSERT_SHARED_CAPABILITY(x) MTAT_THREAD_ANNOTATION(assert_shared_capability(x))
#define RETURN_CAPABILITY(x) MTAT_THREAD_ANNOTATION(lock_returned(x))
#define NO_THREAD_SAFETY_ANALYSIS MTAT_THREAD_ANNOTATION(no_thread_safety_analysis)
