#include "common/latency_histogram.h"

namespace mtat {

Duration LatencyHistogram::value_for(std::size_t idx) {
  if (idx < kExactValues) return static_cast<Duration>(idx);
  const std::size_t rel = idx - kExactValues;
  const int octave = static_cast<int>(rel / kBucketsPerOctave);  // msb - 6
  const std::uint64_t sub = rel % kBucketsPerOctave;
  const int msb = octave + 6;
  const Duration lower = (Duration{1} << msb) + (sub << (msb - 5));
  return lower + (Duration{1} << (msb - 5)) - 1;
}

Duration LatencyHistogram::percentile(double pct) const {
  if (total_ == 0) return 0;
  if (pct <= 0.0) return min_;
  if (pct >= 100.0) return max_;
  // Rank of the requested percentile (1-based, ceil), per HdrHistogram.
  const auto target = static_cast<std::uint64_t>(pct / 100.0 * static_cast<double>(total_) + 0.9999);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    cumulative += counts_[i];
    if (cumulative >= target) {
      const Duration v = value_for(i);
      return v > max_ ? max_ : v;
    }
  }
  return max_;
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  if (other.total_ > 0) {
    if (total_ == 0 || other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
    total_ += other.total_;
    sum_ += other.sum_;
  }
}

void LatencyHistogram::reset() {
  std::fill(counts_.begin(), counts_.end(), 0);
  total_ = 0;
  sum_ = 0;
  max_ = 0;
  min_ = 0;
}

}  // namespace mtat
