// Minimal CSV emitter used by the benchmark harness to dump the data series
// behind each reproduced figure/table next to the binary's stdout report.
#pragma once

#include <fstream>
#include <initializer_list>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace mtat {

class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row.
  CsvWriter(const std::string& path, const std::vector<std::string>& columns)
      : out_(path), ncols_(columns.size()) {
    if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
    write_strings(columns);
  }

  /// Writes one row of numeric cells. Must match the header width.
  void row(const std::vector<double>& cells) {
    if (cells.size() != ncols_) throw std::invalid_argument("CsvWriter: column count mismatch");
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i) out_ << ',';
      out_ << format(cells[i]);
    }
    out_ << '\n';
  }

  /// Writes one row whose first cell is a label and the rest numeric.
  void row(const std::string& label, const std::vector<double>& cells) {
    row(std::vector<std::string>{label}, cells);
  }

  /// Writes one row with several leading label cells, then numeric cells.
  void row(const std::vector<std::string>& labels, const std::vector<double>& cells) {
    if (labels.size() + cells.size() != ncols_)
      throw std::invalid_argument("CsvWriter: column count mismatch");
    for (std::size_t i = 0; i < labels.size(); ++i) {
      if (i) out_ << ',';
      out_ << labels[i];
    }
    for (double c : cells) out_ << ',' << format(c);
    out_ << '\n';
  }

 private:
  static std::string format(double v) {
    std::ostringstream os;
    os.precision(10);
    os << v;
    return os.str();
  }

  void write_strings(const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i) out_ << ',';
      out_ << cells[i];
    }
    out_ << '\n';
  }

  std::ofstream out_;
  std::size_t ncols_;
};

}  // namespace mtat
