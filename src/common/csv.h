// Minimal CSV emitter used by the benchmark harness to dump the data series
// behind each reproduced figure/table next to the binary's stdout report.
//
// Every write is checked: a full disk, a vanished directory, or a permission
// flip mid-run raises std::runtime_error naming the file instead of silently
// truncating the dataset (an ofstream swallows errors into its state bits,
// and a bench that "succeeded" with a half-written CSV is worse than one
// that failed).
#pragma once

#include <fstream>
#include <initializer_list>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace mtat {

class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row. Throws
  /// std::runtime_error when the file cannot be opened or the header cannot
  /// be written.
  CsvWriter(const std::string& path, const std::vector<std::string>& columns)
      : out_(path), path_(path), ncols_(columns.size()) {
    if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
    write_strings(columns);
    check("write header to");
  }

  /// Writes one row of numeric cells. Must match the header width. Throws
  /// std::runtime_error if the row does not reach the file.
  void row(const std::vector<double>& cells) {
    if (cells.size() != ncols_) throw std::invalid_argument("CsvWriter: column count mismatch");
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i) out_ << ',';
      out_ << format(cells[i]);
    }
    out_ << '\n';
    check("write row to");
  }

  /// Writes one row whose first cell is a label and the rest numeric.
  void row(const std::string& label, const std::vector<double>& cells) {
    row(std::vector<std::string>{label}, cells);
  }

  /// Writes one row with several leading label cells, then numeric cells.
  void row(const std::vector<std::string>& labels, const std::vector<double>& cells) {
    if (labels.size() + cells.size() != ncols_)
      throw std::invalid_argument("CsvWriter: column count mismatch");
    for (std::size_t i = 0; i < labels.size(); ++i) {
      if (i) out_ << ',';
      out_ << labels[i];
    }
    for (double c : cells) out_ << ',' << format(c);
    out_ << '\n';
    check("write row to");
  }

 private:
  static std::string format(double v) {
    std::ostringstream os;
    os.precision(10);
    os << v;
    return os.str();
  }

  void write_strings(const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i) out_ << ',';
      out_ << cells[i];
    }
    out_ << '\n';
  }

  /// Flushes and fails loudly if the stream went bad — flushing is what
  /// surfaces ENOSPC-style errors the buffered << calls deferred.
  void check(const char* what) {
    out_.flush();
    if (!out_) throw std::runtime_error(std::string("CsvWriter: cannot ") + what + " " + path_);
  }

  std::ofstream out_;
  std::string path_;
  std::size_t ncols_;
};

}  // namespace mtat
