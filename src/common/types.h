// Core identifier types shared across the MTAT simulator.
#pragma once

#include <cstdint>
#include <limits>

namespace mtat {

/// Dense index of a simulated physical page within the TieredMemory page array.
using PageId = std::uint32_t;
constexpr PageId kInvalidPage = std::numeric_limits<PageId>::max();

/// Identifies a co-located workload (tenant). Workload 0 is conventionally the
/// LC workload in experiments, but nothing in the memory substrate assumes it.
using WorkloadId = std::uint16_t;
constexpr WorkloadId kInvalidWorkload = std::numeric_limits<WorkloadId>::max();

/// Index of a memory tier in an ordered topology: tier 0 is the fastest
/// (local DRAM), higher ids are progressively slower (CXL, NVM, remote DRAM).
/// Adjacent tiers k and k+1 are connected by migration link k; demotion
/// cascades one link at a time toward the slowest tier.
using TierId = std::uint8_t;

/// Upper bound on tiers in a topology. PageHotness packs the tier into a
/// 3-bit field of its per-page word, and real hierarchies top out well below
/// this (DRAM/CXL/NVM/remote is four).
inline constexpr TierId kMaxTiers = 8;

/// The fastest tier, by the ordering convention above. Policies address "the
/// fastest tier" / "one tier slower" through kFastestTier and TierId
/// arithmetic rather than hard-coded two-tier names.
inline constexpr TierId kFastestTier = 0;

/// Legacy two-tier spellings for the paper's testbed: tier 0 is FMem
/// (32 GiB local DRAM, ~73 ns), tier 1 is SMem (256 GiB NUMA-remote DRAM
/// emulating CXL, ~202 ns). mtat_lint's tier-literal rule bans these
/// spellings outside src/mem/ and tests/ — everything above the substrate
/// speaks TierId so it generalizes to N-tier topologies unchanged.
struct Tier {
  static constexpr TierId kFMem = 0;  ///< fast tier (local DRAM in the paper; 73 ns)
  static constexpr TierId kSMem = 1;  ///< slow tier (emulated CXL in the paper; 202 ns)
};

/// Read/write discriminator for sampled accesses (the paper samples loads via
/// MEM_LOAD_L3_MISS_RETIRED.* and stores via MEM_INST_RETIRED.ALL_STORES).
enum class AccessKind : std::uint8_t { kRead = 0, kWrite = 1 };

}  // namespace mtat
