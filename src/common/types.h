// Core identifier types shared across the MTAT simulator.
#pragma once

#include <cstdint>
#include <limits>

namespace mtat {

/// Dense index of a simulated physical page within the TieredMemory page array.
using PageId = std::uint32_t;
constexpr PageId kInvalidPage = std::numeric_limits<PageId>::max();

/// Identifies a co-located workload (tenant). Workload 0 is conventionally the
/// LC workload in experiments, but nothing in the memory substrate assumes it.
using WorkloadId = std::uint16_t;
constexpr WorkloadId kInvalidWorkload = std::numeric_limits<WorkloadId>::max();

/// Which memory tier a page currently resides in.
enum class Tier : std::uint8_t {
  kFMem = 0,  ///< fast tier (local DRAM in the paper; 73 ns)
  kSMem = 1,  ///< slow tier (emulated CXL in the paper; 202 ns)
};

constexpr Tier other_tier(Tier t) { return t == Tier::kFMem ? Tier::kSMem : Tier::kFMem; }

/// Read/write discriminator for sampled accesses (the paper samples loads via
/// MEM_LOAD_L3_MISS_RETIRED.* and stores via MEM_INST_RETIRED.ALL_STORES).
enum class AccessKind : std::uint8_t { kRead = 0, kWrite = 1 };

}  // namespace mtat
