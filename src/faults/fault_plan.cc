#include "faults/fault_plan.h"

#include <algorithm>
#include <stdexcept>

#include "common/parse.h"

namespace mtat::faults {

void normalize_windows(std::vector<FaultWindow>& windows) {
  for (const FaultWindow& w : windows) {
    // SimTime/Duration are unsigned, so negative fields are unrepresentable;
    // the one malformed shape a spec can express is the inverted periodic.
    if (w.period > 0 && w.length > w.period)
      throw std::invalid_argument(
          "FaultWindow: inverted periodic window (length exceeds period, so "
          "the window would never close)");
  }
  std::erase_if(windows, [](const FaultWindow& w) { return w.length == 0; });
  std::sort(windows.begin(), windows.end(),
            [](const FaultWindow& a, const FaultWindow& b) {
              if (a.period != b.period) return a.period < b.period;
              if (a.start != b.start) return a.start < b.start;
              return a.length < b.length;
            });
  std::vector<FaultWindow> merged;
  for (const FaultWindow& w : windows) {
    if (!merged.empty() && merged.back().period == w.period &&
        w.start <= merged.back().start + merged.back().length) {
      FaultWindow& prev = merged.back();
      prev.length = std::max(prev.length, w.start + w.length - prev.start);
      // Two valid overlapping windows of the same period can legitimately
      // cover the whole cycle; clamp rather than re-reject.
      if (prev.period > 0) prev.length = std::min(prev.length, prev.period);
    } else {
      merged.push_back(w);
    }
  }
  windows = std::move(merged);
}

bool FaultPlan::any() const {
  return sample_loss_prob > 0.0 || sample_corruption_prob > 0.0 ||
         migration_failure_prob > 0.0 || rl_nan_action_prob > 0.0 ||
         rl_divergent_action_prob > 0.0 || !telemetry_blackouts.empty() ||
         !migration_failure_bursts.empty() || !bandwidth_collapses.empty() ||
         !smem_latency_spikes.empty();
}

FaultPlan FaultPlan::storm(double intensity) {
  if (!(intensity >= 0.0 && intensity <= 1.0))
    throw std::invalid_argument("FaultPlan::storm: intensity must be in [0, 1]");
  FaultPlan p;
  if (intensity == 0.0) return p;  // empty plan: injector attached, nothing injected

  // Probabilistic background faults, linear in intensity.
  p.sample_loss_prob = 0.20 * intensity;
  p.sample_corruption_prob = 0.05 * intensity;
  p.migration_failure_prob = 0.25 * intensity;
  p.rl_nan_action_prob = 0.02 * intensity;
  p.rl_divergent_action_prob = 0.05 * intensity;

  // Scheduled windows on a shared 30 s cycle, staggered so each fault class
  // also gets exercised in isolation. Periodic (rather than one-shot at
  // absolute times) so they hit training, settling, and measurement phases
  // alike at every scale preset.
  const Duration cycle = seconds(30);
  p.migration_failure_bursts = {{seconds(10), seconds(5), cycle}};
  p.burst_failure_prob = intensity;  // 1.0 -> total migration outage
  p.telemetry_blackouts = {{seconds(17), seconds(4), cycle}};
  p.bandwidth_collapses = {{seconds(4), seconds(3), cycle}};
  p.bandwidth_collapse_factor = 1.0 - 0.9 * intensity;
  p.smem_latency_spikes = {{seconds(24), seconds(4), cycle}};
  p.smem_spike_factor = 1.0 + 3.0 * intensity;
  return p;
}

FaultPlan FaultPlan::normalized() const {
  FaultPlan p = *this;
  normalize_windows(p.telemetry_blackouts);
  normalize_windows(p.migration_failure_bursts);
  normalize_windows(p.bandwidth_collapses);
  normalize_windows(p.smem_latency_spikes);
  return p;
}

std::optional<FaultPlan> FaultPlan::from_spec(const std::string& spec) {
  std::string preset = spec;
  double intensity = 1.0;
  if (const std::size_t colon = spec.find(':'); colon != std::string::npos) {
    preset = spec.substr(0, colon);
    const auto v = parse_double(spec.substr(colon + 1));
    if (!v || !(*v >= 0.0 && *v <= 1.0)) return std::nullopt;
    intensity = *v;
  }
  if (preset == "storm") return storm(intensity);
  return std::nullopt;
}

namespace {
// Storage for the process-global default plan (see header). Ownership:
// written only by set_default_plan()/clear_default_plan() from the harness
// before any sim runs, read-only afterwards — never mutated concurrently.
FaultPlan g_default_plan;        // NOLINT(cert-err58-cpp)  mtat-lint: allow(shared-mutable)
bool g_default_plan_set = false;  // mtat-lint: allow(shared-mutable)
}  // namespace

void set_default_plan(const FaultPlan& plan) {
  g_default_plan = plan.normalized();
  g_default_plan_set = true;
}

void clear_default_plan() { g_default_plan_set = false; }

const FaultPlan* default_plan() { return g_default_plan_set ? &g_default_plan : nullptr; }

}  // namespace mtat::faults
