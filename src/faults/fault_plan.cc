#include "faults/fault_plan.h"

#include <stdexcept>

#include "common/parse.h"

namespace mtat::faults {

bool FaultPlan::any() const {
  return sample_loss_prob > 0.0 || sample_corruption_prob > 0.0 ||
         migration_failure_prob > 0.0 || rl_nan_action_prob > 0.0 ||
         rl_divergent_action_prob > 0.0 || !telemetry_blackouts.empty() ||
         !migration_failure_bursts.empty() || !bandwidth_collapses.empty() ||
         !smem_latency_spikes.empty();
}

FaultPlan FaultPlan::storm(double intensity) {
  if (!(intensity >= 0.0 && intensity <= 1.0))
    throw std::invalid_argument("FaultPlan::storm: intensity must be in [0, 1]");
  FaultPlan p;
  if (intensity == 0.0) return p;  // empty plan: injector attached, nothing injected

  // Probabilistic background faults, linear in intensity.
  p.sample_loss_prob = 0.20 * intensity;
  p.sample_corruption_prob = 0.05 * intensity;
  p.migration_failure_prob = 0.25 * intensity;
  p.rl_nan_action_prob = 0.02 * intensity;
  p.rl_divergent_action_prob = 0.05 * intensity;

  // Scheduled windows on a shared 30 s cycle, staggered so each fault class
  // also gets exercised in isolation. Periodic (rather than one-shot at
  // absolute times) so they hit training, settling, and measurement phases
  // alike at every scale preset.
  const Duration cycle = seconds(30);
  p.migration_failure_bursts = {{seconds(10), seconds(5), cycle}};
  p.burst_failure_prob = intensity;  // 1.0 -> total migration outage
  p.telemetry_blackouts = {{seconds(17), seconds(4), cycle}};
  p.bandwidth_collapses = {{seconds(4), seconds(3), cycle}};
  p.bandwidth_collapse_factor = 1.0 - 0.9 * intensity;
  p.smem_latency_spikes = {{seconds(24), seconds(4), cycle}};
  p.smem_spike_factor = 1.0 + 3.0 * intensity;
  return p;
}

std::optional<FaultPlan> FaultPlan::from_spec(const std::string& spec) {
  std::string preset = spec;
  double intensity = 1.0;
  if (const std::size_t colon = spec.find(':'); colon != std::string::npos) {
    preset = spec.substr(0, colon);
    const auto v = parse_double(spec.substr(colon + 1));
    if (!v || !(*v >= 0.0 && *v <= 1.0)) return std::nullopt;
    intensity = *v;
  }
  if (preset == "storm") return storm(intensity);
  return std::nullopt;
}

namespace {
// Storage for the process-global default plan (see header). Ownership:
// written only by set_default_plan()/clear_default_plan() from the harness
// before any sim runs, read-only afterwards — never mutated concurrently.
FaultPlan g_default_plan;        // NOLINT(cert-err58-cpp)  mtat-lint: allow(shared-mutable)
bool g_default_plan_set = false;  // mtat-lint: allow(shared-mutable)
}  // namespace

void set_default_plan(const FaultPlan& plan) {
  g_default_plan = plan;
  g_default_plan_set = true;
}

void clear_default_plan() { g_default_plan_set = false; }

const FaultPlan* default_plan() { return g_default_plan_set ? &g_default_plan : nullptr; }

}  // namespace mtat::faults
