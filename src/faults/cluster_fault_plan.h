// Fleet-level fault schedules: the cluster-scope sibling of FaultPlan.
//
// FaultPlan (fault_plan.h) describes substrate misbehaviour *inside* one
// node — dropped samples, aborted migrations, latency spikes. Real fleets
// also lose whole nodes: machines crash and restart, stragglers run hot
// under interference, and telemetry exporters silently stop reporting. A
// ClusterFaultPlan describes those node-granular events for ClusterSim's
// epoch loop (DESIGN.md §17): per storm epoch, each alive node may crash
// (out for `outage_epochs`, then restarted warm from its checkpoint or
// cold from scratch), straggle (run the epoch under an in-node
// FaultPlan::storm), or black out (serve traffic but export no telemetry,
// which is what the cluster health watchdog actually observes).
//
// Determinism contract, mirroring FaultPlan: the plan is pure data and the
// ClusterFaultInjector draws every event from per-category RNG streams
// derived from `seed` alone, querying nodes in node-id order on the
// cluster thread — never inside node shards — so the same (cluster seed,
// plan) pair produces bit-identical storms at any MTAT_JOBS. Categories
// never perturb each other: raising the blackout rate cannot shift which
// nodes crash. Zero-probability queries draw nothing, so an all-zero plan
// is behaviourally identical to no plan at all.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "common/rng.h"

namespace mtat::faults {

/// Everything that can go wrong to whole nodes, in one schedule.
/// Default-constructed plans inject nothing and leave ClusterSim on its
/// classic two-epoch probe/measure structure.
struct ClusterFaultPlan {
  /// Seeds the injector's per-category streams; independent of the cluster
  /// simulation seed so storms and workloads can vary separately.
  std::uint64_t seed = 0xC10D5EEDull;

  // --- epoch structure ------------------------------------------------------
  /// Total epochs ClusterSim runs when the plan is active (>= 2; the final
  /// epoch uses the measurement window, earlier ones the probe window).
  int epochs = 6;
  /// Faults fire only during epochs [0, storm_epochs); the remaining epochs
  /// are the recovery phase the time-to-recover metric is measured over.
  int storm_epochs = 3;

  // --- node crash / restart -------------------------------------------------
  double node_crash_prob = 0.0;  ///< per alive node per storm epoch
  /// Epochs a crashed node stays down before restarting.
  int outage_epochs = 2;
  /// Restart mode: true = warm (replay the node's deterministic checkpoint,
  /// so its tiered-memory/hotness state is bit-exactly reconstructed), false
  /// = cold (fresh sim, empty journal, no settle phase — the cold-page
  /// flood case).
  bool warm_restart = true;

  // --- straggler ------------------------------------------------------------
  double node_straggler_prob = 0.0;  ///< per alive node per storm epoch
  /// The in-node FaultPlan::storm intensity a straggler runs its epoch under.
  double straggler_intensity = 1.0;

  // --- telemetry-export blackout --------------------------------------------
  double node_blackout_prob = 0.0;  ///< per alive node per storm epoch

  // --- watchdog / failover knobs (consumed by ClusterSim) -------------------
  /// Missed consecutive `cluster.node_*` exports before the watchdog
  /// suspects a node, and clean consecutive exports before it readmits one —
  /// the same 3-down/5-up hysteresis shape as MtatPolicy's ladder (§12).
  int suspect_after = 3;
  int readmit_after = 5;
  /// Admission control: a placement that would push a node's projected
  /// utilization above this cap is refused; the tenant falls back to the
  /// least-loaded candidate, or queues with capped exponential backoff
  /// (1, 2, 4, ... epochs up to max_backoff_epochs) if every candidate is
  /// over the cap. Queued tenants retry — they are never silently dropped.
  double admission_max_utilization = 1.25;
  int max_backoff_epochs = 8;
  /// Telemetry-aware placement degrades when the fraction of candidate
  /// nodes with stale telemetry reaches these rungs: bin-packing first,
  /// then random (DESIGN.md §17 degradation ladder).
  double degrade_bin_packing_coverage = 0.5;
  double degrade_random_coverage = 0.9;

  /// True when the plan can actually inject something.
  bool any() const {
    return node_crash_prob > 0.0 || node_straggler_prob > 0.0 ||
           node_blackout_prob > 0.0;
  }

  /// The canonical fleet storm, scaled by `intensity` in [0, 1]: per storm
  /// epoch each alive node crashes with 0.08*i, straggles with 0.15*i, and
  /// blacks out with 0.25*i. Throws std::invalid_argument outside [0, 1].
  static ClusterFaultPlan storm(double intensity);

  /// Parse an MTAT_CLUSTER_FAULTS-style spec:
  /// `storm[:intensity][:warm|:cold]` (e.g. "storm", "storm:0.5",
  /// "storm:1.0:cold"). Returns nullopt on an unknown preset, malformed or
  /// out-of-range intensity, or unknown restart mode.
  static std::optional<ClusterFaultPlan> from_spec(const std::string& spec);
};

/// Deterministic executor for a ClusterFaultPlan. Queried once per (epoch,
/// node) on the cluster thread in node-id order; down nodes are not queried
/// at all. Crash takes priority: a node that crashes this epoch is not also
/// asked to straggle or black out.
class ClusterFaultInjector {
 public:
  explicit ClusterFaultInjector(const ClusterFaultPlan& plan)
      : plan_(plan),
        crash_rng_(plan.seed ^ 0xC4A511EDull),
        straggler_rng_(plan.seed ^ 0x57A661E5ull),
        blackout_rng_(plan.seed ^ 0xB1AC0075ull) {}

  const ClusterFaultPlan& plan() const { return plan_; }

  bool in_storm(int epoch) const { return epoch < plan_.storm_epochs; }

  bool crash_node(int epoch) { return draw(crash_rng_, plan_.node_crash_prob, epoch); }
  bool straggle_node(int epoch) { return draw(straggler_rng_, plan_.node_straggler_prob, epoch); }
  bool blackout_node(int epoch) { return draw(blackout_rng_, plan_.node_blackout_prob, epoch); }

 private:
  // Probabilities <= 0 and >= 1 resolve without a draw (the zero-behaviour
  // contract), and nothing is ever drawn outside the storm phase.
  bool draw(Rng& rng, double p, int epoch) {
    if (!in_storm(epoch) || p <= 0.0) return false;
    if (p >= 1.0) return true;
    return rng.next_bool(p);
  }

  ClusterFaultPlan plan_;
  Rng crash_rng_;
  Rng straggler_rng_;
  Rng blackout_rng_;
};

}  // namespace mtat::faults
