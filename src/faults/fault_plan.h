// Declarative fault schedules for the substrate-misbehaviour layer.
//
// Real tiered-memory hardware is not the perfect substrate the simulator
// otherwise assumes: Nomad (arXiv:2401.13154) shows page migrations abort
// mid-flight under memory pressure, TPP (arXiv:2206.02878) treats migration
// failure/retry as a first-class path, and PEBS sampling drops or misattributes
// records under load. A FaultPlan describes exactly which of those
// misbehaviours a run should suffer — probabilistic per-event faults plus
// scheduled (optionally periodic) windows in simulated time — and a
// faults::FaultInjector (fault_injector.h) executes it deterministically.
//
// Determinism contract: a plan is pure data, and every random draw the
// injector makes comes from RNG streams derived from `seed` alone. Two runs
// with the same simulation seed and the same plan suffer bit-identical fault
// sequences, whatever MTAT_JOBS is (each experiment point owns its context,
// and each context owns an identically-seeded injector). See DESIGN.md §12.
//
// This layer depends only on src/common so obs::RunContext can own an
// injector without a dependency cycle; components — never the injector —
// register the fault metrics and emit the trace events.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/units.h"

namespace mtat::faults {

/// A window in simulated time. `period == 0` is a one-shot [start,
/// start+length); a nonzero period repeats the window every `period` from
/// `start` onwards (length <= period).
struct FaultWindow {
  SimTime start = 0;
  Duration length = 0;
  Duration period = 0;

  bool contains(SimTime t) const {
    if (t < start || length == 0) return false;
    const SimTime rel = t - start;
    if (period == 0) return rel < length;
    return rel % period < length;
  }
};

/// Normalize a window schedule in place:
///  - reject inverted periodic windows (length exceeds period — the window
///    would never close, which always means a spec bug) with
///    std::invalid_argument;
///  - drop zero-length windows (they never arm, but left in place they make
///    FaultPlan::any() report the category armed while injecting nothing);
///  - sort by (period, start) and merge overlapping or abutting same-period
///    windows, so a category cannot be listed twice for the same instant.
/// Windows with different periods are kept apart: their overlap varies per
/// cycle, and contains() queries are idempotent anyway.
void normalize_windows(std::vector<FaultWindow>& windows);

/// Everything that can go wrong, in one schedule. Default-constructed plans
/// inject nothing (all probabilities zero, no windows); such a plan still
/// attaches an injector, which activates the graceful-degradation machinery
/// (watchdog, plan abandonment) without perturbing behaviour — the injector
/// consumes no randomness on zero-probability paths.
struct FaultPlan {
  /// Seeds the injector's per-category RNG streams. Independent of the
  /// simulation seed so fault schedules and workloads can vary separately.
  std::uint64_t seed = 0xFA017Dull;

  // --- telemetry (src/telemetry) --------------------------------------------
  double sample_loss_prob = 0.0;        ///< drop a PEBS-like sample
  double sample_corruption_prob = 0.0;  ///< misattribute it to a random page
  /// Scheduled total sample loss (stale-telemetry injection): inside a
  /// blackout every sample is dropped, deterministically.
  std::vector<FaultWindow> telemetry_blackouts;

  // --- migration (src/mem) --------------------------------------------------
  /// A migration attempt aborts after consuming its copy bandwidth (the
  /// Nomad abort case); exchanges additionally roll the half-copied page
  /// back, leaving placement untouched.
  double migration_failure_prob = 0.0;
  /// Scheduled failure bursts: inside a burst window, attempts fail with
  /// `burst_failure_prob` instead (1.0 = total outage).
  std::vector<FaultWindow> migration_failure_bursts;
  double burst_failure_prob = 1.0;
  /// Scheduled migration-bandwidth collapse: the engine's refill is scaled
  /// by `bandwidth_collapse_factor` inside these windows. By default every
  /// migration link collapses together; setting `bandwidth_collapse_link`
  /// to a link index (link k connects tiers k and k+1) confines the
  /// collapse to that one channel in an N-tier topology.
  std::vector<FaultWindow> bandwidth_collapses;
  double bandwidth_collapse_factor = 0.1;
  int bandwidth_collapse_link = -1;

  // --- simulator (src/sim) --------------------------------------------------
  /// Scheduled SMem latency spikes: the slow tier's effective per-access
  /// latency is additionally multiplied by `smem_spike_factor` (>= 1).
  std::vector<FaultWindow> smem_latency_spikes;
  double smem_spike_factor = 3.0;

  // --- RL (src/rl) ----------------------------------------------------------
  double rl_nan_action_prob = 0.0;        ///< act() returns all-NaN
  double rl_divergent_action_prob = 0.0;  ///< act() returns +-1e6 (off-manifold)

  /// True when the plan can actually inject something (any probability > 0
  /// or any window scheduled).
  bool any() const;

  /// The canonical mixed-fault schedule, scaled by `intensity` in [0, 1]:
  /// probabilistic sample loss/corruption, migration failures, and RL action
  /// corruption, plus periodic burst/blackout/collapse/spike windows. At
  /// intensity 1.0 the burst windows are total migration outages and the
  /// blackout windows total telemetry loss — the acceptance scenario for the
  /// degradation ladder. Throws std::invalid_argument outside [0, 1].
  static FaultPlan storm(double intensity);

  /// A copy of this plan with every window list passed through
  /// normalize_windows() — the canonical form the injector actually
  /// executes. Throws std::invalid_argument on malformed windows.
  FaultPlan normalized() const;

  /// Parse an MTAT_FAULTS-style spec: `preset` or `preset:intensity`
  /// (currently the one preset is `storm`; e.g. "storm", "storm:0.5").
  /// Returns nullopt on an unknown preset or malformed/out-of-range
  /// intensity.
  static std::optional<FaultPlan> from_spec(const std::string& spec);
};

/// Process-global default plan, consumed by obs::RunContext's constructor so
/// an environment knob (MTAT_FAULTS, parsed by bench::Env and installed by
/// the bench harness hook) reaches every context in the process — the same
/// pattern MTAT_TRACE uses. Set before any context is constructed (the bench
/// hook runs during static initialization); not thread-safe against
/// concurrent context construction by design.
void set_default_plan(const FaultPlan& plan);
void clear_default_plan();
const FaultPlan* default_plan();

}  // namespace mtat::faults
