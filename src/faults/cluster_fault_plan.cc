#include "faults/cluster_fault_plan.h"

#include <stdexcept>
#include <vector>

#include "common/parse.h"

namespace mtat::faults {

ClusterFaultPlan ClusterFaultPlan::storm(double intensity) {
  if (!(intensity >= 0.0 && intensity <= 1.0))
    throw std::invalid_argument("ClusterFaultPlan::storm: intensity must be in [0, 1]");
  ClusterFaultPlan p;
  if (intensity == 0.0) return p;  // inert plan: classic two-epoch run
  p.node_crash_prob = 0.08 * intensity;
  p.node_straggler_prob = 0.15 * intensity;
  p.node_blackout_prob = 0.25 * intensity;
  p.straggler_intensity = intensity;
  return p;
}

std::optional<ClusterFaultPlan> ClusterFaultPlan::from_spec(const std::string& spec) {
  std::vector<std::string> parts;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const std::size_t colon = spec.find(':', pos);
    if (colon == std::string::npos) {
      parts.push_back(spec.substr(pos));
      break;
    }
    parts.push_back(spec.substr(pos, colon - pos));
    pos = colon + 1;
  }
  if (parts.empty() || parts.size() > 3 || parts[0] != "storm") return std::nullopt;
  double intensity = 1.0;
  if (parts.size() >= 2) {
    const auto v = parse_double(parts[1]);
    if (!v || !(*v >= 0.0 && *v <= 1.0)) return std::nullopt;
    intensity = *v;
  }
  ClusterFaultPlan p = storm(intensity);
  if (parts.size() == 3) {
    if (parts[2] == "warm")
      p.warm_restart = true;
    else if (parts[2] == "cold")
      p.warm_restart = false;
    else
      return std::nullopt;
  }
  return p;
}

}  // namespace mtat::faults
