// Deterministic executor for a FaultPlan.
//
// Components query the injector at each potential fault site (sample arrival,
// migration attempt, RL act()); the injector answers from per-category RNG
// streams derived from the plan seed, so two categories never perturb each
// other's draws: adding a telemetry fault cannot shift the migration fault
// sequence. Zero-probability queries consume no randomness at all, which is
// what makes an empty plan behaviourally identical to no plan (the
// zero-behaviour-change guarantee, DESIGN.md §12).
//
// The injector tracks simulated time via set_now() (called once per simulator
// tick) and evaluates the plan's scheduled windows against it; window queries
// are pure and also draw nothing.
#pragma once

#include "common/rng.h"
#include "common/units.h"
#include "faults/fault_plan.h"

namespace mtat::faults {

class FaultInjector {
 public:
  /// Executes plan.normalized(): zero-length windows are dropped and
  /// overlapping same-period windows merged before any query, so a sloppy
  /// schedule cannot double-arm or phantom-arm a category. Throws
  /// std::invalid_argument on malformed windows (normalize_windows()).
  explicit FaultInjector(const FaultPlan& plan)
      : plan_(plan.normalized()),
        telemetry_rng_(plan.seed ^ 0x7E1E7E1Eull),
        migration_rng_(plan.seed ^ 0x316A7104ull),
        rl_rng_(plan.seed ^ 0x5AC5AC5Aull) {}

  const FaultPlan& plan() const { return plan_; }

  /// Advance simulated time; scheduled windows are evaluated against the last
  /// value passed here. Called by the simulator at the top of every tick.
  void set_now(SimTime now) { now_ = now; }
  SimTime now() const { return now_; }

  // --- telemetry ------------------------------------------------------------

  /// True when `now` is inside a scheduled telemetry blackout (no draw).
  bool telemetry_blackout() const { return in_any(plan_.telemetry_blackouts); }

  /// Should this sample be dropped? Blackouts drop deterministically;
  /// otherwise a Bernoulli draw against sample_loss_prob.
  bool drop_sample() {
    if (telemetry_blackout()) return true;
    if (plan_.sample_loss_prob <= 0.0) return false;
    return telemetry_rng_.next_bool(plan_.sample_loss_prob);
  }

  /// Should this sample's page attribution be corrupted?
  bool corrupt_sample() {
    if (plan_.sample_corruption_prob <= 0.0) return false;
    return telemetry_rng_.next_bool(plan_.sample_corruption_prob);
  }

  /// Uniform index in [0, bound) from the telemetry stream, for choosing the
  /// page a corrupted sample is misattributed to. bound must be > 0.
  std::uint64_t pick(std::uint64_t bound) { return telemetry_rng_.next_below(bound); }

  // --- migration ------------------------------------------------------------

  /// Should this migration attempt abort? Inside a scheduled burst window the
  /// burst probability applies instead of the background one; probabilities
  /// <= 0 and >= 1 resolve without a draw.
  bool fail_migration() {
    const double p =
        in_any(plan_.migration_failure_bursts) ? plan_.burst_failure_prob : plan_.migration_failure_prob;
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return migration_rng_.next_bool(p);
  }

  /// Scale factor for the engine's bandwidth refill of migration link `link`
  /// this tick (no draw): bandwidth_collapse_factor inside a collapse
  /// window, 1.0 outside. A plan targeting a specific link
  /// (bandwidth_collapse_link >= 0) collapses only that link; the default
  /// (-1) collapses every link, which at two tiers is the single FMem-SMem
  /// channel — the original behaviour.
  double migration_bandwidth_factor(int link = 0) const {
    if (!in_any(plan_.bandwidth_collapses)) return 1.0;
    if (plan_.bandwidth_collapse_link >= 0 && link != plan_.bandwidth_collapse_link) return 1.0;
    return plan_.bandwidth_collapse_factor;
  }

  // --- simulator ------------------------------------------------------------

  /// Extra multiplier on the SMem tier's effective latency (no draw):
  /// smem_spike_factor inside a spike window, 1.0 outside.
  double smem_latency_factor() const {
    return in_any(plan_.smem_latency_spikes) ? plan_.smem_spike_factor : 1.0;
  }

  // --- RL -------------------------------------------------------------------

  enum class ActionFault { kNone, kNaN, kDivergent };

  /// Corrupt the agent's next action? NaN takes priority over divergence so
  /// the nastier fault is exercised even when both probabilities are set.
  ActionFault action_fault() {
    if (plan_.rl_nan_action_prob > 0.0 && rl_rng_.next_bool(plan_.rl_nan_action_prob))
      return ActionFault::kNaN;
    if (plan_.rl_divergent_action_prob > 0.0 && rl_rng_.next_bool(plan_.rl_divergent_action_prob))
      return ActionFault::kDivergent;
    return ActionFault::kNone;
  }

 private:
  bool in_any(const std::vector<FaultWindow>& windows) const {
    for (const auto& w : windows)
      if (w.contains(now_)) return true;
    return false;
  }

  FaultPlan plan_;
  SimTime now_ = 0;
  Rng telemetry_rng_;
  Rng migration_rng_;
  Rng rl_rng_;
};

}  // namespace mtat::faults
