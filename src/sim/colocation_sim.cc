#include "sim/colocation_sim.h"

#include <sstream>
#include <stdexcept>

#include "obs/names.h"

namespace mtat {

const char* policy_name(PolicyKind k) {
  switch (k) {
    case PolicyKind::kMtatFull: return "mtat_full";
    case PolicyKind::kMtatLcOnly: return "mtat_lc_only";
    case PolicyKind::kMemtis: return "memtis";
    case PolicyKind::kTpp: return "tpp";
    case PolicyKind::kFmemAll: return "fmem_all";
    case PolicyKind::kSmemAll: return "smem_all";
    case PolicyKind::kVtmm: return "vtmm";
    case PolicyKind::kDamon: return "damon";
    case PolicyKind::kMemtisHp: return "memtis_hp";
  }
  return "?";
}

ColocationSim::ColocationSim(const SimConfig& cfg, obs::RunContext* run_ctx) : cfg_(cfg) {
  // Run without an explicit context? The sim owns one recording into the
  // process-global trace — the classic single-run behaviour.
  if (run_ctx == nullptr) {
    owned_ctx_ = std::make_unique<obs::RunContext>();
    ctx_ = owned_ctx_.get();
  } else {
    ctx_ = run_ctx;
  }
  obs::MetricsRegistry& reg = ctx_->metrics();

  // --- Platform ---------------------------------------------------------------
  TieredMemory::Config mc;
  MigrationEngine::Config ec{cfg.migration_bandwidth};
  if (cfg.tiers.empty()) {
    mc = TieredMemory::Config::two_tier(bytes_to_pages(cfg.fmem), bytes_to_pages(cfg.smem),
                                        cfg.fmem_latency, cfg.smem_latency);
  } else {
    mc.tiers = cfg.tiers;
    // Each tier's spec carries the bandwidth of its downhill link; link 0 is
    // also the engine's headline (Eq. 1) bandwidth.
    ec.bandwidth_bytes_per_sec = cfg.tiers.front().link_bandwidth_bytes_per_sec;
    for (std::size_t t = 0; t + 1 < cfg.tiers.size(); ++t)
      ec.link_bandwidth_bytes_per_sec.push_back(cfg.tiers[t].link_bandwidth_bytes_per_sec);
  }
  mem_ = std::make_unique<TieredMemory>(mc);
  engine_ = std::make_unique<MigrationEngine>(*mem_, ec);
  engine_->set_run_context(ctx_);
  sampler_ = std::make_unique<AccessSampler>(*mem_, cfg.lc.sample_period);
  // Fault injection (DESIGN.md §12): when the context carries an injector,
  // thread it through telemetry here; the engine and the RL agent pick it up
  // from the context in their own set_run_context.
  inj_ = ctx_->faults();
  if (inj_ != nullptr) sampler_->set_faults(inj_, *ctx_);

  // Registry handles for the sim's own signals; everything else registers in
  // the component that owns the signal (engine above, queue/policy below).
  policy_wall_c_ = &reg.counter(obs::names::kPolicyWallUs);
  policy_wall_h_ = &reg.histogram(obs::names::kPolicyWallUsHist);
  intervals_c_ = &reg.counter(obs::names::kSimIntervals);
  measured_intervals_c_ = &reg.counter(obs::names::kSimMeasuredIntervals);
  pages_moved_c_ = &reg.counter(obs::names::kMigrationPagesMoved);
  bw_factor_g_[0] = &reg.gauge(obs::names::kBwFmemFactor);
  bw_factor_g_[1] = &reg.gauge(obs::names::kBwSmemFactor);
  trace_track_ = ctx_->trace().allocate_track();

  // --- Tenants: LC allocates first (paper Figure 2 setup) ---------------------
  AllocPolicy lc_alloc = kFastestFirst;
  AllocPolicy be_alloc = kFastestFirst;
  if (cfg.policy == PolicyKind::kFmemAll) be_alloc = kTierOnly(kFastestTier + 1);
  if (cfg.policy == PolicyKind::kSmemAll) lc_alloc = kTierOnly(kFastestTier + 1);

  Rng seeder(cfg.seed);
  const WorkloadId lc_id = 0;
  lc_ = std::make_unique<LCWorkload>(*mem_, lc_id, cfg.lc, lc_alloc, seeder.next_u64());
  lc_->space().set_observer(sampler_.get());
  for (std::size_t i = 0; i < cfg.be.size(); ++i)
    be_.push_back(std::make_unique<BEWorkload>(*mem_, static_cast<WorkloadId>(i + 1),
                                               cfg.be[i], be_alloc, sampler_.get(),
                                               seeder.next_u64()));

  queue_ = std::make_unique<QueueSim>(*lc_, cfg.latency_window, seeder.next_u64());
  queue_->set_run_context(ctx_);
  be_measured_iters_.assign(be_.size(), 0.0);

  // --- Policy -------------------------------------------------------------------
  PolicyContext ctx;
  ctx.mem = mem_.get();
  ctx.engine = engine_.get();
  ctx.sampler = sampler_.get();
  ctx.tenants.push_back(TenantInfo{lc_id, true});
  for (std::size_t i = 0; i < be_.size(); ++i)
    ctx.tenants.push_back(TenantInfo{static_cast<WorkloadId>(i + 1), false});

  switch (cfg.policy) {
    case PolicyKind::kMemtis:
      policy_ = std::make_unique<MemtisPolicy>(ctx);
      break;
    case PolicyKind::kTpp:
      policy_ = std::make_unique<TppPolicy>(ctx);
      break;
    case PolicyKind::kVtmm:
      policy_ = std::make_unique<VtmmPolicy>(ctx);
      break;
    case PolicyKind::kDamon:
      policy_ = std::make_unique<DamonPolicy>(ctx);
      break;
    case PolicyKind::kMemtisHp:
      policy_ = std::make_unique<MemtisHpPolicy>(ctx);
      break;
    case PolicyKind::kFmemAll:
      policy_ = std::make_unique<StaticPolicy>(StaticPolicy::Kind::kFMemAll);
      break;
    case PolicyKind::kSmemAll:
      policy_ = std::make_unique<StaticPolicy>(StaticPolicy::Kind::kSMemAll);
      break;
    case PolicyKind::kMtatFull:
    case PolicyKind::kMtatLcOnly: {
      // Offline profiles for PP-M's BE partitioning (§3.2.2): normalized
      // throughput as a function of granted FMem, from the kernel profiles.
      std::vector<BEPerfModel> models;
      for (const auto& bw : be_) {
        BEWorkload* w = bw.get();
        models.push_back(BEPerfModel{
            [w](std::uint64_t pages) { return w->rate_at_pages(pages) / w->perf_full(); },
            w->space().num_pages()});
      }
      MtatPolicy::Options opt = cfg.mtat;
      opt.full = cfg.policy == PolicyKind::kMtatFull;
      if (cfg.bandwidth.enabled && !opt.ppm.joint_objective) {
        // Contention-aware SA objective: with shared tier bandwidth, one
        // tenant's allocation changes every tenant's performance, so P(M) is
        // evaluated jointly — per-tenant ideal placement under the bandwidth
        // factors that placement itself induces (short fixed-point).
        opt.ppm.joint_objective = [this](const std::vector<std::uint64_t>& alloc) {
          const BandwidthModel& bw = cfg_.bandwidth;
          const double base_f = static_cast<double>(mem_->base_latency(kFastestTier));
          const double base_s = static_cast<double>(mem_->base_latency(kFastestTier + 1));
          double ff = 1.0, fs = 1.0;
          std::vector<double> hit(be_.size());
          for (std::size_t i = 0; i < be_.size(); ++i)
            hit[i] = be_[i]->hit_fraction_at_pages(i < alloc.size() ? alloc[i] : 0);
          for (int it = 0; it < 4; ++it) {
            double df = 0.0, ds = 0.0;
            for (std::size_t i = 0; i < be_.size(); ++i) {
              const double acc = be_[i]->rate_under(hit[i], base_f * ff, base_s * fs) *
                                 be_[i]->config().profile.accesses_per_iteration;
              df += acc * hit[i];
              ds += acc * (1.0 - hit[i]);
            }
            ff = bandwidth_factor(bw, df / bw.fmem_accesses_per_sec);
            fs = bandwidth_factor(bw, ds / bw.smem_accesses_per_sec);
          }
          double min_np = 1.0, sum_np = 0.0;
          for (std::size_t i = 0; i < be_.size(); ++i) {
            const double np =
                be_[i]->rate_under(hit[i], base_f * ff, base_s * fs) / be_[i]->perf_full();
            min_np = std::min(min_np, np);
            sum_np += np;
          }
          return min_np + 1e-6 * sum_np;
        };
      }
      if (opt.ppm.sa.unit_pages <= 1) {
        // Paper granularity: +-1 GB on 32 GB FMem -> 1/32 of capacity.
        opt.ppm.sa.unit_pages = std::max<std::uint64_t>(1, bytes_to_pages(cfg.fmem) / 32);
      }
      auto mtat = std::make_unique<MtatPolicy>(ctx, cfg.interval, cfg.lc.slo,
                                               std::move(models), opt, cfg.shared_agent);
      mtat_ = mtat.get();
      mtat_->set_run_context(ctx_);
      policy_ = std::move(mtat);
      break;
    }
  }

  bw_factor_.assign(mem_->tier_count(), 1.0);
  next_interval_ = cfg.interval;
  reset_stats();
  // Construction (including the reset_stats() above) is every sim's common
  // birth state, not part of its history — only ops from here on are journaled.
  journal_armed_ = true;
}

ColocationSim::~ColocationSim() = default;

void ColocationSim::run(const LoadPattern& pattern, Duration duration, bool measure) {
  if (journal_armed_)
    journal_.push_back({SimCheckpoint::Op::Kind::kRun, pattern, duration, measure});
  // Measured phases run the RL policy on its mean action (no exploration
  // noise); training phases explore. Learning continues in both.
  if (mtat_ != nullptr) mtat_->ppm().set_deterministic(measure);
  obs::TraceRecorder& tr = ctx_->trace();
  tr.set_track(trace_track_);
  queue_->set_pattern(&pattern, now_);
  const SimTime end = now_ + duration;
  double offered_now = pattern.rate_at(0);
  SimTime interval_start = now_;
  while (now_ < end) {
    tr.set_now(now_);
    const Duration dt = std::min<Duration>(cfg_.tick, end - now_);
    if (inj_ != nullptr) {
      // The injector's scheduled windows are evaluated at tick start.
      inj_->set_now(now_);
      if (!cfg_.bandwidth.enabled) {
        // With the bandwidth model off nothing else touches the contention
        // factors, so an SMem latency spike is applied (and lifted) directly.
        const double spike = inj_->smem_latency_factor();
        if (spike != smem_spike_applied_) {
          mem_->set_contention_factor(kFastestTier + 1, spike);
          smem_spike_applied_ = spike;
        }
      }
    }
    if (cfg_.bandwidth.enabled)
      apply_bandwidth_model(pattern.rate_at(now_ - (end - duration)));
    engine_->begin_interval(dt);
    policy_->on_tick(now_, dt);
    for (auto& bw : be_) bw->tick(dt);
    queue_->run_until(now_ + dt);
    now_ += dt;
    if (inj_ != nullptr) inj_->set_now(now_);
    if (now_ >= next_interval_) {
      tr.set_now(now_);
      offered_now = pattern.rate_at(now_ - (end - duration));
      LatencyHistogram h = queue_->recorder().collect_interval();
      const Duration p99 = h.percentile(99.0);
      {
        obs::WallSpan span(&tr, obs::names::kEvPolicyOnInterval, obs::names::kCatPolicy,
                           policy_wall_c_, policy_wall_h_);
        policy_->on_interval(now_, cfg_.interval, p99);
      }
      intervals_c_->inc();
      tr.complete(obs::names::kEvInterval, obs::names::kCatSim, interval_start,
                  now_ - interval_start, "p99_ms", static_cast<double>(p99) / 1e6,
                  "offered_rps", offered_now);
      if (measure) {
        measured_lat_.merge(h);
        record_interval(offered_now, p99, cfg_.interval);
        measured_time_ += cfg_.interval;
        measured_intervals_c_->inc();
        update_derived_gauges();
      } else {
        // Drain per-interval counters so the measured phase starts clean.
        queue_->take_interval_completed();
        for (auto& bw : be_) bw->take_interval_iterations();
      }
      next_interval_ = now_ + cfg_.interval;
      interval_start = now_;
    }
  }
}

void ColocationSim::apply_bandwidth_model(double lc_offered_rps) {
  // One-step-lagged fixed point: demand is computed from the previous tick's
  // (possibly contended) rates, then the new factors apply to this tick.
  const BandwidthModel& bw = cfg_.bandwidth;
  if (mem_->tier_count() == 2) {
    // The classic two-tier model, kept in its original arithmetic order so
    // 2-tier runs stay bit-identical to the pre-tier-vector code.
    double demand[2] = {0.0, 0.0};
    for (const auto& be : be_) {
      const double acc = be->current_rate() * be->config().profile.accesses_per_iteration;
      demand[0] += acc * be->fmem_weight();
      demand[1] += acc * (1.0 - be->fmem_weight());
    }
    const double lc_acc = lc_offered_rps * static_cast<double>(lc_->misses_per_request());
    demand[0] += lc_acc * mem_->fmem_usage_ratio(lc_->id());
    demand[1] += lc_acc * (1.0 - mem_->fmem_usage_ratio(lc_->id()));
    const double cap[2] = {bw.fmem_accesses_per_sec, bw.smem_accesses_per_sec};
    for (int t = 0; t < 2; ++t) {
      const double target = bandwidth_factor(bw, demand[t] / cap[t]);
      bw_factor_[t] = (1.0 - bw.damping) * bw_factor_[t] + bw.damping * target;
      mem_->set_contention_factor(static_cast<TierId>(t), bw_factor_[t]);
      bw_factor_g_[t]->set(bw_factor_[t]);
    }
  } else {
    // N-tier: the same demand/inflation fixed point, with each workload's
    // access stream split across tiers by the probability mass (BE) or page
    // count (LC) resident there.
    const TierId n = mem_->tier_count();
    std::vector<double> demand(n, 0.0);
    for (const auto& be : be_) {
      const double acc = be->current_rate() * be->config().profile.accesses_per_iteration;
      for (TierId t = 0; t < n; ++t) demand[t] += acc * be->tier_weight(t);
    }
    const double lc_acc = lc_offered_rps * static_cast<double>(lc_->misses_per_request());
    const auto lc_total = static_cast<double>(mem_->workload_total(lc_->id()));
    if (lc_total > 0) {
      for (TierId t = 0; t < n; ++t)
        demand[t] += lc_acc *
                     static_cast<double>(mem_->workload_pages(lc_->id(), t)) / lc_total;
    }
    for (TierId t = 0; t < n; ++t) {
      const double target = bandwidth_factor(bw, demand[t] / tier_accesses_per_sec(bw, t));
      bw_factor_[t] = (1.0 - bw.damping) * bw_factor_[t] + bw.damping * target;
      mem_->set_contention_factor(t, bw_factor_[t]);
      if (t < 2) bw_factor_g_[t]->set(bw_factor_[t]);
    }
  }
  if (inj_ != nullptr) {
    // An injected SMem latency spike stacks multiplicatively on top of the
    // modelled contention (the gauges keep reporting the model's own state).
    const double spike = inj_->smem_latency_factor();
    if (spike > 1.0) mem_->set_contention_factor(kFastestTier + 1, bw_factor_[1] * spike);
  }
}

void ColocationSim::record_interval(double offered_rps, Duration lc_p99, Duration interval) {
  TimePoint tp;
  tp.t_sec = to_seconds(now_);
  tp.offered_rps = offered_rps;
  tp.lc_p99_ms = static_cast<double>(lc_p99) / 1e6;
  const double interval_s = to_seconds(interval);
  tp.lc_throughput_rps = static_cast<double>(queue_->take_interval_completed()) / interval_s;
  tp.lc_fmem_ratio = mem_->fmem_usage_ratio(lc_->id());
  const auto fmem_cap = static_cast<double>(mem_->capacity(kFastestTier));
  tp.lc_fmem_share =
      static_cast<double>(mem_->workload_pages(lc_->id(), kFastestTier)) / fmem_cap;
  for (std::size_t i = 0; i < be_.size(); ++i) {
    tp.be_fmem_share.push_back(
        static_cast<double>(mem_->workload_pages(be_[i]->id(), kFastestTier)) / fmem_cap);
    const double iters = be_[i]->take_interval_iterations();
    be_measured_iters_[i] += iters;
    tp.be_throughput.push_back(iters / interval_s);
  }
  const double lc_p99_ms = tp.lc_p99_ms;
  series_.push_back(std::move(tp));
  pages_moved_measured_ = pages_moved_c_->value() - pages_moved_mark_;

  // Per-interval occupancy/latency samples, visible as counter charts in the
  // trace and as last-value gauges in metric dumps.
  metrics().gauge(obs::names::kLcFmemRatio).set(series_.back().lc_fmem_ratio);
  metrics().gauge(obs::names::kLcFmemShare).set(series_.back().lc_fmem_share);
  ctx_->trace().counter(obs::names::kEvLcFmemShare, obs::names::kCatMem, "share",
                        series_.back().lc_fmem_share);
  ctx_->trace().counter(obs::names::kEvLcP99Ms, obs::names::kCatSim, "ms", lc_p99_ms);
}

void ColocationSim::update_derived_gauges() {
  // The §5.5 overhead aggregates as derived views over the registry — kept
  // in lockstep with result() so a metrics dump is self-describing.
  const double secs = to_seconds(measured_time_);
  metrics().gauge(obs::names::kDerivedMigrationBytesPerSec)
      .set(secs > 0 ? pages_moved_measured_ * static_cast<double>(kPageSize) / secs : 0.0);
  const double intervals = measured_intervals_c_->value() - measured_intervals_mark_;
  metrics().gauge(obs::names::kDerivedPolicyWallUsPerInterval)
      .set(intervals > 0 ? (policy_wall_c_->value() - policy_wall_mark_) / intervals : 0.0);
}

void ColocationSim::reset_stats() {
  if (journal_armed_)
    journal_.push_back({SimCheckpoint::Op::Kind::kResetStats, LoadPattern::constant(0.0), 0, true});
  series_.clear();
  measured_lat_.reset();
  measured_requests_ = queue_->recorder().total_requests();
  measured_violations_ = queue_->recorder().slo_violations();
  for (auto& bw : be_) bw->take_interval_iterations();
  queue_->take_interval_completed();
  be_measured_iters_.assign(be_.size(), 0.0);
  measured_time_ = 0;
  pages_moved_mark_ = pages_moved_c_->value();
  pages_moved_measured_ = 0;
  policy_wall_mark_ = policy_wall_c_->value();
  measured_intervals_mark_ = measured_intervals_c_->value();
  update_derived_gauges();
}

SimResult ColocationSim::result() const {
  SimResult r;
  r.series = series_;
  r.lc_p99_ms = static_cast<double>(measured_lat_.percentile(99.0)) / 1e6;
  const std::uint64_t reqs = queue_->recorder().total_requests() - measured_requests_;
  const std::uint64_t viol = queue_->recorder().slo_violations() - measured_violations_;
  r.lc_completed = reqs;
  r.slo_violation_rate =
      reqs == 0 ? 0.0 : static_cast<double>(viol) / static_cast<double>(reqs);
  const double secs = to_seconds(measured_time_);
  double min_np = be_.empty() ? 0.0 : 1.0;
  for (std::size_t i = 0; i < be_.size(); ++i) {
    const double rate = secs > 0 ? be_measured_iters_[i] / secs : 0.0;
    r.be_rate.push_back(rate);
    const double np = rate / be_[i]->perf_full();
    r.be_np.push_back(np);
    r.be_total_throughput += rate;
    r.be_mean_np += np / static_cast<double>(be_.size());
    min_np = std::min(min_np, np);
  }
  r.fairness = min_np;
  // Derived views over the metrics registry (see SimResult's field comment).
  r.migration_bytes_per_sec =
      secs > 0 ? pages_moved_measured_ * static_cast<double>(kPageSize) / secs : 0.0;
  const double intervals = measured_intervals_c_->value() - measured_intervals_mark_;
  r.policy_wall_us_per_interval =
      intervals > 0 ? (policy_wall_c_->value() - policy_wall_mark_) / intervals : 0.0;
  return r;
}

std::unique_ptr<ColocationSim> ColocationSim::restore(const SimCheckpoint& cp,
                                                      obs::RunContext* ctx) {
  auto sim = std::make_unique<ColocationSim>(cp.config, ctx);
  // Replaying through the public entry points re-journals each op, so the
  // restored sim's own snapshot() equals the original's.
  for (const SimCheckpoint::Op& op : cp.ops) {
    if (op.kind == SimCheckpoint::Op::Kind::kRun)
      sim->run(op.pattern, op.duration, op.measure);
    else
      sim->reset_stats();
  }
  return sim;
}

std::string ColocationSim::fingerprint() const {
  std::ostringstream os;
  os << "t=" << now_;
  os << " used=";
  const TierId tiers = mem_->tier_count();
  for (TierId t = 0; t < tiers; ++t) os << (t ? "," : "") << mem_->used(t);
  os << " lc=";
  for (TierId t = 0; t < tiers; ++t)
    os << (t ? "," : "") << mem_->workload_pages(lc_->id(), t);
  for (std::size_t i = 0; i < be_.size(); ++i) {
    os << " be" << i << "=";
    for (TierId t = 0; t < tiers; ++t)
      os << (t ? "," : "") << mem_->workload_pages(be_[i]->id(), t);
  }
  // Per-sink per-tier bin-occupancy vectors: the PageHotness SoA state that
  // drives every promotion/demotion decision. Only non-empty bins are listed,
  // so the digest stays compact at fleet scale.
  const auto& sinks = sampler_->sinks();
  for (std::size_t s = 0; s < sinks.size(); ++s) {
    os << " h" << s << "[" << sinks[s]->tracked_pages() << "]=";
    for (std::size_t t = 0; t < sinks[s]->tier_count(); ++t)
      for (int b = 0; b < PageHotness::kBins; ++b)
        if (const std::size_t n = sinks[s]->bin_size(static_cast<TierId>(t), b); n != 0)
          os << t << ":" << b << ":" << n << ";";
  }
  return os.str();
}

}  // namespace mtat
