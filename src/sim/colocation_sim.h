// The co-location experiment engine.
//
// Owns one complete reproduction of the paper's server: a tiered memory, a
// bandwidth-budgeted migration engine, PEBS-like telemetry, one LC workload
// behind an open-loop M/G/k queue, a set of BE workloads, and one placement
// policy (MTAT variant or baseline). run() advances everything on a shared
// simulated clock; per-interval rows give the time series behind Figures 2
// and 5, and the aggregate metrics give fairness/throughput/SLO-violation
// numbers behind Figures 6, 8, 9 and Tables 3-4.
//
// Allocation order reproduces the paper's setup: the LC workload allocates
// first and FMem-first (Figure 2: "Redis initially occupies 100% of available
// FMem"), BE workloads spill to SMem — except under the static pins, which
// place LC (FMEM_ALL) or BE (SMEM_ALL) exclusively.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/mtat_policy.h"
#include "loadgen/queue_sim.h"
#include "mem/migration_engine.h"
#include "mem/tiered_memory.h"
#include "obs/run_context.h"
#include "policy/memtis_policy.h"
#include "policy/vtmm_policy.h"
#include "policy/damon_policy.h"
#include "policy/memtis_hp_policy.h"
#include "policy/policy.h"
#include "policy/static_policy.h"
#include "policy/tpp_policy.h"
#include "telemetry/access_sampler.h"
#include "workloads/be/be_workload.h"
#include "workloads/lc/lc_workload.h"

namespace mtat {

/// kVtmm and kDamon are extensions beyond the paper's comparison set (see
/// policy/vtmm_policy.h and policy/damon_policy.h); the rest are §5's
/// comparison points.
enum class PolicyKind {
  kMtatFull, kMtatLcOnly, kMemtis, kTpp, kFmemAll, kSmemAll, kVtmm, kDamon, kMemtisHp
};

const char* policy_name(PolicyKind k);

/// Optional tier-bandwidth contention model (§7's bandwidth-aware policy
/// discussion): when a tier's aggregate access demand approaches its
/// sustainable rate, its effective per-access latency inflates, which feeds
/// back into every workload's throughput and the LC service times.
struct BandwidthModel {
  bool enabled = false;
  double fmem_accesses_per_sec = 600e6;  ///< sustainable access rate, FMem
  double smem_accesses_per_sec = 45e6;   ///< sustainable access rate, SMem
  /// Optional per-tier sustainable rates for deeper topologies, indexed by
  /// TierId. Tiers beyond the vector (or with it empty) fall back to
  /// fmem_accesses_per_sec for tier 0 and smem_accesses_per_sec for the rest.
  std::vector<double> tier_accesses_per_sec;
  /// Inflation curve: latency factor = 1 / (1 - saturation * utilization),
  /// the standard open-queue approximation; `saturation` < 1 softens it so
  /// the coupled demand/latency fixed point stays stable.
  double saturation = 0.8;
  double max_factor = 4.0;  ///< latency inflation cap
  /// Per-tick EWMA damping of the factor (demand is elastic in latency, so
  /// the undamped one-step iteration can oscillate).
  double damping = 0.1;
};

/// The latency-inflation curve of the bandwidth model at utilization `rho`.
inline double bandwidth_factor(const BandwidthModel& bw, double rho) {
  const double r = std::min(0.999, rho);
  return std::min(bw.max_factor, std::max(1.0, 1.0 / (1.0 - bw.saturation * r)));
}

/// Sustainable access rate of tier `t` under the model's fallback rules.
inline double tier_accesses_per_sec(const BandwidthModel& bw, TierId t) {
  if (t < bw.tier_accesses_per_sec.size()) return bw.tier_accesses_per_sec[t];
  return t == kFastestTier ? bw.fmem_accesses_per_sec : bw.smem_accesses_per_sec;
}

struct SimConfig {
  // --- platform (DESIGN.md §5 scaled defaults) ---
  Bytes fmem = Bytes{2} * 1024 * 1024 * 1024;
  Bytes smem = Bytes{16} * 1024 * 1024 * 1024;
  Duration fmem_latency = 73;
  Duration smem_latency = 202;
  double migration_bandwidth = 4.0 * 1024 * 1024 * 1024;  ///< bytes/s (§5.5)
  /// Explicit tier vector (fastest first, e.g. from parse_topology). Empty —
  /// the default — means the classic two-tier platform built from the four
  /// fields above; non-empty overrides them, and each tier's link bandwidth
  /// feeds the migration engine's per-link budgets.
  std::vector<TierSpec> tiers;
  /// Capacity of the fastest tier, whichever way the platform was specified —
  /// what cluster-level placement treats as the node's FMem.
  Bytes fastest_capacity_bytes() const {
    return tiers.empty() ? fmem : tiers.front().capacity_pages * kPageSize;
  }
  // --- timing ---
  Duration tick = milliseconds(10);
  Duration interval = seconds(1);  ///< partitioning interval (paper: 60 s, /60)
  Duration latency_window = seconds(1);
  // --- tenants ---
  LCConfig lc;
  std::vector<BEConfig> be;
  // --- policy ---
  BandwidthModel bandwidth;
  PolicyKind policy = PolicyKind::kMtatFull;
  MtatPolicy::Options mtat;    ///< tunables for the MTAT variants
  SacAgent* shared_agent = nullptr;  ///< persist RL learning across sims
  std::uint64_t seed = 42;
};

/// One partitioning-interval row of the experiment time series.
struct TimePoint {
  double t_sec = 0;
  double offered_rps = 0;
  double lc_p99_ms = 0;
  double lc_throughput_rps = 0;
  double lc_fmem_ratio = 0;   ///< LC pages in FMem / LC RSS (Figure 2 bottom)
  double lc_fmem_share = 0;   ///< LC pages in FMem / FMem capacity (Figure 5)
  std::vector<double> be_fmem_share;   ///< per BE, of FMem capacity
  std::vector<double> be_throughput;   ///< per BE, iterations/s this interval
};

/// Aggregates over the measured portion of a run.
struct SimResult {
  std::vector<TimePoint> series;
  double lc_p99_ms = 0;            ///< P99 over the whole measured phase
  double slo_violation_rate = 0;   ///< fraction of requests over SLO (Table 4)
  std::uint64_t lc_completed = 0;
  std::vector<double> be_rate;     ///< mean iterations/s per BE
  std::vector<double> be_np;       ///< Eq. 3 normalized performance per BE
  double fairness = 0;             ///< min_i NP_i (§5.1's fairness metric)
  double be_total_throughput = 0;  ///< sum of mean BE rates (Figure 6b)
  double be_mean_np = 0;           ///< scale-free alternative aggregate
  /// §5.5 overhead proxies. Both are derived views over the sim's
  /// MetricsRegistry ("migration.pages_moved", "policy.wall_us",
  /// "sim.measured_intervals"), not separate bookkeeping — the registry's
  /// "derived.*" gauges carry the same values.
  double migration_bytes_per_sec = 0;      ///< PP-E overhead proxy (§5.5)
  double policy_wall_us_per_interval = 0;  ///< PP-M overhead proxy (§5.5)
};

/// A deterministic checkpoint of a ColocationSim (DESIGN.md §17): the
/// construction config plus the journal of every run()/reset_stats() call the
/// sim has executed. Under the determinism contract the sim's entire state —
/// tiered-memory occupancy, the PageHotness SoA histograms, policy/PP-E
/// state, every RNG cursor — is a pure function of (config, op sequence), so
/// restoring by replaying the journal into a fresh instance reconstructs it
/// bit-exactly (enforced by tests/checkpoint_test.cc and the cluster
/// warm-restart path). Ops hold copies of their LoadPatterns: a checkpoint is
/// plain data that can outlive the sim and cross threads.
struct SimCheckpoint {
  struct Op {
    enum class Kind { kRun, kResetStats };
    Kind kind = Kind::kRun;
    LoadPattern pattern = LoadPattern::constant(0.0);  // kRun only
    Duration duration = 0;                             // kRun only
    bool measure = true;                               // kRun only
  };
  SimConfig config;
  std::vector<Op> ops;

  /// Total simulated time replaying the journal costs — what a warm restart
  /// pays to reconstruct the node.
  Duration replay_time() const {
    Duration t = 0;
    for (const Op& op : ops)
      if (op.kind == Op::Kind::kRun) t += op.duration;
    return t;
  }
};

class ColocationSim {
 public:
  /// `ctx` is the run's observability context (metrics registry + trace
  /// recorder). Null (the default) makes the sim own a fresh context that
  /// traces into the process-global recorder — the single-run behaviour
  /// every tool had before contexts existed. A non-null context must outlive
  /// the sim; supply a private-trace context (obs::RunContext::TraceMode::
  /// kPrivate) to run several sims on concurrent threads, as
  /// experiments::ParallelRunner does.
  explicit ColocationSim(const SimConfig& cfg, obs::RunContext* ctx = nullptr);

  ColocationSim(const ColocationSim&) = delete;
  ColocationSim& operator=(const ColocationSim&) = delete;
  ~ColocationSim();

  /// Advance the simulation by `duration` under `pattern` (restarted at the
  /// current time). With measure=false (training/warmup) nothing is recorded.
  void run(const LoadPattern& pattern, Duration duration, bool measure = true);

  /// Aggregates for everything measured since construction (or reset_stats).
  SimResult result() const;

  /// Drop measured data, keeping all simulation and learning state — used
  /// between a training phase and the measured phase.
  void reset_stats();

  /// Checkpoint this sim: its construction config plus the full op journal
  /// (see SimCheckpoint). O(journal length); no simulation state is copied.
  SimCheckpoint snapshot() const { return {cfg_, journal_}; }

  /// Rebuild a sim from a checkpoint by constructing a fresh instance and
  /// replaying the journal — bit-exact vs. the snapshotted sim, including its
  /// measurement bookkeeping and metrics registry (minus wall-time metrics).
  /// The replayed ops re-enter the new sim's journal, so a restored sim's own
  /// snapshot() equals the original's. `ctx` follows the constructor's
  /// contract; a checkpoint whose config names a shared_agent replays its
  /// learning into that same agent, so restoring it is only deterministic
  /// when the agent is private to this sim's history.
  static std::unique_ptr<ColocationSim> restore(const SimCheckpoint& cp,
                                                obs::RunContext* ctx = nullptr);

  /// Structural state digest for checkpoint verification: the sim clock,
  /// per-tier occupancy, per-workload per-tier page counts, and every
  /// PageHotness sink's per-tier bin-occupancy vector. Two sims with equal
  /// fingerprints hold the same memory placement and telemetry state;
  /// metric-level equality is checked separately (wall-time metrics
  /// legitimately differ).
  std::string fingerprint() const;

  LCWorkload& lc() { return *lc_; }
  BEWorkload& be(std::size_t i) { return *be_[i]; }
  std::size_t be_count() const { return be_.size(); }
  TieredMemory& mem() { return *mem_; }
  MigrationEngine& engine() { return *engine_; }
  TieringPolicy& policy() { return *policy_; }
  const SimConfig& config() const { return cfg_; }
  SimTime now() const { return now_; }

  /// Every signal the sim and its components record (migration counters,
  /// policy wall time, queue depth, RL losses, bandwidth factors). Always on;
  /// export with obs::MetricsRegistry::write_json/write_csv.
  obs::MetricsRegistry& metrics() { return ctx_->metrics(); }
  const obs::MetricsRegistry& metrics() const { return ctx_->metrics(); }

  /// The observability context this sim records into (owned or borrowed).
  obs::RunContext& run_context() { return *ctx_; }

 private:
  void record_interval(double offered_rps, Duration lc_p99, Duration interval);
  void apply_bandwidth_model(double lc_offered_rps);
  void update_derived_gauges();

  SimConfig cfg_;
  // Declared before the components so an owned context is destroyed after
  // them: engine, queue, and policy cache pointers into its registry and
  // trace recorder. A borrowed context must outlive the sim (caller's
  // contract, see the constructor).
  std::unique_ptr<obs::RunContext> owned_ctx_;
  obs::RunContext* ctx_;
  std::unique_ptr<TieredMemory> mem_;
  std::unique_ptr<MigrationEngine> engine_;
  std::unique_ptr<AccessSampler> sampler_;
  std::unique_ptr<LCWorkload> lc_;
  std::vector<std::unique_ptr<BEWorkload>> be_;
  std::unique_ptr<QueueSim> queue_;
  std::unique_ptr<TieringPolicy> policy_;
  MtatPolicy* mtat_ = nullptr;  // non-null when policy is an MTAT variant
  faults::FaultInjector* inj_ = nullptr;  // the context's injector, or null
  double smem_spike_applied_ = 1.0;  // spike factor currently on the SMem tier

  SimTime now_ = 0;
  SimTime next_interval_ = 0;
  std::uint32_t trace_track_ = 0;

  // Checkpoint journal (see SimCheckpoint). Armed only after construction
  // completes: the constructor's own reset_stats() is part of every sim's
  // birth, not of its history.
  std::vector<SimCheckpoint::Op> journal_;
  bool journal_armed_ = false;

  // Cached registry handles (stable for the registry's lifetime).
  obs::Counter* policy_wall_c_ = nullptr;      // "policy.wall_us"
  obs::Histogram* policy_wall_h_ = nullptr;    // "policy.wall_us_hist"
  obs::Counter* intervals_c_ = nullptr;        // "sim.intervals"
  obs::Counter* measured_intervals_c_ = nullptr;  // "sim.measured_intervals"
  obs::Counter* pages_moved_c_ = nullptr;      // "migration.pages_moved" (engine-fed)
  obs::Gauge* bw_factor_g_[2] = {nullptr, nullptr};

  // Measurement phase bookkeeping. The §5.5 overhead aggregates are derived
  // from registry counters relative to marks captured at reset_stats().
  std::vector<TimePoint> series_;
  LatencyHistogram measured_lat_;
  std::uint64_t measured_requests_ = 0;
  std::uint64_t measured_violations_ = 0;
  std::vector<double> be_measured_iters_;
  Duration measured_time_ = 0;
  double pages_moved_mark_ = 0;      // counter value at reset_stats
  double pages_moved_measured_ = 0;  // counter delta as of the last interval
  double policy_wall_mark_ = 0;
  double measured_intervals_mark_ = 0;
  std::vector<double> bw_factor_;  // damped contention factors, one per tier
};

}  // namespace mtat
