#include "sim/experiments.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <exception>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>

#include "common/thread_annotations.h"

namespace mtat::experiments {

namespace {

// One flag for every runner instance: nested run_all is forbidden whichever
// runner it goes through, because the inner call would deadlock a one-worker
// pool on itself and scramble the deterministic trace-merge order on any
// larger one. Ownership: a process-wide reentrancy latch, atomic, reset by
// RAII on every exit path — never carries data between runs.
std::atomic<bool> g_run_all_active{false};  // mtat-lint: allow(shared-mutable)

/// First-error capture shared by the worker pool: whichever worker throws
/// first wins, later errors are dropped, and the winning exception is
/// rethrown on the calling thread after the pool joins.
struct ErrorSlot {
  std::exception_ptr take() EXCLUDES(mu) {
    std::lock_guard<std::mutex> lock(mu);
    return first;
  }
  void offer(std::exception_ptr e) EXCLUDES(mu) {
    std::lock_guard<std::mutex> lock(mu);
    if (first == nullptr) first = std::move(e);
  }

  std::mutex mu;
  std::exception_ptr first GUARDED_BY(mu);
};

}  // namespace

ParallelRunner::ParallelRunner(int jobs) : jobs_(jobs) {
  if (jobs_ <= 0) jobs_ = std::max(1u, std::thread::hardware_concurrency());
}

void ParallelRunner::run_all(const std::vector<RunSpec>& specs) {
  if (specs.empty()) return;

  if (g_run_all_active.exchange(true, std::memory_order_acq_rel))
    throw std::logic_error(
        "ParallelRunner::run_all is not reentrant: a RunSpec attempted to start "
        "another run_all (drive nested fan-out from the top level instead)");
  struct Release {
    std::atomic<bool>* flag;
    ~Release() { flag->store(false, std::memory_order_release); }
  } release{&g_run_all_active};

  // Contexts are created up front, in spec order, on the calling thread:
  // private trace rings only exist (and only cost memory) when the global
  // recorder is enabled, i.e. when someone asked for a trace file.
  // Sanctioned context-escape: run_all IS the merge site — it creates the
  // per-spec private contexts and folds them into the shared timeline below.
  obs::TraceRecorder& shared = obs::default_trace();  // mtat-lint: allow(context-escape)
  const bool tracing = shared.enabled();
  std::vector<std::unique_ptr<obs::RunContext>> ctxs;
  ctxs.reserve(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    ctxs.push_back(std::make_unique<obs::RunContext>(obs::RunContext::TraceMode::kPrivate));
    if (tracing) ctxs.back()->trace().enable(shared.capacity());
  }

  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  ErrorSlot error;

  const auto worker = [&] {
    for (;;) {
      if (failed.load(std::memory_order_relaxed)) return;
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= specs.size()) return;
      try {
        specs[i].fn(*ctxs[i]);
      } catch (...) {
        error.offer(std::current_exception());
        failed.store(true, std::memory_order_relaxed);
      }
    }
  };

  const int pool = static_cast<int>(
      std::min<std::size_t>(static_cast<std::size_t>(jobs_), specs.size()));
  if (pool <= 1) {
    worker();
  } else {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(pool));
    for (int t = 0; t < pool; ++t) threads.emplace_back(worker);
    for (std::thread& t : threads) t.join();
  }

  if (std::exception_ptr e = error.take()) std::rethrow_exception(e);

  // Fold the private rings into the shared timeline in spec order: merge
  // order — and therefore the track ids each spec's events land on — depends
  // only on the spec list, never on which worker finished first.
  for (const auto& ctx : ctxs) shared.merge_from(ctx->trace(), shared.next_track());
}

std::vector<LatencyCurvePoint> lc_latency_curve(const LCConfig& lc, double fmem_fraction,
                                                const std::vector<double>& load_fractions,
                                                Duration per_point, std::uint64_t seed,
                                                ParallelRunner* runner) {
  // Size FMem to hold exactly the requested fraction of the workload's
  // footprint; everything else lands in SMem. A zero fraction still needs a
  // nonzero tier, so floor at one page.
  Rng seeder(seed);
  const LCConfig cfg = lc;
  // Determine the footprint by building once against an all-SMem scratch.
  TieredMemory probe_mem(TieredMemory::Config::two_tier(
      1, bytes_to_pages(Bytes{64} * 1024 * 1024 * 1024)));
  LCWorkload probe(probe_mem, 0, cfg, kTierOnly(kFastestTier + 1), seeder.next_u64());
  const std::uint64_t footprint = probe.space().num_pages();

  const TieredMemory::Config mc = TieredMemory::Config::two_tier(
      std::max<std::uint64_t>(
          1, static_cast<std::uint64_t>(fmem_fraction * static_cast<double>(footprint))),
      footprint + 1024);

  // Per-point seeds are drawn here, in point order, so the result cannot
  // depend on the execution schedule; each point then runs on a fresh
  // memory/workload/queue triple and writes its own slot of `out`.
  struct PointPlan {
    double rate = 0;
    std::uint64_t wl_seed = 0;
    std::uint64_t queue_seed = 0;
  };
  std::vector<PointPlan> plan(load_fractions.size());
  for (std::size_t i = 0; i < load_fractions.size(); ++i) {
    plan[i].rate = load_fractions[i] * cfg.max_load_krps * 1000.0;
    plan[i].wl_seed = seeder.next_u64();
    plan[i].queue_seed = seeder.next_u64();
  }

  std::vector<LatencyCurvePoint> out(load_fractions.size());
  const auto run_point = [&](std::size_t i) {
    const PointPlan& pp = plan[i];
    TieredMemory mem(mc);
    LCWorkload wl(mem, 0, cfg, kFastestFirst, pp.wl_seed);
    QueueSim queue(wl, seconds(1), pp.queue_seed);
    const LoadPattern pattern = LoadPattern::constant(pp.rate);
    queue.set_pattern(&pattern, 0);
    const Duration warm = per_point / 5;
    queue.run_until(warm);
    queue.recorder().collect_interval();  // discard warmup
    const std::uint64_t before = queue.completed();
    queue.run_until(per_point);
    const LatencyHistogram h = queue.recorder().collect_interval();
    LatencyCurvePoint p;
    p.offered_krps = pp.rate / 1000.0;
    p.p99_ms = static_cast<double>(h.percentile(99.0)) / 1e6;
    p.achieved_krps = static_cast<double>(queue.completed() - before) /
                      to_seconds(per_point - warm) / 1000.0;
    out[i] = p;
  };

  if (runner == nullptr) {
    for (std::size_t i = 0; i < plan.size(); ++i) run_point(i);
  } else {
    std::vector<RunSpec> specs;
    specs.reserve(plan.size());
    for (std::size_t i = 0; i < plan.size(); ++i)
      specs.push_back({cfg.name + "@point" + std::to_string(i),
                       [&run_point, i](obs::RunContext&) { run_point(i); }});
    runner->run_all(specs);
  }
  return out;
}

namespace {

// Shared precondition of both bisection overloads. A NaN bracket endpoint
// would poison every midpoint (0.5 * (lo + NaN) is NaN) and the map-keyed
// parallel variant would then probe and cache garbage; an inverted bracket
// silently bisects the wrong way. Both are caller bugs — fail loudly.
void check_bracket(double lo_krps, double hi_krps) {
  if (!std::isfinite(lo_krps) || !std::isfinite(hi_krps))
    throw std::invalid_argument("find_max_load: non-finite bracket [" +
                                std::to_string(lo_krps) + ", " + std::to_string(hi_krps) + "]");
  if (lo_krps > hi_krps)
    throw std::invalid_argument("find_max_load: inverted bracket [" +
                                std::to_string(lo_krps) + ", " + std::to_string(hi_krps) + "]");
}

}  // namespace

double find_max_load(const std::function<bool(double)>& sustainable, double lo_krps,
                     double hi_krps, int iters) {
  check_bracket(lo_krps, hi_krps);
  double lo = lo_krps, hi = hi_krps;
  if (!sustainable(lo)) return lo;
  for (int i = 0; i < iters; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (sustainable(mid))
      lo = mid;
    else
      hi = mid;
  }
  return lo;
}

double find_max_load(const std::function<bool(double, obs::RunContext&)>& sustainable,
                     double lo_krps, double hi_krps, int iters, ParallelRunner& runner) {
  check_bracket(lo_krps, hi_krps);
  // Mirrors the serial recurrence exactly, two levels at a time: each batch
  // evaluates the current midpoint plus *both* midpoints it could lead to
  // (the full depth-2 frontier), so whatever the current probe decides, the
  // next level's answer is already in hand. Midpoints are computed with the
  // same 0.5 * (lo + hi) expression the serial loop uses, on the same
  // values, so the probe points — map keys included — are bit-identical to
  // the serial trajectory, and the result is too.
  std::map<double, bool> known;
  const auto probe = [&](const std::vector<double>& points) {
    std::vector<double> todo;
    for (double x : points)
      if (known.count(x) == 0 && std::find(todo.begin(), todo.end(), x) == todo.end())
        todo.push_back(x);
    if (todo.empty()) return;
    std::vector<char> ok(todo.size(), 0);
    std::vector<RunSpec> specs;
    specs.reserve(todo.size());
    for (std::size_t i = 0; i < todo.size(); ++i) {
      const double x = todo[i];
      specs.push_back({"probe@" + std::to_string(x) + "krps",
                       [&sustainable, &ok, i, x](obs::RunContext& ctx) {
                         ok[i] = sustainable(x, ctx) ? 1 : 0;
                       }});
    }
    runner.run_all(specs);
    for (std::size_t i = 0; i < todo.size(); ++i) known[todo[i]] = ok[i] != 0;
  };

  double lo = lo_krps, hi = hi_krps;
  const auto resolve = [&] {
    const double mid = 0.5 * (lo + hi);
    if (known.at(mid))
      lo = mid;
    else
      hi = mid;
  };

  // First batch: the lo feasibility check rides along with the first frontier
  // instead of gating it — one extra speculative level beats a serial stall.
  {
    const double m = 0.5 * (lo + hi);
    if (iters >= 2)
      probe({lo, m, 0.5 * (lo + m), 0.5 * (m + hi)});
    else if (iters == 1)
      probe({lo, m});
    else
      probe({lo});
  }
  if (!known.at(lo_krps)) return lo_krps;
  int remaining = iters;
  if (remaining >= 1) {
    resolve();
    --remaining;
  }
  if (remaining >= 1 && iters >= 2) {
    resolve();
    --remaining;
  }
  while (remaining > 0) {
    const double m = 0.5 * (lo + hi);
    if (remaining >= 2) {
      probe({m, 0.5 * (lo + m), 0.5 * (m + hi)});
      resolve();
      resolve();
      remaining -= 2;
    } else {
      probe({m});
      resolve();
      --remaining;
    }
  }
  return lo;
}

bool probe_slo_sustainable(ColocationSim& sim, double krps, Duration warm, Duration duration,
                           double max_violation_rate) {
  const LoadPattern pattern = LoadPattern::constant(krps * 1000.0);
  sim.run(pattern, warm, /*measure=*/false);
  sim.reset_stats();
  sim.run(pattern, duration, /*measure=*/true);
  // A NaN violation rate (possible only if measurement itself broke) must
  // read as "not sustainable", not as the false a NaN comparison yields by
  // accident — the bisection would otherwise certify a broken operating point.
  const double rate = sim.result().slo_violation_rate;
  return std::isfinite(rate) && rate <= max_violation_rate;
}

}  // namespace mtat::experiments
