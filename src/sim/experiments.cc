#include "sim/experiments.h"

namespace mtat {

std::vector<LatencyCurvePoint> lc_latency_curve(const LCConfig& lc, double fmem_fraction,
                                                const std::vector<double>& load_fractions,
                                                Duration per_point, std::uint64_t seed) {
  // Size FMem to hold exactly the requested fraction of the workload's
  // footprint; everything else lands in SMem. A zero fraction still needs a
  // nonzero tier, so floor at one page.
  Rng seeder(seed);
  LCConfig cfg = lc;
  // Determine the footprint by building once against an all-SMem scratch.
  TieredMemory::Config probe_mc;
  probe_mc.fmem_pages = 1;
  probe_mc.smem_pages = bytes_to_pages(Bytes{64} * 1024 * 1024 * 1024);
  TieredMemory probe_mem(probe_mc);
  LCWorkload probe(probe_mem, 0, cfg, AllocPolicy::kSMemOnly, seeder.next_u64());
  const std::uint64_t footprint = probe.space().num_pages();

  TieredMemory::Config mc;
  mc.fmem_pages = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(fmem_fraction * static_cast<double>(footprint)));
  mc.smem_pages = footprint + 1024;
  TieredMemory mem(mc);
  LCWorkload wl(mem, 0, cfg, AllocPolicy::kFMemFirst, seeder.next_u64());

  std::vector<LatencyCurvePoint> out;
  for (double f : load_fractions) {
    const double rate = f * cfg.max_load_krps * 1000.0;
    QueueSim queue(wl, seconds(1), seeder.next_u64());
    const LoadPattern pattern = LoadPattern::constant(rate);
    queue.set_pattern(&pattern, 0);
    const Duration warm = per_point / 5;
    queue.run_until(warm);
    queue.recorder().collect_interval();  // discard warmup
    const std::uint64_t before = queue.completed();
    queue.run_until(per_point);
    const LatencyHistogram h = queue.recorder().collect_interval();
    LatencyCurvePoint p;
    p.offered_krps = rate / 1000.0;
    p.p99_ms = static_cast<double>(h.percentile(99.0)) / 1e6;
    p.achieved_krps = static_cast<double>(queue.completed() - before) /
                      to_seconds(per_point - warm) / 1000.0;
    out.push_back(p);
  }
  return out;
}

double find_max_load(const std::function<bool(double)>& sustainable, double lo_krps,
                     double hi_krps, int iters) {
  double lo = lo_krps, hi = hi_krps;
  if (!sustainable(lo)) return lo;
  for (int i = 0; i < iters; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (sustainable(mid))
      lo = mid;
    else
      hi = mid;
  }
  return lo;
}

bool probe_slo_sustainable(ColocationSim& sim, double krps, Duration warm, Duration duration,
                           double max_violation_rate) {
  const LoadPattern pattern = LoadPattern::constant(krps * 1000.0);
  sim.run(pattern, warm, /*measure=*/false);
  sim.reset_stats();
  sim.run(pattern, duration, /*measure=*/true);
  return sim.result().slo_violation_rate <= max_violation_rate;
}

}  // namespace mtat
