// Reusable experiment drivers shared by the benchmark harness and examples.
#pragma once

#include <functional>
#include <vector>

#include "sim/colocation_sim.h"

namespace mtat {

/// One point of a Figure-1 latency curve.
struct LatencyCurvePoint {
  double offered_krps = 0;
  double p99_ms = 0;
  double achieved_krps = 0;
};

/// P99-vs-load curve for an LC workload running *alone* with a static FMem
/// allocation able to hold `fmem_fraction` of its footprint (Figure 1's
/// FMem 0/25/50/75/100% settings). Each load level runs on a fresh queue
/// (no backlog carry-over), `per_point` of simulated time with the first
/// fifth discarded as warmup.
std::vector<LatencyCurvePoint> lc_latency_curve(const LCConfig& lc, double fmem_fraction,
                                                const std::vector<double>& load_fractions,
                                                Duration per_point, std::uint64_t seed);

/// Generic bisection for "maximum load satisfying a predicate" (Figure 8's
/// max sustainable load). `sustainable(krps)` must be monotone (true below
/// the knee). Returns the largest sustainable load found within `iters`
/// halvings of [lo, hi].
double find_max_load(const std::function<bool(double krps)>& sustainable, double lo_krps,
                     double hi_krps, int iters = 7);

/// Convenience: SLO-violation criterion the paper uses — run `sim` at
/// constant `krps` for `duration` (after `warm` uncounted) and require the
/// measured violation rate to stay under `max_violation_rate`.
bool probe_slo_sustainable(ColocationSim& sim, double krps, Duration warm, Duration duration,
                           double max_violation_rate = 0.01);

}  // namespace mtat
