// Reusable experiment drivers shared by the benchmark harness and examples.
//
// Public surface (namespace mtat::experiments):
//  * RunSpec / ParallelRunner — a small thread pool executing independent
//    experiment points, each with its own private-trace obs::RunContext, with
//    results and traces folded back in deterministic spec order.
//  * lc_latency_curve — the Figure-1 P99-vs-load sweep, optionally fanned
//    across a runner.
//  * find_max_load — bisection for "maximum load satisfying a predicate",
//    serial classic form plus a speculative parallel overload.
//  * probe_slo_sustainable — the paper's SLO-violation sustainability probe.
//
// Determinism contract: for a given seed, every driver here produces
// bit-identical results whatever the job count. Parallel work is pre-seeded
// and pre-partitioned in spec order before any worker starts, workers write
// into disjoint result slots, and nothing consults scheduling order. The
// parallel bisection evaluates a jobs-invariant probe set (see
// find_max_load), so even its *predicate call set* does not depend on the
// worker count. DESIGN.md §11 spells out the full contract.
//
// Everything lives in mtat::experiments; the pre-namespace mtat:: forwarding
// wrappers that once sat at the bottom of this header are gone — callers
// qualify with experiments:: directly.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "obs/run_context.h"
#include "sim/colocation_sim.h"

namespace mtat::experiments {

/// One point of a Figure-1 latency curve.
struct LatencyCurvePoint {
  double offered_krps = 0;
  double p99_ms = 0;
  double achieved_krps = 0;
};

/// One independent unit of work for ParallelRunner. `fn` receives a
/// private-trace obs::RunContext dedicated to this spec: build simulations
/// with `ColocationSim(cfg, &ctx)` (never the default context — that borrows
/// the process-global trace recorder, which concurrent sims would race on)
/// and write results into storage no other spec touches.
struct RunSpec {
  std::string name;
  std::function<void(obs::RunContext&)> fn;
};

/// Executes independent experiment points on a small worker pool.
///
/// run_all(specs) creates one obs::RunContext (TraceMode::kPrivate) per spec
/// up front, runs every spec's fn exactly once across `jobs` workers, and —
/// after all workers join — merges each spec's private trace ring into the
/// process-global recorder *in spec order* with distinct track ids
/// (TraceRecorder::merge_from), so MTAT_TRACE output is reproducible and
/// independent of scheduling. Private recorders are only enabled (and their
/// rings only allocated) when the global recorder is already enabled.
///
/// Exceptions thrown by a spec stop workers from claiming further specs; the
/// first exception (in claim order) is rethrown from run_all after the pool
/// joins, and no trace merging happens on the error path.
///
/// run_all must be called from one thread at a time (bench main); it is not
/// reentrant from inside a spec, because the final merge into the global
/// recorder is unsynchronized and a one-worker pool would deadlock on
/// itself. Nesting is an explicit error, not undefined behaviour: a run_all
/// that starts while another is active — through *any* runner instance —
/// throws std::logic_error from the inner call, and the outer call then
/// rethrows it like any other spec failure.
class ParallelRunner {
 public:
  /// `jobs` <= 0 selects std::thread::hardware_concurrency() (min 1) — the
  /// MTAT_JOBS default. jobs == 1 runs every spec inline on the calling
  /// thread (no pool), which is the bit-identical serial reference path.
  explicit ParallelRunner(int jobs = 0);

  int jobs() const { return jobs_; }

  void run_all(const std::vector<RunSpec>& specs);

 private:
  int jobs_;
};

/// P99-vs-load curve for an LC workload running *alone* with a static FMem
/// allocation able to hold `fmem_fraction` of its footprint (Figure 1's
/// FMem 0/25/50/75/100% settings). Each load level runs on a fresh memory /
/// workload / queue triple (no state carry-over between points), `per_point`
/// of simulated time with the first fifth discarded as warmup. Per-point
/// seeds are drawn up front from `seed` in point order, so the curve is
/// bit-identical whether the points run serially (`runner` null) or fanned
/// across a ParallelRunner.
std::vector<LatencyCurvePoint> lc_latency_curve(const LCConfig& lc, double fmem_fraction,
                                                const std::vector<double>& load_fractions,
                                                Duration per_point, std::uint64_t seed,
                                                ParallelRunner* runner = nullptr);

/// Generic bisection for "maximum load satisfying a predicate" (Figure 8's
/// max sustainable load). `sustainable(krps)` must be monotone (true below
/// the knee). Returns the largest sustainable load found within `iters`
/// halvings of [lo, hi]; if the predicate fails even at `lo` the bisection
/// returns `lo` immediately. Guard for non-monotone predicates: the returned
/// value (beyond `lo` itself) is always one the predicate actually accepted
/// during the search, never an interpolation. Throws std::invalid_argument
/// for a non-finite or inverted bracket (both overloads) — a NaN endpoint
/// would otherwise poison every midpoint and bisect on garbage.
double find_max_load(const std::function<bool(double krps)>& sustainable, double lo_krps,
                     double hi_krps, int iters = 7);

/// Parallel bisection: same recurrence and same result as the serial form
/// for any *pure* deterministic predicate, with probes batched through
/// `runner`. Each batch speculatively evaluates both possible next midpoints
/// alongside the current one (a depth-2 frontier), so two bisection levels
/// resolve per batch and three to four probes run concurrently. The probe
/// set depends only on [lo, hi] and `iters`, never on the job count —
/// jobs=1 and jobs=N evaluate the predicate at the exact same points.
/// The predicate MUST be pure (no state shared across probes, e.g. no
/// shared SacAgent): speculative probes that a serial bisection would never
/// reach do run here. Impure predicates must use the serial overload.
double find_max_load(const std::function<bool(double krps, obs::RunContext& ctx)>& sustainable,
                     double lo_krps, double hi_krps, int iters, ParallelRunner& runner);

/// Convenience: SLO-violation criterion the paper uses — run `sim` at
/// constant `krps` for `duration` (after `warm` uncounted) and require the
/// measured violation rate to stay under `max_violation_rate`. A non-finite
/// measured rate reads as unsustainable (NaN must not pass a <= by accident).
bool probe_slo_sustainable(ColocationSim& sim, double krps, Duration warm, Duration duration,
                           double max_violation_rate = 0.01);

}  // namespace mtat::experiments
