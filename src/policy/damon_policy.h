// Region-granular tiering baseline in the style of DAMON-based systems
// (Telescope, USENIX ATC'24 — reference [26] of the paper): hotness is
// tracked per *region* by the adaptive RegionMonitor rather than per page,
// and whole regions are promoted/demoted by density rank.
//
// The point of including it: region telemetry costs O(regions) instead of
// O(pages) — the terabyte-footprint argument of Telescope — but a region's
// heat smears over all its pages, so an LC tenant's sparse-but-critical
// pages are even easier to misclassify than under page-granular MEMTIS.
// Workload-blind by design, like the other frequency-driven baselines.
#pragma once

#include <memory>
#include <vector>

#include "policy/policy.h"
#include "telemetry/region_monitor.h"

namespace mtat {

class DamonPolicy : public TieringPolicy {
 public:
  struct Options {
    RegionMonitor::Options monitor;
    /// Cap on pages migrated toward the wanted set per tick (on top of the
    /// engine's bandwidth budget).
    std::size_t max_moves_per_tick = 4096;
  };

  explicit DamonPolicy(const PolicyContext& ctx);
  DamonPolicy(const PolicyContext& ctx, Options opt);

  std::string name() const override { return "damon"; }
  void on_tick(SimTime now, Duration dt) override;
  void on_interval(SimTime now, Duration interval, Duration lc_p99) override;

  const RegionMonitor& monitor(std::size_t tenant) const { return *monitors_[tenant]; }

 private:
  struct RankedRegion {
    std::size_t tenant = 0;
    std::uint64_t begin = 0, end = 0;  // vpages within the tenant
    double density = 0;
  };

  PageId page_at(std::size_t tenant, std::uint64_t vpage) const {
    return first_page_[tenant] + static_cast<PageId>(vpage);
  }

  PolicyContext ctx_;
  Options opt_;
  std::vector<std::unique_ptr<RegionMonitor>> monitors_;
  std::vector<PageId> first_page_;
  // The interval's plan: regions to pull into FMem (hottest first) and the
  // eviction pool (coldest first), with incremental cursors.
  std::vector<RankedRegion> wanted_;
  std::vector<RankedRegion> evictable_;
  std::size_t want_idx_ = 0;
  std::uint64_t want_page_ = 0;
  std::size_t evict_idx_ = 0;
  std::uint64_t evict_page_ = 0;
};

}  // namespace mtat
