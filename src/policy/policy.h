// The tiering-policy interface every placement scheme in the reproduction
// implements: MTAT (Full and LC-Only), the MEMTIS-like and TPP-like
// baselines, and the static FMEM_ALL / SMEM_ALL pins.
//
// A policy acts through exactly two entry points driven by the simulation
// clock: on_tick (fine-grained, every simulation tick — continuous page
// migration work, spending the shared MigrationEngine budget) and
// on_interval (the paper's partition-policy interval — heavyweight decisions
// such as RL inference, SA search, and histogram aging). Policies never touch
// pages directly; all movement is budgeted through the MigrationEngine, so no
// scheme can out-migrate the platform's bandwidth.
#pragma once

#include <string>
#include <vector>

#include "common/types.h"
#include "common/units.h"
#include "mem/migration_engine.h"
#include "mem/tiered_memory.h"
#include "telemetry/access_sampler.h"

namespace mtat {

/// What a policy is told about each co-located tenant.
struct TenantInfo {
  WorkloadId id = kInvalidWorkload;
  bool is_lc = false;
};

/// Shared plumbing handed to policies at construction. Owned by the
/// simulation; policies keep the pointer for their lifetime.
struct PolicyContext {
  TieredMemory* mem = nullptr;
  MigrationEngine* engine = nullptr;
  AccessSampler* sampler = nullptr;
  std::vector<TenantInfo> tenants;

  const TenantInfo& lc_tenant() const {
    for (const TenantInfo& t : tenants)
      if (t.is_lc) return t;
    throw std::logic_error("PolicyContext: no LC tenant");
  }
};

class TieringPolicy {
 public:
  virtual ~TieringPolicy() = default;

  virtual std::string name() const = 0;

  /// Fine-grained migration work; called once per simulation tick.
  virtual void on_tick(SimTime now, Duration dt) = 0;

  /// Partition-interval decisions. `lc_p99` is the LC workload's P99 over the
  /// elapsed interval (0 when no requests completed) — PP-M's reward input;
  /// baselines are free to ignore it.
  virtual void on_interval(SimTime now, Duration interval, Duration lc_p99) = 0;
};

}  // namespace mtat
