#include "policy/memtis_hp_policy.h"

#include <algorithm>

namespace mtat {

MemtisHpPolicy::MemtisHpPolicy(const PolicyContext& ctx) : MemtisHpPolicy(ctx, Options{}) {}

MemtisHpPolicy::MemtisHpPolicy(const PolicyContext& ctx, Options opt)
    : ctx_(ctx),
      opt_(opt),
      hist_(*ctx.mem),
      blocks_((ctx.mem->page_count() + kBlockPages - 1) / kBlockPages),
      seen_(ctx.mem->page_count(), 0) {
  ctx_.sampler->add_sink(&hist_);
  hist_.seed_allocated_pages();
  ctx_.sampler->add_callback([this](WorkloadId, PageId p, AccessKind) { on_sample(p); });
}

void MemtisHpPolicy::on_sample(PageId p) {
  if (p >= seen_.size()) return;  // allocated after attach
  Block& b = blocks_[p / kBlockPages];
  b.count++;
  if (!seen_[p]) {
    seen_[p] = 1;
    b.distinct++;
  }
}

void MemtisHpPolicy::promote_block(std::uint64_t block_index) {
  // Move every frame of the block into FMem, displacing the globally
  // coldest frames — the bulk path huge-page management buys.
  const PageId begin = static_cast<PageId>(block_index * kBlockPages);
  const PageId end = static_cast<PageId>(
      std::min<std::uint64_t>(ctx_.mem->page_count(), (block_index + 1) * kBlockPages));
  for (PageId p = begin; p < end; ++p) {
    if (ctx_.mem->tier_of(p) == kFastestTier) continue;
    if (ctx_.mem->free_pages(kFastestTier) > 0) {
      if (!ctx_.engine->promote_to_fastest(p)) return;
      continue;
    }
    const PageId victim = hist_.coldest_page(kFastestTier);
    if (victim == kInvalidPage) return;
    // Never let a block evict itself.
    if (victim >= begin && victim < end) continue;
    if (!ctx_.engine->exchange(p, victim)) return;
  }
  ++block_promotions_;
}

void MemtisHpPolicy::on_tick(SimTime, Duration) {
  // Bulk path first: pending hot-huge blocks from the last interval.
  while (!pending_blocks_.empty() && ctx_.engine->budget_pages() >= 2 * kBlockPages) {
    const std::uint64_t blk = pending_blocks_.back();
    pending_blocks_.pop_back();
    promote_block(blk);
  }
  // Base/split path: page-granular hottest-vs-coldest exchange, as MEMTIS.
  std::uint64_t free_fmem = ctx_.mem->free_pages(kFastestTier);
  if (free_fmem > 0) {
    hist_.hottest_in_slower(
        std::min<std::uint64_t>(free_fmem, ctx_.engine->budget_pages()), hot_);
    for (PageId p : hot_)
      if (!ctx_.engine->promote_to_fastest(p)) break;
  }
  const std::size_t batch =
      std::min<std::size_t>(opt_.max_exchanges_per_tick, ctx_.engine->budget_pages() / 2);
  if (batch == 0) return;
  hist_.hottest_in_slower(batch, hot_);
  hist_.coldest_in_tier(kFastestTier, batch, victims_);
  std::size_t vi = 0;
  for (PageId p : hot_) {
    if (vi >= victims_.size()) break;
    if (hist_.bin_of_page(p) - hist_.bin_of_page(victims_[vi]) < opt_.min_bin_gap) break;
    if (!ctx_.engine->exchange(p, victims_[vi])) break;
    ++vi;
  }
}

void MemtisHpPolicy::on_interval(SimTime, Duration, Duration) {
  // Page-size determination: rank blocks by count; a block whose samples
  // cover enough distinct frames is huge-managed (bulk promotion), a skewed
  // one is left to the page-granular path ("split").
  std::uint64_t window_total = 0;
  for (const Block& b : blocks_) window_total += b.count;
  std::vector<std::pair<std::uint32_t, std::uint64_t>> ranked;  // (count, index)
  if (window_total > 0) {
    for (std::uint64_t i = 0; i < blocks_.size(); ++i) {
      const Block& b = blocks_[i];
      if (b.count == 0) continue;
      const double util = static_cast<double>(b.distinct) / static_cast<double>(kBlockPages);
      if (util >= opt_.util_threshold) ranked.push_back({b.count, i});
    }
    std::sort(ranked.rbegin(), ranked.rend());
    pending_blocks_.clear();
    const std::size_t n = std::min(opt_.max_block_promotions_per_interval, ranked.size());
    // Stored in reverse so on_tick pops the hottest block first.
    for (std::size_t i = n; i-- > 0;) pending_blocks_.push_back(ranked[i].second);
  }
  // Reset window state and cool the page histogram on its own period.
  for (Block& b : blocks_) b = Block{};
  std::fill(seen_.begin(), seen_.end(), 0);
  if (++intervals_since_cooling_ >= opt_.cooling_period_intervals) {
    hist_.age();
    intervals_since_cooling_ = 0;
  }
}

}  // namespace mtat
