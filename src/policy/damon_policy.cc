#include "policy/damon_policy.h"

#include <algorithm>

namespace mtat {

DamonPolicy::DamonPolicy(const PolicyContext& ctx) : DamonPolicy(ctx, Options{}) {}

DamonPolicy::DamonPolicy(const PolicyContext& ctx, Options opt) : ctx_(ctx), opt_(opt) {
  for (std::size_t i = 0; i < ctx.tenants.size(); ++i) {
    const auto& pages = ctx.mem->pages_of(ctx.tenants[i].id);
    first_page_.push_back(pages.front());
    RegionMonitor::Options mo = opt_.monitor;
    mo.seed = opt_.monitor.seed + i * 101;
    monitors_.push_back(std::make_unique<RegionMonitor>(pages.size(), mo));
  }
  // Route the sampled access stream into the per-tenant monitors.
  ctx_.sampler->add_callback([this](WorkloadId w, PageId p, AccessKind) {
    for (std::size_t i = 0; i < ctx_.tenants.size(); ++i) {
      if (ctx_.tenants[i].id != w) continue;
      const std::uint64_t vpage = p - first_page_[i];
      if (vpage < monitors_[i]->footprint_pages()) monitors_[i]->record(vpage);
      return;
    }
  });
}

void DamonPolicy::on_interval(SimTime, Duration, Duration) {
  // Rank every tenant's regions by access density and split them into the
  // set that should occupy FMem (hottest, up to capacity) and the eviction
  // pool (everything else, coldest first).
  std::vector<RankedRegion> all;
  for (std::size_t t = 0; t < monitors_.size(); ++t)
    for (const auto& r : monitors_[t]->aggregate())
      all.push_back(RankedRegion{t, r.begin, r.end, r.density()});
  std::sort(all.begin(), all.end(),
            [](const RankedRegion& a, const RankedRegion& b) { return a.density > b.density; });

  wanted_.clear();
  evictable_.clear();
  std::uint64_t budget = ctx_.mem->capacity(kFastestTier);
  for (const RankedRegion& r : all) {
    const std::uint64_t size = r.end - r.begin;
    if (r.density > 0.0 && size <= budget) {
      wanted_.push_back(r);
      budget -= size;
    } else {
      evictable_.push_back(r);
    }
  }
  std::reverse(evictable_.begin(), evictable_.end());  // coldest first
  want_idx_ = want_page_ = evict_idx_ = evict_page_ = 0;
}

void DamonPolicy::on_tick(SimTime, Duration) {
  // Walk the wanted regions, pulling their SMem-resident pages into FMem;
  // victims come from the eviction pool, coldest regions first.
  std::size_t moves = 0;
  while (moves < opt_.max_moves_per_tick && want_idx_ < wanted_.size() &&
         ctx_.engine->budget_pages() >= 2) {
    const RankedRegion& w = wanted_[want_idx_];
    if (want_page_ == 0) want_page_ = w.begin;
    if (want_page_ >= w.end) {
      ++want_idx_;
      want_page_ = 0;
      continue;
    }
    const PageId up = page_at(w.tenant, want_page_++);
    if (ctx_.mem->tier_of(up) == kFastestTier) continue;
    if (ctx_.mem->free_pages(kFastestTier) > 0) {
      if (!ctx_.engine->promote_to_fastest(up)) return;
      ++moves;
      continue;
    }
    // Find the next evictable FMem-resident page.
    PageId down = kInvalidPage;
    while (evict_idx_ < evictable_.size()) {
      const RankedRegion& e = evictable_[evict_idx_];
      if (evict_page_ == 0) evict_page_ = e.begin;
      if (evict_page_ >= e.end) {
        ++evict_idx_;
        evict_page_ = 0;
        continue;
      }
      const PageId candidate = page_at(e.tenant, evict_page_++);
      if (ctx_.mem->tier_of(candidate) == kFastestTier) {
        down = candidate;
        break;
      }
    }
    if (down == kInvalidPage) return;  // nothing left to evict this interval
    if (!ctx_.engine->exchange(up, down)) return;
    ++moves;
  }
}

}  // namespace mtat
