// MEMTIS-like baseline (Lee et al., SOSP'23).
//
// Decision core reimplemented from the paper: one *unified* page-access
// histogram across all tenants (exponential bins, sampled counts), a hot
// threshold sized so the pages above it fit FMem, continuous migration of
// hot SMem pages into FMem displacing the coldest FMem pages, and periodic
// count cooling (halving). Deliberately workload-blind — that blindness is
// the phenomenon §2.2 demonstrates: steady BE access streams dominate the
// histogram, LC pages classify as cold, and LC data ends up in SMem.
// (MEMTIS's huge-page split/collapse machinery is out of scope; DESIGN.md §1.)
#pragma once

#include <memory>

#include "policy/policy.h"
#include "telemetry/page_hotness.h"

namespace mtat {

class MemtisPolicy : public TieringPolicy {
 public:
  struct Options {
    /// Cool (halve) the histogram every this many intervals.
    int cooling_period_intervals = 2;
    /// Exchange batch cap per tick (beyond the engine's bandwidth budget).
    std::size_t max_exchanges_per_tick = 4096;
    /// Promote only when the SMem page's bin exceeds the FMem victim's bin
    /// by at least this much (hysteresis against ping-ponging).
    int min_bin_gap = 1;
  };

  explicit MemtisPolicy(const PolicyContext& ctx);
  MemtisPolicy(const PolicyContext& ctx, Options opt);

  std::string name() const override { return "memtis"; }
  void on_tick(SimTime now, Duration dt) override;
  void on_interval(SimTime now, Duration interval, Duration lc_p99) override;

  const PageHotness& histogram() const { return hist_; }

 private:
  PolicyContext ctx_;
  Options opt_;
  PageHotness hist_;  // unified, all tenants
  int intervals_since_cooling_ = 0;
  // Scratch for the per-tick histogram pulls (capacity persists across ticks).
  std::vector<PageId> hot_;
  std::vector<PageId> victims_;
};

}  // namespace mtat
