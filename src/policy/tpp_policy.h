// TPP-like baseline (Maruf et al., ASPLOS'23).
//
// Decision core reimplemented from the paper: pages are promoted on access
// faults rather than by frequency ranking — an SMem page becomes a promotion
// candidate once it is seen again while on the "active" shadow list (TPP's
// two-touch NUMA-hint-fault filter) — and FMem is reclaimed to a free-page
// watermark by demoting pages from the cold end of an LRU approximation
// (clock with reference bits fed by the sampled access stream). Like the real
// system it is workload-blind and reactive: promotion happens only *after*
// faults occur, which is precisely the "no timely benefit" failure mode §5.1
// attributes to it for LC workloads, and its constant fault-driven churn is
// why the paper measures TPP below even SMEM_ALL.
#pragma once

#include <deque>
#include <vector>

#include "policy/policy.h"

namespace mtat {

class TppPolicy : public TieringPolicy {
 public:
  struct Options {
    /// Target free-FMem fraction maintained by watermark demotion (TPP keeps
    /// headroom so promotions always have somewhere to land).
    double free_watermark = 0.02;
    /// A page sampled on SMem enters the shadow active list; a second sample
    /// within this many ticks qualifies it for promotion.
    int active_window_ticks = 100;
    std::size_t max_promotions_per_tick = 4096;
  };

  explicit TppPolicy(const PolicyContext& ctx);
  TppPolicy(const PolicyContext& ctx, Options opt);

  std::string name() const override { return "tpp"; }
  void on_tick(SimTime now, Duration dt) override;
  void on_interval(SimTime now, Duration interval, Duration lc_p99) override;

 private:
  void on_sample(PageId p);

  PolicyContext ctx_;
  Options opt_;
  // Shadow state per page: last-seen tick for slower-tier pages (two-touch
  // filter), reference bit consulted by the page's tier's reclaim clock.
  std::vector<std::int64_t> last_seen_tick_;
  std::vector<std::uint8_t> ref_bit_;
  std::deque<PageId> promote_queue_;
  std::vector<std::uint8_t> queued_;
  /// One clock hand per demoting tier (every tier but the slowest).
  std::vector<std::uint64_t> clock_hand_;
  std::int64_t tick_no_ = 0;
};

}  // namespace mtat
