// vTMM-like baseline (Sha et al., EuroSys'23) — an *extension* beyond the
// paper's comparison set, implemented because the paper's related-work
// section singles it out as the closest per-tenant allocation scheme: each
// tenant's "hot set size" is the number of its pages whose sampled access
// count exceeds a base threshold, and FMem is divided proportionally to hot
// set sizes. Like MTAT it partitions per tenant; unlike MTAT it is still
// purely frequency-driven, so an LC tenant with a bursty-but-sparse access
// pattern measures a tiny hot set and gets a tiny partition — the same §2.2
// failure mode, now at partition granularity.
//
// Enforcement reuses MTAT's PartitionEnforcer (quota plans + within-partition
// hotness refinement), so the comparison isolates the *sizing* policy.
#pragma once

#include <memory>

#include "core/ppe.h"
#include "policy/policy.h"

namespace mtat {

class VtmmPolicy : public TieringPolicy {
 public:
  struct Options {
    /// A page is "hot" when its histogram bin is at least this (bin b means
    /// an aged count of at least 2^(b-1)).
    int hot_threshold_bin = 2;
    /// Floor on any tenant's share, so a fully idle tenant is not starved to
    /// literally zero (vTMM keeps a base allocation per VM).
    double min_share = 0.02;
  };

  explicit VtmmPolicy(const PolicyContext& ctx);
  VtmmPolicy(const PolicyContext& ctx, Options opt);

  std::string name() const override { return "vtmm"; }
  void on_tick(SimTime now, Duration dt) override;
  void on_interval(SimTime now, Duration interval, Duration lc_p99) override;

  PartitionEnforcer& enforcer() { return *ppe_; }

 private:
  PolicyContext ctx_;
  Options opt_;
  std::unique_ptr<PartitionEnforcer> ppe_;
};

}  // namespace mtat
