#include "policy/vtmm_policy.h"

#include <algorithm>

namespace mtat {

VtmmPolicy::VtmmPolicy(const PolicyContext& ctx) : VtmmPolicy(ctx, Options{}) {}

VtmmPolicy::VtmmPolicy(const PolicyContext& ctx, Options opt) : ctx_(ctx), opt_(opt) {
  PartitionEnforcer::Options peo;
  peo.isolate_be = true;  // vTMM partitions every tenant
  ppe_ = std::make_unique<PartitionEnforcer>(ctx, peo);
}

void VtmmPolicy::on_tick(SimTime, Duration) { ppe_->on_tick(); }

void VtmmPolicy::on_interval(SimTime, Duration, Duration) {
  // Hot set size per tenant: pages at or above the threshold bin, wherever
  // they currently reside.
  const std::size_t n = ctx_.tenants.size();
  std::vector<double> hot(n, 0.0);
  double total_hot = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const PageHotness& h = ppe_->histogram(i);
    hot[i] = static_cast<double>(h.pages_at_or_above_total(opt_.hot_threshold_bin));
    total_hot += hot[i];
  }

  const auto fmem = static_cast<double>(ctx_.mem->capacity(kFastestTier));
  std::vector<std::uint64_t> quotas(n, 0);
  if (total_hot <= 0.0) {
    // Nobody measured hot yet: even split.
    for (auto& q : quotas) q = static_cast<std::uint64_t>(fmem / static_cast<double>(n));
  } else {
    // Proportional shares with a per-tenant floor, normalized back to FMem.
    double share_sum = 0.0;
    std::vector<double> share(n);
    for (std::size_t i = 0; i < n; ++i) {
      share[i] = std::max(opt_.min_share, hot[i] / total_hot);
      share_sum += share[i];
    }
    for (std::size_t i = 0; i < n; ++i) {
      const double capped =
          std::min(fmem * share[i] / share_sum,
                   static_cast<double>(ctx_.mem->workload_total(ctx_.tenants[i].id)));
      quotas[i] = static_cast<std::uint64_t>(capped);
    }
  }
  ppe_->set_plan(quotas);
  ppe_->age_histograms();
}

}  // namespace mtat
