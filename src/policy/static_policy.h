// Static pinning baselines (paper §5 "Comparisons").
//
// FMEM_ALL and SMEM_ALL are allocation-time configurations: the simulation
// places the LC workload's pages FMem-first (with BE confined to SMem) or
// SMem-only (with BE free to take FMem) respectively, and the policy then
// performs no runtime migration at all. The class exists so the experiment
// harness can treat every comparison point uniformly.
#pragma once

#include "policy/policy.h"

namespace mtat {

class StaticPolicy : public TieringPolicy {
 public:
  enum class Kind { kFMemAll, kSMemAll };

  explicit StaticPolicy(Kind kind) : kind_(kind) {}

  std::string name() const override { return kind_ == Kind::kFMemAll ? "fmem_all" : "smem_all"; }
  void on_tick(SimTime, Duration) override {}
  void on_interval(SimTime, Duration, Duration) override {}

  Kind kind() const { return kind_; }

 private:
  Kind kind_;
};

}  // namespace mtat
