// MEMTIS-HP: the MEMTIS baseline with its page-size determination modeled —
// the part of MEMTIS (SOSP'23) the plain MemtisPolicy descopes.
//
// MEMTIS manages memory at huge-page granularity where that pays and splits
// huge pages whose accesses concentrate in a small subrange. Modeled here at
// the policy layer over 4 KiB frames: 2 MiB-aligned *blocks* (512 frames)
// are scored by aggregate access count and by utilization (how many distinct
// frames were sampled). A hot, well-utilized block is migrated wholesale —
// the TLB/metadata benefit of huge pages translated into our simulator's
// terms as bulk placement of the whole range. A hot but skewed block is
// "split": only its individually hot frames move, via the regular
// page-granular path. Workload-blind like its parent.
#pragma once

#include <memory>
#include <vector>

#include "policy/policy.h"
#include "telemetry/page_hotness.h"

namespace mtat {

class MemtisHpPolicy : public TieringPolicy {
 public:
  static constexpr std::uint64_t kBlockPages = 512;  // 2 MiB of 4 KiB frames

  struct Options {
    /// A block is huge-page-managed when at least this fraction of its
    /// frames saw samples in the window (MEMTIS's util threshold).
    double util_threshold = 0.5;
    /// Blocks promoted wholesale per interval (bulk moves are expensive).
    std::size_t max_block_promotions_per_interval = 8;
    /// Page-granular exchange batch per tick (the split/base path).
    std::size_t max_exchanges_per_tick = 2048;
    int cooling_period_intervals = 2;
    int min_bin_gap = 1;
  };

  explicit MemtisHpPolicy(const PolicyContext& ctx);
  MemtisHpPolicy(const PolicyContext& ctx, Options opt);

  std::string name() const override { return "memtis_hp"; }
  void on_tick(SimTime now, Duration dt) override;
  void on_interval(SimTime now, Duration interval, Duration lc_p99) override;

  /// Number of whole-block promotions performed so far (for tests).
  std::uint64_t block_promotions() const { return block_promotions_; }
  const PageHotness& histogram() const { return hist_; }

 private:
  struct Block {
    std::uint32_t count = 0;     ///< sampled accesses this window
    std::uint16_t distinct = 0;  ///< distinct frames sampled this window
  };

  void on_sample(PageId p);
  void promote_block(std::uint64_t block_index);

  PolicyContext ctx_;
  Options opt_;
  PageHotness hist_;
  std::vector<Block> blocks_;          // indexed by PageId / kBlockPages
  std::vector<std::uint8_t> seen_;     // per-page "sampled this window" bit
  std::vector<std::uint64_t> pending_blocks_;  // hot-huge blocks to bulk-move
  int intervals_since_cooling_ = 0;
  std::uint64_t block_promotions_ = 0;
  // Scratch for the per-tick histogram pulls (capacity persists across ticks).
  std::vector<PageId> hot_;
  std::vector<PageId> victims_;
};

}  // namespace mtat
