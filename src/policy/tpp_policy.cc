#include "policy/tpp_policy.h"

#include <algorithm>

namespace mtat {

TppPolicy::TppPolicy(const PolicyContext& ctx) : TppPolicy(ctx, Options{}) {}

TppPolicy::TppPolicy(const PolicyContext& ctx, Options opt)
    : ctx_(ctx),
      opt_(opt),
      last_seen_tick_(ctx.mem->page_count(), -1),
      ref_bit_(ctx.mem->page_count(), 0),
      queued_(ctx.mem->page_count(), 0),
      clock_hand_(ctx.mem->tier_count() - 1, 0) {
  ctx_.sampler->add_callback(
      [this](WorkloadId, PageId p, AccessKind) { on_sample(p); });
}

void TppPolicy::on_sample(PageId p) {
  if (p >= last_seen_tick_.size()) return;  // page allocated after attach
  ref_bit_[p] = 1;  // keeps the page off its tier's demotion clock
  if (ctx_.mem->tier_of(p) == kFastestTier) return;
  // Two-touch filter: the first sample puts the page on the shadow active
  // list; a second sample within the window raises the promotion "fault".
  const std::int64_t last = last_seen_tick_[p];
  if (last >= 0 && tick_no_ - last <= opt_.active_window_ticks && !queued_[p]) {
    promote_queue_.push_back(p);
    queued_[p] = 1;
  }
  last_seen_tick_[p] = tick_no_;
}

void TppPolicy::on_tick(SimTime, Duration) {
  ++tick_no_;
  TieredMemory& mem = *ctx_.mem;
  MigrationEngine& engine = *ctx_.engine;
  // Watermark reclaim, per tier: every tier but the slowest demotes its cold
  // pages (clock with reference bits) one link down until free headroom is
  // restored — successive clocks cascade cold pages toward the slowest tier.
  // The scan bound keeps a tick's work proportional to the deficit.
  for (TierId t = 0; static_cast<std::size_t>(t) + 1 < mem.tier_count(); ++t) {
    // Keep at least one page free whenever a watermark is configured — TPP's
    // promotion path always needs headroom to land in.
    const auto watermark = std::max<std::uint64_t>(
        opt_.free_watermark > 0 ? 1 : 0,
        static_cast<std::uint64_t>(opt_.free_watermark *
                                   static_cast<double>(mem.capacity(t))));
    std::uint64_t deficit =
        mem.free_pages(t) < watermark ? watermark - mem.free_pages(t) : 0;
    std::uint64_t scan_budget = deficit * 4 + 64;
    std::uint64_t& hand = clock_hand_[t];
    while (deficit > 0 && scan_budget > 0 && engine.link_budget_pages(t) > 0) {
      const PageId p = static_cast<PageId>(hand % mem.page_count());
      hand++;
      --scan_budget;
      if (mem.tier_of(p) != t) continue;
      if (ref_bit_[p]) {
        ref_bit_[p] = 0;  // second chance
        continue;
      }
      if (engine.demote(p)) --deficit;
    }
  }

  // Fault-driven promotion into the freed headroom.
  std::size_t promoted = 0;
  while (!promote_queue_.empty() && promoted < opt_.max_promotions_per_tick &&
         engine.budget_pages() > 0 && mem.free_pages(kFastestTier) > 0) {
    const PageId p = promote_queue_.front();
    promote_queue_.pop_front();
    queued_[p] = 0;
    if (mem.tier_of(p) == kFastestTier) continue;  // already moved
    if (engine.promote_to_fastest(p)) {
      ref_bit_[p] = 1;  // freshly promoted pages start referenced
      ++promoted;
    }
  }
}

void TppPolicy::on_interval(SimTime, Duration, Duration) {
  // TPP has no interval-scale decision process; everything is fault-driven.
}

}  // namespace mtat
