#include "policy/tpp_policy.h"

#include <algorithm>

namespace mtat {

TppPolicy::TppPolicy(const PolicyContext& ctx) : TppPolicy(ctx, Options{}) {}

TppPolicy::TppPolicy(const PolicyContext& ctx, Options opt)
    : ctx_(ctx),
      opt_(opt),
      last_seen_tick_(ctx.mem->page_count(), -1),
      ref_bit_(ctx.mem->page_count(), 0),
      queued_(ctx.mem->page_count(), 0) {
  ctx_.sampler->add_callback(
      [this](WorkloadId, PageId p, AccessKind) { on_sample(p); });
}

void TppPolicy::on_sample(PageId p) {
  if (p >= last_seen_tick_.size()) return;  // page allocated after attach
  if (ctx_.mem->tier_of(p) == Tier::kFMem) {
    ref_bit_[p] = 1;  // keeps the page off the clock's demotion path
    return;
  }
  // Two-touch filter: the first sample puts the page on the shadow active
  // list; a second sample within the window raises the promotion "fault".
  const std::int64_t last = last_seen_tick_[p];
  if (last >= 0 && tick_no_ - last <= opt_.active_window_ticks && !queued_[p]) {
    promote_queue_.push_back(p);
    queued_[p] = 1;
  }
  last_seen_tick_[p] = tick_no_;
}

void TppPolicy::on_tick(SimTime, Duration) {
  ++tick_no_;
  TieredMemory& mem = *ctx_.mem;
  MigrationEngine& engine = *ctx_.engine;
  // Keep at least one page free whenever a watermark is configured — TPP's
  // promotion path always needs headroom to land in.
  const auto watermark = std::max<std::uint64_t>(
      opt_.free_watermark > 0 ? 1 : 0,
      static_cast<std::uint64_t>(opt_.free_watermark *
                                 static_cast<double>(mem.capacity(Tier::kFMem))));

  // Watermark reclaim: demote cold FMem pages (clock with reference bits)
  // until the free headroom is restored. Bound the scan so a tick's work
  // stays proportional to the deficit.
  std::uint64_t deficit = mem.free_pages(Tier::kFMem) < watermark
                              ? watermark - mem.free_pages(Tier::kFMem)
                              : 0;
  std::uint64_t scan_budget = deficit * 4 + 64;
  while (deficit > 0 && scan_budget > 0 && engine.budget_pages() > 0) {
    const PageId p = static_cast<PageId>(clock_hand_ % mem.page_count());
    clock_hand_++;
    --scan_budget;
    if (mem.tier_of(p) != Tier::kFMem) continue;
    if (ref_bit_[p]) {
      ref_bit_[p] = 0;  // second chance
      continue;
    }
    if (engine.demote(p)) --deficit;
  }

  // Fault-driven promotion into the freed headroom.
  std::size_t promoted = 0;
  while (!promote_queue_.empty() && promoted < opt_.max_promotions_per_tick &&
         engine.budget_pages() > 0 && mem.free_pages(Tier::kFMem) > 0) {
    const PageId p = promote_queue_.front();
    promote_queue_.pop_front();
    queued_[p] = 0;
    if (mem.tier_of(p) != Tier::kSMem) continue;  // already moved
    if (engine.promote(p)) {
      ref_bit_[p] = 1;  // freshly promoted pages start referenced
      ++promoted;
    }
  }
}

void TppPolicy::on_interval(SimTime, Duration, Duration) {
  // TPP has no interval-scale decision process; everything is fault-driven.
}

}  // namespace mtat
