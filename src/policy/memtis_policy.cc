#include "policy/memtis_policy.h"

namespace mtat {

MemtisPolicy::MemtisPolicy(const PolicyContext& ctx) : MemtisPolicy(ctx, Options{}) {}

MemtisPolicy::MemtisPolicy(const PolicyContext& ctx, Options opt)
    : ctx_(ctx), opt_(opt), hist_(*ctx.mem) {
  ctx_.sampler->add_sink(&hist_);
  hist_.seed_allocated_pages();  // never-sampled pages rank as coldest
}

void MemtisPolicy::on_tick(SimTime, Duration) {
  // Fill any free FMem with the hottest SMem pages first.
  std::uint64_t free_fmem = ctx_.mem->free_pages(kFastestTier);
  if (free_fmem > 0) {
    hist_.hottest_in_slower(
        std::min<std::uint64_t>(free_fmem, ctx_.engine->budget_pages()), hot_);
    for (PageId p : hot_)
      if (!ctx_.engine->promote_to_fastest(p)) break;
  }
  // Then displace: exchange hot SMem pages against strictly colder FMem pages.
  const std::size_t batch =
      std::min<std::size_t>(opt_.max_exchanges_per_tick, ctx_.engine->budget_pages() / 2);
  if (batch == 0) return;
  hist_.hottest_in_slower(batch, hot_);
  hist_.coldest_in_tier(kFastestTier, batch, victims_);
  std::size_t vi = 0;
  for (PageId p : hot_) {
    if (vi >= victims_.size()) break;
    const PageId victim = victims_[vi];
    // Hot list is descending, victim list ascending: once the gap closes,
    // no later pair can satisfy it either.
    if (hist_.bin_of_page(p) - hist_.bin_of_page(victim) < opt_.min_bin_gap) break;
    if (!ctx_.engine->exchange(p, victim)) break;
    ++vi;
  }
}

void MemtisPolicy::on_interval(SimTime, Duration, Duration) {
  if (++intervals_since_cooling_ >= opt_.cooling_period_intervals) {
    hist_.age();
    intervals_since_cooling_ = 0;
  }
}

}  // namespace mtat
