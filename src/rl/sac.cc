#include "rl/sac.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "faults/fault_injector.h"
#include "obs/names.h"

namespace mtat {
namespace {

constexpr double kLogStdMin = -5.0;
constexpr double kLogStdMax = 2.0;
constexpr double kTanhEps = 1e-6;
constexpr double kHalfLog2Pi = 0.9189385332046727;  // 0.5 * log(2*pi)

std::vector<int> net_sizes(int in, const std::vector<int>& hidden, int out) {
  // Appended element-wise rather than via insert(range): GCC 12 with
  // -fsanitize=undefined false-positives -Warray-bounds on the memmove
  // inlined out of vector range-insert.
  std::vector<int> s;
  s.reserve(hidden.size() + 2);
  s.push_back(in);
  for (int h : hidden) s.push_back(h);
  s.push_back(out);
  return s;
}

}  // namespace

SacAgent::SacAgent(const SacConfig& cfg)
    : cfg_(cfg),
      rng_(cfg.seed),
      actor_(net_sizes(cfg.state_dim, cfg.hidden, 2 * cfg.action_dim), rng_),
      q1_(net_sizes(cfg.state_dim + cfg.action_dim, cfg.hidden, 1), rng_),
      q2_(net_sizes(cfg.state_dim + cfg.action_dim, cfg.hidden, 1), rng_),
      q1_target_(net_sizes(cfg.state_dim + cfg.action_dim, cfg.hidden, 1), rng_),
      q2_target_(net_sizes(cfg.state_dim + cfg.action_dim, cfg.hidden, 1), rng_),
      log_alpha_(std::log(cfg.init_alpha)),
      buffer_(cfg.buffer_capacity) {
  if (cfg.state_dim <= 0 || cfg.action_dim <= 0)
    throw std::invalid_argument("SacAgent: bad dimensions");
  q1_target_.copy_parameters_from(q1_);
  q2_target_.copy_parameters_from(q2_);
}

double SacAgent::alpha() const { return std::exp(log_alpha_); }

std::vector<double> SacAgent::concat(const std::vector<double>& a, const std::vector<double>& b) {
  std::vector<double> out = a;
  out.insert(out.end(), b.begin(), b.end());
  return out;
}

SacAgent::PolicySample SacAgent::sample_policy(const std::vector<double>& state,
                                               Mlp::Cache* cache) {
  PolicySample ps;
  Mlp::Cache local;
  const std::vector<double> head =
      cache ? actor_.forward_cached(state, *cache) : actor_.forward_cached(state, local);
  const int dim = cfg_.action_dim;
  ps.mean.assign(head.begin(), head.begin() + dim);
  ps.log_std.resize(dim);
  ps.action.resize(dim);
  ps.raw.resize(dim);
  ps.eps.resize(dim);
  for (int d = 0; d < dim; ++d) {
    ps.log_std[d] = std::clamp(head[dim + d], kLogStdMin, kLogStdMax);
    const double sigma = std::exp(ps.log_std[d]);
    ps.eps[d] = rng_.next_gaussian();
    ps.raw[d] = ps.mean[d] + sigma * ps.eps[d];
    ps.action[d] = std::tanh(ps.raw[d]);
    // log N(raw; mean, sigma) with raw = mean + sigma*eps, minus the tanh
    // change-of-variables correction.
    ps.log_prob += -0.5 * ps.eps[d] * ps.eps[d] - ps.log_std[d] - kHalfLog2Pi -
                   std::log(1.0 - ps.action[d] * ps.action[d] + kTanhEps);
  }
  return ps;
}

std::vector<double> SacAgent::act(const std::vector<double>& state, bool deterministic) {
  std::vector<double> out;
  if (deterministic) {
    const std::vector<double> head = actor_.forward(state);
    out.resize(cfg_.action_dim);
    for (int d = 0; d < cfg_.action_dim; ++d) out[d] = std::tanh(head[d]);
  } else {
    out = sample_policy(state, nullptr).action;
  }
  if (faults_ != nullptr) {
    // Injected policy pathology: the action the caller sees is replaced by
    // all-NaN or an off-manifold divergent vector. The network itself stays
    // healthy — this models a corrupted inference result, and it is the
    // caller's (PP-M's) job to survive it.
    switch (faults_->action_fault()) {
      case faults::FaultInjector::ActionFault::kNone:
        break;
      case faults::FaultInjector::ActionFault::kNaN:
        std::fill(out.begin(), out.end(), std::numeric_limits<double>::quiet_NaN());
        actions_corrupted_c_->inc();
        break;
      case faults::FaultInjector::ActionFault::kDivergent:
        for (std::size_t d = 0; d < out.size(); ++d) out[d] = d % 2 == 0 ? 1e6 : -1e6;
        actions_corrupted_c_->inc();
        break;
    }
  }
  return out;
}

namespace {
bool all_finite(const std::vector<double>& v) {
  for (double x : v)
    if (!std::isfinite(x)) return false;
  return true;
}
}  // namespace

void SacAgent::observe(const std::vector<double>& state, const std::vector<double>& action,
                       double reward, const std::vector<double>& next_state, bool done) {
  // Non-finite transitions are rejected outright rather than clamped: one NaN
  // reward or corrupted action in the buffer would poison every later
  // gradient batch that samples it. Healthy runs never produce one, so this
  // guard is behaviour-neutral outside fault injection.
  if (!std::isfinite(reward) || !all_finite(state) || !all_finite(action) ||
      !all_finite(next_state)) {
    if (rejected_c_ != nullptr) rejected_c_->inc();
    return;
  }
  buffer_.store(Transition{state, action, reward, next_state, done});
}

double SacAgent::q_value(const std::vector<double>& state,
                         const std::vector<double>& action) const {
  const std::vector<double> in = concat(state, action);
  return std::min(q1_.forward(in)[0], q2_.forward(in)[0]);
}

void SacAgent::update(int steps) {
  if (!ready_to_update()) return;
  for (int i = 0; i < steps; ++i) update_once();
  if (updates_c_ != nullptr) {
    updates_c_->inc(steps);
    critic_loss_g_->set(last_critic_loss_);
    actor_loss_g_->set(last_actor_loss_);
    alpha_g_->set(alpha());
    if (trace_ != nullptr)
      trace_->instant(obs::names::kEvRlUpdate, obs::names::kCatRl, "critic_loss",
                      last_critic_loss_, "actor_loss", last_actor_loss_);
  }
}

void SacAgent::set_run_context(obs::RunContext* ctx) {
  if (ctx == nullptr) {
    updates_c_ = nullptr;
    critic_loss_g_ = actor_loss_g_ = alpha_g_ = nullptr;
    rejected_c_ = nullptr;
    trace_ = nullptr;
    faults_ = nullptr;
    actions_corrupted_c_ = nullptr;
    return;
  }
  obs::MetricsRegistry& reg = ctx->metrics();
  updates_c_ = &reg.counter(obs::names::kRlUpdates);
  critic_loss_g_ = &reg.gauge(obs::names::kRlCriticLoss);
  actor_loss_g_ = &reg.gauge(obs::names::kRlActorLoss);
  alpha_g_ = &reg.gauge(obs::names::kRlAlpha);
  rejected_c_ = &reg.counter(obs::names::kRlRejectedTransitions);
  trace_ = &ctx->trace();
  faults_ = ctx->faults();
  if (faults_ != nullptr)
    actions_corrupted_c_ = &reg.counter(obs::names::kFaultRlActionsCorrupted);
}

void SacAgent::update_once() {
  const std::size_t batch = std::min(cfg_.batch_size, buffer_.size());
  const double inv_b = 1.0 / static_cast<double>(batch);
  std::vector<const Transition*> samples(batch);
  for (auto& s : samples) s = &buffer_.sample(rng_);

  // --- Critic update: y = r + gamma(1-done)(min Q'(s',a') - alpha log pi) ---
  double critic_loss = 0.0;
  for (const Transition* t : samples) {
    double y = t->reward;
    if (!t->done) {
      const PolicySample next = sample_policy(t->next_state, nullptr);
      const std::vector<double> in = concat(t->next_state, next.action);
      const double qmin = std::min(q1_target_.forward(in)[0], q2_target_.forward(in)[0]);
      y += cfg_.gamma * (qmin - alpha() * next.log_prob);
    }
    const std::vector<double> in = concat(t->state, t->action);
    Mlp::Cache c1, c2;
    const double q1v = q1_.forward_cached(in, c1)[0];
    const double q2v = q2_.forward_cached(in, c2)[0];
    critic_loss += ((q1v - y) * (q1v - y) + (q2v - y) * (q2v - y)) * inv_b;
    q1_.backward(c1, {2.0 * (q1v - y)}, inv_b);
    q2_.backward(c2, {2.0 * (q2v - y)}, inv_b);
  }
  q1_.adam_step(cfg_.critic_lr);
  q2_.adam_step(cfg_.critic_lr);
  last_critic_loss_ = critic_loss;

  // --- Actor update: minimize alpha*log pi - min Q(s, a(s)) ----------------
  double actor_loss = 0.0;
  double mean_log_prob = 0.0;
  const int dim = cfg_.action_dim;
  for (const Transition* t : samples) {
    Mlp::Cache actor_cache;
    const PolicySample ps = sample_policy(t->state, &actor_cache);
    const std::vector<double> in = concat(t->state, ps.action);
    Mlp::Cache c1, c2;
    const double q1v = q1_.forward_cached(in, c1)[0];
    const double q2v = q2_.forward_cached(in, c2)[0];
    const double qmin = std::min(q1v, q2v);
    actor_loss += (alpha() * ps.log_prob - qmin) * inv_b;
    mean_log_prob += ps.log_prob * inv_b;
    // dL/da through the smaller critic (dout = -1, mean-scaled).
    Mlp& qsel = q1v <= q2v ? q1_ : q2_;
    const std::vector<double> din =
        qsel.backward(q1v <= q2v ? c1 : c2, {-1.0}, inv_b);
    // Assemble gradients w.r.t. the actor head [mean..., log_std...].
    std::vector<double> dhead(2 * dim, 0.0);
    for (int d = 0; d < dim; ++d) {
      const double a = ps.action[d];
      const double one_m_a2 = 1.0 - a * a;
      const double dq_da = din[cfg_.state_dim + d];  // action slice of input grad
      // d(log pi)/d(raw): only the tanh correction depends on raw given eps.
      const double dlogp_draw = 2.0 * a * one_m_a2 / (one_m_a2 + kTanhEps);
      const double g_raw = dq_da * one_m_a2 + (alpha() * inv_b) * dlogp_draw;
      dhead[d] = g_raw;  // d raw / d mean = 1
      // d raw / d log_std = sigma * eps; d(log pi)/d log_std also has the -1
      // from the Gaussian entropy term. Zero where the clamp was active.
      const bool clamped = ps.log_std[d] <= kLogStdMin || ps.log_std[d] >= kLogStdMax;
      if (!clamped)
        dhead[dim + d] =
            g_raw * std::exp(ps.log_std[d]) * ps.eps[d] - (alpha() * inv_b);
    }
    actor_.backward(actor_cache, dhead, 1.0);
  }
  actor_.adam_step(cfg_.actor_lr);
  // The actor pass accumulated gradients inside the critics as a side effect;
  // discard them — the critics already took their step this round.
  q1_.zero_grad();
  q2_.zero_grad();
  last_actor_loss_ = actor_loss;

  // --- Temperature update: d/dlogalpha of -logalpha*(logpi + target_H) -----
  const double g_alpha = -(mean_log_prob + cfg_.target_entropy);
  ++alpha_t_;
  alpha_m_ = 0.9 * alpha_m_ + 0.1 * g_alpha;
  alpha_v_ = 0.999 * alpha_v_ + 0.001 * g_alpha * g_alpha;
  const double m_hat = alpha_m_ / (1.0 - std::pow(0.9, static_cast<double>(alpha_t_)));
  const double v_hat = alpha_v_ / (1.0 - std::pow(0.999, static_cast<double>(alpha_t_)));
  log_alpha_ -= cfg_.alpha_lr * m_hat / (std::sqrt(v_hat) + 1e-8);

  // --- Target networks -------------------------------------------------------
  q1_target_.soft_update_from(q1_, cfg_.tau);
  q2_target_.soft_update_from(q2_, cfg_.tau);
  ++updates_;
}

}  // namespace mtat
