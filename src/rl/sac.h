// Soft Actor-Critic (Haarnoja et al. 2018), the RL algorithm of PP-M's
// Algorithm 1: twin Q-networks with Polyak-averaged targets, a tanh-squashed
// Gaussian policy trained by the reparameterization trick, and automatic
// entropy-temperature tuning.
//
// Actions live in [-1, 1]^dim; the caller (core/ppm) maps them onto the
// paper's admissible range alpha in [-M/2t, +M/2t] (Eq. 1).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "obs/run_context.h"
#include "rl/mlp.h"
#include "rl/replay_buffer.h"

namespace mtat {

struct SacConfig {
  int state_dim = 3;   ///< paper: UsageRatio, AccessRatio, AccessCount
  int action_dim = 1;  ///< paper: scalar FMem delta
  std::vector<int> hidden = {64, 64};
  double actor_lr = 3e-4;
  double critic_lr = 3e-4;
  double alpha_lr = 3e-4;
  double gamma = 0.95;
  double tau = 0.005;             ///< target-network Polyak factor
  double init_alpha = 0.2;        ///< initial entropy temperature
  double target_entropy = -1.0;   ///< default: -action_dim
  std::size_t batch_size = 64;
  std::size_t buffer_capacity = 100'000;
  std::size_t min_buffer_for_update = 50;  ///< paper: update after 50 samples
  std::uint64_t seed = 7;
};

class SacAgent {
 public:
  explicit SacAgent(const SacConfig& cfg);

  /// Sample an action in [-1, 1]^dim. Deterministic mode returns tanh(mean)
  /// (evaluation); stochastic mode draws from the squashed Gaussian.
  std::vector<double> act(const std::vector<double>& state, bool deterministic = false);

  /// Record a transition into the replay buffer. Transitions containing any
  /// non-finite value are rejected (counted as rl.rejected_transitions) —
  /// never clamped into the buffer — so corrupted observations cannot reach
  /// a gradient update.
  void observe(const std::vector<double>& state, const std::vector<double>& action,
               double reward, const std::vector<double>& next_state, bool done);

  bool ready_to_update() const { return buffer_.size() >= cfg_.min_buffer_for_update; }

  /// Run `steps` gradient updates (critic, actor, temperature, targets).
  void update(int steps = 1);

  /// Wire the agent to a run's observability: register training metrics
  /// (update count, losses, temperature) with `ctx`'s registry and record
  /// update events into its trace. nullptr detaches. The context must
  /// outlive the agent (or be detached first).
  void set_run_context(obs::RunContext* ctx);

  double alpha() const;
  std::size_t buffer_size() const { return buffer_.size(); }
  double last_critic_loss() const { return last_critic_loss_; }
  double last_actor_loss() const { return last_actor_loss_; }
  std::uint64_t updates_performed() const { return updates_; }

  /// Q-value estimate min(Q1, Q2)(s, a) — for tests and diagnostics.
  double q_value(const std::vector<double>& state, const std::vector<double>& action) const;

 private:
  struct PolicySample {
    std::vector<double> action;    // tanh-squashed, in [-1,1]
    std::vector<double> raw;       // pre-squash Gaussian draw
    std::vector<double> mean, log_std, eps;
    double log_prob = 0.0;
  };

  PolicySample sample_policy(const std::vector<double>& state, Mlp::Cache* cache);
  void update_once();
  static std::vector<double> concat(const std::vector<double>& a, const std::vector<double>& b);

  SacConfig cfg_;
  Rng rng_;
  Mlp actor_;           // state -> [mean..., log_std...]
  Mlp q1_, q2_;         // state+action -> scalar
  Mlp q1_target_, q2_target_;
  double log_alpha_;
  double alpha_m_ = 0.0, alpha_v_ = 0.0;  // Adam state for the temperature
  std::uint64_t alpha_t_ = 0;
  ReplayBuffer buffer_;
  double last_critic_loss_ = 0.0;
  double last_actor_loss_ = 0.0;
  std::uint64_t updates_ = 0;
  obs::TraceRecorder* trace_ = nullptr;
  faults::FaultInjector* faults_ = nullptr;
  obs::Counter* updates_c_ = nullptr;
  obs::Gauge* critic_loss_g_ = nullptr;
  obs::Gauge* actor_loss_g_ = nullptr;
  obs::Gauge* alpha_g_ = nullptr;
  obs::Counter* rejected_c_ = nullptr;
  obs::Counter* actions_corrupted_c_ = nullptr;  // set iff faults_ != nullptr
};

}  // namespace mtat
