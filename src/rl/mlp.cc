#include "rl/mlp.h"

#include <cmath>
#include <stdexcept>

namespace mtat {

Mlp::Mlp(std::vector<int> sizes, Rng& rng) : sizes_(std::move(sizes)) {
  if (sizes_.size() < 2) throw std::invalid_argument("Mlp: need at least in/out sizes");
  for (int s : sizes_)
    if (s <= 0) throw std::invalid_argument("Mlp: layer sizes must be positive");
  std::size_t off = 0;
  for (std::size_t l = 0; l + 1 < sizes_.size(); ++l) {
    Layer layer;
    layer.in = sizes_[l];
    layer.out = sizes_[l + 1];
    layer.w_off = off;
    off += static_cast<std::size_t>(layer.in) * layer.out;
    layer.b_off = off;
    off += layer.out;
    layers_.push_back(layer);
  }
  params_.resize(off);
  grads_.assign(off, 0.0);
  adam_m_.assign(off, 0.0);
  adam_v_.assign(off, 0.0);
  for (const Layer& l : layers_) {
    const double stddev = std::sqrt(2.0 / l.in);  // He init for ReLU nets
    for (int i = 0; i < l.in * l.out; ++i)
      params_[l.w_off + i] = rng.next_gaussian() * stddev;
    for (int i = 0; i < l.out; ++i) params_[l.b_off + i] = 0.0;
  }
}

std::vector<double> Mlp::forward(const std::vector<double>& x) const {
  Cache scratch;
  return forward_cached(x, scratch);
}

std::vector<double> Mlp::forward_cached(const std::vector<double>& x, Cache& cache) const {
  if (static_cast<int>(x.size()) != sizes_.front())
    throw std::invalid_argument("Mlp: input size mismatch");
  cache.activations.clear();
  cache.activations.push_back(x);
  std::vector<double> cur = x;
  for (std::size_t li = 0; li < layers_.size(); ++li) {
    const Layer& l = layers_[li];
    std::vector<double> next(l.out);
    for (int o = 0; o < l.out; ++o) {
      double sum = params_[l.b_off + o];
      const double* w = &params_[l.w_off + static_cast<std::size_t>(o) * l.in];
      for (int i = 0; i < l.in; ++i) sum += w[i] * cur[i];
      // ReLU on hidden layers, identity on the output layer.
      next[o] = (li + 1 < layers_.size() && sum < 0.0) ? 0.0 : sum;
    }
    cache.activations.push_back(next);
    cur = std::move(next);
  }
  return cur;
}

std::vector<double> Mlp::backward(const Cache& cache, const std::vector<double>& dout,
                                  double scale) {
  if (cache.activations.size() != layers_.size() + 1)
    throw std::invalid_argument("Mlp: stale cache");
  std::vector<double> delta = dout;
  for (std::size_t li = layers_.size(); li-- > 0;) {
    const Layer& l = layers_[li];
    const auto& a_in = cache.activations[li];
    const auto& a_out = cache.activations[li + 1];
    // ReLU derivative on hidden layers: zero where the activation was clamped.
    if (li + 1 < layers_.size())
      for (int o = 0; o < l.out; ++o)
        if (a_out[o] <= 0.0) delta[o] = 0.0;
    std::vector<double> dprev(l.in, 0.0);
    for (int o = 0; o < l.out; ++o) {
      const double d = delta[o];
      grads_[l.b_off + o] += scale * d;
      const std::size_t wrow = l.w_off + static_cast<std::size_t>(o) * l.in;
      for (int i = 0; i < l.in; ++i) {
        grads_[wrow + i] += scale * d * a_in[i];
        dprev[i] += d * params_[wrow + i];
      }
    }
    delta = std::move(dprev);
  }
  // The returned input gradient carries `scale` too, matching the parameter
  // gradients' scaling so chained backward passes stay consistent.
  if (scale != 1.0)
    for (double& d : delta) d *= scale;
  return delta;
}

void Mlp::adam_step(double lr, double beta1, double beta2, double eps) {
  ++adam_t_;
  const double bc1 = 1.0 - std::pow(beta1, static_cast<double>(adam_t_));
  const double bc2 = 1.0 - std::pow(beta2, static_cast<double>(adam_t_));
  for (std::size_t i = 0; i < params_.size(); ++i) {
    adam_m_[i] = beta1 * adam_m_[i] + (1.0 - beta1) * grads_[i];
    adam_v_[i] = beta2 * adam_v_[i] + (1.0 - beta2) * grads_[i] * grads_[i];
    params_[i] -= lr * (adam_m_[i] / bc1) / (std::sqrt(adam_v_[i] / bc2) + eps);
  }
  zero_grad();
}

void Mlp::zero_grad() { std::fill(grads_.begin(), grads_.end(), 0.0); }

void Mlp::copy_parameters_from(const Mlp& other) {
  if (other.params_.size() != params_.size())
    throw std::invalid_argument("Mlp: shape mismatch in copy");
  params_ = other.params_;
}

void Mlp::soft_update_from(const Mlp& other, double tau) {
  if (other.params_.size() != params_.size())
    throw std::invalid_argument("Mlp: shape mismatch in soft update");
  for (std::size_t i = 0; i < params_.size(); ++i)
    params_[i] = tau * other.params_[i] + (1.0 - tau) * params_[i];
}

}  // namespace mtat
