// Minimal dense neural network with manual backpropagation and Adam.
//
// This is the substrate under the Soft Actor-Critic agent of PP-M (the paper
// implements PP-M in PyTorch; we implement the same few-thousand-parameter
// MLPs from scratch — see DESIGN.md §1). Double precision, ReLU hidden
// layers, linear output. Gradients accumulate into per-parameter buffers so a
// caller can sum several loss terms before one optimizer step; correctness is
// pinned by numerical-gradient tests in tests/rl_test.cc.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace mtat {

class Mlp {
 public:
  /// `sizes` = {in, hidden..., out}. Weights use He initialization.
  Mlp(std::vector<int> sizes, Rng& rng);

  /// Per-layer pre-activations and activations retained for backward().
  struct Cache {
    std::vector<std::vector<double>> activations;  // a[0]=input .. a[L]=output
  };

  /// Plain inference.
  std::vector<double> forward(const std::vector<double>& x) const;

  /// Forward pass retaining intermediates for a subsequent backward().
  std::vector<double> forward_cached(const std::vector<double>& x, Cache& cache) const;

  /// Backpropagate dLoss/dOutput for the forward pass recorded in `cache`.
  /// Accumulates parameter gradients (scaled by `scale`, e.g. 1/batch) and
  /// returns dLoss/dInput — needed by SAC's actor update, which differentiates
  /// the critic with respect to the action.
  std::vector<double> backward(const Cache& cache, const std::vector<double>& dout,
                               double scale = 1.0);

  /// One Adam step over the accumulated gradients, then zero them.
  void adam_step(double lr, double beta1 = 0.9, double beta2 = 0.999, double eps = 1e-8);

  void zero_grad();

  /// Hard-copy parameters (target-network initialization).
  void copy_parameters_from(const Mlp& other);
  /// Polyak update: p = tau * other + (1 - tau) * p.
  void soft_update_from(const Mlp& other, double tau);

  int input_dim() const { return sizes_.front(); }
  int output_dim() const { return sizes_.back(); }
  std::size_t parameter_count() const { return params_.size(); }

  /// Raw parameter access for tests (weights then biases, layer by layer).
  std::vector<double>& parameters() { return params_; }
  const std::vector<double>& parameters() const { return params_; }
  const std::vector<double>& gradients() const { return grads_; }

 private:
  struct Layer {
    std::size_t w_off;  // into params_: out x in row-major weights
    std::size_t b_off;  // then out biases
    int in, out;
  };

  std::vector<int> sizes_;
  std::vector<Layer> layers_;
  std::vector<double> params_;
  std::vector<double> grads_;
  std::vector<double> adam_m_, adam_v_;
  std::uint64_t adam_t_ = 0;
};

}  // namespace mtat
