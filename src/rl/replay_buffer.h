// Fixed-capacity experience replay for off-policy RL (SAC's D in Algorithm 1).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "common/rng.h"

namespace mtat {

struct Transition {
  std::vector<double> state;
  std::vector<double> action;
  double reward = 0.0;
  std::vector<double> next_state;
  bool done = false;
};

class ReplayBuffer {
 public:
  explicit ReplayBuffer(std::size_t capacity) : capacity_(capacity) {
    if (capacity == 0) throw std::invalid_argument("ReplayBuffer: zero capacity");
    storage_.reserve(capacity);
  }

  void store(Transition t) {
    if (storage_.size() < capacity_) {
      storage_.push_back(std::move(t));
    } else {
      storage_[next_] = std::move(t);
    }
    next_ = (next_ + 1) % capacity_;
  }

  /// Uniform sample with replacement.
  const Transition& sample(Rng& rng) const {
    if (storage_.empty()) throw std::logic_error("ReplayBuffer: empty");
    return storage_[rng.next_below(storage_.size())];
  }

  std::size_t size() const { return storage_.size(); }
  std::size_t capacity() const { return capacity_; }
  bool empty() const { return storage_.empty(); }

 private:
  std::size_t capacity_;
  std::size_t next_ = 0;
  std::vector<Transition> storage_;
};

}  // namespace mtat
