// DAMON-style adaptive region monitoring (Park et al., Middleware'19 —
// reference [29] of the paper — as extended to tiering by Telescope [26]).
//
// Instead of per-page counters, the address range is tracked as a bounded
// set of contiguous regions, each with one access counter. Regions that turn
// out hot are split to sharpen resolution; adjacent regions with similar
// activity are merged to reclaim budget — so monitoring overhead is O(max
// regions), independent of footprint. This is the telemetry alternative the
// paper's related work contrasts with PEBS-style page sampling: cheaper, but
// coarser — a region's heat smears over every page in it.
//
// Offered here as an alternative monitor over the same sampled access stream
// (samples are attributed to regions by binary search) so policies can be
// studied under region-granular visibility.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/types.h"

namespace mtat {

class RegionMonitor {
 public:
  struct Region {
    std::uint64_t begin = 0;  ///< first virtual page (inclusive)
    std::uint64_t end = 0;    ///< last virtual page (exclusive)
    std::uint32_t count = 0;  ///< sampled accesses this aggregation window

    std::uint64_t pages() const { return end - begin; }
    /// Accesses per page — the density regions are ranked by.
    double density() const {
      return pages() == 0 ? 0.0 : static_cast<double>(count) / static_cast<double>(pages());
    }
  };

  struct Options {
    std::size_t min_regions = 10;
    std::size_t max_regions = 100;
    /// Merge adjacent regions whose density differs by at most this factor.
    double merge_ratio = 1.5;
    /// Split a region when its count exceeds this share of the window total.
    double split_share = 0.05;
    std::uint64_t seed = 99;
  };

  /// Monitors virtual pages [0, footprint_pages).
  RegionMonitor(std::uint64_t footprint_pages, Options opt);

  /// Attribute one sampled access to the region holding `vpage`.
  void record(std::uint64_t vpage);

  /// End an aggregation window: split hot regions (at a random point, as
  /// DAMON does), merge similar neighbours, reset counts. Returns the
  /// window's region snapshot, hottest density first.
  std::vector<Region> aggregate();

  /// Current regions in address order (counts are for the open window).
  const std::vector<Region>& regions() const { return regions_; }
  std::uint64_t footprint_pages() const { return footprint_; }

 private:
  std::size_t region_of(std::uint64_t vpage) const;  // binary search
  void split_pass(std::uint64_t window_total);
  void merge_pass();

  std::uint64_t footprint_;
  Options opt_;
  Rng rng_;
  std::vector<Region> regions_;
};

}  // namespace mtat
