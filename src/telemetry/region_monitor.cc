#include "telemetry/region_monitor.h"

#include <algorithm>
#include <stdexcept>

namespace mtat {

RegionMonitor::RegionMonitor(std::uint64_t footprint_pages, Options opt)
    : footprint_(footprint_pages), opt_(opt), rng_(opt.seed) {
  if (footprint_pages == 0) throw std::invalid_argument("RegionMonitor: empty footprint");
  if (opt.min_regions == 0 || opt.max_regions < opt.min_regions)
    throw std::invalid_argument("RegionMonitor: bad region bounds");
  // Start with an even partition into min_regions pieces (or fewer when the
  // footprint is tiny).
  const std::uint64_t n = std::min<std::uint64_t>(opt.min_regions, footprint_pages);
  for (std::uint64_t i = 0; i < n; ++i) {
    Region r;
    r.begin = footprint_pages * i / n;
    r.end = footprint_pages * (i + 1) / n;
    regions_.push_back(r);
  }
}

std::size_t RegionMonitor::region_of(std::uint64_t vpage) const {
  // First region whose end exceeds vpage.
  std::size_t lo = 0, hi = regions_.size() - 1;
  while (lo < hi) {
    const std::size_t mid = (lo + hi) / 2;
    if (regions_[mid].end <= vpage)
      lo = mid + 1;
    else
      hi = mid;
  }
  return lo;
}

void RegionMonitor::record(std::uint64_t vpage) {
  if (vpage >= footprint_) throw std::out_of_range("RegionMonitor: vpage beyond footprint");
  regions_[region_of(vpage)].count++;
}

void RegionMonitor::split_pass(std::uint64_t window_total) {
  if (window_total == 0) return;
  std::vector<Region> next;
  next.reserve(regions_.size() + 8);
  std::size_t splits = 0;
  for (const Region& r : regions_) {
    const bool hot =
        static_cast<double>(r.count) > opt_.split_share * static_cast<double>(window_total);
    if (hot && r.pages() >= 2 && regions_.size() + splits < opt_.max_regions && ++splits) {
      // DAMON splits at a random offset so stable hot subranges are found
      // without assuming any alignment.
      const std::uint64_t cut = r.begin + 1 + rng_.next_below(r.pages() - 1);
      Region a = r, b = r;
      a.end = cut;
      b.begin = cut;
      // The window's count is apportioned by size; the next window resolves
      // which half is genuinely hot.
      a.count = static_cast<std::uint32_t>(static_cast<double>(r.count) *
                                           static_cast<double>(a.pages()) /
                                           static_cast<double>(r.pages()));
      b.count = r.count - a.count;
      next.push_back(a);
      next.push_back(b);
    } else {
      next.push_back(r);
    }
  }
  regions_ = std::move(next);
}

void RegionMonitor::merge_pass() {
  if (regions_.size() <= opt_.min_regions) return;
  std::vector<Region> next;
  next.reserve(regions_.size());
  next.push_back(regions_.front());
  for (std::size_t i = 1; i < regions_.size(); ++i) {
    Region& prev = next.back();
    const Region& cur = regions_[i];
    const double lo = std::min(prev.density(), cur.density());
    const double hi = std::max(prev.density(), cur.density());
    const bool similar = hi <= lo * opt_.merge_ratio || hi == 0.0;
    if (similar && next.size() + (regions_.size() - i) > opt_.min_regions) {
      prev.count += cur.count;
      prev.end = cur.end;
    } else {
      next.push_back(cur);
    }
  }
  regions_ = std::move(next);
}

std::vector<RegionMonitor::Region> RegionMonitor::aggregate() {
  std::uint64_t total = 0;
  for (const Region& r : regions_) total += r.count;
  std::vector<Region> snapshot = regions_;
  std::sort(snapshot.begin(), snapshot.end(),
            [](const Region& a, const Region& b) { return a.density() > b.density(); });
  // Merge before splitting, as DAMON does: a freshly split pair inherits
  // identical densities (the count is apportioned by size), so splitting
  // last lets the halves survive into the next window, where real traffic
  // differentiates them.
  merge_pass();
  split_pass(total);
  for (Region& r : regions_) r.count = 0;
  return snapshot;
}

}  // namespace mtat
