// Exponential-bin page-access histograms with per-bin page lists.
//
// This is the data structure §3.3.2 and §4 describe (and MEMTIS/FlexMem use):
// sampled per-page access counts are kept page-table-style, and pages are
// chained into histogram bins whose ranges double at each step (2^0, 2^1, ...),
// so "promote the hottest SMem pages" and "demote the coldest FMem pages" are
// O(result) pulls from the ends of the bin array. Bins are segregated by the
// page's current tier — the paper's separate FMem and SMem histograms — kept
// in sync with placement via a TieredMemory migration listener. Counts are
// periodically 'aged' by halving, implemented in O(bins + |count-1 pages|) by
// rotating the bin arrays down one slot and halving stored counts lazily via
// an epoch shift.
//
// Bin rule: bin 0 holds count 0, bin b>=1 holds counts in [2^(b-1), 2^b).
// Halving every count therefore maps bin b exactly onto bin b-1, which is why
// the rotation trick is exact, not an approximation.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "mem/tiered_memory.h"

namespace mtat {

class PageHotness {
 public:
  static constexpr int kBins = 32;

  /// Tracks hotness for pages of `mem`. If `workload_filter` is a valid id,
  /// only that workload's accesses are recorded (per-workload histograms of
  /// MTAT's PP-E); with kInvalidWorkload it records everything (the unified
  /// global histogram a MEMTIS-like policy uses).
  ///
  /// Registers a migration listener on `mem`: the histogram must outlive any
  /// further page migrations and must not be moved.
  explicit PageHotness(TieredMemory& mem, WorkloadId workload_filter = kInvalidWorkload);

  PageHotness(const PageHotness&) = delete;
  PageHotness& operator=(const PageHotness&) = delete;

  /// Insert every currently allocated page (of the filtered workload, if any)
  /// at count 0, so never-accessed pages are orderable as "coldest". Policies
  /// call this once at attach time.
  void seed_allocated_pages();

  /// Record one sampled access to page `p` by workload `w`.
  void record_access(WorkloadId w, PageId p);

  /// Current (aged) access count of a page; 0 if never seen.
  std::uint32_t count_of(PageId p) const {
    return p < entries_.size() && entries_[p].tracked ? effective(entries_[p]) : 0;
  }

  /// Histogram bin of a page; -1 if untracked.
  int bin_of_page(PageId p) const {
    return p < entries_.size() && entries_[p].tracked ? bin_of(effective(entries_[p])) : -1;
  }

  /// Halve every count (the §3.3.2 aging step).
  void age();

  /// Up to `max_n` of the hottest tracked pages currently resident in `tier`,
  /// hottest bins first. Pages with zero effective count never qualify.
  std::vector<PageId> hottest_in_tier(Tier tier, std::size_t max_n) const {
    return scan(tier, max_n, /*from_hot=*/true);
  }

  /// Up to `max_n` of the coldest tracked pages in `tier`, coldest first
  /// (seeded/aged-out pages in bin 0 lead).
  std::vector<PageId> coldest_in_tier(Tier tier, std::size_t max_n) const {
    return scan(tier, max_n, /*from_hot=*/false);
  }

  /// Number of tracked pages in `tier` at bin `b` or hotter — lets policies
  /// size "how much of my quota is genuinely warm" without a scan.
  std::uint64_t pages_at_or_above(Tier tier, int b) const;

  std::size_t bin_size(Tier tier, int b) const {
    return bins_[static_cast<int>(tier)][b].size();
  }
  std::size_t tracked_pages() const { return tracked_; }
  std::uint32_t age_epoch() const { return epoch_; }
  WorkloadId workload_filter() const { return filter_; }

  /// The bin rule, exposed for tests: 0 -> 0, c >= 1 -> 1 + floor(log2(c)).
  static int bin_of(std::uint32_t c) {
    if (c == 0) return 0;
    const int b = 32 - __builtin_clz(c);  // 1 + floor(log2(c))
    return b >= kBins ? kBins - 1 : b;
  }

 private:
  struct Entry {
    std::uint32_t count = 0;
    std::uint32_t epoch = 0;
    std::uint32_t pos = 0;    // index within its (tier, bin) vector
    std::uint8_t tier = 0;    // which tier's bin array holds it
    bool tracked = false;
  };

  std::uint32_t effective(const Entry& e) const {
    const std::uint32_t shift = epoch_ - e.epoch;
    return shift >= 32 ? 0 : e.count >> shift;
  }

  void ensure(PageId p) {
    if (p >= entries_.size()) entries_.resize(static_cast<std::size_t>(p) + 1);
  }

  void push(PageId p, int tier, int bin) {
    auto& v = bins_[tier][bin];
    entries_[p].pos = static_cast<std::uint32_t>(v.size());
    entries_[p].tier = static_cast<std::uint8_t>(tier);
    v.push_back(p);
  }

  void remove(PageId p, int tier, int bin) {
    auto& v = bins_[tier][bin];
    const std::uint32_t pos = entries_[p].pos;
    v[pos] = v.back();
    entries_[v[pos]].pos = pos;
    v.pop_back();
  }

  void on_migration(PageId p, Tier from, Tier to);
  std::vector<PageId> scan(Tier tier, std::size_t max_n, bool from_hot) const;

  TieredMemory* mem_;
  WorkloadId filter_;
  std::vector<Entry> entries_;
  std::vector<PageId> bins_[2][kBins];
  std::size_t tracked_ = 0;
  std::uint32_t epoch_ = 0;
};

}  // namespace mtat
