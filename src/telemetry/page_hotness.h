// Exponential-bin page-access histograms, flat SoA layout.
//
// This is the data structure §3.3.2 and §4 describe (and MEMTIS/FlexMem use):
// sampled per-page access counts are kept page-table-style, and pages are
// chained into histogram bins whose ranges double at each step (2^0, 2^1, ...),
// so "promote the hottest slow-tier pages" and "demote the coldest fast-tier
// pages" are O(result) pulls from the ends of the bin array. Bins are
// segregated by the page's current tier — the paper's separate FMem and SMem
// histograms, generalized to one histogram per tier of the topology — kept
// in sync with placement via a TieredMemory migration listener. Counts are
// periodically 'aged' by halving, implemented in O(|count-1 pages|) by
// advancing a circular bin base and halving stored counts lazily via an
// epoch shift.
//
// Bin rule: bin 0 holds count 0, bin b>=1 holds counts in [2^(b-1), 2^b).
// Halving every count therefore maps bin b exactly onto bin b-1, which is why
// the base rotation is exact, not an approximation.
//
// Layout. Per-page state is ONE 64-bit word in a flat array indexed by
// PageId — count (32 bits), age epoch (24 bits), cached tier (3 bits, so
// kMaxTiers = 8 topologies fit), and a tracked flag (1 bit) — plus a
// parallel pos_ array giving the page's slot in its bin vector. This
// replaces a 16-byte AoS entry whose hot path also had to chase
// TieredMemory::tier_of on every record; the tier field is kept in sync by
// the migration listener instead, so the common record_access — a same-bin
// count bump — inlines to one word load, a shift, a power-of-two test, and
// one word store. Logical bins 1..kBins-1 live in a circular array offset by
// base_, so age() merges logical bin 1 into bin 0 and advances base_ instead
// of moving kBins vectors. A renormalization sweep every kRenormPeriod ages
// rewrites stored counts to their effective values, which keeps the 24-bit
// stored epoch unambiguous.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/types.h"
#include "mem/tiered_memory.h"

namespace mtat {

class PageHotness : public MigrationListener {
 public:
  static constexpr int kBins = 32;

  /// Tracks hotness for pages of `mem`. If `workload_filter` is a valid id,
  /// only that workload's accesses are recorded (per-workload histograms of
  /// MTAT's PP-E); with kInvalidWorkload it records everything (the unified
  /// global histogram a MEMTIS-like policy uses).
  ///
  /// Registers a migration listener on `mem`: the histogram must outlive any
  /// further page migrations and must not be moved.
  explicit PageHotness(TieredMemory& mem, WorkloadId workload_filter = kInvalidWorkload);

  PageHotness(const PageHotness&) = delete;
  PageHotness& operator=(const PageHotness&) = delete;

  /// Insert every currently allocated page (of the filtered workload, if any)
  /// at count 0, so never-accessed pages are orderable as "coldest". Policies
  /// call this once at attach time.
  void seed_allocated_pages();

  /// Record one sampled access to page `p` by workload `w`. The overwhelmingly
  /// common case — tracked page whose count stays within its bin — is a single
  /// load/store on the packed word; bin moves and first-touch tracking take
  /// the out-of-line paths.
  void record_access(WorkloadId w, PageId p) {
    if (filter_ != kInvalidWorkload && w != filter_) return;
    if (p >= words_.size()) {
      record_untracked(p);
      return;
    }
    const std::uint64_t word = words_[p];
    if (!(word & kTrackedBit)) {
      record_untracked(p);
      return;
    }
    const std::uint32_t eff = effective_of(word);
    // The bin changes exactly when eff+1 is a power of two (covers eff == 0
    // entering bin 1, and unsigned wrap at eff == UINT32_MAX).
    if ((eff & (eff + 1)) != 0) {
      words_[p] = (word & (kTierMask | kTrackedBit)) | packed_epoch() |
                  static_cast<std::uint64_t>(eff + 1);
      return;
    }
    record_bin_move(p, word, eff);
  }

  /// Current (aged) access count of a page; 0 if never seen.
  std::uint32_t count_of(PageId p) const {
    return p < words_.size() && (words_[p] & kTrackedBit) ? effective_of(words_[p]) : 0;
  }

  /// Histogram bin of a page; -1 if untracked.
  int bin_of_page(PageId p) const {
    return p < words_.size() && (words_[p] & kTrackedBit) ? bin_of(effective_of(words_[p])) : -1;
  }

  /// Halve every count (the §3.3.2 aging step).
  void age();

  /// Up to `max_n` of the hottest tracked pages currently resident in `tier`,
  /// hottest bins first. Pages with zero effective count never qualify.
  std::vector<PageId> hottest_in_tier(TierId tier, std::size_t max_n) const {
    std::vector<PageId> out;
    out.reserve(max_n < 4096 ? max_n : 4096);
    scan(tier, max_n, /*from_hot=*/true, out);
    return out;
  }

  /// Up to `max_n` of the coldest tracked pages in `tier`, coldest first
  /// (seeded/aged-out pages in bin 0 lead).
  std::vector<PageId> coldest_in_tier(TierId tier, std::size_t max_n) const {
    std::vector<PageId> out;
    out.reserve(max_n < 4096 ? max_n : 4096);
    scan(tier, max_n, /*from_hot=*/false, out);
    return out;
  }

  /// Non-allocating pulls: clear `out` and fill it with the same pages (and
  /// order) the allocating overloads return. Policies that pull every
  /// interval keep a scratch vector and reuse its capacity.
  void hottest_in_tier(TierId tier, std::size_t max_n, std::vector<PageId>& out) const {
    out.clear();
    scan(tier, max_n, /*from_hot=*/true, out);
  }
  void coldest_in_tier(TierId tier, std::size_t max_n, std::vector<PageId>& out) const {
    out.clear();
    scan(tier, max_n, /*from_hot=*/false, out);
  }

  /// Single hottest / coldest tracked page in `tier` (what the allocating
  /// pulls return for max_n == 1), or kInvalidPage when no page qualifies.
  PageId hottest_page(TierId tier) const;
  PageId coldest_page(TierId tier) const;

  // --- Slower-aggregate views ------------------------------------------------
  //
  // Promotion policies want "the hottest page NOT in the fastest tier",
  // wherever it currently sits in the cascade. These aggregate every tier
  // except tier 0, scanning bins hottest-first (or coldest-first) and, within
  // a bin, tiers in id order; at two tiers they are exactly the tier-1 views.

  /// Hottest tracked page outside the fastest tier, or kInvalidPage.
  PageId hottest_slow_page() const;
  /// Coldest tracked page outside the fastest tier, or kInvalidPage.
  PageId coldest_slow_page() const;
  /// Up to `max_n` hottest pages outside the fastest tier, hottest bins first.
  void hottest_in_slower(std::size_t max_n, std::vector<PageId>& out) const;
  /// Up to `max_n` coldest pages outside the fastest tier, coldest first.
  void coldest_in_slower(std::size_t max_n, std::vector<PageId>& out) const;

  /// Number of tracked pages in `tier` at bin `b` or hotter — lets policies
  /// size "how much of my quota is genuinely warm" without a scan.
  std::uint64_t pages_at_or_above(TierId tier, int b) const;

  /// Same, summed over every tier of the topology (pages this hot wherever
  /// they currently live) — the tier-indexed hotness distribution a
  /// VTMM-style quota split consumes.
  std::uint64_t pages_at_or_above_total(int b) const;

  /// The pages of one (tier, bin), in structural order — the order pulls and
  /// aging observe them in. Exposed for determinism fingerprints and the
  /// differential equivalence test.
  const std::vector<PageId>& bin_pages(TierId tier, int b) const {
    return bin_ref(tier, b);
  }

  std::size_t bin_size(TierId tier, int b) const { return bin_ref(tier, b).size(); }
  std::size_t tracked_pages() const { return tracked_; }
  std::uint32_t age_epoch() const { return epoch_; }
  WorkloadId workload_filter() const { return filter_; }
  std::size_t tier_count() const { return tiers_.size(); }

  /// The bin rule, exposed for tests: 0 -> 0, c >= 1 -> 1 + floor(log2(c)).
  static int bin_of(std::uint32_t c) {
    if (c == 0) return 0;
    const int b = 32 - __builtin_clz(c);  // 1 + floor(log2(c))
    return b >= kBins ? kBins - 1 : b;
  }

 private:
  // Packed-word fields. Stored epochs are 24-bit; the renormalization sweep
  // bounds the distance to epoch_ well below 2^24, so the masked difference
  // is the true age delta. The tier field is 3 bits (kMaxTiers = 8).
  static constexpr std::uint64_t kCountMask = 0xFFFFFFFFull;
  static constexpr int kEpochShift = 32;
  static constexpr std::uint32_t kEpochMask = 0xFFFFFFu;
  static constexpr int kTierShift = 56;
  static constexpr std::uint64_t kTierMask = 7ull << kTierShift;
  static constexpr std::uint64_t kTrackedBit = 1ull << 59;
  static constexpr std::uint32_t kRenormPeriod = 1u << 16;

  static int tier_of_word(std::uint64_t word) {
    return static_cast<int>((word >> kTierShift) & 7u);
  }
  static std::uint64_t packed_tier(int tier) {
    return static_cast<std::uint64_t>(tier) << kTierShift;
  }

  std::uint64_t packed_epoch() const {
    return static_cast<std::uint64_t>(epoch_ & kEpochMask) << kEpochShift;
  }

  std::uint32_t effective_of(std::uint64_t word) const {
    const std::uint32_t stored_epoch =
        static_cast<std::uint32_t>(word >> kEpochShift) & kEpochMask;
    const std::uint32_t shift = (epoch_ - stored_epoch) & kEpochMask;
    return shift >= 32 ? 0 : static_cast<std::uint32_t>(word & kCountMask) >> shift;
  }

  /// Per-tier bin storage: bin 0 is its own pool; bins 1..kBins-1 rotate
  /// through a circular array so age() is a base increment, not kBins moves.
  struct TierBins {
    std::vector<PageId> bin0;
    std::array<std::vector<PageId>, kBins - 1> ring;
  };

  std::vector<PageId>& bin_ref(int tier, int b) {
    return b == 0 ? tiers_[tier].bin0 : tiers_[tier].ring[(base_ + b - 1) % (kBins - 1)];
  }
  const std::vector<PageId>& bin_ref(int tier, int b) const {
    return b == 0 ? tiers_[tier].bin0 : tiers_[tier].ring[(base_ + b - 1) % (kBins - 1)];
  }

  void ensure(PageId p) {
    if (p >= words_.size()) {
      words_.resize(static_cast<std::size_t>(p) + 1, 0);
      pos_.resize(static_cast<std::size_t>(p) + 1, 0);
    }
  }

  void push(PageId p, int tier, int bin) {
    auto& v = bin_ref(tier, bin);
    pos_[p] = static_cast<std::uint32_t>(v.size());
    v.push_back(p);
  }

  void remove(PageId p, int tier, int bin) {
    auto& v = bin_ref(tier, bin);
    const std::uint32_t pos = pos_[p];
    v[pos] = v.back();
    pos_[v[pos]] = pos;
    v.pop_back();
  }

  // Cold paths of record_access: first touch of a page, and a count bump
  // that crosses a bin boundary.
  void record_untracked(PageId p);
  void record_bin_move(PageId p, std::uint64_t word, std::uint32_t eff);

  void on_migration(PageId p, TierId from, TierId to) override;
  void renormalize();
  void scan(TierId tier, std::size_t max_n, bool from_hot, std::vector<PageId>& out) const;

  TieredMemory* mem_;
  WorkloadId filter_;
  std::vector<std::uint64_t> words_;  ///< packed per-page state, indexed by PageId
  std::vector<std::uint32_t> pos_;    ///< slot within the page's bin vector
  std::vector<TierBins> tiers_;       ///< bin storage, one entry per tier
  int base_ = 0;                      ///< ring slot of logical bin 1
  std::size_t tracked_ = 0;
  std::uint32_t epoch_ = 0;
  std::uint32_t ages_since_renorm_ = 0;
};

}  // namespace mtat
