#include "telemetry/page_hotness.h"

#include <stdexcept>

namespace mtat {

PageHotness::PageHotness(TieredMemory& mem, WorkloadId workload_filter)
    : mem_(&mem), filter_(workload_filter) {
  mem.add_migration_listener([this](PageId p, Tier from, Tier to) { on_migration(p, from, to); });
}

void PageHotness::seed_allocated_pages() {
  const auto seed_one = [this](PageId p) {
    ensure(p);
    Entry& e = entries_[p];
    if (e.tracked) return;
    e.tracked = true;
    e.count = 0;
    e.epoch = epoch_;
    push(p, static_cast<int>(mem_->tier_of(p)), 0);
    ++tracked_;
  };
  if (filter_ != kInvalidWorkload) {
    for (PageId p : mem_->pages_of(filter_)) seed_one(p);
  } else {
    for (PageId p = 0; p < mem_->page_count(); ++p) seed_one(p);
  }
}

void PageHotness::record_access(WorkloadId w, PageId p) {
  if (filter_ != kInvalidWorkload && w != filter_) return;
  ensure(p);
  Entry& e = entries_[p];
  const int tier = static_cast<int>(mem_->tier_of(p));
  const std::uint32_t eff = e.tracked ? effective(e) : 0;
  const int old_bin = bin_of(eff);
  const int new_bin = bin_of(eff + 1);
  if (!e.tracked) {
    e.tracked = true;
    ++tracked_;
    e.count = 1;
    e.epoch = epoch_;
    push(p, tier, new_bin);
    return;
  }
  e.count = eff + 1;
  e.epoch = epoch_;
  if (new_bin != old_bin || static_cast<int>(e.tier) != tier) {
    remove(p, e.tier, old_bin);
    push(p, tier, new_bin);
  }
}

void PageHotness::on_migration(PageId p, Tier, Tier to) {
  if (p >= entries_.size()) return;
  Entry& e = entries_[p];
  if (!e.tracked) return;
  const int bin = bin_of(effective(e));
  remove(p, e.tier, bin);
  push(p, static_cast<int>(to), bin);
}

void PageHotness::age() {
  ++epoch_;
  // Counts halve lazily via the epoch shift; physically, every bin's contents
  // now belong one bin lower, so rotate each tier's bin array down one slot.
  // Bin 1 (count 1 -> 0) merges into bin 0.
  for (auto& tier_bins : bins_) {
    auto& b0 = tier_bins[0];
    for (PageId p : tier_bins[1]) {
      entries_[p].pos = static_cast<std::uint32_t>(b0.size());
      b0.push_back(p);
    }
    for (int b = 1; b + 1 < kBins; ++b) tier_bins[b] = std::move(tier_bins[b + 1]);
    tier_bins[kBins - 1].clear();
  }
}

std::vector<PageId> PageHotness::scan(Tier tier, std::size_t max_n, bool from_hot) const {
  std::vector<PageId> out;
  if (max_n == 0) return out;
  out.reserve(max_n < 4096 ? max_n : 4096);
  const auto& tier_bins = bins_[static_cast<int>(tier)];
  const auto collect = [&](int b) {
    for (PageId p : tier_bins[b]) {
      out.push_back(p);
      if (out.size() == max_n) return true;
    }
    return false;
  };
  // Hottest scans exclude bin 0 (effective count zero is not hot); coldest
  // scans start there — seeded/aged-out pages are the first candidates.
  if (from_hot) {
    for (int b = kBins - 1; b >= 1; --b)
      if (collect(b)) break;
  } else {
    for (int b = 0; b < kBins; ++b)
      if (collect(b)) break;
  }
  return out;
}

std::uint64_t PageHotness::pages_at_or_above(Tier tier, int b) const {
  std::uint64_t n = 0;
  for (int i = b; i < kBins; ++i) n += bins_[static_cast<int>(tier)][i].size();
  return n;
}

}  // namespace mtat
