#include "telemetry/page_hotness.h"

namespace mtat {

PageHotness::PageHotness(TieredMemory& mem, WorkloadId workload_filter)
    : mem_(&mem), filter_(workload_filter), tiers_(mem.tier_count()) {
  mem.add_migration_listener(this);
}

void PageHotness::seed_allocated_pages() {
  const auto seed_one = [this](PageId p) {
    ensure(p);
    if (words_[p] & kTrackedBit) return;
    const int tier = static_cast<int>(mem_->tier_of(p));
    words_[p] = kTrackedBit | packed_tier(tier) | packed_epoch();
    push(p, tier, 0);
    ++tracked_;
  };
  if (filter_ != kInvalidWorkload) {
    for (PageId p : mem_->pages_of(filter_)) seed_one(p);
  } else {
    for (PageId p = 0; p < mem_->page_count(); ++p) seed_one(p);
  }
}

void PageHotness::record_untracked(PageId p) {
  // tier_of also validates p (throws on a never-allocated id), so ask before
  // growing the arrays.
  const int tier = static_cast<int>(mem_->tier_of(p));
  ensure(p);
  words_[p] = kTrackedBit | packed_tier(tier) | packed_epoch() | 1u;
  push(p, tier, bin_of(1));
  ++tracked_;
}

void PageHotness::record_bin_move(PageId p, std::uint64_t word, std::uint32_t eff) {
  const int old_bin = bin_of(eff);
  const int new_bin = bin_of(eff + 1);
  const int tier = tier_of_word(word);
  words_[p] = (word & (kTierMask | kTrackedBit)) | packed_epoch() |
              static_cast<std::uint64_t>(eff + 1);
  // new_bin == old_bin happens only at the saturating top bin (and the
  // count-wrap corner); everywhere else eff+1 being a power of two means the
  // page steps up exactly one bin.
  if (new_bin != old_bin) {
    remove(p, tier, old_bin);
    push(p, tier, new_bin);
  }
}

void PageHotness::on_migration(PageId p, TierId, TierId to) {
  if (p >= words_.size()) return;
  const std::uint64_t word = words_[p];
  if (!(word & kTrackedBit)) return;
  const int tier = tier_of_word(word);
  const int bin = bin_of(effective_of(word));
  remove(p, tier, bin);
  const int nt = static_cast<int>(to);
  words_[p] = (word & ~kTierMask) | packed_tier(nt);
  push(p, nt, bin);
}

void PageHotness::age() {
  ++epoch_;
  // Counts halve lazily via the epoch shift; physically, every bin's contents
  // now belong one bin lower, which the circular bins express as a base_
  // advance. Only bin 1 (count 1 -> 0) needs touching: it merges into bin 0.
  for (TierBins& tb : tiers_) {
    auto& b0 = tb.bin0;
    auto& b1 = tb.ring[base_];  // logical bin 1
    const auto start = static_cast<std::uint32_t>(b0.size());
    b0.insert(b0.end(), b1.begin(), b1.end());
    for (std::uint32_t i = 0; i < b1.size(); ++i) pos_[b1[i]] = start + i;
    b1.clear();
  }
  base_ = (base_ + 1) % (kBins - 1);
  if (++ages_since_renorm_ >= kRenormPeriod) renormalize();
}

void PageHotness::renormalize() {
  // Rewrite every stored count to its effective value at the current epoch.
  // Effective counts (and therefore bins) are unchanged; this only keeps the
  // 24-bit stored epochs within an unambiguous distance of epoch_.
  for (std::uint64_t& word : words_) {
    if (!(word & kTrackedBit)) continue;
    word = (word & (kTierMask | kTrackedBit)) | packed_epoch() |
           static_cast<std::uint64_t>(effective_of(word));
  }
  ages_since_renorm_ = 0;
}

void PageHotness::scan(TierId tier, std::size_t max_n, bool from_hot,
                       std::vector<PageId>& out) const {
  if (max_n == 0) return;
  const int t = static_cast<int>(tier);
  const auto collect = [&](int b) {
    for (PageId p : bin_ref(t, b)) {
      out.push_back(p);
      if (out.size() == max_n) return true;
    }
    return false;
  };
  // Hottest scans exclude bin 0 (effective count zero is not hot); coldest
  // scans start there — seeded/aged-out pages are the first candidates.
  if (from_hot) {
    for (int b = kBins - 1; b >= 1; --b)
      if (collect(b)) break;
  } else {
    for (int b = 0; b < kBins; ++b)
      if (collect(b)) break;
  }
}

PageId PageHotness::hottest_page(TierId tier) const {
  const int t = static_cast<int>(tier);
  for (int b = kBins - 1; b >= 1; --b) {
    const auto& v = bin_ref(t, b);
    if (!v.empty()) return v.front();
  }
  return kInvalidPage;
}

PageId PageHotness::coldest_page(TierId tier) const {
  const int t = static_cast<int>(tier);
  for (int b = 0; b < kBins; ++b) {
    const auto& v = bin_ref(t, b);
    if (!v.empty()) return v.front();
  }
  return kInvalidPage;
}

PageId PageHotness::hottest_slow_page() const {
  // Bin-major, then tier id order within a bin: at two tiers this is exactly
  // hottest_page(1); at more it prefers the hotter page regardless of where
  // in the cascade it sits.
  for (int b = kBins - 1; b >= 1; --b) {
    for (std::size_t t = 1; t < tiers_.size(); ++t) {
      const auto& v = bin_ref(static_cast<int>(t), b);
      if (!v.empty()) return v.front();
    }
  }
  return kInvalidPage;
}

PageId PageHotness::coldest_slow_page() const {
  for (int b = 0; b < kBins; ++b) {
    for (std::size_t t = 1; t < tiers_.size(); ++t) {
      const auto& v = bin_ref(static_cast<int>(t), b);
      if (!v.empty()) return v.front();
    }
  }
  return kInvalidPage;
}

void PageHotness::hottest_in_slower(std::size_t max_n, std::vector<PageId>& out) const {
  out.clear();
  if (max_n == 0) return;
  for (int b = kBins - 1; b >= 1; --b) {
    for (std::size_t t = 1; t < tiers_.size(); ++t) {
      for (PageId p : bin_ref(static_cast<int>(t), b)) {
        out.push_back(p);
        if (out.size() == max_n) return;
      }
    }
  }
}

void PageHotness::coldest_in_slower(std::size_t max_n, std::vector<PageId>& out) const {
  out.clear();
  if (max_n == 0) return;
  for (int b = 0; b < kBins; ++b) {
    for (std::size_t t = 1; t < tiers_.size(); ++t) {
      for (PageId p : bin_ref(static_cast<int>(t), b)) {
        out.push_back(p);
        if (out.size() == max_n) return;
      }
    }
  }
}

std::uint64_t PageHotness::pages_at_or_above(TierId tier, int b) const {
  const int t = static_cast<int>(tier);
  std::uint64_t n = 0;
  for (int i = b; i < kBins; ++i) n += bin_ref(t, i).size();
  return n;
}

std::uint64_t PageHotness::pages_at_or_above_total(int b) const {
  std::uint64_t n = 0;
  for (std::size_t t = 0; t < tiers_.size(); ++t) n += pages_at_or_above(static_cast<TierId>(t), b);
  return n;
}

}  // namespace mtat
