// PEBS-like sampled access monitor.
//
// The paper's PP-E samples MEM_LOAD_L3_MISS_RETIRED.{LOCAL,REMOTE}_DRAM and
// MEM_INST_RETIRED.ALL_STORES to classify each sampled access as FMem or SMem
// and accumulate page-level counts. Here the AddressSpace delivers a 1-in-N
// sample of modelled accesses; AccessSampler classifies it by the page's
// current tier, maintains the per-workload interval counters PP-M's RL state
// is built from (FMem Access Ratio, Memory Access Count), and fans the sample
// out to the registered PageHotness histograms.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/types.h"
#include "faults/fault_injector.h"
#include "mem/address_space.h"
#include "obs/names.h"
#include "obs/run_context.h"
#include "telemetry/page_hotness.h"

namespace mtat {

/// Per-workload counters accumulated over one observation interval.
struct IntervalCounters {
  std::uint64_t fmem_accesses = 0;  ///< sampled accesses resolved in the fastest tier
  std::uint64_t smem_accesses = 0;  ///< sampled accesses resolved in any slower tier
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  /// Per-tier breakdown of the same samples (tier_accesses[0] ==
  /// fmem_accesses; slower tiers sum to smem_accesses). Lets N-tier policies
  /// see where in the cascade the misses actually land.
  std::array<std::uint64_t, kMaxTiers> tier_accesses{};

  std::uint64_t total() const { return fmem_accesses + smem_accesses; }

  /// The paper's "FMem Access Ratio": share of accesses served by FMem.
  /// Returns 1.0 for an idle interval (no accesses means no SMem misses).
  double fmem_access_ratio() const {
    const std::uint64_t t = total();
    return t == 0 ? 1.0 : static_cast<double>(fmem_accesses) / static_cast<double>(t);
  }
};

class AccessSampler : public AccessObserver {
 public:
  /// `sample_period` is the N of the AddressSpaces feeding this sampler; it is
  /// used only to scale sampled counts back to estimated true access counts.
  explicit AccessSampler(const TieredMemory& mem, std::uint64_t sample_period = 1)
      : mem_(&mem), sample_period_(sample_period == 0 ? 1 : sample_period) {}

  void on_sampled_access(WorkloadId w, PageId p, AccessKind kind) override {
    if (faults_ != nullptr) {
      if (faults_->drop_sample()) {
        dropped_c_->inc();
        return;
      }
      if (faults_->corrupt_sample()) {
        // Misattribute the sample to a uniformly random page of the same
        // workload — hotness and tier classification both go wrong, which is
        // the PEBS-misattribution failure mode.
        const std::vector<PageId>& pages = mem_->pages_of(w);
        if (!pages.empty()) {
          p = pages[faults_->pick(pages.size())];
          corrupted_c_->inc();
        }
      }
    }
    if (current_.size() <= w) {
      current_.resize(static_cast<std::size_t>(w) + 1);
      cumulative_.resize(static_cast<std::size_t>(w) + 1);
    }
    IntervalCounters& c = current_[w];
    const TierId tier = mem_->tier_of(p);
    if (tier == kFastestTier)
      ++c.fmem_accesses;
    else
      ++c.smem_accesses;
    ++c.tier_accesses[tier];
    if (kind == AccessKind::kRead)
      ++c.reads;
    else
      ++c.writes;
    for (PageHotness* h : sinks_) h->record_access(w, p);
    for (const auto& cb : callbacks_) cb(w, p, kind);
  }

  /// Attach a fault injector (telemetry sample loss / corruption). Registers
  /// the fault counters lazily — a sampler without faults touches neither the
  /// registry nor the injector on the sample path.
  void set_faults(faults::FaultInjector* inj, obs::RunContext& ctx) {
    faults_ = inj;
    if (faults_ != nullptr) {
      dropped_c_ = &ctx.metrics().counter(obs::names::kFaultSamplesDropped);
      corrupted_c_ = &ctx.metrics().counter(obs::names::kFaultSamplesCorrupted);
    }
  }

  /// Attach a histogram that should receive every sample this monitor sees.
  void add_sink(PageHotness* h) { sinks_.push_back(h); }

  /// The attached histograms, in registration order — read-only, for state
  /// fingerprinting (ColocationSim::fingerprint()).
  const std::vector<PageHotness*>& sinks() const { return sinks_; }

  /// Attach an arbitrary per-sample callback (e.g. TPP's fault shadowing).
  using SampleCallback = std::function<void(WorkloadId, PageId, AccessKind)>;
  void add_callback(SampleCallback cb) { callbacks_.push_back(std::move(cb)); }

  /// Read-and-reset the interval counters for workload `w`. Called once per
  /// observation interval by the policy layer.
  IntervalCounters collect(WorkloadId w) {
    if (current_.size() <= w) return IntervalCounters{};
    IntervalCounters out = current_[w];
    accumulate(cumulative_[w], out);
    current_[w] = IntervalCounters{};
    return out;
  }

  /// Peek at the counters without resetting.
  IntervalCounters peek(WorkloadId w) const {
    return current_.size() <= w ? IntervalCounters{} : current_[w];
  }

  const IntervalCounters& cumulative(WorkloadId w) const {
    static const IntervalCounters kEmpty{};
    return cumulative_.size() <= w ? kEmpty : cumulative_[w];
  }

  /// Scale a sampled count to an estimate of the true access count.
  std::uint64_t to_true_count(std::uint64_t sampled) const { return sampled * sample_period_; }

  std::uint64_t sample_period() const { return sample_period_; }

 private:
  static void accumulate(IntervalCounters& into, const IntervalCounters& from) {
    into.fmem_accesses += from.fmem_accesses;
    into.smem_accesses += from.smem_accesses;
    into.reads += from.reads;
    into.writes += from.writes;
    for (std::size_t t = 0; t < from.tier_accesses.size(); ++t)
      into.tier_accesses[t] += from.tier_accesses[t];
  }

  const TieredMemory* mem_;
  faults::FaultInjector* faults_ = nullptr;
  obs::Counter* dropped_c_ = nullptr;    // set iff faults_ != nullptr
  obs::Counter* corrupted_c_ = nullptr;  // set iff faults_ != nullptr
  std::uint64_t sample_period_;
  std::vector<IntervalCounters> current_;
  std::vector<IntervalCounters> cumulative_;
  std::vector<PageHotness*> sinks_;
  std::vector<SampleCallback> callbacks_;
};

}  // namespace mtat
