#include "loadgen/load_pattern.h"

namespace mtat {

LoadPattern LoadPattern::figure7(double max_rate) {
  std::vector<Step> steps;
  for (double f : {0.2, 0.4, 0.6, 0.8}) steps.push_back({seconds(20), f * max_rate});
  steps.push_back({seconds(60), max_rate});
  for (double f : {0.8, 0.6, 0.4}) steps.push_back({seconds(20), f * max_rate});
  steps.push_back({seconds(40), 0.2 * max_rate});
  return LoadPattern(std::move(steps));
}

LoadPattern LoadPattern::staircase(double max_rate, const std::vector<double>& fractions,
                                   Duration step_len) {
  std::vector<Step> steps;
  steps.reserve(fractions.size());
  for (double f : fractions) steps.push_back({step_len, f * max_rate});
  return LoadPattern(std::move(steps));
}

}  // namespace mtat
