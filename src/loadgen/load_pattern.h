// Offered-load patterns for the LC workload.
//
// A LoadPattern maps simulated time to an offered request rate. The paper's
// dynamic experiments use the Figure-7 trapezoid (20% -> 100% -> 20% of max
// load in 20%/20s steps); Figure 2 uses a staircase whose levels equal the
// max throughput at 0/25/50/75/100% FMem.
#pragma once

#include <stdexcept>
#include <vector>

#include "common/units.h"

namespace mtat {

/// Piecewise-constant offered load (requests per second over simulated time).
class LoadPattern {
 public:
  struct Step {
    Duration length;  ///< how long this level lasts
    double rate;      ///< requests/s during the step
  };

  explicit LoadPattern(std::vector<Step> steps) : steps_(std::move(steps)) {
    if (steps_.empty()) throw std::invalid_argument("LoadPattern: no steps");
    for (const Step& s : steps_) {
      if (s.length == 0) throw std::invalid_argument("LoadPattern: zero-length step");
      if (s.rate < 0) throw std::invalid_argument("LoadPattern: negative rate");
      total_ += s.length;
    }
  }

  /// Constant load forever (the final step's rate persists past the end).
  static LoadPattern constant(double rate) { return LoadPattern({{seconds(1), rate}}); }

  /// The Figure-7 trapezoid over `max_rate`: 20/40/60/80% for 20 s each,
  /// 100% for 60 s, then 80/60/40% for 20 s each and 20% for the final 40 s —
  /// a 240 s pattern whose high-load plateau spans t = 80..140 s.
  static LoadPattern figure7(double max_rate);

  /// Staircase: each fraction of `max_rate` held for `step_len` (Figure 2).
  static LoadPattern staircase(double max_rate, const std::vector<double>& fractions,
                               Duration step_len);

  /// Offered rate at simulated time `t`. Past the last step, the final rate.
  double rate_at(SimTime t) const {
    SimTime acc = 0;
    for (const Step& s : steps_) {
      acc += s.length;
      if (t < acc) return s.rate;
    }
    return steps_.back().rate;
  }

  Duration total_length() const { return total_; }
  const std::vector<Step>& steps() const { return steps_; }

 private:
  std::vector<Step> steps_;
  Duration total_ = 0;
};

}  // namespace mtat
