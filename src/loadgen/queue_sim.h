// Open-loop M/G/k FCFS queueing simulation of the LC server.
//
// This is the mechanism that turns page placement into tail latency. Requests
// arrive Poisson at the pattern's offered rate (open loop: the client never
// backs off, as with YCSB/Mutilate load generation); k server threads serve
// FCFS; each request's service time comes from the LC workload model, i.e.
// from the tiers its touched pages are on at dispatch. When offered load
// approaches 1/E[S], sojourn times diverge — the knee the paper's SLOs are
// defined at (Figure 1) — and when the LC dataset sits in SMem the knee
// arrives at proportionally lower load, which is the entire phenomenon MTAT
// exists to fix.
//
// FCFS with k identical servers needs no explicit queue: track each server's
// next-free time in a min-heap; a request starts at max(arrival, earliest
// free server). Memory stays O(k) even during deep overload.
#pragma once

#include <algorithm>
#include <cstdint>
#include <queue>
#include <vector>

#include "common/rng.h"
#include "loadgen/latency_recorder.h"
#include "loadgen/load_pattern.h"
#include "obs/names.h"
#include "obs/run_context.h"
#include "workloads/lc/lc_workload.h"

namespace mtat {

class QueueSim {
 public:
  QueueSim(LCWorkload& wl, Duration latency_window, std::uint64_t seed)
      : wl_(&wl),
        recorder_(latency_window, wl.config().slo),
        rng_(seed),
        free_at_(static_cast<std::size_t>(wl.config().threads), 0) {
    std::make_heap(free_at_.begin(), free_at_.end(), std::greater<>());
  }

  /// Wire the queue to a run's observability: register queue metrics
  /// (arrivals, completions, backlog watermark) with `ctx`'s registry and
  /// record overload-onset events into its trace. nullptr detaches. The
  /// context must outlive the queue.
  void set_run_context(obs::RunContext* ctx) {
    if (ctx == nullptr) {
      arrivals_c_ = completed_c_ = nullptr;
      backlog_peak_g_ = nullptr;
      trace_ = nullptr;
      return;
    }
    obs::MetricsRegistry& reg = ctx->metrics();
    arrivals_c_ = &reg.counter(obs::names::kQueueArrivals);
    completed_c_ = &reg.counter(obs::names::kQueueCompleted);
    backlog_peak_g_ = &reg.gauge(obs::names::kQueueBacklogPeak);
    trace_ = &ctx->trace();
  }

  /// Install (or replace) the offered-load pattern, (re)starting it at
  /// simulated time `start`. Must be called before run_until.
  void set_pattern(const LoadPattern* pattern, SimTime start) {
    pattern_ = pattern;
    pattern_start_ = start;
    schedule_next_arrival(std::max(start, last_arrival_));
  }

  /// Advance the arrival process through simulated time `until`, serving
  /// every request that arrives before it. The offered rate is re-read from
  /// the pattern at each arrival, so piecewise-constant patterns are exact.
  void run_until(SimTime until) {
    if (pattern_ == nullptr) throw std::logic_error("QueueSim: no pattern installed");
    while (next_arrival_ < until) {
      if (idle_probe_) {  // rate was zero at scheduling time; nothing arrived
        schedule_next_arrival(next_arrival_);
        continue;
      }
      const SimTime arrival = next_arrival_;
      // Earliest-free server; FCFS start time.
      std::pop_heap(free_at_.begin(), free_at_.end(), std::greater<>());
      const SimTime start = std::max(arrival, free_at_.back());
      const Duration service = wl_->serve();
      const SimTime done = start + service;
      free_at_.back() = done;
      std::push_heap(free_at_.begin(), free_at_.end(), std::greater<>());
      recorder_.record(arrival, done - arrival);
      pending_done_.push(done);
      last_arrival_ = arrival;
      if (arrivals_c_ != nullptr) {
        arrivals_c_->inc();
        const auto backlog = static_cast<double>(pending_done_.size());
        backlog_peak_g_->set_max(backlog);
        // Overload edge: an open-loop backlog deeper than many requests per
        // server means sojourn times are diverging; record the onset once
        // per episode so traces show *when* the knee was crossed.
        const double threshold = 64.0 * static_cast<double>(free_at_.size());
        if (!in_overload_ && backlog > threshold) {
          in_overload_ = true;
          if (trace_ != nullptr)
            trace_->instant(obs::names::kEvQueueOverload, obs::names::kCatQueue, "backlog",
                            backlog);
        } else if (in_overload_ && backlog < threshold / 2.0) {
          in_overload_ = false;
        }
      }
      schedule_next_arrival(arrival);
    }
    // Completions are counted at their completion time, not at dispatch —
    // under overload the achieved throughput therefore caps at the service
    // capacity while the backlog grows, as in a real open-loop experiment.
    while (!pending_done_.empty() && pending_done_.top() <= until) {
      pending_done_.pop();
      ++completed_;
      if (completed_c_ != nullptr) completed_c_->inc();
    }
  }

  LatencyRecorder& recorder() { return recorder_; }
  const LatencyRecorder& recorder() const { return recorder_; }
  LCWorkload& workload() { return *wl_; }
  std::uint64_t completed() const { return completed_; }

  /// Requests completed since the last call (per-interval LC throughput).
  std::uint64_t take_interval_completed() {
    const std::uint64_t out = completed_ - interval_mark_;
    interval_mark_ = completed_;
    return out;
  }

 private:
  void schedule_next_arrival(SimTime now) {
    const double rate = pattern_->rate_at(now - std::min(now, pattern_start_));
    if (rate <= 0.0) {
      // Idle level: probe forward in 100 ms hops until the pattern resumes.
      next_arrival_ = now + milliseconds(100);
      idle_probe_ = true;
      return;
    }
    next_arrival_ =
        now + static_cast<Duration>(rng_.next_exponential(rate) * 1e9);
    idle_probe_ = false;
  }

  LCWorkload* wl_;
  const LoadPattern* pattern_ = nullptr;
  LatencyRecorder recorder_;
  Rng rng_;
  std::vector<SimTime> free_at_;  // min-heap of server next-free times
  std::priority_queue<SimTime, std::vector<SimTime>, std::greater<>> pending_done_;
  SimTime pattern_start_ = 0;
  SimTime last_arrival_ = 0;
  SimTime next_arrival_ = 0;
  bool idle_probe_ = false;
  std::uint64_t completed_ = 0;
  std::uint64_t interval_mark_ = 0;
  bool in_overload_ = false;
  obs::TraceRecorder* trace_ = nullptr;
  obs::Counter* arrivals_c_ = nullptr;
  obs::Counter* completed_c_ = nullptr;
  obs::Gauge* backlog_peak_g_ = nullptr;
};

}  // namespace mtat
