// Windowed latency recording for the LC workload.
//
// Maintains (a) fixed-width windows of request sojourn times, the source of
// every "P99 over time" series (Figures 2 and 5), (b) a resettable interval
// histogram PP-M reads for the RL reward's p99 (Eq. 2), and (c) cumulative
// SLO-violation accounting (Table 4).
#pragma once

#include <cstdint>
#include <vector>

#include "common/latency_histogram.h"
#include "common/units.h"

namespace mtat {

class LatencyRecorder {
 public:
  LatencyRecorder(Duration window, Duration slo) : window_(window), slo_(slo) {
    if (window == 0) throw std::invalid_argument("LatencyRecorder: zero window");
  }

  /// Record one request completed with the given sojourn time, attributed to
  /// the window of its arrival time `at`.
  void record(SimTime at, Duration sojourn) {
    const auto w = static_cast<std::size_t>(at / window_);
    if (windows_.size() <= w) windows_.resize(w + 1);
    windows_[w].record(sojourn);
    interval_.record(sojourn);
    ++total_;
    if (sojourn > slo_) ++violations_;
  }

  /// Histogram since the previous collect_interval() call (resets it).
  LatencyHistogram collect_interval() {
    LatencyHistogram out = interval_;
    interval_.reset();
    return out;
  }

  /// P99 of each completed-so-far window; empty windows report 0.
  std::vector<Duration> p99_series() const {
    std::vector<Duration> out;
    out.reserve(windows_.size());
    for (const auto& h : windows_) out.push_back(h.percentile(99.0));
    return out;
  }

  const std::vector<LatencyHistogram>& windows() const { return windows_; }
  Duration window_length() const { return window_; }
  Duration slo() const { return slo_; }

  std::uint64_t total_requests() const { return total_; }
  std::uint64_t slo_violations() const { return violations_; }
  /// Fraction of all requests that missed the SLO (Table 4's metric).
  double violation_rate() const {
    return total_ == 0 ? 0.0
                       : static_cast<double>(violations_) / static_cast<double>(total_);
  }

 private:
  Duration window_;
  Duration slo_;
  std::vector<LatencyHistogram> windows_;
  LatencyHistogram interval_;
  std::uint64_t total_ = 0;
  std::uint64_t violations_ = 0;
};

}  // namespace mtat
