#include "core/multi_lc_mtat.h"

#include <algorithm>
#include <stdexcept>

namespace mtat {

MultiLcMtatPolicy::MultiLcMtatPolicy(const PolicyContext& ctx, Duration interval,
                                     std::vector<LcSpec> lcs,
                                     std::vector<BEPerfModel> be_models, Options opt)
    : ctx_(ctx),
      lcs_(std::move(lcs)),
      be_models_(std::move(be_models)),
      opt_(opt),
      rng_(opt.ppm.seed ^ 0x9E3779B9u) {
  if (lcs_.empty()) throw std::invalid_argument("MultiLcMtatPolicy: no LC tenants");
  for (const LcSpec& lc : lcs_)
    if (lc.tenant_index >= ctx.tenants.size())
      throw std::invalid_argument("MultiLcMtatPolicy: bad tenant index");

  // PP-E keeps Algorithm 3's LC-first priority for the *first* LC tenant;
  // the others are enforced via quotas like any partitioned tenant.
  PolicyContext ppe_ctx = ctx;
  for (std::size_t i = 0; i < ppe_ctx.tenants.size(); ++i)
    ppe_ctx.tenants[i].is_lc = i == lcs_.front().tenant_index;
  opt_.ppe.isolate_be = true;
  ppe_ = std::make_unique<PartitionEnforcer>(ppe_ctx, opt_.ppe);

  // One PP-M per LC tenant: own agent, own SLO, no BE management (the BE
  // split happens once below over whatever all the reservations leave).
  const std::uint64_t cap = ctx.mem->capacity(kFastestTier);
  const std::uint64_t max_alpha =
      std::min(ctx.engine->max_pages_per_direction(interval), cap);
  for (std::size_t i = 0; i < lcs_.size(); ++i) {
    PartitionPolicyMaker::Options po = opt_.ppm;
    po.manage_be = false;
    po.seed = opt_.ppm.seed + i * 1000003;
    po.sac.seed = opt_.ppm.sac.seed + i * 7919;
    ppm_.push_back(
        std::make_unique<PartitionPolicyMaker>(cap, max_alpha, lcs_[i].slo, std::vector<BEPerfModel>{}, po));
  }
  pending_p99_.assign(lcs_.size(), 0);
}

void MultiLcMtatPolicy::on_tick(SimTime, Duration) { ppe_->on_tick(); }

void MultiLcMtatPolicy::report_lc_p99(std::size_t lc_position, Duration p99) {
  pending_p99_.at(lc_position) = p99;
}

std::uint64_t MultiLcMtatPolicy::lc_quota(std::size_t lc_position) const {
  return ppe_->quota(lcs_.at(lc_position).tenant_index);
}

void MultiLcMtatPolicy::on_interval(SimTime, Duration, Duration lc_p99) {
  pending_p99_[0] = lc_p99;

  // 1. Each LC agent sizes its own reservation against the full capacity.
  const std::uint64_t cap = ctx_.mem->capacity(kFastestTier);
  std::vector<std::uint64_t> want(lcs_.size());
  for (std::size_t i = 0; i < lcs_.size(); ++i) {
    const TenantInfo& t = ctx_.tenants[lcs_[i].tenant_index];
    const IntervalCounters counters = ctx_.sampler->collect(t.id);
    const double usage = ctx_.mem->fmem_usage_ratio(t.id);
    want[i] = ppm_[i]
                  ->decide(ppe_->quota(lcs_[i].tenant_index), usage, counters,
                           pending_p99_[i])
                  .lc_pages;
  }

  // 2. Proportional scale-down when the combined LC demand exceeds capacity —
  //    every SLO-holder gives up the same fraction rather than the last one
  //    absorbing the whole shortfall.
  std::uint64_t total_lc = 0;
  for (std::uint64_t w : want) total_lc += w;
  if (total_lc > cap) {
    const double scale = static_cast<double>(cap) / static_cast<double>(total_lc);
    total_lc = 0;
    for (auto& w : want) {
      w = static_cast<std::uint64_t>(static_cast<double>(w) * scale);
      total_lc += w;
    }
  }

  // 3. Fairness split of the residual across BE tenants (Algorithm 2).
  std::vector<std::uint64_t> be_alloc;
  if (!be_models_.empty()) {
    const SAResult sa =
        anneal_be_partition(be_models_, cap - total_lc, opt_.ppm.sa, rng_);
    be_alloc = sa.allocation;
  }

  // 4. Assemble the quota plan in tenant order.
  std::vector<std::uint64_t> quotas(ctx_.tenants.size(), 0);
  std::vector<bool> is_lc_slot(ctx_.tenants.size(), false);
  for (std::size_t i = 0; i < lcs_.size(); ++i) {
    quotas[lcs_[i].tenant_index] = want[i];
    is_lc_slot[lcs_[i].tenant_index] = true;
  }
  std::size_t be_slot = 0;
  for (std::size_t i = 0; i < quotas.size(); ++i) {
    if (is_lc_slot[i]) continue;
    quotas[i] = be_slot < be_alloc.size() ? be_alloc[be_slot] : 0;
    ++be_slot;
  }
  ppe_->set_plan(quotas);
  ppe_->age_histograms();

  for (auto& p : pending_p99_) p = 0;
}

}  // namespace mtat
