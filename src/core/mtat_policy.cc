#include "core/mtat_policy.h"

#include "obs/names.h"

namespace mtat {

MtatPolicy::MtatPolicy(const PolicyContext& ctx, Duration interval, Duration lc_slo,
                       std::vector<BEPerfModel> be_models, Options opt, SacAgent* shared_agent)
    : ctx_(ctx), full_(opt.full) {
  opt.ppe.isolate_be = full_;
  opt.ppm.manage_be = full_;
  for (std::size_t i = 0; i < ctx.tenants.size(); ++i)
    if (ctx.tenants[i].is_lc) lc_idx_ = i;
  ppe_ = std::make_unique<PartitionEnforcer>(ctx, opt.ppe);
  // Eq. 1 bounds |alpha| by the bandwidth M/2t; moving more than the whole
  // FMem in one interval is additionally meaningless, so cap there too.
  const std::uint64_t max_alpha = std::min(ctx.engine->max_pages_per_direction(interval),
                                           ctx.mem->capacity(Tier::kFMem));
  ppm_ = std::make_unique<PartitionPolicyMaker>(ctx.mem->capacity(Tier::kFMem), max_alpha,
                                                lc_slo, std::move(be_models), opt.ppm,
                                                shared_agent);
}

std::uint64_t MtatPolicy::lc_quota() const { return ppe_->quota(lc_idx_); }

void MtatPolicy::on_tick(SimTime, Duration) { ppe_->on_tick(); }

void MtatPolicy::set_run_context(obs::RunContext* ctx) {
  if (ctx == nullptr) {
    decide_wall_h_ = nullptr;
    lc_quota_g_ = nullptr;
    trace_ = nullptr;
  } else {
    decide_wall_h_ = &ctx->metrics().histogram(obs::names::kPpmDecideWallUs);
    lc_quota_g_ = &ctx->metrics().gauge(obs::names::kMtatLcQuotaPages);
    trace_ = &ctx->trace();
  }
  ppm_->set_run_context(ctx);
  ppe_->set_run_context(ctx);
}

void MtatPolicy::on_interval(SimTime, Duration, Duration lc_p99) {
  const TenantInfo& lc = ctx_.tenants[lc_idx_];
  const IntervalCounters counters = ctx_.sampler->collect(lc.id);
  const double usage = ctx_.mem->fmem_usage_ratio(lc.id);
  PartitionPolicyMaker::Decision decision;
  {
    // PP-M's wall cost (state build + SAC training + SA search) is the §5.5
    // overhead number; the span's sim placement vs wall duration convention
    // is described in obs/trace.h.
    obs::WallSpan span(trace_, obs::names::kEvPpmDecide, obs::names::kCatPolicy, nullptr,
                       decide_wall_h_);
    decision = ppm_->decide(ppe_->quota(lc_idx_), usage, counters, lc_p99);
  }
  if (lc_quota_g_ != nullptr) lc_quota_g_->set(static_cast<double>(decision.lc_pages));

  // Assemble the quota plan in tenant order: LC slot from the RL decision,
  // BE slots from the SA split (Full) or left to competition (LC-Only).
  std::vector<std::uint64_t> quotas(ctx_.tenants.size(), 0);
  quotas[lc_idx_] = decision.lc_pages;
  if (full_) {
    std::size_t be_slot = 0;
    for (std::size_t i = 0; i < ctx_.tenants.size(); ++i) {
      if (i == lc_idx_) continue;
      quotas[i] = be_slot < decision.be_pages.size() ? decision.be_pages[be_slot] : 0;
      ++be_slot;
    }
  }
  ppe_->set_plan(quotas);
  ppe_->age_histograms();
}

}  // namespace mtat
