#include "core/mtat_policy.h"

#include <algorithm>

#include "obs/names.h"

namespace mtat {

MtatPolicy::MtatPolicy(const PolicyContext& ctx, Duration interval, Duration lc_slo,
                       std::vector<BEPerfModel> be_models, Options opt, SacAgent* shared_agent)
    : ctx_(ctx), full_(opt.full), wd_(opt.watchdog), lc_slo_(lc_slo) {
  opt.ppe.isolate_be = full_;
  opt.ppm.manage_be = full_;
  for (std::size_t i = 0; i < ctx.tenants.size(); ++i)
    if (ctx.tenants[i].is_lc) lc_idx_ = i;
  ppe_ = std::make_unique<PartitionEnforcer>(ctx, opt.ppe);
  // Eq. 1 bounds |alpha| by the bandwidth M/2t; moving more than the whole
  // FMem in one interval is additionally meaningless, so cap there too.
  const std::uint64_t max_alpha = std::min(ctx.engine->max_pages_per_direction(interval),
                                           ctx.mem->capacity(kFastestTier));
  max_alpha_ = max_alpha;
  fmem_capacity_ = ctx.mem->capacity(kFastestTier);
  min_lc_pages_ = opt.ppm.min_lc_pages;
  ppm_ = std::make_unique<PartitionPolicyMaker>(ctx.mem->capacity(kFastestTier), max_alpha,
                                                lc_slo, std::move(be_models), opt.ppm,
                                                shared_agent);
}

std::uint64_t MtatPolicy::lc_quota() const { return ppe_->quota(lc_idx_); }

void MtatPolicy::on_tick(SimTime, Duration) { ppe_->on_tick(); }

void MtatPolicy::set_run_context(obs::RunContext* ctx) {
  if (ctx == nullptr) {
    decide_wall_h_ = nullptr;
    lc_quota_g_ = nullptr;
    mode_g_ = nullptr;
    mode_transitions_c_ = nullptr;
    trace_ = nullptr;
    watchdog_active_ = wd_.mode == Options::Watchdog::Mode::kOn;
  } else {
    decide_wall_h_ = &ctx->metrics().histogram(obs::names::kPpmDecideWallUs);
    lc_quota_g_ = &ctx->metrics().gauge(obs::names::kMtatLcQuotaPages);
    mode_g_ = &ctx->metrics().gauge(obs::names::kMtatMode);
    mode_transitions_c_ = &ctx->metrics().counter(obs::names::kMtatModeTransitions);
    trace_ = &ctx->trace();
    // kAuto arms the watchdog exactly when the run injects faults: a clean
    // run keeps the pre-watchdog control flow (and its bit-identical
    // behaviour), a faulty one gets the degradation ladder.
    watchdog_active_ = wd_.mode == Options::Watchdog::Mode::kOn ||
                       (wd_.mode == Options::Watchdog::Mode::kAuto && ctx->faults() != nullptr);
  }
  if (watchdog_active_) {
    ppe_->enable_plan_abandonment(true);
    if (mode_g_ != nullptr) mode_g_->set(static_cast<double>(static_cast<int>(mode_)));
  }
  ppm_->set_run_context(ctx);
  ppe_->set_run_context(ctx);
}

std::uint64_t MtatPolicy::heuristic_quota(Duration lc_p99) const {
  // Waterline control on the one signal that survives a telemetry blackout:
  // the measured P99 itself. Grow at the full Eq. 1 rate when latency nears
  // the SLO, bleed the reservation off slowly when it is comfortably low,
  // hold in between.
  const std::uint64_t cur = ppe_->quota(lc_idx_);
  const auto p99 = static_cast<double>(lc_p99);
  const auto slo = static_cast<double>(lc_slo_);
  std::uint64_t target = cur;
  if (p99 > wd_.grow_above * slo) {
    target = cur + max_alpha_;
  } else if (p99 < wd_.shrink_below * slo) {
    const auto step = static_cast<std::uint64_t>(0.05 * static_cast<double>(max_alpha_));
    target = cur > step ? cur - step : 0;
  }
  return std::clamp(target, min_lc_pages_, fmem_capacity_);
}

void MtatPolicy::transition_to(ControlMode next) {
  if (next == mode_) return;
  mode_ = next;
  unhealthy_streak_ = 0;
  healthy_streak_ = 0;
  if (mode_transitions_c_ != nullptr) {
    mode_transitions_c_->inc();
    mode_g_->set(static_cast<double>(static_cast<int>(mode_)));
  }
  if (trace_ != nullptr)
    trace_->instant(obs::names::kEvMtatModeChange, obs::names::kCatPolicy, "mode",
                    static_cast<double>(static_cast<int>(mode_)));
}

void MtatPolicy::on_interval(SimTime, Duration, Duration lc_p99) {
  const TenantInfo& lc = ctx_.tenants[lc_idx_];
  const IntervalCounters counters = ctx_.sampler->collect(lc.id);
  const double usage = ctx_.mem->fmem_usage_ratio(lc.id);

  // Health inputs for the watchdog. An interval with traffic (p99 > 0) but
  // zero samples means telemetry went dark — the RL state would be built
  // from stale nothing; an idle interval is fine.
  const bool telemetry_ok = counters.total() > 0 || lc_p99 == 0;
  const bool violated = lc_p99 > lc_slo_;

  std::uint64_t lc_target = 0;
  std::vector<std::uint64_t> be_pages;
  if (mode_ == ControlMode::kRl) {
    PartitionPolicyMaker::Decision decision;
    {
      // PP-M's wall cost (state build + SAC training + SA search) is the §5.5
      // overhead number; the span's sim placement vs wall duration convention
      // is described in obs/trace.h.
      obs::WallSpan span(trace_, obs::names::kEvPpmDecide, obs::names::kCatPolicy, nullptr,
                        decide_wall_h_);
      decision = ppm_->decide(ppe_->quota(lc_idx_), usage, counters, lc_p99);
    }
    lc_target = decision.lc_pages;
    be_pages = std::move(decision.be_pages);
  } else {
    // Degraded rungs bypass PP-M entirely: no RL decide, no training on
    // whatever garbage tripped the watchdog.
    lc_target = mode_ == ControlMode::kStatic ? fmem_capacity_ : heuristic_quota(lc_p99);
    if (full_ && ctx_.tenants.size() > 1) {
      const std::uint64_t residual = fmem_capacity_ - lc_target;
      const std::size_t nbe = ctx_.tenants.size() - 1;
      be_pages.assign(nbe, residual / nbe);
      for (std::size_t i = 0; i < residual % nbe; ++i) ++be_pages[i];
    }
  }
  if (lc_quota_g_ != nullptr) lc_quota_g_->set(static_cast<double>(lc_target));

  // Assemble the quota plan in tenant order: LC slot from the controller,
  // BE slots from the SA split / even fallback (Full) or left to competition
  // (LC-Only).
  std::vector<std::uint64_t> quotas(ctx_.tenants.size(), 0);
  quotas[lc_idx_] = lc_target;
  if (full_) {
    std::size_t be_slot = 0;
    for (std::size_t i = 0; i < ctx_.tenants.size(); ++i) {
      if (i == lc_idx_) continue;
      quotas[i] = be_slot < be_pages.size() ? be_pages[be_slot] : 0;
      ++be_slot;
    }
  }
  ppe_->set_plan(quotas);
  ppe_->age_histograms();

  if (!watchdog_active_) return;

  // Degradation ladder: consecutive bad intervals step down one rung,
  // consecutive good ones step back up — never both in one interval, and the
  // recover_after > trip_after asymmetry keeps the controller from
  // oscillating across a rung boundary.
  bool down = false;
  bool up = false;
  switch (mode_) {
    case ControlMode::kRl:
      down = !telemetry_ok || !ppm_->healthy();
      break;
    case ControlMode::kHeuristic:
      down = violated;
      up = telemetry_ok && !violated;
      break;
    case ControlMode::kStatic:
      up = !violated;
      break;
  }
  unhealthy_streak_ = down ? unhealthy_streak_ + 1 : 0;
  healthy_streak_ = up ? healthy_streak_ + 1 : 0;
  if (unhealthy_streak_ >= wd_.trip_after && mode_ != ControlMode::kStatic)
    transition_to(mode_ == ControlMode::kRl ? ControlMode::kHeuristic : ControlMode::kStatic);
  else if (healthy_streak_ >= wd_.recover_after && mode_ != ControlMode::kRl)
    transition_to(mode_ == ControlMode::kStatic ? ControlMode::kHeuristic : ControlMode::kRl);
}

}  // namespace mtat
