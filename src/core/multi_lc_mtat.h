// Multi-LC MTAT — the paper's deferred extension (§7 discusses integrating
// MTAT with multi-service LC management à la PARTIES/CLITE; the paper itself
// evaluates a single LC tenant).
//
// Generalization: every latency-critical tenant gets its own PP-M instance
// (its own SAC agent, SLO, guard state), each sizing a reservation against
// the shared FMem. Reservations are granted in tenant order with
// proportional scale-down if the sum would exceed capacity; the residual is
// split across BE tenants with the same Algorithm-2 fairness search; one
// shared PP-E enforces the combined plan (the first LC tenant keeps
// Algorithm 3's LC-first slice priority; further LC tenants are enforced
// ahead of BE by quota but share the slice budget).
//
// Drivers feed per-LC interval P99s through report_lc_p99() before each
// on_interval() — the single-P99 TieringPolicy hook only carries the primary
// tenant's latency.
#pragma once

#include <memory>
#include <vector>

#include "core/ppe.h"
#include "core/ppm.h"
#include "policy/policy.h"

namespace mtat {

class MultiLcMtatPolicy : public TieringPolicy {
 public:
  struct LcSpec {
    std::size_t tenant_index = 0;  ///< position in ctx.tenants
    Duration slo = milliseconds(20);
  };

  struct Options {
    PartitionEnforcer::Options ppe;
    PartitionPolicyMaker::Options ppm;  ///< shared hyperparameters per agent
  };

  /// `lcs` lists every latency-critical tenant (the corresponding
  /// ctx.tenants entries should have is_lc set for the first and may for the
  /// rest); `be_models` covers the remaining tenants in ctx order.
  MultiLcMtatPolicy(const PolicyContext& ctx, Duration interval, std::vector<LcSpec> lcs,
                    std::vector<BEPerfModel> be_models, Options opt);

  std::string name() const override { return "mtat_multi_lc"; }
  void on_tick(SimTime now, Duration dt) override;

  /// Deliver tenant `lc`'s interval P99 ahead of the next on_interval().
  void report_lc_p99(std::size_t lc_position, Duration p99);

  /// `lc_p99` applies to the first LC tenant (positional shortcut so the
  /// class still works behind the single-LC TieringPolicy interface).
  void on_interval(SimTime now, Duration interval, Duration lc_p99) override;

  std::uint64_t lc_quota(std::size_t lc_position) const;
  PartitionEnforcer& ppe() { return *ppe_; }
  PartitionPolicyMaker& ppm(std::size_t lc_position) { return *ppm_[lc_position]; }
  std::size_t lc_count() const { return lcs_.size(); }

 private:
  PolicyContext ctx_;
  std::vector<LcSpec> lcs_;
  std::vector<BEPerfModel> be_models_;
  Options opt_;
  std::unique_ptr<PartitionEnforcer> ppe_;
  std::vector<std::unique_ptr<PartitionPolicyMaker>> ppm_;
  std::vector<Duration> pending_p99_;
  Rng rng_;
};

}  // namespace mtat
