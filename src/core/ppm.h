// Partition Policy Maker (paper §3.2).
//
// Per partitioning interval, PP-M:
//  1. builds the RL state from telemetry — FMem Usage Ratio, FMem Access
//     Ratio, Memory Access Count (normalized by a running maximum);
//  2. closes the previous interval's MDP transition with the Eq. 2 reward
//     (1 - fmem_ratio on SLO compliance, -1 on violation) and trains the
//     SAC agent (Algorithm 1);
//  3. draws the next action alpha, clipped to [-M/2t, +M/2t] (Eq. 1), giving
//     the new LC reservation; and
//  4. splits the remaining FMem across BE workloads with the fairness-driven
//     simulated-annealing search (Algorithm 2) over offline profiles.
//
// An optional SLO guard (on by default) overrides the sampled action with the
// maximum expansion while the SLO is being violated — the "rapid response to
// sudden demand surges" behaviour of §1; the override is recorded as the
// taken action, so the agent still learns from it. The guard is ablatable
// (bench/ablation_mtat).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/sa_partitioner.h"
#include "obs/run_context.h"
#include "rl/sac.h"
#include "telemetry/access_sampler.h"

namespace mtat {

class PartitionPolicyMaker {
 public:
  struct Options {
    SacConfig sac;              ///< RL hyperparameters (Algorithm 1)
    SAOptions sa;               ///< annealing hyperparameters (Algorithm 2)
    bool slo_guard = true;      ///< expand at max rate while SLO is violated
    /// Guard trip point as a fraction of the SLO: at p99 above it the action
    /// is forced to full expansion.
    double guard_trip = 0.9;
    /// Hysteresis: while p99 is above this fraction of the SLO, shrinking is
    /// vetoed (alpha clamped to >= 0) so the reservation doesn't oscillate at
    /// the edge of compliance.
    double guard_hold = 0.30;
    /// Shrink actions are capped to this fraction of the action range per
    /// interval. Growing can use the full Eq. 1 bound (a surge must be
    /// absorbable in one interval), but releasing FMem happens gradually so
    /// the guard_hold veto sees latency rise before the SLO is breached.
    double max_shrink_fraction = 0.05;
    /// Intervals after a guard trip during which shrinking stays vetoed.
    int guard_cooldown_intervals = 3;
    /// Violation memory: after a violation at reservation R under load L, the
    /// reservation is floored at R + one shrink step until the observed load
    /// (Memory Access Count) falls below this fraction of L. Multi-threaded
    /// LC queues have cliff-shaped latency curves that give the p99 veto no
    /// early warning; the remembered floor stops repeated probing into the
    /// cliff. 0 disables.
    double floor_release_fraction = 0.7;
    /// Eq. 2's violation reward. The paper uses -1 per 60 s interval; with
    /// our x60 time compression a violation episode spans many more decision
    /// intervals relative to the load's dwell time, so the penalty is
    /// rescaled to keep the hold-a-buffer vs. absorb-a-violation economics
    /// the paper's agent faces (DESIGN.md §1, ablatable).
    double violation_penalty = -30.0;
    bool manage_be = true;      ///< Full: SA split; LC-Only: leave BE alone
    /// Optional joint performance metric P(M) for the SA search. When set it
    /// replaces the independent per-workload NP model — required once tier
    /// bandwidth is shared, because one tenant's allocation then changes
    /// every tenant's performance (see ColocationSim's contention-aware
    /// objective).
    std::function<double(const std::vector<std::uint64_t>&)> joint_objective;
    /// Ablation (bench/ablation_mtat): replace the SA fairness search with a
    /// plain even split of the residual FMem.
    bool be_even_split = false;
    std::uint64_t min_lc_pages = 0;  ///< floor on the LC reservation
    int gradient_steps_per_interval = 4;
    std::uint64_t seed = 1234;
  };

  /// `fmem_capacity`/`max_alpha_pages` in pages; `be_models` indexed like the
  /// BE quota slots the caller will map the result onto. An external agent
  /// can be supplied so learning persists across simulation phases; otherwise
  /// PP-M owns one.
  PartitionPolicyMaker(std::uint64_t fmem_capacity, std::uint64_t max_alpha_pages,
                       Duration slo, std::vector<BEPerfModel> be_models, const Options& opt,
                       SacAgent* shared_agent = nullptr);

  struct Decision {
    std::uint64_t lc_pages = 0;
    std::vector<std::uint64_t> be_pages;  ///< empty when manage_be is false
    double sa_objective = 0.0;            ///< P(M*) of the BE split
  };

  /// One partitioning interval: consume the interval's telemetry and P99,
  /// train, and produce the next plan. `current_lc_pages` is the enforced
  /// reservation the action applies to.
  Decision decide(std::uint64_t current_lc_pages, double fmem_usage_ratio,
                  const IntervalCounters& lc_counters, Duration lc_p99);

  /// Evaluation mode: act with the policy mean (no exploration noise).
  /// Training continues either way; this only stabilizes measured phases.
  void set_deterministic(bool on) { deterministic_ = on; }
  bool deterministic() const { return deterministic_; }

  SacAgent& agent() { return *agent_; }
  std::uint64_t decisions_made() const { return decisions_; }

  /// RL health signal for the MtatPolicy watchdog: false when the most recent
  /// action was pathological (non-finite or off-manifold, sanitized before
  /// use) or the agent's last losses are non-finite. True before any decision.
  bool healthy() const;
  /// Rewards observed so far (diagnostics / learning curves).
  const std::vector<double>& reward_history() const { return rewards_; }

  /// Wire PP-M to a run's observability: register decision metrics
  /// (decision/violation/guard-trip counts, last reward) with `ctx`'s
  /// registry, record decision/guard-trip events into its trace, and forward
  /// to the agent; nullptr detaches. The context must outlive PP-M.
  void set_run_context(obs::RunContext* ctx);

 private:
  std::vector<double> build_state(double usage_ratio, const IntervalCounters& c);

  std::uint64_t fmem_capacity_;
  std::uint64_t max_alpha_pages_;
  Duration slo_;
  std::vector<BEPerfModel> be_models_;
  Options opt_;
  std::unique_ptr<SacAgent> owned_agent_;
  SacAgent* agent_;
  Rng rng_;

  double max_access_count_ = 1.0;  // running normalizer for the count state
  bool deterministic_ = false;
  double p99_smooth_ = 0.0;  // EWMA of interval p99, for the guard's veto
  int cooldown_left_ = 0;
  std::uint64_t floor_pages_ = 0;      // violation-memory reservation floor
  double floor_count_level_ = 0.0;     // absolute access count when it was set
  bool have_prev_ = false;
  std::vector<double> prev_state_;
  std::vector<double> prev_action_;
  std::uint64_t decisions_ = 0;
  std::vector<double> rewards_;
  bool last_action_ok_ = true;
  obs::TraceRecorder* trace_ = nullptr;
  obs::Counter* decisions_c_ = nullptr;
  obs::Counter* violations_c_ = nullptr;
  obs::Counter* guard_trips_c_ = nullptr;
  obs::Counter* nonfinite_actions_c_ = nullptr;
  obs::Gauge* reward_g_ = nullptr;
};

}  // namespace mtat
