#include "core/ppe.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <stdexcept>

#include "obs/names.h"

namespace mtat {

PartitionEnforcer::PartitionEnforcer(const PolicyContext& ctx, Options opt)
    : ctx_(ctx), opt_(opt) {
  if (ctx_.tenants.empty()) throw std::invalid_argument("PartitionEnforcer: no tenants");
  quota_.resize(ctx_.tenants.size());
  delta_.assign(ctx_.tenants.size(), 0);
  for (std::size_t i = 0; i < ctx_.tenants.size(); ++i) {
    const TenantInfo& t = ctx_.tenants[i];
    if (t.is_lc) lc_idx_ = i;
    quota_[i] = ctx_.mem->workload_pages(t.id, kFastestTier);
    hist_.push_back(std::make_unique<PageHotness>(*ctx_.mem, t.id));
    hist_.back()->seed_allocated_pages();
    ctx_.sampler->add_sink(hist_.back().get());
  }
}

bool PartitionEnforcer::plan_active() const {
  for (std::int64_t d : delta_)
    if (d != 0) return true;
  return false;
}

void PartitionEnforcer::set_plan(const std::vector<std::uint64_t>& quotas) {
  if (quotas.size() != quota_.size())
    throw std::invalid_argument("PartitionEnforcer: quota vector size mismatch");
  for (std::size_t i = 0; i < quotas.size(); ++i) {
    if (!opt_.isolate_be && i != lc_idx_) continue;  // LC-Only: BE unmanaged
    quota_[i] = quotas[i];
    delta_[i] = static_cast<std::int64_t>(quotas[i]) -
                static_cast<std::int64_t>(
                    ctx_.mem->workload_pages(ctx_.tenants[i].id, kFastestTier));
  }
  double backlog = 0.0;
  for (const std::int64_t d : delta_) backlog += std::abs(static_cast<double>(d));
  if (plans_c_ != nullptr) {
    plans_c_->inc();
    plan_pages_g_->set(backlog);
  }
  plan_start_ts_ = trace_ != nullptr ? trace_->now() : 0;
  plan_start_pages_ = backlog;
  plan_was_active_ = backlog > 0.0;
  stalled_ticks_ = 0;
  if (trace_ != nullptr)
    trace_->instant(obs::names::kEvPpePlan, obs::names::kCatPolicy, "lc_quota",
                    static_cast<double>(quota_[lc_idx_]), "backlog_pages", backlog);
}

void PartitionEnforcer::set_run_context(obs::RunContext* ctx) {
  if (ctx == nullptr) {
    plans_c_ = nullptr;
    plans_abandoned_c_ = nullptr;
    plan_pages_g_ = nullptr;
    trace_ = nullptr;
    return;
  }
  plans_c_ = &ctx->metrics().counter(obs::names::kPpePlans);
  plans_abandoned_c_ = &ctx->metrics().counter(obs::names::kPpePlansAbandoned);
  plan_pages_g_ = &ctx->metrics().gauge(obs::names::kPpePlanPages);
  trace_ = &ctx->trace();
}

PageId PartitionEnforcer::promote_candidate(std::size_t idx) const {
  // Hottest sampled SMem page; if the workload has no sampled-warm SMem pages
  // (e.g. an idle LC workload), any resident SMem page will do — growth of
  // the partition must not stall on telemetry sparsity.
  const PageId hot = hist_[idx]->hottest_slow_page();
  if (hot != kInvalidPage) return hot;
  return hist_[idx]->coldest_slow_page();
}

PageId PartitionEnforcer::demote_candidate(std::size_t idx) const {
  return hist_[idx]->coldest_page(kFastestTier);
}

std::size_t PartitionEnforcer::hottest_be_tenant() const {
  std::size_t best = quota_.size();
  int best_bin = 0;  // require a genuinely warm page (bin >= 1)
  for (std::size_t i = 0; i < quota_.size(); ++i) {
    if (i == lc_idx_) continue;
    const PageId hot = hist_[i]->hottest_slow_page();
    if (hot == kInvalidPage) continue;
    const int bin = hist_[i]->bin_of_page(hot);
    if (bin > best_bin) {
      best_bin = bin;
      best = i;
    }
  }
  return best;
}

std::size_t PartitionEnforcer::coldest_be_tenant() const {
  std::size_t best = quota_.size();
  int best_bin = PageHotness::kBins;
  for (std::size_t i = 0; i < quota_.size(); ++i) {
    if (i == lc_idx_) continue;
    const PageId cold = hist_[i]->coldest_page(kFastestTier);
    if (cold == kInvalidPage) continue;
    const int bin = hist_[i]->bin_of_page(cold);
    if (bin < best_bin) {
      best_bin = bin;
      best = i;
    }
  }
  return best;
}

bool PartitionEnforcer::exchange_pair(std::size_t pi, std::size_t di) {
  const PageId up = promote_candidate(pi);
  const PageId down = demote_candidate(di);
  if (up == kInvalidPage || down == kInvalidPage) return false;
  return ctx_.engine->exchange(up, down);
}

void PartitionEnforcer::execute_plan_slice() {
  // Pages this slice may move: Algorithm 3's p = min(p_max, remainingPages),
  // further capped by the engine's bandwidth budget (2 budget units/pair).
  std::uint64_t slice = std::min<std::uint64_t>(opt_.p_max, ctx_.engine->budget_pages() / 2);

  // Pick the opposite-signed tenant with the largest remaining demand —
  // repeated picks spread the LC-induced load across partners roughly
  // proportionally to their demands, as Algorithm 3 lines 6-12 prescribe.
  const auto pick_partner = [&](bool need_demoter) -> std::size_t {
    std::size_t best = quota_.size();
    std::int64_t best_mag = 0;
    for (std::size_t i = 0; i < quota_.size(); ++i) {
      if (i == lc_idx_) continue;
      const std::int64_t d = need_demoter ? -delta_[i] : delta_[i];
      if (d > best_mag) {
        best_mag = d;
        best = i;
      }
    }
    return best;
  };

  // Move one page in the required direction for tenant `idx`, pairing with a
  // counterpart when both tiers are full. Returns false when no progress is
  // possible this tick.
  const auto step = [&](std::size_t idx) -> bool {
    if (delta_[idx] > 0) {
      // Needs promotion. Free FMem first, else exchange against a demoter.
      const PageId up = promote_candidate(idx);
      if (up == kInvalidPage) {
        delta_[idx] = 0;  // nothing left in SMem to promote: plan impossible
        return false;
      }
      if (ctx_.mem->free_pages(kFastestTier) > 0) {
        if (!ctx_.engine->promote_to_fastest(up)) return false;
        --delta_[idx];
        return true;
      }
      std::size_t partner = pick_partner(/*need_demoter=*/true);
      if (partner != quota_.size()) {
        if (!exchange_pair(idx, partner)) return false;
        --delta_[idx];
        ++delta_[partner];
        return true;
      }
      // No tenant owes pages (LC-Only mode, or rounding drift): take from
      // the BE workload with the globally coldest FMem page.
      partner = coldest_be_tenant();
      if (partner == quota_.size() || !exchange_pair(idx, partner)) return false;
      --delta_[idx];
      return true;
    }
    if (delta_[idx] < 0) {
      // Needs demotion. Pair with a promoter when possible so the freed
      // capacity is consumed in the same slice; otherwise demote alone.
      std::size_t partner = pick_partner(/*need_demoter=*/false);
      if (partner != quota_.size()) {
        if (!exchange_pair(partner, idx)) return false;
        ++delta_[idx];
        --delta_[partner];
        return true;
      }
      if (!opt_.isolate_be) {
        partner = hottest_be_tenant();
        if (partner != quota_.size() && exchange_pair(partner, idx)) {
          ++delta_[idx];
          return true;
        }
      }
      const PageId down = demote_candidate(idx);
      if (down == kInvalidPage) {
        delta_[idx] = 0;
        return false;
      }
      if (!ctx_.engine->demote(down)) return false;
      ++delta_[idx];
      return true;
    }
    return false;
  };

  // LC movement takes precedence within every slice (§3.3.1). The ablation
  // defers LC to the tail of the slice instead.
  if (opt_.lc_first)
    while (slice > 0 && delta_[lc_idx_] != 0 && step(lc_idx_)) --slice;
  // Then settle BE-to-BE discrepancies, largest demand first.
  while (slice > 0) {
    const std::size_t promoter = pick_partner(/*need_demoter=*/false);
    if (promoter == quota_.size()) break;
    if (!step(promoter)) break;
    --slice;
  }
  // Any demote-only residue (promoters finished early, e.g. out of SMem
  // pages) still has to drain or the plan never completes.
  while (slice > 0) {
    const std::size_t demoter = pick_partner(/*need_demoter=*/true);
    if (demoter == quota_.size()) break;
    if (!step(demoter)) break;
    --slice;
  }
  if (!opt_.lc_first)
    while (slice > 0 && delta_[lc_idx_] != 0 && step(lc_idx_)) --slice;
}

void PartitionEnforcer::refine() {
  // §7 bandwidth-aware extension: don't intensify a saturated fast tier.
  if (opt_.bandwidth_backoff_factor > 0.0 &&
      ctx_.mem->contention_factor(kFastestTier) >= opt_.bandwidth_backoff_factor)
    return;
  // Figure 4b: within-partition exchanges, hottest-SMem vs coldest-FMem.
  const auto refine_within = [&](std::size_t idx) {
    for (std::size_t k = 0; k < opt_.refine_cap; ++k) {
      const PageId hot = hist_[idx]->hottest_slow_page();
      if (hot == kInvalidPage) return;
      const PageId cold = hist_[idx]->coldest_page(kFastestTier);
      if (cold == kInvalidPage) return;
      if (hist_[idx]->bin_of_page(hot) - hist_[idx]->bin_of_page(cold) <
          opt_.refine_min_gap)
        return;
      if (!ctx_.engine->exchange(hot, cold)) return;
    }
  };

  refine_within(lc_idx_);
  if (opt_.isolate_be) {
    for (std::size_t i = 0; i < quota_.size(); ++i)
      if (i != lc_idx_) refine_within(i);
    return;
  }
  // LC-Only: BE pages compete freely across workloads for the residual FMem.
  for (std::size_t k = 0; k < opt_.refine_cap; ++k) {
    const std::size_t pi = hottest_be_tenant();
    if (pi == quota_.size()) return;
    const std::size_t di = coldest_be_tenant();
    if (di == quota_.size()) return;
    // Tenant selection above guarantees both pages exist.
    const PageId hot = hist_[pi]->hottest_slow_page();
    const PageId cold = hist_[di]->coldest_page(kFastestTier);
    if (hist_[pi]->bin_of_page(hot) - hist_[di]->bin_of_page(cold) <
        opt_.refine_min_gap)
      return;
    if (!ctx_.engine->exchange(hot, cold)) return;
  }
}

void PartitionEnforcer::on_tick() {
  if (plan_active()) {
    std::int64_t backlog_before = 0;
    for (const std::int64_t d : delta_) backlog_before += std::abs(d);
    execute_plan_slice();
    // Plan drained this tick: emit the whole execution as one sim-time span
    // (set_plan -> drain), the "plan execution" lane of the trace.
    if (plan_was_active_ && !plan_active()) {
      plan_was_active_ = false;
      if (trace_ != nullptr)
        trace_->complete(obs::names::kEvPpePlanExec, obs::names::kCatPolicy, plan_start_ts_,
                         trace_->now() - plan_start_ts_, "pages", plan_start_pages_);
    }
    if (opt_.abandon_stalled_plans && plan_active()) {
      std::int64_t backlog_after = 0;
      for (const std::int64_t d : delta_) backlog_after += std::abs(d);
      stalled_ticks_ = backlog_after == backlog_before ? stalled_ticks_ + 1 : 0;
      if (stalled_ticks_ >= opt_.abandon_after_ticks) {
        // The substrate isn't letting this plan through (migration outage,
        // collapsed bandwidth). Drop it rather than hammer the same moves:
        // refinement resumes next tick, and the next interval replans from
        // the actual placement.
        std::fill(delta_.begin(), delta_.end(), 0);
        stalled_ticks_ = 0;
        plan_was_active_ = false;
        if (plans_abandoned_c_ != nullptr) plans_abandoned_c_->inc();
        if (trace_ != nullptr)
          trace_->instant(obs::names::kEvPpePlanAbandon, obs::names::kCatPolicy, "pages",
                          static_cast<double>(backlog_before));
      }
    }
  } else {
    refine();
  }
}

void PartitionEnforcer::age_histograms() {
  if (!opt_.enable_aging) return;
  if (++intervals_since_aging_ < opt_.age_every_intervals) return;
  intervals_since_aging_ = 0;
  for (auto& h : hist_) h->age();
}

}  // namespace mtat
