// Partition Policy Enforcer (paper §3.3).
//
// PP-E turns PP-M's per-workload FMem quotas into actual page placement, in
// two modes of continuous work driven by the simulation tick:
//
//  1. Plan execution (§3.3.1, Algorithm 3): when a new partitioning plan
//     arrives, the total discrepancy is relocated across time slices of at
//     most p_max pages, LC movement first, with the LC-induced promotion or
//     demotion demand spread across the BE workloads that owe or are owed
//     pages (greedy largest-remaining-demand pairing approximates the
//     paper's proportional split; exchanges keep both tiers full).
//
//  2. Refinement (§3.3.2, Figure 4b): between plans, each workload's hottest
//     SMem pages are exchanged against its own coldest FMem pages, histogram
//     bins deciding both ends — strictly within the workload's partition, so
//     isolation is preserved. In LC-Only mode the BE side instead competes
//     freely: the globally hottest BE SMem page displaces the globally
//     coldest BE FMem page, emulating frequency-based management of the
//     un-reserved region.
//
// Per-workload exponential histograms come from telemetry; PP-E ages them
// (halves counts) once per partitioning interval, as §3.3.2 specifies.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "obs/run_context.h"
#include "policy/policy.h"
#include "telemetry/page_hotness.h"

namespace mtat {

class PartitionEnforcer {
 public:
  struct Options {
    /// Algorithm 3's p_max: pages relocated per time slice (= per tick).
    std::uint64_t p_max = 4096;
    /// Refinement exchanges per tick, per workload.
    std::size_t refine_cap = 512;
    /// Minimum bin advantage before a refinement exchange fires. 2 means a
    /// single stray sample (bin 1) cannot displace a resident page — vital
    /// for heavy-tailed access where one-hit-wonder pages are abundant.
    int refine_min_gap = 2;
    /// Full MTAT isolates each BE workload's partition; LC-Only lets BE
    /// workloads compete for whatever the LC reservation leaves.
    bool isolate_be = true;
    /// Ablation knobs (bench/ablation_mtat): Algorithm 3's LC-first slice
    /// ordering, and §3.3.2's periodic histogram aging.
    bool lc_first = true;
    bool enable_aging = true;
    /// Halve counts every this many partitioning intervals (see
    /// age_histograms' note on time compression).
    int age_every_intervals = 4;
    /// §7 extension: when FMem's contention factor exceeds this threshold,
    /// refinement stops promoting into the saturated tier (piling more hot
    /// pages onto saturated bandwidth only lengthens every access). 0
    /// disables the check.
    double bandwidth_backoff_factor = 0.0;
    /// Graceful degradation (DESIGN.md §12): give up on a plan whose backlog
    /// has made no progress for this many consecutive ticks (e.g. a total
    /// migration outage) instead of retrying it forever — the deltas are
    /// zeroed, refinement resumes, and the next PP-M interval plans afresh
    /// against wherever placement actually is. Off by default; armed by
    /// MtatPolicy's watchdog (enable_plan_abandonment) when faults are live.
    bool abandon_stalled_plans = false;
    int abandon_after_ticks = 32;
  };

  PartitionEnforcer(const PolicyContext& ctx, Options opt);

  PartitionEnforcer(const PartitionEnforcer&) = delete;
  PartitionEnforcer& operator=(const PartitionEnforcer&) = delete;

  /// Install a new plan: target FMem pages per tenant (indexed like
  /// ctx.tenants). In LC-Only mode only the LC entry is honored.
  void set_plan(const std::vector<std::uint64_t>& quotas);

  /// One time slice of plan execution and/or refinement.
  void on_tick();

  /// Account one partitioning interval and halve the histogram counts every
  /// `age_every_intervals` calls. §3.3.2 ages once per interval, but the
  /// paper's interval is 60 s of sample accumulation; under our x60 time
  /// compression, halving every compressed interval would erase the counts
  /// that distinguish warm pages from one-off samples (DESIGN.md §6).
  void age_histograms();

  /// Arm or disarm stalled-plan abandonment at runtime (the watchdog path).
  void enable_plan_abandonment(bool on) { opt_.abandon_stalled_plans = on; }

  bool plan_active() const;
  std::uint64_t quota(std::size_t idx) const { return quota_[idx]; }
  std::int64_t remaining_delta(std::size_t idx) const { return delta_[idx]; }
  PageHotness& histogram(std::size_t idx) { return *hist_[idx]; }
  std::size_t histogram_count() const { return hist_.size(); }

  /// Wire PP-E to a run's observability: register enforcement metrics (plans
  /// installed, relocation backlog) with `ctx`'s registry and record plan
  /// events/spans into its trace; nullptr detaches. The context must outlive
  /// PP-E.
  void set_run_context(obs::RunContext* ctx);

 private:
  // Candidate selection within one tenant's pages.
  PageId promote_candidate(std::size_t idx) const;  // SMem page worth promoting
  PageId demote_candidate(std::size_t idx) const;   // FMem victim
  // Globally best candidates across BE tenants (fallback / LC-Only mode).
  std::size_t hottest_be_tenant() const;
  std::size_t coldest_be_tenant() const;

  /// One page up for `pi` paired with one page down for `di`; spends budget.
  bool exchange_pair(std::size_t pi, std::size_t di);

  void execute_plan_slice();
  void refine();

  PolicyContext ctx_;
  Options opt_;
  std::size_t lc_idx_ = 0;
  std::vector<std::uint64_t> quota_;
  std::vector<std::int64_t> delta_;
  int intervals_since_aging_ = 0;
  std::vector<std::unique_ptr<PageHotness>> hist_;
  SimTime plan_start_ts_ = 0;
  double plan_start_pages_ = 0.0;
  bool plan_was_active_ = false;
  int stalled_ticks_ = 0;
  obs::TraceRecorder* trace_ = nullptr;
  obs::Counter* plans_c_ = nullptr;
  obs::Counter* plans_abandoned_c_ = nullptr;
  obs::Gauge* plan_pages_g_ = nullptr;
};

}  // namespace mtat
