#include "core/sa_partitioner.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace mtat {
namespace {

double objective(const std::vector<BEPerfModel>& models,
                 const std::vector<std::uint64_t>& alloc) {
  // Primary objective: max-min NP (§3.2.2). The epsilon-weighted mean breaks
  // ties so FMem is never parked on a workload whose curve has saturated —
  // without it, moves away from a saturated workload change nothing and the
  // search can return wasteful allocations.
  double min_np = 1.0;
  double sum_np = 0.0;
  for (std::size_t i = 0; i < models.size(); ++i) {
    const double np = models[i].np_at_pages(alloc[i]);
    min_np = std::min(min_np, np);
    sum_np += np;
  }
  return min_np + 1e-6 * sum_np;
}

}  // namespace

SAResult anneal_partition(const std::function<double(const std::vector<std::uint64_t>&)>& p,
                          const std::vector<std::uint64_t>& caps, std::uint64_t total_pages,
                          const SAOptions& opt, Rng& rng) {
  if (caps.empty()) throw std::invalid_argument("anneal_partition: no workloads");
  if (opt.unit_pages == 0) throw std::invalid_argument("anneal_partition: zero unit");
  const std::size_t n = caps.size();

  // Even initial split (Algorithm 2 line 1), remainder to the front, then
  // clamped to the caps with the overflow pushed to slots with headroom.
  std::vector<std::uint64_t> alloc(n, total_pages / n);
  for (std::size_t i = 0; i < total_pages % n; ++i) alloc[i]++;
  std::uint64_t overflow = 0;
  for (std::size_t i = 0; i < n; ++i)
    if (alloc[i] > caps[i]) {
      overflow += alloc[i] - caps[i];
      alloc[i] = caps[i];
    }
  for (std::size_t i = 0; i < n && overflow > 0; ++i) {
    const std::uint64_t give = std::min(overflow, caps[i] - alloc[i]);
    alloc[i] += give;
    overflow -= give;
  }
  if (overflow > 0) alloc[0] += overflow;  // total exceeds sum of caps

  double p_cur = p(alloc);
  SAResult best{alloc, p_cur, 0};
  if (n == 1) return best;

  double temperature = opt.initial_temperature;
  int iter = 0;
  while (iter < opt.max_iterations && temperature > opt.temperature_threshold) {
    ++iter;
    temperature *= opt.gamma;
    // Shift one unit from j to i (dm in {+1,-1} is equivalent to choosing the
    // ordered pair uniformly).
    const std::size_t i = rng.next_below(n);
    std::size_t j = rng.next_below(n - 1);
    if (j >= i) ++j;
    if (alloc[j] < opt.unit_pages) continue;
    if (alloc[i] + opt.unit_pages > caps[i]) continue;
    alloc[i] += opt.unit_pages;
    alloc[j] -= opt.unit_pages;
    const double p_new = p(alloc);
    const double dp = p_new - p_cur;
    if (dp > 0.0 || rng.next_double() < std::exp(dp / temperature)) {
      p_cur = p_new;  // accept
      if (p_cur > best.objective) {
        best.objective = p_cur;
        best.allocation = alloc;
      }
    } else {
      alloc[i] -= opt.unit_pages;  // reject: undo
      alloc[j] += opt.unit_pages;
    }
  }
  best.iterations = iter;
  return best;
}

SAResult anneal_be_partition(const std::vector<BEPerfModel>& models, std::uint64_t total_pages,
                             const SAOptions& opt, Rng& rng) {
  if (models.empty()) throw std::invalid_argument("anneal_be_partition: no BE workloads");
  std::vector<std::uint64_t> caps;
  caps.reserve(models.size());
  for (const auto& m : models) caps.push_back(m.max_useful_pages);
  return anneal_partition(
      [&models](const std::vector<std::uint64_t>& alloc) { return objective(models, alloc); },
      caps, total_pages, opt, rng);
}

}  // namespace mtat
