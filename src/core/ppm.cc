#include "core/ppm.h"

#include <algorithm>
#include <cmath>

#include "obs/names.h"

namespace mtat {

PartitionPolicyMaker::PartitionPolicyMaker(std::uint64_t fmem_capacity,
                                           std::uint64_t max_alpha_pages, Duration slo,
                                           std::vector<BEPerfModel> be_models,
                                           const Options& opt, SacAgent* shared_agent)
    : fmem_capacity_(fmem_capacity),
      max_alpha_pages_(max_alpha_pages),
      slo_(slo),
      be_models_(std::move(be_models)),
      opt_(opt),
      rng_(opt.seed) {
  if (fmem_capacity == 0) throw std::invalid_argument("PartitionPolicyMaker: zero FMem");
  if (max_alpha_pages == 0)
    throw std::invalid_argument("PartitionPolicyMaker: zero action range");
  if (shared_agent != nullptr) {
    agent_ = shared_agent;
  } else {
    owned_agent_ = std::make_unique<SacAgent>(opt_.sac);
    agent_ = owned_agent_.get();
  }
}

std::vector<double> PartitionPolicyMaker::build_state(double usage_ratio,
                                                      const IntervalCounters& c) {
  const auto count = static_cast<double>(c.total());
  max_access_count_ = std::max(max_access_count_, count);
  return {usage_ratio, c.fmem_access_ratio(), count / max_access_count_};
}

PartitionPolicyMaker::Decision PartitionPolicyMaker::decide(std::uint64_t current_lc_pages,
                                                            double fmem_usage_ratio,
                                                            const IntervalCounters& lc_counters,
                                                            Duration lc_p99) {
  ++decisions_;
  const std::vector<double> state = build_state(fmem_usage_ratio, lc_counters);

  // Close the previous transition with the Eq. 2 reward. An idle interval
  // (no completed requests) reports p99 = 0 and counts as compliant.
  if (have_prev_) {
    const bool compliant = lc_p99 <= slo_;
    const double reward = compliant ? 1.0 - fmem_usage_ratio : opt_.violation_penalty;
    rewards_.push_back(reward);
    if (reward_g_ != nullptr) {
      reward_g_->set(reward);
      if (!compliant) violations_c_->inc();
    }
    agent_->observe(prev_state_, prev_action_, reward, state, /*done=*/false);
    if (agent_->ready_to_update()) agent_->update(opt_.gradient_steps_per_interval);
  }

  // Draw the next action. The SLO guard (§1's "rapid response to sudden
  // demand surges") forces full expansion when latency nears the SLO and
  // vetoes shrinking while latency is still warm; either override is
  // recorded as the taken action, so the agent learns from it.
  std::vector<double> action = agent_->act(state, deterministic_);
  // Sanitize before anything consumes the action: a NaN here would be UB at
  // the alpha cast below and would poison the replay buffer via observe(); a
  // divergent magnitude would slam the reservation to a rail. Both are
  // replaced by "hold" (0) and reported; healthy agents always emit finite
  // values in [-1, 1], so this is behaviour-neutral outside fault injection.
  last_action_ok_ = true;
  for (double& a : action) {
    if (!std::isfinite(a) || std::abs(a) > 1.000001) {
      a = std::isfinite(a) ? std::clamp(a, -1.0, 1.0) : 0.0;
      last_action_ok_ = false;
    }
  }
  if (!last_action_ok_ && nonfinite_actions_c_ != nullptr) nonfinite_actions_c_->inc();
  action[0] = std::max(action[0], -opt_.max_shrink_fraction);  // gradual release
  if (opt_.slo_guard) {
    const auto p99 = static_cast<double>(lc_p99);
    // Trip on the instantaneous reading (a surge must not be averaged away);
    // hold on a smoothed reading so one quiet interval at the compliance
    // edge doesn't un-veto shrinking.
    p99_smooth_ = 0.5 * p99 + 0.5 * std::max(p99_smooth_, 0.0);
    if (p99 > opt_.guard_trip * static_cast<double>(slo_)) {
      action[0] = 1.0;
      cooldown_left_ = opt_.guard_cooldown_intervals;
      if (guard_trips_c_ != nullptr) guard_trips_c_->inc();
      if (trace_ != nullptr)
        trace_->instant(obs::names::kEvPpmGuardTrip, obs::names::kCatPolicy, "p99_ms",
                        p99 / 1e6);
    } else if (std::max(p99, p99_smooth_) > opt_.guard_hold * static_cast<double>(slo_) ||
               cooldown_left_ > 0) {
      action[0] = std::max(action[0], 0.0);
      if (cooldown_left_ > 0) --cooldown_left_;
    }
  }
  prev_state_ = state;
  prev_action_ = action;
  have_prev_ = true;

  // Violation memory: a violation pins a floor at the violating reservation
  // plus one shrink step; the floor lifts once the measured load falls well
  // below the level that violated (or rises, in which case a new violation
  // will re-pin it higher).
  if (opt_.slo_guard && opt_.floor_release_fraction > 0.0) {
    const auto count = static_cast<double>(lc_counters.total());
    if (lc_p99 > slo_) {
      const auto step =
          static_cast<std::uint64_t>(opt_.max_shrink_fraction *
                                     static_cast<double>(max_alpha_pages_));
      floor_pages_ = std::min(fmem_capacity_, current_lc_pages + step);
      floor_count_level_ = count;
    } else if (floor_pages_ > 0 && count < opt_.floor_release_fraction * floor_count_level_) {
      floor_pages_ = 0;
    }
  }

  // Map [-1, 1] onto alpha in [-M/2t, +M/2t] pages (Eq. 1) and clamp the
  // resulting reservation to [min_lc, capacity].
  const auto alpha = static_cast<std::int64_t>(action[0] * static_cast<double>(max_alpha_pages_));
  std::int64_t target = static_cast<std::int64_t>(current_lc_pages) + alpha;
  target = std::clamp<std::int64_t>(target, static_cast<std::int64_t>(opt_.min_lc_pages),
                                    static_cast<std::int64_t>(fmem_capacity_));
  if (opt_.slo_guard)
    target = std::max<std::int64_t>(target, static_cast<std::int64_t>(floor_pages_));

  Decision d;
  d.lc_pages = static_cast<std::uint64_t>(target);

  if (opt_.manage_be && !be_models_.empty()) {
    const std::uint64_t remaining = fmem_capacity_ - d.lc_pages;
    if (opt_.be_even_split) {
      d.be_pages.assign(be_models_.size(), remaining / be_models_.size());
      for (std::size_t i = 0; i < remaining % be_models_.size(); ++i) d.be_pages[i]++;
    } else if (opt_.joint_objective) {
      std::vector<std::uint64_t> caps;
      for (const auto& m : be_models_) caps.push_back(m.max_useful_pages);
      const SAResult sa =
          anneal_partition(opt_.joint_objective, caps, remaining, opt_.sa, rng_);
      d.be_pages = sa.allocation;
      d.sa_objective = sa.objective;
    } else {
      const SAResult sa = anneal_be_partition(be_models_, remaining, opt_.sa, rng_);
      d.be_pages = sa.allocation;
      d.sa_objective = sa.objective;
    }
  }
  if (decisions_c_ != nullptr) decisions_c_->inc();
  if (trace_ != nullptr)
    trace_->instant(obs::names::kEvPpmDecision, obs::names::kCatPolicy, "lc_pages",
                    static_cast<double>(d.lc_pages), "alpha", action[0]);
  return d;
}

bool PartitionPolicyMaker::healthy() const {
  return last_action_ok_ && std::isfinite(agent_->last_critic_loss()) &&
         std::isfinite(agent_->last_actor_loss());
}

void PartitionPolicyMaker::set_run_context(obs::RunContext* ctx) {
  if (ctx == nullptr) {
    decisions_c_ = violations_c_ = guard_trips_c_ = nullptr;
    nonfinite_actions_c_ = nullptr;
    reward_g_ = nullptr;
    trace_ = nullptr;
  } else {
    obs::MetricsRegistry& reg = ctx->metrics();
    decisions_c_ = &reg.counter(obs::names::kPpmDecisions);
    violations_c_ = &reg.counter(obs::names::kPpmViolations);
    guard_trips_c_ = &reg.counter(obs::names::kPpmGuardTrips);
    nonfinite_actions_c_ = &reg.counter(obs::names::kPpmNonfiniteActions);
    reward_g_ = &reg.gauge(obs::names::kPpmReward);
    trace_ = &ctx->trace();
  }
  agent_->set_run_context(ctx);
}

}  // namespace mtat
