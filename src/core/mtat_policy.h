// The MTAT framework (paper §3): PP-M decisions enforced by PP-E, behind the
// common TieringPolicy interface so the experiment harness can swap it
// against the baselines.
//
// Variants (paper §5 "Comparisons"):
//  * MTAT (Full)    — RL-sized LC reservation + SA fairness split across BE
//                     partitions, all isolated by PP-E.
//  * MTAT (LC Only) — RL-sized LC reservation only; BE workloads compete for
//                     the residual FMem under frequency-based management.
#pragma once

#include <memory>

#include "core/ppe.h"
#include "core/ppm.h"
#include "policy/policy.h"

namespace mtat {

class MtatPolicy : public TieringPolicy {
 public:
  struct Options {
    PartitionEnforcer::Options ppe;
    PartitionPolicyMaker::Options ppm;
    bool full = true;  ///< Full vs LC-Only (overrides ppe.isolate_be / ppm.manage_be)
  };

  /// `be_models` are the offline profiles for the BE tenants, in the same
  /// order the BE tenants appear in ctx.tenants. `lc_slo` is the LC SLO the
  /// reward checks against. `interval` is the partitioning interval (sets the
  /// Eq. 1 action bound via the engine's bandwidth). A shared SacAgent can be
  /// passed to persist learning across simulation phases.
  MtatPolicy(const PolicyContext& ctx, Duration interval, Duration lc_slo,
             std::vector<BEPerfModel> be_models, Options opt, SacAgent* shared_agent = nullptr);

  std::string name() const override { return full_ ? "mtat_full" : "mtat_lc_only"; }
  void on_tick(SimTime now, Duration dt) override;
  void on_interval(SimTime now, Duration interval, Duration lc_p99) override;

  PartitionPolicyMaker& ppm() { return *ppm_; }
  PartitionEnforcer& ppe() { return *ppe_; }
  /// Current LC reservation in pages (for the Figure 5 allocation series).
  std::uint64_t lc_quota() const;

  /// Wire the policy to a run's observability: register MTAT decision
  /// metrics with `ctx`'s registry, record decide spans into its trace, and
  /// forward to PP-M (and its agent) and PP-E; nullptr detaches. The context
  /// must outlive the policy.
  void set_run_context(obs::RunContext* ctx);

 private:
  PolicyContext ctx_;
  bool full_;
  std::size_t lc_idx_ = 0;
  std::unique_ptr<PartitionEnforcer> ppe_;
  std::unique_ptr<PartitionPolicyMaker> ppm_;
  obs::TraceRecorder* trace_ = nullptr;
  obs::Histogram* decide_wall_h_ = nullptr;
  obs::Gauge* lc_quota_g_ = nullptr;
};

}  // namespace mtat
