// The MTAT framework (paper §3): PP-M decisions enforced by PP-E, behind the
// common TieringPolicy interface so the experiment harness can swap it
// against the baselines.
//
// Variants (paper §5 "Comparisons"):
//  * MTAT (Full)    — RL-sized LC reservation + SA fairness split across BE
//                     partitions, all isolated by PP-E.
//  * MTAT (LC Only) — RL-sized LC reservation only; BE workloads compete for
//                     the residual FMem under frequency-based management.
#pragma once

#include <memory>

#include "core/ppe.h"
#include "core/ppm.h"
#include "policy/policy.h"

namespace mtat {

class MtatPolicy : public TieringPolicy {
 public:
  /// Degradation ladder rung (DESIGN.md §12). Ordered: stepping down moves to
  /// the next simpler, safer controller; stepping up retraces one rung.
  enum class ControlMode {
    kRl = 0,         ///< normal operation: SAC PP-M sizes the LC reservation
    kHeuristic = 1,  ///< waterline controller on the measured P99 alone
    kStatic = 2,     ///< safe placement: LC pinned to the whole FMem
  };

  struct Options {
    PartitionEnforcer::Options ppe;
    PartitionPolicyMaker::Options ppm;
    bool full = true;  ///< Full vs LC-Only (overrides ppe.isolate_be / ppm.manage_be)

    /// Watchdog over the control loop's inputs and the RL agent's outputs.
    /// Each partitioning interval it classifies the loop as healthy or not;
    /// `trip_after` consecutive unhealthy intervals step one rung down the
    /// ladder, `recover_after` consecutive healthy ones step one rung back up
    /// (the asymmetry is the hysteresis — recovery must prove itself longer
    /// than failure needed to trip).
    struct Watchdog {
      enum class Mode {
        kAuto,  ///< armed iff the run has a fault injector attached
        kOn,    ///< always armed
        kOff,   ///< never armed (the pre-watchdog behaviour)
      };
      Mode mode = Mode::kAuto;
      int trip_after = 3;
      int recover_after = 5;
      /// Waterline controller (kHeuristic): grow the reservation at the full
      /// Eq. 1 rate while P99 exceeds this fraction of the SLO; shrink by 5%
      /// of the rate while it sits below `shrink_below` (between the two the
      /// reservation holds).
      double grow_above = 0.8;
      double shrink_below = 0.3;
    };
    Watchdog watchdog;
  };

  /// `be_models` are the offline profiles for the BE tenants, in the same
  /// order the BE tenants appear in ctx.tenants. `lc_slo` is the LC SLO the
  /// reward checks against. `interval` is the partitioning interval (sets the
  /// Eq. 1 action bound via the engine's bandwidth). A shared SacAgent can be
  /// passed to persist learning across simulation phases.
  MtatPolicy(const PolicyContext& ctx, Duration interval, Duration lc_slo,
             std::vector<BEPerfModel> be_models, Options opt, SacAgent* shared_agent = nullptr);

  std::string name() const override { return full_ ? "mtat_full" : "mtat_lc_only"; }
  void on_tick(SimTime now, Duration dt) override;
  void on_interval(SimTime now, Duration interval, Duration lc_p99) override;

  PartitionPolicyMaker& ppm() { return *ppm_; }
  PartitionEnforcer& ppe() { return *ppe_; }
  /// Current LC reservation in pages (for the Figure 5 allocation series).
  std::uint64_t lc_quota() const;

  /// The ladder rung the watchdog currently has the controller on (kRl
  /// always, when the watchdog is not armed).
  ControlMode control_mode() const { return mode_; }
  /// Whether the watchdog is evaluating health this run (resolved from
  /// Options::Watchdog::Mode at set_run_context time).
  bool watchdog_active() const { return watchdog_active_; }

  /// Wire the policy to a run's observability: register MTAT decision
  /// metrics with `ctx`'s registry, record decide spans into its trace, and
  /// forward to PP-M (and its agent) and PP-E; nullptr detaches. The context
  /// must outlive the policy.
  void set_run_context(obs::RunContext* ctx);

 private:
  void transition_to(ControlMode next);
  /// One interval of the kHeuristic waterline controller.
  std::uint64_t heuristic_quota(Duration lc_p99) const;

  PolicyContext ctx_;
  bool full_;
  Options::Watchdog wd_;
  Duration lc_slo_ = 0;
  std::uint64_t max_alpha_ = 0;
  std::uint64_t fmem_capacity_ = 0;
  std::uint64_t min_lc_pages_ = 0;
  std::size_t lc_idx_ = 0;
  std::unique_ptr<PartitionEnforcer> ppe_;
  std::unique_ptr<PartitionPolicyMaker> ppm_;
  bool watchdog_active_ = false;
  ControlMode mode_ = ControlMode::kRl;
  int unhealthy_streak_ = 0;
  int healthy_streak_ = 0;
  obs::TraceRecorder* trace_ = nullptr;
  obs::Histogram* decide_wall_h_ = nullptr;
  obs::Gauge* lc_quota_g_ = nullptr;
  obs::Gauge* mode_g_ = nullptr;
  obs::Counter* mode_transitions_c_ = nullptr;
};

}  // namespace mtat
