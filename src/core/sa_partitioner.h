// Fairness-driven FMem partitioning for BE workloads via simulated annealing
// (paper §3.2.2, Algorithm 2).
//
// Objective: maximize P(M) = min_i NP_i, the smallest normalized performance
// (Eq. 3) across BE workloads, over allocations M = [M_1..M_n] of the FMem
// left after the LC reservation. The neighborhood move shifts one unit of
// memory between two randomly chosen workloads; uphill moves are always
// accepted, downhill moves with probability exp(dP / T) under geometric
// cooling T <- gamma * T.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/rng.h"

namespace mtat {

/// Per-workload performance model: NP_i as a function of FMem pages granted
/// (paper: offline-profiled throughput normalized to exclusive-FMem
/// throughput), plus the footprint beyond which more FMem is wasted.
struct BEPerfModel {
  std::function<double(std::uint64_t pages)> np_at_pages;
  std::uint64_t max_useful_pages = 0;
};

struct SAOptions {
  double initial_temperature = 0.05;  ///< T0; NP deltas are O(0.01)
  double gamma = 0.995;               ///< geometric cooling factor
  double temperature_threshold = 1e-4;
  int max_iterations = 4000;
  /// Delta-m step: the paper moves +-1 GB on a 32 GB FMem; we keep the same
  /// 1/32-of-FMem granularity by default (set explicitly in pages).
  std::uint64_t unit_pages = 1;
};

struct SAResult {
  std::vector<std::uint64_t> allocation;  ///< pages per BE workload
  double objective = 0.0;                 ///< P(M*) = min NP
  int iterations = 0;
};

/// Algorithm 2. `total_pages` is M_total - M_LC. The initial allocation is
/// the even split; the result is the best allocation visited.
SAResult anneal_be_partition(const std::vector<BEPerfModel>& models, std::uint64_t total_pages,
                             const SAOptions& opt, Rng& rng);

/// Algorithm 2 over an arbitrary performance metric P(M) — the paper states
/// the search in exactly this generality. Used by the contention-aware
/// objective (a workload's NP depends on everyone's allocation once tier
/// bandwidth is shared); `caps[i]` bounds allocation i (max useful pages).
SAResult anneal_partition(const std::function<double(const std::vector<std::uint64_t>&)>& p,
                          const std::vector<std::uint64_t>& caps, std::uint64_t total_pages,
                          const SAOptions& opt, Rng& rng);

}  // namespace mtat
