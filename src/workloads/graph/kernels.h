// GAPBS-style graph kernels executed over the simulated address space.
//
// These are real algorithm implementations — BFS returns true hop distances,
// delta-stepping SSSP returns true shortest paths, PageRank converges — and
// every element they read or write is charged through the GraphLayout, so a
// run doubles as a faithful page-access trace for BE profile extraction
// (workloads/be/page_profile.h) and as a correctness-testable kernel.
#pragma once

#include <cstdint>
#include <vector>

#include "workloads/graph/graph_layout.h"

namespace mtat {

/// Outcome of a kernel run: the simulated memory cost plus work counters used
/// to derive the BE throughput model (accesses per edge processed).
struct KernelStats {
  Duration memory_latency = 0;       ///< summed charged latency
  std::uint64_t edges_processed = 0; ///< unit of BE "iteration"
  std::uint64_t accesses = 0;        ///< modelled misses issued
};

/// Breadth-first search from `source`; dist[v] = hop count or kUnreached.
constexpr std::uint64_t kUnreached = ~0ull;
KernelStats bfs(GraphLayout& layout, Graph::Vertex source, std::vector<std::uint64_t>& dist);

/// Delta-stepping single-source shortest paths over the graph's edge weights.
KernelStats sssp(GraphLayout& layout, Graph::Vertex source, std::uint64_t delta,
                 std::vector<std::uint64_t>& dist);

/// PageRank with damping 0.85; runs `iterations` full sweeps.
KernelStats pagerank(GraphLayout& layout, int iterations, std::vector<double>& rank);

}  // namespace mtat
