#include "workloads/graph/graph.h"

#include <algorithm>
#include <stdexcept>

namespace mtat {

Graph::Graph(std::uint64_t n, std::vector<std::pair<Vertex, Vertex>> edges, bool symmetrize,
             Rng* weight_rng) {
  if (n == 0) throw std::invalid_argument("Graph: need at least one vertex");
  if (symmetrize) {
    const std::size_t orig = edges.size();
    edges.reserve(orig * 2);
    for (std::size_t i = 0; i < orig; ++i) edges.emplace_back(edges[i].second, edges[i].first);
  }
  // Counting-sort edges into CSR.
  offsets_.assign(n + 1, 0);
  for (const auto& [u, v] : edges) {
    if (u >= n || v >= n) throw std::invalid_argument("Graph: edge endpoint out of range");
    offsets_[u + 1]++;
  }
  for (std::uint64_t i = 1; i <= n; ++i) offsets_[i] += offsets_[i - 1];
  targets_.resize(edges.size());
  std::vector<std::uint64_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (const auto& [u, v] : edges) targets_[cursor[u]++] = v;
  // Deterministic per-edge weights (1..64), independent of insertion order:
  // derived from the edge's final CSR slot when no RNG is supplied.
  weights_.resize(edges.size());
  for (std::size_t e = 0; e < weights_.size(); ++e)
    weights_[e] = weight_rng ? static_cast<std::uint8_t>(1 + weight_rng->next_below(64))
                             : static_cast<std::uint8_t>(1 + (e * 2654435761u) % 64);
}

Graph make_uniform_graph(std::uint64_t n, std::uint64_t m, Rng& rng) {
  std::vector<std::pair<Graph::Vertex, Graph::Vertex>> edges;
  edges.reserve(m);
  while (edges.size() < m) {
    const auto u = static_cast<Graph::Vertex>(rng.next_below(n));
    const auto v = static_cast<Graph::Vertex>(rng.next_below(n));
    if (u != v) edges.emplace_back(u, v);
  }
  return Graph(n, std::move(edges), /*symmetrize=*/true, &rng);
}

Graph make_rmat_graph(int scale, int edges_per_vertex, Rng& rng) {
  if (scale <= 0 || scale > 31) throw std::invalid_argument("make_rmat_graph: bad scale");
  const std::uint64_t n = 1ull << scale;
  const std::uint64_t m = n * static_cast<std::uint64_t>(edges_per_vertex);
  constexpr double kA = 0.57, kB = 0.19, kC = 0.19;
  std::vector<std::pair<Graph::Vertex, Graph::Vertex>> edges;
  edges.reserve(m);
  for (std::uint64_t i = 0; i < m; ++i) {
    std::uint64_t u = 0, v = 0;
    for (int bit = 0; bit < scale; ++bit) {
      const double r = rng.next_double();
      u <<= 1;
      v <<= 1;
      if (r < kA) {
        // top-left: neither bit set
      } else if (r < kA + kB) {
        v |= 1;
      } else if (r < kA + kB + kC) {
        u |= 1;
      } else {
        u |= 1;
        v |= 1;
      }
    }
    if (u != v) edges.emplace_back(static_cast<Graph::Vertex>(u), static_cast<Graph::Vertex>(v));
  }
  return Graph(n, std::move(edges), /*symmetrize=*/true, &rng);
}

}  // namespace mtat
