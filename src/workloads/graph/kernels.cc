#include "workloads/graph/kernels.h"

#include <deque>
#include <stdexcept>

namespace mtat {
namespace {

/// Wraps a layout so every charged access also bumps the stats counters.
struct Charged {
  GraphLayout& l;
  KernelStats& s;
  void offset(Graph::Vertex v) { add(l.read_offset(v)); }
  void target(std::uint64_t e) { add(l.read_target(e)); }
  void weight(std::uint64_t e) { add(l.read_weight(e)); }
  void read_a(Graph::Vertex v) { add(l.read_prop_a(v)); }
  void write_a(Graph::Vertex v) { add(l.write_prop_a(v)); }
  void read_b(Graph::Vertex v) { add(l.read_prop_b(v)); }
  void write_b(Graph::Vertex v) { add(l.write_prop_b(v)); }

 private:
  void add(Duration d) {
    s.memory_latency += d;
    s.accesses++;
  }
};

}  // namespace

KernelStats bfs(GraphLayout& layout, Graph::Vertex source, std::vector<std::uint64_t>& dist) {
  const Graph& g = layout.graph();
  if (source >= g.num_vertices()) throw std::out_of_range("bfs: bad source");
  KernelStats stats;
  Charged mem{layout, stats};
  dist.assign(g.num_vertices(), kUnreached);
  dist[source] = 0;
  mem.write_a(source);
  std::deque<Graph::Vertex> frontier{source};
  while (!frontier.empty()) {
    const Graph::Vertex u = frontier.front();
    frontier.pop_front();
    mem.offset(u);
    for (std::uint64_t e = g.out_begin(u); e < g.out_end(u); ++e) {
      mem.target(e);
      const Graph::Vertex v = g.target(e);
      stats.edges_processed++;
      mem.read_a(v);  // read dist[v]
      if (dist[v] == kUnreached) {
        dist[v] = dist[u] + 1;
        mem.write_a(v);
        frontier.push_back(v);
      }
    }
  }
  return stats;
}

KernelStats sssp(GraphLayout& layout, Graph::Vertex source, std::uint64_t delta,
                 std::vector<std::uint64_t>& dist) {
  const Graph& g = layout.graph();
  if (source >= g.num_vertices()) throw std::out_of_range("sssp: bad source");
  if (delta == 0) throw std::invalid_argument("sssp: delta must be > 0");
  KernelStats stats;
  Charged mem{layout, stats};
  dist.assign(g.num_vertices(), kUnreached);
  dist[source] = 0;
  mem.write_a(source);
  // Delta-stepping with a cyclic bucket array. Max edge weight is 64, so a
  // relaxation from the current bucket can land at most 64/delta + 1 buckets
  // ahead — the cyclic window below is sized to hold that whole range.
  const std::uint64_t n_buckets = 64 / delta + 2;
  std::vector<std::vector<Graph::Vertex>> buckets(n_buckets);
  buckets[0].push_back(source);
  std::uint64_t current = 0;
  std::vector<Graph::Vertex> batch;
  while (true) {
    // Advance `current` to the next non-empty bucket in the window.
    std::uint64_t step = 0;
    while (step < n_buckets && buckets[(current + step) % n_buckets].empty()) ++step;
    if (step == n_buckets) break;  // all buckets drained: done
    current += step;
    auto& bucket = buckets[current % n_buckets];
    // Drain the bucket to a fixed point: relaxations within the current
    // delta-range re-insert into this same bucket.
    while (!bucket.empty()) {
      batch.clear();
      batch.swap(bucket);
      for (const Graph::Vertex u : batch) {
        mem.read_a(u);
        if (dist[u] / delta != current) continue;  // settled by an earlier bucket
        mem.offset(u);
        for (std::uint64_t e = g.out_begin(u); e < g.out_end(u); ++e) {
          mem.target(e);
          mem.weight(e);
          stats.edges_processed++;
          const Graph::Vertex v = g.target(e);
          const std::uint64_t nd = dist[u] + g.weight(e);
          mem.read_a(v);
          if (nd < dist[v]) {
            dist[v] = nd;
            mem.write_a(v);
            buckets[(nd / delta) % n_buckets].push_back(v);
          }
        }
      }
    }
  }
  return stats;
}

KernelStats pagerank(GraphLayout& layout, int iterations, std::vector<double>& rank) {
  const Graph& g = layout.graph();
  KernelStats stats;
  Charged mem{layout, stats};
  const std::uint64_t n = g.num_vertices();
  constexpr double kDamping = 0.85;
  rank.assign(n, 1.0 / static_cast<double>(n));
  std::vector<double> contrib(n, 0.0);
  for (int it = 0; it < iterations; ++it) {
    // Phase 1: per-vertex outgoing contribution (sequential sweep).
    for (Graph::Vertex v = 0; v < n; ++v) {
      mem.offset(v);
      mem.read_a(v);
      const std::uint64_t deg = g.degree(v);
      contrib[v] = deg ? rank[v] / static_cast<double>(deg) : 0.0;
      mem.write_b(v);
    }
    // Phase 2: pull — each vertex gathers its neighbors' contributions
    // (scattered reads over prop B, the classic PageRank access pattern).
    for (Graph::Vertex v = 0; v < n; ++v) {
      mem.offset(v);
      double sum = 0.0;
      for (std::uint64_t e = g.out_begin(v); e < g.out_end(v); ++e) {
        mem.target(e);
        mem.read_b(g.target(e));
        stats.edges_processed++;
        sum += contrib[g.target(e)];
      }
      rank[v] = (1.0 - kDamping) / static_cast<double>(n) + kDamping * sum;
      mem.write_a(v);
    }
  }
  return stats;
}

}  // namespace mtat
