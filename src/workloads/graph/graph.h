// Host-side CSR graph and synthetic generators.
//
// The topology lives in ordinary host memory (the simulator only needs the
// *addresses* the kernels touch, which the GraphLayout derives); generators
// cover the GAPBS-style inputs: uniform-random (Erdős–Rényi-ish) and R-MAT
// (Kronecker), the latter giving the skewed degree distributions that make
// graph page-access profiles non-uniform.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace mtat {

class Graph {
 public:
  using Vertex = std::uint32_t;

  Graph(std::uint64_t n, std::vector<std::pair<Vertex, Vertex>> edges, bool symmetrize,
        Rng* weight_rng = nullptr);

  std::uint64_t num_vertices() const { return offsets_.size() - 1; }
  std::uint64_t num_edges() const { return targets_.size(); }

  std::uint64_t out_begin(Vertex v) const { return offsets_[v]; }
  std::uint64_t out_end(Vertex v) const { return offsets_[v + 1]; }
  std::uint64_t degree(Vertex v) const { return out_end(v) - out_begin(v); }
  Vertex target(std::uint64_t e) const { return targets_[e]; }
  std::uint8_t weight(std::uint64_t e) const { return weights_[e]; }

  const std::vector<std::uint64_t>& offsets() const { return offsets_; }
  const std::vector<Vertex>& targets() const { return targets_; }

 private:
  std::vector<std::uint64_t> offsets_;  // n+1 entries
  std::vector<Vertex> targets_;
  std::vector<std::uint8_t> weights_;  // per-edge weight in [1, 64], SSSP-style
};

/// Uniform-random graph: m directed edges with independently uniform endpoints
/// (self-loops removed), symmetrized like GAPBS's -u inputs.
Graph make_uniform_graph(std::uint64_t n, std::uint64_t m, Rng& rng);

/// R-MAT / Kronecker graph of 2^scale vertices and edges_per_vertex * 2^scale
/// edges with GAPBS's default (A,B,C) = (0.57, 0.19, 0.19), symmetrized.
Graph make_rmat_graph(int scale, int edges_per_vertex, Rng& rng);

}  // namespace mtat
