// Maps a CSR graph's arrays onto a simulated address space.
//
// Region layout (byte offsets within the AddressSpace):
//   offsets array   n+1  x 8 B
//   targets array   m    x 4 B
//   weights array   m    x 1 B
//   prop array A    n    x 8 B   (dist / rank)
//   prop array B    n    x 8 B   (next-rank / tentative)
//
// Kernels call the charged accessors below once per element they touch, so
// the page-access stream a kernel produces is its real one: sequential over
// offsets/targets, scattered over property arrays indexed by neighbor id —
// which is what gives graph workloads their characteristic profile skew.
#pragma once

#include "common/units.h"
#include "mem/address_space.h"
#include "workloads/graph/graph.h"

namespace mtat {

class GraphLayout {
 public:
  GraphLayout(AddressSpace& space, const Graph& g) : space_(&space), g_(&g) {
    const Bytes n = g.num_vertices();
    const Bytes m = g.num_edges();
    offsets_base_ = 0;
    targets_base_ = offsets_base_ + (n + 1) * 8;
    weights_base_ = targets_base_ + m * 4;
    prop_a_base_ = weights_base_ + m;
    prop_b_base_ = prop_a_base_ + n * 8;
    end_ = prop_b_base_ + n * 8;
    if (end_ > space.size()) throw std::invalid_argument("GraphLayout: space too small");
  }

  static Bytes required_bytes(const Graph& g) {
    return (g.num_vertices() + 1) * 8 + g.num_edges() * 5 + g.num_vertices() * 16;
  }

  Duration read_offset(Graph::Vertex v) { return touch(offsets_base_ + Bytes{v} * 8); }
  Duration read_target(std::uint64_t e) { return touch(targets_base_ + e * 4); }
  Duration read_weight(std::uint64_t e) { return touch(weights_base_ + e); }
  Duration read_prop_a(Graph::Vertex v) { return touch(prop_a_base_ + Bytes{v} * 8); }
  Duration write_prop_a(Graph::Vertex v) {
    return touch(prop_a_base_ + Bytes{v} * 8, AccessKind::kWrite);
  }
  Duration read_prop_b(Graph::Vertex v) { return touch(prop_b_base_ + Bytes{v} * 8); }
  Duration write_prop_b(Graph::Vertex v) {
    return touch(prop_b_base_ + Bytes{v} * 8, AccessKind::kWrite);
  }

  AddressSpace& space() { return *space_; }
  const Graph& graph() const { return *g_; }
  Bytes used_bytes() const { return end_; }

 private:
  Duration touch(Bytes addr, AccessKind kind = AccessKind::kRead) {
    return space_->access(addr, kind);
  }

  AddressSpace* space_;
  const Graph* g_;
  Bytes offsets_base_, targets_base_, weights_base_, prop_a_base_, prop_b_base_, end_;
};

}  // namespace mtat
