#include "workloads/trace/trace_io.h"

#include <cstring>
#include <fstream>
#include <stdexcept>

namespace mtat {
namespace {

constexpr char kMagic[8] = {'M', 'T', 'A', 'T', 'T', 'R', 'C', '1'};

}  // namespace

void write_trace(const std::string& path, std::uint64_t footprint_pages,
                 const std::vector<TraceSample>& samples) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("write_trace: cannot open " + path);
  out.write(kMagic, sizeof kMagic);
  const std::uint64_t count = samples.size();
  out.write(reinterpret_cast<const char*>(&footprint_pages), sizeof footprint_pages);
  out.write(reinterpret_cast<const char*>(&count), sizeof count);
  for (const TraceSample& s : samples) {
    // 4 bytes of page index; the top bit of a flag byte carries the kind.
    out.write(reinterpret_cast<const char*>(&s.vpage), sizeof s.vpage);
    const std::uint8_t flags = s.kind == AccessKind::kWrite ? 1 : 0;
    out.write(reinterpret_cast<const char*>(&flags), sizeof flags);
  }
  if (!out) throw std::runtime_error("write_trace: write failed for " + path);
}

Trace read_trace(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("read_trace: cannot open " + path);
  char magic[8];
  in.read(magic, sizeof magic);
  if (!in || std::memcmp(magic, kMagic, sizeof kMagic) != 0)
    throw std::runtime_error("read_trace: bad magic in " + path);
  Trace t;
  std::uint64_t count = 0;
  in.read(reinterpret_cast<char*>(&t.footprint_pages), sizeof t.footprint_pages);
  in.read(reinterpret_cast<char*>(&count), sizeof count);
  if (!in || t.footprint_pages == 0)
    throw std::runtime_error("read_trace: corrupt header in " + path);
  t.samples.resize(count);
  for (TraceSample& s : t.samples) {
    std::uint8_t flags = 0;
    in.read(reinterpret_cast<char*>(&s.vpage), sizeof s.vpage);
    in.read(reinterpret_cast<char*>(&flags), sizeof flags);
    if (!in) throw std::runtime_error("read_trace: truncated " + path);
    if (s.vpage >= t.footprint_pages)
      throw std::runtime_error("read_trace: sample beyond footprint in " + path);
    s.kind = flags & 1 ? AccessKind::kWrite : AccessKind::kRead;
  }
  return t;
}

PageProfile profile_from_trace(const Trace& trace, double accesses_per_iteration) {
  if (trace.samples.empty()) throw std::invalid_argument("profile_from_trace: empty trace");
  if (accesses_per_iteration <= 0)
    throw std::invalid_argument("profile_from_trace: accesses_per_iteration must be > 0");
  PageProfile out;
  out.accesses_per_iteration = accesses_per_iteration;
  out.weight.assign(trace.footprint_pages, 0.0);
  const double unit = 1.0 / static_cast<double>(trace.samples.size());
  for (const TraceSample& s : trace.samples) out.weight[s.vpage] += unit;
  return out;
}

}  // namespace mtat
