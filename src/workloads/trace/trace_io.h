// Access-trace capture and replay: bring-your-own-workload support.
//
// A trace is the sequence of (virtual page, read/write) samples a workload
// produced — exactly what a PEBS capture of a real application yields after
// address-to-page truncation. Traces round-trip through a compact binary
// format; a recorded (or externally converted) trace becomes a PageProfile,
// which plugs straight into BEWorkload: the simulated tenant then presents
// the real application's access distribution to every policy under test.
//
//   TraceRecorder rec(space);          // attach to any simulated tenant
//   ... run the workload ...
//   write_trace("app.trace", rec.take());
//   BEConfig cfg = ...;
//   cfg.profile = profile_from_trace("app.trace", footprint_pages, apa);
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mem/address_space.h"
#include "workloads/be/page_profile.h"

namespace mtat {

struct TraceSample {
  std::uint32_t vpage = 0;
  AccessKind kind = AccessKind::kRead;
};

/// Serialize samples to `path` (binary: magic, footprint, count, samples).
/// `footprint_pages` records the traced address-space size so replay can
/// validate page indices.
void write_trace(const std::string& path, std::uint64_t footprint_pages,
                 const std::vector<TraceSample>& samples);

struct Trace {
  std::uint64_t footprint_pages = 0;
  std::vector<TraceSample> samples;
};

/// Parse a trace file; throws std::runtime_error on malformed input.
Trace read_trace(const std::string& path);

/// Collapse a trace into a page-access profile for BEWorkload.
/// `accesses_per_iteration` defines the trace's unit of work (e.g. samples
/// per request of the traced application).
PageProfile profile_from_trace(const Trace& trace, double accesses_per_iteration);

/// AccessObserver that captures a tenant's sampled accesses as trace samples
/// (page ids are translated to offsets within the given space).
class TraceRecorder : public AccessObserver {
 public:
  explicit TraceRecorder(const AddressSpace& space)
      : workload_(space.workload()),
        first_page_(space.pages().front()),
        footprint_(space.num_pages()) {}

  void on_sampled_access(WorkloadId w, PageId p, AccessKind kind) override {
    if (w != workload_) return;
    if (p < first_page_ || p >= first_page_ + footprint_) return;
    samples_.push_back(TraceSample{static_cast<std::uint32_t>(p - first_page_), kind});
  }

  /// The captured samples (moved out; the recorder resets).
  std::vector<TraceSample> take() { return std::move(samples_); }
  std::size_t size() const { return samples_.size(); }
  std::uint64_t footprint_pages() const { return footprint_; }

 private:
  WorkloadId workload_;
  PageId first_page_;
  std::uint64_t footprint_;
  std::vector<TraceSample> samples_;
};

}  // namespace mtat
